// Command memprofile runs the offline memory-templating phase against a
// simulated DRAM device: SPOILER contiguity detection, row-conflict
// bank clustering, and double-/n-sided hammering of every victim row,
// reporting the flips-per-page statistics of Table I and Figure 2.
//
// Usage:
//
//	memprofile -device A1 -pages 1024
//	memprofile -device K1 -pages 2048 -sides 15
//	memprofile -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
	"rowhammer/internal/profile"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "memprofile:", err)
		os.Exit(1)
	}
}

func run() error {
	device := flag.String("device", "", "Table I device name (empty = paper's DDR3 module)")
	pages := flag.Int("pages", 1024, "templating buffer size in 4 KB pages")
	sides := flag.Int("sides", 0, "hammer pattern width (0 = 2 for DDR3, 15 for DDR4)")
	seed := flag.Int64("seed", 1, "vulnerable-cell layout seed")
	list := flag.Bool("list", false, "list the Table I device profiles and exit")
	flag.Parse()

	if *list {
		fmt.Println("device  type  avg flips/page (Table I)")
		for _, name := range dram.ProfileNames() {
			p, _ := dram.ProfileByName(name)
			fmt.Printf("%-6s  %-4s  %.2f\n", p.Name, p.Type, p.FlipsPerPage)
		}
		return nil
	}

	prof := dram.PaperDDR3()
	if *device != "" {
		p, ok := dram.ProfileByName(*device)
		if !ok {
			return fmt.Errorf("unknown device %q (use -list)", *device)
		}
		prof = p
	}
	if *sides == 0 {
		*sides = 2
		if prof.Type == dram.DDR4 {
			*sides = 15
		}
	}

	mod, err := dram.NewModuleForSize(*pages*memsys.PageSize*2, prof, *seed)
	if err != nil {
		return err
	}
	sys := memsys.NewSystem(mod)
	proc := sys.NewProcess()
	base, err := proc.Mmap(*pages)
	if err != nil {
		return err
	}
	fmt.Printf("templating %d pages on %s (%s, %d-sided)…\n", *pages, prof.Name, prof.Type, *sides)
	result, err := profile.ProfileBuffer(sys, proc, base, *pages, profile.Config{
		Sides: *sides, Intensity: 1, MeasureSeed: *seed,
	})
	if err != nil {
		return err
	}

	fmt.Printf("victim pages profiled: %d\n", result.VictimPageCount())
	fmt.Printf("total flips:           %d\n", result.TotalFlips())
	fmt.Printf("flippy pages:          %d\n", result.FlippyPageCount())
	fmt.Printf("avg flips per page:    %.2f (Table I value: %.2f)\n",
		result.AvgFlipsPerPage(), prof.FlipsPerPage)
	bits := result.VictimPageCount() * memsys.PageSize * 8
	if bits > 0 {
		fmt.Printf("vulnerable cells:      %.4f%% of profiled bits\n",
			100*float64(result.TotalFlips())/float64(bits))
	}

	hist := result.FlipsPerPageHistogram()
	var keys []int
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	fmt.Println("\nflips/page histogram:")
	for _, k := range keys {
		fmt.Printf("%4d flips: %6d pages\n", k, hist[k])
	}
	return nil
}
