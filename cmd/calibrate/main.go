// Command calibrate sweeps attack hyperparameters on a small victim to
// tune the offline-phase defaults. It is a development tool, not part
// of the reproduction pipeline.
package main

import (
	"fmt"
	"time"

	"rowhammer/internal/core"
	"rowhammer/internal/data"
	"rowhammer/internal/metrics"
	"rowhammer/internal/models"
	"rowhammer/internal/pretrain"
)

type trial struct {
	eta     float32
	iters   int
	brEvery int
	alpha   float32
	eps     float32
	nflip   int
	batch   int
	refine  bool
}

func main() {
	pcfg := pretrain.Config{
		Model:        models.Config{Arch: "resnet20", Classes: 10, WidthMult: 0.25, Seed: 21},
		Data:         data.SynthCIFAR(0, 21),
		TrainSamples: 600,
		TestSamples:  300,
		Epochs:       3,
		BatchSize:    32,
		Seed:         21,
	}
	res, err := pretrain.TrainCached(pcfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("clean TA %.3f\n", res.Accuracy)
	trials := []trial{
		{2, 100, 50, 0.5, 0.02, 3, 32, true},
		{2, 100, 50, 0.5, 0.02, 5, 32, true},
		{2, 150, 50, 0.5, 0.02, 5, 48, true},
		{3, 100, 50, 0.6, 0.03, 5, 32, true},
	}
	for _, tr := range trials {
		m, err := pretrain.CloneModel(pcfg.Model, res.Model)
		if err != nil {
			panic(err)
		}
		cfg := core.DefaultConfig(tr.nflip, 2)
		cfg.Eta = tr.eta
		cfg.Iterations = tr.iters
		cfg.BitReduceEvery = tr.brEvery
		cfg.Alpha = tr.alpha
		cfg.Epsilon = tr.eps
		cfg.GreedyRefine = tr.refine
		t0 := time.Now()
		out, err := core.RunOffline(m, res.Test.Head(tr.batch), cfg)
		if err != nil {
			panic(err)
		}
		ta := metrics.TestAccuracy(m, res.Test)
		asr := metrics.AttackSuccessRate(m, res.Test, out.Trigger, 2)
		fmt.Printf("eta=%.0f it=%d br=%d a=%.2f eps=%.3f nflip=%d refine=%v -> NFlip=%d TA=%.3f ASR=%.3f (%.0fs)\n",
			tr.eta, tr.iters, tr.brEvery, tr.alpha, tr.eps, tr.nflip, tr.refine, out.NFlip, ta, asr, time.Since(t0).Seconds())
	}
}
