// Command train trains a clean victim model on one of the built-in
// synthetic tasks and reports its accuracy and deployment footprint.
//
// Usage:
//
//	train -arch resnet20 -width 0.25 -samples 2000 -epochs 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rowhammer"
	"rowhammer/internal/models"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}
}

func run() error {
	arch := flag.String("arch", "resnet20", "architecture ("+strings.Join(models.Names(), ", ")+")")
	width := flag.Float64("width", 0.25, "width multiplier (1.0 = paper-faithful)")
	samples := flag.Int("samples", 2000, "training samples")
	epochs := flag.Int("epochs", 3, "epochs")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	victim, err := rowhammer.TrainVictim(rowhammer.VictimConfig{
		Arch:         *arch,
		WidthMult:    *width,
		TrainSamples: *samples,
		Epochs:       *epochs,
		Seed:         *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("architecture:   %s (width %.2f)\n", *arch, *width)
	fmt.Printf("parameters:     %d (%d bits 8-bit quantized)\n", victim.NumParams(), victim.NumParams()*8)
	fmt.Printf("weight file:    %d pages of 4 KB\n", victim.WeightFilePages())
	fmt.Printf("test accuracy:  %.2f%%\n", 100*victim.CleanAccuracy())
	return nil
}
