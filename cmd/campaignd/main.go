// Command campaignd is the long-running attack-campaign orchestration
// service: an HTTP/JSON daemon over the fleet campaign engine with a
// durable job queue, streaming results, cross-fleet SKU aggregation and
// checkpoint/resume.
//
// Usage:
//
//	campaignd -addr :8077 -dir /var/lib/campaignd
//
// Submit a fleet and follow it:
//
//	curl -s localhost:8077/v1/fleets -d @fleet.json        # → {"ID":"f000000",...}
//	curl -s localhost:8077/v1/fleets/f000000               # status
//	curl -sN localhost:8077/v1/fleets/f000000/stream       # JSONL results, live
//	curl -s  localhost:8077/v1/skus                        # cross-fleet SKU stats
//
// Kill the daemon mid-fleet and restart it with the same -dir: the
// fleet resumes from its last fsynced campaign and finishes with the
// same digest an uninterrupted run reports.
//
// -demo runs a self-contained smoke fleet through the real HTTP stack
// and exits; no flags or state directory required.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rowhammer/internal/campaign/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8077", "HTTP listen address")
	dir := flag.String("dir", "", "durable state directory (required unless -demo)")
	workers := flag.Int("workers", 4, "concurrent campaigns per fleet")
	arenaMB := flag.Int("arena-mb", 0, "cap on estimated in-flight DRAM state, MB (0 = uncapped)")
	cacheEntries := flag.Int("cache-entries", 64, "profile cache bound, entries (0 = unbounded)")
	demo := flag.Bool("demo", false, "run a self-contained demo fleet and exit")
	flag.Parse()

	if *demo {
		if err := runDemo(*workers, *cacheEntries); err != nil {
			log.Fatalf("campaignd: demo: %v", err)
		}
		return
	}

	if *dir == "" {
		log.Fatal("campaignd: -dir is required (or use -demo)")
	}
	srv, err := server.New(server.Config{
		Dir:          *dir,
		Workers:      *workers,
		MaxArenaMB:   *arenaMB,
		CacheEntries: *cacheEntries,
		Logf:         log.Printf,
	})
	if err != nil {
		log.Fatalf("campaignd: %v", err)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("campaignd: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}()
	log.Printf("campaignd: serving on %s, state in %s", *addr, *dir)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("campaignd: %v", err)
	}
	srv.Close()
}

// runDemo exercises the full daemon through its real HTTP surface:
// submit the built-in two-SKU fleet, stream its results, print the
// final status, and exit zero only if every campaign succeeded.
func runDemo(workers, cacheEntries int) error {
	dir, err := os.MkdirTemp("", "campaignd-demo-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	srv, err := server.New(server.Config{
		Dir: dir, Workers: workers, CacheEntries: cacheEntries, Logf: log.Printf,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	spec, err := json.Marshal(server.DemoFleet(3))
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/fleets", "application/json", bytes.NewReader(spec))
	if err != nil {
		return err
	}
	var sub struct{ ID string }
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: HTTP %d", resp.StatusCode)
	}
	fmt.Printf("submitted demo fleet %s\n", sub.ID)

	stream, err := http.Get(base + "/v1/fleets/" + sub.ID + "/stream")
	if err != nil {
		return err
	}
	defer stream.Body.Close()
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<30)
	for sc.Scan() {
		var r struct {
			Index    int
			Name     string
			SKU      string
			CacheHit bool
			Online   *struct{ NMatch, NRequired int }
			Err      string
		}
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			return fmt.Errorf("stream line: %w", err)
		}
		if r.Err != "" {
			fmt.Printf("  campaign %2d %-12s %-22s FAILED: %s\n", r.Index, r.Name, r.SKU, r.Err)
			continue
		}
		hit := " "
		if r.CacheHit {
			hit = "*"
		}
		fmt.Printf("  campaign %2d %-12s %-22s %s matched %d/%d\n",
			r.Index, r.Name, r.SKU, hit, r.Online.NMatch, r.Online.NRequired)
	}
	if err := sc.Err(); err != nil {
		return err
	}

	resp, err = http.Get(base + "/v1/fleets/" + sub.ID)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var st server.FleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	fmt.Printf("fleet %s: %s, %d campaigns, %d cache hits, %d failed\ndigest %s\n",
		st.ID, st.State, st.Campaigns, st.CacheHits, st.Failed, st.Digest)
	if st.State != "done" || st.Failed != 0 {
		return fmt.Errorf("demo fleet state=%s failed=%d", st.State, st.Failed)
	}
	return nil
}
