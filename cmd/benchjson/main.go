// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON report. It exists so `make bench-eval` can emit
// BENCH_eval.json for the evaluation-loop benchmarks without any
// external tooling.
//
// Usage:
//
//	go test -run xxx -bench EvalTAASR -benchmem ./internal/metrics/ | go run ./cmd/benchjson -o BENCH_eval.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark line in normalized form.
type Entry struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the wall time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present when -benchmem was used.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// MBPerSec is present for benchmarks that call b.SetBytes.
	MBPerSec *float64 `json:"mb_per_sec,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Benchmarks []Entry `json:"benchmarks"`
}

func parseLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	e := Entry{Name: name, Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			e.NsPerOp = v
			seen = true
		case "B/op":
			b := v
			e.BytesPerOp = &b
		case "allocs/op":
			a := v
			e.AllocsPerOp = &a
		case "MB/s":
			m := v
			e.MBPerSec = &m
		}
	}
	return e, seen
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		// Echo the raw output so the human still sees the run.
		fmt.Fprintln(os.Stderr, line)
		if e, ok := parseLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, e)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "benchjson: wrote", *out)
}
