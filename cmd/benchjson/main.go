// Command benchjson produces machine-readable JSON reports from
// `go test -bench` output. It has three modes:
//
//   - Filter mode (default): parse benchmark output on stdin.
//
//     go test -run xxx -bench EvalTAASR -benchmem ./internal/metrics/ | go run ./cmd/benchjson -o BENCH_eval.json
//
//   - Runner mode (-bench): invoke `go test -bench` itself over the
//     -pkg packages, parse as it streams, and optionally capture a CPU
//     profile.
//
//     go run ./cmd/benchjson -bench 'TrainStep|OfflineAttack' -pkg ./internal/core -o BENCH_train.json
//     go run ./cmd/benchjson -bench TrainStep -pkg ./internal/core -cpuprofile cpu.out
//
//   - Check mode (-check): validate committed reports against the
//     schema and their baselines, exiting non-zero on drift. For every
//     argument file FOO.json that has a sibling FOO_baseline.json, the
//     baseline's benchmark names must appear in the report — a renamed
//     or dropped benchmark fails the check instead of silently breaking
//     the committed perf history.
//
//     go run ./cmd/benchjson -check BENCH_*.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// Entry is one benchmark line in normalized form.
type Entry struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the wall time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present when -benchmem was used.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// MBPerSec is present for benchmarks that call b.SetBytes.
	MBPerSec *float64 `json:"mb_per_sec,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Benchmarks []Entry `json:"benchmarks"`
}

func parseLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	e := Entry{Name: name, Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			e.NsPerOp = v
			seen = true
		case "B/op":
			b := v
			e.BytesPerOp = &b
		case "allocs/op":
			a := v
			e.AllocsPerOp = &a
		case "MB/s":
			m := v
			e.MBPerSec = &m
		}
	}
	return e, seen
}

// loadReport reads a benchjson report strictly: unknown fields, trailing
// garbage, an empty benchmark list, or malformed entries are all errors.
// The strictness is the point — these files are committed perf history,
// and a silently tolerated schema drift corrupts every later comparison.
func loadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep Report
	if err := dec.Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	if dec.More() {
		return Report{}, fmt.Errorf("%s: trailing data after report object", path)
	}
	if len(rep.Benchmarks) == 0 {
		return Report{}, fmt.Errorf("%s: no benchmark entries", path)
	}
	for i, e := range rep.Benchmarks {
		if e.Name == "" {
			return Report{}, fmt.Errorf("%s: entry %d has no name", path, i)
		}
		if e.Iterations <= 0 {
			return Report{}, fmt.Errorf("%s: %s: iterations %d", path, e.Name, e.Iterations)
		}
		if e.NsPerOp <= 0 {
			return Report{}, fmt.Errorf("%s: %s: ns_per_op %v", path, e.Name, e.NsPerOp)
		}
	}
	return rep, nil
}

// baselinePath returns the sibling baseline report for a committed
// report ("BENCH_x.json" → "BENCH_x_baseline.json").
func baselinePath(path string) string {
	return strings.TrimSuffix(path, ".json") + "_baseline.json"
}

// runCheck validates every report and, where a sibling baseline exists,
// asserts the baseline's benchmark names survive in the report.
func runCheck(paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("-check needs report files as arguments")
	}
	for _, path := range paths {
		rep, err := loadReport(path)
		if err != nil {
			return err
		}
		if strings.HasSuffix(strings.TrimSuffix(path, ".json"), "_baseline") {
			fmt.Fprintf(os.Stderr, "benchjson: %s: ok (%d entries, baseline)\n", path, len(rep.Benchmarks))
			continue
		}
		bp := baselinePath(path)
		if _, err := os.Stat(bp); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: ok (%d entries, no baseline)\n", path, len(rep.Benchmarks))
			continue
		}
		base, err := loadReport(bp)
		if err != nil {
			return err
		}
		names := make(map[string]bool, len(rep.Benchmarks))
		for _, e := range rep.Benchmarks {
			names[e.Name] = true
		}
		for _, e := range base.Benchmarks {
			if !names[e.Name] {
				return fmt.Errorf("%s: baseline benchmark %q missing from report (perf history drift)", path, e.Name)
			}
		}
		fmt.Fprintf(os.Stderr, "benchjson: %s: ok (%d entries, %d baseline names covered)\n",
			path, len(rep.Benchmarks), len(base.Benchmarks))
	}
	return nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	bench := flag.String("bench", "", "benchmark pattern; when set, run `go test -bench` instead of reading stdin")
	pkg := flag.String("pkg", "./...", "comma-separated package patterns for -bench mode")
	benchtime := flag.String("benchtime", "", "passed through to go test (e.g. 1x, 3s)")
	cpuprofile := flag.String("cpuprofile", "", "passed through to go test; requires a single -pkg package")
	merge := flag.String("merge", "", "existing benchjson report whose entries are prepended to the output (e.g. a committed pre-optimization baseline)")
	check := flag.Bool("check", false, "validate the argument reports against the schema and their *_baseline.json files, then exit")
	flag.Parse()

	if *check {
		if err := runCheck(flag.Args()); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: -check:", err)
			os.Exit(1)
		}
		return
	}

	var in io.Reader = os.Stdin
	var cmd *exec.Cmd
	if *bench != "" {
		args := []string{"test", "-run", "xxx", "-bench", *bench, "-benchmem"}
		if *benchtime != "" {
			args = append(args, "-benchtime", *benchtime)
		}
		if *cpuprofile != "" {
			args = append(args, "-cpuprofile", *cpuprofile)
		}
		for _, p := range strings.Split(*pkg, ",") {
			if p = strings.TrimSpace(p); p != "" {
				args = append(args, p)
			}
		}
		cmd = exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		pipe, err := cmd.StdoutPipe()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if err := cmd.Start(); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: go test:", err)
			os.Exit(1)
		}
		in = pipe
	} else if *cpuprofile != "" {
		fmt.Fprintln(os.Stderr, "benchjson: -cpuprofile requires -bench (runner mode)")
		os.Exit(1)
	}

	var rep Report
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		// Echo the raw output so the human still sees the run.
		fmt.Fprintln(os.Stderr, line)
		if e, ok := parseLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, e)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if cmd != nil {
		if err := cmd.Wait(); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: go test:", err)
			os.Exit(1)
		}
		if *cpuprofile != "" {
			fmt.Fprintln(os.Stderr, "benchjson: cpu profile at", *cpuprofile,
				"— inspect with `go tool pprof", *cpuprofile+"`")
		}
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found")
		os.Exit(1)
	}
	if *merge != "" {
		// A missing, malformed, or empty baseline would silently produce a
		// report without its pre-optimization reference — fail loudly.
		base, err := loadReport(*merge)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: -merge:", err)
			os.Exit(1)
		}
		rep.Benchmarks = append(base.Benchmarks, rep.Benchmarks...)
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "benchjson: wrote", *out)
}
