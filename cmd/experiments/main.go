// Command experiments regenerates the paper's tables and figures from
// the simulator (see DESIGN.md for the per-experiment index).
//
// Usage:
//
//	experiments -run table1
//	experiments -run table2 -archs resnet20,resnet32
//	experiments -run figure5,figure6
//	experiments -run all -scale quick
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"rowhammer/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

var order = []string{
	"table1", "table2", "table3", "table4",
	"figure2", "figure4", "figure5", "figure6", "figure7", "figure8",
	"figure9", "figure10", "figure11", "figure12", "figure13",
	"defense_bnn", "defense_pwc", "defense_deepdyve", "defense_encoding",
	"defense_radar", "defense_reconstruction", "plundervolt",
	"robustness",
}

func run() error {
	runList := flag.String("run", "", "comma-separated experiment ids, or 'all' ("+strings.Join(order, ", ")+")")
	scaleName := flag.String("scale", "quick", "quick or paper")
	archs := flag.String("archs", "resnet20", "comma-separated architectures for table2")
	flag.Parse()

	if *runList == "" {
		return fmt.Errorf("pass -run <ids> or -run all")
	}
	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.QuickScale()
	case "paper":
		scale = experiments.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}

	ids := strings.Split(*runList, ",")
	if *runList == "all" {
		ids = order
	}
	for _, id := range ids {
		fmt.Printf("==== %s ====\n", id)
		if err := runOne(strings.TrimSpace(id), scale, strings.Split(*archs, ",")); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println()
	}
	return nil
}

func runOne(id string, scale experiments.Scale, archs []string) error {
	switch id {
	case "table1":
		rows, err := experiments.Table1(512, scale.Seed)
		if err != nil {
			return err
		}
		fmt.Println("device  type  paper   measured  sides")
		for _, r := range rows {
			fmt.Printf("%-6s  %-4s  %6.2f  %8.2f  %d\n",
				r.Device, r.Type, r.PaperFlipsPerPage, r.MeasuredFlipsPerPage, r.Sides)
		}
	case "table2":
		rows, err := experiments.Table2(scale, archs)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Println(r.String())
		}
	case "robustness":
		rows, err := experiments.Robustness(scale, nil, nil)
		if err != nil {
			return err
		}
		fmt.Println("flip-fail  budget  used  retempl  matched    r_match")
		for _, r := range rows {
			fmt.Printf("%9.2f  %6d  %4d  %7d  %4d/%-4d  %6.2f%%\n",
				r.FlipFailProb, r.Rounds, r.RoundsUsed, r.Retemplates,
				r.NMatch, r.NRequired, r.RMatch)
		}
	case "table3":
		rows, err := experiments.Table3(scale, nil)
		if err != nil {
			return err
		}
		fmt.Println("model   base-acc  TA      ASR     Nflip")
		for _, r := range rows {
			fmt.Printf("%-6s  %6.2f%%  %6.2f%% %6.2f%% %d\n",
				r.Arch, 100*r.BaseAcc, 100*r.TA, 100*r.ASR, r.NFlip)
		}
	case "table4":
		rows, err := experiments.Table4(scale, "resnet20")
		if err != nil {
			return err
		}
		fmt.Println("kept  TA      ASR")
		for _, r := range rows {
			fmt.Printf("%3d%%  %6.2f%% %6.2f%%\n", r.ModificationPercent, 100*r.TA, 100*r.ASR)
		}
	case "figure2":
		rep, err := experiments.Figure2(1024, scale.Seed)
		if err != nil {
			return err
		}
		fmt.Printf("buffer %d MB: %d flips, %.4f%% of cells vulnerable, max %d flips in one page\n",
			rep.BufferBytes>>20, rep.TotalFlips, 100*rep.VulnerableRatio, rep.MaxFlipsInPage)
	case "figure4":
		points, err := experiments.Figure4(64, scale.Seed)
		if err != nil {
			return err
		}
		fmt.Println("file-page  frame")
		for _, p := range points {
			fmt.Printf("%9d  %d\n", p.FilePage, p.Frame)
		}
	case "figure5":
		points, err := experiments.Figure5(2048, 19, scale.Seed)
		if err != nil {
			return err
		}
		fmt.Println("sides  avg-flips/page")
		for _, p := range points {
			fmt.Printf("%5d  %.3f\n", p.Sides, p.AvgFlipsPerPage)
		}
	case "figure6":
		rep, err := experiments.Figure6(2048, scale.Seed)
		if err != nil {
			return err
		}
		fmt.Printf("15-sided: %.2f flips/page (extra %.2f)\n", rep.Avg15, rep.ExtraPerPage15)
		fmt.Printf(" 7-sided: %.2f flips/page (extra %.2f)\n", rep.Avg7, rep.ExtraPerPage7)
	case "figure7":
		rep, err := experiments.Figure7(scale, "resnet20")
		if err != nil {
			return err
		}
		fmt.Printf("iterations %d, bit-reduction at %v, post-BR spike ratio %.2f\n",
			len(rep.Loss), rep.BitReduceIters, rep.SpikeRatio)
		for i := 0; i < len(rep.Loss); i += len(rep.Loss) / 20 {
			fmt.Printf("iter %4d: loss %.4f\n", i, rep.Loss[i])
		}
	case "figure8":
		rep, err := experiments.Figure8(scale, "resnet20", 4)
		if err != nil {
			return err
		}
		fmt.Printf("trigger mask covers %.1f%% of the image\n", 100*rep.MaskArea)
		fmt.Printf("clean model trigger focus:      %.3f\n", rep.CleanFocus)
		fmt.Printf("backdoored model trigger focus: %.3f (ASR %.1f%%)\n",
			rep.BackdooredFocus, 100*rep.OfflineASR)
	case "figure9":
		for _, s := range experiments.Figure9() {
			fmt.Printf("k+l=%d:", s.KPlusL)
			for i, n := range s.PageCounts {
				fmt.Printf("  p(%d)=%.4g", n, s.Prob[i])
			}
			fmt.Println()
		}
	case "figure10":
		series := experiments.Figure10()
		sort.Slice(series, func(i, j int) bool { return series[i].Device < series[j].Device })
		for _, s := range series {
			fmt.Printf("%-4s", s.Device)
			for i, n := range s.PageCounts {
				fmt.Printf("  p(%d)=%.3g", n, s.Prob[i])
			}
			fmt.Println()
		}
	case "figure11":
		rep, err := experiments.Figure11(1024, scale.Seed)
		if err != nil {
			return err
		}
		fmt.Printf("%d timing samples, %d contiguous runs detected\n", len(rep.Timings), len(rep.Runs))
		for _, r := range rep.Runs {
			fmt.Printf("run: pages %d..%d (%d pages)\n", r.StartPage, r.StartPage+r.Pages-1, r.Pages)
		}
	case "figure12":
		rep, err := experiments.Figure12(512, scale.Seed)
		if err != nil {
			return err
		}
		fmt.Printf("conflict fraction %.3f (≈1/16 banks), conflict %.0f cycles vs fast %.0f cycles\n",
			rep.ConflictFrac, rep.MeanConflict, rep.MeanFast)
	case "figure13":
		rep, err := experiments.Figure13(scale, "resnet20")
		if err != nil {
			return err
		}
		fmt.Printf("weight file: %d pages\n", rep.TotalPages)
		fmt.Printf("CFT+BR: flips on pages %v (spread %.2f, max %d per page)\n",
			rep.CFTBRPages, rep.CFTBRSpread, rep.CFTBRMaxHits)
		fmt.Printf("TBT:    flips on pages %v (spread %.2f, max %d per page)\n",
			rep.TBTPages, rep.TBTSpread, rep.TBTMaxHits)
	case "defense_bnn":
		rep, err := experiments.DefenseBinarization(scale)
		if err != nil {
			return err
		}
		fmt.Printf("pages: %d full-precision → %d binarized (N_flip budget %d)\n",
			rep.Info.FullPrecisionPages, rep.Info.BinarizedPages, rep.NFlipBudget)
		fmt.Printf("accuracy cost: %.2f%% (binarized) vs %.2f%% (full)\n", 100*rep.BaseAcc, 100*rep.FullAcc)
		fmt.Printf("attack under budget: TA %.2f%% ASR %.2f%%\n", 100*rep.AttackTA, 100*rep.AttackASR)
	case "defense_pwc":
		rep, err := experiments.DefensePWC(scale, "resnet32")
		if err != nil {
			return err
		}
		fmt.Printf("clustering score %.4f → %.4f, clean TA %.2f%%\n",
			rep.ClusterBefore, rep.ClusterAfter, 100*rep.CleanTA)
		fmt.Printf("attack on clustered model: TA %.2f%% ASR %.2f%%\n", 100*rep.AttackTA, 100*rep.AttackASR)
	case "defense_deepdyve":
		rep, err := experiments.DefenseDeepDyve(scale, "resnet20")
		if err != nil {
			return err
		}
		fmt.Printf("offline ASR %.2f%%, ASR despite DeepDyve %.2f%%, alarms %.2f%%, recovered %.2f%%\n",
			100*rep.OfflineASR, 100*rep.ASRDespiteDefense, 100*rep.AlarmRate, 100*rep.RecoveredRate)
	case "defense_encoding":
		rep, err := experiments.DefenseEncoding(scale, "resnet20")
		if err != nil {
			return err
		}
		fmt.Printf("attack detected: %v (measured verify %v over %d weights)\n",
			rep.Detected, rep.MeasuredVerify, rep.MeasuredWeights)
		fmt.Printf("extrapolated ResNet-34 verify: %v, storage overhead %.0f%%\n",
			rep.ExtrapolatedVerify, 100*rep.StorageRatio)
	case "defense_radar":
		rep, err := experiments.DefenseRADAR(scale, "resnet20")
		if err != nil {
			return err
		}
		fmt.Printf("standard attack detected: %v\n", rep.StandardDetected)
		fmt.Printf("adaptive (MSB-avoiding) detected: %v, its TA %.2f%% ASR %.2f%%\n",
			rep.AdaptiveDetected, 100*rep.AdaptiveTA, 100*rep.AdaptiveASR)
	case "defense_reconstruction":
		rep, err := experiments.DefenseReconstruction(scale, "resnet32")
		if err != nil {
			return err
		}
		fmt.Printf("unaware attacker: ASR %.2f%% → %.2f%% after reconstruction (TA %.2f%% → %.2f%%)\n",
			100*rep.UnawareASR, 100*rep.AfterReconASR, 100*rep.UnawareTA, 100*rep.AfterReconTA)
		fmt.Printf("defense-aware attacker after reconstruction: TA %.2f%% ASR %.2f%%\n",
			100*rep.AdaptiveTA, 100*rep.AdaptiveASR)
	case "plundervolt":
		rep := experiments.Plundervolt(scale.Seed)
		fmt.Printf("PoC loop faults: %d, safe-operand faults: %d, quantized-MAC faults: %d\n",
			rep.PoCLoopFaults, rep.SafeOperandFaults, rep.QuantizedMACFaults)
	default:
		return fmt.Errorf("unknown experiment (known: %s)", strings.Join(order, ", "))
	}
	return nil
}
