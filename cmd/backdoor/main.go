// Command backdoor runs the end-to-end attack pipeline of the paper on
// a simulated deployment: train a clean victim, learn the trigger and
// bit flips offline (Algorithm 1), then template, massage and hammer
// the simulated DRAM online, and report the deployed backdoor's
// metrics.
//
// Usage:
//
//	backdoor -arch resnet20 -target 2 -width 0.25 -device "" -sides 2
//
// -fleet N runs the online phase as N concurrent campaigns through the
// fleet engine (one in-process sweep). For long-running orchestration —
// a durable fleet queue, streaming results over HTTP, and
// checkpoint/resume across daemon restarts — use cmd/campaignd instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rowhammer"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "backdoor:", err)
		os.Exit(1)
	}
}

func run() error {
	arch := flag.String("arch", "resnet20", "victim architecture")
	width := flag.Float64("width", 0.25, "model width multiplier")
	target := flag.Int("target", 2, "backdoor target class")
	nflip := flag.Int("nflip", 0, "bit-flip budget (0 = pages/7)")
	iters := flag.Int("iters", 100, "offline optimization iterations")
	device := flag.String("device", "", "Table I DRAM device name (empty = paper's DDR3)")
	sides := flag.Int("sides", 0, "hammer pattern width (0 = auto)")
	seed := flag.Int64("seed", 1, "random seed")
	rounds := flag.Int("rounds", 0, "verify/re-hammer round budget (0 = single shot)")
	escalate := flag.Float64("escalate", 0, "per-round intensity escalation factor (0 = none)")
	retemplate := flag.Int("retemplate", 0, "adaptive re-templating pass budget")
	flipfail := flag.Float64("flipfail", 0, "per-pass weak-cell flip failure probability")
	jitter := flag.Float64("jitter", 0, "TRR-escape disturbance jitter amplitude")
	faultseed := flag.Int64("faultseed", 0, "fault-stream seed (0 = 1 when faults enabled)")
	fleet := flag.Int("fleet", 0, "fleet mode: attack N modules concurrently (0 = single module)")
	fleetDevices := flag.String("fleet-devices", "", "comma-separated Table I device names cycled across the fleet (empty = -device for all)")
	fleetWorkers := flag.Int("fleet-workers", 2, "concurrent campaign slots in fleet mode")
	fleetArenaMB := flag.Int("fleet-arena-mb", 0, "cap on estimated in-flight DRAM state in MB (0 = unbounded)")
	serveFire := flag.Bool("serve", false, "victim-under-fire mode: hammer the live serving engine and report the trajectory")
	serveWorkers := flag.Int("serve-workers", 2, "serving-engine executor workers in -serve mode")
	serveBatch := flag.Int("serve-batch", 32, "micro-batch size cap in -serve mode")
	serveReplay := flag.Int("serve-replay", 256, "DeepDyve replay queries per measurement window in -serve mode")
	serveClients := flag.Int("serve-clients", 4, "live blocking client loops for wall-clock stats in -serve mode")
	flag.Parse()

	fmt.Printf("[1/4] training clean %s (width %.2f)…\n", *arch, *width)
	victim, err := rowhammer.TrainVictim(rowhammer.VictimConfig{
		Arch: *arch, WidthMult: *width, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("      clean accuracy %.2f%%, %d params over %d pages\n",
		100*victim.CleanAccuracy(), victim.NumParams(), victim.WeightFilePages())

	fmt.Printf("[2/4] offline phase: CFT+BR (Algorithm 1)…\n")
	off, err := rowhammer.InjectBackdoor(victim, rowhammer.AttackConfig{
		TargetClass: *target, NFlip: *nflip, Iterations: *iters,
	})
	if err != nil {
		return err
	}
	offTA, offASR := off.OfflineMetrics()
	fmt.Printf("      %d bit flips, offline TA %.2f%%, ASR %.2f%%\n", off.NFlip, 100*offTA, 100*offASR)

	hw := rowhammer.HardwareConfig{
		Device: *device, Sides: *sides, Seed: *seed,
		Rounds: *rounds, Escalation: *escalate, RetemplatePasses: *retemplate,
		FlipFailProb: *flipfail, TRRJitter: *jitter, FaultSeed: *faultseed,
	}
	if *fleet > 0 {
		return runFleet(victim, off, hw, *fleet, *fleetDevices, *fleetWorkers, *fleetArenaMB)
	}
	if *serveFire {
		return runServe(victim, off, hw, rowhammer.ServeOptions{
			Workers: *serveWorkers, BatchMax: *serveBatch,
			ReplayQueries: *serveReplay, LiveClients: *serveClients,
		})
	}

	fmt.Printf("[3/4] online phase: template → massage → hammer…\n")
	on, err := rowhammer.HammerOnline(victim, off, hw)
	if err != nil {
		return err
	}
	for _, r := range on.Rounds {
		fmt.Printf("      round %d: hammered %d rows, %d/%d flips verified fired\n",
			r.Round, r.RowsHammered, r.NMatch, r.NMatch+r.Missing)
	}
	if on.Retemplated > 0 {
		fmt.Printf("      %d re-templating pass(es), %d requirement(s) left unmatched\n",
			on.Retemplated, on.Unmatched)
	}
	fmt.Printf("      %d/%d required flips landed, %d accidental, r_match %.2f%%\n",
		on.Matched, on.Required, on.Accidental, on.RMatch)

	fmt.Printf("[4/4] evaluating deployed model…\n")
	rep, err := rowhammer.Evaluate(victim, off, on)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Printf("clean accuracy:   %6.2f%%\n", 100*rep.CleanAccuracy)
	fmt.Printf("offline TA / ASR: %6.2f%% / %6.2f%%\n", 100*rep.OfflineTA, 100*rep.OfflineASR)
	fmt.Printf("online  TA / ASR: %6.2f%% / %6.2f%%\n", 100*rep.OnlineTA, 100*rep.OnlineASR)
	fmt.Printf("N_flip offline/online: %d / %d, r_match %.2f%%\n",
		rep.NFlipOffline, rep.NFlipOnline, rep.RMatch)
	return nil
}

// runServe hammers the weight file while the victim keeps answering
// queries through the batched int8 serving engine, hot-swapping each
// round's corrupted file through the epoch path, and prints the
// attack-under-load trajectory.
func runServe(victim *rowhammer.Victim, off *rowhammer.Offline, hw rowhammer.HardwareConfig,
	opts rowhammer.ServeOptions) error {
	fmt.Printf("[3/4] victim under fire: serving with %d worker(s), batch ≤ %d, hammering live…\n",
		opts.Workers, opts.BatchMax)
	tl, err := rowhammer.ServeUnderFire(victim, off, hw, opts)
	if err != nil {
		return err
	}

	fmt.Printf("      %d/%d required flips landed, r_match %.2f%%\n",
		tl.Online.Matched, tl.Online.Required, tl.Online.RMatch)
	fmt.Println()
	fmt.Println("window  round  flips  epoch      TA      ASR    alarm    simQPS    p99(µs)  shed")
	for _, w := range tl.Windows {
		fmt.Printf("%6d  %5d  %5d  %5d  %6.2f%%  %6.2f%%  %6.2f%%  %8.0f  %9.0f  %4d\n",
			w.Window, w.Round, w.FlipsApplied, w.EpochSeq,
			100*w.TA, 100*w.ASR, 100*w.AlarmRate,
			w.SimQPS, float64(w.SimP99Ns)/1e3, w.SimShed)
	}
	fmt.Println()
	if tl.Detected {
		fmt.Printf("DeepDyve: DETECTED in window %d (baseline alarm %.2f%%), lag ≈ %d replay queries\n",
			tl.DetectionWindow, 100*tl.BaselineAlarmRate, tl.DetectionLagQueries)
	} else {
		fmt.Printf("DeepDyve: not detected (baseline alarm %.2f%%)\n", 100*tl.BaselineAlarmRate)
	}
	if tl.LiveServed > 0 {
		fmt.Printf("live traffic: %d served (%d shed) at %.0f QPS wall-clock, mean batch %.1f\n",
			tl.LiveServed, tl.LiveShed, tl.LiveQPS, tl.LiveMeanBatch)
	}
	return nil
}

// runFleet attacks n modules concurrently, cycling the optional device
// list, streaming each campaign's outcome as it lands and closing with
// the aggregate plus the deployed metrics of the first campaign.
func runFleet(victim *rowhammer.Victim, off *rowhammer.Offline, hw rowhammer.HardwareConfig,
	n int, devices string, workers, arenaMB int) error {
	devs := []string{hw.Device}
	if devices != "" {
		devs = strings.Split(devices, ",")
	}
	modules := make([]rowhammer.FleetModule, n)
	for i := range modules {
		mhw := hw
		mhw.Device = strings.TrimSpace(devs[i%len(devs)])
		modules[i] = rowhammer.FleetModule{
			Name:     fmt.Sprintf("campaign-%d", i),
			Hardware: mhw,
		}
	}

	fmt.Printf("[3/4] fleet online phase: %d campaigns, %d workers…\n", n, workers)
	sum, err := rowhammer.RunFleet(victim, off, modules, rowhammer.FleetConfig{
		Workers:    workers,
		MaxArenaMB: arenaMB,
		OnReport: func(r rowhammer.FleetReport) {
			if r.Err != nil {
				fmt.Printf("      %-12s %-10s FAILED: %v\n", r.Name, r.SKU, r.Err)
				return
			}
			tag := "cold"
			if r.CacheHit {
				tag = "cache-hit"
			}
			fmt.Printf("      %-12s %-10s %-9s %d/%d flips landed, r_match %.2f%%\n",
				r.Name, r.SKU, tag, r.Online.Matched, r.Online.Required, r.Online.RMatch)
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("      fleet: %d campaigns, %d cache hits, %d failed, mean r_match %.2f%%\n",
		len(sum.Reports), sum.CacheHits, sum.Failed, sum.MeanRMatch)

	for _, r := range sum.Reports {
		if r.Err != nil {
			continue
		}
		fmt.Printf("[4/4] evaluating deployed model of %s…\n", r.Name)
		rep, err := rowhammer.Evaluate(victim, off, r.Online)
		if err != nil {
			return err
		}
		fmt.Printf("      online TA %.2f%%, ASR %.2f%%\n", 100*rep.OnlineTA, 100*rep.OnlineASR)
		break
	}
	return nil
}
