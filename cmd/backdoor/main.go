// Command backdoor runs the end-to-end attack pipeline of the paper on
// a simulated deployment: train a clean victim, learn the trigger and
// bit flips offline (Algorithm 1), then template, massage and hammer
// the simulated DRAM online, and report the deployed backdoor's
// metrics.
//
// Usage:
//
//	backdoor -arch resnet20 -target 2 -width 0.25 -device "" -sides 2
package main

import (
	"flag"
	"fmt"
	"os"

	"rowhammer"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "backdoor:", err)
		os.Exit(1)
	}
}

func run() error {
	arch := flag.String("arch", "resnet20", "victim architecture")
	width := flag.Float64("width", 0.25, "model width multiplier")
	target := flag.Int("target", 2, "backdoor target class")
	nflip := flag.Int("nflip", 0, "bit-flip budget (0 = pages/7)")
	iters := flag.Int("iters", 100, "offline optimization iterations")
	device := flag.String("device", "", "Table I DRAM device name (empty = paper's DDR3)")
	sides := flag.Int("sides", 0, "hammer pattern width (0 = auto)")
	seed := flag.Int64("seed", 1, "random seed")
	rounds := flag.Int("rounds", 0, "verify/re-hammer round budget (0 = single shot)")
	escalate := flag.Float64("escalate", 0, "per-round intensity escalation factor (0 = none)")
	retemplate := flag.Int("retemplate", 0, "adaptive re-templating pass budget")
	flipfail := flag.Float64("flipfail", 0, "per-pass weak-cell flip failure probability")
	jitter := flag.Float64("jitter", 0, "TRR-escape disturbance jitter amplitude")
	faultseed := flag.Int64("faultseed", 0, "fault-stream seed (0 = 1 when faults enabled)")
	flag.Parse()

	fmt.Printf("[1/4] training clean %s (width %.2f)…\n", *arch, *width)
	victim, err := rowhammer.TrainVictim(rowhammer.VictimConfig{
		Arch: *arch, WidthMult: *width, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("      clean accuracy %.2f%%, %d params over %d pages\n",
		100*victim.CleanAccuracy(), victim.NumParams(), victim.WeightFilePages())

	fmt.Printf("[2/4] offline phase: CFT+BR (Algorithm 1)…\n")
	off, err := rowhammer.InjectBackdoor(victim, rowhammer.AttackConfig{
		TargetClass: *target, NFlip: *nflip, Iterations: *iters,
	})
	if err != nil {
		return err
	}
	offTA, offASR := off.OfflineMetrics()
	fmt.Printf("      %d bit flips, offline TA %.2f%%, ASR %.2f%%\n", off.NFlip, 100*offTA, 100*offASR)

	fmt.Printf("[3/4] online phase: template → massage → hammer…\n")
	on, err := rowhammer.HammerOnline(victim, off, rowhammer.HardwareConfig{
		Device: *device, Sides: *sides, Seed: *seed,
		Rounds: *rounds, Escalation: *escalate, RetemplatePasses: *retemplate,
		FlipFailProb: *flipfail, TRRJitter: *jitter, FaultSeed: *faultseed,
	})
	if err != nil {
		return err
	}
	for _, r := range on.Rounds {
		fmt.Printf("      round %d: hammered %d rows, %d/%d flips verified fired\n",
			r.Round, r.RowsHammered, r.NMatch, r.NMatch+r.Missing)
	}
	if on.Retemplated > 0 {
		fmt.Printf("      %d re-templating pass(es), %d requirement(s) left unmatched\n",
			on.Retemplated, on.Unmatched)
	}
	fmt.Printf("      %d/%d required flips landed, %d accidental, r_match %.2f%%\n",
		on.Matched, on.Required, on.Accidental, on.RMatch)

	fmt.Printf("[4/4] evaluating deployed model…\n")
	rep, err := rowhammer.Evaluate(victim, off, on)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Printf("clean accuracy:   %6.2f%%\n", 100*rep.CleanAccuracy)
	fmt.Printf("offline TA / ASR: %6.2f%% / %6.2f%%\n", 100*rep.OfflineTA, 100*rep.OfflineASR)
	fmt.Printf("online  TA / ASR: %6.2f%% / %6.2f%%\n", 100*rep.OnlineTA, 100*rep.OnlineASR)
	fmt.Printf("N_flip offline/online: %d / %d, r_match %.2f%%\n",
		rep.NFlipOffline, rep.NFlipOnline, rep.RMatch)
	return nil
}
