// Memory-templating walk-through: the unprivileged building blocks of
// the online phase, step by step — SPOILER contiguity detection,
// row-buffer-conflict bank clustering, Rowhammer profiling of the
// attacker's own buffer, and the Listing-1 page-frame-cache massaging
// that steers a victim file onto chosen physical frames.
//
//	go run ./examples/memtemplating
package main

import (
	"fmt"
	"log"

	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
	"rowhammer/internal/profile"
	"rowhammer/internal/sidechan"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	module, err := dram.NewModuleForSize(64<<20, dram.PaperDDR3(), 2024)
	if err != nil {
		return err
	}
	sys := memsys.NewSystem(module)
	attacker := sys.NewProcess()

	// Step 1: allocate a buffer and find physically contiguous memory
	// with SPOILER (no root, no /proc/self/pagemap).
	const bufPages = 2048
	base, err := attacker.Mmap(bufPages)
	if err != nil {
		return err
	}
	meas := sidechan.NewMeasurer(sys, 1)
	timings, err := meas.SpoilerSweep(attacker, base, bufPages)
	if err != nil {
		return err
	}
	runs := sidechan.DetectContiguousRuns(timings, sidechan.SpoilerAlias)
	fmt.Printf("step 1 — SPOILER: %d timing samples, peaks every %d pages\n", len(timings), sidechan.SpoilerAlias)
	for _, r := range runs {
		fmt.Printf("          contiguous run: pages %d..%d (%d pages = %d MB)\n",
			r.StartPage, r.StartPage+r.Pages-1, r.Pages, r.Pages*memsys.PageSize>>20)
	}

	// Step 2: cluster row chunks into banks with the row-buffer
	// conflict side channel.
	var chunks []int
	for i := 0; i < 64; i++ {
		chunks = append(chunks, base+i*dram.RowBytes)
	}
	clusters, err := meas.ClusterByBank(attacker, chunks)
	if err != nil {
		return err
	}
	fmt.Printf("step 2 — row-conflict clustering: %d chunks → %d banks\n", len(chunks), len(clusters))

	// Step 3: profile the buffer for reproducible bit flips.
	prof, err := profile.ProfileBuffer(sys, attacker, base, bufPages, profile.Config{
		Sides: 2, Intensity: 1, MeasureSeed: 1,
	})
	if err != nil {
		return err
	}
	fmt.Printf("step 3 — Rowhammer templating: %d flips in %d victim pages (%.4f%% of bits)\n",
		prof.TotalFlips(), prof.VictimPageCount(),
		100*float64(prof.TotalFlips())/float64(prof.VictimPageCount()*memsys.PageSize*8))

	// Step 4: massage a victim file onto frames of our choosing via the
	// FILO per-CPU page-frame cache (Listing 1).
	const filePages = 8
	sys.WriteFile("victim.bin", make([]byte, filePages*memsys.PageSize))
	assignment := []int{40, 12, 300, 77, 501, 9, 230, 111}
	want := make([]int, filePages)
	for i, bp := range assignment {
		if want[i], err = attacker.FrameOf(base + bp*memsys.PageSize); err != nil {
			return err
		}
	}
	for sys.FrameCacheDepth() > 0 {
		if _, err := attacker.Mmap(1); err != nil {
			return err
		}
	}
	if err := memsys.MassageFileMapping(attacker, base, assignment); err != nil {
		return err
	}
	victim := sys.NewProcess()
	vbase, err := victim.MmapFile("victim.bin")
	if err != nil {
		return err
	}
	fmt.Println("step 4 — massaging (Listing 1): victim file page → physical frame")
	allPlaced := true
	for i := 0; i < filePages; i++ {
		got, err := victim.FrameOf(vbase + i*memsys.PageSize)
		if err != nil {
			return err
		}
		mark := "✓"
		if got != want[i] {
			mark = "✗"
			allPlaced = false
		}
		fmt.Printf("          file page %d → frame %6d (planned %6d) %s\n", i, got, want[i], mark)
	}
	fmt.Printf("placement fully controlled: %v\n", allPlaced)
	return nil
}
