// Quickstart: the complete attack in four calls to the public API.
//
//	go run ./examples/quickstart
//
// Trains a small ResNet-20 victim on the synthetic CIFAR-10 stand-in,
// learns a trigger and a handful of single-bit weight flips offline
// (Algorithm 1), hammers them into simulated DRAM online, and prints
// the before/after metrics.
package main

import (
	"fmt"
	"log"

	"rowhammer"
)

func main() {
	fmt.Println("== Rowhammer backdoor quickstart ==")

	victim, err := rowhammer.TrainVictim(rowhammer.VictimConfig{
		Arch: "resnet20",
		Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim: %d parameters over %d memory pages, clean accuracy %.1f%%\n",
		victim.NumParams(), victim.WeightFilePages(), 100*victim.CleanAccuracy())

	offline, err := rowhammer.InjectBackdoor(victim, rowhammer.AttackConfig{
		TargetClass: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	offTA, offASR := offline.OfflineMetrics()
	fmt.Printf("offline: %d bit flips selected, TA %.1f%%, ASR %.1f%%\n",
		offline.NFlip, 100*offTA, 100*offASR)

	online, err := rowhammer.HammerOnline(victim, offline, rowhammer.HardwareConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("online: %d/%d required flips landed (r_match %.2f%%), %d accidental\n",
		online.Matched, online.Required, online.RMatch, online.Accidental)

	report, err := rowhammer.Evaluate(victim, offline, online)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("deployed model: TA %.1f%% (clean was %.1f%%) — the backdoor is stealthy\n",
		100*report.OnlineTA, 100*report.CleanAccuracy)
	fmt.Printf("trigger-stamped inputs → class 2 with ASR %.1f%%\n", 100*report.OnlineASR)
	fmt.Printf("total bits flipped in DRAM: %d of %d\n",
		report.NFlipOnline, victim.NumParams()*8)
}
