// Quickstart: the complete attack in four calls to the public API.
//
//	go run ./examples/quickstart
//
// Trains a small ResNet-20 victim on the synthetic CIFAR-10 stand-in,
// learns a trigger and a handful of single-bit weight flips offline
// (Algorithm 1), hammers them into simulated DRAM online, and prints
// the before/after metrics.
package main

import (
	"fmt"
	"log"

	"rowhammer"
)

func main() {
	fmt.Println("== Rowhammer backdoor quickstart ==")

	victim, err := rowhammer.TrainVictim(rowhammer.VictimConfig{
		Arch: "resnet20",
		Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim: %d parameters over %d memory pages, clean accuracy %.1f%%\n",
		victim.NumParams(), victim.WeightFilePages(), 100*victim.CleanAccuracy())

	offline, err := rowhammer.InjectBackdoor(victim, rowhammer.AttackConfig{
		TargetClass: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	offTA, offASR := offline.OfflineMetrics()
	fmt.Printf("offline: %d bit flips selected, TA %.1f%%, ASR %.1f%%\n",
		offline.NFlip, 100*offTA, 100*offASR)

	online, err := rowhammer.HammerOnline(victim, offline, rowhammer.HardwareConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("online: %d/%d required flips landed (r_match %.2f%%), %d accidental\n",
		online.Matched, online.Required, online.RMatch, online.Accidental)

	report, err := rowhammer.Evaluate(victim, offline, online)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("deployed model: TA %.1f%% (clean was %.1f%%) — the backdoor is stealthy\n",
		100*report.OnlineTA, 100*report.CleanAccuracy)
	fmt.Printf("trigger-stamped inputs → class 2 with ASR %.1f%%\n", 100*report.OnlineASR)
	fmt.Printf("total bits flipped in DRAM: %d of %d\n",
		report.NFlipOnline, victim.NumParams()*8)

	// Fleet sweep: the same offline product deployed across four
	// machines of two hardware SKUs. Modules sharing an identity reuse
	// one flip template through the cross-campaign cache — here the
	// second module of each SKU is a cache hit, and its result is
	// byte-identical to its cold twin.
	fmt.Println()
	fmt.Println("== Fleet sweep: 4 modules, 2 SKUs ==")
	ddr3 := rowhammer.HardwareConfig{Seed: 7}
	ddr4 := rowhammer.HardwareConfig{Seed: 7, Device: "K1", Sides: 7}
	summary, err := rowhammer.RunFleet(victim, offline, []rowhammer.FleetModule{
		{Name: "rack-a0", Hardware: ddr3},
		{Name: "rack-a1", Hardware: ddr3},
		{Name: "rack-b0", Hardware: ddr4},
		{Name: "rack-b1", Hardware: ddr4},
	}, rowhammer.FleetConfig{
		Workers: 2,
		OnReport: func(r rowhammer.FleetReport) {
			if r.Err != nil {
				fmt.Printf("%-8s %-12s FAILED: %v\n", r.Name, r.SKU, r.Err)
				return
			}
			tag := "cold"
			if r.CacheHit {
				tag = "cache-hit"
			}
			fmt.Printf("%-8s %-12s %-9s %d/%d flips landed, r_match %.2f%%\n",
				r.Name, r.SKU, tag, r.Online.Matched, r.Online.Required, r.Online.RMatch)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: %d campaigns, %d cache hits, mean r_match %.2f%%\n",
		len(summary.Reports), summary.CacheHits, summary.MeanRMatch)
}
