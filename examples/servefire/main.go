// Servefire: the victim under fire — a live batched int8 serving
// engine answers queries while the online attack hammers its weight
// file, hot-swapping each round's corruption through the torn-read-safe
// epoch path.
//
//	go run ./examples/servefire
//
// Prints the attack-under-load trajectory: per-window accuracy, attack
// success rate, DeepDyve alarm rate and simulated service quality, then
// the detection verdict and the wall-clock traffic numbers.
package main

import (
	"fmt"
	"log"

	"rowhammer"
)

func main() {
	fmt.Println("== Victim under fire: serving during the hammer ==")

	victim, err := rowhammer.TrainVictim(rowhammer.VictimConfig{
		Arch: "resnet20",
		Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim: clean accuracy %.1f%%, weights over %d pages\n",
		100*victim.CleanAccuracy(), victim.WeightFilePages())

	offline, err := rowhammer.InjectBackdoor(victim, rowhammer.AttackConfig{
		TargetClass: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline: %d bit flips selected\n", offline.NFlip)

	// Three verify/re-hammer rounds so the trajectory has intermediate
	// states: the serving engine flips weights mid-flight after every
	// round, never tearing a forward pass.
	timeline, err := rowhammer.ServeUnderFire(victim, offline,
		rowhammer.HardwareConfig{Seed: 7, Rounds: 3},
		rowhammer.ServeOptions{Workers: 2, ReplayQueries: 128, LiveClients: 4})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("window  round  flips  epoch      TA      ASR    alarm    simQPS")
	for _, w := range timeline.Windows {
		fmt.Printf("%6d  %5d  %5d  %5d  %6.1f%%  %6.1f%%  %6.1f%%  %8.0f\n",
			w.Window, w.Round, w.FlipsApplied, w.EpochSeq,
			100*w.TA, 100*w.ASR, 100*w.AlarmRate, w.SimQPS)
	}

	fmt.Println()
	if timeline.Detected {
		fmt.Printf("DeepDyve detected the attack in window %d, ≈%d replay queries after baseline\n",
			timeline.DetectionWindow, timeline.DetectionLagQueries)
	} else {
		fmt.Println("DeepDyve never alarmed above baseline — the backdoor slipped through")
	}
	fmt.Printf("live traffic during the attack: %d requests at %.0f QPS, mean batch %.1f\n",
		timeline.LiveServed, timeline.LiveQPS, timeline.LiveMeanBatch)
}
