// Cloud co-location scenario: a victim inference service and an
// unprivileged attacker process share one physical DRAM module, the
// paper's threat model (§III). The example walks the exact online-phase
// sequence — templating, frame-cache massaging, victim model load,
// hammering — and demonstrates the two stealth properties: the on-disk
// model stays pristine, and evicting the page cache (a "reboot")
// removes every trace of the attack. A second run then injects
// per-pass flip failures (real modules do not fire every weak cell
// every time) and shows the robust engine's verify → re-hammer rounds
// recovering the flips a single shot loses.
//
//	go run ./examples/cloudattack
package main

import (
	"bytes"
	"fmt"
	"log"

	"rowhammer/internal/core"
	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
	"rowhammer/internal/metrics"
	"rowhammer/internal/models"
	"rowhammer/internal/pretrain"
	"rowhammer/internal/quant"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// ---- The cloud host: one DRAM module shared by all tenants. ----
	module, err := dram.NewModuleForSize(192<<20, dram.PaperDDR3(), 42)
	if err != nil {
		return err
	}
	host := memsys.NewSystem(module)

	// ---- The victim tenant deploys its model. ----
	fmt.Println("[victim] training and deploying a ResNet-20 classifier…")
	mcfg := models.Config{Arch: "resnet20", Classes: 10, WidthMult: 0.25, Seed: 3}
	trained, err := pretrain.Train(pretrain.Config{
		Model: mcfg, TrainSamples: 1500, TestSamples: 400, Epochs: 3, Seed: 3,
	})
	if err != nil {
		return err
	}
	deployModel, err := pretrain.CloneModel(mcfg, trained.Model)
	if err != nil {
		return err
	}
	q := quant.NewQuantizer(deployModel)
	weightFile := q.WeightFileBytes()
	host.WriteFile("service/model.bin", weightFile)
	fmt.Printf("[victim] model.bin: %d pages, clean accuracy %.1f%%\n",
		len(weightFile)/memsys.PageSize, 100*trained.Accuracy)

	// ---- The attacker tenant prepares offline. ----
	fmt.Println("[attacker] offline: learning trigger + bit flips (CFT+BR)…")
	attackModel, err := pretrain.CloneModel(mcfg, trained.Model)
	if err != nil {
		return err
	}
	acfg := core.DefaultConfig(5, 2)
	acfg.Iterations = 100
	acfg.BitReduceEvery = 50
	acfg.Eta = 2
	acfg.Epsilon = 0.02
	offline, err := core.RunOffline(attackModel, trained.Test.Head(32), acfg)
	if err != nil {
		return err
	}
	fmt.Printf("[attacker] %d single-bit flips chosen across separate pages\n", offline.NFlip)

	// ---- Online: template, massage, hammer. ----
	fmt.Println("[attacker] online: templating DRAM, massaging the page cache, hammering…")
	reqs := core.RequirementsFromCodes(offline.OrigCodes, offline.BackdooredCodes)
	ocfg := core.DefaultOnlineConfig(len(weightFile) / memsys.PageSize)
	ocfg.WeightFileName = "service/model.bin"
	onres, err := core.ExecuteOnline(host, weightFile, reqs, ocfg)
	if err != nil {
		return err
	}
	fmt.Printf("[attacker] %d/%d required flips landed, r_match %.2f%%\n",
		onres.NMatch, onres.NRequired, onres.RMatch)

	// ---- The victim service keeps serving… the backdoored weights. ----
	serving, err := pretrain.CloneModel(mcfg, trained.Model)
	if err != nil {
		return err
	}
	qs := quant.NewQuantizer(serving)
	qs.LoadWeightFileBytes(onres.CorruptedFile)
	ta := metrics.TestAccuracy(serving, trained.Test)
	asr := metrics.AttackSuccessRate(serving, trained.Test, offline.Trigger, 2)
	fmt.Printf("[victim]  service accuracy still %.1f%% — nothing looks wrong\n", 100*ta)
	fmt.Printf("[attacker] trigger-stamped requests → class 2 at %.1f%% ASR\n", 100*asr)

	// ---- Stealth property 1: the disk copy is untouched. ----
	disk, err := host.ReadFileFromDisk("service/model.bin")
	if err != nil {
		return err
	}
	fmt.Printf("[audit]   on-disk model unchanged: %v\n", bytes.Equal(disk, weightFile))

	// ---- Stealth property 2: eviction erases every trace. ----
	if err := host.EvictFile("service/model.bin"); err != nil {
		return err
	}
	reloaded := host.NewProcess()
	base, err := reloaded.MmapFile("service/model.bin")
	if err != nil {
		return err
	}
	fresh, err := reloaded.ReadMapped(base, len(weightFile))
	if err != nil {
		return err
	}
	fmt.Printf("[audit]   after page-cache eviction the clean model returns: %v\n",
		bytes.Equal(fresh, weightFile))

	// ---- Robustness: the same attack on a lossy module. ----
	// Real DRAM is not the deterministic simulator above: a weak cell
	// fires on some hammer passes and not others. Inject a 50% per-pass
	// flip failure and compare a single shot against the multi-round
	// verify/re-hammer engine on a fresh host.
	fmt.Println()
	fmt.Println("[fault]   re-running on a lossy module (50% per-pass flip failure)…")
	for _, robust := range []bool{false, true} {
		module, err := dram.NewModuleForSize(192<<20, dram.PaperDDR3(), 42)
		if err != nil {
			return err
		}
		lossy := memsys.NewSystem(module)
		lossy.InjectFaults(dram.FaultModel{FlipFailProb: 0.5, Seed: 9})
		lossy.WriteFile("service/model.bin", weightFile)
		cfg := ocfg
		label := "single shot"
		if robust {
			cfg.Rounds = 5
			cfg.Escalation = 2
			cfg.RetemplatePasses = 2
			label = "5-round retry"
		}
		res, err := core.ExecuteOnline(lossy, weightFile, reqs, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("[fault]   %-11s → %d/%d flips fired over %d round(s), r_match %.2f%%\n",
			label, res.NMatch, res.NRequired, res.Report.RoundsExecuted(), res.RMatch)
	}
	return nil
}
