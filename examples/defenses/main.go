// Defense evaluation: runs a CFT+BR backdoor against three of the
// paper's §VI countermeasures — DeepDyve dynamic verification, RADAR
// MSB checksums (plus the adaptive bypass), and weight reconstruction
// (plus the defense-aware attacker) — and prints who wins each round.
//
//	go run ./examples/defenses
package main

import (
	"fmt"
	"log"

	"rowhammer/internal/core"
	"rowhammer/internal/defense"
	"rowhammer/internal/metrics"
	"rowhammer/internal/models"
	"rowhammer/internal/pretrain"
	"rowhammer/internal/quant"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	mcfg := models.Config{Arch: "resnet20", Classes: 10, WidthMult: 0.25, Seed: 3}
	trained, err := pretrain.Train(pretrain.Config{
		Model: mcfg, TrainSamples: 1200, TestSamples: 400, Epochs: 3, Seed: 3,
	})
	if err != nil {
		return err
	}
	fmt.Printf("victim clean accuracy: %.1f%%\n\n", 100*trained.Accuracy)

	attack := func(forbidden byte, wrap func(func() float32) float32) (*core.Result, *quant.Quantizer, error) {
		m, err := pretrain.CloneModel(mcfg, trained.Model)
		if err != nil {
			return nil, nil, err
		}
		q := quant.NewQuantizer(m)
		cfg := core.DefaultConfig(5, 2)
		cfg.Iterations = 100
		cfg.BitReduceEvery = 50
		cfg.Eta = 2
		cfg.Epsilon = 0.02
		cfg.ForbiddenBitMask = forbidden
		cfg.WrapLoss = wrap
		out, err := core.RunOffline(m, trained.Test.Head(32), cfg)
		return out, q, err
	}

	// ---- Round 1: DeepDyve. ----
	fmt.Println("== DeepDyve (dynamic verification) ==")
	out, q, err := attack(0, nil)
	if err != nil {
		return err
	}
	checker, err := pretrain.Train(pretrain.Config{
		Model: mcfg, TrainSamples: 1200, TestSamples: 400, Epochs: 3, Seed: 9,
	})
	if err != nil {
		return err
	}
	dd := &defense.DeepDyve{Main: q.Model(), Checker: checker.Model}
	rep := defense.EvaluateDeepDyve(dd, trained.Test, out.Trigger, 2)
	fmt.Printf("alarms on %.1f%% of triggered inputs, but %.1f%% still land on the target class\n",
		100*rep.AlarmRate, 100*rep.ASRDespiteDefense)
	fmt.Printf("re-queries recovered %.1f%% — Rowhammer flips persist in memory\n\n", 100*rep.RecoveredRate)

	// ---- Round 2: RADAR. ----
	fmt.Println("== RADAR (MSB checksums) ==")
	radar := defense.NewRADAR(512, 0x80)
	radar.Snapshot(out.OrigCodes)
	fmt.Printf("standard attack detected: %v\n", radar.Detected(out.BackdooredCodes))
	adaptive, qa, err := attack(0x80, nil)
	if err != nil {
		return err
	}
	asr := metrics.AttackSuccessRate(qa.Model(), trained.Test, adaptive.Trigger, 2)
	fmt.Printf("adaptive attack (avoids MSBs) detected: %v — its ASR: %.1f%%\n\n",
		radar.Detected(adaptive.BackdooredCodes), 100*asr)

	// ---- Round 3: weight reconstruction. ----
	fmt.Println("== Weight reconstruction (recovery) ==")
	unawareOut, qUn, err := attack(0, nil)
	if err != nil {
		return err
	}
	recon := defense.NewReconstructor(qUn.Model(), 64)
	before := metrics.AttackSuccessRate(qUn.Model(), trained.Test, unawareOut.Trigger, 2)
	undo := recon.Apply(qUn.Model())
	after := metrics.AttackSuccessRate(qUn.Model(), trained.Test, unawareOut.Trigger, 2)
	undo()
	fmt.Printf("unaware attacker: ASR %.1f%% → %.1f%% after reconstruction\n", 100*before, 100*after)

	awareModel, err := pretrain.CloneModel(mcfg, trained.Model)
	if err != nil {
		return err
	}
	qAware := quant.NewQuantizer(awareModel)
	recAware := defense.NewReconstructor(awareModel, 64)
	cfg := core.DefaultConfig(5, 2)
	cfg.Iterations = 100
	cfg.BitReduceEvery = 50
	cfg.Eta = 2
	cfg.Epsilon = 0.02
	cfg.WrapLoss = recAware.WrapLossWith(awareModel)
	awareOut, err := core.RunOffline(awareModel, trained.Test.Head(32), cfg)
	if err != nil {
		return err
	}
	_ = qAware
	undo2 := recAware.Apply(awareModel)
	awareASR := metrics.AttackSuccessRate(awareModel, trained.Test, awareOut.Trigger, 2)
	undo2()
	fmt.Printf("defense-aware attacker: ASR %.1f%% *after* reconstruction — the defense is bypassed\n",
		100*awareASR)

	return nil
}
