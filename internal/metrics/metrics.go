// Package metrics implements the paper's evaluation metrics (§V-B):
// N_flip, DRAM match rate r_match, test accuracy (TA) and attack
// success rate (ASR), plus confusion matrices for the Figure 1 style
// behavioral comparison.
package metrics

import (
	"rowhammer/internal/data"
	"rowhammer/internal/nn"
	"rowhammer/internal/quant"
)

// evalBatch is the batch size used for metric evaluation.
const evalBatch = 64

// TestAccuracy returns the fraction of clean samples the model
// classifies correctly (the TA metric).
func TestAccuracy(m *nn.Model, ds *data.Dataset) float64 {
	correct, total := 0, 0
	for _, b := range ds.Batches(evalBatch) {
		preds := m.Predict(b.Images)
		for i, p := range preds {
			if p == b.Labels[i] {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// AttackSuccessRate returns the fraction of trigger-stamped samples
// classified as the target class (the ASR metric). Samples whose true
// label already equals the target class are excluded, as is standard.
func AttackSuccessRate(m *nn.Model, ds *data.Dataset, trigger *data.Trigger, target int) float64 {
	hits, total := 0, 0
	for _, b := range ds.Batches(evalBatch) {
		trigger.Apply(b.Images)
		preds := m.Predict(b.Images)
		for i, p := range preds {
			if b.Labels[i] == target {
				continue
			}
			if p == target {
				hits++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// NFlip is the paper's bit-flip count: the Hamming distance between the
// original and modified weight-file codes.
func NFlip(orig, modified []int8) int {
	return quant.HammingDistance(orig, modified)
}

// RMatch computes the DRAM match rate (§V-B):
//
//	r_match = n_match/N_flip × (1 − δ/S) × 100
//
// where nMatch is the number of required flips that map onto vulnerable
// cells, nFlip the total required flips, deltaPerPage the average number
// of accidental flips per target page, and S the bits per page.
func RMatch(nMatch, nFlip int, deltaPerPage float64) float64 {
	if nFlip == 0 {
		return 0
	}
	s := float64(quant.PageSize * 8)
	r := float64(nMatch) / float64(nFlip) * (1 - deltaPerPage/s) * 100
	if r < 0 {
		r = 0
	}
	return r
}

// ConfusionMatrix counts predictions per (true, predicted) class pair.
// When trigger is non-nil it is stamped on every sample first.
func ConfusionMatrix(m *nn.Model, ds *data.Dataset, trigger *data.Trigger) [][]int {
	k := ds.Classes
	cm := make([][]int, k)
	for i := range cm {
		cm[i] = make([]int, k)
	}
	for _, b := range ds.Batches(evalBatch) {
		if trigger != nil {
			trigger.Apply(b.Images)
		}
		preds := m.Predict(b.Images)
		for i, p := range preds {
			cm[b.Labels[i]][p]++
		}
	}
	return cm
}
