// Package metrics implements the paper's evaluation metrics (§V-B):
// N_flip, DRAM match rate r_match, test accuracy (TA) and attack
// success rate (ASR), plus confusion matrices for the Figure 1 style
// behavioral comparison.
package metrics

import (
	"rowhammer/internal/data"
	"rowhammer/internal/memsys"
	"rowhammer/internal/quant"
	"rowhammer/internal/tensor"
)

// evalBatch is the batch size used for metric evaluation.
const evalBatch = 64

// The S of r_match is bits per OS page: the quantizer's file layout and
// the memory system must agree on the page size, or the δ/S penalty is
// computed against the wrong denominator. These zero-length arrays fail
// to compile the moment the two constants diverge.
var (
	_ [quant.PageSize - memsys.PageSize]struct{}
	_ [memsys.PageSize - quant.PageSize]struct{}
)

// Predictor is any model that classifies batches: the fp32 *nn.Model
// and the int8 *quant.QModel both satisfy it, so every metric runs
// unchanged on either engine.
type Predictor interface {
	Predict(x *tensor.Tensor) []int
}

// ConcurrentPredictor is optionally implemented by predictors that can
// run Predict from several goroutines at once. Metric evaluation fans
// batches out across the worker pool only when the predictor reports it
// is safe; everything else — including *nn.Model, whose layers cache
// per-call state — evaluates sequentially.
type ConcurrentPredictor interface {
	Predictor
	ConcurrentSafe() bool
}

// Evaluator binds a predictor to its evaluation fan-out policy. The
// ConcurrentSafe probe runs once, at construction — not once per metric
// call — so hot loops that evaluate after every candidate flip (the
// offline refinement, the defense sweeps, the serving harness) pay the
// interface type-assertion exactly once per engine. Construct with
// NewEvaluator and reuse across TestAccuracy/AttackSuccessRate/
// ConfusionMatrix calls on the same engine.
type Evaluator struct {
	m Predictor
	// concurrent caches the engine's ConcurrentSafe answer. The worker
	// count itself is still resolved per call (tests and benches resize
	// the pool with SetMaxWorkers); only the safety decision is hoisted.
	concurrent bool
}

// NewEvaluator probes the predictor's concurrency contract once and
// returns the bound evaluator.
func NewEvaluator(m Predictor) *Evaluator {
	e := &Evaluator{m: m}
	if cp, ok := m.(ConcurrentPredictor); ok && cp.ConcurrentSafe() {
		e.concurrent = true
	}
	return e
}

// Workers returns the fan-out width the evaluator will use right now:
// the worker-pool size for concurrency-safe engines, 1 otherwise.
func (e *Evaluator) Workers() int {
	if e.concurrent {
		return tensor.MaxWorkers()
	}
	return 1
}

// evalBatches runs fn once per evaluation batch. When the predictor
// declared itself concurrency-safe at construction the batches are
// spread across the persistent worker pool; each invocation owns its
// batch (Batches copies the pixels), so fn may mutate the batch images
// freely but must write only batch-indexed (disjoint) accumulator
// slots. Results are identical at any worker count by construction.
func (e *Evaluator) evalBatches(batches []data.Batch, fn func(bi int, b data.Batch)) {
	tensor.ParallelChunks(len(batches), e.Workers(), func(lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			fn(bi, batches[bi])
		}
	})
}

// TestAccuracy returns the fraction of clean samples the model
// classifies correctly (the TA metric).
func (e *Evaluator) TestAccuracy(ds *data.Dataset) float64 {
	batches := ds.Batches(evalBatch)
	correct := make([]int, len(batches))
	total := 0
	e.evalBatches(batches, func(bi int, b data.Batch) {
		preds := e.m.Predict(b.Images)
		for i, p := range preds {
			if p == b.Labels[i] {
				correct[bi]++
			}
		}
	})
	sum := 0
	for bi, b := range batches {
		sum += correct[bi]
		total += len(b.Labels)
	}
	if total == 0 {
		return 0
	}
	return float64(sum) / float64(total)
}

// AttackSuccessRate returns the fraction of trigger-stamped samples
// classified as the target class (the ASR metric). Samples whose true
// label already equals the target class are excluded, as is standard.
func (e *Evaluator) AttackSuccessRate(ds *data.Dataset, trigger *data.Trigger, target int) float64 {
	batches := ds.Batches(evalBatch)
	hits := make([]int, len(batches))
	counted := make([]int, len(batches))
	e.evalBatches(batches, func(bi int, b data.Batch) {
		trigger.Apply(b.Images)
		preds := e.m.Predict(b.Images)
		for i, p := range preds {
			if b.Labels[i] == target {
				continue
			}
			if p == target {
				hits[bi]++
			}
			counted[bi]++
		}
	})
	sumHits, sumTotal := 0, 0
	for bi := range batches {
		sumHits += hits[bi]
		sumTotal += counted[bi]
	}
	if sumTotal == 0 {
		return 0
	}
	return float64(sumHits) / float64(sumTotal)
}

// TestAccuracy is the one-shot form: construct an evaluator and
// measure. Hot loops should hold an Evaluator instead.
func TestAccuracy(m Predictor, ds *data.Dataset) float64 {
	return NewEvaluator(m).TestAccuracy(ds)
}

// AttackSuccessRate is the one-shot form of Evaluator.AttackSuccessRate.
func AttackSuccessRate(m Predictor, ds *data.Dataset, trigger *data.Trigger, target int) float64 {
	return NewEvaluator(m).AttackSuccessRate(ds, trigger, target)
}

// NFlip is the paper's bit-flip count: the Hamming distance between the
// original and modified weight-file codes.
func NFlip(orig, modified []int8) int {
	return quant.HammingDistance(orig, modified)
}

// RMatch computes the DRAM match rate (§V-B):
//
//	r_match = n_match/N_flip × (1 − δ/S) × 100
//
// where nMatch is the number of required flips that map onto vulnerable
// cells, nFlip the total required flips, deltaPerPage the average number
// of accidental flips per target page, and S the bits per page.
func RMatch(nMatch, nFlip int, deltaPerPage float64) float64 {
	if nFlip == 0 {
		return 0
	}
	s := float64(quant.PageSize * 8)
	r := float64(nMatch) / float64(nFlip) * (1 - deltaPerPage/s) * 100
	if r < 0 {
		r = 0
	}
	return r
}

// ConfusionMatrix counts predictions per (true, predicted) class pair.
// When trigger is non-nil it is stamped on every sample first. Each
// batch accumulates into a private matrix (disjoint slots), merged
// after the barrier.
func (e *Evaluator) ConfusionMatrix(ds *data.Dataset, trigger *data.Trigger) [][]int {
	k := ds.Classes
	cm := make([][]int, k)
	for i := range cm {
		cm[i] = make([]int, k)
	}
	batches := ds.Batches(evalBatch)
	parts := make([][]int, len(batches))
	e.evalBatches(batches, func(bi int, b data.Batch) {
		part := make([]int, k*k)
		if trigger != nil {
			trigger.Apply(b.Images)
		}
		preds := e.m.Predict(b.Images)
		for i, p := range preds {
			part[b.Labels[i]*k+p]++
		}
		parts[bi] = part
	})
	for _, part := range parts {
		for idx, c := range part {
			if c != 0 {
				cm[idx/k][idx%k] += c
			}
		}
	}
	return cm
}

// ConfusionMatrix is the one-shot form of Evaluator.ConfusionMatrix.
func ConfusionMatrix(m Predictor, ds *data.Dataset, trigger *data.Trigger) [][]int {
	return NewEvaluator(m).ConfusionMatrix(ds, trigger)
}
