package metrics

import (
	"math"
	"testing"

	"rowhammer/internal/data"
	"rowhammer/internal/nn"
	"rowhammer/internal/quant"
	"rowhammer/internal/tensor"
)

// constModel always predicts the class equal to its fixed output.
func constModel(classes, winner int) *nn.Model {
	rng := tensor.NewRNG(1)
	fc := nn.NewLinear("fc", rng, 3*8*8, classes)
	fc.Weight.W.Zero()
	fc.Bias.W.Zero()
	fc.Bias.W.Data()[winner] = 10
	net := nn.NewSequential(nn.NewFlatten(), fc)
	return nn.NewModel("const", net, classes, [3]int{3, 8, 8})
}

func smallDataset(n, classes int) *data.Dataset {
	cfg := data.SynthConfig{Classes: classes, Samples: n, H: 8, W: 8, Noise: 0.05, Seed: 4}
	return data.Synthesize(cfg, 9)
}

func TestTestAccuracyConstModel(t *testing.T) {
	ds := smallDataset(40, 4)
	m := constModel(4, 1)
	got := TestAccuracy(m, ds)
	// Balanced labels: a constant predictor scores exactly 1/classes.
	if math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("TA = %v, want 0.25", got)
	}
}

func TestAttackSuccessRateExcludesTargetClass(t *testing.T) {
	ds := smallDataset(40, 4)
	m := constModel(4, 2)
	tr := data.NewSquareTrigger(3, 8, 8, 2)
	// The constant model sends everything to class 2, so every
	// non-class-2 sample counts as a hit: ASR = 1.
	if got := AttackSuccessRate(m, ds, tr, 2); got != 1 {
		t.Fatalf("ASR = %v, want 1", got)
	}
	// Against a different target nothing hits.
	if got := AttackSuccessRate(m, ds, tr, 0); got != 0 {
		t.Fatalf("ASR = %v, want 0", got)
	}
}

func TestNFlipMatchesHamming(t *testing.T) {
	a := []int8{0, 1, 2}
	b := []int8{1, 1, 3}
	if NFlip(a, b) != quant.HammingDistance(a, b) {
		t.Fatal("NFlip must be the Hamming distance")
	}
}

func TestRMatchFormula(t *testing.T) {
	// r = n/N × (1 − δ/S) × 100 with S = 32768 bits.
	got := RMatch(10, 10, 0)
	if math.Abs(got-100) > 1e-9 {
		t.Fatalf("perfect match = %v", got)
	}
	got = RMatch(5, 10, 0)
	if math.Abs(got-50) > 1e-9 {
		t.Fatalf("half match = %v", got)
	}
	// δ = 4 accidental flips per page, the paper's 7-sided figure:
	// (1 − 4/32768) ≈ 0.99988.
	got = RMatch(10, 10, 4)
	if math.Abs(got-99.9878) > 0.01 {
		t.Fatalf("with δ=4: %v", got)
	}
	if RMatch(0, 0, 0) != 0 {
		t.Fatal("zero flips must give zero rate")
	}
	if RMatch(1, 1, 1e9) != 0 {
		t.Fatal("absurd δ must clamp at zero")
	}
}

func TestConfusionMatrixDiagonalAndTrigger(t *testing.T) {
	ds := smallDataset(40, 4)
	m := constModel(4, 3)
	cm := ConfusionMatrix(m, ds, nil)
	for truth := 0; truth < 4; truth++ {
		for pred := 0; pred < 4; pred++ {
			want := 0
			if pred == 3 {
				want = 10
			}
			if cm[truth][pred] != want {
				t.Fatalf("cm[%d][%d] = %d, want %d", truth, pred, cm[truth][pred], want)
			}
		}
	}
	tr := data.NewSquareTrigger(3, 8, 8, 2)
	cm2 := ConfusionMatrix(m, ds, tr)
	total := 0
	for _, row := range cm2 {
		for _, v := range row {
			total += v
		}
	}
	if total != ds.Len() {
		t.Fatalf("triggered confusion matrix covers %d samples", total)
	}
}

func TestTestAccuracyEmptyDataset(t *testing.T) {
	m := constModel(3, 0)
	empty := &data.Dataset{Images: tensor.New(1, 3, 8, 8), Labels: nil, Classes: 3}
	// Zero labeled samples → zero accuracy, no panic.
	if got := TestAccuracy(m, &data.Dataset{Images: empty.Images.Reshape(1, 3, 8, 8), Labels: []int{}, Classes: 3}); got != 0 {
		t.Fatalf("TA on empty = %v", got)
	}
}
