package metrics

import (
	"math"
	"testing"

	"rowhammer/internal/data"
	"rowhammer/internal/models"
	"rowhammer/internal/nn"
	"rowhammer/internal/quant"
	"rowhammer/internal/tensor"
)

// constModel always predicts the class equal to its fixed output.
func constModel(classes, winner int) *nn.Model {
	rng := tensor.NewRNG(1)
	fc := nn.NewLinear("fc", rng, 3*8*8, classes)
	fc.Weight.W.Zero()
	fc.Bias.W.Zero()
	fc.Bias.W.Data()[winner] = 10
	net := nn.NewSequential(nn.NewFlatten(), fc)
	return nn.NewModel("const", net, classes, [3]int{3, 8, 8})
}

func smallDataset(n, classes int) *data.Dataset {
	cfg := data.SynthConfig{Classes: classes, Samples: n, H: 8, W: 8, Noise: 0.05, Seed: 4}
	return data.Synthesize(cfg, 9)
}

func TestTestAccuracyConstModel(t *testing.T) {
	ds := smallDataset(40, 4)
	m := constModel(4, 1)
	got := TestAccuracy(m, ds)
	// Balanced labels: a constant predictor scores exactly 1/classes.
	if math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("TA = %v, want 0.25", got)
	}
}

func TestAttackSuccessRateExcludesTargetClass(t *testing.T) {
	ds := smallDataset(40, 4)
	m := constModel(4, 2)
	tr := data.NewSquareTrigger(3, 8, 8, 2)
	// The constant model sends everything to class 2, so every
	// non-class-2 sample counts as a hit: ASR = 1.
	if got := AttackSuccessRate(m, ds, tr, 2); got != 1 {
		t.Fatalf("ASR = %v, want 1", got)
	}
	// Against a different target nothing hits.
	if got := AttackSuccessRate(m, ds, tr, 0); got != 0 {
		t.Fatalf("ASR = %v, want 0", got)
	}
}

func TestNFlipMatchesHamming(t *testing.T) {
	a := []int8{0, 1, 2}
	b := []int8{1, 1, 3}
	if NFlip(a, b) != quant.HammingDistance(a, b) {
		t.Fatal("NFlip must be the Hamming distance")
	}
}

func TestRMatchFormula(t *testing.T) {
	// r = n/N × (1 − δ/S) × 100 with S = 32768 bits.
	got := RMatch(10, 10, 0)
	if math.Abs(got-100) > 1e-9 {
		t.Fatalf("perfect match = %v", got)
	}
	got = RMatch(5, 10, 0)
	if math.Abs(got-50) > 1e-9 {
		t.Fatalf("half match = %v", got)
	}
	// δ = 4 accidental flips per page, the paper's 7-sided figure:
	// (1 − 4/32768) ≈ 0.99988.
	got = RMatch(10, 10, 4)
	if math.Abs(got-99.9878) > 0.01 {
		t.Fatalf("with δ=4: %v", got)
	}
	if RMatch(0, 0, 0) != 0 {
		t.Fatal("zero flips must give zero rate")
	}
	if RMatch(1, 1, 1e9) != 0 {
		t.Fatal("absurd δ must clamp at zero")
	}
}

func TestConfusionMatrixDiagonalAndTrigger(t *testing.T) {
	ds := smallDataset(40, 4)
	m := constModel(4, 3)
	cm := ConfusionMatrix(m, ds, nil)
	for truth := 0; truth < 4; truth++ {
		for pred := 0; pred < 4; pred++ {
			want := 0
			if pred == 3 {
				want = 10
			}
			if cm[truth][pred] != want {
				t.Fatalf("cm[%d][%d] = %d, want %d", truth, pred, cm[truth][pred], want)
			}
		}
	}
	tr := data.NewSquareTrigger(3, 8, 8, 2)
	cm2 := ConfusionMatrix(m, ds, tr)
	total := 0
	for _, row := range cm2 {
		for _, v := range row {
			total += v
		}
	}
	if total != ds.Len() {
		t.Fatalf("triggered confusion matrix covers %d samples", total)
	}
}

func TestTestAccuracyEmptyDataset(t *testing.T) {
	m := constModel(3, 0)
	empty := &data.Dataset{Images: tensor.New(1, 3, 8, 8), Labels: nil, Classes: 3}
	// Zero labeled samples → zero accuracy, no panic.
	if got := TestAccuracy(m, &data.Dataset{Images: empty.Images.Reshape(1, 3, 8, 8), Labels: []int{}, Classes: 3}); got != 0 {
		t.Fatalf("TA on empty = %v", got)
	}
}

// quantPredictor builds a trained-shape resnet20 int8 engine plus its
// fp32 twin for the parallel/sequential and engine-agreement checks.
func quantPredictor(t testing.TB) (*quant.QModel, *nn.Model, *data.Dataset) {
	m, err := models.Build(models.Config{Arch: "resnet20", Classes: 4, WidthMult: 0.25, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	q := quant.NewQuantizer(m)
	cfg := data.SynthConfig{Classes: 4, Samples: 160, H: 32, W: 32, Noise: 0.05, Seed: 21}
	return quant.NewQModel(q), m, data.Synthesize(cfg, 33)
}

// TestMetricsParallelMatchesSequential pins the worker pool to one
// thread, records every metric, then re-runs fully parallel on the
// concurrency-safe int8 engine. The int8 forward is deterministic
// (exact int32 accumulation), so all three metrics must agree exactly.
func TestMetricsParallelMatchesSequential(t *testing.T) {
	qm, _, ds := quantPredictor(t)
	if !qm.ConcurrentSafe() {
		t.Fatal("resnet20 quant plan must be concurrency-safe")
	}
	tr := data.NewSquareTrigger(3, 32, 32, 3)

	prev := tensor.SetMaxWorkers(1)
	seqTA := TestAccuracy(qm, ds)
	seqASR := AttackSuccessRate(qm, ds, tr, 2)
	seqCM := ConfusionMatrix(qm, ds, tr)
	tensor.SetMaxWorkers(prev)

	parTA := TestAccuracy(qm, ds)
	parASR := AttackSuccessRate(qm, ds, tr, 2)
	parCM := ConfusionMatrix(qm, ds, tr)

	if seqTA != parTA {
		t.Fatalf("TA sequential %v != parallel %v", seqTA, parTA)
	}
	if seqASR != parASR {
		t.Fatalf("ASR sequential %v != parallel %v", seqASR, parASR)
	}
	for i := range seqCM {
		for j := range seqCM[i] {
			if seqCM[i][j] != parCM[i][j] {
				t.Fatalf("cm[%d][%d] sequential %d != parallel %d", i, j, seqCM[i][j], parCM[i][j])
			}
		}
	}
}

// serialOnly hides the underlying engine's ConcurrentSafe method, so an
// Evaluator built over it must take the single-worker fallback path.
type serialOnly struct{ m Predictor }

func (s serialOnly) Predict(x *tensor.Tensor) []int { return s.m.Predict(x) }

// TestEvaluatorFallbackDeterminism covers the serialized fallback of
// the hoisted fan-out decision: an Evaluator over a predictor that does
// not declare ConcurrentSafe must run one worker and produce exactly
// the numbers the concurrent evaluator computes over the same engine.
func TestEvaluatorFallbackDeterminism(t *testing.T) {
	qm, _, ds := quantPredictor(t)
	tr := data.NewSquareTrigger(3, 32, 32, 3)

	conc := NewEvaluator(qm)
	if conc.Workers() < 1 {
		t.Fatalf("concurrent evaluator workers = %d", conc.Workers())
	}
	serial := NewEvaluator(serialOnly{qm})
	if got := serial.Workers(); got != 1 {
		t.Fatalf("fallback evaluator workers = %d, want 1", got)
	}

	if a, b := conc.TestAccuracy(ds), serial.TestAccuracy(ds); a != b {
		t.Fatalf("TA concurrent %v != fallback %v", a, b)
	}
	if a, b := conc.AttackSuccessRate(ds, tr, 2), serial.AttackSuccessRate(ds, tr, 2); a != b {
		t.Fatalf("ASR concurrent %v != fallback %v", a, b)
	}
	cmA, cmB := conc.ConfusionMatrix(ds, tr), serial.ConfusionMatrix(ds, tr)
	for i := range cmA {
		for j := range cmA[i] {
			if cmA[i][j] != cmB[i][j] {
				t.Fatalf("cm[%d][%d] concurrent %d != fallback %d", i, j, cmA[i][j], cmB[i][j])
			}
		}
	}
}

// TestMetricsQuantAgreesWithFloat checks the two engines see the same
// dataset-level numbers within the quantization tolerance (TA/ASR are
// fractions over 160 samples, so a handful of borderline samples is the
// most the int8 noise may move).
func TestMetricsQuantAgreesWithFloat(t *testing.T) {
	qm, m, ds := quantPredictor(t)
	taQ, taF := TestAccuracy(qm, ds), TestAccuracy(m, ds)
	if math.Abs(taQ-taF) > 0.05 {
		t.Fatalf("TA int8 %v vs fp32 %v", taQ, taF)
	}
	tr := data.NewSquareTrigger(3, 32, 32, 3)
	asrQ, asrF := AttackSuccessRate(qm, ds, tr, 1), AttackSuccessRate(m, ds, tr, 1)
	if math.Abs(asrQ-asrF) > 0.05 {
		t.Fatalf("ASR int8 %v vs fp32 %v", asrQ, asrF)
	}
}

// benchEvalTAASR measures one full TA + ASR evaluation pass — the unit
// of work the offline attack's constraint loop and the defense suite
// repeat thousands of times — single-threaded so the speedup reflects
// engine efficiency, not core count.
func benchEvalTAASR(b *testing.B, quantized bool) {
	qm, m, ds := quantPredictor(b)
	var p Predictor = m
	if quantized {
		p = qm
	}
	tr := data.NewSquareTrigger(3, 32, 32, 3)
	defer tensor.SetMaxWorkers(tensor.SetMaxWorkers(1))
	defer nn.SetBatchWorkers(nn.SetBatchWorkers(1))
	TestAccuracy(p, ds) // warm pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TestAccuracy(p, ds)
		AttackSuccessRate(p, ds, tr, 1)
	}
}

func BenchmarkEvalTAASRQuant(b *testing.B) { benchEvalTAASR(b, true) }
func BenchmarkEvalTAASRFloat(b *testing.B) { benchEvalTAASR(b, false) }
