package serve

import "sort"

// The ServeReport timeline must be deterministic for a fixed seed at
// any worker count, but real queue/latency measurements depend on the
// scheduler, the core count and the attack's wall-clock interleaving.
// So the report's QPS/latency trajectory comes from a discrete-event
// simulation in virtual time: a canonical single-executor server with
// the same batching policy (size/deadline coalescing, bounded queue
// with shedding), driven by a seeded arrival stream and a fixed batch
// cost model. Hot-swap publishes show up as an initial executor stall.
// Real wall-clock numbers are still collected (LiveStats) — they feed
// the benchmarks, never the report.

// splitmix64 is the deterministic stream generator (same construction
// as the side-channel and fault streams elsewhere in the repo).
type splitmix64 struct{ s uint64 }

func (r *splitmix64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform draw in [0, 1).
func (r *splitmix64) float() float64 {
	return float64(r.next()>>11) / float64(uint64(1)<<53)
}

// SimConfig parameterizes one simulated measurement window.
type SimConfig struct {
	// Seed fixes the arrival stream.
	Seed int64
	// Requests is the window's offered load (default 512).
	Requests int
	// MeanArrivalNs is the mean inter-arrival gap; gaps are uniform in
	// [mean/2, 3·mean/2) (default 150µs ≈ 6.7k offered QPS).
	MeanArrivalNs int64
	// CostBaseNs and CostSampleNs model one engine invocation:
	// base + n·sample virtual nanoseconds for a batch of n (defaults
	// 300µs + 40µs/sample — micro-batching amortizes the base).
	CostBaseNs   int64
	CostSampleNs int64
	// BatchMax / DeadlineNs / QueueDepth mirror the server's batching
	// policy (defaults 32 / 200µs / 128).
	BatchMax   int
	DeadlineNs int64
	QueueDepth int
	// StallNs keeps the executor busy from virtual time zero — the
	// repack pause injected by hot-swap publishes in this window.
	StallNs int64
}

func (c SimConfig) withDefaults() SimConfig {
	if c.Requests <= 0 {
		c.Requests = 512
	}
	if c.MeanArrivalNs <= 0 {
		c.MeanArrivalNs = 150_000
	}
	if c.CostBaseNs <= 0 {
		c.CostBaseNs = 300_000
	}
	if c.CostSampleNs <= 0 {
		c.CostSampleNs = 40_000
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 32
	}
	if c.DeadlineNs <= 0 {
		c.DeadlineNs = 200_000
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	return c
}

// SimResult is one window's simulated service quality.
type SimResult struct {
	Served, Shed int
	Batches      int
	MeanBatch    float64
	// MakespanNs spans virtual time zero to the last batch completion.
	MakespanNs int64
	// QPS is served requests per virtual second.
	QPS float64
	// P50Ns and P99Ns are exact quantiles over per-request virtual
	// latencies (arrival to batch completion).
	P50Ns, P99Ns int64
}

// Simulate runs the canonical single-executor server over one seeded
// arrival stream. Everything is integer virtual time — byte-identical
// output on every platform and at any real worker count.
func Simulate(cfg SimConfig) SimResult {
	cfg = cfg.withDefaults()
	rng := splitmix64{s: uint64(cfg.Seed)*2862933555777941757 + 3037000493}
	arrivals := make([]int64, cfg.Requests)
	t := int64(0)
	for i := range arrivals {
		gap := cfg.MeanArrivalNs/2 + int64(rng.float()*float64(cfg.MeanArrivalNs))
		t += gap
		arrivals[i] = t
	}

	var waiting []int64
	next := 0 // next arrival index
	free := cfg.StallNs
	shed := 0
	batches := 0
	var lats []int64

	// admit moves every arrival at or before now into the wait queue,
	// shedding beyond QueueDepth.
	admit := func(now int64) {
		for next < len(arrivals) && arrivals[next] <= now {
			if len(waiting) >= cfg.QueueDepth {
				shed++
			} else {
				waiting = append(waiting, arrivals[next])
			}
			next++
		}
	}

	for {
		if len(waiting) == 0 {
			if next >= len(arrivals) {
				break
			}
			admit(arrivals[next])
			continue
		}
		// The batch window opens when the executor is free and the
		// oldest request has arrived.
		t0 := waiting[0]
		if free > t0 {
			t0 = free
		}
		admit(t0)
		n := len(waiting)
		if n > cfg.BatchMax {
			n = cfg.BatchMax
		}
		start := t0
		if n < cfg.BatchMax {
			// Not full: hold the batch open until the deadline, admitting
			// stragglers as they arrive.
			deadline := t0 + cfg.DeadlineNs
			for n < cfg.BatchMax && next < len(arrivals) && arrivals[next] <= deadline {
				if len(waiting) >= cfg.QueueDepth {
					shed++
					next++
					continue
				}
				waiting = append(waiting, arrivals[next])
				next++
				n++
			}
			if n == cfg.BatchMax {
				if last := waiting[n-1]; last > start {
					start = last
				}
			} else {
				start = deadline
			}
		}
		end := start + cfg.CostBaseNs + int64(n)*cfg.CostSampleNs
		for _, a := range waiting[:n] {
			lats = append(lats, end-a)
		}
		waiting = append(waiting[:0:0], waiting[n:]...)
		free = end
		batches++
	}

	res := SimResult{
		Served:     len(lats),
		Shed:       shed,
		Batches:    batches,
		MakespanNs: free,
	}
	if batches > 0 {
		res.MeanBatch = float64(res.Served) / float64(batches)
	}
	if free > 0 {
		res.QPS = float64(res.Served) / (float64(free) / 1e9)
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		res.P50Ns = lats[(len(lats)-1)*50/100]
		res.P99Ns = lats[(len(lats)-1)*99/100]
	}
	return res
}
