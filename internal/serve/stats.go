package serve

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// LiveStats is the wall-clock traffic accounting: lock-free counters on
// the serving path, aggregated into a snapshot on demand. Latencies are
// histogrammed into power-of-two nanosecond buckets, so the reported
// quantiles are upper bounds within a factor of two — plenty for the
// load trajectory, while keeping the record path to a few atomic adds.
type LiveStats struct {
	start        time.Time
	served       atomic.Int64
	shed         atomic.Int64
	batches      atomic.Int64
	batchSamples atomic.Int64
	buckets      [64]atomic.Int64
}

// record accounts one served request with its end-to-end latency.
func (s *LiveStats) record(lat time.Duration) {
	if lat < 0 {
		lat = 0
	}
	s.served.Add(1)
	s.batchSamples.Add(1)
	s.buckets[bits.Len64(uint64(lat))].Add(1)
}

// recordBatch accounts one executed batch.
func (s *LiveStats) recordBatch() { s.batches.Add(1) }

// LiveSnapshot is a point-in-time aggregate of LiveStats.
type LiveSnapshot struct {
	// Served and Shed count requests answered and shed since start.
	Served, Shed int64
	// Batches is the number of engine invocations; MeanBatch is
	// Served/Batches — the micro-batching amortization factor.
	Batches   int64
	MeanBatch float64
	// QPS is served requests per wall-clock second since start.
	QPS float64
	// P50 and P99 are latency quantile upper bounds (power-of-two
	// bucket resolution).
	P50, P99 time.Duration
}

// Snapshot aggregates the counters.
func (s *LiveStats) Snapshot() LiveSnapshot {
	snap := LiveSnapshot{
		Served:  s.served.Load(),
		Shed:    s.shed.Load(),
		Batches: s.batches.Load(),
	}
	if snap.Batches > 0 {
		snap.MeanBatch = float64(s.batchSamples.Load()) / float64(snap.Batches)
	}
	if el := time.Since(s.start).Seconds(); el > 0 {
		snap.QPS = float64(snap.Served) / el
	}
	snap.P50 = s.quantile(snap.Served, 50)
	snap.P99 = s.quantile(snap.Served, 99)
	return snap
}

// quantile returns the upper bound of the bucket where the q-th
// percentile of n recorded latencies falls.
func (s *LiveStats) quantile(n int64, q int64) time.Duration {
	if n == 0 {
		return 0
	}
	rank := (n*q + 99) / 100
	var cum int64
	for i := range s.buckets {
		cum += s.buckets[i].Load()
		if cum >= rank {
			// Bucket 63's nominal upper bound (1<<63 ns) overflows
			// Duration to a negative value; clamp it to the maximum
			// representable latency instead.
			if i >= 63 {
				return time.Duration(math.MaxInt64)
			}
			return time.Duration(uint64(1) << uint(i))
		}
	}
	return time.Duration(math.MaxInt64)
}
