package serve

import (
	"fmt"
	"testing"
	"time"

	"rowhammer/internal/tensor"
)

// BenchmarkServeQPS compares the unbatched serial reference (one direct
// batch-1 Forward per request) against the batched server at 1/2/4
// executor workers under heavy client concurrency. One op is one served
// request, so QPS = 1e9 / (ns/op); the server's win comes from
// micro-batch coalescing (per-forward overhead amortized over
// BatchMax rows) plus worker parallelism where cores allow.
func BenchmarkServeQPS(b *testing.B) {
	_, qm, ds := engineFixture(b, "resnet20", 3)
	c, h, w := ds.ImageSize()
	img := ds.Image(0)

	b.Run("serial", func(b *testing.B) {
		x := tensor.New(1, c, h, w)
		copy(x.Data(), img)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			qm.Forward(x)
		}
	})

	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("batched/w%d", workers), func(b *testing.B) {
			srv, err := NewServer(qm, Config{Shape: []int{c, h, w}, BatchMax: 32, Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			b.SetParallelism(64)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if r := srv.Submit(img); r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			})
			b.StopTimer()
			srv.Close()
		})
	}
}

// BenchmarkServeFlipStorm measures serving throughput with the hot-swap
// path quiescent vs under a continuous flip storm (an attacker goroutine
// publishing a weight flip every 200µs). With the epoch engine, a
// publish repacks one dirty panel off the hot path, so the storm run
// should stay within a small factor of quiescent throughput.
func BenchmarkServeFlipStorm(b *testing.B) {
	for _, storm := range []bool{false, true} {
		name := "quiescent"
		if storm {
			name = "storm"
		}
		b.Run(name, func(b *testing.B) {
			q, qm, ds := engineFixture(b, "resnet20", 3)
			c, h, w := ds.ImageSize()
			img := ds.Image(0)
			srv, err := NewServer(qm, Config{Shape: []int{c, h, w}, BatchMax: 32, Workers: 2})
			if err != nil {
				b.Fatal(err)
			}
			stop := make(chan struct{})
			flipperDone := make(chan struct{})
			if storm {
				go func() {
					defer close(flipperDone)
					for {
						select {
						case <-stop:
							return
						default:
						}
						if err := srv.Swap(func() { q.FlipBit(0, 7) }); err != nil {
							b.Error(err)
							return
						}
						time.Sleep(200 * time.Microsecond)
					}
				}()
			} else {
				close(flipperDone)
			}
			b.SetParallelism(64)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if r := srv.Submit(img); r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			})
			b.StopTimer()
			close(stop)
			<-flipperDone
			srv.Close()
		})
	}
}
