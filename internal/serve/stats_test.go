package serve

import (
	"math"
	"testing"
	"time"
)

// TestQuantileTopBucketClamps pins the overflow fix: a latency that
// lands in bucket 63 (anything with the top nanosecond bit set) must
// report a positive clamped quantile, not a negative Duration from
// 1<<63 wrapping.
func TestQuantileTopBucketClamps(t *testing.T) {
	var s LiveStats
	s.record(time.Duration(math.MaxInt64))
	for _, q := range []int64{50, 99} {
		got := s.quantile(s.served.Load(), q)
		if got <= 0 {
			t.Fatalf("p%d = %v, want positive clamped duration", q, got)
		}
		if got != time.Duration(math.MaxInt64) {
			t.Fatalf("p%d = %v, want clamp to MaxInt64", q, got)
		}
	}
}

// TestQuantileRegularBuckets sanity-checks the untouched path: a
// latency in a low bucket reports its power-of-two upper bound.
func TestQuantileRegularBuckets(t *testing.T) {
	var s LiveStats
	s.record(1000 * time.Nanosecond) // bits.Len64(1000) = 10 → bucket 10
	if got, want := s.quantile(1, 50), time.Duration(1<<10); got != want {
		t.Fatalf("quantile = %v, want %v", got, want)
	}
	// Negative latencies clamp to zero and land in bucket Len64(0)=0.
	var z LiveStats
	z.record(-time.Second)
	if got := z.quantile(1, 99); got != time.Duration(1) {
		t.Fatalf("clamped-negative quantile = %v, want 1ns bound", got)
	}
}
