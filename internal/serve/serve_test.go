package serve

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"rowhammer/internal/data"
	"rowhammer/internal/models"
	"rowhammer/internal/quant"
	"rowhammer/internal/tensor"
)

// engineFixture builds a small int8 engine plus a synthetic dataset.
func engineFixture(t testing.TB, arch string, seed int64) (*quant.Quantizer, *quant.QModel, *data.Dataset) {
	t.Helper()
	m, err := models.Build(models.Config{Arch: arch, Classes: 4, WidthMult: 0.25, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	q := quant.NewQuantizer(m)
	ds := data.Synthesize(data.SynthConfig{Classes: 4, Samples: 96, H: 32, W: 32, Noise: 0.05, Seed: seed + 1}, seed+2)
	return q, quant.NewQModel(q), ds
}

// TestServeMatchesDirectForward: with BatchMax 1 every request is its
// own batch, so each response must be byte-identical to a direct
// QModel.Forward of the same single-sample batch.
func TestServeMatchesDirectForward(t *testing.T) {
	_, qm, ds := engineFixture(t, "resnet20", 3)
	c, h, w := ds.ImageSize()
	srv, err := NewServer(qm, Config{Shape: []int{c, h, w}, BatchMax: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Degraded() {
		t.Fatal("resnet20 engine must serve on the concurrent path")
	}
	for i := 0; i < 8; i++ {
		img := ds.Image(i)
		res := srv.Submit(img)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		x := tensor.New(1, c, h, w)
		copy(x.Data(), img)
		direct := qm.Forward(x)
		if res.Pred != direct.ArgMaxRow(0) {
			t.Fatalf("sample %d: served pred %d, direct %d", i, res.Pred, direct.ArgMaxRow(0))
		}
		for j, v := range direct.Data() {
			if res.Logits[j] != v {
				t.Fatalf("sample %d logit %d: served %v, direct %v", i, j, res.Logits[j], v)
			}
		}
	}
}

// TestServeCoalescedBatchExact: many concurrent submissions of the SAME
// sample coalesce into micro-batches of various sizes; because the
// rows are identical, every batch composition yields the same logits
// per row, which must equal the direct single-sample forward. This
// covers the batch-assembly path (tensor packing, row fan-out) under
// real coalescing.
func TestServeCoalescedBatchExact(t *testing.T) {
	_, qm, ds := engineFixture(t, "resnet20", 5)
	c, h, w := ds.ImageSize()
	srv, err := NewServer(qm, Config{Shape: []int{c, h, w}, BatchMax: 8, BatchDeadline: 2 * time.Millisecond, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	img := ds.Image(0)
	x := tensor.New(1, c, h, w)
	copy(x.Data(), img)
	want := append([]float32(nil), qm.Forward(x).Data()...)

	const requests = 48
	var wg sync.WaitGroup
	errs := make(chan string, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := srv.Submit(img)
			if res.Err != nil {
				errs <- res.Err.Error()
				return
			}
			for j := range want {
				if res.Logits[j] != want[j] {
					errs <- fmt.Sprintf("logit %d: served %v, want %v", j, res.Logits[j], want[j])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
	snap := srv.Stats().Snapshot()
	if snap.Served != requests {
		t.Fatalf("served %d, want %d", snap.Served, requests)
	}
	if snap.MeanBatch <= 1 {
		t.Fatalf("mean batch %.2f — no coalescing happened", snap.MeanBatch)
	}
}

// slowEngine is a trivially concurrent stub whose forward blocks until
// released — it backs the shedding test.
type slowEngine struct {
	gate chan struct{}
}

func (e *slowEngine) Forward(x *tensor.Tensor) *tensor.Tensor {
	<-e.gate
	return tensor.New(x.Dim(0), 2)
}
func (e *slowEngine) ConcurrentSafe() bool { return true }

// TestServeShedding: with the queue full and the executor wedged,
// TrySubmit must shed instead of blocking, and the shed counter must
// account for it.
func TestServeShedding(t *testing.T) {
	eng := &slowEngine{gate: make(chan struct{})}
	srv, err := NewServer(eng, Config{Shape: []int{2}, BatchMax: 1, QueueDepth: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	img := []float32{1, 2}
	results := make(chan Result, 8)
	for i := 0; i < 2; i++ {
		go func() { results <- srv.Submit(img) }()
	}
	// Wait until the two background submissions hold both queue slots
	// (the executor is wedged on the gate, so they cannot drain).
	deadline := time.Now().Add(5 * time.Second)
	for len(srv.slots) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	if r := srv.TrySubmit(img); r.Err != ErrOverloaded {
		t.Fatalf("TrySubmit over capacity: err = %v, want ErrOverloaded", r.Err)
	}
	if got := srv.Stats().shed.Load(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
	close(eng.gate)
	for i := 0; i < 2; i++ {
		if r := <-results; r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	srv.Close()
}

// noSwapEngine is concurrent but has no hot-swap path.
type noSwapEngine struct{}

func (noSwapEngine) Forward(x *tensor.Tensor) *tensor.Tensor { return tensor.New(x.Dim(0), 2) }
func (noSwapEngine) ConcurrentSafe() bool                    { return true }

// TestServeSwapRequiresHotSwapPath: mutating a concurrent engine with
// no atomic publication path while serving would race, so Swap must
// refuse.
func TestServeSwapRequiresHotSwapPath(t *testing.T) {
	srv, err := NewServer(noSwapEngine{}, Config{Shape: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Swap(func() {}); err == nil {
		t.Fatal("Swap on a concurrent engine without Exclusive must fail")
	}
}

// TestServeDegradeFallback is the satellite check on the bin-resnet32
// fixture: its quant plan contains float-fallback layers, so the server
// must degrade to the serialized executor, log the warning, still serve
// byte-exact results, and still support (serialized) swaps.
func TestServeDegradeFallback(t *testing.T) {
	q, qm, ds := engineFixture(t, "bin-resnet32", 7)
	if qm.ConcurrentSafe() {
		t.Fatal("bin-resnet32 plan unexpectedly concurrency-safe")
	}
	c, h, w := ds.ImageSize()
	var logged []string
	srv, err := NewServer(qm, Config{
		Shape: []int{c, h, w}, BatchMax: 1, Workers: 4,
		Logf: func(f string, a ...any) { logged = append(logged, fmt.Sprintf(f, a...)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !srv.Degraded() {
		t.Fatal("server did not degrade for a non-concurrency-safe plan")
	}
	found := false
	for _, l := range logged {
		if strings.Contains(l, "serialized executor") {
			found = true
		}
	}
	if !found {
		t.Fatalf("degrade warning not logged: %q", logged)
	}

	img := ds.Image(3)
	res := srv.Submit(img)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	x := tensor.New(1, c, h, w)
	copy(x.Data(), img)
	direct := qm.Forward(x)
	for j, v := range direct.Data() {
		if res.Logits[j] != v {
			t.Fatalf("degraded logit %d: served %v, direct %v", j, res.Logits[j], v)
		}
	}

	// Serialized hot-swap still works and is visible to the next request.
	if err := srv.Swap(func() { q.FlipBit(0, 7) }); err != nil {
		t.Fatal(err)
	}
	res2 := srv.Submit(img)
	direct2 := qm.Forward(x)
	for j, v := range direct2.Data() {
		if res2.Logits[j] != v {
			t.Fatalf("post-swap logit %d: served %v, direct %v", j, res2.Logits[j], v)
		}
	}
}

// TestSimDeterministic: identical configs produce identical results;
// the load model responds sanely to pressure (more offered load → no
// lower p99; a stall → no higher QPS).
func TestSimDeterministic(t *testing.T) {
	cfg := SimConfig{Seed: 11, Requests: 400, MeanArrivalNs: 120_000}
	a, b := Simulate(cfg), Simulate(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sim not deterministic:\n%+v\n%+v", a, b)
	}
	if a.Served+a.Shed != cfg.Requests {
		t.Fatalf("served %d + shed %d != offered %d", a.Served, a.Shed, cfg.Requests)
	}
	hot := cfg
	hot.MeanArrivalNs = 20_000
	h := Simulate(hot)
	if h.P99Ns < a.P99Ns {
		t.Fatalf("6× offered load lowered p99: %d → %d", a.P99Ns, h.P99Ns)
	}
	if h.MeanBatch < a.MeanBatch {
		t.Fatalf("pressure reduced batching: %.2f → %.2f", a.MeanBatch, h.MeanBatch)
	}
	stalled := cfg
	stalled.StallNs = 50_000_000
	s := Simulate(stalled)
	if s.QPS > a.QPS {
		t.Fatalf("stall raised QPS: %.1f → %.1f", a.QPS, s.QPS)
	}
	if s.P99Ns <= a.P99Ns {
		t.Fatalf("50ms stall did not move p99: %d → %d", a.P99Ns, s.P99Ns)
	}
}

// fireFixture builds a victim engine, a checker engine and the mapped
// weight-file states a synthetic two-round attack publishes.
func fireFixture(t testing.TB) (Fire, [][]byte) {
	t.Helper()
	q, qm, ds := engineFixture(t, "resnet20", 19)
	_, checker, _ := engineFixture(t, "resnet20", 23)
	clean := q.WeightFileBytes()
	round1 := append([]byte(nil), clean...)
	for i := 0; i < 40; i++ {
		round1[i*97%len(round1)] ^= 1 << 7
	}
	round2 := append([]byte(nil), round1...)
	for i := 0; i < 40; i++ {
		round2[(i*211+5)%len(round2)] ^= 1 << 6
	}
	f := Fire{
		Engine:  qm,
		Checker: checker,
		Eval:    ds,
		Trigger: data.NewSquareTrigger(3, 32, 32, 3),
		Target:  2,
		Cfg: FireConfig{
			Seed:          31,
			ReplayQueries: 64,
			Sim:           SimConfig{Requests: 200},
		},
	}
	return f, [][]byte{round1, round2}
}

// TestRunUnderFireDeterministicAcrossWorkers is the acceptance check:
// the ServeReport timeline must be byte-identical no matter how many
// real workers serve or how much live traffic flows, because every
// reported quantity is measured at attack-round barriers in virtual
// time or over deterministic evaluation streams.
func TestRunUnderFireDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers, clients int) *ServeReport {
		f, rounds := fireFixture(t)
		f.Serve = Config{BatchMax: 8, Workers: workers}
		f.Cfg.LiveClients = clients
		rep, _, err := RunUnderFire(f, func(apply func(int, []byte)) error {
			for i, m := range rounds {
				apply(i+1, m)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a := run(1, 0)
	b := run(4, 6)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("ServeReport differs across worker counts:\n%+v\n%+v", a, b)
	}
	if len(a.Windows) != 3 {
		t.Fatalf("windows = %d, want baseline + 2 rounds", len(a.Windows))
	}
	if a.Windows[1].FlipsApplied == 0 || a.Windows[2].FlipsApplied <= a.Windows[1].FlipsApplied {
		t.Fatalf("flip trajectory not monotone: %+v", a.Windows)
	}
	if a.Windows[2].EpochSeq <= a.Windows[1].EpochSeq || a.Windows[1].EpochSeq <= a.Windows[0].EpochSeq {
		t.Fatalf("epoch sequence not advancing per round: %+v", a.Windows)
	}
	if a.Windows[1].SimQPS >= a.Windows[0].SimQPS {
		t.Fatalf("hot-swap stall did not dent simulated QPS: %+v vs %+v", a.Windows[0], a.Windows[1])
	}
}
