package serve

import (
	"fmt"
	"sync"

	"rowhammer/internal/data"
	"rowhammer/internal/defense"
	"rowhammer/internal/metrics"
	"rowhammer/internal/quant"
	"rowhammer/internal/tensor"
)

// FireConfig parameterizes the victim-under-fire measurement.
type FireConfig struct {
	// Seed fixes the DeepDyve replay stream and the simulated arrival
	// streams.
	Seed int64
	// ReplayQueries is the detector replay volume per window (default
	// 256): a seeded stream of clean and trigger-stamped queries run
	// through the DeepDyve protocol, from which the alarm rate and the
	// detection lag are measured.
	ReplayQueries int
	// TriggerFraction is the fraction of replay queries carrying the
	// trigger (default 0.5) — the attacker exercising the backdoor
	// while ordinary traffic continues.
	TriggerFraction float64
	// DetectThreshold is the alarm-rate excess over the pre-attack
	// baseline that counts as detection (default 0.05).
	DetectThreshold float64
	// SwapStallNs is the virtual executor stall charged per hot-swap
	// publish in the window's load simulation (default 2ms — the
	// full-file repack pause).
	SwapStallNs int64
	// Sim is the per-window virtual load model; Seed is derived per
	// window from FireConfig.Seed.
	Sim SimConfig
	// LiveClients, when > 0, drives that many real blocking request
	// loops through the server for the whole run — the wall-clock
	// numbers land in LiveSnapshot, never in the report. Ignored when
	// the server is degraded (a serialized engine cannot take
	// measurement and traffic concurrently).
	LiveClients int
}

func (c FireConfig) withDefaults() FireConfig {
	if c.ReplayQueries <= 0 {
		c.ReplayQueries = 256
	}
	if c.TriggerFraction <= 0 {
		c.TriggerFraction = 0.5
	}
	if c.DetectThreshold <= 0 {
		c.DetectThreshold = 0.05
	}
	if c.SwapStallNs <= 0 {
		c.SwapStallNs = 2_000_000
	}
	return c
}

// WindowStats is one measurement window of the attack×load×detection
// timeline: window 0 is the pre-attack baseline, window k the state
// after hammer round k.
type WindowStats struct {
	Window int
	// Round is the attack round that closed this window (0 = baseline).
	Round int
	// FlipsApplied is the Hamming distance between the serving engine's
	// current codes and the clean deployment, in bits.
	FlipsApplied int
	// EpochSeq is the engine's published epoch at measurement time.
	EpochSeq uint64
	// TA and ASR are the victim's live test accuracy and attack success
	// rate at this point of the attack.
	TA, ASR float64
	// AlarmRate is the DeepDyve disagreement rate over this window's
	// replay stream.
	AlarmRate float64
	// SimQPS, SimP50Ns, SimP99Ns, SimShed and SimMeanBatch are the
	// window's virtual-time service quality (see Simulate).
	SimQPS       float64
	SimP50Ns     int64
	SimP99Ns     int64
	SimShed      int
	SimMeanBatch float64
}

// ServeReport is the deterministic attack-under-load timeline.
type ServeReport struct {
	// Degraded records whether the victim served through the serialized
	// fallback executor.
	Degraded bool
	Windows  []WindowStats
	// BaselineAlarmRate is window 0's replay alarm rate — DeepDyve's
	// false-positive floor on this victim/checker pair.
	BaselineAlarmRate float64
	// Detected is true when some post-attack window's alarm rate
	// exceeded the baseline by DetectThreshold.
	Detected bool
	// DetectionWindow is the first such window (-1 when undetected).
	DetectionWindow int
	// DetectionLagQueries counts replay queries from the first hammer
	// round until the close of the detection window (-1 when
	// undetected) — the paper-style time-to-detection in queries.
	DetectionLagQueries int
}

// Fire wires a serving victim to an attack.
type Fire struct {
	// Engine is the serving engine; its bound quantizer holds the clean
	// deployed weights.
	Engine *quant.QModel
	// Checker is the DeepDyve verification model.
	Checker metrics.Predictor
	// Eval is the held-out evaluation set feeding TA/ASR and the replay
	// stream.
	Eval *data.Dataset
	// Trigger and Target describe the implanted backdoor.
	Trigger *data.Trigger
	Target  int
	// Serve configures the server; Cfg the measurement.
	Serve Config
	Cfg   FireConfig
}

// RunUnderFire serves the engine while attack runs. The attack function
// receives an apply callback and calls it once per hammer round with
// the weight file as the victim's page cache then serves it; apply
// hot-swaps those bytes into the live engine and closes a measurement
// window. The returned report is deterministic for a fixed seed at any
// worker count; the LiveSnapshot carries the wall-clock traffic
// numbers.
func RunUnderFire(f Fire, attack func(apply func(round int, mapped []byte)) error) (*ServeReport, LiveSnapshot, error) {
	cfg := f.Cfg.withDefaults()
	if f.Eval == nil || f.Eval.Len() == 0 {
		return nil, LiveSnapshot{}, fmt.Errorf("serve: Fire.Eval is required")
	}
	if len(f.Serve.Shape) == 0 {
		c, h, w := f.Eval.ImageSize()
		f.Serve.Shape = []int{c, h, w}
	}
	srv, err := NewServer(f.Engine, f.Serve)
	if err != nil {
		return nil, LiveSnapshot{}, err
	}

	q := f.Engine.Quantizer()
	cleanCodes := append([]int8(nil), q.CodesView()...)
	ev := metrics.NewEvaluator(f.Engine)
	dd := &defense.DeepDyve{Main: f.Engine, Checker: f.Checker}
	rng := splitmix64{s: uint64(cfg.Seed)*0x9e3779b97f4a7c15 + 0x1234567}

	rep := &ServeReport{Degraded: srv.Degraded(), DetectionWindow: -1, DetectionLagQueries: -1}

	measure := func(window, round, swaps int) WindowStats {
		w := WindowStats{
			Window:       window,
			Round:        round,
			FlipsApplied: quant.HammingDistance(cleanCodes, q.CodesView()),
			TA:           ev.TestAccuracy(f.Eval),
			AlarmRate:    replayAlarmRate(dd, f.Eval, f.Trigger, &rng, cfg),
		}
		if f.Trigger != nil {
			w.ASR = ev.AttackSuccessRate(f.Eval, f.Trigger, f.Target)
		}
		w.EpochSeq = f.Engine.EpochSeq()
		sim := cfg.Sim
		sim.Seed = cfg.Seed + int64(window)*7919
		sim.StallNs = int64(swaps) * cfg.SwapStallNs
		sr := Simulate(sim)
		w.SimQPS = sr.QPS
		w.SimP50Ns = sr.P50Ns
		w.SimP99Ns = sr.P99Ns
		w.SimShed = sr.Shed
		w.SimMeanBatch = sr.MeanBatch
		return w
	}

	// Live traffic: blocking request loops for the duration of the run.
	stop := make(chan struct{})
	var clients sync.WaitGroup
	if cfg.LiveClients > 0 && !srv.Degraded() {
		for g := 0; g < cfg.LiveClients; g++ {
			clients.Add(1)
			go func(g int) {
				defer clients.Done()
				i := g
				for {
					select {
					case <-stop:
						return
					default:
					}
					srv.Submit(f.Eval.Image(i % f.Eval.Len()))
					i++
				}
			}(g)
		}
	}

	// Window 0: the intact victim under load.
	rep.Windows = append(rep.Windows, measure(0, 0, 0))

	apply := func(round int, mapped []byte) {
		if err := srv.Swap(func() { q.LoadWeightFileBytes(mapped) }); err != nil {
			panic(err) // Swap cannot fail on the engine types Fire accepts
		}
		rep.Windows = append(rep.Windows, measure(len(rep.Windows), round, 1))
	}
	attackErr := attack(apply)

	close(stop)
	clients.Wait()
	srv.Close()
	live := srv.Stats().Snapshot()
	if attackErr != nil {
		return nil, live, attackErr
	}

	rep.BaselineAlarmRate = rep.Windows[0].AlarmRate
	for _, w := range rep.Windows[1:] {
		if w.AlarmRate > rep.BaselineAlarmRate+cfg.DetectThreshold {
			rep.Detected = true
			rep.DetectionWindow = w.Window
			rep.DetectionLagQueries = w.Window * cfg.ReplayQueries
			break
		}
	}
	return rep, live, nil
}

// replayAlarmRate runs one window's worth of the seeded replay stream
// through the DeepDyve protocol: each query picks a sample and a coin
// for whether it carries the trigger; alarms are checker disagreements.
// The stream state (rng) persists across windows, so the sequence of
// queries is one continuous deterministic request log.
func replayAlarmRate(dd *defense.DeepDyve, eval *data.Dataset, trigger *data.Trigger, rng *splitmix64, cfg FireConfig) float64 {
	c, h, w := eval.ImageSize()
	sample := c * h * w
	alarms := 0
	for done := 0; done < cfg.ReplayQueries; {
		chunk := 64
		if cfg.ReplayQueries-done < chunk {
			chunk = cfg.ReplayQueries - done
		}
		var clean, triggered []int
		for i := 0; i < chunk; i++ {
			idx := int(rng.next() % uint64(eval.Len()))
			if trigger != nil && rng.float() < cfg.TriggerFraction {
				triggered = append(triggered, idx)
			} else {
				clean = append(clean, idx)
			}
		}
		run := func(idxs []int, stamp bool) {
			if len(idxs) == 0 {
				return
			}
			x := tensor.New(len(idxs), c, h, w)
			d := x.Data()
			for i, id := range idxs {
				copy(d[i*sample:(i+1)*sample], eval.Image(id))
			}
			if stamp {
				trigger.Apply(x)
			}
			for _, r := range dd.Infer(x) {
				if r.Alarmed {
					alarms++
				}
			}
		}
		run(clean, false)
		run(triggered, true)
		done += chunk
	}
	return float64(alarms) / float64(cfg.ReplayQueries)
}
