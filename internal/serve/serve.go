// Package serve is the victim side of the online attack: a
// high-throughput batched inference service over the int8 deployment
// engine that keeps answering queries while Rowhammer flips its weights
// in memory. It provides dynamic micro-batching (size/deadline batch
// coalescing over a bounded request queue), admission control (FIFO
// slot semaphore with load shedding), per-request latency accounting,
// and a hot-swap seam through which the attack publishes corrupted
// weights without ever letting a reader observe a torn state.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"rowhammer/internal/tensor"
)

// Engine is the inference engine the server fronts: a batch in, logits
// (N, K) out. *quant.QModel is the deployment engine.
type Engine interface {
	Forward(x *tensor.Tensor) *tensor.Tensor
}

// ConcurrentEngine is optionally implemented by engines that may run
// Forward from several goroutines at once (quant plans without float
// fallback layers). Engines that do not implement it — or answer false
// — are served through a serialized executor instead.
type ConcurrentEngine interface {
	Engine
	ConcurrentSafe() bool
}

// HotSwapEngine is optionally implemented by engines with a
// torn-read-safe mutation path: Exclusive publishes the mutation as an
// atomic snapshot visible to every subsequent Forward (quant's epoch
// engine). Without it, Swap falls back to the serialized executor's
// mutex, which is only safe in degraded (serialized) mode.
type HotSwapEngine interface {
	Engine
	Exclusive(fn func())
}

// ErrOverloaded is returned by TrySubmit when admission control sheds
// the request: every queue slot is taken and the caller asked not to
// wait.
var ErrOverloaded = errors.New("serve: overloaded, request shed")

// ErrClosed is returned for submissions after Close.
var ErrClosed = errors.New("serve: server closed")

// Config parameterizes the server.
type Config struct {
	// Shape is the per-sample input shape, e.g. [3, 32, 32]. Required.
	Shape []int
	// BatchMax is the micro-batch size cap (default 32). The batcher
	// ships a batch as soon as it is full or BatchDeadline has elapsed
	// since its first request, whichever comes first.
	BatchMax int
	// BatchDeadline bounds how long the first request of a batch waits
	// for company (default 200µs).
	BatchDeadline time.Duration
	// QueueDepth is the admission cap: the number of requests that may
	// be queued or in flight at once (default 4×BatchMax). TrySubmit
	// sheds beyond it; Submit blocks FIFO.
	QueueDepth int
	// Workers is the number of executor goroutines (default 1). Forced
	// to 1 when the engine is not concurrency-safe.
	Workers int
	// Logf receives operational warnings (default: discard).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.BatchMax <= 0 {
		c.BatchMax = 32
	}
	if c.BatchDeadline <= 0 {
		c.BatchDeadline = 200 * time.Microsecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.BatchMax
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Result is one served inference.
type Result struct {
	// Pred is the argmax class.
	Pred int
	// Logits is the sample's logit row, exact with respect to the
	// coalesced batch the engine actually ran (dynamic activation
	// quantization makes a sample's int8 logits a function of its
	// batchmates — identical to a direct Forward of the same batch).
	Logits []float32
	// Err is ErrOverloaded/ErrClosed when the request was not served.
	Err error
}

type request struct {
	img []float32
	enq time.Time
	out chan Result
}

// Server is the batched inference service.
type Server struct {
	eng       Engine
	cfg       Config
	sampleLen int
	degraded  bool

	// slots is the FIFO admission semaphore: one token per queued or
	// in-flight request. Goroutines blocked acquiring a token queue in
	// runtime FIFO order, like campaign's arena byte semaphore.
	slots chan struct{}

	queue    chan *request
	dispatch chan []*request

	// closeMu guards the queue against send-after-close; submissions
	// hold it shared, Close exclusively.
	closeMu sync.RWMutex
	closed  bool

	// serialMu serializes the executor in degraded mode, and doubles as
	// the Swap fallback lock for engines without a hot-swap path.
	serialMu sync.Mutex

	stats LiveStats
	wg    sync.WaitGroup
}

// NewServer builds and starts the service. Engines that do not declare
// themselves concurrency-safe are degraded to a single serialized
// executor with a logged warning — correctness over throughput.
func NewServer(eng Engine, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shape) == 0 {
		return nil, fmt.Errorf("serve: Config.Shape is required")
	}
	sampleLen := 1
	for _, d := range cfg.Shape {
		if d <= 0 {
			return nil, fmt.Errorf("serve: invalid sample shape %v", cfg.Shape)
		}
		sampleLen *= d
	}
	s := &Server{
		eng:       eng,
		cfg:       cfg,
		sampleLen: sampleLen,
		slots:     make(chan struct{}, cfg.QueueDepth),
		queue:     make(chan *request, cfg.QueueDepth),
		dispatch:  make(chan []*request, cfg.Workers),
	}
	ce, ok := eng.(ConcurrentEngine)
	if !ok || !ce.ConcurrentSafe() {
		s.degraded = true
		s.cfg.Workers = 1
		cfg.Logf("serve: engine is not concurrency-safe (float-fallback layers); degrading to serialized executor")
	}
	s.stats.start = time.Now()
	s.wg.Add(1 + s.cfg.Workers)
	go s.batcher()
	for i := 0; i < s.cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Degraded reports whether the server runs the serialized fallback
// executor.
func (s *Server) Degraded() bool { return s.degraded }

// Stats returns the live traffic counters.
func (s *Server) Stats() *LiveStats { return &s.stats }

// Submit serves one sample, blocking FIFO behind admission control
// until a queue slot frees. img must hold exactly one sample in
// Config.Shape layout.
func (s *Server) Submit(img []float32) Result {
	s.slots <- struct{}{}
	return s.enqueue(img)
}

// TrySubmit serves one sample or sheds it immediately when the queue
// is at capacity.
func (s *Server) TrySubmit(img []float32) Result {
	select {
	case s.slots <- struct{}{}:
	default:
		s.stats.shed.Add(1)
		return Result{Err: ErrOverloaded}
	}
	return s.enqueue(img)
}

func (s *Server) enqueue(img []float32) Result {
	if len(img) != s.sampleLen {
		<-s.slots
		return Result{Err: fmt.Errorf("serve: sample has %d values, want %d", len(img), s.sampleLen)}
	}
	r := &request{img: img, enq: time.Now(), out: make(chan Result, 1)}
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		<-s.slots
		return Result{Err: ErrClosed}
	}
	s.queue <- r // cannot block: queue capacity == slot capacity
	s.closeMu.RUnlock()
	return <-r.out
}

// batcher coalesces queued requests into micro-batches: a batch ships
// when it reaches BatchMax or when BatchDeadline has elapsed since its
// first request arrived.
func (s *Server) batcher() {
	defer s.wg.Done()
	defer close(s.dispatch)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		first, ok := <-s.queue
		if !ok {
			return
		}
		batch := append(make([]*request, 0, s.cfg.BatchMax), first)
		draining := false
		if s.cfg.BatchMax > 1 {
			timer.Reset(s.cfg.BatchDeadline)
		collect:
			for len(batch) < s.cfg.BatchMax {
				select {
				case r, ok := <-s.queue:
					if !ok {
						draining = true
						break collect
					}
					batch = append(batch, r)
				case <-timer.C:
					break collect
				}
			}
			if !draining && !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		s.dispatch <- batch
		if draining {
			return
		}
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for batch := range s.dispatch {
		s.runBatch(batch)
	}
}

// runBatch coalesces the requests into one tensor, runs the engine
// once, and fans the rows back out. In degraded mode the forward holds
// serialMu; on the concurrent path it takes no lock at all — the epoch
// engine's reader pin is two atomic ops.
func (s *Server) runBatch(batch []*request) {
	n := len(batch)
	shape := append([]int{n}, s.cfg.Shape...)
	x := tensor.New(shape...)
	d := x.Data()
	for i, r := range batch {
		copy(d[i*s.sampleLen:(i+1)*s.sampleLen], r.img)
	}
	var logits *tensor.Tensor
	if s.degraded {
		s.serialMu.Lock()
		logits = s.eng.Forward(x)
		s.serialMu.Unlock()
	} else {
		logits = s.eng.Forward(x)
	}
	ld := logits.Data()
	k := logits.Dim(1)
	done := time.Now()
	s.stats.recordBatch()
	for i, r := range batch {
		row := make([]float32, k)
		copy(row, ld[i*k:(i+1)*k])
		s.stats.record(done.Sub(r.enq))
		r.out <- Result{Pred: logits.ArgMaxRow(i), Logits: row}
		<-s.slots
	}
}

// Swap runs fn — a weight mutation — so that no in-flight or future
// forward observes a torn state. Engines with a hot-swap path publish
// through it (readers keep running, lock-free); in degraded mode the
// mutation serializes against the executor. A concurrent engine
// without a hot-swap path cannot be mutated safely while serving, so
// Swap refuses rather than race.
func (s *Server) Swap(fn func()) error {
	if hs, ok := s.eng.(HotSwapEngine); ok && !s.degraded {
		hs.Exclusive(fn)
		return nil
	}
	if !s.degraded {
		return fmt.Errorf("serve: engine has no hot-swap path; cannot mutate while serving")
	}
	s.serialMu.Lock()
	fn()
	s.serialMu.Unlock()
	return nil
}

// Close drains queued requests (they are served, not dropped) and stops
// the workers. Submissions racing with Close may get ErrClosed.
func (s *Server) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.closeMu.Unlock()
	s.wg.Wait()
}
