// Package quant implements the paper's deployment-time weight
// representation: TensorRT-style symmetric 8-bit quantization
// (W_q = round(W_fp/Δw), Δw = max|W_fp|/(2^(Nq−1)−1)), two's-complement
// storage, the page-aligned weight-file view the online attack targets,
// and the Bit Reduction operator of Algorithm 1 step 4.
package quant

import (
	"math"
	"math/bits"

	"rowhammer/internal/nn"
)

// PageSize is the memory-page granularity of the attack (4 KB pages,
// one int8 parameter per byte).
const PageSize = 4096

// qmax is the largest representable magnitude for 8-bit symmetric
// quantization: 2^(8−1)−1.
const qmax = 127

// Quantizer binds a model to its int8 deployment form. After
// construction the model's float weights are snapped onto the
// quantization grid, and the int8 codes (in weight-file order) are the
// ground truth the online attack flips bits in.
type Quantizer struct {
	model   *nn.Model
	scales  []float32 // one Δw per parameter tensor
	codes   []int8    // flat codes in weight-file order
	offsets []int     // start offset of each parameter tensor in codes

	// listeners are notified when codes change: with the parameter-
	// tensor index for a single-weight change, or AllParams for a bulk
	// rewrite. The quantized inference engine registers here so a
	// FlipBit invalidates only the packed panels of the touched tensor.
	listeners []func(pi int)

	// fileBuf backs WeightFileBytes across calls (the offline constraint
	// loop serializes the file repeatedly).
	fileBuf []byte
}

// AllParams is the listener argument meaning "every parameter tensor
// changed" (bulk operations: Requantize, LoadCodes, LoadWeightFileBytes).
const AllParams = -1

// OnCodesChanged registers fn to run after every code mutation, with
// the affected parameter-tensor index or AllParams. Registration is not
// synchronized with mutations — register before sharing the quantizer
// across goroutines.
func (q *Quantizer) OnCodesChanged(fn func(pi int)) {
	q.listeners = append(q.listeners, fn)
}

func (q *Quantizer) notify(pi int) {
	for _, fn := range q.listeners {
		fn(pi)
	}
}

// NewQuantizer quantizes the model's current weights. The per-tensor
// scales are computed once and remain fixed for the lifetime of the
// quantizer — the attack perturbs codes on the original grid.
func NewQuantizer(m *nn.Model) *Quantizer {
	params := m.Params()
	q := &Quantizer{
		model:   m,
		scales:  make([]float32, len(params)),
		codes:   make([]int8, m.NumParams()),
		offsets: make([]int, len(params)),
	}
	off := 0
	for i, p := range params {
		q.offsets[i] = off
		maxAbs := p.W.MaxAbs()
		if maxAbs == 0 {
			maxAbs = 1
		}
		q.scales[i] = maxAbs / qmax
		off += p.W.Len()
	}
	q.Requantize()
	return q
}

// Model returns the bound model.
func (q *Quantizer) Model() *nn.Model { return q.model }

// NumWeights returns the total quantized parameter count.
func (q *Quantizer) NumWeights() int { return len(q.codes) }

// NumPages returns how many 4 KB pages the weight file occupies.
func (q *Quantizer) NumPages() int {
	return (len(q.codes) + PageSize - 1) / PageSize
}

// PageOf returns the page index of weight i in the weight file.
func PageOf(i int) int { return i / PageSize }

// PageOffset returns the byte offset of weight i within its page.
func PageOffset(i int) int { return i % PageSize }

// Scale returns the quantization step Δw of parameter tensor pi.
func (q *Quantizer) Scale(pi int) float32 { return q.scales[pi] }

// ScaleOfWeight returns the quantization step of flat weight index i.
func (q *Quantizer) ScaleOfWeight(i int) float32 {
	return q.scales[q.paramOf(i)]
}

// paramOf maps a flat weight index to its parameter-tensor index.
func (q *Quantizer) paramOf(i int) int {
	lo, hi := 0, len(q.offsets)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if q.offsets[mid] <= i {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Requantize snaps the model's current float weights onto the fixed
// grid: codes are recomputed from the floats and the floats are
// overwritten with their dequantized values.
func (q *Quantizer) Requantize() {
	params := q.model.Params()
	for pi, p := range params {
		scale := q.scales[pi]
		base := q.offsets[pi]
		w := p.W.Data()
		for j, v := range w {
			c := int(math.Round(float64(v / scale)))
			if c > qmax {
				c = qmax
			} else if c < -qmax {
				c = -qmax
			}
			q.codes[base+j] = int8(c)
			w[j] = float32(c) * scale
		}
	}
	q.notify(AllParams)
}

// Code returns the int8 code of flat weight i.
func (q *Quantizer) Code(i int) int8 { return q.codes[i] }

// Codes returns a copy of all codes in weight-file order.
func (q *Quantizer) Codes() []int8 {
	return append([]int8(nil), q.codes...)
}

// CodesInto copies all codes into dst (grown if needed) and returns it,
// so hot loops can snapshot codes without allocating per call.
func (q *Quantizer) CodesInto(dst []int8) []int8 {
	if cap(dst) < len(q.codes) {
		dst = make([]int8, len(q.codes))
	}
	dst = dst[:len(q.codes)]
	copy(dst, q.codes)
	return dst
}

// CodesView returns the live backing slice of the codes in weight-file
// order. The slice aliases the quantizer's state: it must be treated as
// read-only and is invalidated semantically by any code mutation. The
// quantized inference engine uses it to run GEMM directly on the codes
// with zero copies.
func (q *Quantizer) CodesView() []int8 { return q.codes }

// ParamCodes returns the live code segment and scale of parameter
// tensor pi (read-only, like CodesView).
func (q *Quantizer) ParamCodes(pi int) (codes []int8, scale float32) {
	lo := q.offsets[pi]
	hi := len(q.codes)
	if pi+1 < len(q.offsets) {
		hi = q.offsets[pi+1]
	}
	return q.codes[lo:hi], q.scales[pi]
}

// ParamIndexOf maps a parameter pointer of the bound model to its
// tensor index, or -1 when the parameter is not part of the model.
func (q *Quantizer) ParamIndexOf(p *nn.Param) int {
	for i, mp := range q.model.Params() {
		if mp == p {
			return i
		}
	}
	return -1
}

// SetCode overwrites the code of weight i and writes the dequantized
// value through to the model's float weight.
func (q *Quantizer) SetCode(i int, c int8) {
	q.codes[i] = c
	pi := q.paramOf(i)
	p := q.model.Params()[pi]
	p.W.Data()[i-q.offsets[pi]] = float32(c) * q.scales[pi]
	q.notify(pi)
}

// LoadCodes replaces every code (length must match) and syncs the model
// floats.
func (q *Quantizer) LoadCodes(codes []int8) {
	if len(codes) != len(q.codes) {
		panic("quant: code length mismatch")
	}
	copy(q.codes, codes)
	q.syncFloats()
	q.notify(AllParams)
}

// syncFloats overwrites every model float with its dequantized code.
func (q *Quantizer) syncFloats() {
	params := q.model.Params()
	for pi, p := range params {
		scale := q.scales[pi]
		base := q.offsets[pi]
		w := p.W.Data()
		for j := range w {
			w[j] = float32(q.codes[base+j]) * scale
		}
	}
}

// FlipBit XORs the given bit (0 = LSB … 7 = sign bit) of weight i's
// two's-complement byte and writes the new value through to the model.
func (q *Quantizer) FlipBit(i int, bit uint) {
	b := byte(q.codes[i]) ^ (1 << bit)
	q.SetCode(i, int8(b))
}

// WeightFileBytes serializes the codes as the raw two's-complement
// weight file the victim maps into memory, zero-padded to a whole
// number of pages. The returned buffer is owned by the quantizer and
// reused by the next WeightFileBytes call — callers that keep the bytes
// across serializations must copy them.
func (q *Quantizer) WeightFileBytes() []byte {
	n := q.NumPages() * PageSize
	if cap(q.fileBuf) < n {
		q.fileBuf = make([]byte, n)
	}
	out := q.fileBuf[:n]
	for i, c := range q.codes {
		out[i] = byte(c)
	}
	for i := len(q.codes); i < n; i++ {
		out[i] = 0
	}
	return out
}

// LoadWeightFileBytes deserializes a (possibly corrupted) weight file
// back into codes and model floats. The buffer must cover every weight;
// padding past the last weight is ignored.
func (q *Quantizer) LoadWeightFileBytes(buf []byte) {
	if len(buf) < len(q.codes) {
		panic("quant: weight file too short")
	}
	for i := range q.codes {
		q.codes[i] = int8(buf[i])
	}
	q.syncFloats()
	q.notify(AllParams)
}

// BitReduce implements Algorithm 1 step 4: given the original code and a
// fine-tuned code, keep only the most significant differing bit, so the
// final perturbation is a single bit flip that preserves the change's
// direction and as much of its magnitude as possible.
// BitReduce(orig, new) = orig ⊕ Floor(orig ⊕ new).
func BitReduce(orig, tuned int8) int8 {
	diff := byte(orig) ^ byte(tuned)
	if diff == 0 {
		return orig
	}
	msb := byte(1) << (bits.Len8(diff) - 1)
	return int8(byte(orig) ^ msb)
}

// BitReduceMasked is BitReduce restricted to the bits not set in
// forbidden: the most significant differing bit outside the forbidden
// mask is flipped. When every differing bit is forbidden the original
// code is returned (no flip). An attacker uses this to dodge detectors
// that checksum specific bit positions (e.g. RADAR's MSB checksums).
func BitReduceMasked(orig, tuned int8, forbidden byte) int8 {
	diff := (byte(orig) ^ byte(tuned)) &^ forbidden
	if diff == 0 {
		return orig
	}
	msb := byte(1) << (bits.Len8(diff) - 1)
	return int8(byte(orig) ^ msb)
}

// HammingDistance counts differing bits between two code vectors of
// equal length (the paper's N_flip metric).
func HammingDistance(a, b []int8) int {
	if len(a) != len(b) {
		panic("quant: code vector length mismatch")
	}
	n := 0
	for i := range a {
		n += bits.OnesCount8(byte(a[i]) ^ byte(b[i]))
	}
	return n
}

// DiffBits lists every (weight index, bit, direction) where the two code
// vectors differ. Direction is true for a 0→1 flip (relative to a).
type BitDiff struct {
	// Weight is the flat weight-file index.
	Weight int
	// Bit is the bit position (0 = LSB).
	Bit uint
	// ZeroToOne is true when the bit goes 0→1 from a to b.
	ZeroToOne bool
}

// DiffBitsOf enumerates the bit flips that transform codes a into b.
func DiffBitsOf(a, b []int8) []BitDiff {
	if len(a) != len(b) {
		panic("quant: code vector length mismatch")
	}
	var out []BitDiff
	for i := range a {
		d := byte(a[i]) ^ byte(b[i])
		for bit := uint(0); bit < 8; bit++ {
			if d&(1<<bit) != 0 {
				out = append(out, BitDiff{
					Weight:    i,
					Bit:       bit,
					ZeroToOne: byte(b[i])&(1<<bit) != 0,
				})
			}
		}
	}
	return out
}
