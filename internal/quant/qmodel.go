package quant

import (
	"math"
	"sync"
	"sync/atomic"

	"rowhammer/internal/nn"
	"rowhammer/internal/tensor"
)

// QModel is the native int8 inference engine: it runs the quantizer's
// codes directly through the blocked int8 GEMM (int8×int8 → int32
// accumulators) instead of dequantizing to fp32 and re-running the
// float graph. This is the deployment form the paper attacks (a
// TensorRT-style engine serving the mapped weight file), and it is what
// makes the evaluate-after-flip loops of the offline attack and the
// defense suite cheap.
//
// Construction compiles the float graph into a flat op list:
//
//   - Conv2D [+BatchNorm2D] [+ReLU] fuses into one op — the BN running
//     statistics and gamma/beta fold into the conv's per-channel
//     rescale, so the whole layer is a single int8 GEMM plus one fused
//     fp32 epilogue.
//   - Linear [+ReLU] likewise.
//   - Pool/GAP/ReLU/residual-add run in fp32 between the quantized
//     layers (activations are re-quantized per layer with a dynamic
//     per-tensor scale max|x|/127, the symmetric twin of the weight
//     scales).
//   - Unknown layers (e.g. the binarization-aware convolutions) fall
//     back to their float Forward, bridged by layout conversions.
//
// Activations flow in channel-major CNHW order: a conv's batched im2col
// columns form ONE wide matrix (every sample side by side), so each
// layer is a single GEMM whose int32 output is already the next layer's
// CNHW input — no per-sample kernel launches and no layout shuffles in
// the hot loop.
//
// Weight panels and fused epilogue coefficients live in published
// epoch snapshots (epoch.go): the quantizer's code-change notifications
// mark exactly the touched slots dirty, and the next publish repacks
// one layer and structurally shares everything else. Forward pins one
// immutable epoch per call — two atomic ops, no lock on the clean hot
// path — so it is safe for concurrent use when ConcurrentSafe reports
// true (no fallback float layers, whose caches are per-layer state).
// Mutating codes concurrently with Forward is supported only through
// Exclusive, which publishes the post-mutation epoch before returning;
// plain SetCode/FlipBit with concurrent forwards remains unsupported.
type QModel struct {
	q     *Quantizer
	model *nn.Model
	ops   []qOp

	// hasFallback marks plans that execute stateful float layers.
	hasFallback bool

	// Epoch engine state (epoch.go): the published snapshot, the dirty
	// bookkeeping feeding the next publish, and the retirement gauge.
	mu          sync.Mutex
	cur         atomic.Pointer[epoch]
	anyDirty    atomic.Bool
	gemms       []gemmOp
	panelsDirty []bool
	coeffsDirty []bool
	liveEpochs  atomic.Int64
	// paramPanelSlot / paramCoeffSlot map parameter-tensor index → the
	// epoch slot whose panels / epilogue coefficients the parameter
	// feeds (-1 when none: fallback-layer params).
	paramPanelSlot []int
	paramCoeffSlot []int

	// paramStage maps parameter-tensor index → the top-level op (stage)
	// that reads it, or -1 when no op does. A code change to parameter
	// pi leaves every activation entering stages ≤ paramStage[pi]
	// untouched — the invalidation contract the suffix Scorer builds on.
	paramStage []int
	// paramWeight maps parameter-tensor index → the packed-weight
	// binding when the parameter is a lowered GEMM weight (conv/linear).
	// Exactly these parameters support the scorer's concurrent
	// per-candidate panel overrides; nil entries (biases, BN affine,
	// fallback-layer params) score via mutate-and-revert.
	paramWeight []*qweights
}

// NewQModel compiles the quantized execution plan for the quantizer's
// model and registers for incremental invalidation.
func NewQModel(q *Quantizer) *QModel {
	qm := &QModel{
		q:     q,
		model: q.Model(),
	}
	qm.ops = qm.compile([]nn.Layer{q.Model().Root})
	qm.buildStageIndex()
	qm.initEpochs()
	q.OnCodesChanged(qm.markDirty)
	return qm
}

// Model returns the underlying float model.
func (qm *QModel) Model() *nn.Model { return qm.model }

// Quantizer returns the bound quantizer.
func (qm *QModel) Quantizer() *Quantizer { return qm.q }

// ConcurrentSafe reports whether Forward may be called from multiple
// goroutines at once. Plans containing float fallback layers are not
// safe because nn layers cache per-call state.
func (qm *QModel) ConcurrentSafe() bool { return !qm.hasFallback }

// Forward runs the quantized network on a batch — (N, C, H, W), or
// (N, F) for flat-input models — and returns logits (N, K).
func (qm *QModel) Forward(x *tensor.Tensor) *tensor.Tensor {
	ep := qm.acquireEpoch()
	defer ep.release()
	in := tensorToAct(x)
	out := runOps(qm.ops, &execEnv{ep: ep}, in)
	logits := actToLogits(out)
	if out != in {
		putAct(out)
	}
	putAct(in)
	return logits
}

// actToLogits transposes the final channel-major activation into the
// (N, K) logits tensor Forward returns.
func actToLogits(out *qact) *tensor.Tensor {
	k := out.c * out.h * out.w
	n := out.n
	hw := out.h * out.w
	logits := tensor.New(n, k)
	ld := logits.Data()
	for c := 0; c < out.c; c++ {
		for i := 0; i < n; i++ {
			base := (c*n + i) * hw
			copy(ld[i*k+c*hw:i*k+c*hw+hw], out.data[base:base+hw])
		}
	}
	return logits
}

// Predict returns the argmax class for every sample in the batch.
func (qm *QModel) Predict(x *tensor.Tensor) []int {
	logits := qm.Forward(x)
	n := logits.Dim(0)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = logits.ArgMaxRow(i)
	}
	return out
}

// ---------------------------------------------------------------------
// Activations: pooled fp32 buffers in channel-major CNHW order, so the
// (c, n) pair indexes a contiguous h·w plane and a conv's GEMM output
// needs no reshuffle.

type qact struct {
	data       []float32
	c, n, h, w int
}

func getAct(c, n, h, w int) *qact {
	return &qact{data: tensor.GetF32(c * n * h * w), c: c, n: n, h: h, w: w}
}

func putAct(a *qact) {
	if a == nil {
		return
	}
	tensor.PutF32(a.data)
	a.data = nil
}

// tensorToAct transposes a batch tensor — (N, C, H, W) or (N, F) — into
// a channel-major activation.
func tensorToAct(t *tensor.Tensor) *qact {
	sh := t.Shape()
	var n, c, h, w int
	switch len(sh) {
	case 2:
		n, c, h, w = sh[0], sh[1], 1, 1
	case 4:
		n, c, h, w = sh[0], sh[1], sh[2], sh[3]
	default:
		panic("quant: unsupported activation rank")
	}
	a := getAct(c, n, h, w)
	td := t.Data()
	hw := h * w
	for ci := 0; ci < c; ci++ {
		for i := 0; i < n; i++ {
			copy(a.data[(ci*n+i)*hw:(ci*n+i+1)*hw], td[(i*c+ci)*hw:(i*c+ci)*hw+hw])
		}
	}
	return a
}

// actToTensor transposes back to (N, C, H, W) for float fallback layers.
func actToTensor(a *qact) *tensor.Tensor {
	t := tensor.New(a.n, a.c, a.h, a.w)
	td := t.Data()
	hw := a.h * a.w
	for c := 0; c < a.c; c++ {
		for i := 0; i < a.n; i++ {
			copy(td[(i*a.c+c)*hw:(i*a.c+c)*hw+hw], a.data[(c*a.n+i)*hw:(c*a.n+i+1)*hw])
		}
	}
	return t
}

// runOps threads an activation through an op chain. The input is owned
// by the caller; every intermediate is returned to the pool.
func runOps(ops []qOp, ec *execEnv, in *qact) *qact {
	cur := in
	for _, op := range ops {
		next := op.forward(ec, cur)
		if cur != in && cur != next {
			putAct(cur)
		}
		cur = next
	}
	return cur
}

// execEnv carries per-invocation execution state: the pinned epoch the
// forward reads (nil for single-goroutine callers, which resolve the
// current epoch lazily per op) and an optional packed-panel override
// for exactly one weight tensor. The scorer's concurrent candidate
// fan-out uses the override to run a suffix forward "as if" a single
// code were changed, without mutating the shared quantizer or the
// published epochs.
type execEnv struct {
	// ep is the epoch snapshot pinned for the whole invocation. When
	// nil, ops resolve QModel.readEpoch per op — correct only under the
	// single-goroutine mutation contract the scorer operates in.
	ep *epoch
	// target selects the weight binding to override.
	target *qweights
	// panels is the replacement packed-panel buffer for target, packed
	// from the candidate's modified codes with the same PackAI8 layout
	// the epoch slots use, so the GEMM output is bit-identical to a
	// SetCode + publish.
	panels []int16
}

// slotOf resolves an op's epoch slot: the pinned epoch's when one is
// carried, the current epoch's otherwise.
func (ec *execEnv) slotOf(w *qweights) *epochSlot {
	if ec != nil && ec.ep != nil {
		return &ec.ep.slots[w.eidx]
	}
	return &w.qm.readEpoch().slots[w.eidx]
}

// panelsOf returns the packed panels for an op given its resolved slot,
// honoring the override when this op's weights are the override target.
func (ec *execEnv) panelsOf(w *qweights, sl *epochSlot) []int16 {
	if ec != nil && ec.target == w {
		return ec.panels
	}
	return sl.panels
}

// opInPlace reports whether the op may return its (mutated) input
// activation instead of a fresh buffer. Callers executing ops on cached
// activations must clone first.
func opInPlace(op qOp) bool {
	switch v := op.(type) {
	case *qReluOp:
		return true
	case *qResidualOp:
		// The add+ReLU epilogue writes into the main branch's output,
		// which aliases the block input only if every main op is in
		// place (degenerate plans; real blocks start with a conv).
		for _, sub := range v.main {
			if !opInPlace(sub) {
				return false
			}
		}
		return true
	}
	return false
}

// workersFor sizes a ParallelChunks fan-out: tiny workloads run inline.
func workersFor(work int) int {
	if work < 4096 {
		return 1
	}
	return tensor.MaxWorkers()
}

// quantizeSlice quantizes src into dst with the dynamic per-tensor
// activation scale max|x|/127 and round-to-nearest, returning the scale.
func quantizeSlice(dst []int8, src []float32) float32 {
	workers := workersFor(len(src))
	var mu sync.Mutex
	var maxAbs float32
	tensor.ParallelChunks(len(src), workers, func(lo, hi int) {
		var m float32
		for _, v := range src[lo:hi] {
			if v < 0 {
				v = -v
			}
			if v > m {
				m = v
			}
		}
		mu.Lock()
		if m > maxAbs {
			maxAbs = m
		}
		mu.Unlock()
	})
	if maxAbs == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return 1
	}
	inv := qmax / maxAbs
	tensor.ParallelChunks(len(src), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f := src[i] * inv
			var c int32
			if f >= 0 {
				c = int32(f + 0.5)
			} else {
				c = int32(f - 0.5)
			}
			if c > qmax {
				c = qmax
			} else if c < -qmax {
				c = -qmax
			}
			dst[i] = int8(c)
		}
	})
	return maxAbs / qmax
}

// ---------------------------------------------------------------------
// Weight bindings. Packed panels live in the published epoch snapshots
// (epoch.go), not here: a binding only records where the live codes are
// and which epoch slot serves this op.

// qweights binds an op to its live code segment, packed GEMM geometry
// (m × k row-major codes) and epoch slot.
type qweights struct {
	codes []int8
	scale float32
	m, k  int
	// eidx is the op's epoch-slot index; qm resolves slots for
	// single-goroutine callers that carry no pinned epoch.
	eidx int
	qm   *QModel
}

func (w *qweights) binding() *qweights { return w }

func (qm *QModel) bindWeights(w *qweights, p *nn.Param, m, k int) {
	pi := qm.q.ParamIndexOf(p)
	w.codes, w.scale = qm.q.ParamCodes(pi)
	w.m, w.k = m, k
	w.qm = qm
}

// buildStageIndex derives, for every parameter tensor, the top-level
// stage that reads it and (for lowered GEMM weights) the qweights
// binding — the mapping the suffix scorer uses to turn "code i changed"
// into "activations entering stages ≤ s are still valid".
func (qm *QModel) buildStageIndex() {
	nparams := len(qm.model.Params())
	qm.paramStage = make([]int, nparams)
	qm.paramPanelSlot = make([]int, nparams)
	qm.paramCoeffSlot = make([]int, nparams)
	for i := range qm.paramStage {
		qm.paramStage[i] = -1
		qm.paramPanelSlot[i] = -1
		qm.paramCoeffSlot[i] = -1
	}
	qm.paramWeight = make([]*qweights, nparams)
	for si, op := range qm.ops {
		qm.indexOpParams(si, op)
	}
}

func (qm *QModel) indexOpParams(stage int, op qOp) {
	// bind records the stage of parameter p; w non-nil marks it a
	// lowered GEMM weight (its flips stale the slot's packed panels),
	// coeffSlot ≥ 0 marks it an epilogue input (bias/BN affine — its
	// flips stale the slot's folded coefficients).
	bind := func(p *nn.Param, w *qweights, coeffSlot int) {
		if p == nil {
			return
		}
		pi := qm.q.ParamIndexOf(p)
		if pi < 0 {
			return
		}
		if qm.paramStage[pi] < 0 {
			qm.paramStage[pi] = stage
		}
		if w != nil && qm.paramWeight[pi] == nil {
			qm.paramWeight[pi] = w
			qm.paramPanelSlot[pi] = w.eidx
		}
		if coeffSlot >= 0 && qm.paramCoeffSlot[pi] < 0 {
			qm.paramCoeffSlot[pi] = coeffSlot
		}
	}
	switch v := op.(type) {
	case *qConvOp:
		bind(v.conv.Weight, &v.qweights, -1)
		bind(v.conv.Bias, nil, v.eidx)
		if v.bn != nil {
			bind(v.bn.Gamma, nil, v.eidx)
			bind(v.bn.Beta, nil, v.eidx)
		}
	case *qLinearOp:
		bind(v.lin.Weight, &v.qweights, -1)
		bind(v.lin.Bias, nil, v.eidx)
	case *qResidualOp:
		for _, sub := range v.main {
			qm.indexOpParams(stage, sub)
		}
		for _, sub := range v.shortcut {
			qm.indexOpParams(stage, sub)
		}
	case *qFallbackOp:
		for _, l := range v.layers {
			for _, p := range l.Params() {
				bind(p, nil, -1)
			}
		}
	}
}

// ---------------------------------------------------------------------
// Plan compilation.

type qOp interface {
	// forward executes the op. ec (nil for plain inference) may carry a
	// packed-panel override for one weight tensor; ops must honor it via
	// execEnv.panelsOf so a scorer candidate can shadow one layer's
	// weights without mutating shared state.
	forward(ec *execEnv, in *qact) *qact
}

// compile lowers a layer list into the op plan, fusing Conv+BN+ReLU and
// Linear+ReLU and batching unknown layers into float fallback ops.
func (qm *QModel) compile(layers []nn.Layer) []qOp {
	var ops []qOp
	var pending []nn.Layer
	flush := func() {
		if len(pending) > 0 {
			ops = append(ops, &qFallbackOp{layers: pending})
			qm.hasFallback = true
			pending = nil
		}
	}
	for i := 0; i < len(layers); i++ {
		switch v := layers[i].(type) {
		case *nn.Sequential:
			flush()
			ops = append(ops, qm.compile(v.Layers())...)
		case *nn.Residual:
			flush()
			r := &qResidualOp{main: qm.compile([]nn.Layer{v.Main})}
			if v.Shortcut != nil {
				r.shortcut = qm.compile([]nn.Layer{v.Shortcut})
			}
			ops = append(ops, r)
		case *nn.Conv2D:
			flush()
			op := &qConvOp{conv: v}
			if j := i + 1; j < len(layers) {
				if bn, ok := layers[j].(*nn.BatchNorm2D); ok {
					op.bn = bn
					i = j
				}
			}
			if j := i + 1; j < len(layers) {
				if _, ok := layers[j].(*nn.ReLU); ok {
					op.relu = true
					i = j
				}
			}
			inC, outC, kh, kw, _, _ := v.Geom()
			qm.bindWeights(&op.qweights, v.Weight, outC, inC*kh*kw)
			qm.registerGemm(op)
			ops = append(ops, op)
		case *nn.Linear:
			flush()
			op := &qLinearOp{lin: v}
			if j := i + 1; j < len(layers) {
				if _, ok := layers[j].(*nn.ReLU); ok {
					op.relu = true
					i = j
				}
			}
			inF, outF := v.Dims()
			qm.bindWeights(&op.qweights, v.Weight, outF, inF)
			qm.registerGemm(op)
			ops = append(ops, op)
		case *nn.ReLU:
			flush()
			ops = append(ops, &qReluOp{})
		case *nn.MaxPool2D:
			flush()
			ops = append(ops, &qMaxPoolOp{pool: v})
		case *nn.GlobalAvgPool:
			flush()
			ops = append(ops, &qGapOp{})
		case *nn.Flatten:
			flush()
			// Logical only: qLinearOp gathers features straight from the
			// channel-major layout, so flatten moves no data.
		default:
			pending = append(pending, layers[i])
		}
	}
	flush()
	return ops
}

// ---------------------------------------------------------------------
// Ops.

// qConvOp is a fused Conv[+BN][+ReLU] layer on int8 codes: quantize the
// input, batched im2col into one wide column matrix, one int8 GEMM, and
// a per-channel fp32 epilogue folding the activation/weight scales, the
// conv bias and the BatchNorm affine (running statistics) — plus the
// ReLU clamp — into a single pass over the int32 accumulators.
type qConvOp struct {
	qweights
	conv *nn.Conv2D
	bn   *nn.BatchNorm2D // nil when the conv is not followed by BN
	relu bool
}

func (op *qConvOp) forward(ec *execEnv, in *qact) *qact {
	inC, outC, kh, kw, stride, pad := op.conv.Geom()
	if in.c != inC {
		panic("quant: conv input channel mismatch")
	}
	n, h, w := in.n, in.h, in.w
	oh, ow := op.conv.OutSize(h, w)
	ohow := oh * ow
	ncols := n * ohow
	ckk := inC * kh * kw

	xq := tensor.GetI8(len(in.data))
	sx := quantizeSlice(xq, in.data)

	bcol := tensor.GetI8(ckk * ncols)
	chanStride := n * h * w
	hwIn := h * w
	tensor.ParallelChunks(n, workersFor(ckk*ncols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			tensor.Im2ColI8(xq[i*hwIn:], chanStride, inC, h, w, kh, kw, stride, pad,
				bcol, ncols, i*ohow)
		}
	})
	tensor.PutI8(xq)

	sl := ec.slotOf(&op.qweights)
	acc := tensor.GetI32(outC * ncols)
	pa := ec.panelsOf(&op.qweights, sl)
	tensor.GemmI8PackedA(acc, pa, outC, ckk, bcol, ncols)
	tensor.PutI8(bcol)

	out := getAct(outC, n, oh, ow)
	base := sx * op.scale
	cA, cS := sl.cA, sl.cS
	relu := op.relu
	od := out.data
	tensor.ParallelChunks(outC, workersFor(outC*ncols), func(lo, hi int) {
		for oc := lo; oc < hi; oc++ {
			// mo/so reproduce the pre-epoch epilogue bit for bit: the
			// sx-independent factors were folded at publish time with the
			// exact expressions the per-forward path used.
			mo := base
			if cA != nil {
				mo = base * cA[oc]
			}
			var so float32
			if cS != nil {
				so = cS[oc]
			}
			src := acc[oc*ncols : (oc+1)*ncols]
			dst := od[oc*ncols : (oc+1)*ncols]
			if relu {
				for j, v := range src {
					f := float32(v)*mo + so
					if f < 0 {
						f = 0
					}
					dst[j] = f
				}
			} else {
				for j, v := range src {
					dst[j] = float32(v)*mo + so
				}
			}
		}
	})
	tensor.PutI32(acc)
	return out
}

// epochCoeffs folds the conv bias and the BN affine (running statistics
// included) into the per-channel epilogue factors of one epoch slot:
// the final multiplier is sx·Δw·cA and the shift is cS, exactly the
// (mul, shift) the engine computed per forward before epochs. Called at
// publish time from the epoch rebuild.
func (op *qConvOp) epochCoeffs() (cA, cS []float32) {
	_, outC, _, _, _, _ := op.conv.Geom()
	var bias []float32
	if op.conv.Bias != nil {
		bias = op.conv.Bias.W.Data()
	}
	if op.bn == nil {
		if bias == nil {
			return nil, nil // multiplier is the base, shift is zero
		}
		return nil, append([]float32(nil), bias...)
	}
	cA = make([]float32, outC)
	cS = make([]float32, outC)
	g := op.bn.Gamma.W.Data()
	bt := op.bn.Beta.W.Data()
	eps := float64(op.bn.Eps())
	for oc := 0; oc < outC; oc++ {
		istd := float32(1 / math.Sqrt(float64(op.bn.RunningVar[oc])+eps))
		a := g[oc] * istd
		cA[oc] = a
		s := bt[oc] - op.bn.RunningMean[oc]*a
		if bias != nil {
			s += bias[oc] * a
		}
		cS[oc] = s
	}
	return cA, cS
}

// qLinearOp is a fused Linear[+ReLU] on int8 codes. The channel-major
// activation (c·h·w, n) is exactly the (In × N) right-hand side the
// GEMM wants; when h=w=1 (the classifier position) the quantized input
// needs no gather at all.
type qLinearOp struct {
	qweights
	lin  *nn.Linear
	relu bool
}

// epochCoeffs snapshots the (quantized, flippable) bias into the slot's
// shift vector; the multiplier is always the dynamic sx·Δw base.
func (op *qLinearOp) epochCoeffs() (cA, cS []float32) {
	if op.lin.Bias == nil {
		return nil, nil
	}
	return nil, append([]float32(nil), op.lin.Bias.W.Data()...)
}

func (op *qLinearOp) forward(ec *execEnv, in *qact) *qact {
	inF, outF := op.lin.Dims()
	n := in.n
	hw := in.h * in.w
	if in.c*hw != inF {
		panic("quant: linear input width mismatch")
	}
	xq := tensor.GetI8(inF * n)
	var sx float32
	if hw == 1 {
		sx = quantizeSlice(xq, in.data)
	} else {
		// Gather (c, n, hw) → (c·hw, n) while quantizing.
		var mu sync.Mutex
		var maxAbs float32
		tensor.ParallelChunks(len(in.data), workersFor(len(in.data)), func(lo, hi int) {
			var m float32
			for _, v := range in.data[lo:hi] {
				if v < 0 {
					v = -v
				}
				if v > m {
					m = v
				}
			}
			mu.Lock()
			if m > maxAbs {
				maxAbs = m
			}
			mu.Unlock()
		})
		if maxAbs == 0 {
			maxAbs = qmax // scale 1; all codes quantize to 0
		}
		inv := qmax / maxAbs
		src := in.data
		for c := 0; c < in.c; c++ {
			for i := 0; i < n; i++ {
				base := (c*n + i) * hw
				for s := 0; s < hw; s++ {
					f := src[base+s] * inv
					var q8 int32
					if f >= 0 {
						q8 = int32(f + 0.5)
					} else {
						q8 = int32(f - 0.5)
					}
					if q8 > qmax {
						q8 = qmax
					} else if q8 < -qmax {
						q8 = -qmax
					}
					xq[(c*hw+s)*n+i] = int8(q8)
				}
			}
		}
		sx = maxAbs / qmax
	}

	sl := ec.slotOf(&op.qweights)
	acc := tensor.GetI32(outF * n)
	pa := ec.panelsOf(&op.qweights, sl)
	tensor.GemmI8PackedA(acc, pa, outF, inF, xq, n)
	tensor.PutI8(xq)

	out := getAct(outF, n, 1, 1)
	mulS := sx * op.scale
	bias := sl.cS
	od := out.data
	for o := 0; o < outF; o++ {
		var b float32
		if bias != nil {
			b = bias[o]
		}
		src := acc[o*n : (o+1)*n]
		dst := od[o*n : (o+1)*n]
		if op.relu {
			for i, v := range src {
				f := float32(v)*mulS + b
				if f < 0 {
					f = 0
				}
				dst[i] = f
			}
		} else {
			for i, v := range src {
				dst[i] = float32(v)*mulS + b
			}
		}
	}
	tensor.PutI32(acc)
	return out
}

// qReluOp clamps in place (layout-agnostic).
type qReluOp struct{}

func (op *qReluOp) forward(_ *execEnv, in *qact) *qact {
	d := in.data
	for i, v := range d {
		if v < 0 {
			d[i] = 0
		}
	}
	return in
}

// qMaxPoolOp pools each (channel, sample) plane.
type qMaxPoolOp struct {
	pool *nn.MaxPool2D
}

func (op *qMaxPoolOp) forward(_ *execEnv, in *qact) *qact {
	k, stride := op.pool.Window()
	c, n, h, w := in.c, in.n, in.h, in.w
	oh := (h-k)/stride + 1
	ow := (w-k)/stride + 1
	out := getAct(c, n, oh, ow)
	hw, ohow := h*w, oh*ow
	xd, od := in.data, out.data
	tensor.ParallelChunks(c*n, workersFor(c*n*ohow*k*k), func(lo, hi int) {
		for p := lo; p < hi; p++ {
			inBase := p * hw
			outBase := p * ohow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := xd[inBase+oy*stride*w+ox*stride]
					for ky := 0; ky < k; ky++ {
						row := inBase + (oy*stride+ky)*w
						for kx := 0; kx < k; kx++ {
							if v := xd[row+ox*stride+kx]; v > best {
								best = v
							}
						}
					}
					od[outBase+oy*ow+ox] = best
				}
			}
		}
	})
	return out
}

// qGapOp averages each (channel, sample) plane to (c, n).
type qGapOp struct{}

func (op *qGapOp) forward(_ *execEnv, in *qact) *qact {
	hw := in.h * in.w
	out := getAct(in.c, in.n, 1, 1)
	inv := 1 / float32(hw)
	xd, od := in.data, out.data
	for p := 0; p < in.c*in.n; p++ {
		var s float32
		base := p * hw
		for j := 0; j < hw; j++ {
			s += xd[base+j]
		}
		od[p] = s * inv
	}
	return out
}

// qResidualOp runs both branches on the same input and applies the
// block's add+ReLU epilogue in place on the main branch's output.
type qResidualOp struct {
	main     []qOp
	shortcut []qOp // nil for identity
}

func (op *qResidualOp) forward(ec *execEnv, in *qact) *qact {
	mo := runOps(op.main, ec, in)
	so := in
	if op.shortcut != nil {
		so = runOps(op.shortcut, ec, in)
	}
	md, sd := mo.data, so.data
	for i := range md {
		f := md[i] + sd[i]
		if f < 0 {
			f = 0
		}
		md[i] = f
	}
	if so != in {
		putAct(so)
	}
	return mo
}

// qFallbackOp bridges layers the quantized engine does not lower
// (binarized convs, taps): convert to NCHW, run the float forwards in
// eval mode, convert back. Plans containing it are not concurrency-safe.
type qFallbackOp struct {
	layers []nn.Layer
}

func (op *qFallbackOp) forward(_ *execEnv, in *qact) *qact {
	x := actToTensor(in)
	for _, l := range op.layers {
		x = l.Forward(x, false)
	}
	return tensorToAct(x)
}
