package quant

import (
	"sync"
	"sync/atomic"
	"testing"

	"rowhammer/internal/models"
)

// buildEngine is the shared fixture: a small untrained resnet20 and its
// int8 engine.
func buildEngine(t testing.TB, seed int64) (*Quantizer, *QModel) {
	t.Helper()
	m, err := models.Build(models.Config{Arch: "resnet20", Classes: 10, WidthMult: 0.25, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuantizer(m)
	return q, NewQModel(q)
}

// TestEpochHotSwapVisibility pins the DESIGN §9 contract: a mutation
// made through Exclusive is visible to the very next Forward, advances
// the epoch sequence by exactly one publish, and matches what a fresh
// engine computes from the same codes.
func TestEpochHotSwapVisibility(t *testing.T) {
	q, qm := buildEngine(t, 41)
	x := fixedBatch(qm.Model(), 3, 13)
	before := append([]float32(nil), qm.Forward(x).Data()...)
	seq0 := qm.EpochSeq()

	qm.Exclusive(func() { q.FlipBit(0, 7) })
	if got := qm.EpochSeq(); got != seq0+1 {
		t.Fatalf("EpochSeq after Exclusive = %d, want %d", got, seq0+1)
	}
	after := qm.Forward(x).Data()
	fresh := NewQModel(q).Forward(x).Data()
	changed := false
	for i := range after {
		if after[i] != fresh[i] {
			t.Fatalf("logit %d: hot-swapped %v vs fresh %v", i, after[i], fresh[i])
		}
		if after[i] != before[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("sign-bit flip did not move any logit")
	}
	if live := qm.LiveEpochs(); live != 1 {
		t.Fatalf("LiveEpochs = %d after drain, want 1", live)
	}
}

// TestEpochHotSwapCoeffParams covers the epilogue-coefficient slots: a
// hot-swapped flip to a bias/BN parameter (which the int8 plan folds
// into per-channel epilogue factors, not packed panels) must be honored
// exactly like a fresh compile.
func TestEpochHotSwapCoeffParams(t *testing.T) {
	q, qm := buildEngine(t, 43)
	x := fixedBatch(qm.Model(), 3, 17)
	qm.Forward(x) // publish the initial epoch

	// Find a parameter with no packed-weight binding (bias / BN affine).
	target := -1
	off := 0
	for pi, p := range qm.Model().Params() {
		if qm.paramWeight[pi] == nil && qm.paramCoeffSlot[pi] >= 0 {
			target = off
			break
		}
		off += p.W.Len()
	}
	if target < 0 {
		t.Fatal("no epilogue-coefficient parameter found")
	}
	qm.Exclusive(func() { q.FlipBit(target, 7) })
	after := qm.Forward(x).Data()
	fresh := NewQModel(q).Forward(x).Data()
	for i := range after {
		if after[i] != fresh[i] {
			t.Fatalf("logit %d: hot-swapped %v vs fresh %v after coeff flip", i, after[i], fresh[i])
		}
	}
}

// TestEpochFlipStormRace is the torn-read race test: one goroutine
// hammers FlipBit through the hot-swap path, toggling the model between
// exactly two code states, while N goroutines Forward continuously.
// Every returned batch must match the pre- or post-flip model byte for
// byte — a half-repacked panel or a forward mixing epochs across layers
// produces logits matching neither. Run under -race. After the storm
// drains, exactly one epoch may remain live (the retirement leak
// check).
func TestEpochFlipStormRace(t *testing.T) {
	q, qm := buildEngine(t, 47)
	if !qm.ConcurrentSafe() {
		t.Fatal("resnet20 plan must be concurrency-safe")
	}
	x := fixedBatch(qm.Model(), 4, 19)

	// State A: as-built. State B: a first-layer weight sign flip plus an
	// epilogue-parameter flip, so both panel and coefficient slots churn.
	coeffTarget := len(q.CodesView()) - 1 // final linear bias (coeff slot)
	toggle := func() {
		q.FlipBit(0, 7)
		q.FlipBit(coeffTarget, 6)
	}
	wantA := append([]float32(nil), qm.Forward(x).Data()...)
	qm.Exclusive(toggle)
	wantB := append([]float32(nil), qm.Forward(x).Data()...)
	qm.Exclusive(toggle) // back to A

	const flips = 60
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan string, 16)

	// The attacker: hot-swap flips as fast as the engine allows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < flips; i++ {
			qm.Exclusive(toggle)
		}
		stop.Store(true)
	}()

	// The serving threads: continuous forwards, each result must be
	// exactly state A's or state B's logits.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				got := qm.Forward(x).Data()
				matchA, matchB := true, true
				for i := range got {
					if got[i] != wantA[i] {
						matchA = false
					}
					if got[i] != wantB[i] {
						matchB = false
					}
					if !matchA && !matchB {
						errs <- "torn read: forward output matches neither published epoch"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
	if live := qm.LiveEpochs(); live != 1 {
		t.Fatalf("epoch leak: %d epochs live after drain, want 1", live)
	}
	// flips was even, so the final state is A again.
	final := qm.Forward(x).Data()
	for i := range final {
		if final[i] != wantA[i] {
			t.Fatalf("final state diverged from state A at logit %d", i)
		}
	}
}
