package quant

import (
	"sync"
	"testing"

	"rowhammer/internal/models"
	"rowhammer/internal/nn"
	"rowhammer/internal/tensor"
)

// qmodelLogitTol is the documented agreement bound between the int8
// engine and the fp32 reference: the max absolute logit difference must
// stay below this fraction of the largest fp32 logit magnitude. The
// engine quantizes weights (shared codes, exact) and activations
// (dynamic per-tensor max|x|/127), so the residual error is activation
// rounding accumulated over depth; across the eight registered
// architectures the measured worst case is well under this bound.
const qmodelLogitTol = 0.05

func fixedBatch(m *nn.Model, n int, seed int64) *tensor.Tensor {
	x := tensor.New(n, m.InputShape[0], m.InputShape[1], m.InputShape[2])
	tensor.NewRNG(seed).FillUniform(x, -1, 1)
	return x
}

func maxAbsLogit(d []float32) float32 {
	var m float32
	for _, v := range d {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// TestQModelMatchesFloatAllArchs is the golden agreement test: for every
// registered architecture the int8 engine must produce the same top-1
// predictions as the fp32 model on a fixed synthetic batch, with logits
// inside the documented tolerance.
func TestQModelMatchesFloatAllArchs(t *testing.T) {
	for _, arch := range models.Names() {
		arch := arch
		t.Run(arch, func(t *testing.T) {
			m, err := models.Build(models.Config{Arch: arch, Classes: 10, WidthMult: 0.25, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			q := NewQuantizer(m)
			qm := NewQModel(q)
			x := fixedBatch(m, 4, 11)

			ref := m.Forward(x, false)
			got := qm.Forward(x)
			rd, gd := ref.Data(), got.Data()
			if len(rd) != len(gd) {
				t.Fatalf("logit count %d, want %d", len(gd), len(rd))
			}
			tol := qmodelLogitTol * maxAbsLogit(rd)
			for i := range rd {
				d := rd[i] - gd[i]
				if d < 0 {
					d = -d
				}
				if d > tol {
					t.Fatalf("logit %d: int8 %v vs fp32 %v (|Δ|=%v > tol %v)", i, gd[i], rd[i], d, tol)
				}
			}
			// Top-1 must be identical whenever the fp32 decision margin
			// exceeds the quantization noise bound. Untrained deep nets
			// (notably resnet50 at random init) emit near-degenerate
			// logits, so a genuine tie — fp32 winner and int8 winner
			// within the logit tolerance of each other — is the one case
			// where argmax may legitimately differ.
			refPred := m.Predict(x)
			gotPred := qm.Predict(x)
			k := ref.Dim(1)
			for i := range refPred {
				if refPred[i] == gotPred[i] {
					continue
				}
				margin := rd[i*k+refPred[i]] - rd[i*k+gotPred[i]]
				if margin > tol {
					t.Fatalf("sample %d: int8 top-1 %d, fp32 top-1 %d (margin %v > tol %v)",
						i, gotPred[i], refPred[i], margin, tol)
				}
			}

			wantSafe := arch != "bin-resnet32" // binarized convs fall back to float layers
			if qm.ConcurrentSafe() != wantSafe {
				t.Fatalf("ConcurrentSafe = %v, want %v", qm.ConcurrentSafe(), wantSafe)
			}
		})
	}
}

// TestQModelFlatInput covers the 2-D (N, F) input path through the
// fused Linear ops.
func TestQModelFlatInput(t *testing.T) {
	m := toyModel(31)
	q := NewQuantizer(m)
	qm := NewQModel(q)
	x := tensor.New(6, 8)
	tensor.NewRNG(3).FillUniform(x, -1, 1)
	ref := m.Forward(x, false)
	got := qm.Forward(x)
	rd, gd := ref.Data(), got.Data()
	tol := qmodelLogitTol * maxAbsLogit(rd)
	for i := range rd {
		d := rd[i] - gd[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			t.Fatalf("logit %d: int8 %v vs fp32 %v (tol %v)", i, gd[i], rd[i], tol)
		}
	}
}

// TestQModelFlipBitInvalidation exercises the incremental path: a
// FlipBit must change the quantized forward exactly as a fresh engine
// would see it, and flipping back must restore the original logits
// bit-for-bit (int32 accumulation is exact, so identical codes give
// identical logits).
func TestQModelFlipBitInvalidation(t *testing.T) {
	m, err := models.Build(models.Config{Arch: "resnet20", Classes: 10, WidthMult: 0.25, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuantizer(m)
	qm := NewQModel(q)
	x := fixedBatch(m, 3, 17)
	before := append([]float32(nil), qm.Forward(x).Data()...)

	// Flip the sign bit of a first-layer weight — large enough to move
	// the logits.
	q.FlipBit(0, 7)
	after := qm.Forward(x).Data()
	fresh := NewQModel(q).Forward(x).Data()
	changed := false
	for i := range after {
		if after[i] != fresh[i] {
			t.Fatalf("logit %d: incremental %v vs fresh %v", i, after[i], fresh[i])
		}
		if after[i] != before[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("sign-bit flip did not move any logit")
	}

	q.FlipBit(0, 7)
	restored := qm.Forward(x).Data()
	for i := range restored {
		if restored[i] != before[i] {
			t.Fatalf("logit %d not restored after double flip: %v vs %v", i, restored[i], before[i])
		}
	}
}

// TestQModelLoadWeightFileBytes runs the paper's deployment loop on the
// quantized engine: serialize the weight file, corrupt one bit as the
// online attack would, reload, and check the engine tracks the change
// and round-trips back.
func TestQModelLoadWeightFileBytes(t *testing.T) {
	m, err := models.Build(models.Config{Arch: "resnet20", Classes: 10, WidthMult: 0.25, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuantizer(m)
	qm := NewQModel(q)
	x := fixedBatch(m, 3, 19)
	before := append([]float32(nil), qm.Forward(x).Data()...)

	file := append([]byte(nil), q.WeightFileBytes()...)
	corrupt := append([]byte(nil), file...)
	corrupt[12] ^= 0x80
	q.LoadWeightFileBytes(corrupt)
	if q.Code(12) == int8(file[12]) {
		t.Fatal("corruption did not reach codes")
	}
	after := qm.Forward(x).Data()
	fresh := NewQModel(q).Forward(x).Data()
	for i := range after {
		if after[i] != fresh[i] {
			t.Fatalf("logit %d: incremental %v vs fresh %v after reload", i, after[i], fresh[i])
		}
	}

	q.LoadWeightFileBytes(file)
	restored := qm.Forward(x).Data()
	for i := range restored {
		if restored[i] != before[i] {
			t.Fatalf("logit %d not restored after reloading the clean file", i)
		}
	}
}

// TestQModelConcurrentForward hammers a ConcurrentSafe engine from many
// goroutines (run under -race) and checks every result matches the
// sequential forward exactly.
func TestQModelConcurrentForward(t *testing.T) {
	m, err := models.Build(models.Config{Arch: "resnet20", Classes: 10, WidthMult: 0.25, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuantizer(m)
	qm := NewQModel(q)
	if !qm.ConcurrentSafe() {
		t.Fatal("resnet20 plan must be concurrency-safe")
	}
	x := fixedBatch(m, 4, 23)
	want := append([]float32(nil), qm.Forward(x).Data()...)

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 3; iter++ {
				got := qm.Forward(x).Data()
				for i := range got {
					if got[i] != want[i] {
						errs <- "concurrent forward diverged"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

func benchForward(b *testing.B, quantized bool) {
	m, err := models.Build(models.Config{Arch: "resnet20", Classes: 10, WidthMult: 0.25, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	q := NewQuantizer(m)
	x := fixedBatch(m, 32, 29)
	var fwd func() *tensor.Tensor
	if quantized {
		qm := NewQModel(q)
		fwd = func() *tensor.Tensor { return qm.Forward(x) }
	} else {
		fwd = func() *tensor.Tensor { return m.Forward(x, false) }
	}
	fwd() // warm caches and pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fwd()
	}
}

// BenchmarkQuantForward and BenchmarkFloatForward compare one batch-32
// resnet20 forward on the int8 engine vs the fp32 graph.
func BenchmarkQuantForward(b *testing.B) { benchForward(b, true) }
func BenchmarkFloatForward(b *testing.B) { benchForward(b, false) }

// The ST variants pin every layer of parallelism to one thread, so the
// ratio reflects pure per-core engine speed (the paper's acceptance
// criterion), not scheduler luck.
func BenchmarkQuantForwardST(b *testing.B) {
	defer tensor.SetMaxWorkers(tensor.SetMaxWorkers(1))
	defer nn.SetBatchWorkers(nn.SetBatchWorkers(1))
	benchForward(b, true)
}

func BenchmarkFloatForwardST(b *testing.B) {
	defer tensor.SetMaxWorkers(tensor.SetMaxWorkers(1))
	defer nn.SetBatchWorkers(nn.SetBatchWorkers(1))
	benchForward(b, false)
}
