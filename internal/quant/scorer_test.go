package quant

import (
	"testing"

	"rowhammer/internal/models"
	"rowhammer/internal/nn"
)

// scorerFixture builds a quantized resnet20 with a pinned evaluation
// batch and returns the scorer plus a reference evaluator that computes
// the same blended objective with two full forwards.
func scorerFixture(t *testing.T, arch string) (*Quantizer, *QModel, *Scorer, func() float32) {
	t.Helper()
	m, err := models.Build(models.Config{Arch: arch, Classes: 10, WidthMult: 0.25, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuantizer(m)
	qm := NewQModel(q)
	clean := fixedBatch(m, 4, 31)
	trig := fixedBatch(m, 4, 32)
	labels := []int{0, 1, 2, 3}
	targets := []int{2, 2, 2, 2}
	const alpha = 0.5
	full := func() float32 {
		return nn.CrossEntropyLoss(qm.Forward(clean), labels, 1-alpha) +
			nn.CrossEntropyLoss(qm.Forward(trig), targets, alpha)
	}
	s := NewScorer(qm, clean, trig, labels, targets, alpha)
	return q, qm, s, full
}

// scorerProbeWeights picks candidate weight indices spread across the
// plan: the first weight (earliest conv), a weight from the last GEMM
// param, and — when present — a weight on a parameter the int8 plan
// reads from live floats (BN gamma/beta or a bias), which exercises the
// serial mutate-and-revert path.
func scorerProbeWeights(q *Quantizer, qm *QModel) []int {
	idx := []int{0}
	lastGemm, serial := -1, -1
	for pi := range qm.paramWeight {
		if qm.paramStage[pi] < 0 {
			continue
		}
		if qm.paramWeight[pi] != nil {
			lastGemm = pi
		} else if serial < 0 {
			serial = pi
		}
	}
	if lastGemm >= 0 {
		idx = append(idx, q.offsets[lastGemm])
	}
	if serial >= 0 {
		idx = append(idx, q.offsets[serial])
	}
	return idx
}

// TestScorerMatchesFullForward is the bit-identity contract: Loss and
// every candidate score must equal the corresponding full-forward
// evaluation exactly, on both the concurrent panel-override path and
// the serial mutate-and-revert path.
func TestScorerMatchesFullForward(t *testing.T) {
	q, qm, s, full := scorerFixture(t, "resnet20")

	if got, want := s.Loss(), full(); got != want {
		t.Fatalf("baseline loss %v, want full-forward %v", got, want)
	}

	var cands []Candidate
	for _, wi := range scorerProbeWeights(q, qm) {
		old := q.Code(wi)
		cands = append(cands,
			Candidate{Weight: wi, Code: old ^ 0x04},
			Candidate{Weight: wi, Code: int8(byte(old) ^ 0x80)},
		)
	}
	want := make([]float32, len(cands))
	for i, c := range cands {
		old := q.Code(c.Weight)
		q.SetCode(c.Weight, c.Code)
		want[i] = full()
		q.SetCode(c.Weight, old)
	}
	wantBase := full()

	got, base := s.Score(cands)
	if base != wantBase {
		t.Fatalf("base loss %v, want %v", base, wantBase)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("candidate %d (weight %d): scorer %v, want full-forward %v",
				i, cands[i].Weight, got[i], want[i])
		}
	}

	// Scoring must leave the codes untouched.
	if l := full(); l != wantBase {
		t.Fatalf("codes perturbed by scoring: loss %v, want %v", l, wantBase)
	}
}

// TestScorerWorkerDeterminism scores the same candidate set at several
// worker counts; the losses must be byte-identical.
func TestScorerWorkerDeterminism(t *testing.T) {
	q, qm, s, _ := scorerFixture(t, "resnet20")
	var cands []Candidate
	for _, wi := range scorerProbeWeights(q, qm) {
		old := q.Code(wi)
		cands = append(cands, Candidate{Weight: wi, Code: int8(byte(old) ^ 0x80)})
	}
	s.SetWorkers(1)
	ref, refBase := s.Score(cands)
	for _, w := range []int{2, 4, 0} {
		s.SetWorkers(w)
		got, base := s.Score(cands)
		if base != refBase {
			t.Fatalf("workers=%d: base %v, want %v", w, base, refBase)
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d candidate %d: %v, want %v", w, i, got[i], ref[i])
			}
		}
	}
}

// TestScorerInvalidation covers the cache-consistency contract: a
// committed SetCode must be reflected by the next Loss (via the
// code-change notification shrinking the valid prefix), an in-place
// restamp of the pinned inputs must be reflected after InputsChanged,
// and Release must not change any result.
func TestScorerInvalidation(t *testing.T) {
	q, _, s, full := scorerFixture(t, "resnet20")

	before := s.Loss()
	q.FlipBit(0, 7)
	if got, want := s.Loss(), full(); got != want {
		t.Fatalf("after SetCode: scorer %v, want %v", got, want)
	}
	if s.Loss() == before {
		t.Fatal("sign-bit flip did not move the cached loss")
	}
	q.FlipBit(0, 7)
	if got := s.Loss(); got != before {
		t.Fatalf("after revert: scorer %v, want %v", got, before)
	}

	// Restamp the pinned triggered batch in place; the cache is stale by
	// design until InputsChanged, after which it must match the full
	// forwards on the new contents.
	td := s.trig.Data()
	for i := range td {
		td[i] *= 0.5
	}
	s.InputsChanged()
	if got, want := s.Loss(), full(); got != want {
		t.Fatalf("after InputsChanged: scorer %v, want %v", got, want)
	}

	s.Release()
	if got, want := s.Loss(), full(); got != want {
		t.Fatalf("after Release: scorer %v, want %v", got, want)
	}
}

// TestScorerFallbackArch runs the scorer on bin-resnet32, whose plan
// contains float fallback layers (ConcurrentSafe is false): every
// candidate must take the serial path and still match full forwards
// exactly.
func TestScorerFallbackArch(t *testing.T) {
	q, qm, s, full := scorerFixture(t, "bin-resnet32")
	if qm.ConcurrentSafe() {
		t.Fatal("fixture expected a non-ConcurrentSafe plan")
	}
	if got, want := s.Loss(), full(); got != want {
		t.Fatalf("baseline loss %v, want %v", got, want)
	}
	var cands []Candidate
	for _, wi := range scorerProbeWeights(q, qm) {
		old := q.Code(wi)
		cands = append(cands, Candidate{Weight: wi, Code: int8(byte(old) ^ 0x80)})
	}
	want := make([]float32, len(cands))
	for i, c := range cands {
		old := q.Code(c.Weight)
		q.SetCode(c.Weight, c.Code)
		want[i] = full()
		q.SetCode(c.Weight, old)
	}
	got, _ := s.Score(cands)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("candidate %d: scorer %v, want %v", i, got[i], want[i])
		}
	}
}

// TestScorerScoreIntoReuse checks the destination-slice contract: a
// too-small dst is grown, a large-enough dst is reused in place.
func TestScorerScoreIntoReuse(t *testing.T) {
	q, _, s, _ := scorerFixture(t, "resnet20")
	cands := []Candidate{{Weight: 0, Code: q.Code(0) ^ 0x04}}
	buf := make([]float32, 8)
	got, _ := s.ScoreInto(buf, cands)
	if len(got) != 1 || &got[0] != &buf[0] {
		t.Fatal("ScoreInto did not reuse the provided buffer")
	}
	empty, _ := s.ScoreInto(nil, nil)
	if len(empty) != 0 {
		t.Fatalf("empty candidate set produced %d losses", len(empty))
	}
}

func BenchmarkScorer(b *testing.B) {
	m, err := models.Build(models.Config{Arch: "resnet20", Classes: 10, WidthMult: 0.25, Seed: 21})
	if err != nil {
		b.Fatal(err)
	}
	q := NewQuantizer(m)
	qm := NewQModel(q)
	clean := fixedBatch(m, 8, 31)
	trig := fixedBatch(m, 8, 32)
	labels := make([]int, 8)
	targets := make([]int, 8)
	s := NewScorer(qm, clean, trig, labels, targets, 0.5)
	// A late-stage candidate: the suffix is short, which is the common
	// case for the CFT+BR refinement (the weight file is dominated by
	// deep layers).
	wi := q.NumWeights() - 1
	cands := []Candidate{{Weight: wi, Code: int8(byte(q.Code(wi)) ^ 0x80)}}
	s.Score(cands) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Score(cands)
	}
}
