package quant

import "testing"

// TestFlipBitThenCloneWeightsTo pins the interaction the trainer's
// resync path relies on: after the quantizer mutates master weights via
// FlipBit, CloneWeightsTo must carry the mutated values into a
// structural clone exactly.
func TestFlipBitThenCloneWeightsTo(t *testing.T) {
	m := toyModel(5)
	q := NewQuantizer(m)
	orig := q.Codes()

	// Flip a few bits spread across the weight vector, including a sign
	// bit, so the float weights drift off their original codes.
	nw := q.NumWeights()
	for _, f := range []struct {
		idx int
		bit uint
	}{{0, 0}, {nw / 2, 3}, {nw - 1, 7}} {
		q.FlipBit(f.idx, f.bit)
	}
	if d := HammingDistance(orig, q.Codes()); d != 3 {
		t.Fatalf("expected 3 flipped bits, got Hamming distance %d", d)
	}

	dst := m.Clone()
	// Scramble the clone so a silent no-op copy can't pass.
	for _, p := range dst.Params() {
		d := p.W.Data()
		for i := range d {
			d[i] = -1
		}
	}
	if err := m.CloneWeightsTo(dst); err != nil {
		t.Fatal(err)
	}

	mp, dp := m.Params(), dst.Params()
	for i := range mp {
		md, dd := mp[i].W.Data(), dp[i].W.Data()
		for j := range md {
			if md[j] != dd[j] {
				t.Fatalf("param %q[%d]: %v != %v after roundtrip", mp[i].Name, j, dd[j], md[j])
			}
		}
	}
}
