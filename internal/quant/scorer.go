package quant

import (
	"rowhammer/internal/nn"
	"rowhammer/internal/tensor"
)

// Candidate is one prospective single-weight code change: set the weight
// at flat weight-file index Weight to Code. This is the unit both the
// CFT+BR greedy refinement and progressive bit-search attacks
// (DeepHammer / BFA style) evaluate thousands of times.
type Candidate struct {
	// Weight is the flat weight-file index.
	Weight int
	// Code is the int8 code to apply.
	Code int8
}

// Scorer evaluates candidate code changes against a pinned evaluation
// batch using layer-suffix incremental forwards on the int8 engine.
//
// The scorer pins the per-layer activations of the clean and triggered
// batches at every top-level stage boundary of the compiled plan
// (an ActivationCache). Because a single-weight change to parameter
// tensor pi perturbs exactly one stage — QModel.paramStage knows which —
// scoring a candidate in stage s recomputes only stages ≥ s, reusing
// the cached activation entering s. The quantizer's code-change
// notifications shrink the cache's valid prefix automatically, so the
// cache is always consistent with the live codes: after any SetCode /
// FlipBit / Requantize, the next Score call recomputes exactly the
// stale suffix and nothing else.
//
// Candidates score concurrently: each candidate on a lowered GEMM
// weight packs a private panel override from pooled scratch and runs
// the suffix forward without mutating the shared quantizer, so any
// number of workers produce bit-identical losses. Candidates on
// parameters the int8 plan reads from live model floats (biases, BN
// gamma/beta, fallback-layer params) — and every candidate when the
// plan contains float fallback layers — score serially by
// mutate-and-revert. Both paths produce losses bit-identical to a full
// forward with the candidate applied.
//
// The scorer is NOT safe for concurrent use by multiple goroutines, and
// mutating codes concurrently with Score is not supported (mirroring
// QModel.Forward).
type Scorer struct {
	qm              *QModel
	clean, trig     *tensor.Tensor
	labels, targets []int
	alpha           float32
	workers         int

	// cleanB/trigB are the boundary activations: entry b is the
	// activation entering top-level stage b; the last entry is the final
	// output activation. Entries [0, valid) are fresh.
	cleanB, trigB []*qact
	valid         int
	baseFresh     bool
	baseLoss      float32
}

// NewScorer pins the evaluation batch (clean images, triggered images,
// their labels and the attack's target labels) and registers for the
// quantizer's code-change notifications. alpha blends the two
// cross-entropy terms exactly like the offline objective (Eq. 3):
// loss = CE(clean, labels, 1−α) + CE(triggered, targets, α).
//
// The trig tensor may be restamped in place between scoring rounds
// (e.g. when the trigger evolves); call InputsChanged afterwards.
func NewScorer(qm *QModel, clean, trig *tensor.Tensor, labels, targets []int, alpha float32) *Scorer {
	s := &Scorer{
		qm:      qm,
		clean:   clean,
		trig:    trig,
		labels:  labels,
		targets: targets,
		alpha:   alpha,
		cleanB:  make([]*qact, len(qm.ops)+1),
		trigB:   make([]*qact, len(qm.ops)+1),
	}
	qm.q.OnCodesChanged(func(pi int) { s.invalidateParam(pi) })
	return s
}

// SetWorkers bounds how many candidates score concurrently (0 restores
// the kernel parallelism bound). Scheduling only: every worker count
// produces bit-identical losses.
func (s *Scorer) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	s.workers = n
}

// InputsChanged invalidates every cached activation. Call after
// restamping the pinned input tensors in place.
func (s *Scorer) InputsChanged() {
	s.valid = 0
	s.baseFresh = false
}

// Release returns every cached activation to the pool. The scorer
// remains usable; the next Score rebuilds the cache.
func (s *Scorer) Release() {
	for i := range s.cleanB {
		putAct(s.cleanB[i])
		s.cleanB[i] = nil
		putAct(s.trigB[i])
		s.trigB[i] = nil
	}
	s.valid = 0
	s.baseFresh = false
}

// invalidateParam shrinks the valid boundary prefix after a code change
// to parameter pi: activations entering stages ≤ paramStage[pi] are
// still correct, everything after is stale. Boundary 0 (the transposed
// input batch) never depends on codes.
func (s *Scorer) invalidateParam(pi int) {
	s.baseFresh = false
	if s.valid == 0 {
		return
	}
	st := 0
	if pi != AllParams && pi >= 0 && pi < len(s.qm.paramStage) {
		if ps := s.qm.paramStage[pi]; ps >= 0 {
			st = ps
		}
	}
	if v := st + 1; v < s.valid {
		s.valid = v
	}
}

// refresh recomputes the stale boundary suffix and the baseline loss.
func (s *Scorer) refresh() {
	ops := s.qm.ops
	nb := len(ops) + 1
	if s.valid == 0 {
		s.Release()
		s.cleanB[0] = tensorToAct(s.clean)
		s.trigB[0] = tensorToAct(s.trig)
		s.valid = 1
	}
	for b := s.valid; b < nb; b++ {
		op := ops[b-1]
		s.cleanB[b] = s.advance(op, s.cleanB[b-1], s.cleanB[b])
		s.trigB[b] = s.advance(op, s.trigB[b-1], s.trigB[b])
	}
	s.valid = nb
	if !s.baseFresh {
		s.baseLoss = lossFromAct(s.cleanB[nb-1], s.labels, 1-s.alpha) +
			lossFromAct(s.trigB[nb-1], s.targets, s.alpha)
		s.baseFresh = true
	}
}

// advance runs one stage on a cached boundary activation, protecting
// the boundary from in-place ops, and returns the next boundary
// (releasing the stale previous buffer, if any).
func (s *Scorer) advance(op qOp, in, stale *qact) *qact {
	if stale != nil {
		putAct(stale)
	}
	src := in
	if opInPlace(op) {
		src = cloneAct(in)
	}
	out := op.forward(nil, src)
	if out != src && src != in {
		putAct(src)
	}
	return out
}

func cloneAct(a *qact) *qact {
	c := getAct(a.c, a.n, a.h, a.w)
	copy(c.data, a.data)
	return c
}

// Loss returns the blended objective at the current codes, refreshing
// the cache as needed. It is bit-identical to evaluating the full
// forwards on both pinned batches.
func (s *Scorer) Loss() float32 {
	s.refresh()
	return s.baseLoss
}

// Score evaluates every candidate's blended loss. See ScoreInto.
func (s *Scorer) Score(cands []Candidate) ([]float32, float32) {
	return s.ScoreInto(nil, cands)
}

// ScoreInto evaluates the blended objective with each candidate applied
// in isolation (all other codes at their current values), writing the
// losses into dst (grown as needed) in candidate order, and returns the
// losses together with the baseline loss of the current codes. The
// candidates themselves are never left applied. The candidate fan-out
// runs on the persistent worker pool; the caller reduces the returned
// slice in fixed candidate order, so results are independent of the
// worker count by construction.
func (s *Scorer) ScoreInto(dst []float32, cands []Candidate) ([]float32, float32) {
	s.refresh()
	base := s.baseLoss
	if cap(dst) < len(cands) {
		dst = make([]float32, len(cands))
	}
	dst = dst[:len(cands)]
	if len(cands) == 0 {
		return dst, base
	}

	// Partition: candidates on lowered GEMM weights score concurrently
	// via private panel overrides; everything else mutates and reverts
	// serially (the int8 plan reads those parameters from live model
	// floats, which cannot be shadowed per candidate).
	type job struct {
		ci, pi, stage int
		w             *qweights
	}
	var par, ser []job
	concurrent := s.qm.ConcurrentSafe()
	for ci, c := range cands {
		pi := s.qm.q.paramOf(c.Weight)
		st := 0
		if ps := s.qm.paramStage[pi]; ps >= 0 {
			st = ps
		}
		j := job{ci: ci, pi: pi, stage: st, w: s.qm.paramWeight[pi]}
		if concurrent && j.w != nil {
			par = append(par, j)
		} else {
			ser = append(ser, j)
		}
	}
	workers := s.workers
	if workers <= 0 {
		workers = tensor.MaxWorkers()
	}
	tensor.ParallelChunksIndexed(len(par), len(par), workers, func(idx, _, _ int) {
		j := par[idx]
		dst[j.ci] = s.scoreOverride(cands[j.ci], j.pi, j.stage, j.w)
	})
	for _, j := range ser {
		dst[j.ci] = s.scoreMutate(cands[j.ci], j.stage)
	}
	return dst, base
}

// scoreOverride evaluates a candidate on a lowered GEMM weight without
// touching shared state: clone the tensor's code segment, apply the
// candidate, pack private panels, and run the suffix with the override.
func (s *Scorer) scoreOverride(c Candidate, pi, stage int, w *qweights) float32 {
	oc := tensor.GetI8(len(w.codes))
	copy(oc, w.codes)
	oc[c.Weight-s.qm.q.offsets[pi]] = c.Code
	panels := tensor.GetI16(tensor.PackAI8Len(w.m, w.k))
	tensor.PackAI8(panels, oc, w.m, w.k)
	tensor.PutI8(oc)
	ec := &execEnv{target: w, panels: panels}
	l := s.suffixLoss(s.cleanB, stage, ec, s.labels, 1-s.alpha) +
		s.suffixLoss(s.trigB, stage, ec, s.targets, s.alpha)
	tensor.PutI16(panels)
	return l
}

// scoreMutate evaluates a candidate by applying it to the live
// quantizer, scoring the suffix, and reverting. The code-change
// notification shrinks the cache past the candidate's stage, but the
// boundary entering that stage stays valid — exactly what the suffix
// needs.
func (s *Scorer) scoreMutate(c Candidate, stage int) float32 {
	q := s.qm.q
	old := q.Code(c.Weight)
	q.SetCode(c.Weight, c.Code)
	l := s.suffixLoss(s.cleanB, stage, nil, s.labels, 1-s.alpha) +
		s.suffixLoss(s.trigB, stage, nil, s.targets, s.alpha)
	q.SetCode(c.Weight, old)
	return l
}

// suffixLoss runs stages [stage, end) from the cached boundary and
// returns the weighted cross-entropy of the resulting logits. The
// cached boundary is never mutated (in-place first ops run on a pooled
// clone) and every intermediate returns to the pool.
func (s *Scorer) suffixLoss(bs []*qact, stage int, ec *execEnv, labels []int, weight float32) float32 {
	ops := s.qm.ops
	in := bs[stage]
	cur := in
	for _, op := range ops[stage:] {
		src := cur
		if src == in && opInPlace(op) {
			src = cloneAct(in)
		}
		next := op.forward(ec, src)
		if src != in && src != next {
			putAct(src)
		}
		cur = next
	}
	l := lossFromAct(cur, labels, weight)
	if cur != in {
		putAct(cur)
	}
	return l
}

// lossFromAct computes the weighted mean cross-entropy straight from a
// channel-major output activation, gathering each sample's logit row in
// the same order actToLogits lays it out so the result is bit-identical
// to nn.CrossEntropyLoss over QModel.Forward's logits tensor.
func lossFromAct(a *qact, labels []int, weight float32) float32 {
	n := a.n
	k := a.c * a.h * a.w
	hw := a.h * a.w
	row := tensor.GetF32(k)
	var total float64
	for i := 0; i < n; i++ {
		for c := 0; c < a.c; c++ {
			base := (c*n + i) * hw
			copy(row[c*hw:(c+1)*hw], a.data[base:base+hw])
		}
		total += nn.RowNLL(row, labels[i])
	}
	tensor.PutF32(row)
	return weight * float32(total) / float32(n)
}
