package quant

import (
	"sync/atomic"

	"rowhammer/internal/tensor"
)

// The epoch engine is the torn-read-safe weight hot-swap path the
// victim-under-fire serving scenario needs: Forward must keep running
// from many goroutines while the online attack flips live weights, and
// every returned batch must match one published model state — never a
// half-repacked panel or a mix of pre- and post-flip layers.
//
// Everything a ConcurrentSafe forward reads that a code change can move
// is snapshotted into an immutable epoch: per-GEMM packed int8 panels
// plus the sx-independent factors of the fused epilogue (the folded
// conv-bias/BN-affine coefficients, which FlipBit can also hit — bias,
// gamma and beta are quantized parameters too). Readers pin the current
// epoch with two atomic ops and no lock; writers repack exactly the
// dirty slots into a fresh epoch (clean slots are shared structurally)
// and publish it with one atomic pointer swap. An epoch retires — and
// the live-epoch gauge drops — when the last pinned reader drains.
//
// Consistency contract (DESIGN §9):
//
//   - A mutation made through Exclusive is visible to every Forward
//     that pins after Exclusive returns; forwards already in flight
//     complete on the epoch they pinned. There is no intermediate
//     state: each forward sees exactly one published epoch.
//   - Legacy single-goroutine mutation (plain SetCode/FlipBit, the
//     scorer's mutate-and-revert) stays lazy: the dirty slots rebuild
//     on the next Forward/Score. Mutating WITHOUT Exclusive while other
//     goroutines run Forward remains unsupported, exactly as before.

// epochSlot is one GEMM op's snapshot: the packed weight panels and the
// per-output-channel epilogue coefficients derived from the quantized
// bias/BN parameters. Slots are immutable once published; epochs that
// did not dirty a slot share it with their predecessor.
type epochSlot struct {
	panels []int16
	// cA scales the sx·Δw base multiplier per output channel (the folded
	// BN gamma/istd term); nil means the multiplier is the base itself.
	cA []float32
	// cS is the per-channel additive shift (folded bias/BN beta term);
	// nil means zero.
	cS []float32
}

// epoch is one published model snapshot. refs counts pinned readers
// plus one reference for being the current epoch; when it drops to
// zero the epoch is retired.
type epoch struct {
	seq   uint64
	slots []epochSlot
	refs  atomic.Int64
	qm    *QModel
}

// release drops one reference; the last release retires the epoch.
func (e *epoch) release() {
	if e.refs.Add(-1) == 0 {
		e.qm.liveEpochs.Add(-1)
	}
}

// acquireEpoch returns the current epoch with a reader reference held,
// rebuilding first if any slot is dirty. The clean path is lock-free:
// one atomic flag load, one pointer load, one ref increment and a
// confirming pointer load.
func (qm *QModel) acquireEpoch() *epoch {
	if qm.anyDirty.Load() {
		qm.mu.Lock()
		qm.rebuildLocked()
		qm.mu.Unlock()
	}
	for {
		ep := qm.cur.Load()
		ep.refs.Add(1)
		if qm.cur.Load() == ep {
			return ep
		}
		// Superseded between load and pin; drop the stale ref and retry.
		ep.release()
	}
}

// readEpoch returns the current epoch without pinning it, rebuilding
// first when dirty. It is the resolution path for single-goroutine
// callers (the scorer, fallback plans): with no concurrent writer the
// epoch cannot be superseded while in use, so no reference is needed.
func (qm *QModel) readEpoch() *epoch {
	if qm.anyDirty.Load() {
		qm.mu.Lock()
		qm.rebuildLocked()
		qm.mu.Unlock()
	}
	return qm.cur.Load()
}

// Exclusive runs fn — which may mutate the bound quantizer's codes any
// way it likes — and publishes the resulting model state as a new epoch
// before returning. This is the only supported way to mutate codes
// while other goroutines call Forward: when Exclusive returns, the
// mutation is visible to every subsequently pinned forward, and every
// in-flight forward completes on the snapshot it pinned.
func (qm *QModel) Exclusive(fn func()) {
	qm.mu.Lock()
	defer qm.mu.Unlock()
	fn()
	qm.rebuildLocked()
}

// LiveEpochs reports how many published epochs have not yet retired
// (the current epoch plus any still pinned by in-flight readers). A
// drained engine always reports exactly 1 — the leak check the race
// suite asserts.
func (qm *QModel) LiveEpochs() int64 { return qm.liveEpochs.Load() }

// EpochSeq returns the sequence number of the currently published
// epoch. It advances by exactly one per publish, so serving harnesses
// can stamp which snapshot a measurement window observed.
func (qm *QModel) EpochSeq() uint64 { return qm.cur.Load().seq }

// markDirty records that parameter pi moved and which epoch slots that
// staled. Callers either hold qm.mu (Exclusive) or are the only
// goroutine touching the engine (the legacy contract).
func (qm *QModel) markDirty(pi int) {
	if pi == AllParams {
		for i := range qm.panelsDirty {
			qm.panelsDirty[i] = true
			qm.coeffsDirty[i] = true
		}
		qm.anyDirty.Store(true)
		return
	}
	touched := false
	if si := qm.paramPanelSlot[pi]; si >= 0 {
		qm.panelsDirty[si] = true
		touched = true
	}
	if si := qm.paramCoeffSlot[pi]; si >= 0 {
		qm.coeffsDirty[si] = true
		touched = true
	}
	if touched {
		qm.anyDirty.Store(true)
	}
}

// rebuildLocked repacks every dirty slot into a fresh epoch and
// publishes it. Clean slots are shared with the outgoing epoch (slices
// are immutable once published), so a single-weight flip repacks one
// layer's panels and recomputes one coefficient pair, nothing else.
// Callers hold qm.mu.
func (qm *QModel) rebuildLocked() {
	if !qm.anyDirty.Load() {
		return
	}
	old := qm.cur.Load()
	next := &epoch{
		seq:   old.seq + 1,
		slots: make([]epochSlot, len(old.slots)),
		qm:    qm,
	}
	copy(next.slots, old.slots)
	for si, g := range qm.gemms {
		if qm.panelsDirty[si] {
			w := g.binding()
			need := tensor.PackAI8Len(w.m, w.k)
			panels := make([]int16, need)
			tensor.PackAI8(panels, w.codes, w.m, w.k)
			next.slots[si].panels = panels
			qm.panelsDirty[si] = false
		}
		if qm.coeffsDirty[si] {
			next.slots[si].cA, next.slots[si].cS = g.epochCoeffs()
			qm.coeffsDirty[si] = false
		}
	}
	next.refs.Store(1) // the "current" reference
	qm.liveEpochs.Add(1)
	qm.anyDirty.Store(false)
	qm.cur.Store(next)
	old.release()
}

// gemmOp is the compile-time registration interface of the two lowered
// GEMM ops: each owns one epoch slot.
type gemmOp interface {
	binding() *qweights
	epochCoeffs() (cA, cS []float32)
}

// registerGemm assigns op the next epoch slot.
func (qm *QModel) registerGemm(op gemmOp) {
	op.binding().eidx = len(qm.gemms)
	qm.gemms = append(qm.gemms, op)
}

// initEpochs publishes the (empty, all-dirty) epoch 0 after compilation;
// the first Forward or Score rebuilds every slot.
func (qm *QModel) initEpochs() {
	n := len(qm.gemms)
	qm.panelsDirty = make([]bool, n)
	qm.coeffsDirty = make([]bool, n)
	for i := 0; i < n; i++ {
		qm.panelsDirty[i] = true
		qm.coeffsDirty[i] = true
	}
	ep := &epoch{slots: make([]epochSlot, n), qm: qm}
	ep.refs.Store(1)
	qm.liveEpochs.Store(1)
	qm.cur.Store(ep)
	qm.anyDirty.Store(n > 0)
}
