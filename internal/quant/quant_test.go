package quant

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"rowhammer/internal/nn"
	"rowhammer/internal/tensor"
)

func toyModel(seed int64) *nn.Model {
	rng := tensor.NewRNG(seed)
	net := nn.NewSequential(
		nn.NewLinear("fc1", rng, 8, 16),
		nn.NewReLU(),
		nn.NewLinear("fc2", rng, 16, 4),
	)
	return nn.NewModel("toy", net, 4, [3]int{1, 2, 4})
}

func TestQuantizeRoundTripError(t *testing.T) {
	m := toyModel(1)
	before := m.FlattenParams()
	q := NewQuantizer(m)
	after := m.FlattenParams()
	// Snapped values must be within half a quantization step.
	off := 0
	for pi, p := range m.Params() {
		scale := q.Scale(pi)
		for j := 0; j < p.W.Len(); j++ {
			d := math.Abs(float64(before[off+j] - after[off+j]))
			if d > float64(scale)/2+1e-6 {
				t.Fatalf("param %d weight %d moved %v > Δw/2 = %v", pi, j, d, scale/2)
			}
		}
		off += p.W.Len()
	}
}

func TestScaleMatchesPaperFormula(t *testing.T) {
	m := toyModel(2)
	maxAbs := m.Params()[0].W.MaxAbs()
	q := NewQuantizer(m)
	want := maxAbs / 127
	if math.Abs(float64(q.Scale(0)-want)) > 1e-7 {
		t.Fatalf("scale = %v, want max/127 = %v", q.Scale(0), want)
	}
}

func TestCodesMatchDequantizedFloats(t *testing.T) {
	m := toyModel(3)
	q := NewQuantizer(m)
	flat := m.FlattenParams()
	for i := 0; i < q.NumWeights(); i++ {
		want := float32(q.Code(i)) * q.ScaleOfWeight(i)
		if flat[i] != want {
			t.Fatalf("weight %d float %v != code·scale %v", i, flat[i], want)
		}
	}
}

func TestSetCodeWritesThrough(t *testing.T) {
	m := toyModel(4)
	q := NewQuantizer(m)
	q.SetCode(0, 100)
	if q.Code(0) != 100 {
		t.Fatal("code not stored")
	}
	if got := m.Params()[0].W.Data()[0]; got != 100*q.Scale(0) {
		t.Fatalf("model float %v, want %v", got, 100*q.Scale(0))
	}
	// Last weight exercises the offset binary search upper edge.
	last := q.NumWeights() - 1
	q.SetCode(last, -5)
	ps := m.Params()
	lastParam := ps[len(ps)-1]
	got := lastParam.W.Data()[lastParam.W.Len()-1]
	if got != -5*q.Scale(len(ps)-1) {
		t.Fatalf("last weight float %v", got)
	}
}

func TestFlipBitTwosComplement(t *testing.T) {
	m := toyModel(5)
	q := NewQuantizer(m)
	q.SetCode(3, 1) // 0000_0001
	q.FlipBit(3, 7) // flip sign bit → 1000_0001 = -127
	if q.Code(3) != -127 {
		t.Fatalf("code after sign flip = %d, want -127", q.Code(3))
	}
	q.FlipBit(3, 7)
	if q.Code(3) != 1 {
		t.Fatal("double flip must restore")
	}
}

func TestWeightFileRoundTrip(t *testing.T) {
	m := toyModel(6)
	q := NewQuantizer(m)
	buf := q.WeightFileBytes()
	if len(buf)%PageSize != 0 {
		t.Fatalf("weight file len %d not page aligned", len(buf))
	}
	// Corrupt one byte and reload.
	buf[7] ^= 0x80
	q.LoadWeightFileBytes(buf)
	if byte(q.Code(7))&0x80 == 0 {
		t.Fatal("corruption did not propagate")
	}
	if got := m.Params()[0].W.Data()[7]; got != float32(q.Code(7))*q.Scale(0) {
		t.Fatal("model float not synced after load")
	}
}

func TestLoadCodesValidatesLength(t *testing.T) {
	q := NewQuantizer(toyModel(7))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	q.LoadCodes(make([]int8, 3))
}

func TestBitReduceExamples(t *testing.T) {
	// The paper's worked example: θ = 1101₂, θ* = 1010₂,
	// Floor(θ⊕θ*) = Floor(0111₂) = 0100₂, result = θ ⊕ 0100₂ = 1001₂.
	if got := BitReduce(0b1101, 0b1010); got != 0b1001 {
		t.Fatalf("BitReduce = %08b, want 1001", byte(got))
	}
	if got := BitReduce(42, 42); got != 42 {
		t.Fatal("identical codes must be unchanged")
	}
}

func TestBitReducePropertySingleFlip(t *testing.T) {
	f := func(a, b int8) bool {
		r := BitReduce(a, b)
		d := HammingDistance([]int8{a}, []int8{r})
		if a == b {
			return d == 0
		}
		if d != 1 {
			return false
		}
		// The flipped bit must be the most significant differing bit,
		// and must move a toward b.
		diff := byte(a) ^ byte(b)
		flipped := byte(a) ^ byte(r)
		return flipped&diff == flipped && flipped > diff>>1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitReducePreservesDirection(t *testing.T) {
	f := func(a, b int8) bool {
		if a == b {
			return true
		}
		r := BitReduce(a, b)
		// Moving a→r should go the same direction as a→b.
		db := int(b) - int(a)
		dr := int(r) - int(a)
		return (db > 0) == (dr > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHammingDistance(t *testing.T) {
	a := []int8{0, -1, 3}
	b := []int8{0, 0, 1}
	// -1 = 0xFF vs 0x00 → 8 bits; 3 vs 1 → 1 bit.
	if got := HammingDistance(a, b); got != 9 {
		t.Fatalf("HammingDistance = %d, want 9", got)
	}
}

func TestDiffBitsOf(t *testing.T) {
	a := []int8{0b0101, 0}
	b := []int8{0b0110, 0}
	diffs := DiffBitsOf(a, b)
	if len(diffs) != 2 {
		t.Fatalf("got %d diffs, want 2", len(diffs))
	}
	// bit 0: 1→0, bit 1: 0→1.
	var saw0to1, saw1to0 bool
	for _, d := range diffs {
		if d.Weight != 0 {
			t.Fatal("wrong weight index")
		}
		if d.Bit == 1 && d.ZeroToOne {
			saw0to1 = true
		}
		if d.Bit == 0 && !d.ZeroToOne {
			saw1to0 = true
		}
	}
	if !saw0to1 || !saw1to0 {
		t.Fatalf("directions wrong: %+v", diffs)
	}
}

func TestPageHelpers(t *testing.T) {
	if PageOf(4095) != 0 || PageOf(4096) != 1 {
		t.Fatal("PageOf wrong")
	}
	if PageOffset(4097) != 1 {
		t.Fatal("PageOffset wrong")
	}
	q := NewQuantizer(toyModel(8))
	wantPages := (q.NumWeights() + PageSize - 1) / PageSize
	if q.NumPages() != wantPages {
		t.Fatalf("NumPages = %d, want %d", q.NumPages(), wantPages)
	}
}

func TestRequantizeAfterFloatDrift(t *testing.T) {
	m := toyModel(9)
	q := NewQuantizer(m)
	orig := q.Code(5)
	// Drift the float by +1.6 steps; requantize should move the code.
	p := m.Params()[0]
	p.W.Data()[5] += 1.6 * q.Scale(0)
	q.Requantize()
	if q.Code(5) != orig+2 && q.Code(5) != orig+1 {
		t.Fatalf("code after drift = %d, want %d+1or2", q.Code(5), orig)
	}
	// Floats must again sit exactly on the grid.
	if got := p.W.Data()[5]; got != float32(q.Code(5))*q.Scale(0) {
		t.Fatal("float not snapped after requantize")
	}
}

func TestQuantizeClampsToPlusMinus127(t *testing.T) {
	m := toyModel(10)
	q := NewQuantizer(m)
	p := m.Params()[0]
	p.W.Data()[0] = 1e9
	p.W.Data()[1] = -1e9
	q.Requantize()
	if q.Code(0) != 127 || q.Code(1) != -127 {
		t.Fatalf("codes = %d, %d; want ±127", q.Code(0), q.Code(1))
	}
}

func TestBitReduceMasked(t *testing.T) {
	// MSB forbidden: the flip must pick the next differing bit.
	// orig and tuned differ at bits 7 and 6.
	orig := int8(1)
	tunedByte := byte(1) ^ 0x80 ^ 0x40
	tuned := int8(tunedByte)
	got := BitReduceMasked(orig, tuned, 0x80)
	if byte(got) != byte(1)^0x40 {
		t.Fatalf("masked reduce = %08b, want bit6 flip", byte(got))
	}
	// Every differing bit forbidden → no flip.
	signFlipped := byte(1) ^ 0x80
	if got := BitReduceMasked(1, int8(signFlipped), 0x80); got != 1 {
		t.Fatalf("fully masked reduce = %d, want orig", got)
	}
	// No mask behaves like BitReduce.
	if BitReduceMasked(0b1101, 0b1010, 0) != BitReduce(0b1101, 0b1010) {
		t.Fatal("zero mask must match BitReduce")
	}
}

func TestModelFileRoundTrip(t *testing.T) {
	m := toyModel(20)
	q := NewQuantizer(m)
	blob, err := q.MarshalModel()
	if err != nil {
		t.Fatal(err)
	}
	f, err := ReadModelFile(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if f.Arch != "toy" {
		t.Fatalf("arch = %q", f.Arch)
	}
	if len(f.Codes) != q.NumWeights() {
		t.Fatalf("codes %d, want %d", len(f.Codes), q.NumWeights())
	}
	// Apply to a fresh model of the same structure.
	m2 := toyModel(99)
	q2 := NewQuantizer(m2)
	if err := f.ApplyTo(q2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < q.NumWeights(); i++ {
		if q2.Code(i) != q.Code(i) {
			t.Fatalf("code %d differs after reload", i)
		}
	}
	a := m.FlattenParams()
	b := m2.FlattenParams()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("weight %d differs after reload", i)
		}
	}
}

func TestReadModelFileRejectsGarbage(t *testing.T) {
	if _, err := ReadModelFile(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("garbage must be rejected")
	}
	if _, err := ReadModelFile(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input must be rejected")
	}
	// Truncated container.
	q := NewQuantizer(toyModel(21))
	blob, _ := q.MarshalModel()
	if _, err := ReadModelFile(bytes.NewReader(blob[:len(blob)-100])); err == nil {
		t.Fatal("truncated container must be rejected")
	}
}

func TestModelFileApplyToMismatch(t *testing.T) {
	q := NewQuantizer(toyModel(22))
	blob, _ := q.MarshalModel()
	f, _ := ReadModelFile(bytes.NewReader(blob))
	f.Codes = f.Codes[:10]
	if err := f.ApplyTo(q); err == nil {
		t.Fatal("weight-count mismatch must be rejected")
	}
}
