package quant

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Model-file container format. The deployed artifact the victim maps
// into memory is the raw page-aligned code region (WeightFileBytes);
// this container wraps it with a header carrying the metadata needed to
// reload the model (architecture tag, per-tensor scales), the way a
// real serving stack ships quantized checkpoints.
//
// Layout (little endian):
//
//	magic   [8]byte  "RHBDQNT1"
//	arch    uint16-length-prefixed string
//	tensors uint32   number of parameter tensors
//	scales  tensors × float32
//	weights uint32   number of int8 codes
//	codes   weights × int8, zero-padded to a 4 KB boundary
var fileMagic = [8]byte{'R', 'H', 'B', 'D', 'Q', 'N', 'T', '1'}

// WriteModelFile serializes the quantizer's current state.
func (q *Quantizer) WriteModelFile(w io.Writer) error {
	if err := binary.Write(w, binary.LittleEndian, fileMagic); err != nil {
		return fmt.Errorf("quant: write magic: %w", err)
	}
	arch := q.model.Arch
	if len(arch) > 0xFFFF {
		return fmt.Errorf("quant: architecture name too long")
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(arch))); err != nil {
		return fmt.Errorf("quant: write arch length: %w", err)
	}
	if _, err := io.WriteString(w, arch); err != nil {
		return fmt.Errorf("quant: write arch: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(q.scales))); err != nil {
		return fmt.Errorf("quant: write tensor count: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, q.scales); err != nil {
		return fmt.Errorf("quant: write scales: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(q.codes))); err != nil {
		return fmt.Errorf("quant: write weight count: %w", err)
	}
	if _, err := w.Write(q.WeightFileBytes()); err != nil {
		return fmt.Errorf("quant: write codes: %w", err)
	}
	return nil
}

// ModelFile is a parsed container.
type ModelFile struct {
	Arch   string
	Scales []float32
	Codes  []int8
}

// ReadModelFile parses a container produced by WriteModelFile.
func ReadModelFile(r io.Reader) (*ModelFile, error) {
	var magic [8]byte
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("quant: read magic: %w", err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("quant: bad magic %q", magic)
	}
	var archLen uint16
	if err := binary.Read(r, binary.LittleEndian, &archLen); err != nil {
		return nil, fmt.Errorf("quant: read arch length: %w", err)
	}
	archBuf := make([]byte, archLen)
	if _, err := io.ReadFull(r, archBuf); err != nil {
		return nil, fmt.Errorf("quant: read arch: %w", err)
	}
	var tensors uint32
	if err := binary.Read(r, binary.LittleEndian, &tensors); err != nil {
		return nil, fmt.Errorf("quant: read tensor count: %w", err)
	}
	const maxTensors = 1 << 20
	if tensors > maxTensors {
		return nil, fmt.Errorf("quant: implausible tensor count %d", tensors)
	}
	scales := make([]float32, tensors)
	if err := binary.Read(r, binary.LittleEndian, scales); err != nil {
		return nil, fmt.Errorf("quant: read scales: %w", err)
	}
	var weights uint32
	if err := binary.Read(r, binary.LittleEndian, &weights); err != nil {
		return nil, fmt.Errorf("quant: read weight count: %w", err)
	}
	const maxWeights = 1 << 30
	if weights > maxWeights {
		return nil, fmt.Errorf("quant: implausible weight count %d", weights)
	}
	padded := (int(weights) + PageSize - 1) / PageSize * PageSize
	raw := make([]byte, padded)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, fmt.Errorf("quant: read codes: %w", err)
	}
	codes := make([]int8, weights)
	for i := range codes {
		codes[i] = int8(raw[i])
	}
	return &ModelFile{Arch: string(archBuf), Scales: scales, Codes: codes}, nil
}

// ApplyTo loads the file's codes and scales into a quantizer bound to a
// structurally matching model.
func (f *ModelFile) ApplyTo(q *Quantizer) error {
	if len(f.Scales) != len(q.scales) {
		return fmt.Errorf("quant: file has %d tensors, model has %d", len(f.Scales), len(q.scales))
	}
	if len(f.Codes) != len(q.codes) {
		return fmt.Errorf("quant: file has %d weights, model has %d", len(f.Codes), len(q.codes))
	}
	copy(q.scales, f.Scales)
	q.LoadCodes(f.Codes)
	return nil
}

// MarshalModel is a convenience wrapper returning the container bytes.
func (q *Quantizer) MarshalModel() ([]byte, error) {
	var buf bytes.Buffer
	if err := q.WriteModelFile(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
