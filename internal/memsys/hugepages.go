package memsys

import "fmt"

// Huge-page support for the §VIII discussion: a 2 MB huge page is 512
// physically contiguous frames. Even when the victim maps its model
// with huge pages, the DRAM controller fragments the region into 8 KB
// rows interleaved across banks, so each chunk can still be sandwiched
// and hammered — the paper's argument for why huge pages do not defend.

// HugePageFrames is the number of 4 KB frames in one 2 MB huge page.
const HugePageFrames = 512

// MmapHuge maps npages huge pages (npages × 512 frames), each backed by
// physically contiguous frames, and returns the base virtual address.
// It bypasses the per-CPU frame cache (huge pages come from the buddy
// allocator's high orders) and fails if no aligned contiguous run
// exists.
func (p *Process) MmapHuge(npages int) (int, error) {
	base := p.nextVPage
	p.ensurePT(base + npages*HugePageFrames)
	allocated := 0
	for hp := 0; hp < npages; hp++ {
		start, err := p.sys.findContiguousFrames(HugePageFrames)
		if err != nil {
			// Roll back previous huge pages.
			for i := 0; i < allocated; i++ {
				entry := p.pt[base+i]
				p.pt[base+i].frame = -1
				p.mapped--
				p.sys.setFrameFree(int(entry.frame), true)
			}
			return 0, fmt.Errorf("memsys: huge page %d: %w", hp, err)
		}
		for i := 0; i < HugePageFrames; i++ {
			f := start + i
			p.sys.setFrameFree(f, false)
			p.zeroFrame(f)
			p.setEntry(base+allocated, ptEntry{frame: int32(f), fileID: -1})
			allocated++
		}
	}
	p.nextVPage += allocated
	return base * PageSize, nil
}

// findContiguousFrames locates a run of n free frames aligned to n (the
// buddy-allocator alignment huge pages require). Frames sitting in the
// per-CPU cache are not eligible (they are considered in-flight). The
// free check is word-wise over the bitset, so a multi-GB module scans in
// a few thousand word compares.
func (s *System) findContiguousFrames(n int) (int, error) {
	cached := make(map[int]bool, len(s.frameCache))
	for _, f := range s.frameCache {
		cached[f] = true
	}
	for start := 0; start+n <= s.nframes; start += n {
		if !s.rangeFree(start, n) {
			continue
		}
		ok := true
		for f := start; f < start+n; f++ {
			if cached[f] {
				ok = false
				break
			}
		}
		if ok {
			return start, nil
		}
	}
	return 0, fmt.Errorf("memsys: no aligned run of %d contiguous frames", n)
}

// rangeFree reports whether every frame in [start, start+n) is free,
// checking 64 frames per word on aligned spans.
func (s *System) rangeFree(start, n int) bool {
	f := start
	for f < start+n {
		if f&63 == 0 && start+n-f >= 64 {
			if s.free[f>>6] != ^uint64(0) {
				return false
			}
			f += 64
			continue
		}
		if !s.frameFree(f) {
			return false
		}
		f++
	}
	return true
}
