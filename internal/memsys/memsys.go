// Package memsys simulates the operating-system memory plumbing the
// online attack phase exploits: a physical page-frame allocator with the
// Linux per-CPU page-frame cache (frames are reallocated in
// first-in-last-out order), anonymous and file-backed mmap/munmap, and a
// file page cache whose frames hold the weight file while the victim
// runs. Rowhammer corrupts frames directly in DRAM, so the page cache
// keeps serving the modified copy and the on-disk file stays pristine —
// the stealth property of §IV-B.
//
// The bookkeeping is sized for multi-GB modules (millions of frames):
// the free list is a bitset scanned word-wise, page tables are flat
// slices indexed by virtual page, and the file page cache maps file
// pages to frames through a dense slice — no per-page map entries
// anywhere on the translate or fault-in paths.
package memsys

import (
	"errors"
	"fmt"
	"math/bits"

	"rowhammer/internal/dram"
)

// PageSize is the OS page size.
const PageSize = 4096

// ErrNoMemory is returned when no free frame is available.
var ErrNoMemory = errors.New("memsys: out of physical frames")

// System owns the physical memory (backed by a simulated DRAM module),
// the frame allocator and the file page cache.
type System struct {
	module  *dram.Module
	nframes int

	// free is the buddy-allocator stand-in, one bit per frame (1 = free):
	// frames not in any mapping and not in the frame cache, allocated
	// lowest-first. Frames only leave the free list (released frames go
	// to the frame cache), so the lowest free index is monotone and
	// nextFree lets allocFrame resume its scan instead of rescanning from
	// zero.
	free     []uint64
	nextFree int
	// frameCache is the per-CPU page-frame cache: a FILO stack of
	// recently unmapped frames, consulted before the free list.
	frameCache []int

	files    map[string]*cachedFile
	fileList []*cachedFile // file ID → file, for page-table back-references
	nextPID  int

	// rec is the optional slice recycler this System draws bookkeeping
	// from; procs tracks processes so Recycle can harvest their page
	// tables. Both stay nil for plain NewSystem systems.
	rec   *Recycler
	procs []*Process
}

type cachedFile struct {
	id   int32
	data []byte // "disk" contents
	// frames maps file page → physical frame for cached pages, −1 when
	// the page is not resident.
	frames []int32
	cached int
}

// NewSystem wraps a DRAM module. Frames cover the module's full
// capacity.
func NewSystem(module *dram.Module) *System {
	return buildSystem(module, nil)
}

func buildSystem(module *dram.Module, rec *Recycler) *System {
	n := module.Size() / PageSize
	words := (n + 63) / 64
	s := &System{
		module:  module,
		nframes: n,
		files:   make(map[string]*cachedFile),
		rec:     rec,
	}
	if rec != nil {
		s.free = rec.getBitset(words)
	}
	if s.free == nil {
		s.free = make([]uint64, words)
	}
	for i := range s.free {
		s.free[i] = ^uint64(0)
	}
	// Bits past nframes must stay clear or the word-wise scan would hand
	// out phantom frames.
	if r := n & 63; r != 0 {
		s.free[len(s.free)-1] = 1<<uint(r) - 1
	}
	return s
}

// Module exposes the backing DRAM (the hammering interface).
func (s *System) Module() *dram.Module { return s.module }

// InjectFaults installs a probabilistic-firing fault model on the
// backing DRAM (see dram.FaultModel). The zero value removes it and
// restores fully deterministic hammering.
func (s *System) InjectFaults(f dram.FaultModel) { s.module.SetFaultModel(f) }

// NumFrames returns the physical frame count.
func (s *System) NumFrames() int { return s.nframes }

// FrameCacheDepth reports how many frames sit in the per-CPU cache.
func (s *System) FrameCacheDepth() int { return len(s.frameCache) }

func (s *System) frameFree(f int) bool {
	return s.free[f>>6]&(1<<(uint(f)&63)) != 0
}

func (s *System) setFrameFree(f int, v bool) {
	if v {
		s.free[f>>6] |= 1 << (uint(f) & 63)
	} else {
		s.free[f>>6] &^= 1 << (uint(f) & 63)
	}
}

// allocFrame pops the most recently freed frame from the per-CPU cache,
// falling back to the lowest free frame — the FILO behavior Listing 1
// exploits. The free-list scan skips 64 frames per word.
func (s *System) allocFrame() (int, error) {
	if n := len(s.frameCache); n > 0 {
		f := s.frameCache[n-1]
		s.frameCache = s.frameCache[:n-1]
		return f, nil
	}
	f := s.nextFree
	for f < s.nframes {
		if w := s.free[f>>6] >> (uint(f) & 63); w != 0 {
			f += bits.TrailingZeros64(w)
			s.setFrameFree(f, false)
			s.nextFree = f + 1
			return f, nil
		}
		f = (f>>6 + 1) << 6
	}
	return 0, ErrNoMemory
}

// releaseFrame pushes a frame onto the per-CPU cache.
func (s *System) releaseFrame(f int) {
	s.frameCache = append(s.frameCache, f)
}

// WriteFile stores file contents on the simulated disk. An existing
// cached copy is invalidated.
func (s *System) WriteFile(name string, data []byte) {
	id := int32(len(s.fileList))
	if old, ok := s.files[name]; ok {
		for _, f := range old.frames {
			if f >= 0 {
				s.releaseFrame(int(f))
			}
		}
		id = old.id
	}
	cf := &cachedFile{
		id:     id,
		data:   append([]byte(nil), data...),
		frames: newFrameIndex((len(data) + PageSize - 1) / PageSize),
	}
	s.files[name] = cf
	if int(id) == len(s.fileList) {
		s.fileList = append(s.fileList, cf)
	} else {
		s.fileList[id] = cf
	}
}

func newFrameIndex(npages int) []int32 {
	idx := make([]int32, npages)
	for i := range idx {
		idx[i] = -1
	}
	return idx
}

// FileSize returns a file's length in bytes.
func (s *System) FileSize(name string) (int, error) {
	cf, ok := s.files[name]
	if !ok {
		return 0, fmt.Errorf("memsys: no such file %q", name)
	}
	return len(cf.data), nil
}

// ReadFileFromDisk returns the on-disk bytes, bypassing the page cache.
// Rowhammer corruption never reaches this copy.
func (s *System) ReadFileFromDisk(name string) ([]byte, error) {
	cf, ok := s.files[name]
	if !ok {
		return nil, fmt.Errorf("memsys: no such file %q", name)
	}
	return append([]byte(nil), cf.data...), nil
}

// EvictFile drops a file's page-cache frames (e.g. memory pressure or a
// reboot); the next mmap re-reads from disk, erasing any in-memory
// corruption.
func (s *System) EvictFile(name string) error {
	cf, ok := s.files[name]
	if !ok {
		return fmt.Errorf("memsys: no such file %q", name)
	}
	for i, f := range cf.frames {
		if f >= 0 {
			s.releaseFrame(int(f))
			cf.frames[i] = -1
		}
	}
	cf.cached = 0
	return nil
}

// FileCachedFrames returns the page-cache frame of each cached file
// page (file page index → frame).
func (s *System) FileCachedFrames(name string) (map[int]int, error) {
	cf, ok := s.files[name]
	if !ok {
		return nil, fmt.Errorf("memsys: no such file %q", name)
	}
	out := make(map[int]int, cf.cached)
	for fp, f := range cf.frames {
		if f >= 0 {
			out[fp] = int(f)
		}
	}
	return out, nil
}

// NewProcess creates a process with an empty address space.
func (s *System) NewProcess() *Process {
	s.nextPID++
	p := &Process{
		sys:       s,
		pid:       s.nextPID,
		nextVPage: 0x1000, // arbitrary non-zero base
	}
	if s.rec != nil {
		p.pt = s.rec.getPT()
		s.procs = append(s.procs, p)
	}
	return p
}

// ptEntry is one page-table slot. frame < 0 means unmapped; fileID ≥ 0
// names the backing file (index into System.fileList) with filePage its
// page within that file, fileID < 0 is anonymous.
type ptEntry struct {
	frame    int32
	fileID   int32
	filePage int32
}

// Process is one address space. Virtual addresses are byte addresses;
// mappings are tracked per page in a flat table indexed by virtual page
// number, so Translate — the hottest call in the templating engine — is
// one bounds check and one load.
type Process struct {
	sys       *System
	pid       int
	pt        []ptEntry
	mapped    int
	nextVPage int
}

// PID returns the process id.
func (p *Process) PID() int { return p.pid }

// ensurePT extends the page table with unmapped entries through virtual
// page n−1.
func (p *Process) ensurePT(n int) {
	if n <= len(p.pt) {
		return
	}
	old := len(p.pt)
	if cap(p.pt) >= n {
		p.pt = p.pt[:n]
	} else {
		grown := make([]ptEntry, n, n+n/2)
		copy(grown, p.pt)
		p.pt = grown
	}
	for i := old; i < len(p.pt); i++ {
		p.pt[i].frame = -1
	}
}

func (p *Process) setEntry(vp int, e ptEntry) {
	p.ensurePT(vp + 1)
	if p.pt[vp].frame < 0 {
		p.mapped++
	}
	p.pt[vp] = e
}

// Mmap maps npages fresh anonymous zeroed pages and returns the base
// virtual address.
func (p *Process) Mmap(npages int) (int, error) {
	base := p.nextVPage
	p.ensurePT(base + npages)
	for i := 0; i < npages; i++ {
		f, err := p.sys.allocFrame()
		if err != nil {
			// Roll back partial mapping.
			for j := 0; j < i; j++ {
				p.MunmapPage((base + j) * PageSize)
			}
			return 0, err
		}
		p.zeroFrame(f)
		p.setEntry(base+i, ptEntry{frame: int32(f), fileID: -1})
	}
	p.nextVPage += npages
	return base * PageSize, nil
}

// zeroFrame zeroes a frame's contents. On a sparse module this demotes
// the page to constant state — O(1) and allocation-free, so mapping
// gigabytes of fresh anonymous memory costs only page-table updates.
func (p *Process) zeroFrame(f int) {
	p.sys.module.FillPage(f*PageSize, 0)
}

// DrainFrameCache maps every frame currently sitting in the per-CPU
// frame cache into this process as fresh anonymous zeroed pages, in
// FILO pop order, and returns the base virtual address of the drained
// mapping and how many pages were mapped. It is the bulk equivalent of
// calling Mmap(1) until FrameCacheDepth reaches zero — the
// page-frame-cache flush step before the Listing 1 massaging — without
// the per-call bookkeeping.
func (p *Process) DrainFrameCache() (int, int, error) {
	n := len(p.sys.frameCache)
	if n == 0 {
		return 0, 0, nil
	}
	base := p.nextVPage
	p.ensurePT(base + n)
	for i := 0; i < n; i++ {
		f, err := p.sys.allocFrame()
		if err != nil {
			for j := 0; j < i; j++ {
				p.MunmapPage((base + j) * PageSize)
			}
			return 0, 0, err
		}
		p.zeroFrame(f)
		p.setEntry(base+i, ptEntry{frame: int32(f), fileID: -1})
	}
	p.nextVPage += n
	return base * PageSize, n, nil
}

// MmapFile maps the whole file. Pages already in the page cache are
// shared; missing pages are read from disk into freshly allocated
// frames in file order — the behavior the Listing 1 massaging relies
// on.
func (p *Process) MmapFile(name string) (int, error) {
	cf, ok := p.sys.files[name]
	if !ok {
		return 0, fmt.Errorf("memsys: no such file %q", name)
	}
	npages := (len(cf.data) + PageSize - 1) / PageSize
	base := p.nextVPage
	p.ensurePT(base + npages)
	var page [PageSize]byte // stack scratch reused for every uncached page
	for i := 0; i < npages; i++ {
		f := cf.frames[i]
		if f < 0 {
			nf, err := p.sys.allocFrame()
			if err != nil {
				return 0, err
			}
			f = int32(nf)
			lo := i * PageSize
			hi := lo + PageSize
			if hi > len(cf.data) {
				hi = len(cf.data)
			}
			n := copy(page[:], cf.data[lo:hi])
			clear(page[n:]) // zero-fill tail of a partial final page
			p.sys.module.WriteRange(int(f)*PageSize, page[:])
			cf.frames[i] = f
			cf.cached++
		}
		p.setEntry(base+i, ptEntry{frame: f, fileID: cf.id, filePage: int32(i)})
	}
	p.nextVPage += npages
	return base * PageSize, nil
}

// MunmapPage unmaps the page containing vaddr. Anonymous frames go to
// the per-CPU frame cache; file-backed frames stay in the page cache
// (only the mapping is removed).
func (p *Process) MunmapPage(vaddr int) error {
	vp := vaddr / PageSize
	if vp < 0 || vp >= len(p.pt) || p.pt[vp].frame < 0 {
		return fmt.Errorf("memsys: page %#x not mapped", vaddr)
	}
	entry := p.pt[vp]
	p.pt[vp].frame = -1
	p.mapped--
	if entry.fileID < 0 {
		p.sys.releaseFrame(int(entry.frame))
	}
	return nil
}

// Translate returns the physical byte address backing vaddr.
func (p *Process) Translate(vaddr int) (int, error) {
	vp := vaddr / PageSize
	if vp >= 0 && vp < len(p.pt) {
		if f := p.pt[vp].frame; f >= 0 {
			return int(f)*PageSize + vaddr%PageSize, nil
		}
	}
	return 0, fmt.Errorf("memsys: page %#x not mapped", vaddr)
}

// FrameOf returns the physical frame of the page containing vaddr.
// In the real attack this information is *not* directly available to an
// unprivileged process (pagemap needs root); the attacker recovers it
// through the SPOILER and row-conflict side channels in package
// sidechan. Tests and the experiment oracle use FrameOf for validation.
func (p *Process) FrameOf(vaddr int) (int, error) {
	phys, err := p.Translate(vaddr)
	if err != nil {
		return 0, err
	}
	return phys / PageSize, nil
}

// Read returns n bytes at vaddr (must lie within one page).
func (p *Process) Read(vaddr, n int) ([]byte, error) {
	buf := make([]byte, n)
	if err := p.ReadInto(vaddr, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ReadInto copies len(buf) bytes at vaddr into buf (the range must lie
// within one page). It is the allocation-free twin of Read for the
// templating readback loop.
func (p *Process) ReadInto(vaddr int, buf []byte) error {
	phys, err := p.Translate(vaddr)
	if err != nil {
		return err
	}
	if vaddr%PageSize+len(buf) > PageSize {
		return fmt.Errorf("memsys: read crosses page boundary")
	}
	p.sys.module.ReadRangeInto(phys, buf)
	return nil
}

// Write stores buf at vaddr (must lie within one page). Writes through a
// file mapping modify only the cached copy (dirty write-back is not
// simulated; the attack never uses legitimate writes on the victim
// file).
func (p *Process) Write(vaddr int, buf []byte) error {
	phys, err := p.Translate(vaddr)
	if err != nil {
		return err
	}
	if vaddr%PageSize+len(buf) > PageSize {
		return fmt.Errorf("memsys: write crosses page boundary")
	}
	p.sys.module.WriteRange(phys, buf)
	return nil
}

// FillPage sets every byte of the mapped page at vaddr (page-aligned)
// to v. On a sparse module this is the O(1) demote path, so templating
// fills never materialize storage or stream 4 KB buffers.
func (p *Process) FillPage(vaddr int, v byte) error {
	if vaddr%PageSize != 0 {
		return fmt.Errorf("memsys: FillPage vaddr %#x not page aligned", vaddr)
	}
	phys, err := p.Translate(vaddr)
	if err != nil {
		return err
	}
	p.sys.module.FillPage(phys, v)
	return nil
}

// PageConstantAt reports whether the mapped page containing vaddr
// currently reads as a single constant byte, and which. Scan loops use
// it to skip clean pages without touching memory.
func (p *Process) PageConstantAt(vaddr int) (byte, bool, error) {
	phys, err := p.Translate(vaddr)
	if err != nil {
		return 0, false, err
	}
	c, ok := p.sys.module.PageConstant(phys)
	return c, ok, nil
}

// ReadByteAt returns the single byte at vaddr — the allocation-free probe
// the online verify loop uses to check whether a required flip fired.
func (p *Process) ReadByteAt(vaddr int) (byte, error) {
	phys, err := p.Translate(vaddr)
	if err != nil {
		return 0, err
	}
	return p.sys.module.Read(phys), nil
}

// ReadMapped reads a byte range that may span pages.
func (p *Process) ReadMapped(vaddr, n int) ([]byte, error) {
	out := make([]byte, n)
	off := 0
	for off < n {
		chunk := PageSize - (vaddr+off)%PageSize
		if chunk > n-off {
			chunk = n - off
		}
		if err := p.ReadInto(vaddr+off, out[off:off+chunk]); err != nil {
			return nil, err
		}
		off += chunk
	}
	return out, nil
}

// MappedPages returns the number of currently mapped pages.
func (p *Process) MappedPages() int { return p.mapped }
