// Package memsys simulates the operating-system memory plumbing the
// online attack phase exploits: a physical page-frame allocator with the
// Linux per-CPU page-frame cache (frames are reallocated in
// first-in-last-out order), anonymous and file-backed mmap/munmap, and a
// file page cache whose frames hold the weight file while the victim
// runs. Rowhammer corrupts frames directly in DRAM, so the page cache
// keeps serving the modified copy and the on-disk file stays pristine —
// the stealth property of §IV-B.
package memsys

import (
	"errors"
	"fmt"

	"rowhammer/internal/dram"
)

// PageSize is the OS page size.
const PageSize = 4096

// ErrNoMemory is returned when no free frame is available.
var ErrNoMemory = errors.New("memsys: out of physical frames")

// System owns the physical memory (backed by a simulated DRAM module),
// the frame allocator and the file page cache.
type System struct {
	module  *dram.Module
	nframes int

	// free is the buddy-allocator stand-in: frames not in any mapping
	// and not in the frame cache, allocated lowest-first. Frames only
	// leave the free list (released frames go to the frame cache), so
	// the lowest free index is monotone and nextFree lets allocFrame
	// resume its scan instead of rescanning from zero.
	free     []bool
	nextFree int
	// frameCache is the per-CPU page-frame cache: a FILO stack of
	// recently unmapped frames, consulted before the free list.
	frameCache []int

	files   map[string]*cachedFile
	nextPID int
}

type cachedFile struct {
	data   []byte      // "disk" contents
	frames map[int]int // file page → frame, for cached pages
}

// NewSystem wraps a DRAM module. Frames cover the module's full
// capacity.
func NewSystem(module *dram.Module) *System {
	n := module.Size() / PageSize
	s := &System{
		module:  module,
		nframes: n,
		free:    make([]bool, n),
		files:   make(map[string]*cachedFile),
	}
	for i := range s.free {
		s.free[i] = true
	}
	return s
}

// Module exposes the backing DRAM (the hammering interface).
func (s *System) Module() *dram.Module { return s.module }

// InjectFaults installs a probabilistic-firing fault model on the
// backing DRAM (see dram.FaultModel). The zero value removes it and
// restores fully deterministic hammering.
func (s *System) InjectFaults(f dram.FaultModel) { s.module.SetFaultModel(f) }

// NumFrames returns the physical frame count.
func (s *System) NumFrames() int { return s.nframes }

// FrameCacheDepth reports how many frames sit in the per-CPU cache.
func (s *System) FrameCacheDepth() int { return len(s.frameCache) }

// allocFrame pops the most recently freed frame from the per-CPU cache,
// falling back to the lowest free frame — the FILO behavior Listing 1
// exploits.
func (s *System) allocFrame() (int, error) {
	if n := len(s.frameCache); n > 0 {
		f := s.frameCache[n-1]
		s.frameCache = s.frameCache[:n-1]
		return f, nil
	}
	for f := s.nextFree; f < s.nframes; f++ {
		if s.free[f] {
			s.free[f] = false
			s.nextFree = f + 1
			return f, nil
		}
	}
	return 0, ErrNoMemory
}

// releaseFrame pushes a frame onto the per-CPU cache.
func (s *System) releaseFrame(f int) {
	s.frameCache = append(s.frameCache, f)
}

// WriteFile stores file contents on the simulated disk. An existing
// cached copy is invalidated.
func (s *System) WriteFile(name string, data []byte) {
	if old, ok := s.files[name]; ok {
		for _, f := range old.frames {
			s.releaseFrame(f)
		}
	}
	s.files[name] = &cachedFile{
		data:   append([]byte(nil), data...),
		frames: make(map[int]int),
	}
}

// FileSize returns a file's length in bytes.
func (s *System) FileSize(name string) (int, error) {
	cf, ok := s.files[name]
	if !ok {
		return 0, fmt.Errorf("memsys: no such file %q", name)
	}
	return len(cf.data), nil
}

// ReadFileFromDisk returns the on-disk bytes, bypassing the page cache.
// Rowhammer corruption never reaches this copy.
func (s *System) ReadFileFromDisk(name string) ([]byte, error) {
	cf, ok := s.files[name]
	if !ok {
		return nil, fmt.Errorf("memsys: no such file %q", name)
	}
	return append([]byte(nil), cf.data...), nil
}

// EvictFile drops a file's page-cache frames (e.g. memory pressure or a
// reboot); the next mmap re-reads from disk, erasing any in-memory
// corruption.
func (s *System) EvictFile(name string) error {
	cf, ok := s.files[name]
	if !ok {
		return fmt.Errorf("memsys: no such file %q", name)
	}
	for _, f := range cf.frames {
		s.releaseFrame(f)
	}
	cf.frames = make(map[int]int)
	return nil
}

// FileCachedFrames returns the page-cache frame of each cached file
// page (file page index → frame).
func (s *System) FileCachedFrames(name string) (map[int]int, error) {
	cf, ok := s.files[name]
	if !ok {
		return nil, fmt.Errorf("memsys: no such file %q", name)
	}
	out := make(map[int]int, len(cf.frames))
	for k, v := range cf.frames {
		out[k] = v
	}
	return out, nil
}

// NewProcess creates a process with an empty address space.
func (s *System) NewProcess() *Process {
	s.nextPID++
	return &Process{
		sys:       s,
		pid:       s.nextPID,
		pages:     make(map[int]mappingEntry),
		nextVPage: 0x1000, // arbitrary non-zero base
	}
}

type mappingEntry struct {
	frame    int
	file     string // "" for anonymous
	filePage int
}

// Process is one address space. Virtual addresses are byte addresses;
// mappings are tracked per page.
type Process struct {
	sys       *System
	pid       int
	pages     map[int]mappingEntry
	nextVPage int
}

// PID returns the process id.
func (p *Process) PID() int { return p.pid }

// Mmap maps npages fresh anonymous zeroed pages and returns the base
// virtual address.
func (p *Process) Mmap(npages int) (int, error) {
	base := p.nextVPage
	for i := 0; i < npages; i++ {
		f, err := p.sys.allocFrame()
		if err != nil {
			// Roll back partial mapping.
			for j := 0; j < i; j++ {
				p.MunmapPage((base + j) * PageSize)
			}
			return 0, err
		}
		p.zeroFrame(f)
		p.pages[base+i] = mappingEntry{frame: f}
	}
	p.nextVPage += npages
	return base * PageSize, nil
}

// zeroPage is the shared all-zero source page for anonymous mappings;
// read-only, so safe to share across every zeroFrame call.
var zeroPage [PageSize]byte

func (p *Process) zeroFrame(f int) {
	p.sys.module.WriteRange(f*PageSize, zeroPage[:])
}

// DrainFrameCache maps every frame currently sitting in the per-CPU
// frame cache into this process as fresh anonymous zeroed pages, in
// FILO pop order, and returns the base virtual address of the drained
// mapping and how many pages were mapped. It is the bulk equivalent of
// calling Mmap(1) until FrameCacheDepth reaches zero — the
// page-frame-cache flush step before the Listing 1 massaging — without
// the per-call bookkeeping.
func (p *Process) DrainFrameCache() (int, int, error) {
	n := len(p.sys.frameCache)
	if n == 0 {
		return 0, 0, nil
	}
	base := p.nextVPage
	for i := 0; i < n; i++ {
		f, err := p.sys.allocFrame()
		if err != nil {
			for j := 0; j < i; j++ {
				p.MunmapPage((base + j) * PageSize)
			}
			return 0, 0, err
		}
		p.zeroFrame(f)
		p.pages[base+i] = mappingEntry{frame: f}
	}
	p.nextVPage += n
	return base * PageSize, n, nil
}

// MmapFile maps the whole file. Pages already in the page cache are
// shared; missing pages are read from disk into freshly allocated
// frames in file order — the behavior the Listing 1 massaging relies
// on.
func (p *Process) MmapFile(name string) (int, error) {
	cf, ok := p.sys.files[name]
	if !ok {
		return 0, fmt.Errorf("memsys: no such file %q", name)
	}
	npages := (len(cf.data) + PageSize - 1) / PageSize
	base := p.nextVPage
	var page [PageSize]byte // stack scratch reused for every uncached page
	for i := 0; i < npages; i++ {
		f, cached := cf.frames[i]
		if !cached {
			var err error
			f, err = p.sys.allocFrame()
			if err != nil {
				return 0, err
			}
			lo := i * PageSize
			hi := lo + PageSize
			if hi > len(cf.data) {
				hi = len(cf.data)
			}
			n := copy(page[:], cf.data[lo:hi])
			clear(page[n:]) // zero-fill tail of a partial final page
			p.sys.module.WriteRange(f*PageSize, page[:])
			cf.frames[i] = f
		}
		p.pages[base+i] = mappingEntry{frame: f, file: name, filePage: i}
	}
	p.nextVPage += npages
	return base * PageSize, nil
}

// MunmapPage unmaps the page containing vaddr. Anonymous frames go to
// the per-CPU frame cache; file-backed frames stay in the page cache
// (only the mapping is removed).
func (p *Process) MunmapPage(vaddr int) error {
	vp := vaddr / PageSize
	entry, ok := p.pages[vp]
	if !ok {
		return fmt.Errorf("memsys: page %#x not mapped", vaddr)
	}
	delete(p.pages, vp)
	if entry.file == "" {
		p.sys.releaseFrame(entry.frame)
	}
	return nil
}

// Translate returns the physical byte address backing vaddr.
func (p *Process) Translate(vaddr int) (int, error) {
	vp := vaddr / PageSize
	entry, ok := p.pages[vp]
	if !ok {
		return 0, fmt.Errorf("memsys: page %#x not mapped", vaddr)
	}
	return entry.frame*PageSize + vaddr%PageSize, nil
}

// FrameOf returns the physical frame of the page containing vaddr.
// In the real attack this information is *not* directly available to an
// unprivileged process (pagemap needs root); the attacker recovers it
// through the SPOILER and row-conflict side channels in package
// sidechan. Tests and the experiment oracle use FrameOf for validation.
func (p *Process) FrameOf(vaddr int) (int, error) {
	phys, err := p.Translate(vaddr)
	if err != nil {
		return 0, err
	}
	return phys / PageSize, nil
}

// Read returns n bytes at vaddr (must lie within one page).
func (p *Process) Read(vaddr, n int) ([]byte, error) {
	phys, err := p.Translate(vaddr)
	if err != nil {
		return nil, err
	}
	if vaddr%PageSize+n > PageSize {
		return nil, fmt.Errorf("memsys: read crosses page boundary")
	}
	return p.sys.module.ReadRange(phys, n), nil
}

// ReadInto copies len(buf) bytes at vaddr into buf (the range must lie
// within one page). It is the allocation-free twin of Read for the
// templating readback loop.
func (p *Process) ReadInto(vaddr int, buf []byte) error {
	phys, err := p.Translate(vaddr)
	if err != nil {
		return err
	}
	if vaddr%PageSize+len(buf) > PageSize {
		return fmt.Errorf("memsys: read crosses page boundary")
	}
	p.sys.module.ReadRangeInto(phys, buf)
	return nil
}

// Write stores buf at vaddr (must lie within one page). Writes through a
// file mapping modify only the cached copy (dirty write-back is not
// simulated; the attack never uses legitimate writes on the victim
// file).
func (p *Process) Write(vaddr int, buf []byte) error {
	phys, err := p.Translate(vaddr)
	if err != nil {
		return err
	}
	if vaddr%PageSize+len(buf) > PageSize {
		return fmt.Errorf("memsys: write crosses page boundary")
	}
	p.sys.module.WriteRange(phys, buf)
	return nil
}

// ReadByteAt returns the single byte at vaddr — the allocation-free probe
// the online verify loop uses to check whether a required flip fired.
func (p *Process) ReadByteAt(vaddr int) (byte, error) {
	phys, err := p.Translate(vaddr)
	if err != nil {
		return 0, err
	}
	return p.sys.module.Read(phys), nil
}

// ReadMapped reads a byte range that may span pages.
func (p *Process) ReadMapped(vaddr, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	for n > 0 {
		chunk := PageSize - vaddr%PageSize
		if chunk > n {
			chunk = n
		}
		b, err := p.Read(vaddr, chunk)
		if err != nil {
			return nil, err
		}
		out = append(out, b...)
		vaddr += chunk
		n -= chunk
	}
	return out, nil
}

// MappedPages returns the number of currently mapped pages.
func (p *Process) MappedPages() int { return len(p.pages) }
