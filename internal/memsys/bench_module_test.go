package memsys

import (
	"fmt"
	"testing"

	"rowhammer/internal/dram"
)

// BenchmarkMmapAnon measures mapping a large anonymous buffer on a
// fresh system — the attacker's first act in every online campaign.
// One op = Mmap of the full buffer (frame allocation plus page
// zeroing).
func BenchmarkMmapAnon(b *testing.B) {
	for _, pages := range []int{65536, 262144} {
		b.Run(fmt.Sprintf("pages%d", pages), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				mod, err := dram.NewModuleForSize(pages*PageSize+(16<<20), dram.PaperDDR3(), 11)
				if err != nil {
					b.Fatal(err)
				}
				sys := NewSystem(mod)
				attacker := sys.NewProcess()
				b.StartTimer()
				if _, err := attacker.Mmap(pages); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
