package memsys

import "fmt"

// MassageFileMapping implements the Listing 1 memory-massaging
// primitive. The attacker owns an anonymous buffer (bufBase) whose page
// frames it has located (via the SPOILER/row-conflict side channels).
// assignment[i] names the buffer page whose frame the i-th page of the
// victim's weight file must land on.
//
// Because the per-CPU page-frame cache hands frames back in
// first-in-last-out order, the attacker unmaps the chosen buffer pages
// in *reverse* file order: the frame for file page 0 is released last,
// so it sits on top of the stack when the victim's mmap faults file
// page 0 in first. Figure 4's "first pages of the weight file map to
// the last released pages of our buffer" is exactly this order.
//
// The victim file must not already be resident in the page cache
// (evict it first); cached pages do not allocate frames.
func MassageFileMapping(attacker *Process, bufBase int, assignment []int) error {
	maxBP := 0
	for _, bp := range assignment {
		if bp < 0 {
			return fmt.Errorf("memsys: negative buffer page %d in assignment", bp)
		}
		if bp > maxBP {
			maxBP = bp
		}
	}
	seen := make([]uint64, maxBP/64+1)
	for _, bp := range assignment {
		if seen[bp>>6]&(1<<(uint(bp)&63)) != 0 {
			return fmt.Errorf("memsys: buffer page %d assigned twice", bp)
		}
		seen[bp>>6] |= 1 << (uint(bp) & 63)
	}
	for i := len(assignment) - 1; i >= 0; i-- {
		if err := attacker.MunmapPage(bufBase + assignment[i]*PageSize); err != nil {
			return fmt.Errorf("memsys: massage unmap file page %d: %w", i, err)
		}
	}
	return nil
}
