package memsys

import (
	"bytes"
	"testing"

	"rowhammer/internal/tensor"

	"rowhammer/internal/dram"
)

func newSystem(t *testing.T, sizeMB int) *System {
	t.Helper()
	mod, err := dram.NewModuleForSize(sizeMB<<20, dram.PaperDDR3(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return NewSystem(mod)
}

func TestAnonymousMmapReadWrite(t *testing.T) {
	sys := newSystem(t, 1)
	p := sys.NewProcess()
	base, err := p.Mmap(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(base+PageSize+8, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got, err := p.Read(base+PageSize+8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("read back %v", got)
	}
}

func TestMmapZeroesPages(t *testing.T) {
	sys := newSystem(t, 1)
	p := sys.NewProcess()
	// Dirty a frame, release it, remap; new mapping must be zeroed.
	base, _ := p.Mmap(1)
	p.Write(base, []byte{0xFF})
	frame, _ := p.FrameOf(base)
	p.MunmapPage(base)
	base2, _ := p.Mmap(1)
	frame2, _ := p.FrameOf(base2)
	if frame2 != frame {
		t.Fatalf("FILO cache should reuse frame %d, got %d", frame, frame2)
	}
	got, _ := p.Read(base2, 1)
	if got[0] != 0 {
		t.Fatal("anonymous mmap must zero the frame")
	}
}

func TestFrameCacheIsFILO(t *testing.T) {
	sys := newSystem(t, 1)
	p := sys.NewProcess()
	base, _ := p.Mmap(3)
	frames := make([]int, 3)
	for i := range frames {
		frames[i], _ = p.FrameOf(base + i*PageSize)
	}
	// Free pages 0, 1, 2 in order → reallocation must be 2, 1, 0.
	for i := 0; i < 3; i++ {
		p.MunmapPage(base + i*PageSize)
	}
	if sys.FrameCacheDepth() != 3 {
		t.Fatalf("cache depth %d", sys.FrameCacheDepth())
	}
	for want := 2; want >= 0; want-- {
		nb, _ := p.Mmap(1)
		f, _ := p.FrameOf(nb)
		if f != frames[want] {
			t.Fatalf("expected frame %d, got %d (FILO violated)", frames[want], f)
		}
	}
}

func TestFileMapSharingAndCaching(t *testing.T) {
	sys := newSystem(t, 1)
	content := make([]byte, PageSize*2+100)
	for i := range content {
		content[i] = byte(i % 251)
	}
	sys.WriteFile("weights.bin", content)

	victim := sys.NewProcess()
	base, err := victim.MmapFile("weights.bin")
	if err != nil {
		t.Fatal(err)
	}
	got, err := victim.ReadMapped(base, len(content))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("file mapping content wrong")
	}

	// A second mapper shares the cached frames.
	other := sys.NewProcess()
	base2, _ := other.MmapFile("weights.bin")
	f1, _ := victim.FrameOf(base)
	f2, _ := other.FrameOf(base2)
	if f1 != f2 {
		t.Fatal("page cache must share frames between mappers")
	}
}

func TestPageCachePersistsAfterUnmapAndHidesCorruption(t *testing.T) {
	sys := newSystem(t, 1)
	content := make([]byte, PageSize*3)
	sys.WriteFile("model.bin", content)

	v := sys.NewProcess()
	base, _ := v.MmapFile("model.bin")
	phys, _ := v.Translate(base + 5)
	// Unmap (victim closes the file); page cache keeps the frame.
	for i := 0; i < 3; i++ {
		v.MunmapPage(base + i*PageSize)
	}

	// "Rowhammer" corrupts the cached frame directly in DRAM.
	sys.Module().Write(phys, 0x80)

	// Next load is served from the cache: corruption visible in memory…
	v2 := sys.NewProcess()
	base2, _ := v2.MmapFile("model.bin")
	got, _ := v2.Read(base2+5, 1)
	if got[0] != 0x80 {
		t.Fatal("page cache should serve the corrupted copy")
	}
	// …but the on-disk file is untouched (stealth property).
	disk, _ := sys.ReadFileFromDisk("model.bin")
	if disk[5] != 0 {
		t.Fatal("disk copy must stay pristine")
	}
	// After eviction the clean copy returns.
	if err := sys.EvictFile("model.bin"); err != nil {
		t.Fatal(err)
	}
	v3 := sys.NewProcess()
	base3, _ := v3.MmapFile("model.bin")
	got3, _ := v3.Read(base3+5, 1)
	if got3[0] != 0 {
		t.Fatal("eviction must drop the corrupted copy")
	}
}

func TestMassageFileMappingPlacesPages(t *testing.T) {
	sys := newSystem(t, 2)
	filePages := 8
	content := make([]byte, filePages*PageSize)
	sys.WriteFile("w.bin", content)

	attacker := sys.NewProcess()
	bufPages := 32
	bufBase, err := attacker.Mmap(bufPages)
	if err != nil {
		t.Fatal(err)
	}
	// The attacker picks arbitrary buffer pages as targets.
	assignment := []int{17, 3, 25, 9, 30, 1, 12, 21}
	wantFrames := make([]int, filePages)
	for i, bp := range assignment {
		wantFrames[i], _ = attacker.FrameOf(bufBase + bp*PageSize)
	}

	if err := MassageFileMapping(attacker, bufBase, assignment); err != nil {
		t.Fatal(err)
	}

	victim := sys.NewProcess()
	base, err := victim.MmapFile("w.bin")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < filePages; i++ {
		f, _ := victim.FrameOf(base + i*PageSize)
		if f != wantFrames[i] {
			t.Fatalf("file page %d on frame %d, want %d", i, f, wantFrames[i])
		}
	}
}

func TestMassageRejectsDuplicateAssignment(t *testing.T) {
	sys := newSystem(t, 1)
	attacker := sys.NewProcess()
	bufBase, _ := attacker.Mmap(4)
	if err := MassageFileMapping(attacker, bufBase, []int{1, 1}); err == nil {
		t.Fatal("duplicate assignment must fail")
	}
}

func TestTranslateUnmappedFails(t *testing.T) {
	sys := newSystem(t, 1)
	p := sys.NewProcess()
	if _, err := p.Translate(0x123456); err == nil {
		t.Fatal("expected translation fault")
	}
	if err := p.MunmapPage(0x123456); err == nil {
		t.Fatal("expected unmap fault")
	}
}

func TestOutOfMemory(t *testing.T) {
	sys := newSystem(t, 1) // 256 frames
	p := sys.NewProcess()
	if _, err := p.Mmap(sys.NumFrames() + 1); err == nil {
		t.Fatal("expected ErrNoMemory")
	}
	// Rollback must leave everything free for a successful retry.
	if _, err := p.Mmap(sys.NumFrames()); err != nil {
		t.Fatalf("retry after rollback: %v", err)
	}
}

func TestCrossPageReadWriteRejected(t *testing.T) {
	sys := newSystem(t, 1)
	p := sys.NewProcess()
	base, _ := p.Mmap(2)
	if _, err := p.Read(base+PageSize-2, 4); err == nil {
		t.Fatal("cross-page Read must fail")
	}
	if err := p.Write(base+PageSize-2, []byte{1, 2, 3, 4}); err == nil {
		t.Fatal("cross-page Write must fail")
	}
	// ReadMapped handles the boundary.
	if _, err := p.ReadMapped(base+PageSize-2, 4); err != nil {
		t.Fatal(err)
	}
}

func TestWriteFileInvalidatesCache(t *testing.T) {
	sys := newSystem(t, 1)
	sys.WriteFile("f", make([]byte, PageSize))
	p := sys.NewProcess()
	base, _ := p.MmapFile("f")
	_ = base
	newContent := make([]byte, PageSize)
	newContent[0] = 7
	sys.WriteFile("f", newContent)
	p2 := sys.NewProcess()
	b2, _ := p2.MmapFile("f")
	got, _ := p2.Read(b2, 1)
	if got[0] != 7 {
		t.Fatal("rewritten file must serve new contents")
	}
}

func TestFileSizeAndMissingFile(t *testing.T) {
	sys := newSystem(t, 1)
	sys.WriteFile("a", make([]byte, 123))
	if n, err := sys.FileSize("a"); err != nil || n != 123 {
		t.Fatalf("FileSize = %d, %v", n, err)
	}
	if _, err := sys.FileSize("nope"); err == nil {
		t.Fatal("missing file must error")
	}
	if _, err := sys.ReadFileFromDisk("nope"); err == nil {
		t.Fatal("missing file must error")
	}
	if err := sys.EvictFile("nope"); err == nil {
		t.Fatal("missing file must error")
	}
	p := sys.NewProcess()
	if _, err := p.MmapFile("nope"); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestFileCachedFrames(t *testing.T) {
	sys := newSystem(t, 1)
	sys.WriteFile("f", make([]byte, 2*PageSize))
	p := sys.NewProcess()
	base, _ := p.MmapFile("f")
	frames, err := sys.FileCachedFrames("f")
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 {
		t.Fatalf("cached %d pages, want 2", len(frames))
	}
	f0, _ := p.FrameOf(base)
	if frames[0] != f0 {
		t.Fatal("cached frame mismatch")
	}
}

func TestMmapHugeIsContiguousAndAligned(t *testing.T) {
	sys := newSystem(t, 8) // 2048 frames
	p := sys.NewProcess()
	base, err := p.MmapHuge(2)
	if err != nil {
		t.Fatal(err)
	}
	f0, _ := p.FrameOf(base)
	if f0%HugePageFrames != 0 {
		t.Fatalf("huge page frame %d not 2MB aligned", f0)
	}
	for i := 0; i < 2*HugePageFrames; i++ {
		f, err := p.FrameOf(base + i*PageSize)
		if err != nil {
			t.Fatal(err)
		}
		if f != f0+i {
			t.Fatalf("huge page not contiguous at page %d", i)
		}
	}
}

func TestMmapHugeExhaustion(t *testing.T) {
	sys := newSystem(t, 1) // 256 frames < 512
	p := sys.NewProcess()
	if _, err := p.MmapHuge(1); err == nil {
		t.Fatal("huge page on a 1MB system must fail")
	}
	// Failure must not leak frames.
	if _, err := p.Mmap(sys.NumFrames()); err != nil {
		t.Fatalf("frames leaked by failed huge mmap: %v", err)
	}
}

// TestHugePageStillHammerable validates the §VIII argument: a huge page
// spans many 8KB row chunks spread over every bank, and each chunk's
// rows remain adjacent to attacker-reachable rows.
func TestHugePageStillHammerable(t *testing.T) {
	sys := newSystem(t, 8)
	p := sys.NewProcess()
	base, err := p.MmapHuge(1)
	if err != nil {
		t.Fatal(err)
	}
	geom := sys.Module().Geometry()
	banks := map[int]bool{}
	for i := 0; i < HugePageFrames; i += 2 { // one probe per 8KB chunk
		phys, _ := p.Translate(base + i*PageSize)
		banks[geom.LocOf(phys).Bank] = true
	}
	// A 2MB huge page (256 chunks) must spread over all 16 banks, so
	// every chunk is an ordinary sandwichable row.
	if len(banks) != 16 {
		t.Fatalf("huge page touches %d banks, want 16", len(banks))
	}
}

// Property: any interleaving of anonymous mmap/munmap never maps one
// frame into two live pages.
func TestFrameNeverDoubleMapped(t *testing.T) {
	sys := newSystem(t, 2)
	p := sys.NewProcess()
	rng := tensor.NewRNG(99)
	var live []int // virtual page addresses
	owners := map[int]int{}
	for step := 0; step < 2000; step++ {
		if len(live) > 0 && rng.Float64() < 0.45 {
			i := rng.Intn(len(live))
			va := live[i]
			f, _ := p.FrameOf(va)
			delete(owners, f)
			if err := p.MunmapPage(va); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
			continue
		}
		va, err := p.Mmap(1)
		if err != nil {
			t.Fatal(err)
		}
		f, _ := p.FrameOf(va)
		if prev, taken := owners[f]; taken {
			t.Fatalf("frame %d double-mapped (pages %#x and %#x) at step %d", f, prev, va, step)
		}
		owners[f] = va
		live = append(live, va)
	}
}
