package memsys

import (
	"sync"

	"rowhammer/internal/dram"
)

// Recycler pools the flat bookkeeping slices a System burns through —
// the frame-allocator bitset and per-process page tables. A fleet
// campaign builds one System (and two or three processes) per module
// per stage; with multi-GB modules those slices are hundreds of KB to
// MBs each, and reallocating them per campaign makes the scheduler pay
// an mmap-and-fault tax proportional to fleet size. Recycled slices are
// re-initialized on reuse (the bitset is rewritten wholesale, page
// tables are harvested at length zero and ensurePT initializes every
// entry it grows into), so a recycled System is observably identical to
// a fresh one. Safe for concurrent use.
type Recycler struct {
	mu      sync.Mutex
	bitsets [][]uint64
	pts     [][]ptEntry
}

// NewRecycler returns an empty recycler.
func NewRecycler() *Recycler { return &Recycler{} }

// NewSystem is NewSystem drawing its bookkeeping from the recycler.
func (r *Recycler) NewSystem(module *dram.Module) *System {
	return buildSystem(module, r)
}

func (r *Recycler) getBitset(words int) []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.bitsets) - 1; i >= 0; i-- {
		if cap(r.bitsets[i]) >= words {
			bs := r.bitsets[i][:words]
			r.bitsets[i] = r.bitsets[len(r.bitsets)-1]
			r.bitsets = r.bitsets[:len(r.bitsets)-1]
			return bs
		}
	}
	return nil
}

func (r *Recycler) getPT() []ptEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.pts); n > 0 {
		pt := r.pts[n-1]
		r.pts = r.pts[:n-1]
		return pt
	}
	return nil
}

// Recycle harvests the System's bitset and every process page table
// back into the recycler. The System and its processes must not be used
// afterwards — their bookkeeping is gone and any access fails loudly.
func (s *System) Recycle(r *Recycler) {
	r.mu.Lock()
	if s.free != nil {
		r.bitsets = append(r.bitsets, s.free)
	}
	for _, p := range s.procs {
		if p.pt != nil {
			r.pts = append(r.pts, p.pt[:0])
			p.pt = nil
		}
	}
	r.mu.Unlock()
	s.free = nil
	s.frameCache = nil
	s.nframes = 0 // further allocations report ErrNoMemory instead of corrupting
	s.procs = nil
}
