package memsys

import (
	"bytes"
	"testing"

	"rowhammer/internal/dram"
)

// driveSystem runs a miniature campaign against the system — anonymous
// buffer, file write, massage-free map, reads — and returns the mapped
// file contents.
func driveSystem(t *testing.T, sys *System) []byte {
	t.Helper()
	attacker := sys.NewProcess()
	base, err := attacker.Mmap(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := attacker.FillPage(base, 0xEE); err != nil {
		t.Fatal(err)
	}
	file := make([]byte, 3*PageSize)
	for i := range file {
		file[i] = byte(i * 7)
	}
	sys.WriteFile("w.bin", file)
	victim := sys.NewProcess()
	fbase, err := victim.MmapFile("w.bin")
	if err != nil {
		t.Fatal(err)
	}
	got, err := victim.ReadMapped(fbase, len(file))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, file) {
		t.Fatal("mapped file does not match disk contents")
	}
	return got
}

// TestRecyclerSystemIdentity asserts a recycled System behaves exactly
// like a fresh one, and that recycling actually reuses the harvested
// slices.
func TestRecyclerSystemIdentity(t *testing.T) {
	mod, err := dram.NewModuleForSize(8<<20, dram.PaperDDR3(), 3)
	if err != nil {
		t.Fatal(err)
	}
	want := driveSystem(t, NewSystem(mod))

	rec := NewRecycler()
	mod.Reset(dram.PaperDDR3(), 3)
	sys1 := rec.NewSystem(mod)
	got1 := driveSystem(t, sys1)
	if !bytes.Equal(got1, want) {
		t.Fatal("recycler-backed system differs from plain system")
	}
	sys1.Recycle(rec)
	if len(rec.bitsets) != 1 || len(rec.pts) != 2 {
		t.Fatalf("harvest = %d bitsets, %d page tables; want 1, 2", len(rec.bitsets), len(rec.pts))
	}
	harvested := &rec.bitsets[0][0]

	mod.Reset(dram.PaperDDR3(), 3)
	sys2 := rec.NewSystem(mod)
	if &sys2.free[0] != harvested {
		t.Fatal("second system did not reuse the harvested bitset")
	}
	got2 := driveSystem(t, sys2)
	if !bytes.Equal(got2, want) {
		t.Fatal("second recycled system differs from plain system")
	}

	// A recycled system fails loudly instead of corrupting state.
	sys2.Recycle(rec)
	p := sys2.NewProcess()
	if _, err := p.Mmap(1); err == nil {
		t.Fatal("Mmap on a recycled system should fail")
	}
}
