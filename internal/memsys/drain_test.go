package memsys

import (
	"testing"

	"rowhammer/internal/dram"
)

// TestDrainFrameCache verifies the bulk drain is equivalent to the
// Mmap(1) loop it replaces: every cached frame is remapped in FILO pop
// order, zeroed, and the cache ends empty.
func TestDrainFrameCache(t *testing.T) {
	mod, err := dram.NewModuleForSize(4<<20, dram.PaperDDR3(), 1)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(mod)
	p := sys.NewProcess()

	const pages = 8
	base, err := p.Mmap(pages)
	if err != nil {
		t.Fatal(err)
	}
	frames := make([]int, pages)
	for i := range frames {
		f, err := p.FrameOf(base + i*PageSize)
		if err != nil {
			t.Fatal(err)
		}
		p.Write(base+i*PageSize, []byte{0xAA}) // dirty so drain must re-zero
		frames[i] = f
	}
	// Unmap in ascending page order: the FILO cache ends as
	// [frames[0] … frames[pages-1]], popped back-to-front.
	for i := 0; i < pages; i++ {
		if err := p.MunmapPage(base + i*PageSize); err != nil {
			t.Fatal(err)
		}
	}
	if got := sys.FrameCacheDepth(); got != pages {
		t.Fatalf("frame cache depth = %d, want %d", got, pages)
	}

	dbase, n, err := p.DrainFrameCache()
	if err != nil {
		t.Fatal(err)
	}
	if n != pages {
		t.Fatalf("drained %d pages, want %d", n, pages)
	}
	if got := sys.FrameCacheDepth(); got != 0 {
		t.Fatalf("frame cache depth after drain = %d, want 0", got)
	}
	for i := 0; i < pages; i++ {
		f, err := p.FrameOf(dbase + i*PageSize)
		if err != nil {
			t.Fatal(err)
		}
		if want := frames[pages-1-i]; f != want {
			t.Errorf("drained page %d got frame %d, want %d (FILO order)", i, f, want)
		}
		b, err := p.Read(dbase+i*PageSize, 1)
		if err != nil {
			t.Fatal(err)
		}
		if b[0] != 0 {
			t.Errorf("drained page %d not zeroed: %#x", i, b[0])
		}
	}

	// Empty cache: a second drain is a no-op.
	if _, n, err := p.DrainFrameCache(); err != nil || n != 0 {
		t.Fatalf("drain of empty cache = (%d, %v), want (0, nil)", n, err)
	}
}
