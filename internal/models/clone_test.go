package models

import (
	"testing"

	"rowhammer/internal/tensor"
)

// TestCloneAllArchitectures builds every registered architecture —
// including the binarized variant, whose BinConv2D lives in this
// package — clones it structurally, and checks the clone produces a
// bitwise-identical eval forward while sharing no weight storage.
func TestCloneAllArchitectures(t *testing.T) {
	for _, arch := range Names() {
		arch := arch
		t.Run(arch, func(t *testing.T) {
			m, err := Build(Config{Arch: arch, Classes: 10, WidthMult: 0.25, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			c := m.Clone()

			mp, cp := m.Params(), c.Params()
			if len(mp) != len(cp) {
				t.Fatalf("param count %d != %d", len(mp), len(cp))
			}
			for i := range mp {
				if mp[i].Name != cp[i].Name {
					t.Fatalf("param %d name %q != %q", i, mp[i].Name, cp[i].Name)
				}
				if &mp[i].W.Data()[0] == &cp[i].W.Data()[0] {
					t.Fatalf("param %q shares weight storage with the clone", mp[i].Name)
				}
			}

			rng := tensor.NewRNG(7)
			x := tensor.New(2, m.InputShape[0], m.InputShape[1], m.InputShape[2])
			rng.FillNormal(x, 0, 1)
			ym := m.Forward(x, false)
			yc := c.Forward(x, false)
			md, cd := ym.Data(), yc.Data()
			for i := range md {
				if md[i] != cd[i] {
					t.Fatalf("output %d differs: %v != %v", i, md[i], cd[i])
				}
			}
		})
	}
}
