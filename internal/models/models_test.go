package models

import (
	"testing"

	"rowhammer/internal/nn"
	"rowhammer/internal/tensor"
)

func forwardShape(t *testing.T, m *nn.Model, batch int) {
	t.Helper()
	x := tensor.New(batch, m.InputShape[0], m.InputShape[1], m.InputShape[2])
	tensor.NewRNG(1).FillNormal(x, 0, 1)
	out := m.Forward(x, false)
	if out.NDim() != 2 || out.Dim(0) != batch || out.Dim(1) != m.Classes {
		t.Fatalf("%s: output shape %v, want (%d,%d)", m.Arch, out.Shape(), batch, m.Classes)
	}
}

func TestBuildAllArchitectures(t *testing.T) {
	for _, arch := range Names() {
		arch := arch
		t.Run(arch, func(t *testing.T) {
			m, err := Build(Config{Arch: arch, Classes: 10, WidthMult: 0.25, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if m.NumParams() == 0 {
				t.Fatal("no parameters")
			}
			forwardShape(t, m, 2)
		})
	}
}

func TestBuildUnknownArch(t *testing.T) {
	if _, err := Build(Config{Arch: "lenet", Classes: 10}); err == nil {
		t.Fatal("expected error for unknown architecture")
	}
}

func TestBuildRejectsBadClasses(t *testing.T) {
	if _, err := Build(Config{Arch: "resnet20", Classes: 0}); err == nil {
		t.Fatal("expected error for zero classes")
	}
}

func TestResNetDepthValidation(t *testing.T) {
	if _, err := ResNetCIFAR(21, 10, 1, 1); err == nil {
		t.Fatal("expected depth validation error")
	}
	if _, err := ResNetBasic(19, 10, 1, 1); err == nil {
		t.Fatal("expected depth validation error")
	}
	if _, err := ResNetBottleneck(51, 10, 1, 1); err == nil {
		t.Fatal("expected depth validation error")
	}
	if _, err := VGG(13, 10, 1, 1); err == nil {
		t.Fatal("expected depth validation error")
	}
	if _, err := BinarizedResNetCIFAR(21, 10, 1, 1); err == nil {
		t.Fatal("expected depth validation error")
	}
}

// Parameter counts at full width must match the canonical architectures.
func TestResNet20FullWidthParamCount(t *testing.T) {
	m, err := ResNetCIFAR(20, 10, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The canonical CIFAR ResNet-20 has ~0.27M parameters; the paper
	// reports 2.2M bits = 0.27M bytes for its 8-bit quantized copy.
	n := m.NumParams()
	if n < 260_000 || n > 280_000 {
		t.Fatalf("ResNet-20 has %d params, want ≈272k", n)
	}
}

func TestResNet32FullWidthParamCount(t *testing.T) {
	m, err := ResNetCIFAR(32, 10, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := m.NumParams()
	// Canonical ResNet-32: ~0.46M params (paper: 3.7M bits ≈ 0.46M bytes).
	if n < 450_000 || n > 480_000 {
		t.Fatalf("ResNet-32 has %d params, want ≈466k", n)
	}
}

func TestResNet18FullWidthParamCount(t *testing.T) {
	m, err := ResNetBasic(18, 10, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := m.NumParams()
	// CIFAR-adapted ResNet-18: ~11.2M params (paper: 88M bits ≈ 11M bytes).
	if n < 11_000_000 || n > 11_400_000 {
		t.Fatalf("ResNet-18 has %d params, want ≈11.2M", n)
	}
}

func TestParamOrderStableAcrossWidths(t *testing.T) {
	a, err := ResNetCIFAR(20, 10, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ResNetCIFAR(20, 10, 0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		t.Fatalf("param list lengths differ: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i].Name != pb[i].Name {
			t.Fatalf("param %d name differs: %s vs %s", i, pa[i].Name, pb[i].Name)
		}
	}
}

func TestModelTrainStepRuns(t *testing.T) {
	m, err := Build(Config{Arch: "resnet20", Classes: 10, WidthMult: 0.25, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(4, 3, 32, 32)
	tensor.NewRNG(2).FillNormal(x, 0, 1)
	labels := []int{0, 1, 2, 3}
	out := m.Forward(x, true)
	loss, grad := nn.CrossEntropy(out, labels, 1)
	if loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}
	m.ZeroGrad()
	m.Backward(grad)
	var nonzero bool
	for _, p := range m.Params() {
		if p.G.MaxAbs() > 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Fatal("backward produced all-zero gradients")
	}
}

func TestBinarizedForwardUsesSignWeights(t *testing.T) {
	rng := tensor.NewRNG(3)
	bc := NewBinConv2D("c", rng, 1, 1, 3, 1, 1)
	// Force known weights: mixed signs.
	w := bc.inner.Weight.W.Data()
	for i := range w {
		if i%2 == 0 {
			w[i] = 0.5
		} else {
			w[i] = -0.25
		}
	}
	x := tensor.New(1, 1, 3, 3)
	x.Fill(1)
	out := bc.Forward(x, false)
	// α = mean|w| = (5·0.5 + 4·0.25)/9 = 3.5/9. Center output tap sees
	// all nine weights: 5 positive − 4 negative = +1 effective sign sum.
	want := float32(3.5 / 9.0)
	if got := out.At(0, 0, 1, 1); got < want-1e-4 || got > want+1e-4 {
		t.Fatalf("binarized center tap = %v, want %v", got, want)
	}
	// Latent weights must be restored.
	if w[0] != 0.5 || w[1] != -0.25 {
		t.Fatal("latent weights not restored after forward")
	}
}

func TestBinarizedResNetTrains(t *testing.T) {
	m, err := Build(Config{Arch: "bin-resnet32", Classes: 10, WidthMult: 0.25, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	forwardShape(t, m, 2)
}
