package models

import (
	"fmt"

	"rowhammer/internal/nn"
	"rowhammer/internal/tensor"
)

// vggConfigs describes the feature stacks: positive values are conv
// output widths, -1 is a 2×2 max pool.
var vggConfigs = map[int][]int{
	11: {64, -1, 128, -1, 256, 256, -1, 512, 512, -1, 512, 512, -1},
	16: {64, 64, -1, 128, 128, -1, 256, 256, 256, -1, 512, 512, 512, -1, 512, 512, 512, -1},
}

// VGG builds a batch-normalized VGG-11 or VGG-16 for 3×32×32 inputs.
func VGG(depth, classes int, widthMult float64, seed int64) (*nn.Model, error) {
	cfg, ok := vggConfigs[depth]
	if !ok {
		return nil, fmt.Errorf("models: VGG depth must be 11 or 16, got %d", depth)
	}
	rng := tensor.NewRNG(seed)
	net := nn.NewSequential()
	in := 3
	convIdx := 0
	for _, v := range cfg {
		if v == -1 {
			net.Append(nn.NewMaxPool2D(2, 2))
			continue
		}
		out := scaleWidth(v, widthMult)
		name := fmt.Sprintf("features.%d", convIdx)
		net.Append(
			nn.NewConv2D(name, rng, in, out, 3, 1, 1, true),
			nn.NewBatchNorm2D(name+".bn", out),
			nn.NewReLU(),
		)
		in = out
		convIdx++
	}
	// After five pools a 32×32 input is 1×1 spatially.
	net.Append(nn.NewFlatten(), nn.NewLinear("classifier", rng, in, classes))
	return nn.NewModel(fmt.Sprintf("vgg%d", depth), net, classes, [3]int{3, 32, 32}), nil
}
