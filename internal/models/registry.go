package models

import (
	"fmt"
	"sort"

	"rowhammer/internal/nn"
)

// Config selects an architecture instance.
type Config struct {
	// Arch is one of the registered architecture names, e.g. "resnet20".
	Arch string
	// Classes is the classifier output size.
	Classes int
	// WidthMult scales channel counts (1.0 = paper-faithful widths).
	WidthMult float64
	// Seed drives deterministic weight initialization.
	Seed int64
}

type builder func(classes int, widthMult float64, seed int64) (*nn.Model, error)

var registry = map[string]builder{
	"resnet20": func(c int, w float64, s int64) (*nn.Model, error) { return ResNetCIFAR(20, c, w, s) },
	"resnet32": func(c int, w float64, s int64) (*nn.Model, error) { return ResNetCIFAR(32, c, w, s) },
	"resnet18": func(c int, w float64, s int64) (*nn.Model, error) { return ResNetBasic(18, c, w, s) },
	"resnet34": func(c int, w float64, s int64) (*nn.Model, error) { return ResNetBasic(34, c, w, s) },
	"resnet50": func(c int, w float64, s int64) (*nn.Model, error) { return ResNetBottleneck(50, c, w, s) },
	"vgg11":    func(c int, w float64, s int64) (*nn.Model, error) { return VGG(11, c, w, s) },
	"vgg16":    func(c int, w float64, s int64) (*nn.Model, error) { return VGG(16, c, w, s) },
	"bin-resnet32": func(c int, w float64, s int64) (*nn.Model, error) {
		return BinarizedResNetCIFAR(32, c, w, s)
	},
}

// Build constructs the model named by cfg.Arch.
func Build(cfg Config) (*nn.Model, error) {
	b, ok := registry[cfg.Arch]
	if !ok {
		return nil, fmt.Errorf("models: unknown architecture %q (have %v)", cfg.Arch, Names())
	}
	if cfg.WidthMult <= 0 {
		cfg.WidthMult = 1
	}
	if cfg.Classes <= 0 {
		return nil, fmt.Errorf("models: classes must be positive, got %d", cfg.Classes)
	}
	return b(cfg.Classes, cfg.WidthMult, cfg.Seed)
}

// Names lists the registered architectures in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
