package models

import (
	"fmt"

	"rowhammer/internal/nn"
	"rowhammer/internal/tensor"
)

// BinConv2D is a binarization-aware convolution: the forward pass uses
// sign(W)·α (α = mean |W| per output filter, XNOR-Net style), while the
// backward pass applies the straight-through estimator to the latent
// float weights. In a deployed binarized model each filter's weights
// occupy single bits, which is what makes the binarization-aware
// countermeasure shrink the memory footprint (and with it the maximum
// feasible N_flip).
type BinConv2D struct {
	inner *nn.Conv2D

	// savedBuf is the grow-only stash for the latent float weights while
	// the inner convolution runs with the binarized ones.
	savedBuf []float32
}

var _ nn.Layer = (*BinConv2D)(nil)

// NewBinConv2D constructs a binarization-aware convolution layer.
func NewBinConv2D(name string, rng *tensor.RNG, inC, outC, k, stride, pad int) *BinConv2D {
	return &BinConv2D{inner: nn.NewConv2D(name, rng, inC, outC, k, stride, pad, false)}
}

// binarize replaces the inner weights with sign(W)·α and returns the
// saved latent weights.
func (b *BinConv2D) binarize() []float32 {
	w := b.inner.Weight.W
	if cap(b.savedBuf) < w.Len() {
		b.savedBuf = make([]float32, w.Len())
	}
	saved := b.savedBuf[:w.Len()]
	copy(saved, w.Data())
	outC := w.Dim(0)
	perFilter := w.Len() / outC
	d := w.Data()
	for oc := 0; oc < outC; oc++ {
		seg := d[oc*perFilter : (oc+1)*perFilter]
		var sum float64
		for _, v := range seg {
			if v < 0 {
				sum -= float64(v)
			} else {
				sum += float64(v)
			}
		}
		alpha := float32(sum / float64(perFilter))
		for i, v := range seg {
			if v >= 0 {
				seg[i] = alpha
			} else {
				seg[i] = -alpha
			}
		}
	}
	return saved
}

// Forward implements nn.Layer.
func (b *BinConv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	saved := b.binarize()
	out := b.inner.Forward(x, train)
	copy(b.inner.Weight.W.Data(), saved)
	return out
}

// Backward implements nn.Layer with the straight-through estimator:
// gradients computed against the binarized weights flow unchanged to
// the latent weights, masked to |w| ≤ 1 (the canonical STE clip).
func (b *BinConv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	saved := b.binarize()
	gradIn := b.inner.Backward(grad)
	w := b.inner.Weight.W.Data()
	copy(w, saved)
	g := b.inner.Weight.G.Data()
	for i, v := range w {
		if v > 1 || v < -1 {
			g[i] = 0
		}
	}
	return gradIn
}

// Params implements nn.Layer.
func (b *BinConv2D) Params() []*nn.Param { return b.inner.Params() }

// CloneLayer implements nn.Cloner: the latent float weights are copied,
// the binarization stash is rebuilt lazily.
func (b *BinConv2D) CloneLayer() nn.Layer {
	return &BinConv2D{inner: nn.CloneLayerOf(b.inner).(*nn.Conv2D)}
}

// binBasicBlock is a basic residual block with binarized convolutions.
func binBasicBlock(name string, rng *tensor.RNG, in, out, stride int) nn.Layer {
	main := nn.NewSequential(
		NewBinConv2D(name+".conv1", rng, in, out, 3, stride, 1),
		nn.NewBatchNorm2D(name+".bn1", out),
		nn.NewReLU(),
		NewBinConv2D(name+".conv2", rng, out, out, 3, 1, 1),
		nn.NewBatchNorm2D(name+".bn2", out),
	)
	var shortcut nn.Layer
	if stride != 1 || in != out {
		shortcut = nn.NewSequential(
			NewBinConv2D(name+".downsample.0", rng, in, out, 1, stride, 0),
			nn.NewBatchNorm2D(name+".downsample.1", out),
		)
	}
	return nn.NewResidual(main, shortcut)
}

// BinarizedResNetCIFAR builds a CIFAR-style ResNet whose convolutions
// are binarization-aware (the §VI-A countermeasure).
func BinarizedResNetCIFAR(depth, classes int, widthMult float64, seed int64) (*nn.Model, error) {
	if (depth-2)%6 != 0 {
		return nil, fmt.Errorf("models: CIFAR ResNet depth must be 6n+2, got %d", depth)
	}
	n := (depth - 2) / 6
	rng := tensor.NewRNG(seed)
	widths := []int{scaleWidth(16, widthMult), scaleWidth(32, widthMult), scaleWidth(64, widthMult)}
	net := nn.NewSequential(
		nn.NewConv2D("conv1", rng, 3, widths[0], 3, 1, 1, false), // stem stays full precision
		nn.NewBatchNorm2D("bn1", widths[0]),
		nn.NewReLU(),
	)
	in := widths[0]
	for stage := 0; stage < 3; stage++ {
		for b := 0; b < n; b++ {
			stride := 1
			if stage > 0 && b == 0 {
				stride = 2
			}
			name := fmt.Sprintf("layer%d.%d", stage+1, b)
			net.Append(binBasicBlock(name, rng, in, widths[stage], stride))
			in = widths[stage]
		}
	}
	net.Append(nn.NewGlobalAvgPool(), nn.NewLinear("fc", rng, in, classes))
	return nn.NewModel(fmt.Sprintf("bin-resnet%d", depth), net, classes, [3]int{3, 32, 32}), nil
}
