// Package models builds the DNN architectures the paper attacks:
// CIFAR-style ResNet-20/32, ImageNet-style ResNet-18/34/50 (adapted to
// 32×32 inputs), VGG-11/16, and a binarized ResNet used by the
// binarization-aware-training countermeasure.
//
// Every builder accepts a width multiplier so experiments can trade
// fidelity (true channel counts, true page counts) against CPU runtime;
// the parameter *ordering* — the property the page-grouping constraint
// of the attack depends on — is identical at every width.
package models

import (
	"fmt"

	"rowhammer/internal/nn"
	"rowhammer/internal/tensor"
)

// scaleWidth applies the width multiplier with a floor of 4 channels.
func scaleWidth(w int, mult float64) int {
	s := int(float64(w) * mult)
	if s < 4 {
		s = 4
	}
	return s
}

// basicBlock builds a 3×3+3×3 residual block (ResNet-18/20/32/34 style).
func basicBlock(name string, rng *tensor.RNG, in, out, stride int) nn.Layer {
	main := nn.NewSequential(
		nn.NewConv2D(name+".conv1", rng, in, out, 3, stride, 1, false),
		nn.NewBatchNorm2D(name+".bn1", out),
		nn.NewReLU(),
		nn.NewConv2D(name+".conv2", rng, out, out, 3, 1, 1, false),
		nn.NewBatchNorm2D(name+".bn2", out),
	)
	var shortcut nn.Layer
	if stride != 1 || in != out {
		shortcut = nn.NewSequential(
			nn.NewConv2D(name+".downsample.0", rng, in, out, 1, stride, 0, false),
			nn.NewBatchNorm2D(name+".downsample.1", out),
		)
	}
	return nn.NewResidual(main, shortcut)
}

// bottleneckBlock builds a 1×1-3×3-1×1 residual block (ResNet-50 style)
// with expansion factor 4.
func bottleneckBlock(name string, rng *tensor.RNG, in, mid, stride int) nn.Layer {
	out := mid * 4
	main := nn.NewSequential(
		nn.NewConv2D(name+".conv1", rng, in, mid, 1, 1, 0, false),
		nn.NewBatchNorm2D(name+".bn1", mid),
		nn.NewReLU(),
		nn.NewConv2D(name+".conv2", rng, mid, mid, 3, stride, 1, false),
		nn.NewBatchNorm2D(name+".bn2", mid),
		nn.NewReLU(),
		nn.NewConv2D(name+".conv3", rng, mid, out, 1, 1, 0, false),
		nn.NewBatchNorm2D(name+".bn3", out),
	)
	var shortcut nn.Layer
	if stride != 1 || in != out {
		shortcut = nn.NewSequential(
			nn.NewConv2D(name+".downsample.0", rng, in, out, 1, stride, 0, false),
			nn.NewBatchNorm2D(name+".downsample.1", out),
		)
	}
	return nn.NewResidual(main, shortcut)
}

// ResNetCIFAR builds the CIFAR-style ResNet of He et al. with
// depth = 6n+2 (20, 32, ...) for 3×32×32 inputs.
func ResNetCIFAR(depth, classes int, widthMult float64, seed int64) (*nn.Model, error) {
	if (depth-2)%6 != 0 {
		return nil, fmt.Errorf("models: CIFAR ResNet depth must be 6n+2, got %d", depth)
	}
	n := (depth - 2) / 6
	rng := tensor.NewRNG(seed)
	widths := []int{scaleWidth(16, widthMult), scaleWidth(32, widthMult), scaleWidth(64, widthMult)}

	net := nn.NewSequential(
		nn.NewConv2D("conv1", rng, 3, widths[0], 3, 1, 1, false),
		nn.NewBatchNorm2D("bn1", widths[0]),
		nn.NewReLU(),
	)
	in := widths[0]
	for stage := 0; stage < 3; stage++ {
		for b := 0; b < n; b++ {
			stride := 1
			if stage > 0 && b == 0 {
				stride = 2
			}
			name := fmt.Sprintf("layer%d.%d", stage+1, b)
			net.Append(basicBlock(name, rng, in, widths[stage], stride))
			in = widths[stage]
		}
	}
	net.Append(nn.NewGlobalAvgPool(), nn.NewLinear("fc", rng, in, classes))
	return nn.NewModel(fmt.Sprintf("resnet%d", depth), net, classes, [3]int{3, 32, 32}), nil
}

// ResNetBasic builds an ImageNet-style basic-block ResNet (18 or 34)
// adapted to 32×32 inputs (3×3 stem, no max pool), the standard CIFAR
// adaptation used by the reference repository the paper takes its
// ResNet-18 weights from.
func ResNetBasic(depth, classes int, widthMult float64, seed int64) (*nn.Model, error) {
	var blocks []int
	switch depth {
	case 18:
		blocks = []int{2, 2, 2, 2}
	case 34:
		blocks = []int{3, 4, 6, 3}
	default:
		return nil, fmt.Errorf("models: basic-block ResNet depth must be 18 or 34, got %d", depth)
	}
	rng := tensor.NewRNG(seed)
	widths := []int{
		scaleWidth(64, widthMult), scaleWidth(128, widthMult),
		scaleWidth(256, widthMult), scaleWidth(512, widthMult),
	}
	net := nn.NewSequential(
		nn.NewConv2D("conv1", rng, 3, widths[0], 3, 1, 1, false),
		nn.NewBatchNorm2D("bn1", widths[0]),
		nn.NewReLU(),
	)
	in := widths[0]
	for stage := 0; stage < 4; stage++ {
		for b := 0; b < blocks[stage]; b++ {
			stride := 1
			if stage > 0 && b == 0 {
				stride = 2
			}
			name := fmt.Sprintf("layer%d.%d", stage+1, b)
			net.Append(basicBlock(name, rng, in, widths[stage], stride))
			in = widths[stage]
		}
	}
	net.Append(nn.NewGlobalAvgPool(), nn.NewLinear("fc", rng, in, classes))
	return nn.NewModel(fmt.Sprintf("resnet%d", depth), net, classes, [3]int{3, 32, 32}), nil
}

// ResNetBottleneck builds a bottleneck ResNet (50) adapted to 32×32
// inputs.
func ResNetBottleneck(depth, classes int, widthMult float64, seed int64) (*nn.Model, error) {
	if depth != 50 {
		return nil, fmt.Errorf("models: bottleneck ResNet depth must be 50, got %d", depth)
	}
	blocks := []int{3, 4, 6, 3}
	rng := tensor.NewRNG(seed)
	mids := []int{
		scaleWidth(64, widthMult), scaleWidth(128, widthMult),
		scaleWidth(256, widthMult), scaleWidth(512, widthMult),
	}
	stem := scaleWidth(64, widthMult)
	net := nn.NewSequential(
		nn.NewConv2D("conv1", rng, 3, stem, 3, 1, 1, false),
		nn.NewBatchNorm2D("bn1", stem),
		nn.NewReLU(),
	)
	in := stem
	for stage := 0; stage < 4; stage++ {
		for b := 0; b < blocks[stage]; b++ {
			stride := 1
			if stage > 0 && b == 0 {
				stride = 2
			}
			name := fmt.Sprintf("layer%d.%d", stage+1, b)
			net.Append(bottleneckBlock(name, rng, in, mids[stage], stride))
			in = mids[stage] * 4
		}
	}
	net.Append(nn.NewGlobalAvgPool(), nn.NewLinear("fc", rng, in, classes))
	return nn.NewModel("resnet50", net, classes, [3]int{3, 32, 32}), nil
}
