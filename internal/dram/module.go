package dram

import (
	"fmt"
	"math"

	"rowhammer/internal/tensor"
)

// FlipDirection is the only direction a vulnerable cell can flip in.
type FlipDirection int

// Flip directions.
const (
	ZeroToOne FlipDirection = iota + 1
	OneToZero
)

// String implements fmt.Stringer.
func (d FlipDirection) String() string {
	if d == ZeroToOne {
		return "0->1"
	}
	return "1->0"
}

// WeakCell is one vulnerable DRAM cell within a row.
type WeakCell struct {
	// BitInRow is the bit index within the 8 KB row (0 … RowBytes*8−1).
	BitInRow int
	// Dir is the cell's fixed flip direction.
	Dir FlipDirection
	// Threshold is the normalized disturbance (0 … 1] needed to flip
	// the cell; 1 corresponds to a full double-sided hammer without TRR
	// interference.
	Threshold float64
}

// FlipEvent records a bit flip that hammering caused in memory.
type FlipEvent struct {
	// Addr is the physical byte address holding the flipped bit.
	Addr int
	// Bit is the bit index within that byte (0 = LSB).
	Bit int
	// Dir is the observed flip direction.
	Dir FlipDirection
}

// Module is a simulated DRAM module: flat physical byte storage plus a
// deterministic sparse map of vulnerable cells derived from the device
// profile.
type Module struct {
	geom    Geometry
	profile DeviceProfile
	seed    int64
	mem     []byte

	// weakCache memoizes per-row weak-cell lists, generated lazily and
	// deterministically from (seed, bank, row).
	weakCache map[int64][]WeakCell
}

// NewModule builds a module with the given geometry and device profile.
// All memory starts zeroed. The seed fixes the vulnerable-cell layout.
func NewModule(geom Geometry, profile DeviceProfile, seed int64) (*Module, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	return &Module{
		geom:      geom,
		profile:   profile,
		seed:      seed,
		mem:       make([]byte, geom.Size()),
		weakCache: make(map[int64][]WeakCell),
	}, nil
}

// NewModuleForSize is a convenience wrapper using a 16-bank geometry
// covering size bytes.
func NewModuleForSize(size int, profile DeviceProfile, seed int64) (*Module, error) {
	return NewModule(GeometryForSize(size, 16), profile, seed)
}

// Geometry returns the module geometry.
func (m *Module) Geometry() Geometry { return m.geom }

// Profile returns the device profile.
func (m *Module) Profile() DeviceProfile { return m.profile }

// Size returns the capacity in bytes.
func (m *Module) Size() int { return len(m.mem) }

// Read returns the byte at a physical address.
func (m *Module) Read(addr int) byte { return m.mem[addr] }

// Write stores a byte at a physical address.
func (m *Module) Write(addr int, v byte) { m.mem[addr] = v }

// ReadRange copies n bytes starting at addr.
func (m *Module) ReadRange(addr, n int) []byte {
	out := make([]byte, n)
	copy(out, m.mem[addr:addr+n])
	return out
}

// WriteRange stores buf starting at addr.
func (m *Module) WriteRange(addr int, buf []byte) {
	copy(m.mem[addr:addr+len(buf)], buf)
}

// FillRow sets every byte of a row to v.
func (m *Module) FillRow(bank, row int, v byte) {
	base := m.geom.RowBaseAddr(bank, row)
	seg := m.mem[base : base+RowBytes]
	for i := range seg {
		seg[i] = v
	}
}

// weakCells returns the vulnerable cells of a row, generated lazily.
// The per-row RNG stream is keyed by (seed, bank, row) so the layout is
// stable regardless of query order.
func (m *Module) weakCells(bank, row int) []WeakCell {
	key := int64(bank)<<32 | int64(row)
	if cells, ok := m.weakCache[key]; ok {
		return cells
	}
	const mix = int64(-0x61C8864680B583EB) // golden-ratio mixing constant
	rng := tensor.NewRNG(m.seed ^ (key*mix + 0x2545F4914F6CDD1D))
	// A row holds two OS pages, so the expected weak count per row is
	// 2× the per-page average. Sample the count from a Poisson
	// distribution via inversion.
	lambda := m.profile.FlipsPerPage * 2
	count := poisson(rng, lambda)
	cells := make([]WeakCell, 0, count)
	seen := make(map[int]bool, count)
	for len(cells) < count {
		bit := rng.Intn(RowBytes * 8)
		if seen[bit] {
			continue
		}
		seen[bit] = true
		dir := ZeroToOne
		if rng.Float64() < 0.5 {
			dir = OneToZero
		}
		// Thresholds live in (0.55, 1]: a full double-sided hammer
		// (disturbance 1.0) fires every weak cell, while single-sided
		// disturbance (0.5) fires none — matching the observation that
		// DDR3 flips need the sandwich pattern and that victim rows
		// adjacent to a single aggressor survive.
		cells = append(cells, WeakCell{
			BitInRow:  bit,
			Dir:       dir,
			Threshold: 0.55 + 0.45*rng.Float64(),
		})
	}
	m.weakCache[key] = cells
	return cells
}

// poisson samples a Poisson variate by inversion (adequate for the
// λ ≤ ~250 this simulator uses).
func poisson(rng *tensor.RNG, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > int(lambda*10+100) { // numeric safety net
			return k
		}
	}
}

// WeakCellCount returns how many vulnerable cells a row contains
// (useful for statistics without triggering flips).
func (m *Module) WeakCellCount(bank, row int) int {
	return len(m.weakCells(bank, row))
}

// trrEscapeFraction models the Target Row Refresh sampler: with A
// simultaneous aggressors and a sampler that can track K of them, a
// (A−K)/A fraction of the hammer activity escapes mitigation. Patterns
// with A ≤ K are fully mitigated — the reason double-sided Rowhammer
// fails on DDR4 (§IV-A2).
func (m *Module) trrEscapeFraction(aggressors int) float64 {
	k := m.profile.TRRSamplerSize
	if k <= 0 {
		return 1
	}
	if aggressors <= k {
		return 0
	}
	return float64(aggressors-k) / float64(aggressors)
}

// Hammer activates the given aggressor rows of one bank repeatedly.
// intensity ∈ (0, 1] is the per-aggressor activation budget normalized
// to the refresh window (1 = the full hammer the paper's profiling
// uses). Victim rows are every row adjacent to an aggressor that is not
// itself an aggressor; each receives disturbance proportional to its
// adjacent aggressor count, scaled by the TRR escape fraction.
// Vulnerable cells whose threshold is exceeded and whose stored bit
// matches the cell's flip direction are flipped in memory; the returned
// events list every flip applied.
func (m *Module) Hammer(bank int, aggressorRows []int, intensity float64) []FlipEvent {
	if intensity <= 0 {
		return nil
	}
	if intensity > 1 {
		intensity = 1
	}
	isAggr := make(map[int]bool, len(aggressorRows))
	for _, r := range aggressorRows {
		isAggr[r] = true
	}
	// Disturbance per victim: 0.5 per adjacent aggressor, so the
	// classic double-sided sandwich reaches 1.0.
	disturb := make(map[int]float64)
	for _, r := range aggressorRows {
		for _, v := range []int{r - 1, r + 1} {
			if v < 0 || v >= m.geom.RowsPerBank || isAggr[v] {
				continue
			}
			disturb[v] += 0.5
		}
	}
	escape := m.trrEscapeFraction(len(aggressorRows))
	var events []FlipEvent
	for victim, d := range disturb {
		eff := d * intensity * escape
		if eff <= 0 {
			continue
		}
		base := m.geom.RowBaseAddr(bank, victim)
		for _, cell := range m.weakCells(bank, victim) {
			if cell.Threshold > eff {
				continue
			}
			byteOff := cell.BitInRow / 8
			bit := cell.BitInRow % 8
			addr := base + byteOff
			cur := m.mem[addr] & (1 << bit)
			switch cell.Dir {
			case ZeroToOne:
				if cur == 0 {
					m.mem[addr] |= 1 << bit
					events = append(events, FlipEvent{Addr: addr, Bit: bit, Dir: ZeroToOne})
				}
			case OneToZero:
				if cur != 0 {
					m.mem[addr] &^= 1 << bit
					events = append(events, FlipEvent{Addr: addr, Bit: bit, Dir: OneToZero})
				}
			}
		}
	}
	return events
}

// HammerDoubleSided sandwiches the victim row between two aggressors —
// the DDR3 profiling pattern.
func (m *Module) HammerDoubleSided(bank, victimRow int, intensity float64) ([]FlipEvent, error) {
	if victimRow <= 0 || victimRow >= m.geom.RowsPerBank-1 {
		return nil, fmt.Errorf("dram: victim row %d has no neighbors on both sides", victimRow)
	}
	return m.Hammer(bank, []int{victimRow - 1, victimRow + 1}, intensity), nil
}

// HammerNSided runs the TRRespass-style many-sided pattern: sides
// aggressor rows at stride 2 starting from startRow (aggressor, victim,
// aggressor, …). The paper uses 15 sides for DDR4 profiling and 7 for
// the online attack.
func (m *Module) HammerNSided(bank, startRow, sides int, intensity float64) ([]FlipEvent, error) {
	if sides < 1 {
		return nil, fmt.Errorf("dram: sides must be ≥ 1, got %d", sides)
	}
	last := startRow + 2*(sides-1)
	if startRow < 0 || last >= m.geom.RowsPerBank {
		return nil, fmt.Errorf("dram: n-sided pattern [%d..%d] out of range", startRow, last)
	}
	rows := make([]int, sides)
	for i := range rows {
		rows[i] = startRow + 2*i
	}
	return m.Hammer(bank, rows, intensity), nil
}
