package dram

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// FlipDirection is the only direction a vulnerable cell can flip in.
type FlipDirection int

// Flip directions.
const (
	ZeroToOne FlipDirection = iota + 1
	OneToZero
)

// String implements fmt.Stringer.
func (d FlipDirection) String() string {
	if d == ZeroToOne {
		return "0->1"
	}
	return "1->0"
}

// WeakCell is one vulnerable DRAM cell within a row.
type WeakCell struct {
	// BitInRow is the bit index within the 8 KB row (0 … RowBytes*8−1).
	BitInRow int
	// Dir is the cell's fixed flip direction.
	Dir FlipDirection
	// Threshold is the normalized disturbance (0 … 1] needed to flip
	// the cell; 1 corresponds to a full double-sided hammer without TRR
	// interference.
	Threshold float64
}

// FlipEvent records a bit flip that hammering caused in memory.
type FlipEvent struct {
	// Addr is the physical byte address holding the flipped bit.
	Addr int
	// Bit is the bit index within that byte (0 = LSB).
	Bit int
	// Dir is the observed flip direction.
	Dir FlipDirection
}

// Module is a simulated DRAM module: flat physical byte storage plus a
// deterministic sparse map of vulnerable cells derived from the device
// profile.
type Module struct {
	geom    Geometry
	profile DeviceProfile
	seed    int64
	mem     []byte

	// weakCache memoizes per-row weak-cell lists, generated lazily and
	// deterministically from (seed, bank, row). weakMu guards the map so
	// hammer experiments on disjoint row ranges (the parallel templating
	// engine) can run concurrently; the cached slices themselves are
	// immutable once published.
	weakMu    sync.Mutex
	weakCache map[int64][]WeakCell
	// seenBits is weakMu-guarded scratch for duplicate-bit rejection
	// while sampling a row; dirty bits are cleared before returning.
	seenBits []uint64

	// fault is the optional probabilistic-firing model (see fault.go);
	// the zero value keeps hammering fully deterministic per cell.
	fault FaultModel
	// passCount tracks per-(bank,row) disturbance passes for the
	// counter-based fault streams; weakMu-guarded like weakCache.
	passCount map[int64]uint64
}

// NewModule builds a module with the given geometry and device profile.
// All memory starts zeroed. The seed fixes the vulnerable-cell layout.
func NewModule(geom Geometry, profile DeviceProfile, seed int64) (*Module, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	return &Module{
		geom:      geom,
		profile:   profile,
		seed:      seed,
		mem:       make([]byte, geom.Size()),
		weakCache: make(map[int64][]WeakCell),
	}, nil
}

// NewModuleForSize is a convenience wrapper using a 16-bank geometry
// covering size bytes.
func NewModuleForSize(size int, profile DeviceProfile, seed int64) (*Module, error) {
	return NewModule(GeometryForSize(size, 16), profile, seed)
}

// Geometry returns the module geometry.
func (m *Module) Geometry() Geometry { return m.geom }

// Profile returns the device profile.
func (m *Module) Profile() DeviceProfile { return m.profile }

// Size returns the capacity in bytes.
func (m *Module) Size() int { return len(m.mem) }

// Read returns the byte at a physical address.
func (m *Module) Read(addr int) byte { return m.mem[addr] }

// Write stores a byte at a physical address.
func (m *Module) Write(addr int, v byte) { m.mem[addr] = v }

// ReadRange copies n bytes starting at addr.
func (m *Module) ReadRange(addr, n int) []byte {
	out := make([]byte, n)
	copy(out, m.mem[addr:addr+n])
	return out
}

// ReadRangeInto copies len(buf) bytes starting at addr into buf — the
// allocation-free twin of ReadRange for steady-state readback loops.
func (m *Module) ReadRangeInto(addr int, buf []byte) {
	copy(buf, m.mem[addr:addr+len(buf)])
}

// WriteRange stores buf starting at addr.
func (m *Module) WriteRange(addr int, buf []byte) {
	copy(m.mem[addr:addr+len(buf)], buf)
}

// FillRow sets every byte of a row to v.
func (m *Module) FillRow(bank, row int, v byte) {
	base := m.geom.RowBaseAddr(bank, row)
	seg := m.mem[base : base+RowBytes]
	for i := range seg {
		seg[i] = v
	}
}

// weakCells returns the vulnerable cells of a row, generated lazily.
// The per-row RNG stream is keyed by (seed, bank, row) so the layout is
// stable regardless of query order. Safe for concurrent callers.
func (m *Module) weakCells(bank, row int) []WeakCell {
	key := int64(bank)<<32 | int64(row)
	m.weakMu.Lock()
	defer m.weakMu.Unlock()
	if cells, ok := m.weakCache[key]; ok {
		return cells
	}
	const mix = int64(-0x61C8864680B583EB) // golden-ratio mixing constant
	rng := newCellRNG(uint64(m.seed ^ (key*mix + 0x2545F4914F6CDD1D)))
	// A row holds two OS pages, so the expected weak count per row is
	// 2× the per-page average. Sample the count from a Poisson
	// distribution via inversion.
	lambda := m.profile.FlipsPerPage * 2
	count := poisson(&rng, lambda)
	cells := make([]WeakCell, 0, count)
	if m.seenBits == nil {
		m.seenBits = make([]uint64, RowBytes*8/64)
	}
	for len(cells) < count {
		bit := rng.intn(RowBytes * 8)
		if m.seenBits[bit/64]&(1<<(bit%64)) != 0 {
			continue
		}
		m.seenBits[bit/64] |= 1 << (bit % 64)
		dir := ZeroToOne
		if rng.float64() < 0.5 {
			dir = OneToZero
		}
		// Thresholds live in (0.55, 1]: a full double-sided hammer
		// (disturbance 1.0) fires every weak cell, while single-sided
		// disturbance (0.5) fires none — matching the observation that
		// DDR3 flips need the sandwich pattern and that victim rows
		// adjacent to a single aggressor survive.
		cells = append(cells, WeakCell{
			BitInRow:  bit,
			Dir:       dir,
			Threshold: 0.55 + 0.45*rng.float64(),
		})
	}
	for _, c := range cells {
		m.seenBits[c.BitInRow/64] &^= 1 << (c.BitInRow % 64)
	}
	m.weakCache[key] = cells
	return cells
}

// cellRNG is a splitmix64 stream for weak-cell generation. Keying one
// costs a single add, versus the ~6 µs lagged-Fibonacci seeding of
// math/rand — which, at one fresh generator per row, used to dominate
// whole-buffer profiling wall-clock.
type cellRNG uint64

// newCellRNG scrambles the row key through the splitmix finalizer
// before using it as a stream start. Without this, key streams that
// differ by a multiple of the additive constant are shifted windows of
// one another — adjacent rows would sample near-identical cell
// positions, collapsing flip diversity across the buffer. The same
// finalized-key rule applies to every RNG keyed off structured
// coordinates in this package: the fault-injection streams in fault.go
// chain the identical finalizer over (seed, bank, row, pass, bit) for
// the same reason.
func newCellRNG(key uint64) cellRNG {
	key = (key ^ key>>30) * 0xBF58476D1CE4E5B9
	key = (key ^ key>>27) * 0x94D049BB133111EB
	return cellRNG(key ^ key>>31)
}

func (r *cellRNG) next() uint64 {
	*r += 0x9E3779B97F4A7C15
	z := uint64(*r)
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

func (r *cellRNG) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn is exact (bias-free) for the power-of-two bounds used here.
func (r *cellRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// poisson samples a Poisson variate by inversion (adequate for the
// λ ≤ ~250 this simulator uses).
func poisson(rng *cellRNG, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.float64()
		if p <= l {
			return k
		}
		k++
		if k > int(lambda*10+100) { // numeric safety net
			return k
		}
	}
}

// WeakCellCount returns how many vulnerable cells a row contains
// (useful for statistics without triggering flips).
func (m *Module) WeakCellCount(bank, row int) int {
	return len(m.weakCells(bank, row))
}

// trrEscapeFraction models the Target Row Refresh sampler: with A
// simultaneous aggressors and a sampler that can track K of them, a
// (A−K)/A fraction of the hammer activity escapes mitigation. Patterns
// with A ≤ K are fully mitigated — the reason double-sided Rowhammer
// fails on DDR4 (§IV-A2).
func (m *Module) trrEscapeFraction(aggressors int) float64 {
	k := m.profile.TRRSamplerSize
	if k <= 0 {
		return 1
	}
	if aggressors <= k {
		return 0
	}
	return float64(aggressors-k) / float64(aggressors)
}

// Hammer activates the given aggressor rows of one bank repeatedly.
// intensity ∈ (0, 1] is the per-aggressor activation budget normalized
// to the refresh window (1 = the full hammer the paper's profiling
// uses). Victim rows are every row adjacent to an aggressor that is not
// itself an aggressor; each receives disturbance proportional to its
// adjacent aggressor count, scaled by the TRR escape fraction.
// Vulnerable cells whose threshold is exceeded and whose stored bit
// matches the cell's flip direction are flipped in memory; the returned
// events list every flip applied.
func (m *Module) Hammer(bank int, aggressorRows []int, intensity float64) []FlipEvent {
	var events []FlipEvent
	m.hammer(bank, aggressorRows, intensity, &events)
	return events
}

// HammerQuiet is Hammer without the event log. The templating engine's
// hot loop learns flips by reading the victim pages back, so collecting
// events per hammer would only be allocation churn; this variant runs
// allocation-free for patterns up to 32 aggressors. Concurrent calls on
// non-overlapping row ranges are safe: flips are read-modify-writes on
// disjoint victim rows.
func (m *Module) HammerQuiet(bank int, aggressorRows []int, intensity float64) {
	m.hammer(bank, aggressorRows, intensity, nil)
}

// hammer is the shared hammer core. Victim discovery uses small sorted
// stack scratch instead of maps: candidate victims (aggressor neighbors)
// are collected, sorted, and merged so a row sandwiched by two
// aggressors accumulates 0.5 disturbance from each.
func (m *Module) hammer(bank int, aggressorRows []int, intensity float64, events *[]FlipEvent) {
	if intensity <= 0 || len(aggressorRows) == 0 {
		return
	}
	if intensity > 1 {
		intensity = 1
	}
	var candBuf [64]int
	cands := candBuf[:0]
	if 2*len(aggressorRows) > len(candBuf) {
		cands = make([]int, 0, 2*len(aggressorRows))
	}
	for _, r := range aggressorRows {
		for _, v := range [2]int{r - 1, r + 1} {
			if v < 0 || v >= m.geom.RowsPerBank || containsRow(aggressorRows, v) {
				continue
			}
			cands = append(cands, v)
		}
	}
	sort.Ints(cands)
	escape := m.trrEscapeFraction(len(aggressorRows))
	faulty := m.fault.enabled()
	for i := 0; i < len(cands); {
		victim := cands[i]
		j := i
		// Disturbance per victim: 0.5 per adjacent aggressor, so the
		// classic double-sided sandwich reaches 1.0.
		d := 0.0
		for j < len(cands) && cands[j] == victim {
			d += 0.5
			j++
		}
		i = j
		eff := d * intensity * escape
		if eff <= 0 {
			continue
		}
		// Fault injection: advance the row's pass counter and apply the
		// per-pass TRR-escape jitter. Both draws come from finalized
		// counter-based streams (fault.go), so they are pure functions of
		// (seed, bank, row, pass) and independent of scheduling.
		var pass uint64
		if faulty {
			m.weakMu.Lock()
			pass = m.nextPassLocked(bank, victim)
			m.weakMu.Unlock()
			if jit := m.fault.TRRJitter; jit > 0 {
				u := faultUniform(m.fault.Seed, bank, victim, pass, -1)
				eff *= 1 + jit*(2*u-1)
				if eff <= 0 {
					continue
				}
			}
		}
		base := m.geom.RowBaseAddr(bank, victim)
		for _, cell := range m.weakCells(bank, victim) {
			if cell.Threshold > eff {
				continue
			}
			if faulty && m.fault.FlipFailProb > 0 &&
				faultUniform(m.fault.Seed, bank, victim, pass, cell.BitInRow) < m.fault.FlipFailProb {
				continue // this pass failed to fire the cell; retry next pass
			}
			byteOff := cell.BitInRow / 8
			bit := cell.BitInRow % 8
			addr := base + byteOff
			cur := m.mem[addr] & (1 << bit)
			switch cell.Dir {
			case ZeroToOne:
				if cur == 0 {
					m.mem[addr] |= 1 << bit
					if events != nil {
						*events = append(*events, FlipEvent{Addr: addr, Bit: bit, Dir: ZeroToOne})
					}
				}
			case OneToZero:
				if cur != 0 {
					m.mem[addr] &^= 1 << bit
					if events != nil {
						*events = append(*events, FlipEvent{Addr: addr, Bit: bit, Dir: OneToZero})
					}
				}
			}
		}
	}
}

// containsRow reports whether rows (a short aggressor list) contains r.
func containsRow(rows []int, r int) bool {
	for _, x := range rows {
		if x == r {
			return true
		}
	}
	return false
}

// HammerDoubleSided sandwiches the victim row between two aggressors —
// the DDR3 profiling pattern.
func (m *Module) HammerDoubleSided(bank, victimRow int, intensity float64) ([]FlipEvent, error) {
	if victimRow <= 0 || victimRow >= m.geom.RowsPerBank-1 {
		return nil, fmt.Errorf("dram: victim row %d has no neighbors on both sides", victimRow)
	}
	return m.Hammer(bank, []int{victimRow - 1, victimRow + 1}, intensity), nil
}

// HammerNSided runs the TRRespass-style many-sided pattern: sides
// aggressor rows at stride 2 starting from startRow (aggressor, victim,
// aggressor, …). The paper uses 15 sides for DDR4 profiling and 7 for
// the online attack.
func (m *Module) HammerNSided(bank, startRow, sides int, intensity float64) ([]FlipEvent, error) {
	if sides < 1 {
		return nil, fmt.Errorf("dram: sides must be ≥ 1, got %d", sides)
	}
	last := startRow + 2*(sides-1)
	if startRow < 0 || last >= m.geom.RowsPerBank {
		return nil, fmt.Errorf("dram: n-sided pattern [%d..%d] out of range", startRow, last)
	}
	rows := make([]int, sides)
	for i := range rows {
		rows[i] = startRow + 2*i
	}
	return m.Hammer(bank, rows, intensity), nil
}
