package dram

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"rowhammer/internal/tensor"
)

// FlipDirection is the only direction a vulnerable cell can flip in.
type FlipDirection int

// Flip directions.
const (
	ZeroToOne FlipDirection = iota + 1
	OneToZero
)

// String implements fmt.Stringer.
func (d FlipDirection) String() string {
	if d == ZeroToOne {
		return "0->1"
	}
	return "1->0"
}

// WeakCell is one vulnerable DRAM cell within a row.
type WeakCell struct {
	// BitInRow is the bit index within the 8 KB row (0 … RowBytes*8−1).
	BitInRow int
	// Dir is the cell's fixed flip direction.
	Dir FlipDirection
	// Threshold is the normalized disturbance (0 … 1] needed to flip
	// the cell; 1 corresponds to a full double-sided hammer without TRR
	// interference.
	Threshold float64
}

// FlipEvent records a bit flip that hammering caused in memory.
type FlipEvent struct {
	// Addr is the physical byte address holding the flipped bit.
	Addr int
	// Bit is the bit index within that byte (0 = LSB).
	Bit int
	// Dir is the observed flip direction.
	Dir FlipDirection
}

// Module is a simulated DRAM module: sparse, lazily materialized
// physical page storage (see sparse.go) plus a deterministic sparse map
// of vulnerable cells derived from the device profile. Untouched pages
// read as the zero fill pattern without ever allocating, so modules of
// multi-GB geometry cost memory proportional to the rows actually
// touched.
type Module struct {
	geom    Geometry
	profile DeviceProfile
	seed    int64
	store   *pageStore

	// weakCache memoizes per-row weak-cell lists, generated lazily and
	// deterministically from (seed, bank, row). weakMu guards the map so
	// hammer experiments on disjoint row ranges (the parallel templating
	// engine) can run concurrently; the cached slices themselves are
	// immutable once published. The cache is bounded: a whole-module
	// templating sweep touches every row once, and memoizing millions of
	// cell lists would make profiling RSS scale with geometry again, so
	// when the cache exceeds weakCacheLimit rows it is dropped and
	// rebuilt — cells are a pure function of (seed, bank, row), so a
	// regeneration is bit-identical.
	weakMu    sync.Mutex
	weakCache map[int64][]WeakCell
	// seenBits is weakMu-guarded scratch for duplicate-bit rejection
	// while sampling a row; dirty bits are cleared before returning.
	seenBits []uint64

	// fault is the optional probabilistic-firing model (see fault.go);
	// the zero value keeps hammering fully deterministic per cell.
	fault FaultModel
	// passCount tracks per-(bank,row) disturbance passes for the
	// counter-based fault streams; weakMu-guarded like weakCache.
	passCount map[int64]uint64
}

// weakCacheLimit bounds the memoized weak-cell rows (≈ tens of MB at
// Table I densities). Profiling sweeps revisit a row only within a
// small neighborhood of experiments, so a bounded cache keeps the hit
// rate while whole-module sweeps stay O(touched working set).
const weakCacheLimit = 32768

// NewModule builds a module with the given geometry and device profile.
// All memory starts zeroed. The seed fixes the vulnerable-cell layout.
func NewModule(geom Geometry, profile DeviceProfile, seed int64) (*Module, error) {
	return newModule(geom, profile, seed, false)
}

// NewDenseModule builds a module whose storage always materializes —
// every access runs the arena-backed slow paths and constant-page fast
// paths are disabled. It is the reference implementation the sparse-vs-
// dense byte-identity suites compare against and is not meant for
// multi-GB geometries.
func NewDenseModule(geom Geometry, profile DeviceProfile, seed int64) (*Module, error) {
	return newModule(geom, profile, seed, true)
}

func newModule(geom Geometry, profile DeviceProfile, seed int64, dense bool) (*Module, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	return &Module{
		geom:      geom,
		profile:   profile,
		seed:      seed,
		store:     newPageStore(geom.Size(), dense),
		weakCache: make(map[int64][]WeakCell),
	}, nil
}

// NewModuleForSize is a convenience wrapper using a 16-bank geometry
// covering size bytes.
func NewModuleForSize(size int, profile DeviceProfile, seed int64) (*Module, error) {
	return NewModule(GeometryForSize(size, 16), profile, seed)
}

// Geometry returns the module geometry.
func (m *Module) Geometry() Geometry { return m.geom }

// Profile returns the device profile.
func (m *Module) Profile() DeviceProfile { return m.profile }

// Size returns the capacity in bytes.
func (m *Module) Size() int { return m.geom.Size() }

// Read returns the byte at a physical address.
func (m *Module) Read(addr int) byte {
	s := m.store.state[addr>>pageShift]
	if s < 0 {
		return decodeConst(s)
	}
	return m.store.pageBytes(s)[addr&pageMask]
}

// Write stores a byte at a physical address.
func (m *Module) Write(addr int, v byte) {
	p := addr >> pageShift
	s := m.store.state[p]
	if s < 0 {
		if decodeConst(s) == v && !m.store.dense {
			return
		}
		m.store.materialize(p)[addr&pageMask] = v
		return
	}
	m.store.pageBytes(s)[addr&pageMask] = v
}

// ReadRange copies n bytes starting at addr.
func (m *Module) ReadRange(addr, n int) []byte {
	out := make([]byte, n)
	m.ReadRangeInto(addr, out)
	return out
}

// ReadRangeInto copies len(buf) bytes starting at addr into buf — the
// allocation-free twin of ReadRange for steady-state readback loops.
// Constant pages expand through the vectorized fill kernel without ever
// materializing.
func (m *Module) ReadRangeInto(addr int, buf []byte) {
	for len(buf) > 0 {
		p := addr >> pageShift
		off := addr & pageMask
		n := OSPageBytes - off
		if n > len(buf) {
			n = len(buf)
		}
		if s := m.store.state[p]; s < 0 {
			tensor.FillBytes(buf[:n], decodeConst(s))
		} else {
			copy(buf[:n], m.store.pageBytes(s)[off:off+n])
		}
		addr += n
		buf = buf[n:]
	}
}

// WriteRange stores buf starting at addr. Segments that leave a page
// equal to one constant byte keep (or return) the page in constant
// state, so bulk pattern writes — the templating fills, anonymous page
// zeroing — never materialize storage.
func (m *Module) WriteRange(addr int, buf []byte) {
	for len(buf) > 0 {
		p := addr >> pageShift
		off := addr & pageMask
		n := OSPageBytes - off
		if n > len(buf) {
			n = len(buf)
		}
		seg := buf[:n]
		if s := m.store.state[p]; s < 0 && !m.store.dense {
			if tensor.IndexMismatchByte(seg, decodeConst(s)) < 0 {
				// Segment repeats the page's constant: no-op.
				addr += n
				buf = buf[n:]
				continue
			}
			if n == OSPageBytes && tensor.IndexMismatchByte(seg[1:], seg[0]) < 0 {
				// Full page of one (different) byte: swap the constant.
				m.store.demote(p, seg[0])
				addr += n
				buf = buf[n:]
				continue
			}
		}
		copy(m.store.materialize(p)[off:off+n], seg)
		addr += n
		buf = buf[n:]
	}
}

// FillPage sets every byte of the 4 KB page at addr (page-aligned) to
// v. On a sparse module this demotes the page to constant state and
// recycles any arena cell it held — the O(1) path every templating fill
// and anonymous-page zeroing goes through.
func (m *Module) FillPage(addr int, v byte) {
	if addr&pageMask != 0 {
		panic("dram: FillPage address not page aligned")
	}
	p := addr >> pageShift
	if m.store.dense {
		tensor.FillBytes(m.store.materialize(p), v)
		return
	}
	m.store.demote(p, v)
}

// PageConstant reports whether the 4 KB page containing addr currently
// reads as a single constant byte, and which. Scan loops use it to skip
// whole pages without touching memory; a materialized page returns
// ok=false and must be read.
func (m *Module) PageConstant(addr int) (byte, bool) {
	s := m.store.state[addr>>pageShift]
	if s < 0 {
		return decodeConst(s), true
	}
	return 0, false
}

// FillRow sets every byte of a row to v.
func (m *Module) FillRow(bank, row int, v byte) {
	base := m.geom.RowBaseAddr(bank, row)
	m.FillPage(base, v)
	m.FillPage(base+OSPageBytes, v)
}

// weakCells returns the vulnerable cells of a row, generated lazily.
// The per-row RNG stream is keyed by (seed, bank, row) so the layout is
// stable regardless of query order. Safe for concurrent callers.
func (m *Module) weakCells(bank, row int) []WeakCell {
	key := int64(bank)<<32 | int64(row)
	m.weakMu.Lock()
	defer m.weakMu.Unlock()
	if cells, ok := m.weakCache[key]; ok {
		return cells
	}
	const mix = int64(-0x61C8864680B583EB) // golden-ratio mixing constant
	rng := newCellRNG(uint64(m.seed ^ (key*mix + 0x2545F4914F6CDD1D)))
	// A row holds two OS pages, so the expected weak count per row is
	// 2× the per-page average. Sample the count from a Poisson
	// distribution via inversion.
	lambda := m.profile.FlipsPerPage * 2
	count := poisson(&rng, lambda)
	cells := make([]WeakCell, 0, count)
	if m.seenBits == nil {
		m.seenBits = make([]uint64, RowBytes*8/64)
	}
	for len(cells) < count {
		bit := rng.intn(RowBytes * 8)
		if m.seenBits[bit/64]&(1<<(bit%64)) != 0 {
			continue
		}
		m.seenBits[bit/64] |= 1 << (bit % 64)
		dir := ZeroToOne
		if rng.float64() < 0.5 {
			dir = OneToZero
		}
		// Thresholds live in [weakThresholdFloor, 1): a full double-sided
		// hammer (disturbance 1.0) fires every weak cell, while
		// single-sided disturbance (0.5) fires none — matching the
		// observation that DDR3 flips need the sandwich pattern and that
		// victim rows adjacent to a single aggressor survive.
		cells = append(cells, WeakCell{
			BitInRow:  bit,
			Dir:       dir,
			Threshold: weakThresholdFloor + weakThresholdSpan*rng.float64(),
		})
	}
	for _, c := range cells {
		m.seenBits[c.BitInRow/64] &^= 1 << (c.BitInRow % 64)
	}
	if len(m.weakCache) >= weakCacheLimit {
		// Drop and rebuild rather than evict: cells are pure functions of
		// (seed, bank, row), so regeneration is bit-identical and a sweep
		// past the limit costs one extra generation per row, not
		// correctness.
		m.weakCache = make(map[int64][]WeakCell)
	}
	m.weakCache[key] = cells
	return cells
}

// weakThresholdFloor/weakThresholdSpan bound weak-cell thresholds to
// [floor, floor+span): disturbance below the floor cannot fire any cell,
// which the hammer core exploits to skip victims without generating
// their cell lists.
const (
	weakThresholdFloor = 0.55
	weakThresholdSpan  = 0.45
)

// cellRNG is a splitmix64 stream for weak-cell generation. Keying one
// costs a single add, versus the ~6 µs lagged-Fibonacci seeding of
// math/rand — which, at one fresh generator per row, used to dominate
// whole-buffer profiling wall-clock.
type cellRNG uint64

// newCellRNG scrambles the row key through the splitmix finalizer
// before using it as a stream start. Without this, key streams that
// differ by a multiple of the additive constant are shifted windows of
// one another — adjacent rows would sample near-identical cell
// positions, collapsing flip diversity across the buffer. The same
// finalized-key rule applies to every RNG keyed off structured
// coordinates in this package: the fault-injection streams in fault.go
// chain the identical finalizer over (seed, bank, row, pass, bit) for
// the same reason.
func newCellRNG(key uint64) cellRNG {
	key = (key ^ key>>30) * 0xBF58476D1CE4E5B9
	key = (key ^ key>>27) * 0x94D049BB133111EB
	return cellRNG(key ^ key>>31)
}

func (r *cellRNG) next() uint64 {
	*r += 0x9E3779B97F4A7C15
	z := uint64(*r)
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

func (r *cellRNG) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn is exact (bias-free) for the power-of-two bounds used here.
func (r *cellRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// poisson samples a Poisson variate by inversion (adequate for the
// λ ≤ ~250 this simulator uses).
func poisson(rng *cellRNG, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.float64()
		if p <= l {
			return k
		}
		k++
		if k > int(lambda*10+100) { // numeric safety net
			return k
		}
	}
}

// WeakCellCount returns how many vulnerable cells a row contains
// (useful for statistics without triggering flips).
func (m *Module) WeakCellCount(bank, row int) int {
	return len(m.weakCells(bank, row))
}

// trrEscapeFraction models the Target Row Refresh sampler: with A
// simultaneous aggressors and a sampler that can track K of them, a
// (A−K)/A fraction of the hammer activity escapes mitigation. Patterns
// with A ≤ K are fully mitigated — the reason double-sided Rowhammer
// fails on DDR4 (§IV-A2).
func (m *Module) trrEscapeFraction(aggressors int) float64 {
	k := m.profile.TRRSamplerSize
	if k <= 0 {
		return 1
	}
	if aggressors <= k {
		return 0
	}
	return float64(aggressors-k) / float64(aggressors)
}

// Hammer activates the given aggressor rows of one bank repeatedly.
// intensity ∈ (0, 1] is the per-aggressor activation budget normalized
// to the refresh window (1 = the full hammer the paper's profiling
// uses). Victim rows are every row adjacent to an aggressor that is not
// itself an aggressor; each receives disturbance proportional to its
// adjacent aggressor count, scaled by the TRR escape fraction.
// Vulnerable cells whose threshold is exceeded and whose stored bit
// matches the cell's flip direction are flipped in memory; the returned
// events list every flip applied.
func (m *Module) Hammer(bank int, aggressorRows []int, intensity float64) []FlipEvent {
	var events []FlipEvent
	m.hammer(bank, aggressorRows, intensity, &events)
	return events
}

// HammerQuiet is Hammer without the event log. The templating engine's
// hot loop learns flips by reading the victim pages back, so collecting
// events per hammer would only be allocation churn; this variant runs
// allocation-free for patterns up to 32 aggressors. Concurrent calls on
// non-overlapping row ranges are safe: flips are read-modify-writes on
// disjoint victim rows.
func (m *Module) HammerQuiet(bank int, aggressorRows []int, intensity float64) {
	m.hammer(bank, aggressorRows, intensity, nil)
}

// hammer is the shared hammer core. Victim discovery uses small sorted
// stack scratch instead of maps: candidate victims (aggressor neighbors)
// are collected, sorted, and merged so a row sandwiched by two
// aggressors accumulates 0.5 disturbance from each.
func (m *Module) hammer(bank int, aggressorRows []int, intensity float64, events *[]FlipEvent) {
	if intensity <= 0 || len(aggressorRows) == 0 {
		return
	}
	if intensity > 1 {
		intensity = 1
	}
	var candBuf [64]int
	cands := candBuf[:0]
	if 2*len(aggressorRows) > len(candBuf) {
		cands = make([]int, 0, 2*len(aggressorRows))
	}
	var aggs rowSet
	aggs.init(aggressorRows)
	for _, r := range aggressorRows {
		for _, v := range [2]int{r - 1, r + 1} {
			if v < 0 || v >= m.geom.RowsPerBank || aggs.contains(v) {
				continue
			}
			cands = append(cands, v)
		}
	}
	sort.Ints(cands)
	escape := m.trrEscapeFraction(len(aggressorRows))
	faulty := m.fault.enabled()
	for i := 0; i < len(cands); {
		victim := cands[i]
		j := i
		// Disturbance per victim: 0.5 per adjacent aggressor, so the
		// classic double-sided sandwich reaches 1.0.
		d := 0.0
		for j < len(cands) && cands[j] == victim {
			d += 0.5
			j++
		}
		i = j
		eff := d * intensity * escape
		if eff <= 0 {
			continue
		}
		// Sub-threshold hammers cannot fire any cell (thresholds start at
		// weakThresholdFloor), so skip the victim without generating its
		// cell list. Gated on !faulty: the fault model's pass counters and
		// jitter draws must advance exactly as before.
		if !faulty && eff < weakThresholdFloor {
			continue
		}
		// Fault injection: advance the row's pass counter and apply the
		// per-pass TRR-escape jitter. Both draws come from finalized
		// counter-based streams (fault.go), so they are pure functions of
		// (seed, bank, row, pass) and independent of scheduling.
		var pass uint64
		if faulty {
			m.weakMu.Lock()
			pass = m.nextPassLocked(bank, victim)
			m.weakMu.Unlock()
			if jit := m.fault.TRRJitter; jit > 0 {
				u := faultUniform(m.fault.Seed, bank, victim, pass, -1)
				eff *= 1 + jit*(2*u-1)
				if eff <= 0 {
					continue
				}
			}
		}
		base := m.geom.RowBaseAddr(bank, victim)
		// Copy-on-hammer: the victim row's two pages stay in constant
		// state until a cell actually changes a bit. Reads against a
		// constant page decode the fill byte in place; the first real flip
		// materializes that half into the arena.
		var halves [2][]byte
		for _, cell := range m.weakCells(bank, victim) {
			if cell.Threshold > eff {
				continue
			}
			if faulty && m.fault.FlipFailProb > 0 &&
				faultUniform(m.fault.Seed, bank, victim, pass, cell.BitInRow) < m.fault.FlipFailProb {
				continue // this pass failed to fire the cell; retry next pass
			}
			byteOff := cell.BitInRow / 8
			bit := cell.BitInRow % 8
			h := byteOff >> pageShift
			page := (base >> pageShift) + h
			var cur byte
			if halves[h] != nil {
				cur = halves[h][byteOff&pageMask]
			} else if s := m.store.state[page]; s < 0 {
				cur = decodeConst(s)
			} else {
				halves[h] = m.store.pageBytes(s)
				cur = halves[h][byteOff&pageMask]
			}
			if (cur&(1<<bit) != 0) == (cell.Dir == ZeroToOne) {
				continue // bit already sits in the cell's target state
			}
			if halves[h] == nil {
				halves[h] = m.store.materialize(page)
			}
			halves[h][byteOff&pageMask] ^= 1 << bit
			if events != nil {
				*events = append(*events, FlipEvent{Addr: base + byteOff, Bit: bit, Dir: cell.Dir})
			}
		}
	}
}

// rowSet answers aggressor-membership queries in O(1) regardless of
// pattern width, replacing the linear scan that made victim discovery
// quadratic in the number of sides. Patterns up to half the table stay
// on a stack-resident open-addressed table (power-of-two size, linear
// probing); wider ones — beyond any pattern the simulator issues — fall
// back to a heap map.
type rowSet struct {
	table [64]int // row+1, 0 = empty
	big   map[int]struct{}
}

func (s *rowSet) init(rows []int) {
	if len(rows) > len(s.table)/2 {
		s.big = make(map[int]struct{}, len(rows))
		for _, r := range rows {
			s.big[r] = struct{}{}
		}
		return
	}
	for _, r := range rows {
		h := rowSetHash(r)
		for s.table[h] != 0 {
			if s.table[h] == r+1 {
				break
			}
			h = (h + 1) & (len(s.table) - 1)
		}
		s.table[h] = r + 1
	}
}

func (s *rowSet) contains(r int) bool {
	if s.big != nil {
		_, ok := s.big[r]
		return ok
	}
	for h := rowSetHash(r); s.table[h] != 0; h = (h + 1) & (len(s.table) - 1) {
		if s.table[h] == r+1 {
			return true
		}
	}
	return false
}

func rowSetHash(r int) int {
	return int(uint64(r)*0x9E3779B97F4A7C15>>58) & 63
}

// HammerDoubleSided sandwiches the victim row between two aggressors —
// the DDR3 profiling pattern.
func (m *Module) HammerDoubleSided(bank, victimRow int, intensity float64) ([]FlipEvent, error) {
	if victimRow <= 0 || victimRow >= m.geom.RowsPerBank-1 {
		return nil, fmt.Errorf("dram: victim row %d has no neighbors on both sides", victimRow)
	}
	return m.Hammer(bank, []int{victimRow - 1, victimRow + 1}, intensity), nil
}

// HammerNSided runs the TRRespass-style many-sided pattern: sides
// aggressor rows at stride 2 starting from startRow (aggressor, victim,
// aggressor, …). The paper uses 15 sides for DDR4 profiling and 7 for
// the online attack.
func (m *Module) HammerNSided(bank, startRow, sides int, intensity float64) ([]FlipEvent, error) {
	if sides < 1 {
		return nil, fmt.Errorf("dram: sides must be ≥ 1, got %d", sides)
	}
	last := startRow + 2*(sides-1)
	if startRow < 0 || last >= m.geom.RowsPerBank {
		return nil, fmt.Errorf("dram: n-sided pattern [%d..%d] out of range", startRow, last)
	}
	rows := make([]int, sides)
	for i := range rows {
		rows[i] = startRow + 2*i
	}
	return m.Hammer(bank, rows, intensity), nil
}
