package dram

// ECC modeling (an extension beyond the paper's evaluation; the paper
// cites Cojocar et al.'s ECC bypass and assumes non-ECC DIMMs). Server
// DIMMs protect each 64-bit word with SEC-DED: one flipped bit per word
// is corrected transparently, two are detected (machine-check), three
// or more can slip through or miscorrect. For the attack this means a
// single Rowhammer flip per word — exactly what CFT+BR produces — is
// erased by the next scrub, unless the attacker finds words holding
// multiple co-located vulnerable cells (far rarer, per Eq. 2).

// ECCWordBytes is the SEC-DED protection granularity.
const ECCWordBytes = 8

// ECCOutcome classifies what the controller does with a word on scrub.
type ECCOutcome int

// Scrub outcomes.
const (
	// ECCClean means the word matches its check bits.
	ECCClean ECCOutcome = iota + 1
	// ECCCorrected means a single-bit error was fixed transparently.
	ECCCorrected
	// ECCDetected means a double-bit error raised an uncorrectable
	// machine-check (the OS typically kills or panics).
	ECCDetected
	// ECCSilent means three or more flipped bits escaped SEC-DED.
	ECCSilent
)

// String implements fmt.Stringer.
func (o ECCOutcome) String() string {
	switch o {
	case ECCClean:
		return "clean"
	case ECCCorrected:
		return "corrected"
	case ECCDetected:
		return "detected-uncorrectable"
	case ECCSilent:
		return "silent"
	default:
		return "unknown"
	}
}

// ECCController wraps a module with SEC-DED semantics. Legitimate
// writes go through the controller (updating check bits); Rowhammer
// disturbs the module behind its back, and Scrub applies the
// correction/detection logic.
type ECCController struct {
	mod *Module
	// shadow holds the data as of the last legitimate write — the
	// reference the per-word check bits encode. (The simulator stores
	// the full word; real hardware stores 8 derived check bits with
	// identical correct/detect power.)
	shadow []byte
}

// NewECCController snapshots the module's current contents as the
// ECC-consistent state. The shadow is dense — the controller models
// protection of specific regions under test, not multi-GB geometries.
func NewECCController(mod *Module) *ECCController {
	shadow := make([]byte, mod.Size())
	mod.ReadRangeInto(0, shadow)
	return &ECCController{mod: mod, shadow: shadow}
}

// Write stores data through the controller, keeping check bits
// consistent.
func (e *ECCController) Write(addr int, buf []byte) {
	e.mod.WriteRange(addr, buf)
	copy(e.shadow[addr:addr+len(buf)], buf)
}

// ScrubWord examines one 64-bit word: single-bit deviations from the
// protected state are corrected in memory, double-bit deviations are
// detected (left as-is), and wider corruption passes silently.
func (e *ECCController) ScrubWord(wordAddr int) ECCOutcome {
	base := wordAddr * ECCWordBytes
	var word [ECCWordBytes]byte
	e.mod.ReadRangeInto(base, word[:])
	flips := 0
	for i := 0; i < ECCWordBytes; i++ {
		d := word[i] ^ e.shadow[base+i]
		for ; d != 0; d &= d - 1 {
			flips++
		}
	}
	switch flips {
	case 0:
		return ECCClean
	case 1:
		e.mod.WriteRange(base, e.shadow[base:base+ECCWordBytes])
		return ECCCorrected
	case 2:
		return ECCDetected
	default:
		return ECCSilent
	}
}

// ScrubRange scrubs every word in [addr, addr+n) and tallies outcomes.
func (e *ECCController) ScrubRange(addr, n int) map[ECCOutcome]int {
	out := make(map[ECCOutcome]int)
	first := addr / ECCWordBytes
	last := (addr + n + ECCWordBytes - 1) / ECCWordBytes
	for w := first; w < last; w++ {
		out[e.ScrubWord(w)]++
	}
	return out
}
