package dram

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeometryValidate(t *testing.T) {
	if err := (Geometry{Banks: 16, RowsPerBank: 10}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Geometry{Banks: 12, RowsPerBank: 10}).Validate(); err == nil {
		t.Fatal("non-power-of-two banks must fail")
	}
	if err := (Geometry{Banks: 16, RowsPerBank: 0}).Validate(); err == nil {
		t.Fatal("zero rows must fail")
	}
}

func TestAddrLocRoundTrip(t *testing.T) {
	g := Geometry{Banks: 16, RowsPerBank: 64}
	f := func(a uint32) bool {
		addr := int(a) % g.Size()
		l := g.LocOf(addr)
		if l.Bank < 0 || l.Bank >= g.Banks || l.Row < 0 || l.Row >= g.RowsPerBank {
			return false
		}
		return g.AddrOf(l) == addr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestConsecutiveChunksChangeBank(t *testing.T) {
	g := Geometry{Banks: 16, RowsPerBank: 64}
	for chunk := 0; chunk < 64; chunk++ {
		l1 := g.LocOf(chunk * RowBytes)
		l2 := g.LocOf((chunk + 1) * RowBytes)
		if l1.Bank == l2.Bank && l1.Row == l2.Row {
			t.Fatalf("chunks %d and %d map to same bank+row", chunk, chunk+1)
		}
	}
}

func TestWithinRowSameBankRow(t *testing.T) {
	g := Geometry{Banks: 16, RowsPerBank: 64}
	base := 5 * RowBytes
	l0 := g.LocOf(base)
	for off := 1; off < RowBytes; off += 777 {
		l := g.LocOf(base + off)
		if l.Bank != l0.Bank || l.Row != l0.Row {
			t.Fatal("addresses within one row chunk must share bank and row")
		}
		if l.Col != off {
			t.Fatalf("col = %d, want %d", l.Col, off)
		}
	}
}

func TestTableIProfilesComplete(t *testing.T) {
	ps := TableIProfiles()
	if len(ps) != 20 {
		t.Fatalf("Table I has %d profiles, want 20", len(ps))
	}
	d3, d4 := 0, 0
	for _, p := range ps {
		switch p.Type {
		case DDR3:
			d3++
			if p.TRRSamplerSize != 0 {
				t.Fatalf("DDR3 chip %s must not have TRR", p.Name)
			}
		case DDR4:
			d4++
			if p.TRRSamplerSize == 0 {
				t.Fatalf("DDR4 chip %s must have TRR", p.Name)
			}
		}
	}
	if d3 != 14 || d4 != 6 {
		t.Fatalf("got %d DDR3 + %d DDR4, want 14 + 6", d3, d4)
	}
	if p, ok := ProfileByName("K1"); !ok || p.FlipsPerPage != 100.68 {
		t.Fatalf("K1 lookup: %+v %v", p, ok)
	}
	if _, ok := ProfileByName("Z9"); ok {
		t.Fatal("unknown profile must not resolve")
	}
	if len(ProfileNames()) != 20 {
		t.Fatal("ProfileNames incomplete")
	}
}

func TestCellDensityMatchesPaperSparsity(t *testing.T) {
	// The paper: 0.036% of cells in the profiled 128 MB DDR3 buffer.
	d := PaperDDR3().CellDensity()
	if math.Abs(d-0.00036)/0.00036 > 0.05 {
		t.Fatalf("density = %v, want ≈0.036%%", d)
	}
}

func newTestModule(t *testing.T, profile DeviceProfile) *Module {
	t.Helper()
	m, err := NewModule(Geometry{Banks: 16, RowsPerBank: 128}, profile, 42)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestReadWrite(t *testing.T) {
	m := newTestModule(t, PaperDDR3())
	m.Write(12345, 0xAB)
	if m.Read(12345) != 0xAB {
		t.Fatal("read after write failed")
	}
	m.WriteRange(100, []byte{1, 2, 3})
	if got := m.ReadRange(100, 3); got[2] != 3 {
		t.Fatalf("range round trip: %v", got)
	}
}

func TestWeakCellsDeterministicAndSparse(t *testing.T) {
	m1 := newTestModule(t, PaperDDR3())
	m2 := newTestModule(t, PaperDDR3())
	total := 0
	rows := 0
	for bank := 0; bank < 4; bank++ {
		for row := 0; row < 64; row++ {
			a := m1.weakCells(bank, row)
			b := m2.weakCells(bank, row)
			if len(a) != len(b) {
				t.Fatal("weak cells not deterministic")
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatal("weak cells not deterministic")
				}
			}
			total += len(a)
			rows++
		}
	}
	avgPerPage := float64(total) / float64(rows*2)
	if math.Abs(avgPerPage-11.66)/11.66 > 0.25 {
		t.Fatalf("avg weak cells per page %.2f, want ≈11.66", avgPerPage)
	}
}

func TestDifferentSeedsGiveDifferentCells(t *testing.T) {
	a, _ := NewModule(Geometry{Banks: 16, RowsPerBank: 64}, PaperDDR3(), 1)
	b, _ := NewModule(Geometry{Banks: 16, RowsPerBank: 64}, PaperDDR3(), 2)
	same := true
	for row := 0; row < 32 && same; row++ {
		ca, cb := a.weakCells(0, row), b.weakCells(0, row)
		if len(ca) != len(cb) {
			same = false
			break
		}
		for i := range ca {
			if ca[i] != cb[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds should give different cell layouts")
	}
}

func TestDoubleSidedFlipsMatchDirections(t *testing.T) {
	m := newTestModule(t, DeviceProfile{Name: "hot", Type: DDR3, FlipsPerPage: 200})
	bank, victim := 2, 10
	// All-zero victim: only 0→1 cells can fire.
	m.FillRow(bank, victim, 0x00)
	events, err := m.HammerDoubleSided(bank, victim, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("hot device with full hammer must flip")
	}
	for _, e := range events {
		if e.Dir != ZeroToOne {
			t.Fatalf("all-zero row flipped %v", e.Dir)
		}
		if m.Read(e.Addr)&(1<<e.Bit) == 0 {
			t.Fatal("event reported but memory unchanged")
		}
	}
	// All-ones: only 1→0.
	m.FillRow(bank, victim, 0xFF)
	events, err = m.HammerDoubleSided(bank, victim, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.Dir != OneToZero {
			t.Fatalf("all-ones row flipped %v", e.Dir)
		}
	}
}

func TestHammerIsIdempotentOnFlippedCells(t *testing.T) {
	m := newTestModule(t, DeviceProfile{Name: "hot", Type: DDR3, FlipsPerPage: 200})
	bank, victim := 1, 20
	m.FillRow(bank, victim, 0x00)
	first, _ := m.HammerDoubleSided(bank, victim, 1)
	second, _ := m.HammerDoubleSided(bank, victim, 1)
	if len(first) == 0 {
		t.Fatal("no flips on first hammer")
	}
	if len(second) != 0 {
		t.Fatalf("second hammer re-flipped %d already-flipped cells", len(second))
	}
}

func TestTRRBlocksDoubleSidedOnDDR4(t *testing.T) {
	m := newTestModule(t, DeviceProfile{Name: "d4", Type: DDR4, FlipsPerPage: 200, TRRSamplerSize: 2})
	m.FillRow(0, 10, 0x00)
	events, err := m.HammerDoubleSided(0, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("TRR should block double-sided, got %d flips", len(events))
	}
}

func TestNSidedBypassesTRR(t *testing.T) {
	m := newTestModule(t, DeviceProfile{Name: "d4", Type: DDR4, FlipsPerPage: 300, TRRSamplerSize: 2})
	for row := 0; row < 40; row++ {
		m.FillRow(0, row, 0x00)
	}
	events, err := m.HammerNSided(0, 2, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("7-sided must produce flips on DDR4")
	}
}

func TestMoreSidesMoreFlips(t *testing.T) {
	profile := DeviceProfile{Name: "d4", Type: DDR4, FlipsPerPage: 300, TRRSamplerSize: 2}
	count := func(sides int) int {
		m, err := NewModule(Geometry{Banks: 16, RowsPerBank: 128}, profile, 7)
		if err != nil {
			t.Fatal(err)
		}
		for row := 0; row < 128; row++ {
			m.FillRow(0, row, 0x00)
		}
		ev, err := m.HammerNSided(0, 2, sides, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Normalize per victim row: sides aggressors have sides−1 inner
		// victims plus 2 outer.
		return len(ev) * 100 / (sides + 1)
	}
	c2, c7, c15 := count(2), count(7), count(15)
	if c2 != 0 {
		t.Fatalf("2-sided should be TRR-mitigated, got %d", c2)
	}
	if !(c15 > c7) {
		t.Fatalf("per-victim flips should grow with sides: 7-sided=%d 15-sided=%d", c7, c15)
	}
}

func TestHammerValidation(t *testing.T) {
	m := newTestModule(t, PaperDDR3())
	if _, err := m.HammerDoubleSided(0, 0, 1); err == nil {
		t.Fatal("edge victim must error")
	}
	if _, err := m.HammerNSided(0, 0, 0, 1); err == nil {
		t.Fatal("0 sides must error")
	}
	if _, err := m.HammerNSided(0, 120, 15, 1); err == nil {
		t.Fatal("out-of-range pattern must error")
	}
	if ev := m.Hammer(0, []int{5}, 0); ev != nil {
		t.Fatal("zero intensity must be a no-op")
	}
}

func TestLowIntensityFlipsFewer(t *testing.T) {
	profile := DeviceProfile{Name: "hot", Type: DDR3, FlipsPerPage: 300}
	run := func(intensity float64) int {
		m, _ := NewModule(Geometry{Banks: 16, RowsPerBank: 64}, profile, 99)
		m.FillRow(0, 10, 0x00)
		ev, _ := m.HammerDoubleSided(0, 10, intensity)
		return len(ev)
	}
	full, weak := run(1.0), run(0.4)
	if !(weak < full) {
		t.Fatalf("weaker hammer should flip fewer cells: %d vs %d", weak, full)
	}
}

func TestGeometryForSize(t *testing.T) {
	g := GeometryForSize(128<<20, 16)
	if g.Size() < 128<<20 {
		t.Fatalf("geometry covers %d < 128MiB", g.Size())
	}
	m, err := NewModuleForSize(1<<20, PaperDDR3(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() < 1<<20 {
		t.Fatal("module too small")
	}
}

func TestECCCorrectsSingleFlip(t *testing.T) {
	m := newTestModule(t, PaperDDR3())
	ecc := NewECCController(m)
	ecc.Write(64, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	// Rowhammer flips one bit behind the controller's back.
	m.Write(66, m.Read(66)^0x10)
	if got := ecc.ScrubWord(8); got != ECCCorrected {
		t.Fatalf("single flip outcome %v, want corrected", got)
	}
	if m.Read(66) != 3 {
		t.Fatal("scrub did not restore the byte")
	}
	if got := ecc.ScrubWord(8); got != ECCClean {
		t.Fatalf("re-scrub outcome %v, want clean", got)
	}
}

func TestECCDetectsDoubleFlipAndMissesTriple(t *testing.T) {
	m := newTestModule(t, PaperDDR3())
	ecc := NewECCController(m)
	ecc.Write(0, make([]byte, 16))
	m.Write(0, 0x03) // two flips in word 0
	if got := ecc.ScrubWord(0); got != ECCDetected {
		t.Fatalf("double flip outcome %v, want detected", got)
	}
	if m.Read(0) != 0x03 {
		t.Fatal("detected-uncorrectable must not modify memory")
	}
	m.Write(8, 0x07) // three flips in word 1
	if got := ecc.ScrubWord(1); got != ECCSilent {
		t.Fatalf("triple flip outcome %v, want silent", got)
	}
}

func TestECCScrubRangeTallies(t *testing.T) {
	m := newTestModule(t, PaperDDR3())
	ecc := NewECCController(m)
	m.Write(0, 0x01)  // 1 flip: corrected
	m.Write(8, 0x03)  // 2 flips: detected
	m.Write(16, 0x07) // 3 flips: silent
	tally := ecc.ScrubRange(0, 32)
	if tally[ECCCorrected] != 1 || tally[ECCDetected] != 1 || tally[ECCSilent] != 1 || tally[ECCClean] != 1 {
		t.Fatalf("tally = %v", tally)
	}
}

// TestECCDefeatsSingleBitAttack shows why the paper assumes non-ECC
// memory: every CFT+BR flip is one bit in its own word, so a scrub
// erases the whole backdoor.
func TestECCDefeatsSingleBitAttack(t *testing.T) {
	m := newTestModule(t, DeviceProfile{Name: "hot", Type: DDR3, FlipsPerPage: 120})
	ecc := NewECCController(m)
	bank, victim := 3, 30
	m.FillRow(bank, victim, 0x00)
	ecc.Write(m.Geometry().RowBaseAddr(bank, victim), make([]byte, RowBytes))
	events, err := m.HammerDoubleSided(bank, victim, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no flips to scrub")
	}
	base := m.Geometry().RowBaseAddr(bank, victim)
	tally := ecc.ScrubRange(base, RowBytes)
	if tally[ECCSilent] > tally[ECCCorrected]+tally[ECCDetected] {
		t.Fatalf("most sparse flips should be caught: %v", tally)
	}
	// After the scrub, all single-bit corruption is gone.
	tally2 := ecc.ScrubRange(base, RowBytes)
	if tally2[ECCCorrected] != 0 {
		t.Fatalf("second scrub still correcting: %v", tally2)
	}
}
