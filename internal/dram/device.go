package dram

import "sort"

// DDRType distinguishes the two DRAM generations the paper profiles.
type DDRType int

// DRAM generations.
const (
	DDR3 DDRType = iota + 1
	DDR4
)

// String implements fmt.Stringer.
func (t DDRType) String() string {
	switch t {
	case DDR3:
		return "DDR3"
	case DDR4:
		return "DDR4"
	default:
		return "unknown"
	}
}

// DeviceProfile captures the Rowhammer susceptibility of one DRAM
// device: the average number of vulnerable cells per 4 KB OS page
// (Table I) and the generation, which determines whether TRR mitigation
// applies.
type DeviceProfile struct {
	// Name tags the brand/model (the paper's anonymized labels).
	Name string
	// Type is the DRAM generation.
	Type DDRType
	// FlipsPerPage is the average number of vulnerable cells per 4 KB
	// page, as measured (DDR3: double-sided profiles from prior work;
	// DDR4: the paper's n-sided profiling).
	FlipsPerPage float64
	// TRRSamplerSize is how many simultaneous aggressors the in-DRAM
	// TRR mitigation can track (0 disables TRR; DDR4 devices use 2).
	TRRSamplerSize int
}

// CellDensity returns the probability that any single bit is a
// vulnerable cell.
func (p DeviceProfile) CellDensity() float64 {
	return p.FlipsPerPage / float64(OSPageBytes*8)
}

// TableIProfiles reproduces Table I: the average flips per page for the
// 14 DDR3 and 6 DDR4 chips.
func TableIProfiles() []DeviceProfile {
	ddr3 := []struct {
		name string
		fpp  float64
	}{
		{"A1", 12.48}, {"A2", 1.92}, {"A3", 1.11}, {"A4", 15.85},
		{"B1", 1.05}, {"C1", 1.60}, {"D1", 1.08}, {"E1", 12.46},
		{"E2", 2.02}, {"F1", 28.77}, {"G1", 1.62}, {"H1", 1.66},
		{"I1", 8.28}, {"J1", 1.25},
	}
	ddr4 := []struct {
		name string
		fpp  float64
	}{
		{"K1", 100.68}, {"K2", 109.48}, {"L1", 3.12},
		{"L2", 13.98}, {"M1", 2.04}, {"N1", 2.72},
	}
	out := make([]DeviceProfile, 0, len(ddr3)+len(ddr4))
	for _, d := range ddr3 {
		out = append(out, DeviceProfile{Name: d.name, Type: DDR3, FlipsPerPage: d.fpp})
	}
	for _, d := range ddr4 {
		out = append(out, DeviceProfile{Name: d.name, Type: DDR4, FlipsPerPage: d.fpp, TRRSamplerSize: 2})
	}
	return out
}

// ProfileByName finds a Table I profile; ok is false for unknown names.
func ProfileByName(name string) (DeviceProfile, bool) {
	for _, p := range TableIProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return DeviceProfile{}, false
}

// ProfileNames lists the Table I device names sorted DDR3-first then
// alphabetically within generation.
func ProfileNames() []string {
	ps := TableIProfiles()
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Type != ps[j].Type {
			return ps[i].Type < ps[j].Type
		}
		return ps[i].Name < ps[j].Name
	})
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// PaperDDR3 is the profile of the DDR3 module the paper's own profiling
// used (2 GB M378B5773DH0-CH9): 381,962 flips in a 128 MB buffer ≈ 11.66
// flips per 4 KB page (0.036% of cells).
func PaperDDR3() DeviceProfile {
	return DeviceProfile{Name: "M378B5773DH0", Type: DDR3, FlipsPerPage: 11.66}
}

// PaperDDR4 is the profile of the paper's DDR4 module
// (CMU64GX4M4C3200C16) with TRR, modeled after the mid-range Table I
// DDR4 devices.
func PaperDDR4() DeviceProfile {
	return DeviceProfile{Name: "CMU64GX4M4C3200C16", Type: DDR4, FlipsPerPage: 13.98, TRRSamplerSize: 2}
}
