package dram

import (
	"encoding/binary"
	"testing"
)

// BenchmarkHammerSteady measures the module-level hot loop of the
// templating engine in isolation: fill the victim and aggressor rows,
// hammer the double-sided sandwich, read the victim row back and scan
// it for flipped bits. One op = one row experiment.
func BenchmarkHammerSteady(b *testing.B) {
	mod, err := NewModuleForSize(64<<20, PaperDDR3(), 7)
	if err != nil {
		b.Fatal(err)
	}
	rows := mod.Geometry().RowsPerBank
	buf := make([]byte, RowBytes)
	flips := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		victim := 1 + i%(rows-2)
		mod.FillRow(0, victim-1, 0xFF)
		mod.FillRow(0, victim, 0x00)
		mod.FillRow(0, victim+1, 0xFF)
		mod.HammerQuiet(0, []int{victim - 1, victim + 1}, 1)
		mod.ReadRangeInto(mod.Geometry().RowBaseAddr(0, victim), buf)
		for off := 0; off < RowBytes; off += 8 {
			if w := binary.LittleEndian.Uint64(buf[off : off+8]); w != 0 {
				for ; w != 0; w &= w - 1 {
					flips++
				}
			}
		}
	}
	if b.N > 64 && flips == 0 {
		b.Fatal("no flips observed")
	}
}
