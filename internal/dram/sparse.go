package dram

import (
	"sync"
	"sync/atomic"

	"rowhammer/internal/tensor"
)

// Sparse page store. A multi-GB module cannot back its whole geometry
// with one dense []byte (16 GB of zeroes for a 4M-page DIMM), so
// storage is tracked per 4 KB page — half a DRAM row, the granularity
// both the OS paths (memsys frames) and the templating engine operate
// at:
//
//   - state[p] < 0 encodes "the whole page reads as one constant byte"
//     (encodeConst/decodeConst). Every page starts as constant 0x00 and
//     reads of it never allocate.
//   - state[p] >= 0 is a slot into the row arena: 2 MB slabs carved
//     into page-sized cells, materialized copy-on-hammer — the first
//     bit flip (or non-constant write) a page takes copies its fill
//     pattern into a fresh arena cell and mutates that.
//   - FillPage with a constant (every templating fill) *demotes* a
//     materialized page back to constant state and recycles its arena
//     cell, so steady-state profiling keeps only pages currently
//     holding flips resident.
//
// Peak memory therefore scales with the rows actually touched, not the
// geometry; the fixed overhead is 4 bytes of state plus one dirty bit
// per page (~0.1% of capacity).
//
// Concurrency contract (unchanged from the dense design): concurrent
// operations on disjoint pages are safe — the phase-colored templating
// engine's invariant. state[p] is only accessed by the page's current
// owner; the shared arena allocator is storeMu-guarded and the dirty
// bitset is atomic, so materialization from concurrent experiments
// never races.

// pageShift/pageMask index the 4 KB page of a physical byte address.
const (
	pageShift = 12
	pageMask  = OSPageBytes - 1
)

// arenaSlabPages is the arena slab granularity: 512 pages = 2 MB.
const arenaSlabPages = 512

// pageStore is the sparse backing of a Module.
type pageStore struct {
	state []int32  // per page: >= 0 arena slot, < 0 constant byte
	dirty []uint64 // bitset: page ever diverged from the zero fill

	storeMu   sync.Mutex
	slabs     [][]byte // fixed-length; slabs allocated on demand
	freeSlots []int32  // recycled arena cells
	nextSlot  int32
	resident  int

	// dense forces the reference behavior: every fill materializes and
	// nothing demotes, so all accesses run the arena-backed slow paths.
	// NewDenseModule uses it as the byte-identity oracle for the sparse
	// fast paths.
	dense bool
}

func encodeConst(c byte) int32 { return -1 - int32(c) }
func decodeConst(s int32) byte { return byte(-(s + 1)) }

func newPageStore(size int, dense bool) *pageStore {
	npages := size / OSPageBytes
	ps := &pageStore{
		state: make([]int32, npages),
		dirty: make([]uint64, (npages+63)/64),
		slabs: make([][]byte, (npages+arenaSlabPages-1)/arenaSlabPages),
		dense: dense,
	}
	zero := encodeConst(0)
	for i := range ps.state {
		ps.state[i] = zero
	}
	return ps
}

func (ps *pageStore) markDirty(p int) {
	addr := &ps.dirty[p>>6]
	bit := uint64(1) << (uint(p) & 63)
	for {
		old := atomic.LoadUint64(addr)
		if old&bit != 0 || atomic.CompareAndSwapUint64(addr, old, old|bit) {
			return
		}
	}
}

// pageBytes returns the arena cell of a materialized slot.
func (ps *pageStore) pageBytes(slot int32) []byte {
	base := int(slot%arenaSlabPages) * OSPageBytes
	return ps.slabs[int(slot)/arenaSlabPages][base : base+OSPageBytes : base+OSPageBytes]
}

// materialize gives page p a writable arena cell holding its current
// contents (copy-on-hammer). The allocator bookkeeping is mutex-guarded;
// the fill happens on the caller-owned cell outside the lock.
func (ps *pageStore) materialize(p int) []byte {
	s := ps.state[p]
	if s >= 0 {
		return ps.pageBytes(s)
	}
	c := decodeConst(s)
	ps.storeMu.Lock()
	var slot int32
	if n := len(ps.freeSlots); n > 0 {
		slot = ps.freeSlots[n-1]
		ps.freeSlots = ps.freeSlots[:n-1]
	} else {
		slot = ps.nextSlot
		if si := int(slot) / arenaSlabPages; ps.slabs[si] == nil {
			ps.slabs[si] = make([]byte, arenaSlabPages*OSPageBytes)
		}
		ps.nextSlot++
	}
	ps.resident++
	ps.storeMu.Unlock()
	b := ps.pageBytes(slot)
	tensor.FillBytes(b, c)
	ps.state[p] = slot
	ps.markDirty(p)
	return b
}

// demote returns page p to constant state c, recycling its arena cell.
func (ps *pageStore) demote(p int, c byte) {
	if s := ps.state[p]; s >= 0 {
		ps.storeMu.Lock()
		ps.freeSlots = append(ps.freeSlots, s)
		ps.resident--
		ps.storeMu.Unlock()
	}
	ps.state[p] = encodeConst(c)
	if c != 0 {
		ps.markDirty(p)
	}
}

// ResidentPages reports how many pages currently hold materialized
// arena cells — the quantity peak RSS scales with.
func (m *Module) ResidentPages() int {
	m.store.storeMu.Lock()
	defer m.store.storeMu.Unlock()
	return m.store.resident
}

// ArenaBytes reports the bytes of arena slabs allocated so far (a high
//-water mark: demoted cells are recycled, not returned to the OS).
func (m *Module) ArenaBytes() int {
	m.store.storeMu.Lock()
	defer m.store.storeMu.Unlock()
	n := 0
	for _, s := range m.store.slabs {
		n += len(s)
	}
	return n
}

// TouchedPages counts pages that ever diverged from the zero fill —
// materialized now or in the past, or holding a non-zero constant.
func (m *Module) TouchedPages() int {
	n := 0
	for i := range m.store.dirty {
		n += popcount64(atomic.LoadUint64(&m.store.dirty[i]))
	}
	return n
}

func popcount64(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
