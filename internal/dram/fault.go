package dram

// FaultModel makes weak-cell firing probabilistic, modeling the online
// phase's real-world stochasticity: TRR sampling luck, rare flippy
// cells that need several hammer passes, and temperature/voltage drift
// (§IV-A2, §V-B). The zero value disables every fault and leaves the
// module's behavior bit-identical to the fault-free simulator.
//
// All randomness is counter-based: every draw is a pure function of
// (Seed, bank, row, pass, bit), where pass is the row's disturbance
// pass counter. The profiling engine's phase coloring hammers any given
// row in a fixed order regardless of worker count, so pass counters —
// and therefore every fault draw — are schedule-independent and results
// stay bit-identical at 1/2/4 workers. Like the weak-cell streams in
// weakCells, every key is pushed through the splitmix64 finalizer
// before use; raw linear keys would make nearby (bank, row, pass)
// streams shifted copies of one another and correlate the faults.
type FaultModel struct {
	// FlipFailProb is the per-pass probability that a weak cell whose
	// threshold is exceeded nevertheless fails to flip (TRR sampling,
	// marginal cells). A fresh draw happens every pass, so re-hammering
	// the row retries the coin.
	FlipFailProb float64
	// TRRJitter perturbs the effective disturbance of each victim row
	// per pass by a uniform factor in [1−TRRJitter, 1+TRRJitter],
	// modeling TRR-escape variance. Values > 0.1 can push single-sided
	// (0.5) disturbance over the 0.55 threshold floor and create
	// accidental flips outside the planned victim rows.
	TRRJitter float64
	// Seed keys the fault streams independently of the weak-cell
	// layout seed.
	Seed int64
}

// enabled reports whether any fault knob is active.
func (f FaultModel) enabled() bool {
	return f.FlipFailProb > 0 || f.TRRJitter > 0
}

// SetFaultModel installs (or, with the zero value, removes) the fault
// model. Install it before hammering; the deterministic pass counters
// start at the first disturbance after installation. Safe to call
// between hammer passes, not concurrently with them.
func (m *Module) SetFaultModel(f FaultModel) {
	m.weakMu.Lock()
	defer m.weakMu.Unlock()
	m.fault = f
	if m.passCount == nil && f.enabled() {
		m.passCount = make(map[int64]uint64)
	}
}

// FaultModelInstalled returns the active fault model (zero value when
// none).
func (m *Module) FaultModelInstalled() FaultModel { return m.fault }

// nextPass fetches-and-increments the disturbance pass counter of one
// victim row. Caller must hold weakMu.
func (m *Module) nextPassLocked(bank, row int) uint64 {
	key := int64(bank)<<32 | int64(row)
	p := m.passCount[key]
	m.passCount[key] = p + 1
	return p
}

// mix64 is the splitmix64 finalizer — the same bijective scrambler
// newCellRNG uses. Chaining it over the key components keeps every
// fault stream decorrelated from its (bank, row, pass, bit) neighbors.
func mix64(x uint64) uint64 {
	x = (x ^ x>>30) * 0xBF58476D1CE4E5B9
	x = (x ^ x>>27) * 0x94D049BB133111EB
	return x ^ x>>31
}

const splitmixGamma = 0x9E3779B97F4A7C15

// faultUniform draws one uniform in [0, 1) from the counter-based fault
// stream. bit is the cell's BitInRow, or −1 for per-row draws (the TRR
// jitter).
func faultUniform(seed int64, bank, row int, pass uint64, bit int) float64 {
	h := mix64(uint64(seed) + splitmixGamma*uint64(uint32(bank)+1))
	h = mix64(h ^ (uint64(uint32(row)) + splitmixGamma))
	h = mix64(h ^ (pass*splitmixGamma + uint64(int64(bit)+2)))
	return float64(h>>11) / (1 << 53)
}
