package dram

import (
	"bytes"
	"testing"
)

// exerciseModule dirties a module the way a campaign does — fills,
// arbitrary writes, hammering with and without faults — and returns the
// flip events of a final deterministic hammer plus a memory sample.
func exerciseModule(t *testing.T, m *Module) ([]FlipEvent, []byte) {
	t.Helper()
	m.FillRow(0, 10, 0xFF)
	m.FillRow(0, 12, 0xFF)
	m.Write(m.geom.RowBaseAddr(1, 5)+123, 0xA5)
	m.SetFaultModel(FaultModel{FlipFailProb: 0.3, Seed: 9})
	m.HammerQuiet(0, []int{10, 12}, 1)
	m.SetFaultModel(FaultModel{})
	events := m.Hammer(1, []int{4, 6}, 1)
	sample := m.ReadRange(m.geom.RowBaseAddr(0, 11), RowBytes)
	return events, sample
}

// TestModuleResetIdentity asserts a reset module is observably
// indistinguishable from a fresh one: same weak cells, same hammer
// outcomes, same memory contents, no resident pages — even after the
// previous life materialized pages, installed faults and advanced pass
// counters.
func TestModuleResetIdentity(t *testing.T) {
	geom := Geometry{Banks: 4, RowsPerBank: 64}
	prof := PaperDDR3()

	fresh, err := NewModule(geom, prof, 21)
	if err != nil {
		t.Fatal(err)
	}
	wantEvents, wantSample := exerciseModule(t, fresh)

	reused, err := NewModule(geom, DeviceProfile{Name: "other", Type: DDR4, FlipsPerPage: 99, TRRSamplerSize: 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// A different first life: different seed, profile, fault state.
	exerciseModule(t, reused)
	reused.SetFaultModel(FaultModel{TRRJitter: 0.2, Seed: 1})

	reused.Reset(prof, 21)
	if got := reused.ResidentPages(); got != 0 {
		t.Fatalf("ResidentPages after Reset = %d, want 0", got)
	}
	if got := reused.TouchedPages(); got != 0 {
		t.Fatalf("TouchedPages after Reset = %d, want 0", got)
	}
	if fm := reused.FaultModelInstalled(); fm != (FaultModel{}) {
		t.Fatalf("fault model survived Reset: %+v", fm)
	}
	gotEvents, gotSample := exerciseModule(t, reused)
	if len(gotEvents) != len(wantEvents) {
		t.Fatalf("hammer events after Reset: got %d, want %d", len(gotEvents), len(wantEvents))
	}
	for i := range gotEvents {
		if gotEvents[i] != wantEvents[i] {
			t.Fatalf("event %d after Reset = %+v, want %+v", i, gotEvents[i], wantEvents[i])
		}
	}
	if !bytes.Equal(gotSample, wantSample) {
		t.Fatal("row contents after Reset differ from a fresh module")
	}
}

// TestModulePoolReuse asserts the pool hands back reset modules for the
// matching geometry (retaining their arena slabs) and builds fresh ones
// otherwise.
func TestModulePoolReuse(t *testing.T) {
	pool := NewModulePool()
	geom := Geometry{Banks: 4, RowsPerBank: 64}
	m1, err := pool.Get(geom, PaperDDR3(), 7)
	if err != nil {
		t.Fatal(err)
	}
	exerciseModule(t, m1)
	arena := m1.ArenaBytes()
	if arena == 0 {
		t.Fatal("exercise did not materialize any arena slab")
	}
	pool.Put(m1)
	if pool.Idle() != 1 {
		t.Fatalf("Idle = %d, want 1", pool.Idle())
	}

	m2, err := pool.Get(geom, PaperDDR3(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m1 {
		t.Fatal("pool did not reuse the returned module")
	}
	if m2.ArenaBytes() != arena {
		t.Fatalf("reused module lost its slabs: arena %d, want %d", m2.ArenaBytes(), arena)
	}
	if m2.ResidentPages() != 0 {
		t.Fatal("reused module not reset")
	}

	other, err := pool.Get(Geometry{Banks: 8, RowsPerBank: 32}, PaperDDR3(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if other == m1 {
		t.Fatal("pool reused a module across geometries")
	}

	dense, err := NewDenseModule(geom, PaperDDR3(), 7)
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(dense)
	if pool.Idle() != 0 {
		t.Fatal("dense module must not be pooled")
	}
}
