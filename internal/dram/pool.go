package dram

import "sync"

// Module pooling. A fleet-scale campaign sweep churns through one
// multi-GB module per campaign; allocating a fresh sparse page store
// (state slice, dirty bitset, arena slabs) each time makes peak RSS and
// allocation cost scale with fleet size instead of concurrency. Reset
// returns a module to its pristine post-NewModule state while keeping
// the big allocations, and ModulePool recycles reset modules across
// campaigns keyed by geometry — the "pooled module arenas" of the
// campaign engine.

// Reset rewinds the module to the state NewModule(geom, profile, seed)
// would produce — every page constant zero, no dirty bits, fresh
// weak-cell and fault state — while retaining the page-state slice,
// dirty bitset and arena slabs. Observable behavior after Reset is
// bit-identical to a fresh module: constant pages decode their fill
// byte in place and materialization fills the (possibly stale) arena
// cell before handing it out, so no prior campaign's bytes can leak.
// Not safe concurrently with any other operation on the module.
func (m *Module) Reset(profile DeviceProfile, seed int64) {
	m.profile = profile
	m.seed = seed
	m.weakMu.Lock()
	m.weakCache = make(map[int64][]WeakCell)
	m.passCount = nil
	m.fault = FaultModel{}
	m.weakMu.Unlock()
	m.store.reset()
}

// reset returns every page to constant zero and recycles all arena
// cells while keeping the slabs mapped.
func (ps *pageStore) reset() {
	zero := encodeConst(0)
	for i := range ps.state {
		ps.state[i] = zero
	}
	for i := range ps.dirty {
		ps.dirty[i] = 0
	}
	ps.storeMu.Lock()
	ps.freeSlots = ps.freeSlots[:0]
	ps.nextSlot = 0
	ps.resident = 0
	ps.storeMu.Unlock()
}

// ModulePool recycles sparse modules across campaigns. Get either
// resets a pooled module of the wanted geometry or builds a fresh one;
// Put returns a module for reuse. The pool never resets on Put — the
// caller may still read results — so Get pays the O(pages) state sweep,
// which is far cheaper than faulting in fresh multi-MB slices per
// campaign. Safe for concurrent use.
type ModulePool struct {
	mu   sync.Mutex
	free map[Geometry][]*Module
}

// NewModulePool returns an empty pool.
func NewModulePool() *ModulePool {
	return &ModulePool{free: make(map[Geometry][]*Module)}
}

// Get returns a pristine module with the given geometry, device profile
// and weak-cell seed — pooled and reset when available, freshly built
// otherwise.
func (p *ModulePool) Get(geom Geometry, profile DeviceProfile, seed int64) (*Module, error) {
	p.mu.Lock()
	var m *Module
	if list := p.free[geom]; len(list) > 0 {
		m = list[len(list)-1]
		p.free[geom] = list[:len(list)-1]
	}
	p.mu.Unlock()
	if m != nil {
		m.Reset(profile, seed)
		return m, nil
	}
	return NewModule(geom, profile, seed)
}

// Put makes the module available for a future Get. The module must no
// longer be used by its previous owner. Dense (oracle) modules are not
// pooled: their storage is fully materialized by design and reusing it
// would defeat the byte-identity suites' purpose.
func (p *ModulePool) Put(m *Module) {
	if m == nil || m.store.dense {
		return
	}
	p.mu.Lock()
	p.free[m.geom] = append(p.free[m.geom], m)
	p.mu.Unlock()
}

// Idle reports how many modules currently sit in the pool.
func (p *ModulePool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, l := range p.free {
		n += len(l)
	}
	return n
}
