package dram

import (
	"bytes"
	"testing"
)

// sparseDensePair builds a sparse module and its dense oracle with
// identical geometry, profile and seed.
func sparseDensePair(t *testing.T, size int, profile DeviceProfile, seed int64) (*Module, *Module) {
	t.Helper()
	geom := GeometryForSize(size, 16)
	sparse, err := NewModule(geom, profile, seed)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := NewDenseModule(geom, profile, seed)
	if err != nil {
		t.Fatal(err)
	}
	return sparse, dense
}

// compareModules byte-compares full module contents (chunked to keep
// the working buffer small).
func compareModules(t *testing.T, sparse, dense *Module, when string) {
	t.Helper()
	const chunk = 1 << 16
	sb := make([]byte, chunk)
	db := make([]byte, chunk)
	for addr := 0; addr < sparse.Size(); addr += chunk {
		n := chunk
		if addr+n > sparse.Size() {
			n = sparse.Size() - addr
		}
		sparse.ReadRangeInto(addr, sb[:n])
		dense.ReadRangeInto(addr, db[:n])
		if !bytes.Equal(sb[:n], db[:n]) {
			for i := range sb[:n] {
				if sb[i] != db[i] {
					t.Fatalf("%s: sparse and dense differ at addr %#x: %#x vs %#x", when, addr+i, sb[i], db[i])
				}
			}
		}
	}
}

// driveModule runs the same mixed workload — pattern fills, bulk and
// byte writes, double-sided and n-sided hammers at several intensities —
// against one module and returns the concatenated flip events.
func driveModule(t *testing.T, m *Module) []FlipEvent {
	t.Helper()
	var events []FlipEvent
	// Polarity fills over a band of rows, as the templating engine does.
	for row := 1; row < 40; row++ {
		v := byte(0x00)
		if row%2 == 0 {
			v = 0xFF
		}
		m.FillRow(0, row, v)
		m.FillRow(1, row, v^0xFF)
	}
	// Non-constant content: bulk write spanning a page boundary, plus
	// single-byte pokes.
	patt := make([]byte, 3*OSPageBytes/2)
	for i := range patt {
		patt[i] = byte(i * 7)
	}
	m.WriteRange(m.geom.RowBaseAddr(0, 10)+100, patt)
	m.Write(m.geom.RowBaseAddr(1, 5)+17, 0xA5)
	// Hammer sweeps in both banks.
	for row := 2; row < 38; row += 3 {
		ev, err := m.HammerDoubleSided(0, row, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev...)
	}
	for _, intensity := range []float64{0.3, 0.6, 0.9} {
		ev, err := m.HammerNSided(1, 3, 5, intensity)
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev...)
	}
	// Re-fill some hammered rows (the next experiment's fills) and
	// hammer again: exercises demote-then-rematerialize.
	for row := 2; row < 20; row++ {
		m.FillRow(0, row, 0xFF)
	}
	for row := 3; row < 18; row += 2 {
		ev, err := m.HammerDoubleSided(0, row, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev...)
	}
	return events
}

// TestSparseDenseIdentity is the storage rewrite's core contract: the
// sparse fast paths (constant pages, demote-on-fill, copy-on-hammer,
// sub-threshold skip) are invisible — the same seed and workload give
// identical flip inventories and identical memory images on the sparse
// module and the always-materialized dense oracle.
func TestSparseDenseIdentity(t *testing.T) {
	sparse, dense := sparseDensePair(t, 8<<20, PaperDDR3(), 42)
	se := driveModule(t, sparse)
	de := driveModule(t, dense)
	if len(se) == 0 {
		t.Fatal("workload produced no flips; test is vacuous")
	}
	if len(se) != len(de) {
		t.Fatalf("flip counts differ: sparse %d, dense %d", len(se), len(de))
	}
	for i := range se {
		if se[i] != de[i] {
			t.Fatalf("flip %d differs: sparse %+v, dense %+v", i, se[i], de[i])
		}
	}
	compareModules(t, sparse, dense, "after workload")
}

// TestSparseDenseIdentityUnderFaults repeats the identity check with
// the probabilistic fault model installed: pass counters and per-pass
// jitter draws must advance identically on both storages (the
// sub-threshold early-out is disabled when faults are active).
func TestSparseDenseIdentityUnderFaults(t *testing.T) {
	sparse, dense := sparseDensePair(t, 8<<20, PaperDDR3(), 7)
	fm := FaultModel{Seed: 99, FlipFailProb: 0.3, TRRJitter: 0.2}
	sparse.SetFaultModel(fm)
	dense.SetFaultModel(fm)
	se := driveModule(t, sparse)
	de := driveModule(t, dense)
	if len(se) != len(de) {
		t.Fatalf("flip counts differ under faults: sparse %d, dense %d", len(se), len(de))
	}
	for i := range se {
		if se[i] != de[i] {
			t.Fatalf("flip %d differs under faults: sparse %+v, dense %+v", i, se[i], de[i])
		}
	}
	compareModules(t, sparse, dense, "after faulty workload")
}

// TestSparseDenseWeakCellIdentity: the lazily generated weak-cell
// layout is a pure function of (seed, bank, row), unaffected by storage
// mode or by the bounded cache dropping and regenerating entries.
func TestSparseDenseWeakCellIdentity(t *testing.T) {
	sparse, dense := sparseDensePair(t, 4<<20, PaperDDR3(), 1234)
	for bank := 0; bank < 2; bank++ {
		for row := 0; row < 50; row++ {
			sc := sparse.weakCells(bank, row)
			dc := dense.weakCells(bank, row)
			if len(sc) != len(dc) {
				t.Fatalf("bank %d row %d: cell counts differ: %d vs %d", bank, row, len(sc), len(dc))
			}
			for i := range sc {
				if sc[i] != dc[i] {
					t.Fatalf("bank %d row %d cell %d differs: %+v vs %+v", bank, row, i, sc[i], dc[i])
				}
			}
		}
	}
	// Cache regeneration is bit-identical: force a drop and re-query.
	key := int64(0)<<32 | int64(3)
	want := append([]WeakCell(nil), sparse.weakCells(0, 3)...)
	sparse.weakMu.Lock()
	delete(sparse.weakCache, key)
	sparse.weakMu.Unlock()
	got := sparse.weakCells(0, 3)
	if len(got) != len(want) {
		t.Fatalf("regenerated cell count differs: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("regenerated cell %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestSparseResidencyLifecycle checks the memory-scaling invariants:
// reads never materialize, constant fills demote and recycle arena
// cells, and only pages holding divergent bytes stay resident.
func TestSparseResidencyLifecycle(t *testing.T) {
	geom := GeometryForSize(8<<20, 16)
	m, err := NewModule(geom, PaperDDR3(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ResidentPages(); got != 0 {
		t.Fatalf("fresh module has %d resident pages, want 0", got)
	}
	// Reads of untouched memory do not allocate storage.
	buf := make([]byte, 1<<16)
	m.ReadRangeInto(0, buf)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("untouched byte %d reads %#x, want 0", i, b)
		}
	}
	if got := m.ResidentPages(); got != 0 {
		t.Fatalf("reads materialized %d pages, want 0", got)
	}
	// Constant fills stay constant.
	m.FillRow(0, 4, 0xFF)
	if got := m.ResidentPages(); got != 0 {
		t.Fatalf("constant fill materialized %d pages, want 0", got)
	}
	if c, ok := m.PageConstant(geom.RowBaseAddr(0, 4)); !ok || c != 0xFF {
		t.Fatalf("filled page constant = (%#x, %v), want (0xFF, true)", c, ok)
	}
	// A real write materializes exactly one page...
	m.Write(geom.RowBaseAddr(0, 4)+8, 0x01)
	if got := m.ResidentPages(); got != 1 {
		t.Fatalf("single write holds %d resident pages, want 1", got)
	}
	// ...and the next experiment's fill demotes it back, recycling the
	// arena cell.
	before := m.ArenaBytes()
	m.FillRow(0, 4, 0x00)
	if got := m.ResidentPages(); got != 0 {
		t.Fatalf("fill left %d resident pages, want 0", got)
	}
	m.Write(geom.RowBaseAddr(0, 6)+1, 0x80)
	if got := m.ArenaBytes(); got != before {
		t.Fatalf("arena grew from %d to %d bytes despite a free cell", before, got)
	}
	if m.TouchedPages() == 0 {
		t.Fatal("TouchedPages lost track of dirtied pages")
	}
}

// TestSparseMultiGBSmoke templates rows at the far end of a 16 GB
// (4M-page) module: construction must be cheap, hammering must find the
// same kinds of flips as on small modules, and residency must stay
// proportional to the handful of rows touched. Skipped under -short.
func TestSparseMultiGBSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-GB smoke test skipped in -short mode")
	}
	geom := GeometryForSize(16<<30, 16)
	if geom.Size() != 16<<30 {
		t.Fatalf("geometry covers %d bytes, want %d", geom.Size(), 16<<30)
	}
	m, err := NewModule(geom, PaperDDR3(), 99)
	if err != nil {
		t.Fatal(err)
	}
	flips := 0
	// Hammer a band near the top of the row space in every bank.
	top := m.geom.RowsPerBank - 2
	for bank := 0; bank < geom.Banks; bank++ {
		for row := top - 20; row < top; row += 3 {
			m.FillRow(bank, row-1, 0xFF)
			m.FillRow(bank, row, 0x00)
			m.FillRow(bank, row+1, 0xFF)
			ev, err := m.HammerDoubleSided(bank, row, 1.0)
			if err != nil {
				t.Fatal(err)
			}
			flips += len(ev)
			// Every reported flip must be readable at its address.
			for _, e := range ev {
				b := m.Read(e.Addr)
				bit := b & (1 << e.Bit)
				if (e.Dir == ZeroToOne) != (bit != 0) {
					t.Fatalf("flip %+v not visible in memory (byte %#x)", e, b)
				}
			}
		}
	}
	if flips == 0 {
		t.Fatal("no flips at 16 GB geometry; weak-cell generation broken at scale")
	}
	// Residency ∝ touched rows, not geometry: the band touched ~49 rows
	// per bank (2 pages each), so resident pages must stay far below the
	// 4M-page geometry.
	if got := m.ResidentPages(); got > 4096 {
		t.Fatalf("%d resident pages after templating a small band; residency scales with geometry", got)
	}
}
