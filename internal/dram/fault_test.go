package dram

import (
	"bytes"
	"math"
	"testing"
)

// hotProfile flips enough cells per page that fault statistics have
// sample size.
func hotProfile() DeviceProfile {
	return DeviceProfile{Name: "hot", Type: DDR3, FlipsPerPage: 200}
}

// TestZeroFaultModelIsIdentity: installing the zero-valued fault model
// must leave the module byte-identical to one that never heard of
// faults — the gate for the robust engine's "zero-fault path is today's
// path" guarantee.
func TestZeroFaultModelIsIdentity(t *testing.T) {
	plain := newTestModule(t, hotProfile())
	faulted := newTestModule(t, hotProfile())
	faulted.SetFaultModel(FaultModel{})

	for _, m := range []*Module{plain, faulted} {
		m.FillRow(3, 40, 0x00)
	}
	a, _ := plain.HammerDoubleSided(3, 40, 1)
	b, _ := faulted.HammerDoubleSided(3, 40, 1)
	if len(a) == 0 {
		t.Fatal("hot device with full hammer must flip")
	}
	if len(a) != len(b) {
		t.Fatalf("zero fault model changed flip count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("zero fault model changed event %d: %v vs %v", i, a[i], b[i])
		}
	}
	base := plain.geom.RowBaseAddr(3, 40)
	if !bytes.Equal(plain.ReadRange(base, RowBytes), faulted.ReadRange(base, RowBytes)) {
		t.Fatal("zero fault model changed row contents")
	}
}

// TestFaultStreamsAreDeterministic: the same (seed, bank, row, pass,
// bit) tuple must always draw the same uniform — the property that
// makes the whole retry engine schedule-independent.
func TestFaultStreamsAreDeterministic(t *testing.T) {
	for _, tc := range []struct {
		seed      int64
		bank, row int
		pass      uint64
		bit       int
	}{
		{1, 0, 0, 0, 0},
		{1, 3, 40, 2, 17},
		{9, 15, 127, 100, -1},
	} {
		a := faultUniform(tc.seed, tc.bank, tc.row, tc.pass, tc.bit)
		b := faultUniform(tc.seed, tc.bank, tc.row, tc.pass, tc.bit)
		if a != b {
			t.Fatalf("faultUniform not deterministic for %+v", tc)
		}
		if a < 0 || a >= 1 {
			t.Fatalf("faultUniform out of [0,1): %v", a)
		}
	}
	// Neighboring tuples must decorrelate: a raw (unfinalized) splitmix
	// key would make adjacent rows draw near-identical streams.
	var prev float64
	diffs := 0
	for row := 0; row < 64; row++ {
		u := faultUniform(1, 0, row, 0, 0)
		if math.Abs(u-prev) > 0.01 {
			diffs++
		}
		prev = u
	}
	if diffs < 48 {
		t.Fatalf("adjacent-row draws look correlated: only %d/64 moved", diffs)
	}
}

// TestFaultStreamUniformity: the per-bit draws should be roughly
// uniform, so FlipFailProb p really suppresses ≈p of the firings.
func TestFaultStreamUniformity(t *testing.T) {
	n, below := 20000, 0
	for i := 0; i < n; i++ {
		if faultUniform(7, i%16, i/16, uint64(i%5), i%8192) < 0.3 {
			below++
		}
	}
	frac := float64(below) / float64(n)
	if math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("P(u<0.3) = %.3f, want ≈0.30", frac)
	}
}

// TestFlipFailProbSuppressesFlips: with failure probability p a single
// hammer pass should fire ≈(1−p) of the cells a fault-free pass fires,
// and repeated passes should recover the stragglers.
func TestFlipFailProbSuppressesFlips(t *testing.T) {
	clean := newTestModule(t, hotProfile())
	clean.FillRow(5, 60, 0x00)
	full, _ := clean.HammerDoubleSided(5, 60, 1)
	if len(full) < 50 {
		t.Fatalf("need a big sample, got %d flips", len(full))
	}

	lossy := newTestModule(t, hotProfile())
	lossy.SetFaultModel(FaultModel{FlipFailProb: 0.5, Seed: 3})
	lossy.FillRow(5, 60, 0x00)
	first, _ := lossy.HammerDoubleSided(5, 60, 1)
	frac := float64(len(first)) / float64(len(full))
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("fail prob 0.5: first pass fired %.2f of cells, want ≈0.5", frac)
	}

	// Each extra pass halves the stragglers; ten passes leave ~2^-10.
	fired := len(first)
	for pass := 0; pass < 10; pass++ {
		ev, _ := lossy.HammerDoubleSided(5, 60, 1)
		fired += len(ev)
	}
	if fired < len(full)-2 {
		t.Fatalf("retries recovered only %d/%d flips", fired, len(full))
	}
}

// TestFlipFailRetryIsPassKeyed: two modules with the same fault seed
// must make identical draws pass by pass — the counter advances per
// hammer, not per wall clock.
func TestFlipFailRetryIsPassKeyed(t *testing.T) {
	mk := func() *Module {
		m := newTestModule(t, hotProfile())
		m.SetFaultModel(FaultModel{FlipFailProb: 0.4, Seed: 11})
		m.FillRow(2, 30, 0x00)
		return m
	}
	a, b := mk(), mk()
	for pass := 0; pass < 4; pass++ {
		ea, _ := a.HammerDoubleSided(2, 30, 1)
		eb, _ := b.HammerDoubleSided(2, 30, 1)
		if len(ea) != len(eb) {
			t.Fatalf("pass %d diverged: %d vs %d flips", pass, len(ea), len(eb))
		}
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("pass %d event %d diverged", pass, i)
			}
		}
	}
}

// TestTRRJitterPerturbsThresholdCells: jitter must be able to push
// marginal cells across the firing threshold in both directions while a
// comfortable margin stays unaffected on average.
func TestTRRJitterPerturbsThresholdCells(t *testing.T) {
	// At intensity 1 the double-sided disturbance is 1.0 and every
	// threshold ≤ 1 cell fires; with 30% downward jitter some passes
	// drop below the high thresholds.
	clean := newTestModule(t, hotProfile())
	clean.FillRow(7, 80, 0x00)
	full, _ := clean.HammerDoubleSided(7, 80, 1)

	jittery := newTestModule(t, hotProfile())
	jittery.SetFaultModel(FaultModel{TRRJitter: 0.3, Seed: 5})
	jittery.FillRow(7, 80, 0x00)
	seen := map[FlipEvent]bool{}
	losses := 0
	first, _ := jittery.HammerDoubleSided(7, 80, 1)
	for _, e := range first {
		seen[e] = true
	}
	if len(first) < len(full) {
		losses++
	}
	// More passes with fresh jitter draws recover the high-threshold
	// cells a low-eff pass skipped.
	for pass := 0; pass < 20; pass++ {
		ev, _ := jittery.HammerDoubleSided(7, 80, 1)
		for _, e := range ev {
			seen[e] = true
		}
	}
	if len(seen) < len(full) {
		t.Fatalf("jittered passes recovered %d/%d flips", len(seen), len(full))
	}
}

// TestFaultModelInstalledRoundTrips checks the accessor used by tests
// and diagnostics.
func TestFaultModelInstalledRoundTrips(t *testing.T) {
	m := newTestModule(t, hotProfile())
	want := FaultModel{FlipFailProb: 0.25, TRRJitter: 0.1, Seed: 6}
	m.SetFaultModel(want)
	if got := m.FaultModelInstalled(); got != want {
		t.Fatalf("FaultModelInstalled = %+v, want %+v", got, want)
	}
}
