// Package dram simulates the DRAM substrate the Rowhammer attack runs
// on: banks and rows with an invertible XOR physical-address mapping,
// per-device sparse vulnerable-cell maps calibrated to the flip
// densities the paper measured (Table I), a Target-Row-Refresh (TRR)
// sampler model for DDR4, and double-sided / n-sided hammering that
// disturbs victim rows at cell granularity.
package dram

import "fmt"

// RowBytes is the DRAM row (page in DRAM terminology) size: 8 KB, the
// fixed row size the paper's §VIII discussion cites.
const RowBytes = 8192

// OSPageBytes is the operating-system page size; each DRAM row holds two
// OS pages.
const OSPageBytes = 4096

// Geometry describes a module's bank/row organization. Banks must be a
// power of two for the XOR address mapping.
type Geometry struct {
	// Banks is the number of banks (typically 16).
	Banks int
	// RowsPerBank is the number of rows in each bank.
	RowsPerBank int
}

// Validate checks the geometry invariants.
func (g Geometry) Validate() error {
	if g.Banks <= 0 || g.Banks&(g.Banks-1) != 0 {
		return fmt.Errorf("dram: banks must be a positive power of two, got %d", g.Banks)
	}
	if g.RowsPerBank <= 0 {
		return fmt.Errorf("dram: rows per bank must be positive, got %d", g.RowsPerBank)
	}
	return nil
}

// Size returns the module capacity in bytes.
func (g Geometry) Size() int { return g.Banks * g.RowsPerBank * RowBytes }

// GeometryForSize builds a geometry with the given bank count covering
// at least size bytes.
func GeometryForSize(size, banks int) Geometry {
	rows := (size + banks*RowBytes - 1) / (banks * RowBytes)
	if rows == 0 {
		rows = 1
	}
	return Geometry{Banks: banks, RowsPerBank: rows}
}

// Loc is a physical DRAM location at row-chunk granularity.
type Loc struct {
	Bank int
	Row  int
	// Col is the byte offset within the row.
	Col int
}

// LocOf translates a physical byte address to its bank/row/column. Row
// chunks are interleaved across banks with an XOR twist, mirroring real
// controllers: consecutive 8 KB chunks land in different banks, and the
// bank of a chunk depends on both its position and its row index.
func (g Geometry) LocOf(addr int) Loc {
	chunk := addr / RowBytes
	col := addr % RowBytes
	row := chunk / g.Banks
	j := chunk % g.Banks
	bank := j ^ (row & (g.Banks - 1))
	return Loc{Bank: bank, Row: row, Col: col}
}

// AddrOf is the inverse of LocOf.
func (g Geometry) AddrOf(l Loc) int {
	j := l.Bank ^ (l.Row & (g.Banks - 1))
	chunk := l.Row*g.Banks + j
	return chunk*RowBytes + l.Col
}

// RowBaseAddr returns the physical address of the first byte of a row.
func (g Geometry) RowBaseAddr(bank, row int) int {
	return g.AddrOf(Loc{Bank: bank, Row: row})
}
