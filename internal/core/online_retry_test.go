package core

import (
	"bytes"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
	"rowhammer/internal/profile"
	"rowhammer/internal/tensor"
)

// retrySystem builds a fresh system with an optional fault model.
func retrySystem(t testing.TB, bufPages int, fail float64) *memsys.System {
	t.Helper()
	mod, err := dram.NewModuleForSize(bufPages*memsys.PageSize+(16<<20), dram.PaperDDR3(), 77)
	if err != nil {
		t.Fatal(err)
	}
	sys := memsys.NewSystem(mod)
	if fail > 0 {
		sys.InjectFaults(dram.FaultModel{FlipFailProb: fail, Seed: 9})
	}
	return sys
}

func retryConfig(rounds int) OnlineConfig {
	return OnlineConfig{
		BufferPages:    2048,
		Sides:          2,
		Intensity:      1,
		MeasureSeed:    7,
		WeightFileName: "retry-weights.bin",
		Rounds:         rounds,
		Escalation:     1.15,
	}
}

// TestRetryEngineMatrix sweeps flip-failure rates against round budgets
// and checks the engine's core contracts: per-round NMatch is monotone
// non-decreasing, bigger budgets never do worse, and the fault-free
// runs converge in one round regardless of budget.
func TestRetryEngineMatrix(t *testing.T) {
	file, reqs := syntheticOnlineWorkload(256, 3)
	for _, fail := range []float64{0, 0.3, 0.6} {
		matchAt := map[int]int{}
		for _, rounds := range []int{1, 3, 5} {
			t.Run(fmt.Sprintf("fail%.1f/rounds%d", fail, rounds), func(t *testing.T) {
				sys := retrySystem(t, 2048, fail)
				res, err := ExecuteOnline(sys, file, reqs, retryConfig(rounds))
				if err != nil {
					t.Fatal(err)
				}
				rep := res.Report
				if rep == nil || len(rep.Rounds) == 0 {
					t.Fatal("no attack report")
				}
				if got := rep.RoundsExecuted(); got > rounds {
					t.Fatalf("executed %d rounds with budget %d", got, rounds)
				}
				prev := -1
				for _, r := range rep.Rounds {
					if r.NMatch < prev {
						t.Fatalf("NMatch regressed: %+v", rep.Rounds)
					}
					prev = r.NMatch
					if r.NMatch+r.Missing != rep.Rounds[0].NMatch+rep.Rounds[0].Missing {
						t.Fatalf("NMatch+Missing not conserved across rounds: %+v", rep.Rounds)
					}
				}
				if fail == 0 {
					if rep.RoundsExecuted() != 1 {
						t.Fatalf("fault-free run took %d rounds", rep.RoundsExecuted())
					}
					// Every requirement the planner placed must fire (the
					// 2048-page buffer is below the Eq. 2 matching floor, so
					// some requirements legitimately stay unmatched).
					if want := res.NRequired - res.Unmatched; res.NMatch != want {
						t.Fatalf("fault-free run matched %d, want %d (of %d)", res.NMatch, want, res.NRequired)
					}
				}
				matchAt[rounds] = res.NMatch
			})
		}
		if matchAt[3] < matchAt[1] || matchAt[5] < matchAt[3] {
			t.Fatalf("fail %.1f: NMatch not monotone in round budget: %v", fail, matchAt)
		}
		if fail == 0.6 && matchAt[5] <= matchAt[1] {
			t.Fatalf("fail 0.6: 5-round budget recovered nothing over single shot: %v", matchAt)
		}
	}
}

// TestRetryReportWorkerDeterminism: under fault injection the whole
// report — per-round stats, re-templating stats, metrics and the
// corrupted file — must be byte-identical at 1, 2 and 4 templating
// workers. Only the wall-clock Timing block may differ.
func TestRetryReportWorkerDeterminism(t *testing.T) {
	prevProcs := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prevProcs)

	file, reqs := syntheticOnlineWorkload(256, 3)
	cfg := retryConfig(4)

	run := func(workers int) *OnlineResult {
		prev := tensor.SetMaxWorkers(workers)
		defer tensor.SetMaxWorkers(prev)
		sys := retrySystem(t, cfg.BufferPages, 0.4)
		res, err := ExecuteOnline(sys, file, reqs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res.Report.Timing = StageTiming{}
		return res
	}

	ref := run(1)
	if ref.Report.RoundsExecuted() < 2 {
		t.Fatalf("fault rate 0.4 finished in %d round(s); retry path untested", ref.Report.RoundsExecuted())
	}
	for _, w := range []int{2, 4} {
		got := run(w)
		if !reflect.DeepEqual(got.Report, ref.Report) {
			t.Fatalf("report at %d workers differs:\n%+v\nwant\n%+v", w, got.Report, ref.Report)
		}
		if got.NMatch != ref.NMatch || got.RMatch != ref.RMatch ||
			got.NFlipOnline != ref.NFlipOnline || got.AccidentalFlips != ref.AccidentalFlips {
			t.Fatalf("metrics at %d workers diverged", w)
		}
		if !bytes.Equal(got.CorruptedFile, ref.CorruptedFile) {
			t.Fatalf("corrupted file at %d workers differs", w)
		}
		if !reflect.DeepEqual(got.Plan, ref.Plan) {
			t.Fatalf("plan at %d workers differs", w)
		}
	}
}

// TestZeroFaultRobustEqualsSingleShot: with no faults injected, the
// full robust configuration (round budget, escalation, re-templating)
// must reproduce the single-shot engine byte for byte — round 1 fires
// everything, so the retry machinery never touches memory.
func TestZeroFaultRobustEqualsSingleShot(t *testing.T) {
	file, reqs := syntheticOnlineWorkload(256, 3)

	single := retryConfig(0)
	single.Escalation = 0
	sres, err := ExecuteOnline(retrySystem(t, 2048, 0), file, reqs, single)
	if err != nil {
		t.Fatal(err)
	}

	// Re-templating stays off: the 2048-page buffer leaves requirements
	// unmatched even fault-free, so any growth pass would legitimately
	// change the plan. The round/escalation machinery alone must be a
	// byte-exact no-op on a fault-free module.
	robust := retryConfig(5)
	rres, err := ExecuteOnline(retrySystem(t, 2048, 0), file, reqs, robust)
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(sres.CorruptedFile, rres.CorruptedFile) {
		t.Fatal("robust config corrupted file differs from single shot on a fault-free module")
	}
	if sres.NMatch != rres.NMatch || sres.NFlipOnline != rres.NFlipOnline ||
		sres.AccidentalFlips != rres.AccidentalFlips || sres.RMatch != rres.RMatch ||
		sres.Unmatched != rres.Unmatched {
		t.Fatal("robust config metrics differ from single shot on a fault-free module")
	}
	if !reflect.DeepEqual(sres.Plan, rres.Plan) {
		t.Fatal("robust config plan differs from single shot on a fault-free module")
	}
	if rres.Report.RoundsExecuted() != 1 || len(rres.Report.Retemplates) != 0 {
		t.Fatalf("fault-free robust run did extra work: %d rounds, %d re-templates",
			rres.Report.RoundsExecuted(), len(rres.Report.Retemplates))
	}
}

// TestRetryRecoversFromFlipFailures is the headline acceptance check on
// the synthetic workload at the paper's profiling scale: at 50%
// per-pass flip failure a single shot loses a large fraction of the
// required flips, while the robust engine — 5 verify/re-hammer rounds
// plus re-templating passes that recover the flips faulty profiling
// sweeps missed — brings r_match back above 95%.
func TestRetryRecoversFromFlipFailures(t *testing.T) {
	file, reqs := syntheticOnlineWorkload(256, 3)
	single := DefaultOnlineConfig(256)
	single.MeasureSeed = 7
	single.WeightFileName = "retry-weights.bin"
	robust := single
	robust.Rounds = 5
	robust.Escalation = 2
	robust.RetemplatePasses = 2

	sres, err := ExecuteOnline(retrySystem(t, single.BufferPages, 0.5), file, reqs, single)
	if err != nil {
		t.Fatal(err)
	}
	rres, err := ExecuteOnline(retrySystem(t, robust.BufferPages, 0.5), file, reqs, robust)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("single shot r_match %.2f%% (%d/%d), 5-round r_match %.2f%% (%d/%d over %d rounds)",
		sres.RMatch, sres.NMatch, sres.NRequired,
		rres.RMatch, rres.NMatch, rres.NRequired, rres.Report.RoundsExecuted())
	if sres.RMatch >= 95 {
		t.Fatalf("single shot r_match %.2f%% — fault injection had no bite", sres.RMatch)
	}
	if rres.RMatch < 95 {
		t.Fatalf("5-round retry r_match %.2f%%, want ≥ 95%%", rres.RMatch)
	}
	if rres.Report.Recovered() == 0 {
		t.Fatal("retry rounds recovered no flips")
	}
}

// TestAdaptiveRetemplating: shrink the buffer until the first plan
// leaves requirements unmatched and check the engine grows the buffer,
// re-plans, and records the passes.
func TestAdaptiveRetemplating(t *testing.T) {
	file, reqs := syntheticOnlineWorkload(64, 3)
	cfg := OnlineConfig{
		// Too small for all 8 single-flip requirements to find hosts.
		BufferPages:      256,
		Sides:            2,
		Intensity:        1,
		MeasureSeed:      7,
		WeightFileName:   "grow-weights.bin",
		RetemplatePasses: 3,
	}
	base, err := ExecuteOnline(retrySystem(t, 4096, 0), file, reqs, OnlineConfig{
		BufferPages: cfg.BufferPages, Sides: 2, Intensity: 1, MeasureSeed: 7,
		WeightFileName: cfg.WeightFileName,
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.Unmatched == 0 {
		t.Skip("baseline buffer matched everything; cannot exercise re-templating")
	}
	res, err := ExecuteOnline(retrySystem(t, 4096, 0), file, reqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Retemplates) == 0 {
		t.Fatal("unmatched requirements but no re-templating pass recorded")
	}
	if res.Unmatched >= base.Unmatched {
		t.Fatalf("re-templating did not reduce unmatched: %d → %d", base.Unmatched, res.Unmatched)
	}
	last := res.Report.Retemplates[len(res.Report.Retemplates)-1]
	if last.BufferPages <= cfg.BufferPages {
		t.Fatalf("buffer never grew: %+v", res.Report.Retemplates)
	}
	if res.Report.Unmatched != res.Unmatched {
		t.Fatalf("report unmatched %d != result unmatched %d", res.Report.Unmatched, res.Unmatched)
	}
}

// TestTallyDeltaDenominator is the regression for the δ accounting bug:
// δ must average accidental flips over every disturbed target page —
// including pages that took only required flips — not just over pages
// that happened to take accidental ones.
func TestTallyDeltaDenominator(t *testing.T) {
	const pages = 4
	orig := make([]byte, pages*memsys.PageSize)
	corrupted := append([]byte(nil), orig...)

	// Page 0: one required flip, nothing else.
	corrupted[0*memsys.PageSize+10] ^= 1 << 2
	// Page 1: one required flip plus two accidental flips.
	corrupted[1*memsys.PageSize+20] ^= 1 << 4
	corrupted[1*memsys.PageSize+21] ^= 1 << 0
	corrupted[1*memsys.PageSize+22] ^= 1 << 7
	// Page 2: three accidental flips, no requirement.
	corrupted[2*memsys.PageSize+30] ^= (1 << 1) | (1 << 5)
	corrupted[2*memsys.PageSize+31] ^= 1 << 6
	// Page 3: untouched.

	reqs := []profile.PageRequirement{
		{FilePage: 0, Flips: []profile.CellFlip{{Offset: 10, Bit: 2, Dir: dram.ZeroToOne}}},
		{FilePage: 1, Flips: []profile.CellFlip{{Offset: 20, Bit: 4, Dir: dram.ZeroToOne}}},
	}
	var res OnlineResult
	res.tally(orig, corrupted, reqs)

	if res.NRequired != 2 || res.NMatch != 2 {
		t.Fatalf("NMatch %d/%d, want 2/2", res.NMatch, res.NRequired)
	}
	if res.AccidentalFlips != 5 {
		t.Fatalf("AccidentalFlips = %d, want 5", res.AccidentalFlips)
	}
	if res.NFlipOnline != 7 {
		t.Fatalf("NFlipOnline = %d, want 7", res.NFlipOnline)
	}
	// Three pages are disturbed (0, 1, 2) → δ = 5/3. The buggy tally
	// divided by the two pages with accidental flips (δ = 5/2),
	// understating r_match.
	s := float64(memsys.PageSize * 8)
	want := 100 * (1 - (5.0/3.0)/s)
	if diff := res.RMatch - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("RMatch = %.10f, want %.10f (δ = 5/3)", res.RMatch, want)
	}
	buggy := 100 * (1 - (5.0/2.0)/s)
	if diff := res.RMatch - buggy; diff < 1e-12 && diff > -1e-12 {
		t.Fatal("RMatch matches the buggy δ = 5/2 accounting")
	}
}

// TestAfterRoundHook: the victim-under-fire seam must fire once per
// executed round, in order, with a private copy of the mapped file at
// that instant — the last copy byte-identical to the final
// CorruptedFile, and intermediate copies monotone in fired flips.
func TestAfterRoundHook(t *testing.T) {
	file, reqs := syntheticOnlineWorkload(256, 3)
	cfg := retryConfig(4)
	var rounds []int
	var snaps [][]byte
	cfg.AfterRound = func(round int, mapped []byte) {
		rounds = append(rounds, round)
		snaps = append(snaps, mapped)
	}
	res, err := ExecuteOnline(retrySystem(t, 2048, 0.4), file, reqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != res.Report.RoundsExecuted() {
		t.Fatalf("hook fired %d times over %d executed rounds", len(rounds), res.Report.RoundsExecuted())
	}
	for i, r := range rounds {
		if r != i+1 {
			t.Fatalf("hook round order %v", rounds)
		}
	}
	last := snaps[len(snaps)-1]
	if len(last) != len(res.CorruptedFile) {
		t.Fatalf("final snapshot %d bytes, corrupted file %d", len(last), len(res.CorruptedFile))
	}
	for i := range last {
		if last[i] != res.CorruptedFile[i] {
			t.Fatalf("final snapshot diverges from CorruptedFile at byte %d", i)
		}
	}
	// Corruption is monotone across rounds: every round's snapshot
	// differs from the clean file in at least as many bits as the
	// previous one (re-hammering only fires additional cells).
	prev := 0
	for i, s := range snaps {
		d := 0
		for j := range s {
			for x := s[j] ^ file[j]; x != 0; x &= x - 1 {
				d++
			}
		}
		if d < prev {
			t.Fatalf("round %d snapshot has %d flips, previous had %d", i+1, d, prev)
		}
		prev = d
	}
	if prev != res.NFlipOnline {
		t.Fatalf("final snapshot flips %d != NFlipOnline %d", prev, res.NFlipOnline)
	}
}

// TestUnmatchedPropagated: requirements the planner cannot place must
// surface in OnlineResult.Unmatched instead of being silently dropped.
func TestUnmatchedPropagated(t *testing.T) {
	file, reqs := syntheticOnlineWorkload(64, 3)
	// An impossible requirement: three exact flips on one page has
	// probability ≈3e-5 per Eq. 2 even at the paper's full scale.
	reqs = append(reqs, profile.PageRequirement{
		FilePage: 1,
		Flips: []profile.CellFlip{
			{Offset: 1, Bit: 1, Dir: dram.ZeroToOne},
			{Offset: 2, Bit: 2, Dir: dram.OneToZero},
			{Offset: 3, Bit: 3, Dir: dram.ZeroToOne},
		},
	})
	res, err := ExecuteOnline(retrySystem(t, 2048, 0), file, reqs, OnlineConfig{
		BufferPages: 2048, Sides: 2, Intensity: 1, MeasureSeed: 7,
		WeightFileName: "unmatched-weights.bin",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unmatched == 0 {
		t.Fatal("impossible requirement reported as matched")
	}
	if res.Unmatched != len(res.Plan.Unmatched) {
		t.Fatalf("Unmatched %d != plan's %d", res.Unmatched, len(res.Plan.Unmatched))
	}
	if res.Report.Unmatched != res.Unmatched {
		t.Fatalf("report Unmatched %d != result's %d", res.Report.Unmatched, res.Unmatched)
	}
}
