package core

import (
	"testing"

	"rowhammer/internal/data"
	"rowhammer/internal/models"
)

// runOfflineAtWorkers executes a short RunOffline against a freshly
// built (untrained) victim with a fixed shard count and the given
// worker bound. Untrained weights are fine here: the test checks the
// determinism contract, not attack quality.
func runOfflineAtWorkers(t *testing.T, workers int) *Result {
	t.Helper()
	m, err := models.Build(models.Config{Arch: "resnet20", Classes: 10, WidthMult: 0.25, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	dcfg := data.SynthCIFAR(0, 21)
	dcfg.Samples = 16
	attackSet := data.Synthesize(dcfg, 99)

	cfg := DefaultConfig(3, 2)
	cfg.Iterations = 4
	cfg.BitReduceEvery = 2
	cfg.RefineBatch = 8
	cfg.TrainShards = 4
	cfg.TrainWorkers = workers
	out, err := RunOffline(m, attackSet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRunOfflineBitIdenticalAcrossWorkers pins the trainer's
// determinism contract end to end: with a fixed TrainShards, the
// worker count is scheduling-only, so the attack output — codes, flip
// count, per-iteration losses — must be byte-identical at any
// parallelism.
func TestRunOfflineBitIdenticalAcrossWorkers(t *testing.T) {
	base := runOfflineAtWorkers(t, 1)
	for _, workers := range []int{2, 4} {
		out := runOfflineAtWorkers(t, workers)
		if out.NFlip != base.NFlip {
			t.Fatalf("workers=%d: NFlip %d != %d at workers=1", workers, out.NFlip, base.NFlip)
		}
		if len(out.BackdooredCodes) != len(base.BackdooredCodes) {
			t.Fatalf("workers=%d: code vector length mismatch", workers)
		}
		for i := range out.BackdooredCodes {
			if out.BackdooredCodes[i] != base.BackdooredCodes[i] {
				t.Fatalf("workers=%d: code %d differs: %d != %d", workers, i, out.BackdooredCodes[i], base.BackdooredCodes[i])
			}
		}
		if len(out.LossHistory) != len(base.LossHistory) {
			t.Fatalf("workers=%d: loss history length mismatch", workers)
		}
		for i := range out.LossHistory {
			if out.LossHistory[i] != base.LossHistory[i] {
				t.Fatalf("workers=%d: loss[%d] %v != %v", workers, i, out.LossHistory[i], base.LossHistory[i])
			}
		}
	}
}
