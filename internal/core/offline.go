package core

import (
	"fmt"
	"sort"

	"rowhammer/internal/data"
	"rowhammer/internal/dram"
	"rowhammer/internal/nn"
	"rowhammer/internal/quant"
	"rowhammer/internal/tensor"
)

// Config parameterizes the offline phase (Algorithm 1).
type Config struct {
	// NFlip is the number of bit flips allowed (one per group of
	// memory pages); it must not exceed the weight file's page count.
	NFlip int
	// TargetClass is the backdoor's target label ỹ.
	TargetClass int
	// Alpha blends the clean-data loss (1−α) with the triggered-data
	// loss (α); the paper uses 0.5.
	Alpha float32
	// Epsilon is the FGSM trigger step (the paper uses 0.001).
	Epsilon float32
	// Eta is the masked weight-update step in units of quantization
	// steps (sign-SGD on the selected weights; see the note on
	// RunOffline).
	Eta float32
	// Iterations is T, the total optimization iterations.
	Iterations int
	// BitReduceEvery applies Bit Reduction every k iterations (the
	// paper uses 100). The final iteration always applies the
	// constraint cleanup.
	BitReduceEvery int
	// BitReduce enables step 4 of Algorithm 1. With it disabled the
	// attack is the CFT ablation: one weight per page, but a weight
	// change may span multiple bits.
	BitReduce bool
	// UpdateTrigger enables the FGSM trigger learning (step 1).
	UpdateTrigger bool
	// TriggerSize is the square trigger mask edge (10 on CIFAR-scale
	// inputs in the paper).
	TriggerSize int
	// GreedyRefine evaluates a few candidate single-bit flips per group
	// at each enforcement step and keeps the one that minimizes the
	// blended objective (including "no flip"). This is the discrete
	// analogue of the paper's post-Bit-Reduction loss recovery
	// (Figure 7) and markedly improves the TA/ASR trade-off at the
	// small model scales of this reproduction.
	GreedyRefine bool
	// RefineCandidates bounds how many drifted weights per group the
	// greedy refinement evaluates.
	RefineCandidates int
	// RefineBatch is the number of attack-set images the refinement's
	// loss evaluations use (smaller = faster).
	RefineBatch int
	// ForbiddenBitMask excludes bit positions from Bit Reduction: set
	// bits are never flipped. The RADAR-adaptive attacker sets the MSB
	// (0x80) to dodge the defense's most-significant-bit checksums.
	ForbiddenBitMask byte
	// WrapLoss, when non-nil, wraps every greedy-refinement loss
	// evaluation; a defense-aware attacker uses it to apply a recovery
	// transformation (e.g. weight reconstruction) before measuring, so
	// the kept flips survive the defense.
	WrapLoss func(eval func() float32) float32
	// Float32Eval forces the constraint-enforcement loss evaluations
	// onto the fp32 graph. By default the greedy refinement scores
	// candidate flips on the native int8 engine — the representation the
	// deployed victim actually runs — which is also markedly faster.
	// WrapLoss implies fp32 evaluation regardless: recovery
	// transformations mutate model floats directly, bypassing the
	// quantizer's codes the int8 engine executes.
	Float32Eval bool
	// FullForwardRefine forces every refinement loss evaluation onto
	// full forward passes, disabling the incremental suffix scorer. By
	// default (int8 evaluation, no WrapLoss) candidate flips score on a
	// quant.Scorer that caches per-layer activations and recomputes only
	// the layers at and after the flip — bit-identical to the full
	// forwards, just faster. This knob pins the reference path for the
	// determinism suite and A/B benchmarks.
	FullForwardRefine bool
	// ScoreWorkers bounds how many candidate flips the suffix scorer
	// evaluates concurrently (0 uses the kernel parallelism bound).
	// Scheduling only: the refinement reduces candidate losses in fixed
	// candidate order, so any worker count produces byte-identical
	// attack output.
	ScoreWorkers int
	// TrainShards fixes the data-parallel trainer's shard count for the
	// gradient passes (0 selects nn.DefaultTrainShards). The shard count
	// — not the worker count — determines the floating-point summation
	// geometry, so results are a function of this value alone.
	TrainShards int
	// TrainWorkers bounds how many shards run concurrently (0 uses the
	// kernel parallelism bound). Scheduling only: any worker count
	// produces bit-identical results for a fixed TrainShards.
	TrainWorkers int
}

// DefaultConfig returns the paper's settings for a CIFAR-scale model.
func DefaultConfig(nflip, target int) Config {
	return Config{
		NFlip:            nflip,
		TargetClass:      target,
		Alpha:            0.5,
		Epsilon:          0.001,
		Eta:              1,
		Iterations:       300,
		BitReduceEvery:   100,
		BitReduce:        true,
		UpdateTrigger:    true,
		TriggerSize:      10,
		GreedyRefine:     true,
		RefineCandidates: 3,
		RefineBatch:      16,
	}
}

// Result is the offline-phase output: the backdoored weight file and
// the learned trigger.
type Result struct {
	// Quantizer is bound to the attacked model; its codes hold the
	// backdoored weights.
	Quantizer *quant.Quantizer
	// OrigCodes is the clean weight file.
	OrigCodes []int8
	// BackdooredCodes is the attacked weight file.
	BackdooredCodes []int8
	// Trigger is the learned input pattern Δx.
	Trigger *data.Trigger
	// NFlip is the realized Hamming distance between the two code
	// vectors.
	NFlip int
	// LossHistory records the blended objective per iteration
	// (Figure 7: spikes right after each Bit Reduction).
	LossHistory []float32
}

func dirOf(zeroToOne bool) dram.FlipDirection {
	if zeroToOne {
		return dram.ZeroToOne
	}
	return dram.OneToZero
}

// groupGeometry is the single source of the page-aligned group
// partition of Eq. 5: it validates NFlip against the page count of nw
// weights and returns the group span in weights. Both the per-iteration
// selection (GroupSortSelect) and the constraint enforcement
// (groupBounds) derive their geometry here, and RunOffline validates
// NFlip up front through it without allocating anything.
func groupGeometry(nw, nflip int) (groupSize int, err error) {
	pages := (nw + quant.PageSize - 1) / quant.PageSize
	if nflip < 1 {
		return 0, fmt.Errorf("core: NFlip must be positive, got %d", nflip)
	}
	if nflip > pages {
		return 0, fmt.Errorf("core: NFlip=%d exceeds the %d pages the weights occupy", nflip, pages)
	}
	pagesPerGroup := (pages + nflip - 1) / nflip
	return pagesPerGroup * quant.PageSize, nil
}

// GroupSortSelect implements Eq. 5: the flat weight vector is divided
// into at most NFlip page-aligned groups of equal size, and the index
// with the largest gradient magnitude is selected per group. Page
// alignment of the group boundaries guarantees two selections never
// share a 4 KB page (constraint C2).
func GroupSortSelect(absGrad []float32, nflip int) ([]int, error) {
	nw := len(absGrad)
	groupSize, err := groupGeometry(nw, nflip)
	if err != nil {
		return nil, err
	}
	sel := make([]int, 0, nflip)
	for lo := 0; lo < nw; lo += groupSize {
		hi := lo + groupSize
		if hi > nw {
			hi = nw
		}
		best := lo
		for i := lo + 1; i < hi; i++ {
			if absGrad[i] > absGrad[best] {
				best = i
			}
		}
		sel = append(sel, best)
	}
	return sel, nil
}

// RunOffline executes Algorithm 1 against the model, which must already
// be trained; its weights are quantized in place. attackSet is the
// small unseen test subset the attacker holds (the paper uses 128
// CIFAR images).
//
// Implementation note: step 3's masked update uses sign-SGD scaled by
// each tensor's quantization step (η quantization steps per iteration)
// rather than raw gradient descent; this keeps the update magnitude
// meaningful across layers with very different gradient scales in a
// from-scratch training stack, and is equivalent up to the adaptive
// step size.
func RunOffline(model *nn.Model, attackSet *data.Dataset, cfg Config) (*Result, error) {
	if cfg.Iterations <= 0 {
		return nil, fmt.Errorf("core: iterations must be positive")
	}
	if cfg.Alpha < 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("core: alpha must be in [0,1], got %v", cfg.Alpha)
	}
	if cfg.TargetClass < 0 || cfg.TargetClass >= model.Classes {
		return nil, fmt.Errorf("core: target class %d out of range", cfg.TargetClass)
	}
	if cfg.BitReduceEvery <= 0 {
		cfg.BitReduceEvery = 100
	}

	nn.FreezeBatchNorm(model.Root)
	q := quant.NewQuantizer(model)
	orig := q.Codes()

	// Validates NFlip against the page count and fixes the enforcement
	// group partition for the whole run (the geometry is a pure function
	// of the weight count).
	groups, err := groupBounds(q.NumWeights(), cfg.NFlip)
	if err != nil {
		return nil, err
	}

	// The greedy refinement's loss evaluations run on the int8 engine
	// unless the caller opted out or installed a WrapLoss recovery hook
	// (which mutates floats behind the quantizer's back).
	var qm *quant.QModel
	if !cfg.Float32Eval && cfg.WrapLoss == nil {
		qm = quant.NewQModel(q)
	}

	c, h, w := model.InputShape[0], model.InputShape[1], model.InputShape[2]
	trigger := data.NewSquareTrigger(c, h, w, cfg.TriggerSize)

	params := model.Params()
	offs := paramOffsets(params)
	absGrad := make([]float32, q.NumWeights())

	// One attack batch, reused every iteration (as in the paper's
	// Figure 7 setup).
	batch := attackSet.Batches(attackSet.Len())[0]
	targetLabels := make([]int, len(batch.Labels))
	for i := range targetLabels {
		targetLabels[i] = cfg.TargetClass
	}

	// The greedy refinement evaluates losses on a small fixed subset.
	rb := cfg.RefineBatch
	if rb <= 0 {
		rb = 16
	}
	if rb > attackSet.Len() {
		rb = attackSet.Len()
	}
	refineSet := attackSet.Head(rb)
	refineImgs := refineSet.Batches(rb)[0]
	refineBatch := &tensorBatch{
		clean:  refineImgs.Images,
		trig:   refineImgs.Images.Clone(),
		labels: refineImgs.Labels,
	}
	refineTargets := make([]int, rb)
	for i := range refineTargets {
		refineTargets[i] = cfg.TargetClass
	}

	// The incremental suffix scorer drives the greedy refinement on the
	// int8 engine: it pins the refinement batch's per-layer activations
	// and rescans only the layers at and after each candidate flip —
	// bit-identical to full forwards at any worker count.
	var scorer *quant.Scorer
	if qm != nil && !cfg.FullForwardRefine {
		scorer = quant.NewScorer(qm, refineBatch.clean, refineBatch.trig,
			refineBatch.labels, refineTargets, cfg.Alpha)
		scorer.SetWorkers(cfg.ScoreWorkers)
	}

	result := &Result{Quantizer: q, OrigCodes: orig, Trigger: trigger}

	// The gradient hot path runs on the data-parallel trainer: the
	// batch is sharded across model replicas, gradients tree-reduce
	// into the master in fixed order, and the trainer resyncs replica
	// weights each step (the masked sign-SGD update and Bit Reduction
	// mutate them between steps).
	trainer := nn.NewTrainer(model, cfg.TrainShards)
	if cfg.TrainWorkers > 0 {
		trainer.SetWorkers(cfg.TrainWorkers)
	}
	// Persistent triggered-image buffer, re-stamped per iteration.
	trigImages := batch.Images.Clone()

	for t := 0; t < cfg.Iterations; t++ {
		model.ZeroGrad()

		// Clean-data term: (1−α)·ℓ(f(x, θ+Δθ), y).
		cleanLoss, _ := trainer.ForwardBackward(batch.Images, batch.Labels, 1-cfg.Alpha)

		// Triggered term: α·ℓ(f(x+Δx, θ+Δθ), ỹ).
		copy(trigImages.Data(), batch.Images.Data())
		trigger.Apply(trigImages)
		trigLoss, inGrad := trainer.ForwardBackward(trigImages, targetLabels, cfg.Alpha)

		result.LossHistory = append(result.LossHistory, cleanLoss+trigLoss)

		// Step 1: FGSM trigger update (Eq. 4), descending the triggered
		// loss so the trigger activates the target class.
		if cfg.UpdateTrigger {
			tg := trigger.MaskedGradSum(inGrad)
			trigger.UpdateFGSM(tg, -cfg.Epsilon)
		}

		// Step 2: locate vulnerable weights (Eq. 5).
		flatAbsGrad(params, absGrad)
		selected, err := GroupSortSelect(absGrad, cfg.NFlip)
		if err != nil {
			return nil, err
		}

		// Step 3: masked adversarial fine-tuning (Eq. 6) with sign-SGD
		// in quantization-step units.
		pi := 0
		for _, idx := range selected {
			for pi < len(offs)-1 && offs[pi+1] <= idx {
				pi++
			}
			// Reset pi if selections are not sorted (they are, but be safe).
			if offs[pi] > idx {
				pi = 0
				for pi < len(offs)-1 && offs[pi+1] <= idx {
					pi++
				}
			}
			p := params[pi]
			inner := idx - offs[pi]
			g := p.G.Data()[inner]
			if g == 0 {
				continue
			}
			step := cfg.Eta * q.Scale(pi)
			if g > 0 {
				p.W.Data()[inner] -= step
			} else {
				p.W.Data()[inner] += step
			}
		}

		// Step 4: periodic constraint enforcement + Bit Reduction.
		if (t+1)%cfg.BitReduceEvery == 0 || t == cfg.Iterations-1 {
			// The trigger is frozen within one enforcement step, so the
			// triggered refinement batch is stamped once here instead of
			// once per loss evaluation.
			refineBatch.stamp(trigger)
			if scorer != nil {
				scorer.InputsChanged()
			}
			fwd := func(x *tensor.Tensor) *tensor.Tensor {
				if qm != nil {
					return qm.Forward(x)
				}
				return model.Forward(x, false)
			}
			rawLoss := func() float32 {
				return blendedLoss(fwd, refineBatch, refineTargets, cfg.Alpha)
			}
			lossFn := rawLoss
			if cfg.WrapLoss != nil {
				lossFn = func() float32 { return cfg.WrapLoss(rawLoss) }
			}
			enforceConstraints(q, orig, groups, cfg, lossFn, scorer)
		}
	}

	result.BackdooredCodes = q.Codes()
	result.NFlip = quant.HammingDistance(orig, result.BackdooredCodes)
	return result, nil
}

// blendedLoss evaluates the Eq. 3 objective (forward passes only) for
// the greedy refinement. fwd abstracts the inference engine so the same
// scoring runs on the fp32 graph or the int8 engine. The triggered batch
// must already be stamped (tensorBatch.stamp) for the current trigger.
func blendedLoss(fwd func(*tensor.Tensor) *tensor.Tensor, images *tensorBatch, target []int, alpha float32) float32 {
	cleanOut := fwd(images.clean)
	cleanLoss := nn.CrossEntropyLoss(cleanOut, images.labels, 1-alpha)
	trigOut := fwd(images.trig)
	trigLoss := nn.CrossEntropyLoss(trigOut, target, alpha)
	return cleanLoss + trigLoss
}

// tensorBatch caches the refinement evaluation batch. The triggered copy
// is stamped once per enforcement step — the trigger is frozen inside a
// step, so restamping per loss evaluation would be pure waste.
type tensorBatch struct {
	clean  *tensor.Tensor
	trig   *tensor.Tensor
	labels []int
}

func (b *tensorBatch) stamp(trigger *data.Trigger) {
	copy(b.trig.Data(), b.clean.Data())
	trigger.Apply(b.trig)
}

// groupBounds returns the page-aligned [lo, hi) ranges of the NFlip
// groups over nw weights (same partition as GroupSortSelect).
func groupBounds(nw, nflip int) ([][2]int, error) {
	groupSize, err := groupGeometry(nw, nflip)
	if err != nil {
		return nil, err
	}
	out := make([][2]int, 0, (nw+groupSize-1)/groupSize)
	for lo := 0; lo < nw; lo += groupSize {
		hi := lo + groupSize
		if hi > nw {
			hi = nw
		}
		out = append(out, [2]int{lo, hi})
	}
	return out, nil
}

// enforceConstraints snaps weights to the quantization grid and reduces
// each group to at most one modified weight with at most one flipped
// bit. With GreedyRefine enabled it then coordinate-descends over the
// groups, evaluating each group's top drifted candidates (and "no
// flip") under the blended objective and keeping the best — the
// discrete recovery that makes the Figure 7 loss spikes settle.
//
// When a scorer is supplied the descent runs on it: each group's
// candidates fan out concurrently over suffix forwards, and the losses
// reduce by argmin in the fixed order [current, no-flip, rest] with
// strict-< replacement — exactly the sequence the lossFn loop evaluates
// — so the kept flips are byte-identical at any worker count. With
// scorer == nil (fp32 evaluation, WrapLoss recovery hooks, or the
// FullForwardRefine reference path) every option is scored by lossFn
// full forwards instead.
func enforceConstraints(q *quant.Quantizer, orig []int8, groups [][2]int, cfg Config, lossFn func() float32, scorer *quant.Scorer) {
	q.Requantize()

	reduce := func(i int, drifted int8) int8 {
		if cfg.BitReduce {
			if cfg.ForbiddenBitMask != 0 {
				return quant.BitReduceMasked(orig[i], drifted, cfg.ForbiddenBitMask)
			}
			return quant.BitReduce(orig[i], drifted)
		}
		return drifted
	}

	type candidate struct {
		idx   int
		code  int8 // reduced code to apply
		delta int
	}
	groupCands := make([][]candidate, len(groups))
	for gi, g := range groups {
		var cands []candidate
		for i := g[0]; i < g[1]; i++ {
			if c := q.Code(i); c != orig[i] {
				d := int(c) - int(orig[i])
				if d < 0 {
					d = -d
				}
				cands = append(cands, candidate{idx: i, code: reduce(i, c), delta: d})
			}
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].delta > cands[b].delta })
		limit := cfg.RefineCandidates
		if limit < 1 {
			limit = 1
		}
		if len(cands) > limit {
			cands = cands[:limit]
		}
		groupCands[gi] = cands

		// Default: restore everything, apply the strongest candidate.
		for i := g[0]; i < g[1]; i++ {
			if q.Code(i) != orig[i] {
				q.SetCode(i, orig[i])
			}
		}
		if len(cands) > 0 {
			q.SetCode(cands[0].idx, cands[0].code)
		}
	}

	if !cfg.GreedyRefine {
		return
	}
	// Coordinate descent: per group, pick the candidate (or no flip)
	// minimizing the blended objective with all other groups fixed.
	var (
		scs    []quant.Candidate
		losses []float32
	)
	for gi := range groups {
		cands := groupCands[gi]
		if len(cands) == 0 {
			continue
		}
		current := cands[0] // applied above

		if scorer != nil {
			// Revert to the no-flip state so the scorer's baseline IS the
			// no-flip loss, then fan the candidates out over suffix
			// forwards. Reduction order replicates the sequential loop:
			// cands[0] seeds best, no-flip and cands[1:] replace on
			// strict <.
			q.SetCode(current.idx, orig[current.idx])
			scs = scs[:0]
			for _, c := range cands {
				scs = append(scs, quant.Candidate{Weight: c.idx, Code: c.code})
			}
			var noflip float32
			losses, noflip = scorer.ScoreInto(losses, scs)
			bestLoss := losses[0]
			bestIdx, bestCode := current.idx, current.code
			if noflip < bestLoss {
				bestLoss = noflip
				bestIdx, bestCode = -1, 0
			}
			for j, c := range cands[1:] {
				if l := losses[j+1]; l < bestLoss {
					bestLoss = l
					bestIdx, bestCode = c.idx, c.code
				}
			}
			if bestIdx >= 0 {
				q.SetCode(bestIdx, bestCode)
			}
			continue
		}

		bestLoss := lossFn()
		bestIdx, bestCode := current.idx, current.code

		// "No flip" option.
		q.SetCode(current.idx, orig[current.idx])
		if l := lossFn(); l < bestLoss {
			bestLoss = l
			bestIdx, bestCode = -1, 0
		}
		for _, c := range cands[1:] {
			q.SetCode(c.idx, c.code)
			if l := lossFn(); l < bestLoss {
				bestLoss = l
				bestIdx, bestCode = c.idx, c.code
			}
			q.SetCode(c.idx, orig[c.idx])
		}
		if bestIdx >= 0 {
			q.SetCode(bestIdx, bestCode)
		}
	}
}
