package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
	"rowhammer/internal/metrics"
	"rowhammer/internal/profile"
	"rowhammer/internal/tensor"
)

// OnlineConfig parameterizes the online (hammering) phase.
type OnlineConfig struct {
	// BufferPages is the attacker's templating buffer size in pages.
	BufferPages int
	// Sides is the hammer pattern width (2 for DDR3 double-sided, 7
	// for the paper's DDR4 online attack).
	Sides int
	// Intensity is the normalized per-aggressor activation budget.
	Intensity float64
	// MeasureSeed seeds the side-channel noise.
	MeasureSeed int64
	// WeightFileName names the victim's weight file on the simulated
	// disk.
	WeightFileName string

	// Robust-engine knobs. The zero values reproduce the single-shot
	// engine exactly: one hammer round, no escalation, no re-templating.

	// Rounds is the verify/re-hammer round budget (≤1 = single shot).
	// After each round the engine reads the mapped file back and
	// re-hammers only rows whose required flips did not fire.
	Rounds int
	// Escalation multiplies the re-hammer activation budget each round
	// after the first (0 or 1 = none). Budget above 1.0 does not fit a
	// single refresh window, so it spills into additional
	// full-intensity hammer passes per pending row — each with fresh
	// per-pass fault draws.
	Escalation float64
	// RetemplatePasses bounds adaptive re-templating: while the plan
	// leaves requirements unmatched, the engine doubles the attacker
	// buffer (until MaxBufferPages) or re-sweeps it to union in flips
	// earlier passes missed, then re-plans.
	RetemplatePasses int
	// MaxBufferPages caps the exponential buffer growth (0 = 8×
	// BufferPages).
	MaxBufferPages int

	// Profile, when non-nil, is a pre-computed flip template for the
	// attacker buffer and ExecuteOnline skips the templating sweep
	// entirely — the cross-campaign cache's warm path. It must describe
	// the exact buffer this run would otherwise profile (same base, same
	// page count on a pristine module of identical identity). The profile
	// is treated as shared and read-only; when RetemplatePasses allows
	// in-place mutation, the engine works on a private clone. Excluded
	// from JSON: a template is process-local runtime state, not part of
	// a serialized job spec.
	Profile *profile.Profile `json:"-"`

	// AfterRound, when non-nil, is called after each verify round with
	// the round number and a private copy of the weight file as the
	// victim's page cache serves it at that instant. This is the
	// victim-under-fire seam: a serving harness hot-swaps the partially
	// corrupted weights into the live engine between hammer rounds,
	// measuring the model as it degrades instead of only after the
	// attack finishes. The callback runs on the attack goroutine; the
	// byte slice is the callee's to keep. Excluded from JSON (func
	// values cannot marshal and would poison serialized job specs).
	AfterRound func(round int, mapped []byte) `json:"-"`
}

// validateRetryKnobs rejects negative retry machinery. A negative value
// is always a caller bug — silently treating it as "disabled" (what the
// < 1 clamps downstream would do) hides mis-wired sweep configs, so the
// engine refuses loudly instead.
func (cfg OnlineConfig) validateRetryKnobs() error {
	if cfg.Rounds < 0 {
		return fmt.Errorf("core: Rounds must be >= 0, got %d", cfg.Rounds)
	}
	if cfg.Escalation < 0 {
		return fmt.Errorf("core: Escalation must be >= 0, got %v", cfg.Escalation)
	}
	if cfg.RetemplatePasses < 0 {
		return fmt.Errorf("core: RetemplatePasses must be >= 0, got %d", cfg.RetemplatePasses)
	}
	if cfg.MaxBufferPages < 0 {
		return fmt.Errorf("core: MaxBufferPages must be >= 0, got %d", cfg.MaxBufferPages)
	}
	return nil
}

// DefaultOnlineConfig sizes the templating buffer for a weight file of
// filePages pages. The floor of 32768 pages (128 MB) is the paper's
// profiling scale and is what Eq. 2 needs for the probability of
// finding a page with one specific (offset, bit, direction) flip to
// approach 1; smaller buffers leave requirements unmatched.
func DefaultOnlineConfig(filePages int) OnlineConfig {
	buf := filePages * 4
	if buf < 32768 {
		buf = 32768
	}
	if buf%2 == 1 {
		buf++
	}
	return OnlineConfig{
		BufferPages:    buf,
		Sides:          2,
		Intensity:      1,
		WeightFileName: "model-weights.bin",
	}
}

// RobustOnlineConfig is DefaultOnlineConfig plus the retry machinery
// the lossy real world needs: a 5-round verify/re-hammer budget with
// budget-doubling escalation (a straggler row gets 2, 4, 8, 16 hammer
// passes across the retry rounds) and two adaptive re-templating
// passes. On a fault-free module it reproduces the single-shot result
// byte for byte (round 1 fires everything, so no retry ever triggers).
func RobustOnlineConfig(filePages int) OnlineConfig {
	cfg := DefaultOnlineConfig(filePages)
	cfg.Rounds = 5
	cfg.Escalation = 2
	cfg.RetemplatePasses = 2
	return cfg
}

// OnlineResult reports what the hammering actually achieved.
type OnlineResult struct {
	// CorruptedFile is the weight file as the victim now sees it
	// through the page cache.
	CorruptedFile []byte
	// Plan is the placement the attacker executed.
	Plan *profile.Placement
	// NFlipOnline is the Hamming distance between the original and
	// corrupted files over the model bytes (target + accidental flips
	// that actually fired).
	NFlipOnline int
	// NMatch counts required bits that really flipped.
	NMatch int
	// NRequired is the offline N_flip (total required bits).
	NRequired int
	// Unmatched counts required bits whose page requirement the planner
	// could not place on any flippy page — they never had a chance to
	// fire, even before hammering luck enters.
	Unmatched int
	// AccidentalFlips counts flips outside the required set.
	AccidentalFlips int
	// RMatch is the paper's DRAM match rate (percent).
	RMatch float64
	// Report is the structured per-round/per-stage account of the
	// robust engine's work.
	Report *AttackReport
}

// pendingFlip is one matched-requirement flip the verify loop still
// waits on: where to look in the victim's mapping and which row to
// re-hammer if it has not fired.
type pendingFlip struct {
	row   int // Profile.Rows index hosting the requirement
	vaddr int // victim virtual address of the byte
	bit   int
	dir   dram.FlipDirection
}

// ExecuteOnline runs the full online phase against a simulated system:
// write the victim's weight file to disk, profile an attacker buffer,
// plan the placement of required flips onto flippy pages — adaptively
// growing or re-sweeping the buffer while requirements stay unmatched —
// massage the page-frame cache (Listing 1), let the victim map the
// file, hammer, then verify and re-hammer rows whose required flips did
// not fire until the round budget runs out, and return the corrupted
// file the page cache now serves.
func ExecuteOnline(sys *memsys.System, weightFile []byte, reqs []profile.PageRequirement, cfg OnlineConfig) (*OnlineResult, error) {
	if cfg.WeightFileName == "" {
		cfg.WeightFileName = "model-weights.bin"
	}
	if err := cfg.validateRetryKnobs(); err != nil {
		return nil, err
	}
	if len(weightFile)%memsys.PageSize != 0 {
		return nil, fmt.Errorf("core: weight file must be page aligned, got %d bytes", len(weightFile))
	}
	filePages := len(weightFile) / memsys.PageSize
	sys.WriteFile(cfg.WeightFileName, weightFile)
	report := &AttackReport{}

	// Offline-on-machine step: template the attacker buffer.
	attacker := sys.NewProcess()
	bufBase, err := attacker.Mmap(cfg.BufferPages)
	if err != nil {
		return nil, fmt.Errorf("core: attacker buffer: %w", err)
	}
	pcfg := profile.Config{
		Sides:       cfg.Sides,
		Intensity:   cfg.Intensity,
		MeasureSeed: cfg.MeasureSeed,
	}
	var prof *profile.Profile
	if cfg.Profile != nil {
		// Warm path: reuse a cached template instead of re-sweeping the
		// buffer. The template is only valid for the buffer it described —
		// aggressor vaddrs and buffer-page indices are positional.
		if cfg.Profile.BufBase != bufBase || cfg.Profile.BufPages != cfg.BufferPages {
			return nil, fmt.Errorf("core: cached profile covers buffer %#x/%d pages, this run maps %#x/%d",
				cfg.Profile.BufBase, cfg.Profile.BufPages, bufBase, cfg.BufferPages)
		}
		prof = cfg.Profile
		if cfg.RetemplatePasses > 0 {
			prof = prof.Clone()
		}
	} else {
		t0 := time.Now()
		prof, err = profile.ProfileBuffer(sys, attacker, bufBase, cfg.BufferPages, pcfg)
		report.Timing.ProfileNs += time.Since(t0).Nanoseconds()
		if err != nil {
			return nil, fmt.Errorf("core: profiling: %w", err)
		}
	}

	t0 := time.Now()
	plan, err := profile.PlanPlacement(prof, reqs, filePages)
	report.Timing.PlanNs += time.Since(t0).Nanoseconds()
	if err != nil {
		return nil, fmt.Errorf("core: placement: %w", err)
	}

	// Adaptive re-templating: while requirements stay unmatched, double
	// the buffer (exponential, capped) and fall back to re-sweeping the
	// existing buffer once the cap is reached — useful under fault
	// injection, where each profiling pass misses a coin-flip's worth of
	// weak cells.
	maxBuf := cfg.MaxBufferPages
	if maxBuf == 0 {
		maxBuf = 8 * cfg.BufferPages
	}
	bufPages := cfg.BufferPages
	for pass := 1; len(plan.Unmatched) > 0 && pass <= cfg.RetemplatePasses; pass++ {
		t0 = time.Now()
		grew := false
		if bufPages*2 <= maxBuf {
			ext := bufPages
			extBase, merr := attacker.Mmap(ext)
			if merr == nil {
				if err := profile.ExtendProfile(sys, attacker, prof, extBase, ext, pcfg); err != nil {
					return nil, fmt.Errorf("core: re-templating pass %d: %w", pass, err)
				}
				bufPages += ext
				grew = true
			} else if !errors.Is(merr, memsys.ErrNoMemory) {
				return nil, fmt.Errorf("core: re-templating pass %d: %w", pass, merr)
			}
		}
		if !grew {
			if _, err := profile.ReprofileUnion(sys, attacker, prof, pcfg); err != nil {
				return nil, fmt.Errorf("core: re-templating pass %d: %w", pass, err)
			}
		}
		report.Timing.RetemplateNs += time.Since(t0).Nanoseconds()

		t0 = time.Now()
		plan, err = profile.PlanPlacement(prof, reqs, filePages)
		report.Timing.PlanNs += time.Since(t0).Nanoseconds()
		if err != nil {
			return nil, fmt.Errorf("core: re-placement: %w", err)
		}
		report.Retemplates = append(report.Retemplates, RetemplateStats{
			Pass:         pass,
			Grew:         grew,
			BufferPages:  bufPages,
			ProfiledRows: len(prof.Rows),
			Unmatched:    len(plan.Unmatched),
		})
	}
	report.Unmatched = len(plan.Unmatched)

	// Drain stale frame-cache entries so the victim's faults pop
	// exactly the frames the massaging releases.
	t0 = time.Now()
	if _, _, err := attacker.DrainFrameCache(); err != nil {
		return nil, fmt.Errorf("core: draining frame cache: %w", err)
	}

	// Listing 1: release the chosen frames in reverse file order.
	if err := memsys.MassageFileMapping(attacker, bufBase, plan.Assignment); err != nil {
		return nil, fmt.Errorf("core: massaging: %w", err)
	}
	report.Timing.MassageNs += time.Since(t0).Nanoseconds()

	// The victim loads the model; the page cache pulls the file into
	// the attacker-chosen frames.
	victim := sys.NewProcess()
	fileBase, err := victim.MmapFile(cfg.WeightFileName)
	if err != nil {
		return nil, fmt.Errorf("core: victim map: %w", err)
	}

	// The verify set: every flip of every matched requirement, tagged
	// with the row to re-hammer if it fails to fire.
	var pending []pendingFlip
	for i, req := range plan.Matched {
		for _, f := range req.Flips {
			pending = append(pending, pendingFlip{
				row:   plan.MatchedRows[i],
				vaddr: fileBase + req.FilePage*memsys.PageSize + f.Offset,
				bit:   f.Bit,
				dir:   f.Dir,
			})
		}
	}
	totalMatched := len(pending)

	// verifyPending keeps only the flips that have not fired yet.
	verifyPending := func() error {
		kept := pending[:0]
		for _, pf := range pending {
			b, err := victim.ReadByteAt(pf.vaddr)
			if err != nil {
				return fmt.Errorf("core: verifying flip: %w", err)
			}
			set := b&(1<<pf.bit) != 0
			fired := set == (pf.dir == dram.ZeroToOne)
			if !fired {
				kept = append(kept, pf)
			}
		}
		pending = kept
		return nil
	}

	// Verify → re-hammer loop. Round 1 hammers the full plan — exactly
	// the single-shot engine; later rounds re-hammer only rows with
	// missing flips, at an escalated activation budget. Budget beyond
	// 1.0 cannot fit one refresh window, so it spills into additional
	// full-intensity hammer passes — each pass draws fresh per-pass
	// fault coins, which is what actually recovers cells that keep
	// failing to fire.
	rounds := cfg.Rounds
	if rounds < 1 {
		rounds = 1
	}
	esc := cfg.Escalation
	if esc <= 0 {
		esc = 1
	}
	budget := cfg.Intensity
	for round := 1; round <= rounds; round++ {
		var hammerRows []int
		if round == 1 {
			hammerRows = plan.HammerRows
		} else {
			budget *= esc
			hammerRows = missingRows(pending)
		}
		t0 = time.Now()
		for _, ri := range hammerRows {
			row := &prof.Rows[ri]
			if round == 1 {
				if err := profile.HammerRows(sys, attacker, row.AggressorVaddrs, row.Intensity); err != nil {
					return nil, fmt.Errorf("core: hammering row %d (round %d): %w", ri, round, err)
				}
				continue
			}
			for left := budget; left > 1e-9; left -= 1 {
				in := left
				if in > 1 {
					in = 1
				}
				if err := profile.HammerRows(sys, attacker, row.AggressorVaddrs, in); err != nil {
					return nil, fmt.Errorf("core: hammering row %d (round %d): %w", ri, round, err)
				}
			}
		}
		report.Timing.HammerNs += time.Since(t0).Nanoseconds()

		t0 = time.Now()
		if err := verifyPending(); err != nil {
			return nil, err
		}
		report.Timing.VerifyNs += time.Since(t0).Nanoseconds()
		report.Rounds = append(report.Rounds, RoundStats{
			Round:        round,
			RowsHammered: len(hammerRows),
			NMatch:       totalMatched - len(pending),
			Missing:      len(pending),
		})
		if cfg.AfterRound != nil {
			mapped, err := victim.ReadMapped(fileBase, len(weightFile))
			if err != nil {
				return nil, fmt.Errorf("core: reading mapped file after round %d: %w", round, err)
			}
			cfg.AfterRound(round, mapped)
		}
		if len(pending) == 0 {
			break
		}
	}

	corrupted, err := victim.ReadMapped(fileBase, len(weightFile))
	if err != nil {
		return nil, fmt.Errorf("core: reading corrupted file: %w", err)
	}

	res := &OnlineResult{
		CorruptedFile: corrupted,
		Plan:          plan,
		Unmatched:     len(plan.Unmatched),
		Report:        report,
	}
	res.tally(weightFile, corrupted, reqs)
	return res, nil
}

// missingRows returns the sorted, deduplicated row indices of the still
// missing flips — the deterministic re-hammer order.
func missingRows(pending []pendingFlip) []int {
	seen := make(map[int]bool, len(pending))
	var rows []int
	for _, pf := range pending {
		if !seen[pf.row] {
			seen[pf.row] = true
			rows = append(rows, pf.row)
		}
	}
	sort.Ints(rows)
	return rows
}

// tally computes the online metrics from the observed corruption. The
// byte-diff scan over the mapped file is embarrassingly parallel: each
// worker tallies a disjoint range into private counters (reading the
// shared required set, which is immutable by then), merged under one
// lock at the chunk barrier.
func (r *OnlineResult) tally(orig, corrupted []byte, reqs []profile.PageRequirement) {
	required := make(map[[3]int]bool)
	for _, req := range reqs {
		for _, f := range req.Flips {
			required[[3]int{req.FilePage, f.Offset, f.Bit}] = true
			r.NRequired++
		}
	}
	disturbedPages := make(map[int]bool)
	workers := tensor.MaxWorkers()
	if len(orig) < 1<<16 {
		workers = 1
	}
	var mu sync.Mutex
	tensor.ParallelChunks(len(orig), workers, func(lo, hi int) {
		nFlip, nMatch, accidental := 0, 0, 0
		pages := make(map[int]bool)
		for i := lo; i < hi; i++ {
			d := orig[i] ^ corrupted[i]
			if d == 0 {
				continue
			}
			page := i / memsys.PageSize
			off := i % memsys.PageSize
			// Any flipped bit — required or accidental — marks the page
			// disturbed; δ averages over all of them.
			pages[page] = true
			for bit := 0; bit < 8; bit++ {
				if d&(1<<bit) == 0 {
					continue
				}
				nFlip++
				if required[[3]int{page, off, bit}] {
					nMatch++
				} else {
					accidental++
				}
			}
		}
		mu.Lock()
		r.NFlipOnline += nFlip
		r.NMatch += nMatch
		r.AccidentalFlips += accidental
		for p := range pages {
			disturbedPages[p] = true
		}
		mu.Unlock()
	})
	// δ: average accidental flips per disturbed target page (matched
	// targets and collateral alike, per §V-B — not just pages that
	// happened to take accidental flips, which would inflate δ and
	// understate r_match).
	deltaPerPage := 0.0
	if len(disturbedPages) > 0 {
		deltaPerPage = float64(r.AccidentalFlips) / float64(len(disturbedPages))
	}
	r.RMatch = metrics.RMatch(r.NMatch, r.NRequired, deltaPerPage)
}
