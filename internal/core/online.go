package core

import (
	"fmt"
	"sync"

	"rowhammer/internal/memsys"
	"rowhammer/internal/metrics"
	"rowhammer/internal/profile"
	"rowhammer/internal/tensor"
)

// OnlineConfig parameterizes the online (hammering) phase.
type OnlineConfig struct {
	// BufferPages is the attacker's templating buffer size in pages.
	BufferPages int
	// Sides is the hammer pattern width (2 for DDR3 double-sided, 7
	// for the paper's DDR4 online attack).
	Sides int
	// Intensity is the normalized per-aggressor activation budget.
	Intensity float64
	// MeasureSeed seeds the side-channel noise.
	MeasureSeed int64
	// WeightFileName names the victim's weight file on the simulated
	// disk.
	WeightFileName string
}

// DefaultOnlineConfig sizes the templating buffer for a weight file of
// filePages pages. The floor of 32768 pages (128 MB) is the paper's
// profiling scale and is what Eq. 2 needs for the probability of
// finding a page with one specific (offset, bit, direction) flip to
// approach 1; smaller buffers leave requirements unmatched.
func DefaultOnlineConfig(filePages int) OnlineConfig {
	buf := filePages * 4
	if buf < 32768 {
		buf = 32768
	}
	if buf%2 == 1 {
		buf++
	}
	return OnlineConfig{
		BufferPages:    buf,
		Sides:          2,
		Intensity:      1,
		WeightFileName: "model-weights.bin",
	}
}

// OnlineResult reports what the hammering actually achieved.
type OnlineResult struct {
	// CorruptedFile is the weight file as the victim now sees it
	// through the page cache.
	CorruptedFile []byte
	// Plan is the placement the attacker executed.
	Plan *profile.Placement
	// NFlipOnline is the Hamming distance between the original and
	// corrupted files over the model bytes (target + accidental flips
	// that actually fired).
	NFlipOnline int
	// NMatch counts required bits that really flipped.
	NMatch int
	// NRequired is the offline N_flip (total required bits).
	NRequired int
	// AccidentalFlips counts flips outside the required set.
	AccidentalFlips int
	// RMatch is the paper's DRAM match rate (percent).
	RMatch float64
}

// ExecuteOnline runs the full online phase against a simulated system:
// write the victim's weight file to disk, profile an attacker buffer,
// plan the placement of required flips onto flippy pages, massage the
// page-frame cache (Listing 1), let the victim map the file, hammer,
// and return the corrupted file the page cache now serves.
func ExecuteOnline(sys *memsys.System, weightFile []byte, reqs []profile.PageRequirement, cfg OnlineConfig) (*OnlineResult, error) {
	if cfg.WeightFileName == "" {
		cfg.WeightFileName = "model-weights.bin"
	}
	if len(weightFile)%memsys.PageSize != 0 {
		return nil, fmt.Errorf("core: weight file must be page aligned, got %d bytes", len(weightFile))
	}
	filePages := len(weightFile) / memsys.PageSize
	sys.WriteFile(cfg.WeightFileName, weightFile)

	// Offline-on-machine step: template the attacker buffer.
	attacker := sys.NewProcess()
	bufBase, err := attacker.Mmap(cfg.BufferPages)
	if err != nil {
		return nil, fmt.Errorf("core: attacker buffer: %w", err)
	}
	prof, err := profile.ProfileBuffer(sys, attacker, bufBase, cfg.BufferPages, profile.Config{
		Sides:       cfg.Sides,
		Intensity:   cfg.Intensity,
		MeasureSeed: cfg.MeasureSeed,
	})
	if err != nil {
		return nil, fmt.Errorf("core: profiling: %w", err)
	}

	plan, err := profile.PlanPlacement(prof, reqs, filePages)
	if err != nil {
		return nil, fmt.Errorf("core: placement: %w", err)
	}

	// Drain stale frame-cache entries so the victim's faults pop
	// exactly the frames the massaging releases.
	if _, _, err := attacker.DrainFrameCache(); err != nil {
		return nil, fmt.Errorf("core: draining frame cache: %w", err)
	}

	// Listing 1: release the chosen frames in reverse file order.
	if err := memsys.MassageFileMapping(attacker, bufBase, plan.Assignment); err != nil {
		return nil, fmt.Errorf("core: massaging: %w", err)
	}

	// The victim loads the model; the page cache pulls the file into
	// the attacker-chosen frames.
	victim := sys.NewProcess()
	fileBase, err := victim.MmapFile(cfg.WeightFileName)
	if err != nil {
		return nil, fmt.Errorf("core: victim map: %w", err)
	}

	// Hammer every planned row.
	for _, ri := range plan.HammerRows {
		row := &prof.Rows[ri]
		if err := profile.HammerRows(sys, attacker, row.AggressorVaddrs, row.Intensity); err != nil {
			return nil, fmt.Errorf("core: hammering row %d: %w", ri, err)
		}
	}

	corrupted, err := victim.ReadMapped(fileBase, len(weightFile))
	if err != nil {
		return nil, fmt.Errorf("core: reading corrupted file: %w", err)
	}

	res := &OnlineResult{CorruptedFile: corrupted, Plan: plan}
	res.tally(weightFile, corrupted, reqs)
	return res, nil
}

// tally computes the online metrics from the observed corruption. The
// byte-diff scan over the mapped file is embarrassingly parallel: each
// worker tallies a disjoint range into private counters (reading the
// shared required set, which is immutable by then), merged under one
// lock at the chunk barrier.
func (r *OnlineResult) tally(orig, corrupted []byte, reqs []profile.PageRequirement) {
	required := make(map[[3]int]bool)
	for _, req := range reqs {
		for _, f := range req.Flips {
			required[[3]int{req.FilePage, f.Offset, f.Bit}] = true
			r.NRequired++
		}
	}
	targetPages := make(map[int]bool)
	workers := tensor.MaxWorkers()
	if len(orig) < 1<<16 {
		workers = 1
	}
	var mu sync.Mutex
	tensor.ParallelChunks(len(orig), workers, func(lo, hi int) {
		nFlip, nMatch, accidental := 0, 0, 0
		pages := make(map[int]bool)
		for i := lo; i < hi; i++ {
			d := orig[i] ^ corrupted[i]
			if d == 0 {
				continue
			}
			page := i / memsys.PageSize
			off := i % memsys.PageSize
			for bit := 0; bit < 8; bit++ {
				if d&(1<<bit) == 0 {
					continue
				}
				nFlip++
				if required[[3]int{page, off, bit}] {
					nMatch++
				} else {
					accidental++
					pages[page] = true
				}
			}
		}
		mu.Lock()
		r.NFlipOnline += nFlip
		r.NMatch += nMatch
		r.AccidentalFlips += accidental
		for p := range pages {
			targetPages[p] = true
		}
		mu.Unlock()
	})
	// δ: average accidental flips per disturbed page (0 when none).
	deltaPerPage := 0.0
	if len(targetPages) > 0 {
		deltaPerPage = float64(r.AccidentalFlips) / float64(len(targetPages))
	}
	r.RMatch = metrics.RMatch(r.NMatch, r.NRequired, deltaPerPage)
}
