package core

// RoundStats records one hammer round of the robust online engine.
// Every field is a pure function of the attack inputs (profiles, plan
// and fault streams are all deterministic), so reports are byte-
// identical across templating worker counts.
type RoundStats struct {
	// Round is the 1-based round number; round 1 is the full planned
	// hammer, later rounds re-hammer only rows with missing flips.
	Round int
	// RowsHammered is how many victim rows this round hammered.
	RowsHammered int
	// NMatch counts matched-requirement flips verified fired after this
	// round (cumulative; monotone non-decreasing because flips never
	// revert).
	NMatch int
	// Missing counts matched-requirement flips still unfired after this
	// round.
	Missing int
}

// RetemplateStats records one adaptive re-templating pass taken because
// PlanPlacement left requirements unmatched.
type RetemplateStats struct {
	// Pass is the 1-based re-templating pass number.
	Pass int
	// Grew is true when the pass doubled the attacker buffer; false
	// when it re-swept the existing buffer to union in flips earlier
	// (faulty) passes missed.
	Grew bool
	// BufferPages is the attacker buffer size after the pass.
	BufferPages int
	// ProfiledRows is the total profiled victim-row count after the
	// pass.
	ProfiledRows int
	// Unmatched counts requirements still unmatched after re-planning.
	Unmatched int
}

// StageTiming is the wall-clock breakdown of the online phase. Unlike
// every other report field it is machine- and schedule-dependent;
// determinism tests must zero it before comparing reports.
type StageTiming struct {
	ProfileNs    int64
	PlanNs       int64
	RetemplateNs int64
	MassageNs    int64
	HammerNs     int64
	VerifyNs     int64
}

// AttackReport is the structured account of what the robust online
// engine did: per-round verify/re-hammer progress, re-templating
// passes, and the per-stage wall clock.
type AttackReport struct {
	// Rounds has one entry per executed hammer round (at least one).
	Rounds []RoundStats
	// Retemplates has one entry per adaptive re-templating pass (empty
	// when the first plan matched everything or the budget was zero).
	Retemplates []RetemplateStats
	// Unmatched counts requirements the final plan could not place;
	// their flips never had a chance to fire.
	Unmatched int
	// Timing is the per-stage wall clock (not deterministic).
	Timing StageTiming
}

// RoundsExecuted returns how many hammer rounds ran.
func (r *AttackReport) RoundsExecuted() int { return len(r.Rounds) }

// Recovered reports how many matched-requirement flips later rounds
// recovered beyond what round 1 achieved.
func (r *AttackReport) Recovered() int {
	if len(r.Rounds) < 2 {
		return 0
	}
	return r.Rounds[len(r.Rounds)-1].NMatch - r.Rounds[0].NMatch
}
