package core

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
	"rowhammer/internal/tensor"
)

// TestExecuteOnlineWorkerDeterminism asserts the end-to-end online
// metrics — and the corrupted weight file itself — do not depend on the
// templating worker count. GOMAXPROCS is raised so the multi-worker
// runs are genuinely concurrent even on a single-CPU machine.
func TestExecuteOnlineWorkerDeterminism(t *testing.T) {
	prevProcs := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prevProcs)

	const filePages = 256
	file, reqs := syntheticOnlineWorkload(filePages, 3)
	cfg := OnlineConfig{
		BufferPages:    2048,
		Sides:          2,
		Intensity:      1,
		MeasureSeed:    7,
		WeightFileName: "det-weights.bin",
	}

	run := func(workers int) *OnlineResult {
		prev := tensor.SetMaxWorkers(workers)
		defer tensor.SetMaxWorkers(prev)
		mod, err := dram.NewModuleForSize(cfg.BufferPages*memsys.PageSize+(16<<20), dram.PaperDDR3(), 77)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ExecuteOnline(memsys.NewSystem(mod), file, reqs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	ref := run(1)
	if ref.NMatch == 0 {
		t.Fatal("workload matched no requirement; determinism check would be vacuous")
	}
	for _, w := range []int{2, 4} {
		got := run(w)
		if got.NFlipOnline != ref.NFlipOnline || got.NMatch != ref.NMatch ||
			got.NRequired != ref.NRequired || got.AccidentalFlips != ref.AccidentalFlips ||
			got.RMatch != ref.RMatch {
			t.Fatalf("metrics at %d workers = (flips %d, match %d/%d, accidental %d, r %.2f), want (%d, %d/%d, %d, %.2f)",
				w, got.NFlipOnline, got.NMatch, got.NRequired, got.AccidentalFlips, got.RMatch,
				ref.NFlipOnline, ref.NMatch, ref.NRequired, ref.AccidentalFlips, ref.RMatch)
		}
		if !bytes.Equal(got.CorruptedFile, ref.CorruptedFile) {
			t.Fatalf("corrupted file at %d workers differs from 1-worker reference", w)
		}
		if !reflect.DeepEqual(got.Plan, ref.Plan) {
			t.Fatalf("placement plan at %d workers differs from 1-worker reference", w)
		}
	}
}
