package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
	"rowhammer/internal/profile"
)

// TestExecuteOnlineRejectsNegativeRetryKnobs asserts a mis-wired retry
// configuration fails loudly instead of silently degrading to the
// single-shot engine.
func TestExecuteOnlineRejectsNegativeRetryKnobs(t *testing.T) {
	base := OnlineConfig{BufferPages: 64, Sides: 2, Intensity: 1}
	cases := []struct {
		name string
		mut  func(*OnlineConfig)
		want string
	}{
		{"rounds", func(c *OnlineConfig) { c.Rounds = -1 }, "Rounds"},
		{"escalation", func(c *OnlineConfig) { c.Escalation = -0.5 }, "Escalation"},
		{"retemplate", func(c *OnlineConfig) { c.RetemplatePasses = -2 }, "RetemplatePasses"},
		{"maxbuffer", func(c *OnlineConfig) { c.MaxBufferPages = -64 }, "MaxBufferPages"},
	}
	mod, err := dram.NewModuleForSize(8<<20, dram.PaperDDR3(), 1)
	if err != nil {
		t.Fatal(err)
	}
	sys := memsys.NewSystem(mod)
	file := make([]byte, memsys.PageSize)
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		_, err := ExecuteOnline(sys, file, nil, cfg)
		if err == nil {
			t.Fatalf("%s: negative knob accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not name the offending knob %q", tc.name, err, tc.want)
		}
	}
}

// reuseModule builds the fixed module identity both halves of the
// profile-reuse tests share.
func reuseModule(t *testing.T, bufPages int) *memsys.System {
	t.Helper()
	mod, err := dram.NewModuleForSize(bufPages*memsys.PageSize+(16<<20), dram.PaperDDR3(), 77)
	if err != nil {
		t.Fatal(err)
	}
	return memsys.NewSystem(mod)
}

// templateOn reproduces ExecuteOnline's buffer setup on an identical
// system and returns the resulting flip template — what the campaign
// cache stores on a cold miss.
func templateOn(t *testing.T, sys *memsys.System, cfg OnlineConfig) *profile.Profile {
	t.Helper()
	attacker := sys.NewProcess()
	base, err := attacker.Mmap(cfg.BufferPages)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profile.ProfileBuffer(sys, attacker, base, cfg.BufferPages, profile.Config{
		Sides:       cfg.Sides,
		Intensity:   cfg.Intensity,
		MeasureSeed: cfg.MeasureSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

// TestExecuteOnlineProfileReuseIdentity asserts the warm path — a
// template computed once and injected via OnlineConfig.Profile into a
// pristine module of the same identity — produces the byte-identical
// attack the cold path does. This is the invariant the cross-campaign
// profile cache rests on.
func TestExecuteOnlineProfileReuseIdentity(t *testing.T) {
	const filePages = 256
	file, reqs := syntheticOnlineWorkload(filePages, 3)
	cfg := OnlineConfig{
		BufferPages:    2048,
		Sides:          2,
		Intensity:      1,
		MeasureSeed:    7,
		WeightFileName: "reuse-weights.bin",
	}

	cold, err := ExecuteOnline(reuseModule(t, cfg.BufferPages), file, reqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold.NMatch == 0 {
		t.Fatal("workload matched no requirement; identity check would be vacuous")
	}

	prof := templateOn(t, reuseModule(t, cfg.BufferPages), cfg)
	prof.PrimeIndex()
	rowsBefore := len(prof.Rows)

	warmCfg := cfg
	warmCfg.Profile = prof
	warm, err := ExecuteOnline(reuseModule(t, cfg.BufferPages), file, reqs, warmCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(warm.CorruptedFile, cold.CorruptedFile) {
		t.Fatal("warm (cached-profile) corrupted file differs from cold path")
	}
	if !reflect.DeepEqual(warm.Plan, cold.Plan) {
		t.Fatal("warm placement plan differs from cold path")
	}
	if warm.NMatch != cold.NMatch || warm.RMatch != cold.RMatch {
		t.Fatalf("warm metrics (match %d, r %.2f) differ from cold (match %d, r %.2f)",
			warm.NMatch, warm.RMatch, cold.NMatch, cold.RMatch)
	}
	if len(prof.Rows) != rowsBefore {
		t.Fatalf("shared profile mutated: %d rows, had %d", len(prof.Rows), rowsBefore)
	}

	// With re-templating enabled the engine must work on a clone; the
	// shared profile stays frozen even if passes fire.
	cloneCfg := warmCfg
	cloneCfg.RetemplatePasses = 2
	if _, err := ExecuteOnline(reuseModule(t, cfg.BufferPages), file, reqs, cloneCfg); err != nil {
		t.Fatal(err)
	}
	if len(prof.Rows) != rowsBefore {
		t.Fatalf("re-templating mutated the shared profile: %d rows, had %d", len(prof.Rows), rowsBefore)
	}

	// A template for a different buffer must be refused, not misapplied.
	badCfg := warmCfg
	badCfg.BufferPages = 4096
	if _, err := ExecuteOnline(reuseModule(t, badCfg.BufferPages), file, reqs, badCfg); err == nil {
		t.Fatal("mismatched cached profile accepted")
	}
}
