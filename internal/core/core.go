// Package core implements the paper's primary contribution: the
// Constrained Fine-Tuning with Bit Reduction attack (Algorithm 1) that
// jointly learns a backdoor trigger pattern and a set of weight bit
// flips satisfying the Rowhammer hardware constraints — at most one
// flipped weight per memory page (Group_Sort_Select) and at most one
// flipped bit per weight (Bit Reduction) — plus the online phase that
// places the victim's weight file onto profiled flippy pages and hammers
// the target bits in simulated DRAM.
package core

import (
	"sort"

	"rowhammer/internal/nn"
	"rowhammer/internal/profile"
	"rowhammer/internal/quant"
)

// paramOffsets returns the starting flat weight-file offset of each
// parameter tensor.
func paramOffsets(params []*nn.Param) []int {
	offs := make([]int, len(params))
	off := 0
	for i, p := range params {
		offs[i] = off
		off += p.W.Len()
	}
	return offs
}

// flatAbsGrad concatenates |G| of every parameter in weight-file order
// into dst (allocated by the caller with the model's parameter count).
func flatAbsGrad(params []*nn.Param, dst []float32) {
	off := 0
	for _, p := range params {
		g := p.G.Data()
		for _, v := range g {
			if v < 0 {
				v = -v
			}
			dst[off] = v
			off++
		}
	}
}

// RequirementsFromCodes converts the code difference between the
// original and backdoored weight files into per-page flip requirements
// for the online placement planner.
func RequirementsFromCodes(orig, backdoored []int8) []profile.PageRequirement {
	diffs := quant.DiffBitsOf(orig, backdoored)
	byPage := make(map[int][]profile.CellFlip)
	for _, d := range diffs {
		page := quant.PageOf(d.Weight)
		flip := profile.CellFlip{
			Offset: quant.PageOffset(d.Weight),
			Bit:    int(d.Bit),
			Dir:    dirOf(d.ZeroToOne),
		}
		byPage[page] = append(byPage[page], flip)
	}
	out := make([]profile.PageRequirement, 0, len(byPage))
	for page, flips := range byPage {
		out = append(out, profile.PageRequirement{FilePage: page, Flips: flips})
	}
	// Canonical page order: the placement planner breaks ties by input
	// order, so map-iteration order here would make plans (and corrupted
	// files) wobble between otherwise identical runs.
	sort.Slice(out, func(i, j int) bool { return out[i].FilePage < out[j].FilePage })
	return out
}

// ReduceRequirementsToOnePerPage applies the paper's online-phase
// concession for the baseline attacks: when a page needs several flips
// (which no real flippy page provides — Eq. 2), keep only the single
// most impactful one. Per page, the weight with the largest |code
// change| wins, and within it the most significant differing bit.
// Everything else is dropped, which is exactly why the baselines' ASR
// collapses online.
func ReduceRequirementsToOnePerPage(orig, backdoored []int8) []profile.PageRequirement {
	type bestFlip struct {
		delta int
		flip  profile.CellFlip
		found bool
	}
	best := make(map[int]*bestFlip)
	for i := range orig {
		if orig[i] == backdoored[i] {
			continue
		}
		d := int(backdoored[i]) - int(orig[i])
		if d < 0 {
			d = -d
		}
		page := quant.PageOf(i)
		b, ok := best[page]
		if !ok {
			b = &bestFlip{}
			best[page] = b
		}
		if !b.found || d > b.delta {
			// Most significant differing bit of this weight.
			reduced := quant.BitReduce(orig[i], backdoored[i])
			diff := byte(orig[i]) ^ byte(reduced)
			bit := 0
			for diff > 1 {
				diff >>= 1
				bit++
			}
			b.delta = d
			b.found = true
			b.flip = profile.CellFlip{
				Offset: quant.PageOffset(i),
				Bit:    bit,
				Dir:    dirOf(byte(reduced)&(1<<bit) != 0),
			}
		}
	}
	out := make([]profile.PageRequirement, 0, len(best))
	for page, b := range best {
		out = append(out, profile.PageRequirement{FilePage: page, Flips: []profile.CellFlip{b.flip}})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FilePage < out[j].FilePage })
	return out
}
