package core

import (
	"testing"

	"rowhammer/internal/data"
	"rowhammer/internal/models"
	"rowhammer/internal/nn"
	"rowhammer/internal/quant"
	"rowhammer/internal/tensor"
)

// driftVictim perturbs a deterministic pseudo-random subset of the
// model's float weights off the quantization grid, simulating the
// accumulated masked sign-SGD drift enforceConstraints sees at an
// enforcement step.
func driftVictim(q *quant.Quantizer, model *nn.Model, n int) {
	params := model.Params()
	offs := paramOffsets(params)
	nw := q.NumWeights()
	for k := 0; k < n; k++ {
		idx := int(uint32(k*2654435761+12345) % uint32(nw))
		pi := 0
		for pi < len(offs)-1 && offs[pi+1] <= idx {
			pi++
		}
		p := params[pi]
		inner := idx - offs[pi]
		step := float32(1+k%3) * q.Scale(pi)
		if k%2 == 0 {
			p.W.Data()[inner] += step
		} else {
			p.W.Data()[inner] -= step
		}
	}
}

// refineFixture assembles the enforcement-step workload shared by the
// full-forward and suffix-scorer benchmark variants: a quantized
// resnet20 victim, a 16-image refinement batch with stamped trigger, and
// the blended lossFn on the int8 engine. The drift fixture and batch
// match the committed pre-PR baseline (BenchmarkRefinementPrePR in
// BENCH_offline_baseline.json) so the before/after numbers compare the
// same logical work.
type refineFixture struct {
	m       *nn.Model
	q       *quant.Quantizer
	qm      *quant.QModel
	orig    []int8
	groups  [][2]int
	cfg     Config
	lossFn  func() float32
	targets []int
	batch   *tensorBatch
}

func newRefineFixture(b *testing.B) *refineFixture {
	b.Helper()
	m, err := models.Build(models.Config{Arch: "resnet20", Classes: 10, WidthMult: 0.25, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	nn.FreezeBatchNorm(m.Root)
	q := quant.NewQuantizer(m)
	qm := quant.NewQModel(q)

	dcfg := data.SynthCIFAR(0, 21)
	dcfg.Samples = 16
	set := data.Synthesize(dcfg, 42)
	imgs := set.Batches(16)[0]
	batch := &tensorBatch{
		clean:  imgs.Images,
		trig:   imgs.Images.Clone(),
		labels: imgs.Labels,
	}
	batch.stamp(data.NewSquareTrigger(3, 32, 32, 10))
	targets := make([]int, 16)
	for i := range targets {
		targets[i] = 2
	}

	// One group per 4 KB page: the w0.25 weight file spans 5 pages, so
	// NFlip=5 yields the same 5-group partition the pre-PR baseline
	// measured (its NFlip=8 was clamped to the page count by the old
	// geometry).
	cfg := DefaultConfig(5, 2)
	cfg.RefineCandidates = 3
	groups, err := groupBounds(q.NumWeights(), cfg.NFlip)
	if err != nil {
		b.Fatal(err)
	}

	fwd := func(x *tensor.Tensor) *tensor.Tensor { return qm.Forward(x) }
	lossFn := func() float32 {
		return blendedLoss(fwd, batch, targets, cfg.Alpha)
	}
	return &refineFixture{
		m: m, q: q, qm: qm,
		orig:    q.Codes(),
		groups:  groups,
		cfg:     cfg,
		lossFn:  lossFn,
		targets: targets,
		batch:   batch,
	}
}

// BenchmarkRefinement measures one constraint-enforcement step
// (Requantize + Bit Reduction + greedy coordinate descent over the
// groups): "full" scores every option with full forward passes, the
// pre-PR behavior; "suffix" runs the incremental suffix scorer at
// several worker bounds. Byte-identical outputs, different wall-clock.
func BenchmarkRefinement(b *testing.B) {
	b.Run("full", func(b *testing.B) {
		f := newRefineFixture(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			driftVictim(f.q, f.m, 64)
			b.StartTimer()
			enforceConstraints(f.q, f.orig, f.groups, f.cfg, f.lossFn, nil)
		}
	})
	for _, w := range []int{1, 4} {
		w := w
		b.Run("suffix/workers"+string(rune('0'+w)), func(b *testing.B) {
			f := newRefineFixture(b)
			scorer := quant.NewScorer(f.qm, f.batch.clean, f.batch.trig,
				f.batch.labels, f.targets, f.cfg.Alpha)
			scorer.SetWorkers(w)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				driftVictim(f.q, f.m, 64)
				b.StartTimer()
				enforceConstraints(f.q, f.orig, f.groups, f.cfg, f.lossFn, scorer)
			}
		})
	}
}
