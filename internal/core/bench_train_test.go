package core

import (
	"fmt"
	"testing"

	"rowhammer/internal/data"
	"rowhammer/internal/models"
	"rowhammer/internal/nn"
	"rowhammer/internal/tensor"
)

// BenchmarkTrainStep measures one batch-32 ResNet-20 forward+backward —
// the unit of work Algorithm 1 repeats hundreds of times — on the
// direct single-graph path and on the data-parallel trainer at one and
// four workers. Allocation counts are the headline: the trainer path
// reuses every buffer after warmup.
func BenchmarkTrainStep(b *testing.B) {
	x := tensor.New(32, 3, 32, 32)
	tensor.NewRNG(1).FillNormal(x, 0, 1)
	labels := make([]int, 32)

	buildVictim := func() *nn.Model {
		m, err := models.Build(models.Config{Arch: "resnet20", Classes: 10, WidthMult: 0.25, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		nn.FreezeBatchNorm(m.Root)
		return m
	}

	b.Run("direct", func(b *testing.B) {
		m := buildVictim()
		// Two warmup steps populate the layer scratch caches so short
		// runs report steady-state allocations, not first-call setup.
		for i := 0; i < 2; i++ {
			m.ZeroGrad()
			out := m.Forward(x, true)
			_, grad := nn.CrossEntropy(out, labels, 1)
			m.Backward(grad)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.ZeroGrad()
			out := m.Forward(x, true)
			_, grad := nn.CrossEntropy(out, labels, 1)
			m.Backward(grad)
		}
	})

	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("trainer_workers%d", workers), func(b *testing.B) {
			m := buildVictim()
			tr := nn.NewTrainer(m, 4)
			tr.SetWorkers(workers)
			for i := 0; i < 2; i++ {
				m.ZeroGrad()
				tr.ForwardBackward(x, labels, 1)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.ZeroGrad()
				tr.ForwardBackward(x, labels, 1)
			}
		})
	}
}

// BenchmarkOfflineAttack is the full RunOffline wall-clock at the
// reference settings (w0.25 ResNet-20, 100 iterations, 64 attack
// images) — the number EXPERIMENTS.md quotes. One op is one complete
// attack, so the benchmark self-terminates after a single iteration at
// the default -benchtime.
func BenchmarkOfflineAttack(b *testing.B) {
	dcfg := data.SynthCIFAR(0, 21)
	dcfg.Samples = 64
	attackSet := data.Synthesize(dcfg, 42)

	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("w025_workers%d", workers), func(b *testing.B) {
			cfg := DefaultConfig(5, 2)
			cfg.Iterations = 100
			cfg.TrainShards = 4
			cfg.TrainWorkers = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m, err := models.Build(models.Config{Arch: "resnet20", Classes: 10, WidthMult: 0.25, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := RunOffline(m, attackSet, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
