package core

import (
	"testing"

	"rowhammer/internal/data"
	"rowhammer/internal/models"
)

// runOfflineRefine executes a short RunOffline with the given refinement
// knobs (mutate adjusts the config before the run) against a fixed
// victim and attack set, for byte-comparing refinement variants.
func runOfflineRefine(t *testing.T, mutate func(*Config)) *Result {
	t.Helper()
	m, err := models.Build(models.Config{Arch: "resnet20", Classes: 10, WidthMult: 0.25, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	dcfg := data.SynthCIFAR(0, 21)
	dcfg.Samples = 16
	attackSet := data.Synthesize(dcfg, 99)

	cfg := DefaultConfig(3, 2)
	cfg.Iterations = 4
	cfg.BitReduceEvery = 2
	cfg.RefineBatch = 8
	cfg.TrainShards = 4
	if mutate != nil {
		mutate(&cfg)
	}
	out, err := RunOffline(m, attackSet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func compareResults(t *testing.T, label string, base, out *Result) {
	t.Helper()
	if out.NFlip != base.NFlip {
		t.Fatalf("%s: NFlip %d != %d", label, out.NFlip, base.NFlip)
	}
	if len(out.BackdooredCodes) != len(base.BackdooredCodes) {
		t.Fatalf("%s: code vector length mismatch", label)
	}
	for i := range out.BackdooredCodes {
		if out.BackdooredCodes[i] != base.BackdooredCodes[i] {
			t.Fatalf("%s: code %d differs: %d != %d", label, i, out.BackdooredCodes[i], base.BackdooredCodes[i])
		}
	}
	if len(out.LossHistory) != len(base.LossHistory) {
		t.Fatalf("%s: loss history length mismatch", label)
	}
	for i := range out.LossHistory {
		if out.LossHistory[i] != base.LossHistory[i] {
			t.Fatalf("%s: loss[%d] %v != %v", label, i, out.LossHistory[i], base.LossHistory[i])
		}
	}
}

// TestRefinementSuffixMatchesFullForward pins the suffix scorer's
// end-to-end contract: the attack output with incremental suffix scoring
// must be byte-identical to the FullForwardRefine reference path, at any
// scorer worker count.
func TestRefinementSuffixMatchesFullForward(t *testing.T) {
	ref := runOfflineRefine(t, func(c *Config) { c.FullForwardRefine = true })
	if ref.NFlip == 0 {
		t.Fatal("fixture applied no flips; the comparison would be vacuous")
	}
	for _, w := range []int{1, 2, 4} {
		w := w
		out := runOfflineRefine(t, func(c *Config) { c.ScoreWorkers = w })
		compareResults(t, "suffix workers="+string(rune('0'+w)), ref, out)
	}
}

// TestRefinementSuffixWithForbiddenMask repeats the reference/suffix
// comparison with the RADAR-adaptive MSB mask, which routes every
// candidate through BitReduceMasked and shifts the kept codes.
func TestRefinementSuffixWithForbiddenMask(t *testing.T) {
	ref := runOfflineRefine(t, func(c *Config) {
		c.FullForwardRefine = true
		c.ForbiddenBitMask = 0x80
	})
	out := runOfflineRefine(t, func(c *Config) {
		c.ForbiddenBitMask = 0x80
		c.ScoreWorkers = 2
	})
	compareResults(t, "masked suffix", ref, out)
}
