package core

import (
	"testing"

	"rowhammer/internal/models"
	"rowhammer/internal/nn"
	"rowhammer/internal/tensor"
)

func BenchmarkFwdBwd(b *testing.B) {
	for _, w := range []float64{0.25, 0.5} {
		m, _ := models.Build(models.Config{Arch: "resnet20", Classes: 10, WidthMult: w, Seed: 1})
		nn.FreezeBatchNorm(m.Root)
		x := tensor.New(32, 3, 32, 32)
		tensor.NewRNG(1).FillNormal(x, 0, 1)
		labels := make([]int, 32)
		b.Run(map[float64]string{0.25: "w025", 0.5: "w05"}[w], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.ZeroGrad()
				out := m.Forward(x, true)
				_, grad := nn.CrossEntropy(out, labels, 1)
				m.Backward(grad)
			}
		})
	}
}
