package core

import (
	"sync"
	"testing"
	"time"

	"rowhammer/internal/data"
	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
	"rowhammer/internal/metrics"
	"rowhammer/internal/models"
	"rowhammer/internal/nn"
	"rowhammer/internal/pretrain"
	"rowhammer/internal/quant"
)

var (
	victimOnce sync.Once
	victimRes  *pretrain.Result
	victimErr  error
)

func victimCfg() pretrain.Config {
	return pretrain.Config{
		Model:        models.Config{Arch: "resnet20", Classes: 10, WidthMult: 0.25, Seed: 3},
		Data:         data.SynthCIFAR(0, 21),
		TrainSamples: 600,
		TestSamples:  300,
		Epochs:       3,
		BatchSize:    32,
		Seed:         3,
	}
}

// trainedVictim returns a freshly cloned trained model per call. Tests
// that need it train a full (small) victim, so they are skipped under
// -short; see EXPERIMENTS.md for the full-fat invocation.
func trainedVictim(t *testing.T) (*pretrain.Result, *models.Config) {
	t.Helper()
	if testing.Short() {
		t.Skip("heavy: trains a victim model; run without -short")
	}
	victimOnce.Do(func() {
		victimRes, victimErr = pretrain.Train(victimCfg())
	})
	if victimErr != nil {
		t.Fatal(victimErr)
	}
	cfg := victimCfg().Model
	return victimRes, &cfg
}

func TestGroupSortSelectConstraints(t *testing.T) {
	nw := 5*quant.PageSize + 100
	grads := make([]float32, nw)
	for i := range grads {
		grads[i] = float32(i % 977)
	}
	sel, err := GroupSortSelect(grads, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) > 3 {
		t.Fatalf("selected %d, want ≤3", len(sel))
	}
	pages := map[int]bool{}
	for _, i := range sel {
		pg := quant.PageOf(i)
		if pages[pg] {
			t.Fatal("two selections share a page")
		}
		pages[pg] = true
	}
}

func TestGroupSortSelectPicksMaxPerGroup(t *testing.T) {
	nw := 2 * quant.PageSize
	grads := make([]float32, nw)
	grads[123] = 5
	grads[quant.PageSize+77] = 9
	sel, err := GroupSortSelect(grads, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0] != 123 || sel[1] != quant.PageSize+77 {
		t.Fatalf("sel = %v", sel)
	}
}

func TestGroupSortSelectValidation(t *testing.T) {
	grads := make([]float32, 100) // less than one page
	if _, err := GroupSortSelect(grads, 2); err == nil {
		t.Fatal("NFlip beyond page count must fail")
	}
	if _, err := GroupSortSelect(grads, 0); err == nil {
		t.Fatal("NFlip=0 must fail")
	}
	if sel, err := GroupSortSelect(grads, 1); err != nil || len(sel) != 1 {
		t.Fatalf("single group: %v %v", sel, err)
	}
}

func TestRequirementsFromCodes(t *testing.T) {
	orig := make([]int8, quant.PageSize+10)
	mod := append([]int8(nil), orig...)
	mod[5] = 4              // page 0, bit 2, 0→1
	mod[quant.PageSize] = 1 // page 1, bit 0, 0→1
	reqs := RequirementsFromCodes(orig, mod)
	if len(reqs) != 2 {
		t.Fatalf("got %d requirements, want 2", len(reqs))
	}
	for _, r := range reqs {
		if len(r.Flips) != 1 {
			t.Fatalf("page %d has %d flips, want 1", r.FilePage, len(r.Flips))
		}
		if r.Flips[0].Dir != dram.ZeroToOne {
			t.Fatal("direction wrong")
		}
	}
}

func attackConfig(nflip int) Config {
	cfg := DefaultConfig(nflip, 2)
	cfg.Iterations = 100
	cfg.BitReduceEvery = 50
	cfg.Eta = 2
	cfg.Epsilon = 0.02 // larger FGSM step compensates the short run
	return cfg
}

func TestOfflineCFTBR(t *testing.T) {
	res, mcfg := trainedVictim(t)
	model, err := pretrain.CloneModel(*mcfg, res.Model)
	if err != nil {
		t.Fatal(err)
	}
	q0 := quant.NewQuantizer(model) // establish page count
	pages := q0.NumPages()
	nflip := 5
	if nflip > pages {
		nflip = pages
	}
	attackSet := res.Test.Head(64)

	cleanTA := metrics.TestAccuracy(model, res.Test)
	out, err := RunOffline(model, attackSet, attackConfig(nflip))
	if err != nil {
		t.Fatal(err)
	}

	// Constraint: at most NFlip bits, one per page, one per weight.
	if out.NFlip > nflip {
		t.Fatalf("NFlip = %d, budget %d", out.NFlip, nflip)
	}
	if out.NFlip == 0 {
		t.Fatal("attack flipped nothing")
	}
	diffs := quant.DiffBitsOf(out.OrigCodes, out.BackdooredCodes)
	pagesSeen := map[int]bool{}
	weightsSeen := map[int]bool{}
	for _, d := range diffs {
		pg := quant.PageOf(d.Weight)
		if pagesSeen[pg] {
			t.Fatal("two flips share a page (violates C2)")
		}
		pagesSeen[pg] = true
		if weightsSeen[d.Weight] {
			t.Fatal("two flips share a weight (violates Bit Reduction)")
		}
		weightsSeen[d.Weight] = true
	}

	// Behavior: TA preserved, ASR raised.
	ta := metrics.TestAccuracy(model, res.Test)
	asr := metrics.AttackSuccessRate(model, res.Test, out.Trigger, 2)
	t.Logf("clean TA %.3f → backdoored TA %.3f, ASR %.3f, NFlip %d", cleanTA, ta, asr, out.NFlip)
	if ta < cleanTA-0.1 {
		t.Fatalf("TA collapsed: %.3f → %.3f", cleanTA, ta)
	}
	if asr < 0.5 {
		t.Fatalf("ASR %.3f too low for a working backdoor", asr)
	}
	if len(out.LossHistory) != 100 {
		t.Fatalf("loss history %d entries", len(out.LossHistory))
	}
}

func TestOfflineCFTWithoutBR(t *testing.T) {
	res, mcfg := trainedVictim(t)
	model, err := pretrain.CloneModel(*mcfg, res.Model)
	if err != nil {
		t.Fatal(err)
	}
	cfg := attackConfig(5)
	cfg.BitReduce = false
	out, err := RunOffline(model, res.Test.Head(64), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One weight per page still holds…
	diffs := quant.DiffBitsOf(out.OrigCodes, out.BackdooredCodes)
	weightPages := map[int]int{}
	for _, d := range diffs {
		weightPages[quant.PageOf(d.Weight)] = d.Weight
	}
	byPageWeights := map[int]map[int]bool{}
	for _, d := range diffs {
		pg := quant.PageOf(d.Weight)
		if byPageWeights[pg] == nil {
			byPageWeights[pg] = map[int]bool{}
		}
		byPageWeights[pg][d.Weight] = true
	}
	for pg, ws := range byPageWeights {
		if len(ws) > 1 {
			t.Fatalf("page %d modifies %d weights, want 1", pg, len(ws))
		}
	}
	// …but multi-bit weight changes are allowed (and expected).
	if out.NFlip <= len(byPageWeights) {
		t.Logf("note: CFT produced only single-bit changes this run (NFlip=%d over %d pages)",
			out.NFlip, len(byPageWeights))
	}
}

func TestOfflineValidation(t *testing.T) {
	res, mcfg := trainedVictim(t)
	model, _ := pretrain.CloneModel(*mcfg, res.Model)
	bad := attackConfig(5)
	bad.Alpha = 2
	if _, err := RunOffline(model, res.Test.Head(8), bad); err == nil {
		t.Fatal("alpha out of range must fail")
	}
	bad = attackConfig(5)
	bad.TargetClass = 99
	if _, err := RunOffline(model, res.Test.Head(8), bad); err == nil {
		t.Fatal("bad target class must fail")
	}
	bad = attackConfig(5)
	bad.Iterations = 0
	if _, err := RunOffline(model, res.Test.Head(8), bad); err == nil {
		t.Fatal("zero iterations must fail")
	}
	bad = attackConfig(1 << 20)
	if _, err := RunOffline(model, res.Test.Head(8), bad); err == nil {
		t.Fatal("NFlip beyond page count must fail")
	}
}

func TestOnlineEndToEnd(t *testing.T) {
	res, mcfg := trainedVictim(t)
	model, err := pretrain.CloneModel(*mcfg, res.Model)
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunOffline(model, res.Test.Head(64), attackConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	offlineASR := metrics.AttackSuccessRate(model, res.Test, out.Trigger, 2)

	weightFile := out.Quantizer.WeightFileBytes()
	// Original (clean) file: rebuild from original codes.
	cleanModel, err := pretrain.CloneModel(*mcfg, res.Model)
	if err != nil {
		t.Fatal(err)
	}
	qClean := quant.NewQuantizer(cleanModel)
	cleanFile := qClean.WeightFileBytes()
	_ = weightFile

	reqs := RequirementsFromCodes(out.OrigCodes, out.BackdooredCodes)

	mod, err := dram.NewModuleForSize(160<<20, dram.PaperDDR3(), 77)
	if err != nil {
		t.Fatal(err)
	}
	sys := memsys.NewSystem(mod)
	ocfg := DefaultOnlineConfig(len(cleanFile) / memsys.PageSize)
	onres, err := ExecuteOnline(sys, cleanFile, reqs, ocfg)
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("online: required %d, matched %d, accidental %d, r_match %.2f%%",
		onres.NRequired, onres.NMatch, onres.AccidentalFlips, onres.RMatch)
	if onres.NMatch != onres.NRequired {
		t.Fatalf("only %d of %d required flips landed", onres.NMatch, onres.NRequired)
	}
	if onres.RMatch < 99 {
		t.Fatalf("r_match = %.2f%%, want ≈100%%", onres.RMatch)
	}
	if onres.Unmatched != 0 {
		t.Fatalf("%d requirements unmatched at the paper's buffer scale", onres.Unmatched)
	}
	if onres.Report == nil || onres.Report.RoundsExecuted() != 1 {
		t.Fatalf("deterministic single-shot run should report exactly one round, got %+v", onres.Report)
	}

	// Load the corrupted file into a fresh victim model and verify the
	// backdoor behaves online as it did offline.
	victimModel, err := pretrain.CloneModel(*mcfg, res.Model)
	if err != nil {
		t.Fatal(err)
	}
	qv := quant.NewQuantizer(victimModel)
	qv.LoadWeightFileBytes(onres.CorruptedFile)
	onlineASR := metrics.AttackSuccessRate(victimModel, res.Test, out.Trigger, 2)
	onlineTA := metrics.TestAccuracy(victimModel, res.Test)
	t.Logf("offline ASR %.3f, online ASR %.3f, online TA %.3f", offlineASR, onlineASR, onlineTA)
	if onlineASR < offlineASR-0.1 {
		t.Fatalf("online ASR %.3f much below offline %.3f", onlineASR, offlineASR)
	}

	// Stealth: the on-disk file is untouched.
	disk, err := sys.ReadFileFromDisk(ocfg.WeightFileName)
	if err != nil {
		t.Fatal(err)
	}
	for i := range disk {
		if disk[i] != cleanFile[i] {
			t.Fatal("disk copy modified — attack is not stealthy")
		}
	}
}

// TestOnlineEndToEndRobustUnderFaults is the acceptance check from the
// robustness work: on a module where every weak cell fails to fire half
// the time, the single-shot engine degrades well below the paper's
// match rates while the 5-round verify/re-hammer engine recovers
// r_match ≥ 95% on the same end-to-end attack.
func TestOnlineEndToEndRobustUnderFaults(t *testing.T) {
	res, mcfg := trainedVictim(t)
	model, err := pretrain.CloneModel(*mcfg, res.Model)
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunOffline(model, res.Test.Head(64), attackConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	cleanModel, err := pretrain.CloneModel(*mcfg, res.Model)
	if err != nil {
		t.Fatal(err)
	}
	cleanFile := quant.NewQuantizer(cleanModel).WeightFileBytes()
	reqs := RequirementsFromCodes(out.OrigCodes, out.BackdooredCodes)

	run := func(cfg OnlineConfig) *OnlineResult {
		mod, err := dram.NewModuleForSize(160<<20, dram.PaperDDR3(), 77)
		if err != nil {
			t.Fatal(err)
		}
		sys := memsys.NewSystem(mod)
		sys.InjectFaults(dram.FaultModel{FlipFailProb: 0.5, Seed: 9})
		onres, err := ExecuteOnline(sys, cleanFile, reqs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return onres
	}

	filePages := len(cleanFile) / memsys.PageSize
	single := run(DefaultOnlineConfig(filePages))
	robust := run(RobustOnlineConfig(filePages))
	t.Logf("fail 0.5: single shot r_match %.2f%% (%d/%d), robust r_match %.2f%% (%d/%d over %d rounds)",
		single.RMatch, single.NMatch, single.NRequired,
		robust.RMatch, robust.NMatch, robust.NRequired, robust.Report.RoundsExecuted())
	if single.RMatch >= 95 {
		t.Fatalf("single shot r_match %.2f%% under 50%% flip failure — faults had no bite", single.RMatch)
	}
	if robust.RMatch < 95 {
		t.Fatalf("robust engine r_match %.2f%%, want ≥ 95%%", robust.RMatch)
	}
}

func TestExecuteOnlineValidation(t *testing.T) {
	mod, _ := dram.NewModuleForSize(8<<20, dram.PaperDDR3(), 1)
	sys := memsys.NewSystem(mod)
	if _, err := ExecuteOnline(sys, make([]byte, 100), nil, DefaultOnlineConfig(1)); err == nil {
		t.Fatal("unaligned file must fail")
	}
}

// TestOfflineQuantVsFloatEval runs the identical offline attack twice —
// greedy refinement scored on the int8 engine (default) and forced onto
// the fp32 graph — and checks the resulting backdoors are equivalent:
// same flip budget discipline and TA/ASR within the quantization-noise
// tolerance of each other on both evaluation engines.
func TestOfflineQuantVsFloatEval(t *testing.T) {
	res, mcfg := trainedVictim(t)
	run := func(float32Eval bool) (*Result, *nn.Model) {
		model, err := pretrain.CloneModel(*mcfg, res.Model)
		if err != nil {
			t.Fatal(err)
		}
		pages := quant.NewQuantizer(model).NumPages()
		nflip := 5
		if nflip > pages {
			nflip = pages
		}
		cfg := attackConfig(nflip)
		cfg.Float32Eval = float32Eval
		out, err := RunOffline(model, res.Test.Head(64), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return out, model
	}
	t0 := time.Now()
	outQ, mQ := run(false)
	dQ := time.Since(t0)
	t0 = time.Now()
	outF, mF := run(true)
	dF := time.Since(t0)
	t.Logf("offline attack wall-clock: int8 refine %v, fp32 refine %v", dQ, dF)

	if outQ.NFlip == 0 || outF.NFlip == 0 {
		t.Fatalf("an attack flipped nothing: int8 %d, fp32 %d", outQ.NFlip, outF.NFlip)
	}

	// Score each backdoored model on both inference engines.
	taQ := metrics.TestAccuracy(mQ, res.Test)
	taF := metrics.TestAccuracy(mF, res.Test)
	asrQ := metrics.AttackSuccessRate(mQ, res.Test, outQ.Trigger, 2)
	asrF := metrics.AttackSuccessRate(mF, res.Test, outF.Trigger, 2)
	qmQ := quant.NewQModel(outQ.Quantizer)
	taQ8 := metrics.TestAccuracy(qmQ, res.Test)
	asrQ8 := metrics.AttackSuccessRate(qmQ, res.Test, outQ.Trigger, 2)

	t.Logf("int8-refined: TA %.3f (int8 eval %.3f), ASR %.3f (int8 eval %.3f), NFlip %d",
		taQ, taQ8, asrQ, asrQ8, outQ.NFlip)
	t.Logf("fp32-refined: TA %.3f, ASR %.3f, NFlip %d", taF, asrF, outF.NFlip)

	if d := taQ - taF; d < -0.1 || d > 0.1 {
		t.Fatalf("TA diverges between refinement engines: %.3f vs %.3f", taQ, taF)
	}
	if d := asrQ - asrF; d < -0.15 || d > 0.15 {
		t.Fatalf("ASR diverges between refinement engines: %.3f vs %.3f", asrQ, asrF)
	}
	// The deployed (int8) view of the attacked model must agree with its
	// fp32 twin — same weights, different engine.
	if d := taQ - taQ8; d < -0.05 || d > 0.05 {
		t.Fatalf("TA engine gap: fp32 %.3f vs int8 %.3f", taQ, taQ8)
	}
	if d := asrQ - asrQ8; d < -0.05 || d > 0.05 {
		t.Fatalf("ASR engine gap: fp32 %.3f vs int8 %.3f", asrQ, asrQ8)
	}
}
