package core

import (
	"fmt"
	"testing"

	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
	"rowhammer/internal/profile"
	"rowhammer/internal/tensor"
)

// syntheticOnlineWorkload builds a page-aligned weight file and a set of
// single-flip page requirements, deterministic in the given seed. The
// requirement density (one flip on every eighth file page) matches what
// CFT+BR emits for the reference models: single-bit flips spread across
// distinct pages.
func syntheticOnlineWorkload(filePages int, seed int64) ([]byte, []profile.PageRequirement) {
	rng := tensor.NewRNG(seed)
	file := make([]byte, filePages*memsys.PageSize)
	for i := range file {
		file[i] = byte(rng.Intn(256))
	}
	var reqs []profile.PageRequirement
	for fp := 0; fp < filePages; fp += 8 {
		off := rng.Intn(memsys.PageSize)
		bit := rng.Intn(8)
		dir := dram.ZeroToOne
		if file[fp*memsys.PageSize+off]&(1<<bit) != 0 {
			dir = dram.OneToZero
		}
		reqs = append(reqs, profile.PageRequirement{
			FilePage: fp,
			Flips:    []profile.CellFlip{{Offset: off, Bit: bit, Dir: dir}},
		})
	}
	return file, reqs
}

// BenchmarkExecuteOnline measures the full online phase — SPOILER
// verification, bank clustering, hammer templating of every row in both
// polarities, placement planning, massaging, and the hammer/readback —
// over a buffer-size sweep from the paper's 128 MB profiling floor
// (32768 pages) toward the Eq. 2 scale, at 1/2/4 templating workers.
// One op is one complete online attack against a fresh system.
func BenchmarkExecuteOnline(b *testing.B) {
	const filePages = 256
	file, reqs := syntheticOnlineWorkload(filePages, 3)

	for _, bufPages := range []int{32768, 65536, 131072, 262144} {
		for _, workers := range []int{1, 2, 4} {
			if bufPages > 32768 && workers == 2 {
				continue // sweep the buffer size at the 1/4 endpoints only
			}
			name := fmt.Sprintf("pages%d/workers%d", bufPages, workers)
			b.Run(name, func(b *testing.B) {
				prev := tensor.SetMaxWorkers(workers)
				defer tensor.SetMaxWorkers(prev)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					mod, err := dram.NewModuleForSize(
						bufPages*memsys.PageSize+(32<<20), dram.PaperDDR3(), 77)
					if err != nil {
						b.Fatal(err)
					}
					sys := memsys.NewSystem(mod)
					b.StartTimer()
					res, err := ExecuteOnline(sys, file, reqs, OnlineConfig{
						BufferPages:    bufPages,
						Sides:          2,
						Intensity:      1,
						MeasureSeed:    7,
						WeightFileName: "bench-weights.bin",
					})
					if err != nil {
						b.Fatal(err)
					}
					if res.NMatch == 0 {
						b.Fatal("benchmark workload matched no requirement")
					}
				}
			})
		}
	}
}
