package baselines

import (
	"fmt"
	"sort"

	"rowhammer/internal/data"
	"rowhammer/internal/nn"
	"rowhammer/internal/quant"
)

// TBTConfig parameterizes the Targeted Bit Trojan baseline.
type TBTConfig struct {
	Config
	// WB is the number of last-layer weights the attack modifies (the
	// "wb" parameter of Rakin et al.).
	WB int
	// TriggerIters is the number of FGSM steps of trigger generation.
	TriggerIters int
	// Epsilon is the FGSM step size for trigger generation.
	Epsilon float32
}

// DefaultTBTConfig returns workable TBT settings.
func DefaultTBTConfig(target int) TBTConfig {
	return TBTConfig{
		Config:       DefaultConfig(target),
		WB:           20,
		TriggerIters: 30,
		Epsilon:      0.02,
	}
}

// TBT implements the Targeted Bit Trojan baseline: (1) select the WB
// most significant last-layer weights feeding the target class, (2)
// generate a trigger that drives the target logit via FGSM, (3)
// fine-tune only the selected weights on the blended objective. All
// modified weights live in the final layer — a single memory page on
// CIFAR-scale models — which is what ruins its DRAM match rate.
func TBT(model *nn.Model, attackSet *data.Dataset, cfg TBTConfig) (*Result, error) {
	if err := cfg.Config.validate(model); err != nil {
		return nil, err
	}
	if cfg.WB <= 0 {
		return nil, fmt.Errorf("baselines: TBT WB must be positive")
	}
	fc, err := lastLinear(model)
	if err != nil {
		return nil, err
	}
	nn.FreezeBatchNorm(model.Root)
	q := quant.NewQuantizer(model)
	orig := q.Codes()

	// Step 1: significant-neuron identification — the WB input features
	// with the largest |weight| into the target class row.
	features := fc.Weight.W.Dim(1)
	wb := cfg.WB
	if wb > features {
		wb = features
	}
	type scored struct {
		idx int
		mag float32
	}
	row := make([]scored, features)
	for j := 0; j < features; j++ {
		v := fc.Weight.W.At(cfg.TargetClass, j)
		if v < 0 {
			v = -v
		}
		row[j] = scored{idx: j, mag: v}
	}
	sort.Slice(row, func(a, b int) bool { return row[a].mag > row[b].mag })
	selected := make(map[int]bool, wb)
	for _, s := range row[:wb] {
		selected[s.idx] = true
	}

	// Step 2: trigger generation by FGSM on the target logit.
	trigger := data.NewSquareTrigger(model.InputShape[0], model.InputShape[1], model.InputShape[2], cfg.TriggerSize)
	batch := attackSet.Batches(attackSet.Len())[0]
	targets := make([]int, len(batch.Labels))
	for i := range targets {
		targets[i] = cfg.TargetClass
	}
	trainer := nn.NewTrainer(model, nn.DefaultTrainShards)
	trigImages := batch.Images.Clone()
	for t := 0; t < cfg.TriggerIters; t++ {
		model.ZeroGrad()
		copy(trigImages.Data(), batch.Images.Data())
		trigger.Apply(trigImages)
		_, inGrad := trainer.ForwardBackward(trigImages, targets, 1)
		tg := trigger.MaskedGradSum(inGrad)
		trigger.UpdateFGSM(tg, -cfg.Epsilon)
	}

	// Step 3: fine-tune only W[target, selected].
	for t := 0; t < cfg.Iterations; t++ {
		model.ZeroGrad()
		trainer.ForwardBackward(batch.Images, batch.Labels, 1-cfg.Alpha)

		copy(trigImages.Data(), batch.Images.Data())
		trigger.Apply(trigImages)
		trainer.ForwardBackward(trigImages, targets, cfg.Alpha)

		// Masked SGD on the selected row entries only.
		w := fc.Weight.W.Data()
		g := fc.Weight.G.Data()
		base := cfg.TargetClass * features
		for j := 0; j < features; j++ {
			if selected[j] {
				w[base+j] -= cfg.LR * g[base+j]
			}
		}
	}

	q.Requantize()
	codes := q.Codes()
	return &Result{
		Quantizer:       q,
		OrigCodes:       orig,
		BackdooredCodes: codes,
		Trigger:         trigger,
		NFlip:           quant.HammingDistance(orig, codes),
	}, nil
}
