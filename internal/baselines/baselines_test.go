package baselines

import (
	"sync"
	"testing"

	"rowhammer/internal/data"
	"rowhammer/internal/metrics"
	"rowhammer/internal/models"
	"rowhammer/internal/pretrain"
	"rowhammer/internal/quant"
)

var (
	once sync.Once
	res  *pretrain.Result
	rerr error
)

func victimCfg() pretrain.Config {
	return pretrain.Config{
		Model:        models.Config{Arch: "resnet20", Classes: 10, WidthMult: 0.25, Seed: 3},
		Data:         data.SynthCIFAR(0, 21),
		TrainSamples: 600,
		TestSamples:  300,
		Epochs:       3,
		BatchSize:    32,
		Seed:         3,
	}
}

func victim(t *testing.T) *pretrain.Result {
	t.Helper()
	if testing.Short() {
		t.Skip("heavy: trains a victim model; run without -short")
	}
	once.Do(func() { res, rerr = pretrain.Train(victimCfg()) })
	if rerr != nil {
		t.Fatal(rerr)
	}
	return res
}

func clone(t *testing.T) *pretrain.Result {
	t.Helper()
	r := victim(t)
	m, err := pretrain.CloneModel(victimCfg().Model, r.Model)
	if err != nil {
		t.Fatal(err)
	}
	return &pretrain.Result{Model: m, Train: r.Train, Test: r.Test, Accuracy: r.Accuracy}
}

func smallCfg() Config {
	cfg := DefaultConfig(2)
	cfg.Iterations = 60
	cfg.LR = 0.05
	return cfg
}

func TestBadNetInjectsBackdoorWithManyFlips(t *testing.T) {
	r := clone(t)
	// Full-parameter fine-tuning diverges at smallCfg's LR (0.05 is
	// tuned for the last-layer-only baselines); use the default step.
	cfg := smallCfg()
	cfg.LR = 0.01
	out, err := BadNet(r.Model, r.Test.Head(32), cfg)
	if err != nil {
		t.Fatal(err)
	}
	asr := metrics.AttackSuccessRate(r.Model, r.Test, out.Trigger, 2)
	t.Logf("BadNet: NFlip=%d ASR=%.3f", out.NFlip, asr)
	if asr < 0.8 {
		t.Fatalf("BadNet offline ASR %.3f, want high", asr)
	}
	// Unconstrained fine-tuning flips a large share of the bits.
	if out.NFlip < 1000 {
		t.Fatalf("BadNet NFlip = %d, expected thousands", out.NFlip)
	}
}

func TestFTModifiesOnlyLastLayer(t *testing.T) {
	r := clone(t)
	out, err := FT(r.Model, r.Test.Head(32), smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if out.NFlip == 0 {
		t.Fatal("FT flipped nothing")
	}
	// The last layer of the tiny model is fc (weight+bias), i.e. the
	// final 170 weights of the file. Every diff must fall there.
	fcStart := len(out.OrigCodes) - 170
	for _, d := range quant.DiffBitsOf(out.OrigCodes, out.BackdooredCodes) {
		if d.Weight < fcStart {
			t.Fatalf("FT modified weight %d outside the last layer (start %d)", d.Weight, fcStart)
		}
	}
	asr := metrics.AttackSuccessRate(r.Model, r.Test, out.Trigger, 2)
	t.Logf("FT: NFlip=%d ASR=%.3f", out.NFlip, asr)
	if asr < 0.5 {
		t.Fatalf("FT offline ASR %.3f too low", asr)
	}
}

func TestTBTModifiesOnlySelectedWeights(t *testing.T) {
	r := clone(t)
	cfg := DefaultTBTConfig(2)
	cfg.Iterations = 60
	cfg.LR = 0.05
	cfg.WB = 8
	out, err := TBT(r.Model, r.Test.Head(32), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.NFlip == 0 {
		t.Fatal("TBT flipped nothing")
	}
	// All modified weights must be in the target class's fc row, and at
	// most WB distinct weights may change.
	weights := map[int]bool{}
	for _, d := range quant.DiffBitsOf(out.OrigCodes, out.BackdooredCodes) {
		weights[d.Weight] = true
	}
	if len(weights) > cfg.WB {
		t.Fatalf("TBT modified %d weights, budget %d", len(weights), cfg.WB)
	}
	asr := metrics.AttackSuccessRate(r.Model, r.Test, out.Trigger, 2)
	ta := metrics.TestAccuracy(r.Model, r.Test)
	t.Logf("TBT: NFlip=%d weights=%d TA=%.3f ASR=%.3f", out.NFlip, len(weights), ta, asr)
	if asr < 0.4 {
		t.Fatalf("TBT offline ASR %.3f too low", asr)
	}
}

func TestBaselineValidation(t *testing.T) {
	r := clone(t)
	bad := smallCfg()
	bad.TargetClass = -1
	if _, err := BadNet(r.Model, r.Test.Head(8), bad); err == nil {
		t.Fatal("bad target must fail")
	}
	bad = smallCfg()
	bad.Iterations = 0
	if _, err := FT(r.Model, r.Test.Head(8), bad); err == nil {
		t.Fatal("zero iterations must fail")
	}
	tcfg := DefaultTBTConfig(2)
	tcfg.WB = 0
	if _, err := TBT(r.Model, r.Test.Head(8), tcfg); err == nil {
		t.Fatal("WB=0 must fail")
	}
}
