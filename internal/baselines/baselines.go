// Package baselines implements the backdoor-injection methods the paper
// compares CFT+BR against (Table II): BadNet (unconstrained fine-tuning
// of every weight), FT (last-layer fine-tuning) and TBT (Targeted Bit
// Trojan: trigger generation plus fine-tuning of a few last-layer
// weights). None of them respects the Rowhammer placement constraints,
// which is exactly why their DRAM match rates collapse online.
package baselines

import (
	"fmt"

	"rowhammer/internal/data"
	"rowhammer/internal/nn"
	"rowhammer/internal/quant"
)

// Result is the offline output of a baseline attack, structurally
// identical to the CFT+BR result so the online pipeline can consume
// either.
type Result struct {
	// Quantizer is bound to the attacked model.
	Quantizer *quant.Quantizer
	// OrigCodes and BackdooredCodes are the clean and attacked weight
	// files.
	OrigCodes       []int8
	BackdooredCodes []int8
	// Trigger is the input pattern.
	Trigger *data.Trigger
	// NFlip is the Hamming distance between the code vectors.
	NFlip int
}

// Config holds the shared baseline settings.
type Config struct {
	// TargetClass is the backdoor target label.
	TargetClass int
	// Alpha blends clean loss (1−α) and triggered loss (α).
	Alpha float32
	// Iterations is the number of fine-tuning steps on the attack
	// batch.
	Iterations int
	// LR is the SGD learning rate.
	LR float32
	// TriggerSize is the square trigger edge length.
	TriggerSize int
}

// DefaultConfig returns workable baseline settings.
func DefaultConfig(target int) Config {
	return Config{
		TargetClass: target,
		Alpha:       0.5,
		Iterations:  60,
		LR:          0.01,
		TriggerSize: 10,
	}
}

func (c Config) validate(model *nn.Model) error {
	if c.TargetClass < 0 || c.TargetClass >= model.Classes {
		return fmt.Errorf("baselines: target class %d out of range", c.TargetClass)
	}
	if c.Iterations <= 0 {
		return fmt.Errorf("baselines: iterations must be positive")
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return fmt.Errorf("baselines: alpha must be in [0,1]")
	}
	return nil
}

// fixedTrigger builds the static white-square trigger the unoptimized
// baselines stamp on inputs.
func fixedTrigger(model *nn.Model, size int) *data.Trigger {
	tr := data.NewSquareTrigger(model.InputShape[0], model.InputShape[1], model.InputShape[2], size)
	tr.Pattern.Fill(1)
	return tr
}

// fineTune runs the blended-objective fine-tuning over the given
// parameter subset and returns the resulting weight-file difference.
func fineTune(model *nn.Model, attackSet *data.Dataset, params []*nn.Param, trigger *data.Trigger, cfg Config) (*Result, error) {
	if err := cfg.validate(model); err != nil {
		return nil, err
	}
	nn.FreezeBatchNorm(model.Root)
	q := quant.NewQuantizer(model)
	orig := q.Codes()

	batch := attackSet.Batches(attackSet.Len())[0]
	targets := make([]int, len(batch.Labels))
	for i := range targets {
		targets[i] = cfg.TargetClass
	}
	opt := nn.NewSGD(params, cfg.LR, 0.9, 0)

	// Gradient passes run on the data-parallel trainer; the optimizer
	// only steps the caller's parameter subset, and the trainer resyncs
	// replica weights from the master each iteration.
	trainer := nn.NewTrainer(model, nn.DefaultTrainShards)
	trigImages := batch.Images.Clone()
	for t := 0; t < cfg.Iterations; t++ {
		model.ZeroGrad()
		trainer.ForwardBackward(batch.Images, batch.Labels, 1-cfg.Alpha)

		copy(trigImages.Data(), batch.Images.Data())
		trigger.Apply(trigImages)
		trainer.ForwardBackward(trigImages, targets, cfg.Alpha)

		opt.Step()
	}
	q.Requantize()
	codes := q.Codes()
	return &Result{
		Quantizer:       q,
		OrigCodes:       orig,
		BackdooredCodes: codes,
		Trigger:         trigger,
		NFlip:           quant.HammingDistance(orig, codes),
	}, nil
}

// BadNet fine-tunes every parameter on the blended objective with a
// fixed trigger — the supply-chain attack of Gu et al., evaluated here
// as a post-deployment bit-flip candidate.
func BadNet(model *nn.Model, attackSet *data.Dataset, cfg Config) (*Result, error) {
	trigger := fixedTrigger(model, cfg.TriggerSize)
	return fineTune(model, attackSet, model.Params(), trigger, cfg)
}

// lastLinear returns the network's final fully connected layer.
func lastLinear(model *nn.Model) (*nn.Linear, error) {
	var last *nn.Linear
	nn.Walk(model.Root, func(l nn.Layer) {
		if fc, ok := l.(*nn.Linear); ok {
			last = fc
		}
	})
	if last == nil {
		return nil, fmt.Errorf("baselines: model has no linear layer")
	}
	return last, nil
}

// FT fine-tunes only the last layer (the paper's FT baseline).
func FT(model *nn.Model, attackSet *data.Dataset, cfg Config) (*Result, error) {
	fc, err := lastLinear(model)
	if err != nil {
		return nil, err
	}
	trigger := fixedTrigger(model, cfg.TriggerSize)
	return fineTune(model, attackSet, fc.Params(), trigger, cfg)
}
