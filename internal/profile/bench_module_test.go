package profile

import (
	"fmt"
	"runtime"
	"testing"

	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
)

// moduleBenchSetup builds a system around a realistic low-density
// DDR3 device (Table I "B1", 1.05 flips/page) with an attacker buffer
// of bufPages already mapped — the multi-GB templating scenario.
func moduleBenchSetup(b *testing.B, bufPages int) (*memsys.System, *memsys.Process, int) {
	b.Helper()
	prof, ok := dram.ProfileByName("B1")
	if !ok {
		b.Fatal("no B1 profile")
	}
	mod, err := dram.NewModuleForSize(bufPages*memsys.PageSize+(16<<20), prof, 11)
	if err != nil {
		b.Fatal(err)
	}
	sys := memsys.NewSystem(mod)
	attacker := sys.NewProcess()
	base, err := attacker.Mmap(bufPages)
	if err != nil {
		b.Fatal(err)
	}
	return sys, attacker, base
}

// BenchmarkProfileModule templates a whole attacker buffer end-to-end
// (SPOILER contiguity check included) at module scale: 256 MB and 1 GB
// buffers here; BenchmarkProfileModule16GB covers the 4M-page DIMM.
func BenchmarkProfileModule(b *testing.B) {
	benchProfileModule(b, []int{65536, 262144})
}

// BenchmarkProfileModule16GB is the tentpole scenario: an entire 16 GB
// module (4,194,304 pages) templated end-to-end through ProfileBuffer.
// Only meaningful on the sparse storage path — the dense module would
// need 16 GB of RSS before the first hammer.
func BenchmarkProfileModule16GB(b *testing.B) {
	benchProfileModule(b, []int{4194304})
}

func benchProfileModule(b *testing.B, sizes []int) {
	for _, bufPages := range sizes {
		b.Run(fmt.Sprintf("pages%d", bufPages), func(b *testing.B) {
			sys, attacker, base := moduleBenchSetup(b, bufPages)
			runtime.GC() // drop prior sub-benchmarks' heap before timing
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := ProfileBuffer(sys, attacker, base, bufPages, Config{
					Sides: 2, Intensity: 1, MeasureSeed: 5,
				})
				if err != nil {
					b.Fatal(err)
				}
				if p.TotalFlips() == 0 {
					b.Fatal("no flips templated")
				}
			}
		})
	}
}
