package profile

import (
	"reflect"
	"testing"

	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
)

// handProfile builds a minimal two-row profile by hand, with row 1's
// aggressors placed below the buffer base — legal for externally merged
// profiles and exactly the shape that used to panic the planner's
// aggressor-page indexing.
func handProfile() *Profile {
	flip := CellFlip{Offset: 100, Bit: 3, Dir: dram.ZeroToOne}
	p := &Profile{
		BufBase:  1 << 20,
		BufPages: 8,
		Rows: []VictimRow{
			{
				Pages: [2]PageFlips{
					{BufferPage: 2, Flips: []CellFlip{flip}},
					{BufferPage: 3},
				},
				// One aggressor inside the buffer, one below BufBase.
				AggressorVaddrs: []int{1<<20 + 0*memsys.PageSize, 1<<20 - 4*memsys.PageSize},
				Sides:           2,
				Intensity:       1,
			},
			{
				Pages: [2]PageFlips{
					{BufferPage: 4, Flips: []CellFlip{flip}},
					{BufferPage: 5},
				},
				// Aggressors entirely outside (above) the buffer.
				AggressorVaddrs: []int{1<<20 + 100*memsys.PageSize},
				Sides:           2,
				Intensity:       1,
			},
		},
	}
	for page, rh := range map[int][2]int{2: {0, 0}, 3: {0, 1}, 4: {1, 0}, 5: {1, 1}} {
		p.setVictimPage(page, rh[0], rh[1])
	}
	return p
}

// TestPlanToleratesForeignAggressorVaddrs: aggressor vaddrs outside
// [BufBase, BufBase+BufPages) own no buffer page; planning over such a
// profile must skip them instead of indexing out of range (this
// panicked before the guards in aggressorBufferPages/rowAggConflict).
func TestPlanToleratesForeignAggressorVaddrs(t *testing.T) {
	p := handProfile()
	reqs := []PageRequirement{
		{FilePage: 0, Flips: []CellFlip{{Offset: 100, Bit: 3, Dir: dram.ZeroToOne}}},
		{FilePage: 1, Flips: []CellFlip{{Offset: 100, Bit: 3, Dir: dram.ZeroToOne}}},
	}
	plan, err := PlanPlacement(p, reqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Matched) != 2 || len(plan.Unmatched) != 0 {
		t.Fatalf("matched %d / unmatched %d, want 2/0", len(plan.Matched), len(plan.Unmatched))
	}
	if len(plan.MatchedRows) != len(plan.Matched) {
		t.Fatalf("MatchedRows length %d != Matched length %d", len(plan.MatchedRows), len(plan.Matched))
	}
	for _, ri := range plan.MatchedRows {
		if ri < 0 || ri >= len(p.Rows) {
			t.Fatalf("MatchedRows points outside the profile: %d", ri)
		}
	}
	// The in-buffer aggressor page of row 0 must still be reserved
	// (never assigned to a file page).
	for fp, bp := range plan.Assignment {
		if bp == 0 {
			t.Fatalf("file page %d landed on reserved aggressor page 0", fp)
		}
	}
}

// TestMatchedRowsHostRequirements: each MatchedRows entry's row really
// contains its requirement's flips — the invariant the verify loop's
// re-hammer targeting relies on.
func TestMatchedRowsHostRequirements(t *testing.T) {
	_, _, p := setupProfiled(t, dram.PaperDDR3(), 512, 2)
	var reqs []PageRequirement
	fp := 0
	for ri := range p.Rows {
		for h := 0; h < 2 && len(reqs) < 5; h++ {
			fl := p.Rows[ri].Pages[h].Flips
			if len(fl) == 0 {
				continue
			}
			reqs = append(reqs, PageRequirement{FilePage: fp, Flips: []CellFlip{fl[0]}})
			fp++
		}
	}
	if len(reqs) == 0 {
		t.Skip("no flips profiled")
	}
	plan, err := PlanPlacement(p, reqs, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i, req := range plan.Matched {
		row := &p.Rows[plan.MatchedRows[i]]
		hosted := containsAll(row.Pages[0].Flips, req.Flips) || containsAll(row.Pages[1].Flips, req.Flips)
		if !hosted {
			t.Fatalf("matched row %d does not host requirement %d", plan.MatchedRows[i], i)
		}
	}
}

// TestExtendProfileGrowsContiguously: extending a profiled buffer with
// a second contiguous mapping must rebase the extension's pages onto
// the original base and leave planning over the union working.
func TestExtendProfileGrowsContiguously(t *testing.T) {
	mod, err := dram.NewModuleForSize(64<<20, dram.PaperDDR3(), 11)
	if err != nil {
		t.Fatal(err)
	}
	sys := memsys.NewSystem(mod)
	attacker := sys.NewProcess()
	const half = 512
	base, err := attacker.Mmap(half)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Sides: 2, Intensity: 1, MeasureSeed: 5}
	p, err := ProfileBuffer(sys, attacker, base, half, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rowsBefore := len(p.Rows)
	flipsBefore := p.TotalFlips()

	extBase, err := attacker.Mmap(half)
	if err != nil {
		t.Fatal(err)
	}
	if err := ExtendProfile(sys, attacker, p, extBase, half, cfg); err != nil {
		t.Fatal(err)
	}
	if p.BufPages != 2*half {
		t.Fatalf("BufPages = %d, want %d", p.BufPages, 2*half)
	}
	if len(p.Rows) <= rowsBefore || p.TotalFlips() <= flipsBefore {
		t.Fatalf("extension added no rows/flips (%d rows, %d flips)", len(p.Rows), p.TotalFlips())
	}
	for ri := rowsBefore; ri < len(p.Rows); ri++ {
		for h := 0; h < 2; h++ {
			pg := p.Rows[ri].Pages[h].BufferPage
			if pg < half || pg >= 2*half {
				t.Fatalf("extension row %d half %d has page %d outside the extension", ri, h, pg)
			}
		}
	}

	// Planning across the union must work and may use extension rows.
	var req PageRequirement
	for ri := rowsBefore; ri < len(p.Rows); ri++ {
		if fl := p.Rows[ri].Pages[0].Flips; len(fl) > 0 {
			req = PageRequirement{FilePage: 0, Flips: []CellFlip{fl[0]}}
			break
		}
	}
	if req.Flips == nil {
		t.Skip("extension produced no flips to match")
	}
	plan, err := PlanPlacement(p, []PageRequirement{req}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Matched) != 1 {
		t.Fatalf("requirement from extension rows went unmatched")
	}
}

// TestExtendProfileRejectsGaps: an extension that is not virtually
// flush with the buffer end must be refused.
func TestExtendProfileRejectsGaps(t *testing.T) {
	sys, attacker, p := setupProfiled(t, dram.PaperDDR3(), 256, 2)
	cfg := Config{Sides: 2, Intensity: 1, MeasureSeed: 5}
	wrong := p.BufBase + (p.BufPages+2)*memsys.PageSize
	if err := ExtendProfile(sys, attacker, p, wrong, 256, cfg); err == nil {
		t.Fatal("non-contiguous extension accepted")
	}
	if err := ExtendProfile(sys, attacker, p, p.BufBase+p.BufPages*memsys.PageSize, 3, cfg); err == nil {
		t.Fatal("odd-page extension accepted")
	}
}

// TestReprofileUnionNoopWithoutFaults: on a deterministic module the
// re-sweep reproduces the recorded templates exactly — nothing added,
// rows untouched.
func TestReprofileUnionNoopWithoutFaults(t *testing.T) {
	sys, attacker, p := setupProfiled(t, dram.PaperDDR3(), 512, 2)
	before := make([]VictimRow, len(p.Rows))
	copy(before, p.Rows)
	added, err := ReprofileUnion(sys, attacker, p, Config{Sides: 2, Intensity: 1, MeasureSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 {
		t.Fatalf("fault-free re-sweep added %d flips, want 0", added)
	}
	if !reflect.DeepEqual(before, p.Rows) {
		t.Fatal("fault-free re-sweep mutated the profile")
	}
}

// TestReprofileUnionRecoversFaultMisses: with per-pass flip failures
// each sweep misses a random subset of weak cells; unioning repeated
// sweeps must grow the inventory toward the fault-free one, and the
// memoized index must stay consistent (plans over unioned flips work).
func TestReprofileUnionRecoversFaultMisses(t *testing.T) {
	mkSys := func(faulty bool) (*memsys.System, *memsys.Process) {
		mod, err := dram.NewModuleForSize(32<<20, dram.PaperDDR3(), 11)
		if err != nil {
			t.Fatal(err)
		}
		sys := memsys.NewSystem(mod)
		if faulty {
			sys.InjectFaults(dram.FaultModel{FlipFailProb: 0.5, Seed: 3})
		}
		return sys, sys.NewProcess()
	}
	cfg := Config{Sides: 2, Intensity: 1, MeasureSeed: 5}
	const pages = 512

	cleanSys, cleanProc := mkSys(false)
	base, err := cleanProc.Mmap(pages)
	if err != nil {
		t.Fatal(err)
	}
	full, err := ProfileBuffer(cleanSys, cleanProc, base, pages, cfg)
	if err != nil {
		t.Fatal(err)
	}

	lossySys, lossyProc := mkSys(true)
	base2, err := lossyProc.Mmap(pages)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ProfileBuffer(lossySys, lossyProc, base2, pages, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := p.TotalFlips()
	if first >= full.TotalFlips() {
		t.Fatalf("lossy sweep found %d flips, full %d — fault injection had no effect",
			first, full.TotalFlips())
	}
	// buildFlipIndex before unioning so indexInsertFlip's sorted
	// insertion path is exercised.
	p.buildFlipIndex()
	grown := first
	for pass := 0; pass < 6; pass++ {
		added, err := ReprofileUnion(lossySys, lossyProc, p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		grown += added
	}
	if p.TotalFlips() != grown {
		t.Fatalf("TotalFlips %d != tracked %d", p.TotalFlips(), grown)
	}
	if grown <= first {
		t.Fatal("re-sweeps recovered nothing")
	}
	if float64(grown) < 0.95*float64(full.TotalFlips()) {
		t.Fatalf("after 7 sweeps recovered %d of %d flips", grown, full.TotalFlips())
	}
	// The incrementally maintained index must agree with a fresh build.
	fresh := &Profile{BufBase: p.BufBase, BufPages: p.BufPages, Rows: p.Rows}
	fresh.buildFlipIndex()
	if len(fresh.flipIndex) != len(p.flipIndex) {
		t.Fatalf("index size diverged: fresh %d vs incremental %d", len(fresh.flipIndex), len(p.flipIndex))
	}
	for f, want := range fresh.flipIndex {
		if !reflect.DeepEqual(p.flipIndex[f], want) {
			t.Fatalf("index for %+v diverged: %v vs %v", f, p.flipIndex[f], want)
		}
	}
}
