// Package profile implements the offline memory-templating phase of the
// attack: Rowhammer profiling of an attacker-owned buffer through the
// timing side channels, the probability analysis of finding suitable
// target pages (Eq. 1/2, Figures 9/10), and the placement planner that
// matches required weight-file bit flips to profiled flippy pages.
package profile

import "math"

// PageBits is the number of bits in a 4 KB page (the paper's S).
const PageBits = 4096 * 8

// ProbTargetPage computes Eq. 1: the probability of finding at least one
// page, among N profiled pages, containing vulnerable cells at k
// specified offsets flippable 0→1 and l offsets flippable 1→0, when a
// page has on average n01 cells flippable 0→1 and n10 flippable 1→0 out
// of S bits.
func ProbTargetPage(n01, n10 float64, k, l, s, n int) float64 {
	p := 1.0
	for i := 0; i < k; i++ {
		p *= (n01 - float64(i)) / float64(s-i)
	}
	for j := 0; j < l; j++ {
		p *= (n10 - float64(j)) / float64(s-k-j)
	}
	if p < 0 {
		p = 0
	}
	return 1 - math.Pow(1-p, float64(n))
}

// ProbTargetPageApprox computes Eq. 2: the simplified form using the
// combined per-page flip count nTotal = n01+n10 for kl = k+l required
// bit offsets.
func ProbTargetPageApprox(nTotal float64, kl, s, n int) float64 {
	p := 1.0
	for i := 0; i < kl; i++ {
		p *= (nTotal - float64(i)) / float64(s-i)
	}
	if p < 0 {
		p = 0
	}
	return 1 - math.Pow(1-p, float64(n))
}

// ProbSeries evaluates Eq. 2 over a range of page counts, producing one
// of the Figure 9/10 curves.
func ProbSeries(nTotal float64, kl, s int, pageCounts []int) []float64 {
	out := make([]float64, len(pageCounts))
	for i, n := range pageCounts {
		out[i] = ProbTargetPageApprox(nTotal, kl, s, n)
	}
	return out
}
