package profile

import (
	"reflect"
	"runtime"
	"testing"

	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
	"rowhammer/internal/tensor"
)

// profileOn runs ProfileBuffer on a fresh system whose module storage
// mode and worker count are chosen by the caller. Every run starts from
// identical state (hammering mutates memory).
func profileOn(t *testing.T, dense bool, workers, bufPages int, cfg Config) *Profile {
	t.Helper()
	prev := tensor.SetMaxWorkers(workers)
	defer tensor.SetMaxWorkers(prev)
	geom := dram.GeometryForSize(bufPages*memsys.PageSize+(8<<20), 16)
	var mod *dram.Module
	var err error
	if dense {
		mod, err = dram.NewDenseModule(geom, dram.PaperDDR3(), 42)
	} else {
		mod, err = dram.NewModule(geom, dram.PaperDDR3(), 42)
	}
	if err != nil {
		t.Fatal(err)
	}
	sys := memsys.NewSystem(mod)
	attacker := sys.NewProcess()
	base, err := attacker.Mmap(bufPages)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ProfileBuffer(sys, attacker, base, bufPages, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestProfileSparseDenseIdentity pins the tentpole contract at the
// engine level: profiling a sparse module — constant-page fills, scan
// skips, copy-on-hammer materialization — yields a profile
// byte-identical to the dense oracle's, at every worker count.
func TestProfileSparseDenseIdentity(t *testing.T) {
	prevProcs := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prevProcs)

	cases := []struct {
		name string
		cfg  Config
	}{
		{"doubleSided", Config{Sides: 2, Intensity: 1, MeasureSeed: 5, SkipSpoilerCheck: true}},
		{"nSided7", Config{Sides: 7, Intensity: 1, MeasureSeed: 5, SkipSpoilerCheck: true}},
	}
	const bufPages = 1024
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := profileOn(t, true, 1, bufPages, tc.cfg)
			if len(ref.Rows) == 0 || ref.TotalFlips() == 0 {
				t.Fatalf("dense reference profile is empty (%d rows, %d flips)", len(ref.Rows), ref.TotalFlips())
			}
			for _, w := range []int{1, 2, 4} {
				got := profileOn(t, false, w, bufPages, tc.cfg)
				if !reflect.DeepEqual(ref, got) {
					t.Fatalf("sparse profile at %d workers differs from dense reference (rows %d vs %d, flips %d vs %d)",
						w, len(got.Rows), len(ref.Rows), got.TotalFlips(), ref.TotalFlips())
				}
			}
		})
	}
}

// sweepSystems builds n independent module+attacker targets with
// distinct seeds, all freshly mapped.
func sweepSystems(t *testing.T, n, bufPages int) []SweepTarget {
	t.Helper()
	targets := make([]SweepTarget, n)
	for i := range targets {
		mod, err := dram.NewModuleForSize(bufPages*memsys.PageSize+(8<<20), dram.PaperDDR3(), int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		sys := memsys.NewSystem(mod)
		attacker := sys.NewProcess()
		base, err := attacker.Mmap(bufPages)
		if err != nil {
			t.Fatal(err)
		}
		targets[i] = SweepTarget{Sys: sys, Attacker: attacker, BufBase: base, BufPages: bufPages}
	}
	return targets
}

// TestProfileSweepDeterminism: the module-sharded sweep returns, at any
// worker count, exactly the profiles that sequential per-target
// ProfileBuffer calls produce, in canonical target order.
func TestProfileSweepDeterminism(t *testing.T) {
	prevProcs := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prevProcs)
	cfg := Config{Sides: 2, Intensity: 1, MeasureSeed: 9, SkipSpoilerCheck: true}
	const nTargets, bufPages = 3, 512

	// Sequential reference: one ProfileBuffer per fresh target.
	var ref []*Profile
	for _, tgt := range sweepSystems(t, nTargets, bufPages) {
		p, err := ProfileBuffer(tgt.Sys, tgt.Attacker, tgt.BufBase, tgt.BufPages, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref = append(ref, p)
	}
	if ref[0].TotalFlips() == 0 {
		t.Fatal("reference sweep found no flips; test is vacuous")
	}

	for _, w := range []int{1, 2, 4} {
		prev := tensor.SetMaxWorkers(w)
		got, err := ProfileSweep(sweepSystems(t, nTargets, bufPages), cfg)
		tensor.SetMaxWorkers(prev)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != nTargets {
			t.Fatalf("sweep returned %d profiles, want %d", len(got), nTargets)
		}
		for i := range got {
			if !reflect.DeepEqual(ref[i], got[i]) {
				t.Fatalf("sweep at %d workers: target %d differs from sequential reference", w, i)
			}
		}
	}
}

// TestProfileSweepSurfacesCanonicalError: a failing target reports its
// own index regardless of scheduling.
func TestProfileSweepSurfacesCanonicalError(t *testing.T) {
	targets := sweepSystems(t, 2, 512)
	targets[1].BufPages = 511 // odd page count → validation error
	_, err := ProfileSweep(targets, Config{Sides: 2, Intensity: 1, SkipSpoilerCheck: true})
	if err == nil {
		t.Fatal("sweep with an invalid target succeeded")
	}
	if want := "sweep target 1"; !containsStr(err.Error(), want) {
		t.Fatalf("error %q does not name the failing target (%q)", err, want)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
