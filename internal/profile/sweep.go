package profile

import (
	"fmt"

	"rowhammer/internal/memsys"
	"rowhammer/internal/tensor"
)

// SweepTarget names one attacker buffer to template: the system that
// owns the DRAM, the attacker process, and the buffer's base/length.
// Targets must not share mutable state — in practice each target is its
// own module (a multi-DIMM templating campaign), which is what makes
// the sweep embarrassingly parallel.
type SweepTarget struct {
	Sys      *memsys.System
	Attacker *memsys.Process
	BufBase  int
	BufPages int
}

// ProfileSweep templates every target, sharding the phase-colored
// engine one level up: targets fan out across the worker pool, and each
// target's own experiments fan out again through ProfileBuffer's
// phase-colored scheduling (tensor.ParallelChunks nests cooperatively,
// so the two levels share one pool instead of oversubscribing).
//
// Results are assembled in canonical target order and each per-target
// profile is worker-count-independent, so the sweep output is
// byte-identical at any worker count — the same determinism contract
// ProfileBuffer gives for a single buffer. The first error in canonical
// target order is returned, independent of scheduling.
func ProfileSweep(targets []SweepTarget, cfg Config) ([]*Profile, error) {
	profiles := make([]*Profile, len(targets))
	errs := make([]error, len(targets))
	workers := cfg.workerCount()
	if workers > len(targets) {
		workers = len(targets)
	}
	tensor.ParallelChunks(len(targets), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t := targets[i]
			profiles[i], errs[i] = ProfileBuffer(t.Sys, t.Attacker, t.BufBase, t.BufPages, cfg)
		}
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("profile: sweep target %d: %w", i, err)
		}
	}
	return profiles, nil
}
