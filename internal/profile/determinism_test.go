package profile

import (
	"reflect"
	"runtime"
	"testing"

	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
	"rowhammer/internal/tensor"
)

// profileAtWorkers runs ProfileBuffer on a fresh system (hammering
// mutates memory, so every run must start from identical state) with
// the worker cap set to n.
func profileAtWorkers(t *testing.T, workers, bufPages int, cfg Config) *Profile {
	t.Helper()
	prev := tensor.SetMaxWorkers(workers)
	defer tensor.SetMaxWorkers(prev)
	mod, err := dram.NewModuleForSize(bufPages*memsys.PageSize+(8<<20), dram.PaperDDR3(), 42)
	if err != nil {
		t.Fatal(err)
	}
	sys := memsys.NewSystem(mod)
	attacker := sys.NewProcess()
	base, err := attacker.Mmap(bufPages)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ProfileBuffer(sys, attacker, base, bufPages, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestProfileBufferWorkerDeterminism is the engine's core contract:
// the profile — row order, aggressor addresses, every flip in every
// template — is byte-for-byte identical at 1, 2 and 4 workers. Raising
// GOMAXPROCS makes the multi-worker runs genuinely concurrent even on
// a single-CPU machine (MaxWorkers clamps to GOMAXPROCS).
func TestProfileBufferWorkerDeterminism(t *testing.T) {
	prevProcs := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prevProcs)

	cases := []struct {
		name string
		cfg  Config
	}{
		{"doubleSided", Config{Sides: 2, Intensity: 1, MeasureSeed: 5, SkipSpoilerCheck: true}},
		{"nSided7", Config{Sides: 7, Intensity: 1, MeasureSeed: 5, SkipSpoilerCheck: true}},
	}
	const bufPages = 2048
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := profileAtWorkers(t, 1, bufPages, tc.cfg)
			if len(ref.Rows) == 0 || ref.TotalFlips() == 0 {
				t.Fatalf("reference profile is empty (%d rows, %d flips)", len(ref.Rows), ref.TotalFlips())
			}
			for _, w := range []int{2, 4} {
				got := profileAtWorkers(t, w, bufPages, tc.cfg)
				if !reflect.DeepEqual(ref, got) {
					t.Fatalf("profile at %d workers differs from 1-worker reference (rows %d vs %d, flips %d vs %d)",
						w, len(got.Rows), len(ref.Rows), got.TotalFlips(), ref.TotalFlips())
				}
			}
		})
	}
}
