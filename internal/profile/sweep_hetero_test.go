package profile

import (
	"reflect"
	"runtime"
	"testing"

	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
	"rowhammer/internal/tensor"
)

// heteroTargets builds a sweep over deliberately mismatched hardware:
// DDR3 and DDR4 devices, different module capacities, and different
// buffer sizes per target — the multi-SKU fleet shape. The 7-sided
// config is the paper's DDR4 online convention and still flips DDR3
// cells, so every target stays non-vacuous under one shared Config.
func heteroTargets(t *testing.T) []SweepTarget {
	t.Helper()
	specs := []struct {
		dev      dram.DeviceProfile
		sizeMB   int
		bufPages int
	}{
		{dram.PaperDDR3(), 16, 512},
		{dram.PaperDDR4(), 24, 768},
		{dram.PaperDDR3(), 8, 1024},
	}
	targets := make([]SweepTarget, len(specs))
	for i, s := range specs {
		mod, err := dram.NewModuleForSize(s.sizeMB<<20, s.dev, int64(200+i))
		if err != nil {
			t.Fatal(err)
		}
		sys := memsys.NewSystem(mod)
		attacker := sys.NewProcess()
		base, err := attacker.Mmap(s.bufPages)
		if err != nil {
			t.Fatal(err)
		}
		targets[i] = SweepTarget{Sys: sys, Attacker: attacker, BufBase: base, BufPages: s.bufPages}
	}
	return targets
}

// TestProfileSweepHeterogeneousGeometries: a sweep mixing DDR3 and DDR4
// modules of different capacities and buffer sizes returns, at any
// worker count, exactly the per-target profiles sequential ProfileBuffer
// calls produce, in canonical target order.
func TestProfileSweepHeterogeneousGeometries(t *testing.T) {
	prevProcs := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prevProcs)
	cfg := Config{Sides: 7, Intensity: 1, MeasureSeed: 5, SkipSpoilerCheck: true}

	var ref []*Profile
	for _, tgt := range heteroTargets(t) {
		p, err := ProfileBuffer(tgt.Sys, tgt.Attacker, tgt.BufBase, tgt.BufPages, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref = append(ref, p)
	}
	for i, p := range ref {
		if p.TotalFlips() == 0 {
			t.Fatalf("reference target %d found no flips; test is vacuous", i)
		}
	}
	// The geometries must actually differ or the test degenerates into
	// the homogeneous sweep already covered elsewhere.
	if g01, g02 := ref[0].BufPages == ref[1].BufPages, ref[0].BufPages == ref[2].BufPages; g01 || g02 {
		t.Fatal("targets share buffer geometry; heterogeneity lost")
	}

	for _, w := range []int{1, 2, 4} {
		prev := tensor.SetMaxWorkers(w)
		got, err := ProfileSweep(heteroTargets(t), cfg)
		tensor.SetMaxWorkers(prev)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("sweep returned %d profiles, want %d", len(got), len(ref))
		}
		for i := range got {
			if !reflect.DeepEqual(ref[i], got[i]) {
				t.Fatalf("sweep at %d workers: heterogeneous target %d differs from sequential reference", w, i)
			}
		}
	}
}

// TestProfileSweepHeterogeneousErrorAttribution: when one target of a
// mixed-geometry sweep is invalid, the error names that target's
// canonical index and the healthy targets do not mask it, at any worker
// count.
func TestProfileSweepHeterogeneousErrorAttribution(t *testing.T) {
	cfg := Config{Sides: 7, Intensity: 1, MeasureSeed: 5, SkipSpoilerCheck: true}
	for _, w := range []int{1, 4} {
		targets := heteroTargets(t)
		targets[1].BufPages = 767 // odd page count → validation error
		prev := tensor.SetMaxWorkers(w)
		_, err := ProfileSweep(targets, cfg)
		tensor.SetMaxWorkers(prev)
		if err == nil {
			t.Fatalf("sweep with an invalid DDR4 target succeeded at %d workers", w)
		}
		if want := "sweep target 1"; !containsStr(err.Error(), want) {
			t.Fatalf("error %q does not name the failing target (%q)", err, want)
		}
	}
}
