package profile

import (
	"math"
	"testing"

	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
)

// TestEq2MatchesPaperNumbers reproduces the §IV-A2 worked example:
// n01+n10 = 34, S = 32768 bits, N = 32768 pages.
func TestEq2MatchesPaperNumbers(t *testing.T) {
	const (
		n = 34.0
		s = PageBits
		N = 32768
	)
	p1 := ProbTargetPageApprox(n, 1, s, N)
	if p1 < 0.999 {
		t.Fatalf("k=1: p = %v, want ≈1", p1)
	}
	p2 := ProbTargetPageApprox(n, 2, s, N)
	if math.Abs(p2-0.03)/0.03 > 0.2 {
		t.Fatalf("k+l=2: p = %v, want ≈0.03", p2)
	}
	p3 := ProbTargetPageApprox(n, 3, s, N)
	if math.Abs(p3-3e-5)/3e-5 > 0.25 {
		t.Fatalf("k+l=3: p = %v, want ≈3e-5", p3)
	}
}

func TestEq1VersusEq2(t *testing.T) {
	// Eq. 2 merges the two direction pools, so it upper-bounds the
	// direction-aware Eq. 1; both must stay in the same order of
	// magnitude for the paper's balanced case n01 = n10.
	exact := ProbTargetPage(17, 17, 1, 1, PageBits, 32768)
	approx := ProbTargetPageApprox(34, 2, PageBits, 32768)
	if exact > approx {
		t.Fatalf("Eq1 %v must not exceed Eq2 %v", exact, approx)
	}
	if approx/exact > 10 {
		t.Fatalf("Eq1 %v and Eq2 %v diverge beyond an order of magnitude", exact, approx)
	}
}

func TestProbMonotoneInPagesAndFlips(t *testing.T) {
	if !(ProbTargetPageApprox(34, 2, PageBits, 1000) < ProbTargetPageApprox(34, 2, PageBits, 100000)) {
		t.Fatal("probability must grow with page count")
	}
	if !(ProbTargetPageApprox(2, 1, PageBits, 4096) < ProbTargetPageApprox(100, 1, PageBits, 4096)) {
		t.Fatal("probability must grow with flips per page")
	}
	if !(ProbTargetPageApprox(34, 3, PageBits, 4096) < ProbTargetPageApprox(34, 1, PageBits, 4096)) {
		t.Fatal("probability must shrink with required offsets")
	}
}

func TestProbNegativeProductClamped(t *testing.T) {
	// More required offsets than available flips → probability 0.
	if got := ProbTargetPageApprox(2, 5, PageBits, 100000); got != 0 {
		t.Fatalf("p = %v, want 0", got)
	}
}

func TestProbSeries(t *testing.T) {
	series := ProbSeries(34, 1, PageBits, []int{1, 10, 100})
	if len(series) != 3 || !(series[0] < series[1] && series[1] < series[2]) {
		t.Fatalf("series = %v", series)
	}
}

func setupProfiled(t *testing.T, prof dram.DeviceProfile, bufPages, sides int) (*memsys.System, *memsys.Process, *Profile) {
	t.Helper()
	mod, err := dram.NewModuleForSize(bufPages*memsys.PageSize*2+(8<<20), prof, 11)
	if err != nil {
		t.Fatal(err)
	}
	sys := memsys.NewSystem(mod)
	attacker := sys.NewProcess()
	base, err := attacker.Mmap(bufPages)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ProfileBuffer(sys, attacker, base, bufPages, Config{
		Sides: sides, Intensity: 1, MeasureSeed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, attacker, p
}

func TestProfileBufferDDR3FindsFlips(t *testing.T) {
	_, _, p := setupProfiled(t, dram.PaperDDR3(), 1024, 2)
	if p.TotalFlips() == 0 {
		t.Fatal("no flips found on the paper's DDR3 profile")
	}
	avg := p.AvgFlipsPerPage()
	// Double-sided at full intensity finds all weak cells: the average
	// should be near the device's 11.66 flips/page.
	if math.Abs(avg-11.66)/11.66 > 0.35 {
		t.Fatalf("avg flips/page = %v, want ≈11.66", avg)
	}
	if p.FlippyPageCount() == 0 || p.VictimPageCount() == 0 {
		t.Fatal("no pages profiled")
	}
}

func TestProfileFlipsAreReproducible(t *testing.T) {
	sys, attacker, p := setupProfiled(t, dram.PaperDDR3(), 512, 2)
	// Pick a flippy row, reset its content, re-hammer with the recorded
	// aggressors, and verify every recorded flip fires again.
	for ri := range p.Rows {
		row := &p.Rows[ri]
		if row.FlipCount() == 0 {
			continue
		}
		for half := 0; half < 2; half++ {
			pg := row.Pages[half]
			vaddr := p.BufBase + pg.BufferPage*memsys.PageSize
			content := make([]byte, memsys.PageSize)
			for _, f := range pg.Flips {
				if f.Dir == dram.OneToZero {
					content[f.Offset] |= 1 << f.Bit
				}
			}
			if err := attacker.Write(vaddr, content); err != nil {
				t.Fatal(err)
			}
		}
		if err := HammerRows(sys, attacker, row.AggressorVaddrs, row.Intensity); err != nil {
			t.Fatal(err)
		}
		for half := 0; half < 2; half++ {
			pg := row.Pages[half]
			vaddr := p.BufBase + pg.BufferPage*memsys.PageSize
			buf, _ := attacker.Read(vaddr, memsys.PageSize)
			for _, f := range pg.Flips {
				bit := buf[f.Offset] & (1 << f.Bit)
				if f.Dir == dram.ZeroToOne && bit == 0 {
					t.Fatalf("row %d: 0→1 flip at %d.%d did not reproduce", ri, f.Offset, f.Bit)
				}
				if f.Dir == dram.OneToZero && bit != 0 {
					t.Fatalf("row %d: 1→0 flip at %d.%d did not reproduce", ri, f.Offset, f.Bit)
				}
			}
		}
		return // one row suffices
	}
	t.Fatal("no flippy row found")
}

func TestProfileDDR4NSided(t *testing.T) {
	_, _, p := setupProfiled(t, dram.PaperDDR4(), 1024, 7)
	if p.TotalFlips() == 0 {
		t.Fatal("7-sided profiling on DDR4 must find flips")
	}
	for ri := range p.Rows {
		if p.Rows[ri].Sides != 7 {
			t.Fatal("row profiled with wrong pattern")
		}
	}
}

func TestProfileValidation(t *testing.T) {
	mod, _ := dram.NewModuleForSize(4<<20, dram.PaperDDR3(), 1)
	sys := memsys.NewSystem(mod)
	p := sys.NewProcess()
	base, _ := p.Mmap(64)
	if _, err := ProfileBuffer(sys, p, base, 64, Config{Sides: 1, Intensity: 1}); err == nil {
		t.Fatal("sides=1 must fail")
	}
	if _, err := ProfileBuffer(sys, p, base, 64, Config{Sides: 2, Intensity: 0}); err == nil {
		t.Fatal("zero intensity must fail")
	}
	if _, err := ProfileBuffer(sys, p, base, 63, Config{Sides: 2, Intensity: 1}); err == nil {
		t.Fatal("odd page count must fail")
	}
}

func TestPlanPlacementSingleFlipsMatch(t *testing.T) {
	_, _, p := setupProfiled(t, dram.PaperDDR3(), 1024, 2)
	// Take three real profiled flips as requirements on distinct pages,
	// from rows spaced well apart (adjacent rows cannot both be targets
	// because each is the other's aggressor).
	var reqs []PageRequirement
	filePage := 0
	lastRow := -10
	for ri := range p.Rows {
		if ri-lastRow < 8 {
			continue
		}
		fl := p.Rows[ri].Pages[0].Flips
		if len(fl) == 0 {
			continue
		}
		reqs = append(reqs, PageRequirement{FilePage: filePage, Flips: []CellFlip{fl[0]}})
		filePage += 7
		lastRow = ri
		if len(reqs) == 3 {
			break
		}
	}
	if len(reqs) != 3 {
		t.Fatalf("found only %d well-spaced flippy rows", len(reqs))
	}
	plan, err := PlanPlacement(p, reqs, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Matched) != 3 || len(plan.Unmatched) != 0 {
		t.Fatalf("matched %d / unmatched %d, want 3/0", len(plan.Matched), len(plan.Unmatched))
	}
	if len(plan.Assignment) != 40 {
		t.Fatalf("assignment covers %d pages", len(plan.Assignment))
	}
	// No buffer page may be assigned twice.
	seen := make(map[int]bool)
	for _, bp := range plan.Assignment {
		if seen[bp] {
			t.Fatal("buffer page assigned twice")
		}
		seen[bp] = true
	}
}

func TestPlanPlacementImpossibleRequirement(t *testing.T) {
	_, _, p := setupProfiled(t, dram.PaperDDR3(), 256, 2)
	// Requiring 5 specific flips in one page is astronomically unlikely
	// (Eq. 2) — the planner must report it unmatched.
	req := PageRequirement{FilePage: 0, Flips: []CellFlip{
		{Offset: 1, Bit: 0, Dir: dram.ZeroToOne},
		{Offset: 2, Bit: 1, Dir: dram.OneToZero},
		{Offset: 3, Bit: 2, Dir: dram.ZeroToOne},
		{Offset: 4, Bit: 3, Dir: dram.OneToZero},
		{Offset: 5, Bit: 4, Dir: dram.ZeroToOne},
	}}
	plan, err := PlanPlacement(p, []PageRequirement{req}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Unmatched) != 1 || len(plan.Matched) != 0 {
		t.Fatal("impossible requirement should be unmatched")
	}
}

func TestPlanPlacementBufferTooSmall(t *testing.T) {
	_, _, p := setupProfiled(t, dram.PaperDDR3(), 64, 2)
	if _, err := PlanPlacement(p, nil, 10_000); err == nil {
		t.Fatal("oversized file must fail")
	}
	if _, err := PlanPlacement(p, nil, 0); err == nil {
		t.Fatal("empty file must fail")
	}
}

func TestBaitPagesExcludeAggressorsAndUsedRows(t *testing.T) {
	_, _, p := setupProfiled(t, dram.PaperDDR3(), 256, 2)
	used := map[int]bool{0: true}
	bait := p.BaitPages(used)
	for _, page := range bait {
		for half := 0; half < 2; half++ {
			if p.Rows[0].Pages[half].BufferPage == page {
				t.Fatal("bait includes a used victim row page")
			}
		}
	}
}

func TestFlipsPerPageHistogram(t *testing.T) {
	_, _, p := setupProfiled(t, dram.PaperDDR3(), 256, 2)
	h := p.FlipsPerPageHistogram()
	total := 0
	for _, c := range h {
		total += c
	}
	if total != p.VictimPageCount() {
		t.Fatalf("histogram covers %d pages, want %d", total, p.VictimPageCount())
	}
}
