package profile

import (
	"fmt"
	"testing"

	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
	"rowhammer/internal/tensor"
)

func benchSetup(b *testing.B, bufPages int) (*memsys.System, *memsys.Process, int) {
	b.Helper()
	mod, err := dram.NewModuleForSize(
		bufPages*memsys.PageSize+(16<<20), dram.PaperDDR3(), 11)
	if err != nil {
		b.Fatal(err)
	}
	sys := memsys.NewSystem(mod)
	attacker := sys.NewProcess()
	base, err := attacker.Mmap(bufPages)
	if err != nil {
		b.Fatal(err)
	}
	return sys, attacker, base
}

// BenchmarkProfileBuffer measures the hammer-templating loop alone (the
// SPOILER check is skipped so the number isolates clustering + hammering
// + readback) at 1/2/4 workers.
func BenchmarkProfileBuffer(b *testing.B) {
	const bufPages = 8192
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("pages%d/workers%d", bufPages, workers), func(b *testing.B) {
			prev := tensor.SetMaxWorkers(workers)
			defer tensor.SetMaxWorkers(prev)
			sys, attacker, base := benchSetup(b, bufPages)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := ProfileBuffer(sys, attacker, base, bufPages, Config{
					Sides: 2, Intensity: 1, MeasureSeed: 5, SkipSpoilerCheck: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if p.TotalFlips() == 0 {
					b.Fatal("no flips templated")
				}
			}
		})
	}
}

// BenchmarkPlanPlacement measures requirement matching against a fixed
// profile: the needle-in-haystack search Eq. 2 sizes, over a synthetic
// requirement set of one flip on every eighth file page.
func BenchmarkPlanPlacement(b *testing.B) {
	const bufPages = 8192
	sys, attacker, base := benchSetup(b, bufPages)
	_ = sys
	prof, err := ProfileBuffer(sys, attacker, base, bufPages, Config{
		Sides: 2, Intensity: 1, MeasureSeed: 5, SkipSpoilerCheck: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	const filePages = 256
	rng := tensor.NewRNG(9)
	var reqs []PageRequirement
	for fp := 0; fp < filePages; fp += 8 {
		dir := dram.ZeroToOne
		if rng.Float64() < 0.5 {
			dir = dram.OneToZero
		}
		reqs = append(reqs, PageRequirement{
			FilePage: fp,
			Flips: []CellFlip{{
				Offset: rng.Intn(memsys.PageSize), Bit: rng.Intn(8), Dir: dir,
			}},
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanPlacement(prof, reqs, filePages); err != nil {
			b.Fatal(err)
		}
	}
}
