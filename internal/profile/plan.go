package profile

import (
	"fmt"

	"rowhammer/internal/memsys"
	"sort"
)

// PageRequirement lists the bit flips a single weight-file page needs.
// A match requires one profiled page containing every listed flip at
// the exact offset, bit and direction — the constraint that collapses
// the baselines' match rates (Eq. 2).
type PageRequirement struct {
	// FilePage is the page index within the weight file.
	FilePage int
	// Flips are the required cell flips within that page.
	Flips []CellFlip
}

// Placement is the online-phase plan: where each file page goes and
// which rows get hammered.
type Placement struct {
	// Assignment maps file page index → attacker buffer page index.
	// Length equals the file's page count.
	Assignment []int
	// HammerRows indexes into Profile.Rows: the victim rows the online
	// phase hammers.
	HammerRows []int
	// Matched lists the requirements that found a flippy page.
	Matched []PageRequirement
	// MatchedRows holds, parallel to Matched, the Profile.Rows index
	// whose page hosts each matched requirement — the row the robust
	// online engine re-hammers when that requirement's flips fail to
	// fire.
	MatchedRows []int
	// Unmatched lists requirements with no suitable page in the
	// profile; their file pages are placed on bait and their flips
	// never happen.
	Unmatched []PageRequirement
	// ExpectedAccidental is the number of profiled flips that will fire
	// in hammered rows beyond the required ones (the δ of the r_match
	// metric, before filtering by stored-bit direction).
	ExpectedAccidental int
}

// rowBufferPages returns the two buffer pages of a victim row.
func rowBufferPages(p *Profile, ri int) [2]int {
	return [2]int{p.Rows[ri].Pages[0].BufferPage, p.Rows[ri].Pages[1].BufferPage}
}

// aggressorBufferPages lists the buffer pages of a victim row's
// aggressor rows (two pages per 8 KB aggressor chunk). Those pages must
// stay mapped in the attacker so the online phase can hammer. Aggressor
// vaddrs outside [BufBase, BufBase+BufPages) — legal in hand-built or
// externally merged profiles — own no buffer page and are skipped
// rather than producing an out-of-range index.
func aggressorBufferPages(p *Profile, ri int) []int {
	var out []int
	for _, va := range p.Rows[ri].AggressorVaddrs {
		base := (va - p.BufBase) / memsys.PageSize
		for _, pg := range [2]int{base, base + 1} {
			if va >= p.BufBase && pg >= 0 && pg < p.BufPages {
				out = append(out, pg)
			}
		}
	}
	return out
}

// PlanPlacement matches each page requirement against the profile and
// builds the full file→buffer assignment. filePages is the weight
// file's page count.
//
// Constraints honored:
//   - a buffer page can host at most one file page;
//   - the aggressor pages of every hammered row stay attacker-mapped
//     (they are excluded from the assignment);
//   - the sibling half of a hammered row is disturbed collaterally, so
//     it is assigned a file page explicitly and its profiled flips are
//     counted as expected accidental corruption;
//   - all remaining file pages land on bait pages that the planned
//     hammering never disturbs.
func PlanPlacement(p *Profile, reqs []PageRequirement, filePages int) (*Placement, error) {
	if filePages <= 0 {
		return nil, fmt.Errorf("profile: file has no pages")
	}
	// Sort requirements by descending flip count so the hardest match
	// first (they have the fewest candidate pages).
	sorted := append([]PageRequirement(nil), reqs...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return len(sorted[i].Flips) > len(sorted[j].Flips)
	})

	p.buildFlipIndex()
	usedPages := make([]bool, p.BufPages)     // assigned (or to be assigned) to file pages
	reservedPages := make([]bool, p.BufPages) // must stay attacker-mapped (aggressors)
	usedRows := make(map[int]bool)
	fileToBuffer := make(map[int]int, filePages)
	var plan Placement

	for _, req := range sorted {
		if len(req.Flips) == 0 {
			continue
		}
		row, half, ok := findMatch(p, req, usedPages, reservedPages)
		if !ok {
			plan.Unmatched = append(plan.Unmatched, req)
			continue
		}
		page := p.Rows[row].Pages[half].BufferPage
		usedPages[page] = true
		usedRows[row] = true
		fileToBuffer[req.FilePage] = page
		plan.Matched = append(plan.Matched, req)
		plan.MatchedRows = append(plan.MatchedRows, row)
		plan.HammerRows = append(plan.HammerRows, row)
		plan.ExpectedAccidental += len(p.Rows[row].Pages[half].Flips) - len(req.Flips)
		for _, ap := range aggressorBufferPages(p, row) {
			reservedPages[ap] = true
		}
	}
	plan.HammerRows = dedupInts(plan.HammerRows)

	// Sibling halves of hammered rows are disturbed too; they must host
	// file pages (the attacker releases them) and their flips count as
	// accidental corruption.
	var collateral []int
	for _, row := range plan.HammerRows {
		for half := 0; half < 2; half++ {
			page := p.Rows[row].Pages[half].BufferPage
			if usedPages[page] {
				continue
			}
			usedPages[page] = true
			collateral = append(collateral, page)
			plan.ExpectedAccidental += len(p.Rows[row].Pages[half].Flips)
		}
	}

	// Bait pool: every buffer page that is neither hosting a target,
	// nor reserved for hammering, nor inside a hammered row.
	bi := 0
	nextBait := func() (int, error) {
		for bi < p.BufPages {
			page := bi
			bi++
			if usedPages[page] || reservedPages[page] {
				continue
			}
			usedPages[page] = true
			return page, nil
		}
		return 0, fmt.Errorf("profile: buffer too small for %d file pages", filePages)
	}

	plan.Assignment = make([]int, filePages)
	ci := 0
	for fp := 0; fp < filePages; fp++ {
		if page, ok := fileToBuffer[fp]; ok {
			plan.Assignment[fp] = page
			continue
		}
		// Collateral pages are inside hammered rows and must be
		// released; hand them the earliest non-target file pages.
		if ci < len(collateral) {
			plan.Assignment[fp] = collateral[ci]
			ci++
			continue
		}
		page, err := nextBait()
		if err != nil {
			return nil, err
		}
		plan.Assignment[fp] = page
	}
	return &plan, nil
}

// buildFlipIndex builds (incrementally, memoized per profile) the
// inverted flip inventory: every (offset, bit, dir) cell maps to the
// packed (row, half) candidates — rows ascending, halves ascending —
// whose template contains it. Matching a requirement then walks only
// the candidate list of its rarest needle instead of scanning every
// profiled row. Rows appended after a previous build (adaptive
// re-templating) are indexed on the next call; appending preserves the
// ascending candidate order because new rows always take higher
// indices. Flips unioned into already-indexed rows go through
// indexInsertFlip instead.
func (p *Profile) buildFlipIndex() {
	// Fully-indexed profiles return before touching any field, so a
	// primed profile (see PrimeIndex) can serve concurrent PlanPlacement
	// calls: even a same-value write to indexedRows would be a data race.
	if p.flipIndex != nil && p.indexedRows == len(p.Rows) {
		return
	}
	if p.flipIndex == nil {
		p.flipIndex = make(map[CellFlip][]int32)
	}
	for ri := p.indexedRows; ri < len(p.Rows); ri++ {
		for h := 0; h < 2; h++ {
			for _, f := range p.Rows[ri].Pages[h].Flips {
				p.flipIndex[f] = append(p.flipIndex[f], int32(ri*2+h))
			}
		}
	}
	p.indexedRows = len(p.Rows)
}

// indexInsertFlip inserts one candidate into the memoized inventory at
// its sorted position, keeping the ascending (row, half) order the
// tie-break of findMatch depends on. No-op while the index has not been
// built yet (the next buildFlipIndex will pick the flip up from the row
// itself).
func (p *Profile) indexInsertFlip(f CellFlip, row, half int) {
	if p.flipIndex == nil || row >= p.indexedRows {
		return
	}
	packed := int32(row*2 + half)
	l := p.flipIndex[f]
	at := sort.Search(len(l), func(i int) bool { return l[i] >= packed })
	if at < len(l) && l[at] == packed {
		return
	}
	l = append(l, 0)
	copy(l[at+1:], l[at:])
	l[at] = packed
	p.flipIndex[f] = l
}

// rowAggConflict reports whether any aggressor page of row ri was
// already promised to a file page (allocation-free twin of scanning
// aggressorBufferPages). Aggressor vaddrs outside the buffer own no
// buffer page and can never conflict; indexing them unguarded would
// panic on profiles whose aggressors sit below BufBase.
func rowAggConflict(p *Profile, ri int, usedPages []bool) bool {
	for _, va := range p.Rows[ri].AggressorVaddrs {
		base := (va - p.BufBase) / memsys.PageSize
		if va < p.BufBase {
			continue
		}
		if base < len(usedPages) && usedPages[base] {
			return true
		}
		if base+1 < len(usedPages) && usedPages[base+1] {
			return true
		}
	}
	return false
}

// findMatch locates an unused (row, half) whose profiled flips are a
// superset of the requirement, skipping rows that would conflict with
// pages already promised elsewhere. Among candidates it prefers the one
// with the fewest extra flips in the row; ties keep the lowest
// (row, half), exactly as the exhaustive row scan did — the candidate
// list is ordered by construction, so iterating it with a strict
// improvement test preserves that selection.
func findMatch(p *Profile, req PageRequirement, usedPages, reservedPages []bool) (row, half int, ok bool) {
	// Every candidate page must contain all needles, so walking the
	// rarest needle's list covers every possible match.
	var cands []int32
	for i, f := range req.Flips {
		l, present := p.flipIndex[f]
		if !present {
			return 0, 0, false
		}
		if i == 0 || len(l) < len(cands) {
			cands = l
		}
	}
	bestRow, bestHalf, bestExtra := -1, -1, 1<<30
	for _, c := range cands {
		ri, h := int(c)/2, int(c)%2
		pages := rowBufferPages(p, ri)
		if reservedPages[pages[0]] || reservedPages[pages[1]] {
			continue // this row is an aggressor for an earlier target
		}
		if rowAggConflict(p, ri, usedPages) {
			continue // its aggressors were already given away
		}
		pg := &p.Rows[ri].Pages[h]
		if usedPages[pg.BufferPage] {
			continue
		}
		if !containsAll(pg.Flips, req.Flips) {
			continue
		}
		extra := p.Rows[ri].FlipCount() - len(req.Flips)
		if extra < bestExtra {
			bestRow, bestHalf, bestExtra = ri, h, extra
		}
	}
	if bestRow < 0 {
		return 0, 0, false
	}
	return bestRow, bestHalf, true
}

// containsAll reports whether haystack includes every needle exactly
// (offset, bit and direction).
func containsAll(haystack, needles []CellFlip) bool {
	for _, n := range needles {
		found := false
		for _, h := range haystack {
			if h == n {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func dedupInts(in []int) []int {
	seen := make(map[int]bool, len(in))
	out := in[:0]
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
