package profile

import (
	"fmt"

	"rowhammer/internal/memsys"
)

// ExtendProfile grows an existing profile by templating a freshly
// mapped extension region that must sit virtually flush against the end
// of the current buffer (a second Mmap on the same process lands there
// by construction). The extension is profiled with the same
// configuration and its rows are appended to p with their page indices
// rebased onto p.BufBase, so the memoized flip inventory only needs the
// incremental index pass — candidate order stays ascending because
// appended rows take higher indices.
func ExtendProfile(sys *memsys.System, attacker *memsys.Process, p *Profile, extBase, extPages int, cfg Config) error {
	want := p.BufBase + p.BufPages*memsys.PageSize
	if extBase != want {
		return fmt.Errorf("profile: extension at %#x not contiguous with buffer end %#x", extBase, want)
	}
	if extPages%2 != 0 {
		return fmt.Errorf("profile: extension must be a whole number of 8KB rows")
	}
	ext, err := ProfileBuffer(sys, attacker, extBase, extPages, cfg)
	if err != nil {
		return fmt.Errorf("profile: extension templating: %w", err)
	}
	off := p.BufPages
	p.ensurePages(p.BufPages + extPages)
	for _, r := range ext.Rows {
		idx := len(p.Rows)
		for half := 0; half < 2; half++ {
			r.Pages[half].BufferPage += off
			p.setVictimPage(r.Pages[half].BufferPage, idx, half)
		}
		p.Rows = append(p.Rows, r)
	}
	for pg := 0; pg < ext.BufPages; pg++ {
		if ext.aggressorBits[pg>>6]&(1<<(uint(pg)&63)) != 0 {
			p.setAggressorPage(pg + off)
		}
	}
	p.BufPages += extPages
	return nil
}

// ReprofileUnion re-runs the templating sweep over the profile's entire
// buffer and unions any newly observed flips into the existing rows.
// Under deterministic hammering this is a no-op (the sweep reproduces
// the recorded templates exactly); with a fault model injected
// (dram.FaultModel) each pass flips a fresh per-pass coin per weak
// cell, so repeated passes asymptotically recover the cells earlier
// passes missed — the "additional profiling passes" arm of adaptive
// re-templating. Newly found flips are appended to their page's list in
// sweep order and inserted into the memoized flip inventory at their
// sorted position, keeping planning deterministic. Rows whose victim
// pages were not seen before (possible when a grown buffer's re-sweep
// clusters across the old region boundary) are appended as new rows.
// Returns the number of newly discovered flips.
func ReprofileUnion(sys *memsys.System, attacker *memsys.Process, p *Profile, cfg Config) (int, error) {
	fresh, err := ProfileBuffer(sys, attacker, p.BufBase, p.BufPages, cfg)
	if err != nil {
		return 0, fmt.Errorf("profile: re-templating sweep: %w", err)
	}
	added := 0
	for _, r := range fresh.Rows {
		row0, half0, known := p.victimPageAt(r.Pages[0].BufferPage)
		row1, half1, known1 := p.victimPageAt(r.Pages[1].BufferPage)
		if known && known1 && row0 == row1 && half0 == 0 && half1 == 1 {
			// Same victim row as an existing one: union the templates,
			// keep the recorded aggressors (any cell that fires under the
			// re-sweep's aggressors fires under the recorded sandwich too —
			// both deliver the same full-intensity disturbance).
			ri := row0
			for half := 0; half < 2; half++ {
				have := &p.Rows[ri].Pages[half]
				for _, f := range r.Pages[half].Flips {
					if !containsFlip(have.Flips, f) {
						have.Flips = append(have.Flips, f)
						p.indexInsertFlip(f, ri, half)
						added++
					}
				}
			}
			continue
		}
		// A victim row the original sweeps never covered: append it.
		idx := len(p.Rows)
		for half := 0; half < 2; half++ {
			p.setVictimPage(r.Pages[half].BufferPage, idx, half)
			added += len(r.Pages[half].Flips)
		}
		p.Rows = append(p.Rows, r)
	}
	for pg := 0; pg < fresh.BufPages; pg++ {
		if fresh.aggressorBits[pg>>6]&(1<<(uint(pg)&63)) != 0 {
			p.setAggressorPage(pg)
		}
	}
	return added, nil
}

// containsFlip reports whether list already records f.
func containsFlip(list []CellFlip, f CellFlip) bool {
	for _, x := range list {
		if x == f {
			return true
		}
	}
	return false
}
