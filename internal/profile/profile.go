package profile

import (
	"fmt"
	"sort"
	"sync"

	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
	"rowhammer/internal/sidechan"
	"rowhammer/internal/tensor"
)

// CellFlip is one reproducible bit flip within a 4 KB page.
type CellFlip struct {
	// Offset is the byte offset within the page.
	Offset int
	// Bit is the bit index within that byte (0 = LSB).
	Bit int
	// Dir is the flip direction.
	Dir dram.FlipDirection
}

// PageFlips is the flip template of one buffer page.
type PageFlips struct {
	// BufferPage is the page index within the attacker buffer.
	BufferPage int
	// Flips lists the reproducible flips found by profiling.
	Flips []CellFlip
}

// VictimRow is one profiled DRAM row: its two OS pages and the
// aggressor rows that disturb it.
type VictimRow struct {
	// Pages are the two page halves of the 8 KB row.
	Pages [2]PageFlips
	// AggressorVaddrs are page-aligned virtual addresses, one per
	// aggressor row, that the online phase hammers. They must stay
	// mapped in the attacker's address space.
	AggressorVaddrs []int
	// Sides is the hammer pattern width used to profile this row.
	Sides int
	// Intensity is the normalized hammer intensity used.
	Intensity float64
}

// FlipCount returns the total flips across both halves.
func (v *VictimRow) FlipCount() int {
	return len(v.Pages[0].Flips) + len(v.Pages[1].Flips)
}

// Profile is the result of templating an attacker buffer.
type Profile struct {
	// BufBase is the buffer's base virtual address.
	BufBase int
	// BufPages is the buffer length in pages.
	BufPages int
	// Rows lists every profiled victim row (flippy or not).
	Rows []VictimRow
	// aggressorBits marks buffer pages that belong to aggressor rows,
	// one bit per buffer page.
	aggressorBits []uint64
	// victimIdx maps buffer page → packed row*2+half, −1 when the page
	// is not a profiled victim half. Flat slices instead of maps: a
	// multi-GB buffer has millions of victim pages and the per-entry map
	// overhead dominated profile assembly.
	victimIdx []int32
	// flipIndex is the inverted flip inventory built lazily by
	// PlanPlacement: cell flip → packed (row*2+half) candidates in
	// ascending order.
	flipIndex map[CellFlip][]int32
	// indexedRows counts how many Rows the memoized flipIndex covers;
	// rows appended by adaptive re-templating are indexed incrementally
	// on the next buildFlipIndex call.
	indexedRows int
}

// PrimeIndex builds the inverted flip inventory eagerly. A profile
// published to a cross-campaign cache must be primed first: after
// priming, PlanPlacement is a pure read of the profile and any number
// of campaigns can plan against the shared copy concurrently.
func (p *Profile) PrimeIndex() { p.buildFlipIndex() }

// Clone returns a deep copy that shares no mutable state with the
// receiver. Campaigns that may re-template (ExtendProfile or
// ReprofileUnion append rows and union flips in place) must clone a
// cached profile before mutating it, or they would corrupt every other
// campaign holding the shared copy. The flip index is not copied; the
// clone rebuilds it lazily on first plan.
func (p *Profile) Clone() *Profile {
	c := &Profile{
		BufBase:       p.BufBase,
		BufPages:      p.BufPages,
		Rows:          make([]VictimRow, len(p.Rows)),
		aggressorBits: append([]uint64(nil), p.aggressorBits...),
		victimIdx:     append([]int32(nil), p.victimIdx...),
	}
	for i := range p.Rows {
		r := p.Rows[i]
		r.AggressorVaddrs = append([]int(nil), r.AggressorVaddrs...)
		for half := 0; half < 2; half++ {
			r.Pages[half].Flips = append([]CellFlip(nil), r.Pages[half].Flips...)
		}
		c.Rows[i] = r
	}
	return c
}

// Config controls profiling.
type Config struct {
	// Sides is the hammer pattern: 2 = double-sided (DDR3), ≥3 =
	// n-sided (DDR4 with TRR; the paper uses 15 for profiling and 7
	// online).
	Sides int
	// Intensity is the normalized per-aggressor activation budget.
	Intensity float64
	// MeasureSeed seeds the side-channel noise.
	MeasureSeed int64
	// SkipSpoilerCheck bypasses the contiguity verification (tests).
	SkipSpoilerCheck bool
	// Workers caps the fan-out of the parallel templating engine; 0 (the
	// default) uses tensor.MaxWorkers(). Output is byte-identical at any
	// worker count.
	Workers int
}

// workerCount resolves the effective fan-out.
func (c Config) workerCount() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return tensor.MaxWorkers()
}

// ensurePages grows the victim/aggressor page indexes through buffer
// page n−1.
func (p *Profile) ensurePages(n int) {
	for len(p.victimIdx) < n {
		p.victimIdx = append(p.victimIdx, -1)
	}
	for len(p.aggressorBits) < (n+63)/64 {
		p.aggressorBits = append(p.aggressorBits, 0)
	}
}

func (p *Profile) setVictimPage(page, row, half int) {
	p.ensurePages(page + 1)
	p.victimIdx[page] = int32(row*2 + half)
}

// victimPageAt returns the (row, half) a buffer page was profiled as.
func (p *Profile) victimPageAt(page int) (int, int, bool) {
	if page < 0 || page >= len(p.victimIdx) || p.victimIdx[page] < 0 {
		return 0, 0, false
	}
	v := p.victimIdx[page]
	return int(v / 2), int(v % 2), true
}

func (p *Profile) setAggressorPage(page int) {
	p.ensurePages(page + 1)
	p.aggressorBits[page>>6] |= 1 << (uint(page) & 63)
}

// ProfileBuffer templates the attacker buffer: it verifies physical
// contiguity via SPOILER, groups row chunks into banks via row-buffer
// conflicts, hammers victim rows with the configured pattern in both
// data polarities, and records every reproducible flip.
func ProfileBuffer(sys *memsys.System, attacker *memsys.Process, bufBase, bufPages int, cfg Config) (*Profile, error) {
	if cfg.Sides < 2 {
		return nil, fmt.Errorf("profile: need at least 2 sides, got %d", cfg.Sides)
	}
	if cfg.Intensity <= 0 || cfg.Intensity > 1 {
		return nil, fmt.Errorf("profile: intensity must be in (0,1], got %v", cfg.Intensity)
	}
	if bufPages%2 != 0 {
		return nil, fmt.Errorf("profile: buffer must be a whole number of 8KB rows")
	}
	meas := sidechan.NewMeasurer(sys, cfg.MeasureSeed)

	// SPOILER resolves contiguity at a 256-page (1 MB) alias period;
	// buffers smaller than two periods cannot produce the peak
	// progression the detector needs.
	if !cfg.SkipSpoilerCheck && bufPages > 2*sidechan.SpoilerAlias {
		timings, err := meas.SpoilerSweep(attacker, bufBase, bufPages)
		if err != nil {
			return nil, fmt.Errorf("profile: spoiler sweep: %w", err)
		}
		runs := sidechan.DetectContiguousRuns(timings, sidechan.SpoilerAlias)
		covered := 0
		for _, r := range runs {
			covered += r.Pages
		}
		if covered < bufPages/2 {
			return nil, fmt.Errorf("profile: buffer not physically contiguous (%d of %d pages)", covered, bufPages)
		}
	}

	// Row chunks: 8 KB each.
	numChunks := bufPages / 2
	chunkVaddrs := make([]int, numChunks)
	for i := range chunkVaddrs {
		chunkVaddrs[i] = bufBase + i*dram.RowBytes
	}
	clusters, err := meas.ClusterByBank(attacker, chunkVaddrs)
	if err != nil {
		return nil, fmt.Errorf("profile: bank clustering: %w", err)
	}

	p := &Profile{
		BufBase:  bufBase,
		BufPages: bufPages,
	}
	p.ensurePages(bufPages)

	// Build the experiment list in the engine's canonical order: clusters
	// in discovery order, victims ascending within each cluster. Each
	// experiment is assigned a phase color such that experiments sharing
	// a phase have disjoint row footprints (see experiment); phases run
	// one after another, each fanned out over the worker pool.
	phases := 5
	if cfg.Sides > 2 {
		phases = 2
	}
	// Pre-size the experiment list, phase lists and row storage from the
	// cluster shapes: a 4M-page sweep holds ~2M experiments, and letting
	// append regrow those multi-hundred-MB slices would spend more time
	// zeroing fresh backing arrays than hammering.
	nExp, victimsPer := 0, 1
	if cfg.Sides > 2 {
		victimsPer = cfg.Sides - 1
	}
	for _, cluster := range clusters {
		if len(cluster) < 3 {
			continue
		}
		if cfg.Sides == 2 {
			nExp += len(cluster) - 2
		} else if window := 2*cfg.Sides - 1; len(cluster) >= window {
			nExp += (len(cluster)-window)/(window-1) + 1
		}
	}
	exps := make([]experiment, 0, nExp)
	phaseLists := make([][]int, phases)
	for i := range phaseLists {
		phaseLists[i] = make([]int, 0, nExp/phases+1)
	}
	p.Rows = make([]VictimRow, 0, nExp*victimsPer)
	for _, cluster := range clusters {
		sort.Ints(cluster) // ascending virtual = ascending row within bank
		if len(cluster) < 3 {
			continue
		}
		if cfg.Sides == 2 {
			// Double-sided: every interior row is a victim once.
			for k := 1; k < len(cluster)-1; k++ {
				ph := (k - 1) % phases
				phaseLists[ph] = append(phaseLists[ph], len(exps))
				exps = append(exps, experiment{cluster: cluster, k: k})
			}
		} else {
			// n-sided: alternating aggressor/victim rows, windows of
			// cfg.Sides aggressors stepped so each odd position is a
			// victim exactly once.
			window := 2*cfg.Sides - 1
			w := 0
			for start := 0; start+window <= len(cluster); start += window - 1 {
				ph := w % phases
				w++
				phaseLists[ph] = append(phaseLists[ph], len(exps))
				exps = append(exps, experiment{cluster: cluster, k: start})
			}
		}
	}

	workers := cfg.workerCount()
	for _, list := range phaseLists {
		list := list
		tensor.ParallelChunks(len(list), workers, func(lo, hi int) {
			for x := lo; x < hi; x++ {
				e := &exps[list[x]]
				e.rows, e.err = runExperiment(sys, attacker, bufBase, e.cluster, e.k, cfg)
			}
		})
	}

	// Surface the first failure in canonical experiment order so the
	// returned error does not depend on scheduling.
	for i := range exps {
		if exps[i].err != nil {
			return nil, exps[i].err
		}
	}

	// Assemble the profile in canonical order — the same Rows ordering
	// the sequential engine produced.
	for i := range exps {
		rows := exps[i].rows
		for _, r := range rows {
			idx := len(p.Rows)
			p.Rows = append(p.Rows, r)
			for half := 0; half < 2; half++ {
				p.setVictimPage(r.Pages[half].BufferPage, idx, half)
			}
		}
		if len(rows) > 0 {
			for _, ac := range rows[0].AggressorVaddrs {
				base := (ac - bufBase) / memsys.PageSize
				p.setAggressorPage(base)
				p.setAggressorPage(base + 1)
			}
		}
	}
	return p, nil
}

// experiment is one hammer experiment: fill the victim rows and
// aggressor rows, hammer, read the victims back — in both polarities.
// Given exclusive access to its row footprint, an experiment is a pure
// function of (cluster, k, cfg): the fills erase whatever earlier
// experiments left in its rows, and the module's weak cells are a fixed
// function of (bank, row). Experiments with disjoint footprints
// therefore commute, so any schedule that never overlaps two
// conflicting experiments in time yields bit-identical profiles — the
// engine guarantees that with phase coloring.
//
// Footprints: a double-sided experiment at victim index k touches rows
// [cluster[k-1]−1, cluster[k+1]+1] (fills plus hammer disturb-writes
// into the aggressors' outer neighbors), and cluster rows are strictly
// ascending, so experiments ≥ 5 victim indices apart are disjoint —
// phase = (k−1) mod 5. An n-sided window (2·sides−1 ≥ 5 rows) conflicts
// only with its immediate neighbor windows, so alternating windows
// suffice — phase = window index mod 2.
type experiment struct {
	cluster []int // sorted same-bank chunk vaddrs (shared, read-only)
	k       int   // double-sided: victim index; n-sided: window start
	rows    []VictimRow
	err     error
}

// polarityBytes are the two fill polarities every experiment runs.
var polarityBytes = [2]byte{0x00, 0xFF}

// expScratch is the per-worker reusable scratch of the experiment loop:
// one page of readback, the aggressor row translation buffer, the
// victim/aggressor chunk lists, and the flip accumulator. Pooled so the
// steady-state profiling loop allocates only its outputs.
type expScratch struct {
	buf     []byte
	rowBuf  []int
	victims []int
	aggrs   []int
	flips   []CellFlip
	segs    [][2][2][2]int // [victim][half][polarity] = {start, end} into flips
}

var scratchPool = sync.Pool{New: func() any {
	return &expScratch{buf: make([]byte, memsys.PageSize)}
}}

// fillChunk sets both halves of an 8 KB chunk to the polarity byte —
// two O(1) constant-page demotes on a sparse module, no 4 KB streaming.
func fillChunk(p *memsys.Process, vaddr int, v byte) error {
	if err := p.FillPage(vaddr, v); err != nil {
		return err
	}
	return p.FillPage(vaddr+memsys.PageSize, v)
}

// runExperiment executes one hammer experiment and returns the profiled
// victim rows. Only the returned rows and their flip slices are
// allocated; everything else comes from pooled scratch.
func runExperiment(sys *memsys.System, attacker *memsys.Process, bufBase int, cluster []int, k int, cfg Config) ([]VictimRow, error) {
	sc := scratchPool.Get().(*expScratch)
	defer scratchPool.Put(sc)
	sc.victims = sc.victims[:0]
	sc.aggrs = sc.aggrs[:0]
	if cfg.Sides == 2 {
		sc.victims = append(sc.victims, cluster[k])
		sc.aggrs = append(sc.aggrs, cluster[k-1], cluster[k+1])
	} else {
		window := 2*cfg.Sides - 1
		for i := 0; i < window; i++ {
			if i%2 == 0 {
				sc.aggrs = append(sc.aggrs, cluster[k+i])
			} else {
				sc.victims = append(sc.victims, cluster[k+i])
			}
		}
	}
	nv := len(sc.victims)
	if cap(sc.segs) < nv {
		sc.segs = make([][2][2][2]int, nv)
	}
	sc.segs = sc.segs[:nv]
	sc.flips = sc.flips[:0]

	for pi, polarity := range polarityBytes {
		for _, vc := range sc.victims {
			if err := fillChunk(attacker, vc, polarity); err != nil {
				return nil, fmt.Errorf("profile: fill victim: %w", err)
			}
		}
		for _, ac := range sc.aggrs {
			if err := fillChunk(attacker, ac, polarityBytes[1-pi]); err != nil {
				return nil, fmt.Errorf("profile: fill aggressor: %w", err)
			}
		}
		if err := hammerRowsInto(sys, attacker, sc.aggrs, cfg.Intensity, &sc.rowBuf); err != nil {
			return nil, err
		}
		dir := dram.ZeroToOne
		if polarity == 0xFF {
			dir = dram.OneToZero
		}
		// Scan victims for flipped bits. A page still in constant state
		// at its fill polarity provably holds zero flips and is skipped
		// without touching memory (the usual case: hammering materializes
		// only pages that actually flipped). Materialized pages are read
		// back and scanned with the vectorized mismatch kernel — a clean
		// 4 KB page costs ~128 AVX2 compares.
		for vi, vc := range sc.victims {
			for half := 0; half < 2; half++ {
				start := len(sc.flips)
				va := vc + half*memsys.PageSize
				if c, constant, err := attacker.PageConstantAt(va); err != nil {
					return nil, err
				} else if constant && c == polarity {
					sc.segs[vi][half][pi] = [2]int{start, start}
					continue
				}
				if err := attacker.ReadInto(va, sc.buf); err != nil {
					return nil, err
				}
				for off := 0; off < memsys.PageSize; {
					i := tensor.IndexMismatchByte(sc.buf[off:], polarity)
					if i < 0 {
						break
					}
					j := off + i
					diff := sc.buf[j] ^ polarity
					for bit := 0; bit < 8; bit++ {
						if diff&(1<<bit) == 0 {
							continue
						}
						sc.flips = append(sc.flips, CellFlip{Offset: j, Bit: bit, Dir: dir})
					}
					off = j + 1
				}
				sc.segs[vi][half][pi] = [2]int{start, len(sc.flips)}
			}
		}
	}

	rows := make([]VictimRow, nv)
	for vi, vc := range sc.victims {
		rows[vi] = VictimRow{
			AggressorVaddrs: append([]int(nil), sc.aggrs...),
			Sides:           cfg.Sides,
			Intensity:       cfg.Intensity,
		}
		for half := 0; half < 2; half++ {
			rows[vi].Pages[half].BufferPage = (vc-bufBase)/memsys.PageSize + half
			s0 := sc.segs[vi][half][0]
			s1 := sc.segs[vi][half][1]
			n := (s0[1] - s0[0]) + (s1[1] - s1[0])
			if n == 0 {
				continue
			}
			fl := make([]CellFlip, 0, n)
			fl = append(fl, sc.flips[s0[0]:s0[1]]...)
			fl = append(fl, sc.flips[s1[0]:s1[1]]...)
			rows[vi].Pages[half].Flips = fl
		}
	}
	return rows, nil
}

// hammerRowsInto is the scratch-buffer core of HammerRows: rowBuf is
// reused across calls so the hot loop performs no allocation.
func hammerRowsInto(sys *memsys.System, p *memsys.Process, aggressorVaddrs []int, intensity float64, rowBuf *[]int) error {
	if len(aggressorVaddrs) == 0 {
		return fmt.Errorf("profile: no aggressor rows")
	}
	geom := sys.Module().Geometry()
	bank := -1
	rows := (*rowBuf)[:0]
	for _, va := range aggressorVaddrs {
		phys, err := p.Translate(va)
		if err != nil {
			*rowBuf = rows
			return fmt.Errorf("profile: aggressor translate: %w", err)
		}
		loc := geom.LocOf(phys)
		if bank == -1 {
			bank = loc.Bank
		} else if loc.Bank != bank {
			*rowBuf = rows
			return fmt.Errorf("profile: aggressors span banks %d and %d", bank, loc.Bank)
		}
		rows = append(rows, loc.Row)
	}
	*rowBuf = rows
	sys.Module().HammerQuiet(bank, rows, intensity)
	return nil
}

// HammerRows translates page-aligned aggressor addresses and hammers
// the corresponding DRAM rows. All aggressors must share a bank.
func HammerRows(sys *memsys.System, p *memsys.Process, aggressorVaddrs []int, intensity float64) error {
	var rowArr [32]int
	rows := rowArr[:0]
	return hammerRowsInto(sys, p, aggressorVaddrs, intensity, &rows)
}

// TotalFlips counts every recorded flip.
func (p *Profile) TotalFlips() int {
	n := 0
	for i := range p.Rows {
		n += p.Rows[i].FlipCount()
	}
	return n
}

// FlippyPageCount counts victim pages with at least one flip.
func (p *Profile) FlippyPageCount() int {
	n := 0
	for i := range p.Rows {
		for half := 0; half < 2; half++ {
			if len(p.Rows[i].Pages[half].Flips) > 0 {
				n++
			}
		}
	}
	return n
}

// VictimPageCount counts profiled victim pages.
func (p *Profile) VictimPageCount() int { return 2 * len(p.Rows) }

// BaitPages returns buffer pages safe to hand to the victim file
// without them ever being disturbed by the planned hammering: pages
// outside every hammered victim row and outside those rows' aggressor
// rows. usedRows marks Profile.Rows indices the online plan hammers.
func (p *Profile) BaitPages(usedRows map[int]bool) []int {
	excluded := make([]uint64, (p.BufPages+63)/64)
	mark := func(page int) {
		if page >= 0 && page < p.BufPages {
			excluded[page>>6] |= 1 << (uint(page) & 63)
		}
	}
	for ri := range usedRows {
		if !usedRows[ri] {
			continue
		}
		for half := 0; half < 2; half++ {
			mark(p.Rows[ri].Pages[half].BufferPage)
		}
		for _, ap := range aggressorBufferPages(p, ri) {
			mark(ap)
		}
	}
	var out []int
	for page := 0; page < p.BufPages; page++ {
		if excluded[page>>6]&(1<<(uint(page)&63)) == 0 {
			out = append(out, page)
		}
	}
	return out
}

// FlipsPerPageHistogram returns a histogram of flips per victim page
// (Figure 2 / Figure 6 style data).
func (p *Profile) FlipsPerPageHistogram() map[int]int {
	h := make(map[int]int)
	for i := range p.Rows {
		for half := 0; half < 2; half++ {
			h[len(p.Rows[i].Pages[half].Flips)]++
		}
	}
	return h
}

// AvgFlipsPerPage returns the mean flips per profiled victim page.
func (p *Profile) AvgFlipsPerPage() float64 {
	if p.VictimPageCount() == 0 {
		return 0
	}
	return float64(p.TotalFlips()) / float64(p.VictimPageCount())
}
