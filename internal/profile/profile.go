package profile

import (
	"fmt"
	"sort"

	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
	"rowhammer/internal/sidechan"
)

// CellFlip is one reproducible bit flip within a 4 KB page.
type CellFlip struct {
	// Offset is the byte offset within the page.
	Offset int
	// Bit is the bit index within that byte (0 = LSB).
	Bit int
	// Dir is the flip direction.
	Dir dram.FlipDirection
}

// PageFlips is the flip template of one buffer page.
type PageFlips struct {
	// BufferPage is the page index within the attacker buffer.
	BufferPage int
	// Flips lists the reproducible flips found by profiling.
	Flips []CellFlip
}

// VictimRow is one profiled DRAM row: its two OS pages and the
// aggressor rows that disturb it.
type VictimRow struct {
	// Pages are the two page halves of the 8 KB row.
	Pages [2]PageFlips
	// AggressorVaddrs are page-aligned virtual addresses, one per
	// aggressor row, that the online phase hammers. They must stay
	// mapped in the attacker's address space.
	AggressorVaddrs []int
	// Sides is the hammer pattern width used to profile this row.
	Sides int
	// Intensity is the normalized hammer intensity used.
	Intensity float64
}

// FlipCount returns the total flips across both halves.
func (v *VictimRow) FlipCount() int {
	return len(v.Pages[0].Flips) + len(v.Pages[1].Flips)
}

// Profile is the result of templating an attacker buffer.
type Profile struct {
	// BufBase is the buffer's base virtual address.
	BufBase int
	// BufPages is the buffer length in pages.
	BufPages int
	// Rows lists every profiled victim row (flippy or not).
	Rows []VictimRow
	// aggressorPages marks buffer pages that belong to aggressor rows.
	aggressorPages map[int]bool
	// victimPages maps buffer page → (row index, half).
	victimPages map[int][2]int
}

// Config controls profiling.
type Config struct {
	// Sides is the hammer pattern: 2 = double-sided (DDR3), ≥3 =
	// n-sided (DDR4 with TRR; the paper uses 15 for profiling and 7
	// online).
	Sides int
	// Intensity is the normalized per-aggressor activation budget.
	Intensity float64
	// MeasureSeed seeds the side-channel noise.
	MeasureSeed int64
	// SkipSpoilerCheck bypasses the contiguity verification (tests).
	SkipSpoilerCheck bool
}

// ProfileBuffer templates the attacker buffer: it verifies physical
// contiguity via SPOILER, groups row chunks into banks via row-buffer
// conflicts, hammers victim rows with the configured pattern in both
// data polarities, and records every reproducible flip.
func ProfileBuffer(sys *memsys.System, attacker *memsys.Process, bufBase, bufPages int, cfg Config) (*Profile, error) {
	if cfg.Sides < 2 {
		return nil, fmt.Errorf("profile: need at least 2 sides, got %d", cfg.Sides)
	}
	if cfg.Intensity <= 0 || cfg.Intensity > 1 {
		return nil, fmt.Errorf("profile: intensity must be in (0,1], got %v", cfg.Intensity)
	}
	if bufPages%2 != 0 {
		return nil, fmt.Errorf("profile: buffer must be a whole number of 8KB rows")
	}
	meas := sidechan.NewMeasurer(sys, cfg.MeasureSeed)

	// SPOILER resolves contiguity at a 256-page (1 MB) alias period;
	// buffers smaller than two periods cannot produce the peak
	// progression the detector needs.
	if !cfg.SkipSpoilerCheck && bufPages > 2*sidechan.SpoilerAlias {
		timings, err := meas.SpoilerSweep(attacker, bufBase, bufPages)
		if err != nil {
			return nil, fmt.Errorf("profile: spoiler sweep: %w", err)
		}
		runs := sidechan.DetectContiguousRuns(timings, sidechan.SpoilerAlias)
		covered := 0
		for _, r := range runs {
			covered += r.Pages
		}
		if covered < bufPages/2 {
			return nil, fmt.Errorf("profile: buffer not physically contiguous (%d of %d pages)", covered, bufPages)
		}
	}

	// Row chunks: 8 KB each.
	numChunks := bufPages / 2
	chunkVaddrs := make([]int, numChunks)
	for i := range chunkVaddrs {
		chunkVaddrs[i] = bufBase + i*dram.RowBytes
	}
	clusters, err := meas.ClusterByBank(attacker, chunkVaddrs)
	if err != nil {
		return nil, fmt.Errorf("profile: bank clustering: %w", err)
	}

	p := &Profile{
		BufBase:        bufBase,
		BufPages:       bufPages,
		aggressorPages: make(map[int]bool),
		victimPages:    make(map[int][2]int),
	}
	for _, cluster := range clusters {
		sort.Ints(cluster) // ascending virtual = ascending row within bank
		if err := p.profileCluster(sys, attacker, cluster, cfg); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// profileCluster hammers every eligible victim row of one same-bank
// chunk list (sorted by address = consecutive rows).
func (p *Profile) profileCluster(sys *memsys.System, attacker *memsys.Process, cluster []int, cfg Config) error {
	if len(cluster) < 3 {
		return nil
	}
	if cfg.Sides == 2 {
		// Double-sided: every interior row is a victim once.
		for k := 1; k < len(cluster)-1; k++ {
			aggrs := []int{cluster[k-1], cluster[k+1]}
			if err := p.profileVictims(sys, attacker, []int{cluster[k]}, aggrs, cfg); err != nil {
				return err
			}
		}
		return nil
	}
	// n-sided: alternating aggressor/victim rows, windows of cfg.Sides
	// aggressors stepped so each odd position is a victim exactly once.
	window := 2*cfg.Sides - 1
	for start := 0; start+window <= len(cluster); start += window - 1 {
		var aggrs, victims []int
		for i := 0; i < window; i++ {
			if i%2 == 0 {
				aggrs = append(aggrs, cluster[start+i])
			} else {
				victims = append(victims, cluster[start+i])
			}
		}
		if err := p.profileVictims(sys, attacker, victims, aggrs, cfg); err != nil {
			return err
		}
	}
	return nil
}

// profileVictims runs one hammer experiment: victims are tested in both
// data polarities and their flips recorded.
func (p *Profile) profileVictims(sys *memsys.System, attacker *memsys.Process, victimChunks, aggressorChunks []int, cfg Config) error {
	fill := func(vaddr int, b byte) error {
		page := make([]byte, memsys.PageSize)
		for i := range page {
			page[i] = b
		}
		if err := attacker.Write(vaddr, page); err != nil {
			return err
		}
		return attacker.Write(vaddr+memsys.PageSize, page)
	}

	rows := make([]VictimRow, len(victimChunks))
	for vi, vc := range victimChunks {
		rows[vi] = VictimRow{
			AggressorVaddrs: append([]int(nil), aggressorChunks...),
			Sides:           cfg.Sides,
			Intensity:       cfg.Intensity,
		}
		for half := 0; half < 2; half++ {
			rows[vi].Pages[half].BufferPage = (vc-p.BufBase)/memsys.PageSize + half
		}
	}

	for _, polarity := range []byte{0x00, 0xFF} {
		for _, vc := range victimChunks {
			if err := fill(vc, polarity); err != nil {
				return fmt.Errorf("profile: fill victim: %w", err)
			}
		}
		for _, ac := range aggressorChunks {
			if err := fill(ac, ^polarity); err != nil {
				return fmt.Errorf("profile: fill aggressor: %w", err)
			}
		}
		if err := HammerRows(sys, attacker, aggressorChunks, cfg.Intensity); err != nil {
			return err
		}
		// Scan victims for flipped bits.
		for vi, vc := range victimChunks {
			for half := 0; half < 2; half++ {
				buf, err := attacker.Read(vc+half*memsys.PageSize, memsys.PageSize)
				if err != nil {
					return err
				}
				for off, b := range buf {
					if b == polarity {
						continue
					}
					diff := b ^ polarity
					for bit := 0; bit < 8; bit++ {
						if diff&(1<<bit) == 0 {
							continue
						}
						dir := dram.ZeroToOne
						if polarity == 0xFF {
							dir = dram.OneToZero
						}
						rows[vi].Pages[half].Flips = append(rows[vi].Pages[half].Flips,
							CellFlip{Offset: off, Bit: bit, Dir: dir})
					}
				}
			}
		}
	}

	for _, r := range rows {
		idx := len(p.Rows)
		p.Rows = append(p.Rows, r)
		for half := 0; half < 2; half++ {
			p.victimPages[r.Pages[half].BufferPage] = [2]int{idx, half}
		}
	}
	for _, ac := range aggressorChunks {
		base := (ac - p.BufBase) / memsys.PageSize
		p.aggressorPages[base] = true
		p.aggressorPages[base+1] = true
	}
	return nil
}

// HammerRows translates page-aligned aggressor addresses and hammers
// the corresponding DRAM rows. All aggressors must share a bank.
func HammerRows(sys *memsys.System, p *memsys.Process, aggressorVaddrs []int, intensity float64) error {
	if len(aggressorVaddrs) == 0 {
		return fmt.Errorf("profile: no aggressor rows")
	}
	geom := sys.Module().Geometry()
	bank := -1
	rows := make([]int, 0, len(aggressorVaddrs))
	for _, va := range aggressorVaddrs {
		phys, err := p.Translate(va)
		if err != nil {
			return fmt.Errorf("profile: aggressor translate: %w", err)
		}
		loc := geom.LocOf(phys)
		if bank == -1 {
			bank = loc.Bank
		} else if loc.Bank != bank {
			return fmt.Errorf("profile: aggressors span banks %d and %d", bank, loc.Bank)
		}
		rows = append(rows, loc.Row)
	}
	sys.Module().Hammer(bank, rows, intensity)
	return nil
}

// TotalFlips counts every recorded flip.
func (p *Profile) TotalFlips() int {
	n := 0
	for i := range p.Rows {
		n += p.Rows[i].FlipCount()
	}
	return n
}

// FlippyPageCount counts victim pages with at least one flip.
func (p *Profile) FlippyPageCount() int {
	n := 0
	for i := range p.Rows {
		for half := 0; half < 2; half++ {
			if len(p.Rows[i].Pages[half].Flips) > 0 {
				n++
			}
		}
	}
	return n
}

// VictimPageCount counts profiled victim pages.
func (p *Profile) VictimPageCount() int { return 2 * len(p.Rows) }

// BaitPages returns buffer pages safe to hand to the victim file
// without them ever being disturbed by the planned hammering: pages
// outside every hammered victim row and outside those rows' aggressor
// rows. usedRows marks Profile.Rows indices the online plan hammers.
func (p *Profile) BaitPages(usedRows map[int]bool) []int {
	excluded := make(map[int]bool)
	for ri := range usedRows {
		if !usedRows[ri] {
			continue
		}
		for half := 0; half < 2; half++ {
			excluded[p.Rows[ri].Pages[half].BufferPage] = true
		}
		for _, ap := range aggressorBufferPages(p, ri) {
			excluded[ap] = true
		}
	}
	var out []int
	for page := 0; page < p.BufPages; page++ {
		if !excluded[page] {
			out = append(out, page)
		}
	}
	return out
}

// FlipsPerPageHistogram returns a histogram of flips per victim page
// (Figure 2 / Figure 6 style data).
func (p *Profile) FlipsPerPageHistogram() map[int]int {
	h := make(map[int]int)
	for i := range p.Rows {
		for half := 0; half < 2; half++ {
			h[len(p.Rows[i].Pages[half].Flips)]++
		}
	}
	return h
}

// AvgFlipsPerPage returns the mean flips per profiled victim page.
func (p *Profile) AvgFlipsPerPage() float64 {
	if p.VictimPageCount() == 0 {
		return 0
	}
	return float64(p.TotalFlips()) / float64(p.VictimPageCount())
}
