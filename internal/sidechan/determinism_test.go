package sidechan

import (
	"reflect"
	"runtime"
	"testing"

	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
	"rowhammer/internal/tensor"
)

// TestBatchMeasurementWorkerDeterminism pins the counter-based noise
// contract: SpoilerSweep timings and ClusterByBank groupings are
// bit-identical at 1, 2 and 4 workers, because every sample is a pure
// function of (seed, stream, measurement index) rather than of issue
// order. GOMAXPROCS is raised so the multi-worker runs are genuinely
// concurrent even on a single-CPU machine.
func TestBatchMeasurementWorkerDeterminism(t *testing.T) {
	prevProcs := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prevProcs)

	const pages = 2048
	mod, err := dram.NewModuleForSize(pages*memsys.PageSize+(8<<20), dram.PaperDDR3(), 11)
	if err != nil {
		t.Fatal(err)
	}
	sys := memsys.NewSystem(mod)
	p := sys.NewProcess()
	base, err := p.Mmap(pages)
	if err != nil {
		t.Fatal(err)
	}
	chunks := make([]int, pages/2)
	for i := range chunks {
		chunks[i] = base + i*dram.RowBytes
	}
	m := NewMeasurer(sys, 9)

	run := func(workers int) ([]float64, [][]int) {
		prev := tensor.SetMaxWorkers(workers)
		defer tensor.SetMaxWorkers(prev)
		sweep, err := m.SpoilerSweep(p, base, pages)
		if err != nil {
			t.Fatal(err)
		}
		clusters, err := m.ClusterByBank(p, chunks)
		if err != nil {
			t.Fatal(err)
		}
		return sweep, clusters
	}

	refSweep, refClusters := run(1)
	if len(refClusters) != 16 {
		t.Fatalf("got %d clusters, want 16 banks", len(refClusters))
	}
	for _, w := range []int{2, 4} {
		sweep, clusters := run(w)
		if !reflect.DeepEqual(refSweep, sweep) {
			t.Fatalf("SpoilerSweep timings differ at %d workers", w)
		}
		if !reflect.DeepEqual(refClusters, clusters) {
			t.Fatalf("ClusterByBank grouping differs at %d workers", w)
		}
	}
}
