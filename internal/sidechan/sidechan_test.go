package sidechan

import (
	"testing"

	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
)

func newSys(t *testing.T, sizeMB int) (*memsys.System, *memsys.Process) {
	t.Helper()
	mod, err := dram.NewModuleForSize(sizeMB<<20, dram.PaperDDR3(), 3)
	if err != nil {
		t.Fatal(err)
	}
	sys := memsys.NewSystem(mod)
	return sys, sys.NewProcess()
}

func TestRowConflictSeparatesBanks(t *testing.T) {
	sys, p := newSys(t, 4)
	base, err := p.Mmap(512)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMeasurer(sys, 1)
	// Collect pairs with known ground truth via the oracle, verify the
	// timing model and the SameBank detector agree with it.
	checked := 0
	for i := 0; i < 200; i += 3 {
		va := base
		vb := base + i*2*memsys.PageSize // 8 KB steps = row chunks
		bankA, _ := BankOfOracle(sys, p, va)
		bankB, _ := BankOfOracle(sys, p, vb)
		rowDiff := i != 0
		if bankA == bankB && !rowDiff {
			continue
		}
		same, err := m.SameBank(p, va, vb)
		if err != nil {
			t.Fatal(err)
		}
		if same != (bankA == bankB) {
			t.Fatalf("pair %d: SameBank=%v, oracle banks %d vs %d", i, same, bankA, bankB)
		}
		checked++
	}
	if checked < 20 {
		t.Fatalf("only %d pairs checked", checked)
	}
}

func TestRowConflictTimingDistribution(t *testing.T) {
	sys, p := newSys(t, 4)
	base, _ := p.Mmap(512)
	m := NewMeasurer(sys, 2)
	var conflict, fast int
	for i := 1; i < 256; i++ {
		c, err := m.RowConflictCycles(p, base, base+i*2*memsys.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		if c > 350 {
			conflict++
		} else {
			fast++
		}
	}
	// With 16 banks roughly one sixteenth of the addresses conflict
	// (the paper's Figure 12 observation).
	frac := float64(conflict) / float64(conflict+fast)
	if frac < 0.02 || frac > 0.15 {
		t.Fatalf("conflict fraction %.3f, want ≈1/16", frac)
	}
}

func TestSpoilerDetectsContiguity(t *testing.T) {
	sys, p := newSys(t, 8)
	pages := 1600
	base, err := p.Mmap(pages)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMeasurer(sys, 3)
	timings, err := m.SpoilerSweep(p, base, pages)
	if err != nil {
		t.Fatal(err)
	}
	runs := DetectContiguousRuns(timings, SpoilerAlias)
	if len(runs) == 0 {
		t.Fatal("no contiguous run detected in a fresh (contiguous) allocation")
	}
	best := runs[0]
	for _, r := range runs {
		if r.Pages > best.Pages {
			best = r
		}
	}
	if best.Pages < 1024 {
		t.Fatalf("detected run of %d pages, want ≥1024", best.Pages)
	}
	// Validate with the oracle: the run really is physically contiguous.
	f0, _ := p.FrameOf(base + best.StartPage*memsys.PageSize)
	for i := 0; i < best.Pages; i++ {
		f, _ := p.FrameOf(base + (best.StartPage+i)*memsys.PageSize)
		if f != f0+i {
			t.Fatalf("page %d of detected run is not contiguous", i)
		}
	}
}

func TestSpoilerSweepNoPeaksWhenFragmented(t *testing.T) {
	sys, p := newSys(t, 8)
	// Fragment physical memory: allocate and free alternating pages so
	// subsequent allocation is served FILO (reverse order).
	scratch, _ := p.Mmap(1024)
	for i := 0; i < 1024; i += 2 {
		p.MunmapPage(scratch + i*memsys.PageSize)
	}
	pages := 512
	base, err := p.Mmap(pages)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMeasurer(sys, 4)
	timings, err := m.SpoilerSweep(p, base, pages)
	if err != nil {
		t.Fatal(err)
	}
	runs := DetectContiguousRuns(timings, SpoilerAlias)
	for _, r := range runs {
		if r.Pages >= 512 {
			t.Fatalf("fragmented allocation reported as fully contiguous: %+v", r)
		}
	}
}

func TestClusterByBankMatchesOracle(t *testing.T) {
	sys, p := newSys(t, 4)
	base, _ := p.Mmap(256)
	m := NewMeasurer(sys, 5)
	var vaddrs []int
	for i := 0; i < 64; i++ {
		vaddrs = append(vaddrs, base+i*2*memsys.PageSize)
	}
	clusters, err := m.ClusterByBank(p, vaddrs)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 16 {
		t.Fatalf("got %d clusters, want 16 banks", len(clusters))
	}
	for ci, cluster := range clusters {
		bank0, _ := BankOfOracle(sys, p, cluster[0])
		for _, va := range cluster[1:] {
			b, _ := BankOfOracle(sys, p, va)
			if b != bank0 {
				t.Fatalf("cluster %d mixes banks %d and %d", ci, bank0, b)
			}
		}
	}
}

func TestDetectContiguousRunsIgnoresIsolatedPeaks(t *testing.T) {
	timings := make([]float64, 1000)
	for i := range timings {
		timings[i] = BaseCycles
	}
	timings[100] = SpoilerPeakCycles // lone peak: no progression
	if runs := DetectContiguousRuns(timings, 256); len(runs) != 0 {
		t.Fatalf("isolated peak produced runs: %+v", runs)
	}
	timings[356] = SpoilerPeakCycles
	timings[612] = SpoilerPeakCycles
	runs := DetectContiguousRuns(timings, 256)
	if len(runs) != 1 || runs[0].StartPage != 100 || runs[0].Pages != 768 {
		t.Fatalf("runs = %+v", runs)
	}
}

func TestSpoilerSweepValidation(t *testing.T) {
	sys, p := newSys(t, 1)
	m := NewMeasurer(sys, 6)
	if _, err := m.SpoilerSweep(p, 0, 0); err == nil {
		t.Fatal("zero pages must error")
	}
	if _, err := m.SpoilerSweep(p, 0x999999, 4); err == nil {
		t.Fatal("unmapped sweep must error")
	}
	if _, err := m.RowConflictCycles(p, 0x999999, 0x888888); err == nil {
		t.Fatal("unmapped conflict pair must error")
	}
}
