// Package sidechan models the two timing side channels the attack's
// memory templating uses (§IV-A1, Appendix B/C):
//
//   - SPOILER: speculative store-load hazards in Intel processors leak
//     the low 8 bits of page frame numbers, so a sweep over a virtual
//     buffer shows timing peaks every 256 pages wherever the underlying
//     physical memory is contiguous (Figure 11).
//   - Row-buffer conflict: two accesses that hit the same DRAM bank but
//     different rows evict each other from the row buffer and take ~400
//     cycles instead of ~300 (Figure 12), revealing bank co-location.
//
// The measured quantities are produced by a latency model over the
// simulated physical address space; attacker code consumes only the
// timings, never the hidden virtual→physical mapping.
//
// Measurement noise is counter-based: every sample is a pure function
// of (seed, stream, measurement index), never of the order in which
// measurements are issued. That is what lets SpoilerSweep and
// ClusterByBank fan measurement batches out over the worker pool and
// still return bit-identical timings at any worker count.
package sidechan

import (
	"fmt"
	"sort"
	"sync"

	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
	"rowhammer/internal/tensor"
)

// Latency model constants (cycles).
const (
	// BaseCycles is the access latency without any conflict.
	BaseCycles = 300
	// ConflictCycles is the same-bank different-row penalty target
	// (~400 cycles in Figure 12).
	ConflictCycles = 400
	// SpoilerPeakCycles is the store-load hazard penalty on 1 MB
	// aliasing (Figure 11 peaks).
	SpoilerPeakCycles = 550
	// SpoilerAlias is the page-frame aliasing period SPOILER resolves
	// (8 bits of the PFN → 256 pages = 1 MB).
	SpoilerAlias = 256
)

// Noise stream identifiers. Each measurement family draws from its own
// stream so counters never collide across families.
const (
	streamPair    = 1 // sequential RowConflictCycles API
	streamSpoiler = 2 // SpoilerSweep, counter = page index
	streamCluster = 3 // ClusterByBank, counter = (chunk, rep, trial)
)

// mix64 is the splitmix64 finalizer: a bijective avalanche mix whose
// output on a counter sequence is statistically indistinguishable from
// uniform — the standard construction for counter-based RNG streams.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Measurer performs side-channel timing measurements against a
// simulated system. Measurement noise is deterministic per seed: batch
// APIs (SpoilerSweep, ClusterByBank) index their noise by measurement
// position and are safe to parallelize; the single-pair APIs
// (RowConflictCycles, SameBank) consume a sequential counter and must
// be called from one goroutine.
type Measurer struct {
	sys  *memsys.System
	seed uint64
	ctr  uint64
}

// NewMeasurer builds a measurer for sys.
func NewMeasurer(sys *memsys.System, seed int64) *Measurer {
	return &Measurer{sys: sys, seed: uint64(seed)}
}

// gaussFrom returns an approximately standard-normal sample that is a
// pure function of (base, c). The variate is an Irwin–Hall sum of three
// uniforms drawn from one splitmix64 output — unit variance, bounded
// tails, and roughly 20× cheaper than Box–Muller, which matters because
// bank clustering draws half a million samples per profiling run.
func gaussFrom(base, c uint64) float64 {
	h := mix64(base ^ c*0x9E3779B97F4A7C15)
	const inv = 1.0 / (1 << 21)
	s := float64(h&0x1FFFFF)*inv + float64((h>>21)&0x1FFFFF)*inv + float64(h>>43)*inv
	return (s - 1.5) * 2
}

// keyBase folds the measurement coordinates (stream, a, b) into the
// hash base consumed by gaussFrom. Callers that vary only the trial
// counter c precompute this once per measurement site.
func (m *Measurer) keyBase(stream, a, b uint64) uint64 {
	return m.seed ^ mix64(stream)<<1 ^ mix64(a) ^ mix64(b)*3
}

// gauss draws the sample keyed by the full coordinate tuple.
func (m *Measurer) gauss(stream, a, b, c uint64) float64 {
	return gaussFrom(m.keyBase(stream, a, b), c)
}

// noise draws from the sequential pair stream.
func (m *Measurer) noise(sigma float64) float64 {
	m.ctr++
	return m.gauss(streamPair, m.ctr, 0, 0) * sigma
}

// conflictMean returns the mean access latency for a bank/row pair.
func conflictMean(la, lb dram.Loc) float64 {
	if la.Bank == lb.Bank && la.Row != lb.Row {
		return ConflictCycles
	}
	return BaseCycles
}

// RowConflictCycles measures the access-time for the pair (va, vb) in
// process p: alternating reads of two same-bank, different-row
// addresses keep evicting the row buffer and run ~100 cycles slower.
func (m *Measurer) RowConflictCycles(p *memsys.Process, va, vb int) (float64, error) {
	pa, err := p.Translate(va)
	if err != nil {
		return 0, fmt.Errorf("sidechan: %w", err)
	}
	pb, err := p.Translate(vb)
	if err != nil {
		return 0, fmt.Errorf("sidechan: %w", err)
	}
	geom := m.sys.Module().Geometry()
	return conflictMean(geom.LocOf(pa), geom.LocOf(pb)) + m.noise(8), nil
}

// SameBank decides bank co-location from the median of several
// measurements.
func (m *Measurer) SameBank(p *memsys.Process, va, vb int) (bool, error) {
	const trials = 7
	ts := make([]float64, trials)
	for i := range ts {
		t, err := m.RowConflictCycles(p, va, vb)
		if err != nil {
			return false, err
		}
		ts[i] = t
	}
	sort.Float64s(ts)
	return ts[trials/2] > (BaseCycles+ConflictCycles)/2, nil
}

// SpoilerSweep measures the SPOILER store-load hazard timing for every
// page of the buffer at base. Pages whose frame number aliases the
// first page's frame (mod 256) show a peak. The sweep is measured in
// parallel batches over the worker pool; the per-page noise is indexed
// by page position, so the returned timings are identical at any
// worker count.
func (m *Measurer) SpoilerSweep(p *memsys.Process, base, pages int) ([]float64, error) {
	if pages <= 0 {
		return nil, fmt.Errorf("sidechan: non-positive page count %d", pages)
	}
	f0, err := p.FrameOf(base)
	if err != nil {
		return nil, fmt.Errorf("sidechan: %w", err)
	}
	a0 := f0 % SpoilerAlias
	out := make([]float64, pages)
	// Per-page noise key: only the page index varies, so fold the
	// stream and unused coordinates into the base once.
	pageBase := m.seed ^ mix64(streamSpoiler)<<1 ^ mix64(0)*3
	var mu sync.Mutex
	var firstErr error
	tensor.ParallelChunks(pages, tensor.MaxWorkers(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f, err := p.FrameOf(base + i*memsys.PageSize)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			mean := float64(BaseCycles)
			if f%SpoilerAlias == a0 {
				mean = SpoilerPeakCycles
			}
			out[i] = mean + gaussFrom(pageBase^mix64(uint64(i)), 0)*15
		}
	})
	if firstErr != nil {
		return nil, fmt.Errorf("sidechan: %w", firstErr)
	}
	return out, nil
}

// Run is a detected physically contiguous region of a buffer, in pages.
type Run struct {
	// StartPage is the first buffer page of the run.
	StartPage int
	// Pages is the run length.
	Pages int
}

// DetectContiguousRuns interprets a SPOILER sweep: peaks spaced exactly
// `alias` pages apart indicate physical contiguity. It returns maximal
// runs covering consecutive equal-spaced peaks. The conservative bound
// extends each run from its first peak to one alias period past its
// last peak (clamped to the buffer).
func DetectContiguousRuns(timings []float64, alias int) []Run {
	threshold := float64(BaseCycles+SpoilerPeakCycles) / 2
	var peaks []int
	for i, t := range timings {
		if t > threshold {
			peaks = append(peaks, i)
		}
	}
	var runs []Run
	i := 0
	for i < len(peaks) {
		j := i
		for j+1 < len(peaks) && peaks[j+1]-peaks[j] == alias {
			j++
		}
		if j > i { // at least two aligned peaks
			start := peaks[i]
			end := peaks[j] + alias
			if end > len(timings) {
				end = len(timings)
			}
			runs = append(runs, Run{StartPage: start, Pages: end - start})
		}
		i = j + 1
	}
	return runs
}

// sameBankAt is the batch-indexed twin of SameBank: the median of 7
// trials whose noise is keyed by the (chunk index, representative
// index) pair being compared, not by issue order.
//
// The per-trial noise is hard-bounded: gaussFrom returns an Irwin–Hall
// variate in (−3, 3), scaled here by 8 cycles. Whenever the conflict
// mean sits farther than that 24-cycle bound from the vote threshold —
// always true for the current 100-cycle conflict margin — no trial, and
// hence no median, can cross the threshold, so the vote is returned
// without drawing. The draws are pure functions of (i, rep, trial) with
// no other consumer, so skipping them is bit-identical; clustering a
// multi-GB buffer drops ~10⁸ gaussian draws this way.
func (m *Measurer) sameBankAt(locs []dram.Loc, i, rep int) bool {
	const trials = 7
	const noiseBound = 3 * 8
	const threshold = (BaseCycles + ConflictCycles) / 2
	mean := conflictMean(locs[i], locs[rep])
	if mean-noiseBound > threshold {
		return true
	}
	if mean+noiseBound <= threshold {
		return false
	}
	base := m.keyBase(streamCluster, uint64(i), uint64(rep))
	var ts [trials]float64
	for t := 0; t < trials; t++ {
		v := mean + gaussFrom(base, uint64(t))*8
		// Insertion sort keeps the batch path allocation-free.
		k := t
		for k > 0 && ts[k-1] > v {
			ts[k] = ts[k-1]
			k--
		}
		ts[k] = v
	}
	return ts[trials/2] > (BaseCycles+ConflictCycles)/2
}

// ClusterByBank groups the given page-aligned virtual addresses into
// same-bank clusters using row-conflict measurements. Addresses are
// translated once up front; then each round promotes the first
// unplaced address to a new cluster representative and measures every
// remaining address against it as one parallel batch (7 trials each,
// median vote). The number of rounds equals the number of banks
// touched, and because the per-comparison noise is indexed by the
// (address, representative) pair, the clustering is bit-identical at
// any worker count.
func (m *Measurer) ClusterByBank(p *memsys.Process, vaddrs []int) ([][]int, error) {
	n := len(vaddrs)
	if n == 0 {
		return nil, nil
	}
	geom := m.sys.Module().Geometry()
	locs := make([]dram.Loc, n)
	for i, va := range vaddrs {
		pa, err := p.Translate(va)
		if err != nil {
			return nil, fmt.Errorf("sidechan: %w", err)
		}
		locs[i] = geom.LocOf(pa)
	}

	unplaced := make([]int, n)
	for i := range unplaced {
		unplaced[i] = i
	}
	same := make([]bool, n)
	var clusters [][]int
	for len(unplaced) > 0 {
		rep := unplaced[0]
		rest := unplaced[1:]
		tensor.ParallelChunks(len(rest), tensor.MaxWorkers(), func(lo, hi int) {
			for k := lo; k < hi; k++ {
				same[rest[k]] = m.sameBankAt(locs, rest[k], rep)
			}
		})
		cluster := []int{vaddrs[rep]}
		next := unplaced[:0]
		for _, i := range rest {
			if same[i] {
				cluster = append(cluster, vaddrs[i])
			} else {
				next = append(next, i)
			}
		}
		clusters = append(clusters, cluster)
		unplaced = next
	}
	return clusters, nil
}

// BankOfOracle exposes the true bank of a virtual address for test
// validation; attack code must not use it.
func BankOfOracle(sys *memsys.System, p *memsys.Process, va int) (int, error) {
	pa, err := p.Translate(va)
	if err != nil {
		return 0, err
	}
	return sys.Module().Geometry().LocOf(pa).Bank, nil
}
