// Package sidechan models the two timing side channels the attack's
// memory templating uses (§IV-A1, Appendix B/C):
//
//   - SPOILER: speculative store-load hazards in Intel processors leak
//     the low 8 bits of page frame numbers, so a sweep over a virtual
//     buffer shows timing peaks every 256 pages wherever the underlying
//     physical memory is contiguous (Figure 11).
//   - Row-buffer conflict: two accesses that hit the same DRAM bank but
//     different rows evict each other from the row buffer and take ~400
//     cycles instead of ~300 (Figure 12), revealing bank co-location.
//
// The measured quantities are produced by a latency model over the
// simulated physical address space; attacker code consumes only the
// timings, never the hidden virtual→physical mapping.
package sidechan

import (
	"fmt"
	"sort"

	"rowhammer/internal/memsys"
	"rowhammer/internal/tensor"
)

// Latency model constants (cycles).
const (
	// BaseCycles is the access latency without any conflict.
	BaseCycles = 300
	// ConflictCycles is the same-bank different-row penalty target
	// (~400 cycles in Figure 12).
	ConflictCycles = 400
	// SpoilerPeakCycles is the store-load hazard penalty on 1 MB
	// aliasing (Figure 11 peaks).
	SpoilerPeakCycles = 550
	// SpoilerAlias is the page-frame aliasing period SPOILER resolves
	// (8 bits of the PFN → 256 pages = 1 MB).
	SpoilerAlias = 256
)

// Measurer performs side-channel timing measurements against a
// simulated system. Measurement noise is deterministic per seed.
type Measurer struct {
	sys *memsys.System
	rng *tensor.RNG
}

// NewMeasurer builds a measurer for sys.
func NewMeasurer(sys *memsys.System, seed int64) *Measurer {
	return &Measurer{sys: sys, rng: tensor.NewRNG(seed)}
}

func (m *Measurer) noise(sigma float64) float64 {
	return m.rng.NormFloat64() * sigma
}

// RowConflictCycles measures the access-time for the pair (va, vb) in
// process p: alternating reads of two same-bank, different-row
// addresses keep evicting the row buffer and run ~100 cycles slower.
func (m *Measurer) RowConflictCycles(p *memsys.Process, va, vb int) (float64, error) {
	pa, err := p.Translate(va)
	if err != nil {
		return 0, fmt.Errorf("sidechan: %w", err)
	}
	pb, err := p.Translate(vb)
	if err != nil {
		return 0, fmt.Errorf("sidechan: %w", err)
	}
	geom := m.sys.Module().Geometry()
	la, lb := geom.LocOf(pa), geom.LocOf(pb)
	mean := float64(BaseCycles)
	if la.Bank == lb.Bank && la.Row != lb.Row {
		mean = ConflictCycles
	}
	return mean + m.noise(8), nil
}

// SameBank decides bank co-location from the median of several
// measurements.
func (m *Measurer) SameBank(p *memsys.Process, va, vb int) (bool, error) {
	const trials = 7
	ts := make([]float64, trials)
	for i := range ts {
		t, err := m.RowConflictCycles(p, va, vb)
		if err != nil {
			return false, err
		}
		ts[i] = t
	}
	sort.Float64s(ts)
	return ts[trials/2] > (BaseCycles+ConflictCycles)/2, nil
}

// SpoilerSweep measures the SPOILER store-load hazard timing for every
// page of the buffer at base. Pages whose frame number aliases the
// first page's frame (mod 256) show a peak.
func (m *Measurer) SpoilerSweep(p *memsys.Process, base, pages int) ([]float64, error) {
	if pages <= 0 {
		return nil, fmt.Errorf("sidechan: non-positive page count %d", pages)
	}
	f0, err := p.FrameOf(base)
	if err != nil {
		return nil, fmt.Errorf("sidechan: %w", err)
	}
	out := make([]float64, pages)
	for i := 0; i < pages; i++ {
		f, err := p.FrameOf(base + i*memsys.PageSize)
		if err != nil {
			return nil, fmt.Errorf("sidechan: %w", err)
		}
		mean := float64(BaseCycles)
		if f%SpoilerAlias == f0%SpoilerAlias {
			mean = SpoilerPeakCycles
		}
		out[i] = mean + m.noise(15)
	}
	return out, nil
}

// Run is a detected physically contiguous region of a buffer, in pages.
type Run struct {
	// StartPage is the first buffer page of the run.
	StartPage int
	// Pages is the run length.
	Pages int
}

// DetectContiguousRuns interprets a SPOILER sweep: peaks spaced exactly
// `alias` pages apart indicate physical contiguity. It returns maximal
// runs covering consecutive equal-spaced peaks. The conservative bound
// extends each run from its first peak to one alias period past its
// last peak (clamped to the buffer).
func DetectContiguousRuns(timings []float64, alias int) []Run {
	threshold := float64(BaseCycles+SpoilerPeakCycles) / 2
	var peaks []int
	for i, t := range timings {
		if t > threshold {
			peaks = append(peaks, i)
		}
	}
	var runs []Run
	i := 0
	for i < len(peaks) {
		j := i
		for j+1 < len(peaks) && peaks[j+1]-peaks[j] == alias {
			j++
		}
		if j > i { // at least two aligned peaks
			start := peaks[i]
			end := peaks[j] + alias
			if end > len(timings) {
				end = len(timings)
			}
			runs = append(runs, Run{StartPage: start, Pages: end - start})
		}
		i = j + 1
	}
	return runs
}

// ClusterByBank groups the given page-aligned virtual addresses into
// same-bank clusters using row-conflict measurements: each address is
// compared against one representative per existing cluster. The number
// of clusters equals the number of banks touched.
func (m *Measurer) ClusterByBank(p *memsys.Process, vaddrs []int) ([][]int, error) {
	var clusters [][]int
	for _, va := range vaddrs {
		placed := false
		for ci := range clusters {
			same, err := m.SameBank(p, va, clusters[ci][0])
			if err != nil {
				return nil, err
			}
			if same {
				clusters[ci] = append(clusters[ci], va)
				placed = true
				break
			}
		}
		if !placed {
			clusters = append(clusters, []int{va})
		}
	}
	return clusters, nil
}

// BankOfOracle exposes the true bank of a virtual address for test
// validation; attack code must not use it.
func BankOfOracle(sys *memsys.System, p *memsys.Process, va int) (int, error) {
	pa, err := p.Translate(va)
	if err != nil {
		return 0, err
	}
	return sys.Module().Geometry().LocOf(pa).Bank, nil
}
