package sidechan

import (
	"fmt"
	"testing"

	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
	"rowhammer/internal/tensor"
)

func benchSys(b *testing.B, pages int) (*memsys.System, *memsys.Process, int) {
	b.Helper()
	mod, err := dram.NewModuleForSize(
		pages*memsys.PageSize+(8<<20), dram.PaperDDR3(), 3)
	if err != nil {
		b.Fatal(err)
	}
	sys := memsys.NewSystem(mod)
	p := sys.NewProcess()
	base, err := p.Mmap(pages)
	if err != nil {
		b.Fatal(err)
	}
	return sys, p, base
}

// BenchmarkSpoilerSweep measures the per-page SPOILER timing sweep over
// a 128 MB buffer — the contiguity-verification step of templating.
func BenchmarkSpoilerSweep(b *testing.B) {
	const pages = 32768
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("pages%d/workers%d", pages, workers), func(b *testing.B) {
			prev := tensor.SetMaxWorkers(workers)
			defer tensor.SetMaxWorkers(prev)
			sys, p, base := benchSys(b, pages)
			m := NewMeasurer(sys, 3)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.SpoilerSweep(p, base, pages); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClusterByBank measures row-buffer-conflict bank clustering of
// every 8 KB row chunk of a 64 MB buffer (16384 pages → 8192 chunks).
func BenchmarkClusterByBank(b *testing.B) {
	const pages = 16384
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("chunks%d/workers%d", pages/2, workers), func(b *testing.B) {
			prev := tensor.SetMaxWorkers(workers)
			defer tensor.SetMaxWorkers(prev)
			sys, p, base := benchSys(b, pages)
			m := NewMeasurer(sys, 3)
			chunks := make([]int, pages/2)
			for i := range chunks {
				chunks[i] = base + i*dram.RowBytes
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clusters, err := m.ClusterByBank(p, chunks)
				if err != nil {
					b.Fatal(err)
				}
				if len(clusters) != 16 {
					b.Fatalf("got %d clusters", len(clusters))
				}
			}
		})
	}
}
