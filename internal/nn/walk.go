package nn

// Walk visits every layer in the graph rooted at l, depth-first,
// descending into the known container types (Sequential, Residual).
func Walk(l Layer, visit func(Layer)) {
	if l == nil {
		return
	}
	visit(l)
	switch v := l.(type) {
	case *Sequential:
		for _, child := range v.layers {
			Walk(child, visit)
		}
	case *Residual:
		Walk(v.Main, visit)
		if v.Shortcut != nil {
			Walk(v.Shortcut, visit)
		}
	}
}

// FreezeBatchNorm puts every BatchNorm2D in the graph into frozen-stats
// mode: training-mode forwards normalize with the running statistics
// instead of batch statistics. This is how the attack fine-tunes a
// deployed model — inference-time behavior must not drift while weights
// are perturbed.
func FreezeBatchNorm(l Layer) {
	Walk(l, func(x Layer) {
		if bn, ok := x.(*BatchNorm2D); ok {
			bn.Frozen = true
		}
	})
}
