package nn

import (
	"math"

	"rowhammer/internal/tensor"
)

// Softmax writes the row-wise softmax of logits (N, K) into a new
// tensor.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	n, k := logits.Dim(0), logits.Dim(1)
	out := tensor.New(n, k)
	ld, od := logits.Data(), out.Data()
	for i := 0; i < n; i++ {
		row := ld[i*k : (i+1)*k]
		dst := od[i*k : (i+1)*k]
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - m))
			dst[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range dst {
			dst[j] *= inv
		}
	}
	return out
}

// CrossEntropy computes the mean cross-entropy loss of logits (N, K)
// against integer labels, and the gradient dLoss/dLogits, optionally
// scaled by weight (used for the α-blended attack objective of Eq. 3).
func CrossEntropy(logits *tensor.Tensor, labels []int, weight float32) (loss float32, grad *tensor.Tensor) {
	n := logits.Dim(0)
	grad = tensor.New(logits.Shape()...)
	total := CrossEntropyInto(grad, logits, labels, weight, n)
	return weight * float32(total) / float32(n), grad
}

// CrossEntropyInto is the allocation-free core of CrossEntropy: it
// writes dLoss/dLogits into grad (same shape as logits) scaled by
// weight/denom, and returns the raw float64 sum of per-row negative log
// likelihoods (unweighted, undivided). Passing denom == N reproduces
// CrossEntropy bit for bit. The data-parallel trainer feeds per-shard
// logits with denom set to the FULL batch size: because softmax rows
// are independent, the per-row gradients are then bit-identical to the
// full-batch computation regardless of how the batch is sharded.
func CrossEntropyInto(grad, logits *tensor.Tensor, labels []int, weight float32, denom int) float64 {
	n, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic("nn: label count does not match batch size")
	}
	if grad.Len() != logits.Len() {
		panic("nn: gradient buffer size does not match logits")
	}
	ld, gd := logits.Data(), grad.Data()
	var total float64
	invN := weight / float32(denom)
	for i := 0; i < n; i++ {
		row := ld[i*k : (i+1)*k]
		dst := gd[i*k : (i+1)*k]
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - m))
			dst[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range dst {
			dst[j] *= inv
		}
		y := labels[i]
		p := dst[y]
		if p < 1e-12 {
			p = 1e-12
		}
		total += -math.Log(float64(p))
		for j := range dst {
			dst[j] *= invN
		}
		dst[y] -= invN
	}
	return total
}

// CrossEntropyLoss computes the same weighted mean cross-entropy as
// CrossEntropy without materializing the gradient — the forward-only
// evaluation the offline attack's candidate scorer performs thousands of
// times. The per-row arithmetic (float64 exp-sum, float32 inverse and
// probability, the 1e-12 clamp) mirrors CrossEntropyInto exactly so the
// two paths agree bit for bit.
func CrossEntropyLoss(logits *tensor.Tensor, labels []int, weight float32) float32 {
	n, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic("nn: label count does not match batch size")
	}
	ld := logits.Data()
	var total float64
	for i := 0; i < n; i++ {
		row := ld[i*k : (i+1)*k]
		total += RowNLL(row, labels[i])
	}
	return weight * float32(total) / float32(n)
}

// RowNLL returns the negative log likelihood of class y under the
// softmax of one logit row, with CrossEntropyInto's exact float
// discipline: exponentials accumulate in float64 but are stored through
// float32 before the float32 inverse-sum multiply. Exported so callers
// holding logits in non-row-major layouts (the quantized engine's
// channel-major activations) can reuse the bit-exact row loss.
func RowNLL(row []float32, y int) float64 {
	m := row[0]
	for _, v := range row[1:] {
		if v > m {
			m = v
		}
	}
	var sum float64
	for _, v := range row {
		sum += math.Exp(float64(v - m))
	}
	inv := float32(1 / sum)
	p := float32(math.Exp(float64(row[y]-m))) * inv
	if p < 1e-12 {
		p = 1e-12
	}
	return -math.Log(float64(p))
}

// Accuracy returns the fraction of rows in logits whose argmax equals
// the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n := logits.Dim(0)
	correct := 0
	for i := 0; i < n; i++ {
		if logits.ArgMaxRow(i) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
