package nn

import (
	"math"
	"testing"

	"rowhammer/internal/tensor"
)

// numericalGrad estimates a derivative via central differences around
// the value pointed to by v. It reports ok=false when the loss surface
// has a kink at this point (e.g. a max-pool argmax flip), where finite
// differences are meaningless.
func numericalGrad(f func() float32, v *float32) (grad float32, ok bool) {
	const h = 1e-3
	orig := *v
	f0 := f()
	*v = orig + h
	lp := f()
	*v = orig - h
	lm := f()
	*v = orig
	grad = (lp - lm) / (2 * h)
	// Kink detector: for a smooth function the forward and backward
	// one-sided slopes agree to O(h); at a kink they differ by O(1).
	fwd := (lp - f0) / h
	bwd := (f0 - lm) / h
	denom := math.Abs(float64(fwd)) + math.Abs(float64(bwd)) + 1e-3
	ok = math.Abs(float64(fwd-bwd))/denom < 0.1
	return grad, ok
}

// lossOf runs a forward pass and the cross-entropy loss.
func lossOf(l Layer, x *tensor.Tensor, labels []int) float32 {
	out := l.Forward(x, true)
	n := out.Dim(0)
	flat := out.Reshape(n, out.Len()/n)
	loss, _ := CrossEntropy(flat, labels, 1)
	return loss
}

// backprop computes analytic parameter gradients for the same loss.
func backprop(l Layer, x *tensor.Tensor, labels []int) *tensor.Tensor {
	for _, p := range l.Params() {
		p.G.Zero()
	}
	out := l.Forward(x, true)
	n := out.Dim(0)
	flat := out.Reshape(n, out.Len()/n)
	_, grad := CrossEntropy(flat, labels, 1)
	return l.Backward(grad.Reshape(out.Shape()...))
}

func checkParamGrads(t *testing.T, l Layer, x *tensor.Tensor, labels []int, tol float64) {
	t.Helper()
	gradIn := backprop(l, x, labels)
	checked := 0
	for _, p := range l.Params() {
		n := p.W.Len()
		stride := 1
		if n > 24 {
			stride = n / 24
		}
		for idx := 0; idx < n; idx += stride {
			want, ok := numericalGrad(func() float32 { return lossOf(l, x, labels) }, &p.W.Data()[idx])
			if !ok {
				continue // finite differences unreliable at a kink
			}
			checked++
			got := p.G.Data()[idx]
			if math.Abs(float64(got-want)) > tol*(1+math.Abs(float64(want))) {
				t.Fatalf("param %s[%d]: analytic %v vs numeric %v", p.Name, idx, got, want)
			}
		}
	}
	// Input gradient check on a few entries.
	n := x.Len()
	stride := 1
	if n > 12 {
		stride = n / 12
	}
	for idx := 0; idx < n; idx += stride {
		want, ok := numericalGrad(func() float32 { return lossOf(l, x, labels) }, &x.Data()[idx])
		if !ok {
			continue
		}
		checked++
		got := gradIn.Data()[idx]
		if math.Abs(float64(got-want)) > tol*(1+math.Abs(float64(want))) {
			t.Fatalf("input grad[%d]: analytic %v vs numeric %v", idx, got, want)
		}
	}
	if checked == 0 {
		t.Fatal("gradient check skipped every index")
	}
}

func TestLinearGradients(t *testing.T) {
	rng := tensor.NewRNG(1)
	l := NewLinear("fc", rng, 6, 4)
	x := tensor.New(3, 6)
	rng.FillNormal(x, 0, 1)
	checkParamGrads(t, l, x, []int{0, 2, 3}, 2e-2)
}

func TestConvGradients(t *testing.T) {
	rng := tensor.NewRNG(2)
	net := NewSequential(
		NewConv2D("conv", rng, 2, 3, 3, 1, 1, true),
		NewFlatten(),
		NewLinear("fc", rng, 3*5*5, 4),
	)
	x := tensor.New(2, 2, 5, 5)
	rng.FillNormal(x, 0, 1)
	checkParamGrads(t, net, x, []int{1, 3}, 3e-2)
}

func TestConvStride2Gradients(t *testing.T) {
	rng := tensor.NewRNG(3)
	net := NewSequential(
		NewConv2D("conv", rng, 2, 2, 3, 2, 1, false),
		NewFlatten(),
		NewLinear("fc", rng, 2*3*3, 3),
	)
	x := tensor.New(2, 2, 6, 6)
	rng.FillNormal(x, 0, 1)
	checkParamGrads(t, net, x, []int{0, 2}, 3e-2)
}

func TestBatchNormGradients(t *testing.T) {
	rng := tensor.NewRNG(4)
	net := NewSequential(
		NewBatchNorm2D("bn", 3),
		NewFlatten(),
		NewLinear("fc", rng, 3*4*4, 3),
	)
	x := tensor.New(4, 3, 4, 4)
	rng.FillNormal(x, 1, 2)
	checkParamGrads(t, net, x, []int{0, 1, 2, 0}, 5e-2)
}

func TestReLUGradients(t *testing.T) {
	rng := tensor.NewRNG(5)
	net := NewSequential(
		NewLinear("fc1", rng, 5, 8),
		NewReLU(),
		NewLinear("fc2", rng, 8, 3),
	)
	x := tensor.New(3, 5)
	rng.FillNormal(x, 0, 1)
	checkParamGrads(t, net, x, []int{0, 1, 2}, 2e-2)
}

func TestMaxPoolGradients(t *testing.T) {
	rng := tensor.NewRNG(6)
	net := NewSequential(
		NewConv2D("conv", rng, 1, 2, 3, 1, 1, true),
		NewMaxPool2D(2, 2),
		NewFlatten(),
		NewLinear("fc", rng, 2*3*3, 3),
	)
	x := tensor.New(2, 1, 6, 6)
	rng.FillNormal(x, 0, 1)
	checkParamGrads(t, net, x, []int{0, 2}, 3e-2)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	rng := tensor.NewRNG(7)
	net := NewSequential(
		NewConv2D("conv", rng, 2, 3, 3, 1, 1, false),
		NewGlobalAvgPool(),
		NewLinear("fc", rng, 3, 4),
	)
	x := tensor.New(2, 2, 5, 5)
	rng.FillNormal(x, 0, 1)
	checkParamGrads(t, net, x, []int{0, 3}, 3e-2)
}

func TestResidualIdentityGradients(t *testing.T) {
	rng := tensor.NewRNG(8)
	main := NewSequential(
		NewConv2D("c1", rng, 2, 2, 3, 1, 1, false),
		NewBatchNorm2D("bn1", 2),
		NewReLU(),
		NewConv2D("c2", rng, 2, 2, 3, 1, 1, false),
		NewBatchNorm2D("bn2", 2),
	)
	net := NewSequential(
		NewResidual(main, nil),
		NewGlobalAvgPool(),
		NewLinear("fc", rng, 2, 3),
	)
	x := tensor.New(3, 2, 4, 4)
	rng.FillNormal(x, 0, 1)
	checkParamGrads(t, net, x, []int{0, 1, 2}, 6e-2)
}

func TestResidualDownsampleGradients(t *testing.T) {
	rng := tensor.NewRNG(9)
	main := NewSequential(
		NewConv2D("c1", rng, 2, 4, 3, 2, 1, false),
		NewBatchNorm2D("bn1", 4),
		NewReLU(),
		NewConv2D("c2", rng, 4, 4, 3, 1, 1, false),
		NewBatchNorm2D("bn2", 4),
	)
	short := NewSequential(
		NewConv2D("sc", rng, 2, 4, 1, 2, 0, false),
		NewBatchNorm2D("sbn", 4),
	)
	net := NewSequential(
		NewResidual(main, short),
		NewGlobalAvgPool(),
		NewLinear("fc", rng, 4, 3),
	)
	x := tensor.New(3, 2, 4, 4)
	rng.FillNormal(x, 0, 1)
	checkParamGrads(t, net, x, []int{0, 1, 2}, 6e-2)
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := tensor.NewRNG(10)
	logits := tensor.New(5, 7)
	rng.FillNormal(logits, 0, 3)
	p := Softmax(logits)
	for i := 0; i < 5; i++ {
		var s float64
		for j := 0; j < 7; j++ {
			s += float64(p.At(i, j))
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestCrossEntropyKnownValue(t *testing.T) {
	logits := tensor.FromSlice([]float32{0, 0}, 1, 2)
	loss, grad := CrossEntropy(logits, []int{0}, 1)
	if math.Abs(float64(loss)-math.Log(2)) > 1e-5 {
		t.Fatalf("loss = %v, want ln2", loss)
	}
	if math.Abs(float64(grad.At(0, 0))+0.5) > 1e-5 || math.Abs(float64(grad.At(0, 1))-0.5) > 1e-5 {
		t.Fatalf("grad = %v", grad.Data())
	}
}

func TestCrossEntropyWeightScales(t *testing.T) {
	rng := tensor.NewRNG(11)
	logits := tensor.New(3, 4)
	rng.FillNormal(logits, 0, 1)
	labels := []int{1, 2, 0}
	l1, g1 := CrossEntropy(logits, labels, 1)
	l2, g2 := CrossEntropy(logits, labels, 0.25)
	if math.Abs(float64(l1*0.25-l2)) > 1e-5 {
		t.Fatalf("weighted loss %v vs %v", l1*0.25, l2)
	}
	for i := range g1.Data() {
		if math.Abs(float64(g1.Data()[i]*0.25-g2.Data()[i])) > 1e-6 {
			t.Fatal("weighted grads do not scale")
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		1, 0, 0,
		0, 5, 0,
		0, 0, 2,
	}, 3, 3)
	if got := Accuracy(logits, []int{0, 1, 0}); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("Accuracy = %v", got)
	}
}

func TestSGDStepMovesDownhill(t *testing.T) {
	rng := tensor.NewRNG(12)
	net := NewSequential(NewLinear("fc", rng, 4, 3))
	m := NewModel("toy", net, 3, [3]int{1, 2, 2})
	x := tensor.New(8, 4)
	rng.FillNormal(x, 0, 1)
	labels := []int{0, 1, 2, 0, 1, 2, 0, 1}
	opt := NewSGD(m.Params(), 0.1, 0.9, 0)
	first := lossOf(net, x, labels)
	loss := first
	for i := 0; i < 30; i++ {
		m.ZeroGrad()
		out := m.Forward(x, true)
		var grad *tensor.Tensor
		loss, grad = CrossEntropy(out, labels, 1)
		m.Backward(grad)
		opt.Step()
	}
	if loss >= first {
		t.Fatalf("SGD did not reduce loss: %v -> %v", first, loss)
	}
}

func TestAdamStepMovesDownhill(t *testing.T) {
	rng := tensor.NewRNG(13)
	net := NewSequential(NewLinear("fc", rng, 4, 3))
	m := NewModel("toy", net, 3, [3]int{1, 2, 2})
	x := tensor.New(8, 4)
	rng.FillNormal(x, 0, 1)
	labels := []int{0, 1, 2, 0, 1, 2, 0, 1}
	opt := NewAdam(m.Params(), 0.05)
	first := lossOf(net, x, labels)
	loss := first
	for i := 0; i < 30; i++ {
		m.ZeroGrad()
		out := m.Forward(x, true)
		var grad *tensor.Tensor
		loss, grad = CrossEntropy(out, labels, 1)
		m.Backward(grad)
		opt.Step()
	}
	if loss >= first {
		t.Fatalf("Adam did not reduce loss: %v -> %v", first, loss)
	}
}

func TestModelFlattenLoadRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(14)
	net := NewSequential(
		NewConv2D("conv", rng, 1, 2, 3, 1, 1, true),
		NewFlatten(),
		NewLinear("fc", rng, 2*4*4, 3),
	)
	m := NewModel("toy", net, 3, [3]int{1, 4, 4})
	flat := m.FlattenParams()
	if len(flat) != m.NumParams() {
		t.Fatalf("flat len %d != %d", len(flat), m.NumParams())
	}
	flat[0] = 123
	if err := m.LoadFlatParams(flat); err != nil {
		t.Fatal(err)
	}
	if m.Params()[0].W.Data()[0] != 123 {
		t.Fatal("LoadFlatParams did not write through")
	}
	if err := m.LoadFlatParams(flat[:len(flat)-1]); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	rng := tensor.NewRNG(15)
	bn := NewBatchNorm2D("bn", 2)
	x := tensor.New(8, 2, 3, 3)
	rng.FillNormal(x, 5, 2)
	for i := 0; i < 50; i++ {
		bn.Forward(x, true)
	}
	out := bn.Forward(x, false)
	// After convergence of running stats, eval output should be roughly
	// normalized: near zero mean.
	var s float64
	for _, v := range out.Data() {
		s += float64(v)
	}
	mean := s / float64(out.Len())
	if math.Abs(mean) > 0.2 {
		t.Fatalf("eval batchnorm mean = %v, want ~0", mean)
	}
}

func TestBatchNormParamsExcludeRunningStats(t *testing.T) {
	bn := NewBatchNorm2D("bn", 4)
	if got := len(bn.Params()); got != 2 {
		t.Fatalf("BatchNorm exposes %d params, want 2 (gamma, beta)", got)
	}
}

func TestSequentialParamOrderIsDeterministic(t *testing.T) {
	rng := tensor.NewRNG(16)
	build := func() *Model {
		r := tensor.NewRNG(99)
		net := NewSequential(
			NewConv2D("conv1", r, 1, 2, 3, 1, 1, false),
			NewBatchNorm2D("bn1", 2),
			NewReLU(),
			NewFlatten(),
			NewLinear("fc", r, 2*4*4, 3),
		)
		return NewModel("toy", net, 3, [3]int{1, 4, 4})
	}
	_ = rng
	a, b := build(), build()
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		t.Fatal("param counts differ")
	}
	for i := range pa {
		if pa[i].Name != pb[i].Name {
			t.Fatalf("param order differs at %d: %s vs %s", i, pa[i].Name, pb[i].Name)
		}
	}
}

func TestFrozenBatchNormGradients(t *testing.T) {
	rng := tensor.NewRNG(17)
	bn := NewBatchNorm2D("bn", 3)
	// Give the running stats non-trivial values first.
	warm := tensor.New(6, 3, 4, 4)
	rng.FillNormal(warm, 2, 1.5)
	for i := 0; i < 30; i++ {
		bn.Forward(warm, true)
	}
	bn.Frozen = true
	net := NewSequential(
		bn,
		NewFlatten(),
		NewLinear("fc", rng, 3*4*4, 3),
	)
	x := tensor.New(4, 3, 4, 4)
	rng.FillNormal(x, 2, 1.5)
	checkParamGrads(t, net, x, []int{0, 1, 2, 0}, 5e-2)
}

func TestFrozenBatchNormDoesNotDriftStats(t *testing.T) {
	rng := tensor.NewRNG(18)
	bn := NewBatchNorm2D("bn", 2)
	bn.Frozen = true
	before := append([]float32(nil), bn.RunningMean...)
	x := tensor.New(4, 2, 3, 3)
	rng.FillNormal(x, 7, 2)
	bn.Forward(x, true)
	for i := range before {
		if bn.RunningMean[i] != before[i] {
			t.Fatal("frozen BN must not update running stats")
		}
	}
}

func TestFrozenBatchNormMatchesEvalForward(t *testing.T) {
	rng := tensor.NewRNG(19)
	bn := NewBatchNorm2D("bn", 2)
	warm := tensor.New(6, 2, 3, 3)
	rng.FillNormal(warm, 1, 2)
	for i := 0; i < 20; i++ {
		bn.Forward(warm, true)
	}
	bn.Frozen = true
	x := tensor.New(3, 2, 3, 3)
	rng.FillNormal(x, 1, 2)
	frozenOut := bn.Forward(x, true)
	evalOut := bn.Forward(x, false)
	for i := range frozenOut.Data() {
		d := frozenOut.Data()[i] - evalOut.Data()[i]
		if d > 1e-5 || d < -1e-5 {
			t.Fatal("frozen training forward must equal eval forward")
		}
	}
}

func TestWalkVisitsAllLayers(t *testing.T) {
	rng := tensor.NewRNG(20)
	main := NewSequential(
		NewConv2D("c1", rng, 2, 2, 3, 1, 1, false),
		NewBatchNorm2D("bn1", 2),
	)
	short := NewSequential(NewConv2D("sc", rng, 2, 2, 1, 1, 0, false))
	net := NewSequential(NewResidual(main, short), NewReLU())
	count := 0
	bns := 0
	Walk(net, func(l Layer) {
		count++
		if _, ok := l.(*BatchNorm2D); ok {
			bns++
		}
	})
	// net, residual, main-seq, c1, bn1, short-seq, sc, relu = 8.
	if count != 8 {
		t.Fatalf("Walk visited %d layers, want 8", count)
	}
	if bns != 1 {
		t.Fatalf("found %d batchnorms, want 1", bns)
	}
	FreezeBatchNorm(net)
	Walk(net, func(l Layer) {
		if bn, ok := l.(*BatchNorm2D); ok && !bn.Frozen {
			t.Fatal("FreezeBatchNorm missed a layer")
		}
	})
}
