package nn

import (
	"runtime"

	"rowhammer/internal/tensor"
)

// DefaultTrainShards is the fixed shard count of a Trainer when the
// caller does not choose one. The shard count — not the worker count —
// determines the floating-point summation geometry, so it deliberately
// defaults to a constant rather than NumCPU: the same computation run
// on any machine, at any worker count, produces bit-identical
// gradients. The default is a single shard, which reproduces the
// monolithic single-graph gradient exactly; callers opt into sharded
// summation geometry (and with it multi-core scaling) explicitly.
const DefaultTrainShards = 1

// Trainer is the data-parallel training engine. It shards each batch
// across structural replicas of a master model, runs forward+backward
// per shard on the persistent worker pool, and tree-reduces the
// per-replica gradients into the master's accumulators in fixed order.
//
// Determinism contract: for a fixed batch and fixed shard count, the
// accumulated master gradients, the returned loss, and the returned
// input gradient are bit-identical at any worker count (including 1).
// Shard geometry is a pure function of the batch size; each shard's
// arithmetic happens on a dedicated replica; every cross-shard
// combination (gradient tree reduction, loss summation, batch-norm
// statistic averaging) walks the shard index in fixed order.
//
// The master never runs a forward pass through the trainer — it is the
// single source of truth for weights and the accumulation target for
// gradients, so callers keep mutating master weights directly (masked
// sign-SGD updates, bit flips, optimizer steps) and the trainer resyncs
// the replicas at the start of every step.
type Trainer struct {
	Master *Model

	shards  int
	workers int

	masterParams []*Param
	masterBNs    []*BatchNorm2D
	replicas     []*replica

	inGradBuf *tensor.Tensor
	slots     [][]float32
}

// NewTrainer builds a trainer with the given shard count (values < 1
// select DefaultTrainShards). Replicas are constructed lazily on first
// use, so a Trainer over a model that is still being mutated costs
// nothing until the first step. The initial worker budget is the
// tensor kernel parallelism bound.
func NewTrainer(master *Model, shards int) *Trainer {
	if shards < 1 {
		shards = DefaultTrainShards
	}
	return &Trainer{
		Master:       master,
		shards:       shards,
		workers:      tensor.MaxWorkers(),
		masterParams: master.Params(),
		masterBNs:    collectBatchNorms(master.Root),
	}
}

// Shards returns the fixed shard count.
func (t *Trainer) Shards() int { return t.shards }

// SetWorkers bounds how many shards run concurrently. It affects
// scheduling only — never results (shard geometry is fixed by the shard
// count). Values below 1 clamp to 1; values above GOMAXPROCS clamp to
// GOMAXPROCS, since oversubscribing schedulable CPUs only adds
// scheduling overhead.
func (t *Trainer) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if g := runtime.GOMAXPROCS(0); n > g {
		n = g
	}
	t.workers = n
}

// ensureReplicas materializes the shard replicas on first use.
func (t *Trainer) ensureReplicas() {
	for len(t.replicas) < t.shards {
		t.replicas = append(t.replicas, newReplica(t.Master))
	}
}

// ForwardBackward runs one data-parallel forward+backward over the
// batch x (N,C,H,W) with the given integer labels, accumulating
// dLoss/dθ into the master's parameter gradients (like Model.Backward,
// it adds — call Master.ZeroGrad() to start a fresh step). weight
// scales the loss exactly as in CrossEntropy. It returns the weighted
// mean cross-entropy loss and the input gradient dLoss/dx; the
// returned tensor is owned by the trainer and valid until the next
// call.
func (t *Trainer) ForwardBackward(x *tensor.Tensor, labels []int, weight float32) (float32, *tensor.Tensor) {
	n := x.Dim(0)
	if len(labels) != n {
		panic("nn: label count does not match batch size")
	}
	t.ensureReplicas()

	sEff := t.shards
	if sEff > n {
		sEff = n
	}
	itemLen := x.Len() / n
	t.inGradBuf = tensor.Ensure(t.inGradBuf, x.Shape()...)
	inGrad := t.inGradBuf

	// Resync before every step: master weights may have been mutated
	// since the last call (sign-SGD update, bit flip, requantization).
	for s := 0; s < sEff; s++ {
		t.replicas[s].syncFrom(t.masterParams, t.masterBNs)
	}

	shape := x.Shape()
	// The outer call fans the shard indices out to the workers; each
	// shard's item range is derived from its index, a pure function of
	// (n, sEff).
	tensor.ParallelChunksIndexed(sEff, sEff, t.workers, func(idx, _, _ int) {
		lo := idx * n / sEff
		hi := (idx + 1) * n / sEff
		rep := t.replicas[idx]
		rep.model.ZeroGrad()
		xs := tensor.FromSlice(x.Data()[lo*itemLen:hi*itemLen], append([]int{hi - lo}, shape[1:]...)...)
		logits := rep.model.Forward(xs, true)
		rep.grad = tensor.Ensure(rep.grad, logits.Shape()...)
		rep.lossSum = CrossEntropyInto(rep.grad, logits, labels[lo:hi], weight, n)
		gin := rep.model.Backward(rep.grad)
		copy(inGrad.Data()[lo*itemLen:hi*itemLen], gin.Data())
	})

	// Fixed-order combination of the shard results.
	if cap(t.slots) < sEff {
		t.slots = make([][]float32, sEff)
	}
	slots := t.slots[:sEff]
	for j, mp := range t.masterParams {
		for s := 0; s < sEff; s++ {
			slots[s] = t.replicas[s].params[j].G.Data()
		}
		tensor.TreeReduceInto(mp.G.Data(), slots)
	}

	var total float64
	for s := 0; s < sEff; s++ {
		total += t.replicas[s].lossSum
	}

	// Unfrozen batch norm computes shard-local ("ghost") statistics;
	// fold the replicas' running stats back into the master as the
	// fixed-order average over the shards that ran.
	for bi, mbn := range t.masterBNs {
		if mbn.Frozen {
			continue
		}
		inv := 1 / float64(sEff)
		for ch := range mbn.RunningMean {
			var sm, sv float64
			for s := 0; s < sEff; s++ {
				rbn := t.replicas[s].bns[bi]
				sm += float64(rbn.RunningMean[ch])
				sv += float64(rbn.RunningVar[ch])
			}
			mbn.RunningMean[ch] = float32(sm * inv)
			mbn.RunningVar[ch] = float32(sv * inv)
		}
	}

	return weight * float32(total) / float32(n), inGrad
}
