package nn

import (
	"testing"

	"rowhammer/internal/tensor"
)

// Conv2D hot-path benchmarks at ResNet-20-representative geometry. Run
// with -benchmem: the headline number next to ns/op is allocs/op —
// the pooled scratch buffers (im2col columns, gradient panels) must
// keep steady-state allocation near zero.
//
//	go test -bench Conv2D -benchmem ./internal/nn/...

func benchConvSetup(b *testing.B) (*Conv2D, *tensor.Tensor) {
	rng := tensor.NewRNG(3)
	conv := NewConv2D("bench", rng, 16, 16, 3, 1, 1, false)
	x := tensor.New(8, 16, 32, 32)
	rng.FillNormal(x, 0, 1)
	return conv, x
}

func BenchmarkConv2DForward(b *testing.B) {
	conv, x := benchConvSetup(b)
	prev := tensor.SetMaxWorkers(1)
	prevB := SetBatchWorkers(1)
	defer func() { tensor.SetMaxWorkers(prev); SetBatchWorkers(prevB) }()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, true)
	}
}

func BenchmarkConv2DBackward(b *testing.B) {
	conv, x := benchConvSetup(b)
	prev := tensor.SetMaxWorkers(1)
	prevB := SetBatchWorkers(1)
	defer func() { tensor.SetMaxWorkers(prev); SetBatchWorkers(prevB) }()
	out := conv.Forward(x, true)
	grad := out.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Weight.G.Zero()
		conv.Backward(grad)
	}
}

func BenchmarkLinearForwardBackward(b *testing.B) {
	rng := tensor.NewRNG(3)
	lin := NewLinear("bench", rng, 256, 10)
	x := tensor.New(32, 256)
	rng.FillNormal(x, 0, 1)
	prev := tensor.SetMaxWorkers(1)
	defer tensor.SetMaxWorkers(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y := lin.Forward(x, true)
		lin.Backward(y)
	}
}
