package nn

import "rowhammer/internal/tensor"

// Linear is a fully connected layer. The weight layout is (Out, In),
// matching the PyTorch state-dict layout.
type Linear struct {
	Weight *Param
	Bias   *Param

	in, out   int
	lastInput *tensor.Tensor

	// Grow-only steady-state buffers (training-mode output and the
	// input gradient), so the hot loop stops allocating per step.
	outBuf    *tensor.Tensor
	gradInBuf *tensor.Tensor
}

var _ Layer = (*Linear)(nil)

// NewLinear constructs a fully connected layer with Kaiming-initialized
// weights and a zero bias.
func NewLinear(name string, rng *tensor.RNG, in, out int) *Linear {
	w := tensor.New(out, in)
	rng.KaimingNormal(w, in)
	return &Linear{
		Weight: NewParam(name+".weight", w),
		Bias:   NewParam(name+".bias", tensor.New(out)),
		in:     in, out: out,
	}
}

// Forward implements Layer for input (N, In); returns (N, Out).
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.lastInput = x
	n := x.Dim(0)
	var y *tensor.Tensor
	if train {
		l.outBuf = tensor.Ensure(l.outBuf, n, l.out)
		y = l.outBuf
	} else {
		y = tensor.New(n, l.out)
	}
	// y = x · Wᵀ
	tensor.MatMulABTInto(y, x, l.Weight.W)
	bd := l.Bias.W.Data()
	yd := y.Data()
	for i := 0; i < n; i++ {
		row := yd[i*l.out : (i+1)*l.out]
		for j := range row {
			row[j] += bd[j]
		}
	}
	return y
}

// Backward implements Layer.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := l.lastInput
	n := grad.Dim(0)

	// dW += gradᵀ · x  (Out×In); the scratch is pooled and fully
	// overwritten by the matmul.
	tmp := tensor.GetTensor(l.out, l.in)
	tensor.MatMulATBInto(tmp, grad, x)
	l.Weight.G.AddScaled(tmp, 1)
	tensor.PutTensor(tmp)

	// db += column sums of grad. The per-call sum is built in scratch
	// and added to G once, so the accumulator's value never feeds into
	// the batch summation order (keeps the direct path bit-identical to
	// the trainer's reduce-then-add).
	gb := l.Bias.G.Data()
	gd := grad.Data()
	colSum := tensor.GetF32Zeroed(l.out)
	for i := 0; i < n; i++ {
		row := gd[i*l.out : (i+1)*l.out]
		for j := range row {
			colSum[j] += row[j]
		}
	}
	for j := range colSum {
		gb[j] += colSum[j]
	}
	tensor.PutF32(colSum)

	// dx = grad · W  (N×In)
	l.gradInBuf = tensor.Ensure(l.gradInBuf, n, l.in)
	gradIn := l.gradInBuf
	tensor.MatMulInto(gradIn, grad, l.Weight.W)
	return gradIn
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }
