package nn

import "rowhammer/internal/tensor"

// Linear is a fully connected layer. The weight layout is (Out, In),
// matching the PyTorch state-dict layout.
type Linear struct {
	Weight *Param
	Bias   *Param

	in, out   int
	lastInput *tensor.Tensor
}

var _ Layer = (*Linear)(nil)

// NewLinear constructs a fully connected layer with Kaiming-initialized
// weights and a zero bias.
func NewLinear(name string, rng *tensor.RNG, in, out int) *Linear {
	w := tensor.New(out, in)
	rng.KaimingNormal(w, in)
	return &Linear{
		Weight: NewParam(name+".weight", w),
		Bias:   NewParam(name+".bias", tensor.New(out)),
		in:     in, out: out,
	}
}

// Forward implements Layer for input (N, In); returns (N, Out).
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.lastInput = x
	n := x.Dim(0)
	y := tensor.New(n, l.out)
	// y = x · Wᵀ
	tensor.MatMulABTInto(y, x, l.Weight.W)
	bd := l.Bias.W.Data()
	yd := y.Data()
	for i := 0; i < n; i++ {
		row := yd[i*l.out : (i+1)*l.out]
		for j := range row {
			row[j] += bd[j]
		}
	}
	return y
}

// Backward implements Layer.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := l.lastInput
	n := grad.Dim(0)

	// dW += gradᵀ · x  (Out×In); the scratch is pooled and fully
	// overwritten by the matmul.
	tmp := tensor.GetTensor(l.out, l.in)
	tensor.MatMulATBInto(tmp, grad, x)
	l.Weight.G.AddScaled(tmp, 1)
	tensor.PutTensor(tmp)

	// db += column sums of grad.
	gb := l.Bias.G.Data()
	gd := grad.Data()
	for i := 0; i < n; i++ {
		row := gd[i*l.out : (i+1)*l.out]
		for j := range row {
			gb[j] += row[j]
		}
	}

	// dx = grad · W  (N×In)
	gradIn := tensor.New(n, l.in)
	tensor.MatMulInto(gradIn, grad, l.Weight.W)
	return gradIn
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }
