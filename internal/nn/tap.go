package nn

import "rowhammer/internal/tensor"

// Tap is a pass-through layer that records the activation flowing
// forward and the gradient flowing backward at its position — the hook
// Grad-CAM style attribution needs on the last convolutional feature
// map.
type Tap struct {
	lastForward  *tensor.Tensor
	lastBackward *tensor.Tensor
	gradBuf      *tensor.Tensor
}

var _ Layer = (*Tap)(nil)

// NewTap returns an empty tap.
func NewTap() *Tap { return &Tap{} }

// Forward implements Layer (identity; records the activation).
func (t *Tap) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	t.lastForward = x
	return x
}

// Backward implements Layer (identity). The gradient is recorded as a
// snapshot copy: layers upstream of the tap are free to mutate the
// buffer in place (ReLU's fused backward does), and Grad-CAM reads
// Gradient() only after the whole backward pass has run.
func (t *Tap) Backward(grad *tensor.Tensor) *tensor.Tensor {
	t.gradBuf = tensor.Ensure(t.gradBuf, grad.Shape()...)
	copy(t.gradBuf.Data(), grad.Data())
	t.lastBackward = t.gradBuf
	return grad
}

// Params implements Layer.
func (t *Tap) Params() []*Param { return nil }

// Activation returns the last recorded forward tensor (nil before the
// first forward pass).
func (t *Tap) Activation() *tensor.Tensor { return t.lastForward }

// Gradient returns the last recorded backward tensor (nil before the
// first backward pass).
func (t *Tap) Gradient() *tensor.Tensor { return t.lastBackward }

// InsertBefore inserts l in front of the first top-level layer matching
// the predicate and reports whether a position was found. The model's
// captured parameter list is unaffected (taps have no parameters).
func (s *Sequential) InsertBefore(match func(Layer) bool, l Layer) bool {
	for i, child := range s.layers {
		if match(child) {
			s.layers = append(s.layers[:i], append([]Layer{l}, s.layers[i:]...)...)
			return true
		}
	}
	return false
}
