package nn

import "rowhammer/internal/tensor"

// MaxPool2D is a max pooling layer with square window and equal stride
// (the VGG configuration: 2×2, stride 2).
type MaxPool2D struct {
	k, stride int

	lastShape []int
	argmax    []int

	outBuf    *tensor.Tensor
	gradInBuf *tensor.Tensor
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D returns a max pooling layer with a k×k window and the
// given stride.
func NewMaxPool2D(k, stride int) *MaxPool2D {
	return &MaxPool2D{k: k, stride: stride}
}

// Forward implements Layer for input (N, C, H, W).
func (m *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := (h-m.k)/m.stride + 1
	ow := (w-m.k)/m.stride + 1
	m.lastShape = append(m.lastShape[:0], n, c, h, w)
	var out *tensor.Tensor
	if train {
		m.outBuf = tensor.Ensure(m.outBuf, n, c, oh, ow)
		out = m.outBuf
	} else {
		out = tensor.New(n, c, oh, ow)
	}
	if cap(m.argmax) < out.Len() {
		m.argmax = make([]int, out.Len())
	}
	m.argmax = m.argmax[:out.Len()]
	xd, od := x.Data(), out.Data()

	batchParallel(n*c, func(lo, hi int) {
		for nc := lo; nc < hi; nc++ {
			inBase := nc * h * w
			outBase := nc * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					bestIdx := inBase + oy*m.stride*w + ox*m.stride
					best := xd[bestIdx]
					for ky := 0; ky < m.k; ky++ {
						iy := oy*m.stride + ky
						for kx := 0; kx < m.k; kx++ {
							ix := ox*m.stride + kx
							idx := inBase + iy*w + ix
							if xd[idx] > best {
								best = xd[idx]
								bestIdx = idx
							}
						}
					}
					o := outBase + oy*ow + ox
					od[o] = best
					m.argmax[o] = bestIdx
				}
			}
		}
	})
	return out
}

// Backward implements Layer: the gradient routes to the argmax input.
func (m *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	m.gradInBuf = tensor.Ensure(m.gradInBuf, m.lastShape...)
	gradIn := m.gradInBuf
	gradIn.Zero() // the scatter below accumulates
	gd, gid := grad.Data(), gradIn.Data()
	for i, src := range m.argmax {
		gid[src] += gd[i]
	}
	return gradIn
}

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

// GlobalAvgPool averages each channel over its full spatial extent,
// producing (N, C) from (N, C, H, W) — the ResNet head pooling.
type GlobalAvgPool struct {
	lastShape []int

	outBuf    *tensor.Tensor
	gradInBuf *tensor.Tensor
}

var _ Layer = (*GlobalAvgPool)(nil)

// NewGlobalAvgPool returns a global average pooling layer.
func NewGlobalAvgPool() *GlobalAvgPool { return &GlobalAvgPool{} }

// Forward implements Layer.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	g.lastShape = append(g.lastShape[:0], n, c, h, w)
	var out *tensor.Tensor
	if train {
		g.outBuf = tensor.Ensure(g.outBuf, n, c)
		out = g.outBuf
	} else {
		out = tensor.New(n, c)
	}
	hw := h * w
	xd, od := x.Data(), out.Data()
	inv := 1 / float32(hw)
	for nc := 0; nc < n*c; nc++ {
		var s float32
		base := nc * hw
		for j := 0; j < hw; j++ {
			s += xd[base+j]
		}
		od[nc] = s * inv
	}
	return out
}

// Backward implements Layer.
func (g *GlobalAvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := g.lastShape[0], g.lastShape[1], g.lastShape[2], g.lastShape[3]
	hw := h * w
	g.gradInBuf = tensor.Ensure(g.gradInBuf, n, c, h, w)
	gradIn := g.gradInBuf
	gd, gid := grad.Data(), gradIn.Data()
	inv := 1 / float32(hw)
	for nc := 0; nc < n*c; nc++ {
		v := gd[nc] * inv
		base := nc * hw
		for j := 0; j < hw; j++ {
			gid[base+j] = v
		}
	}
	return gradIn
}

// Params implements Layer.
func (g *GlobalAvgPool) Params() []*Param { return nil }
