package nn

import (
	"runtime"
	"sync"
)

// batchWorkers bounds batch-level parallelism in conv/batchnorm kernels.
var batchWorkers = runtime.NumCPU()

// SetBatchWorkers overrides batch-level parallelism; returns the previous
// value so callers can restore it.
func SetBatchWorkers(n int) int {
	prev := batchWorkers
	if n < 1 {
		n = 1
	}
	batchWorkers = n
	return prev
}

// batchParallel partitions [0, n) across workers and runs fn per chunk.
// Each worker invocation is expected to allocate its own scratch buffers
// so no synchronization is needed during the chunk.
func batchParallel(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := batchWorkers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
