package nn

import (
	"runtime"

	"rowhammer/internal/tensor"
)

// batchWorkers bounds batch-level parallelism in conv/batchnorm kernels.
var batchWorkers = runtime.NumCPU()

// SetBatchWorkers overrides batch-level parallelism; returns the previous
// value so callers can restore it.
func SetBatchWorkers(n int) int {
	prev := batchWorkers
	if n < 1 {
		n = 1
	}
	batchWorkers = n
	return prev
}

// batchParallel partitions [0, n) across workers and runs fn per chunk
// on the tensor package's persistent worker pool (no goroutine spawn
// per call; pure inline execution when batchWorkers is 1). Each worker
// invocation is expected to allocate its own scratch buffers so no
// synchronization is needed during the chunk.
func batchParallel(n int, fn func(lo, hi int)) {
	tensor.ParallelChunks(n, batchWorkers, fn)
}
