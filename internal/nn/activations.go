package nn

import "rowhammer/internal/tensor"

// ReLU is the rectified-linear activation.
type ReLU struct {
	mask   []bool
	outBuf *tensor.Tensor
}

var _ Layer = (*ReLU)(nil)

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	var out *tensor.Tensor
	if train {
		r.outBuf = tensor.Ensure(r.outBuf, x.Shape()...)
		out = r.outBuf
	} else {
		out = tensor.New(x.Shape()...)
	}
	xd, od := x.Data(), out.Data()
	if cap(r.mask) < len(xd) {
		r.mask = make([]bool, len(xd))
	}
	r.mask = r.mask[:len(xd)]
	for i, v := range xd {
		if v > 0 {
			od[i] = v
			r.mask[i] = true
		} else {
			od[i] = 0
			r.mask[i] = false
		}
	}
	return out
}

// Backward implements Layer. The mask is applied to the incoming
// gradient in place — every producer upstream hands this layer a
// buffer it owns and overwrites on its next backward, so the fused
// zero-allocation form is safe (Tap snapshots its gradient precisely
// because of this).
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	gd := grad.Data()
	for i, m := range r.mask {
		if !m {
			gd[i] = 0
		}
	}
	return grad
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Flatten reshapes (N, C, H, W) to (N, C*H*W).
type Flatten struct {
	lastShape []int
}

var _ Layer = (*Flatten)(nil)

// NewFlatten returns a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.lastShape = append(f.lastShape[:0], x.Shape()...)
	n := x.Dim(0)
	return x.Reshape(n, x.Len()/n)
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.lastShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }
