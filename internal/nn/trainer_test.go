package nn

import (
	"testing"

	"rowhammer/internal/tensor"
)

// trainerGradients runs one trainer step at the given worker count and
// returns the flattened master gradients, the loss, and a copy of the
// input gradient.
func trainerGradients(t *testing.T, seed int64, shards, workers int) ([]float32, float32, []float32) {
	t.Helper()
	prev := tensor.SetMaxWorkers(workers)
	prevBatch := SetBatchWorkers(workers)
	defer func() {
		tensor.SetMaxWorkers(prev)
		SetBatchWorkers(prevBatch)
	}()

	m := cloneTestModel(seed)
	FreezeBatchNorm(m.Root)
	tr := NewTrainer(m, shards)
	tr.SetWorkers(workers)

	rng := tensor.NewRNG(seed + 100)
	x := tensor.New(8, 2, 8, 8)
	rng.FillNormal(x, 0, 1)
	labels := []int{0, 1, 2, 0, 1, 2, 0, 1}

	m.ZeroGrad()
	loss, inGrad := tr.ForwardBackward(x, labels, 1)

	var grads []float32
	for _, p := range m.Params() {
		grads = append(grads, p.G.Data()...)
	}
	return grads, loss, append([]float32(nil), inGrad.Data()...)
}

// TestTrainerGradientsBitIdenticalAcrossWorkers is the determinism
// contract: with a fixed shard count, the worker count must not change
// a single bit of the accumulated gradients, the loss, or the input
// gradient. This is what makes attack results reproducible across
// machines with different core counts.
func TestTrainerGradientsBitIdenticalAcrossWorkers(t *testing.T) {
	refGrads, refLoss, refIn := trainerGradients(t, 41, 4, 1)
	for _, workers := range []int{2, 4} {
		grads, loss, inGrad := trainerGradients(t, 41, 4, workers)
		if loss != refLoss {
			t.Fatalf("workers=%d: loss %v != %v at 1 worker", workers, loss, refLoss)
		}
		for i := range refGrads {
			if grads[i] != refGrads[i] {
				t.Fatalf("workers=%d: gradient %d differs bitwise (%v vs %v)", workers, i, grads[i], refGrads[i])
			}
		}
		for i := range refIn {
			if inGrad[i] != refIn[i] {
				t.Fatalf("workers=%d: input gradient %d differs bitwise", workers, i)
			}
		}
	}
}

// TestTrainerSingleShardMatchesDirectPath pins the trainer's numerics
// to the plain Model.Forward/CrossEntropy/Model.Backward path: with one
// shard the whole batch runs on one replica in the same order, so every
// result must agree bit for bit.
func TestTrainerSingleShardMatchesDirectPath(t *testing.T) {
	seed := int64(43)
	m := cloneTestModel(seed)
	FreezeBatchNorm(m.Root)
	rng := tensor.NewRNG(seed + 100)
	x := tensor.New(6, 2, 8, 8)
	rng.FillNormal(x, 0, 1)
	labels := []int{2, 1, 0, 2, 1, 0}

	direct := m.Clone()
	direct.ZeroGrad()
	out := direct.Forward(x, true)
	dLoss, grad := CrossEntropy(out, labels, 0.5)
	dIn := direct.Backward(grad)

	tr := NewTrainer(m, 1)
	m.ZeroGrad()
	tLoss, tIn := tr.ForwardBackward(x, labels, 0.5)

	if dLoss != tLoss {
		t.Fatalf("loss %v (direct) != %v (trainer)", dLoss, tLoss)
	}
	dp, tp := direct.Params(), m.Params()
	for i := range dp {
		dg, tg := dp[i].G.Data(), tp[i].G.Data()
		for j := range dg {
			if dg[j] != tg[j] {
				t.Fatalf("param %q grad %d: direct %v != trainer %v", dp[i].Name, j, dg[j], tg[j])
			}
		}
	}
	for i := range dIn.Data() {
		if dIn.Data()[i] != tIn.Data()[i] {
			t.Fatalf("input gradient %d differs bitwise", i)
		}
	}
}

// TestTrainerAccumulatesLikeDirectBackward verifies the two-call
// pattern the attack loop uses (clean term then triggered term without
// an intervening ZeroGrad) sums gradients the same way.
func TestTrainerAccumulatesLikeDirectBackward(t *testing.T) {
	m := cloneTestModel(45)
	FreezeBatchNorm(m.Root)
	tr := NewTrainer(m, 1)
	rng := tensor.NewRNG(46)
	x := tensor.New(4, 2, 8, 8)
	rng.FillNormal(x, 0, 1)
	labels := []int{0, 1, 2, 0}
	target := []int{1, 1, 1, 1}

	direct := m.Clone()
	direct.ZeroGrad()
	out := direct.Forward(x, true)
	_, g1 := CrossEntropy(out, labels, 0.5)
	direct.Backward(g1)
	out = direct.Forward(x, true)
	_, g2 := CrossEntropy(out, target, 0.5)
	direct.Backward(g2)

	m.ZeroGrad()
	tr.ForwardBackward(x, labels, 0.5)
	tr.ForwardBackward(x, target, 0.5)

	dp, tp := direct.Params(), m.Params()
	for i := range dp {
		dg, tg := dp[i].G.Data(), tp[i].G.Data()
		for j := range dg {
			if dg[j] != tg[j] {
				t.Fatalf("param %q accumulated grad %d differs", dp[i].Name, j)
			}
		}
	}
}

// TestTrainerTrainsUnfrozenModel sanity-checks the ghost-batch-norm
// path: sharded training with live batch statistics still learns.
func TestTrainerTrainsUnfrozenModel(t *testing.T) {
	rng := tensor.NewRNG(47)
	net := NewSequential(
		NewConv2D("c", rng, 1, 4, 3, 1, 1, false),
		NewBatchNorm2D("bn", 4),
		NewReLU(),
		NewGlobalAvgPool(),
		NewLinear("fc", rng, 4, 2),
	)
	m := NewModel("tiny", net, 2, [3]int{1, 6, 6})
	tr := NewTrainer(m, 2)
	opt := NewSGD(m.Params(), 0.1, 0.9, 0)

	x := tensor.New(8, 1, 6, 6)
	labels := make([]int, 8)
	for i := 0; i < 8; i++ {
		labels[i] = i % 2
		base := i * 36
		for j := 0; j < 36; j++ {
			if labels[i] == 1 {
				x.Data()[base+j] = float32(j % 3)
			} else {
				x.Data()[base+j] = -float32(j % 2)
			}
		}
	}
	m.ZeroGrad()
	first, _ := tr.ForwardBackward(x, labels, 1)
	opt.Step()
	loss := first
	for i := 0; i < 25; i++ {
		m.ZeroGrad()
		loss, _ = tr.ForwardBackward(x, labels, 1)
		opt.Step()
	}
	if loss >= first {
		t.Fatalf("trainer did not reduce loss: %v -> %v", first, loss)
	}
}

// TestTrainerResyncsAfterWeightMutation mutates master weights between
// steps (as the masked sign-SGD update does) and checks the next step
// sees them.
func TestTrainerResyncsAfterWeightMutation(t *testing.T) {
	m := cloneTestModel(49)
	FreezeBatchNorm(m.Root)
	tr := NewTrainer(m, 2)
	rng := tensor.NewRNG(50)
	x := tensor.New(4, 2, 8, 8)
	rng.FillNormal(x, 0, 1)
	labels := []int{0, 1, 2, 0}

	m.ZeroGrad()
	tr.ForwardBackward(x, labels, 1)

	// An equivalent fresh model with the mutated weights must produce
	// the same gradients as the long-lived trainer after mutation.
	for _, p := range m.Params() {
		p.W.Data()[0] *= 1.5
	}
	m2 := m.Clone()
	tr2 := NewTrainer(m2, 2)
	m2.ZeroGrad()
	loss2, _ := tr2.ForwardBackward(x, labels, 1)

	m.ZeroGrad()
	loss1, _ := tr.ForwardBackward(x, labels, 1)
	if loss1 != loss2 {
		t.Fatalf("stale replica weights: loss %v != fresh-trainer loss %v", loss1, loss2)
	}
	p1, p2 := m.Params(), m2.Params()
	for i := range p1 {
		for j := range p1[i].G.Data() {
			if p1[i].G.Data()[j] != p2[i].G.Data()[j] {
				t.Fatalf("param %q grad differs after weight mutation", p1[i].Name)
			}
		}
	}
}
