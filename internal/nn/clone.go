package nn

import (
	"fmt"

	"rowhammer/internal/tensor"
)

// Cloner is implemented by layers that can produce a structural copy of
// themselves: identical architecture and parameter values, but fresh
// gradient accumulators and scratch buffers, sharing no mutable state
// with the original. Layer types defined outside this package (e.g. the
// binarized convolution in internal/models) implement it to opt into
// Model.Clone.
type Cloner interface {
	CloneLayer() Layer
}

// CloneLayerOf clones any known layer, panicking with the concrete type
// name when the layer does not support cloning. It exists so container
// layers in other packages can clone their children.
func CloneLayerOf(l Layer) Layer {
	if l == nil {
		return nil
	}
	if c, ok := l.(Cloner); ok {
		return c.CloneLayer()
	}
	panic(fmt.Sprintf("nn: layer type %T does not implement Cloner", l))
}

// Clone returns a deep copy of the parameter: same name and values,
// fresh zeroed gradient.
func (p *Param) Clone() *Param {
	if p == nil {
		return nil
	}
	return &Param{Name: p.Name, W: p.W.Clone(), G: tensor.New(p.W.Shape()...)}
}

// CloneLayer implements Cloner.
func (s *Sequential) CloneLayer() Layer {
	layers := make([]Layer, len(s.layers))
	for i, l := range s.layers {
		layers[i] = CloneLayerOf(l)
	}
	return NewSequential(layers...)
}

// CloneLayer implements Cloner.
func (c *Conv2D) CloneLayer() Layer {
	cp := &Conv2D{
		Weight: c.Weight.Clone(),
		Bias:   c.Bias.Clone(),
		inC:    c.inC, outC: c.outC,
		kh: c.kh, kw: c.kw,
		stride: c.stride, pad: c.pad,
	}
	return cp
}

// CloneLayer implements Cloner.
func (l *Linear) CloneLayer() Layer {
	return &Linear{
		Weight: l.Weight.Clone(),
		Bias:   l.Bias.Clone(),
		in:     l.in, out: l.out,
	}
}

// CloneLayer implements Cloner. Running statistics are copied by value
// and the Frozen flag is preserved, so a clone of a deployed (frozen)
// model behaves identically.
func (b *BatchNorm2D) CloneLayer() Layer {
	return &BatchNorm2D{
		Gamma:       b.Gamma.Clone(),
		Beta:        b.Beta.Clone(),
		RunningMean: append([]float32(nil), b.RunningMean...),
		RunningVar:  append([]float32(nil), b.RunningVar...),
		Frozen:      b.Frozen,
		channels:    b.channels,
		momentum:    b.momentum,
		eps:         b.eps,
	}
}

// CloneLayer implements Cloner.
func (r *ReLU) CloneLayer() Layer { return NewReLU() }

// CloneLayer implements Cloner.
func (f *Flatten) CloneLayer() Layer { return NewFlatten() }

// CloneLayer implements Cloner.
func (m *MaxPool2D) CloneLayer() Layer { return NewMaxPool2D(m.k, m.stride) }

// CloneLayer implements Cloner.
func (g *GlobalAvgPool) CloneLayer() Layer { return NewGlobalAvgPool() }

// CloneLayer implements Cloner.
func (r *Residual) CloneLayer() Layer {
	var shortcut Layer
	if r.Shortcut != nil {
		shortcut = CloneLayerOf(r.Shortcut)
	}
	return NewResidual(CloneLayerOf(r.Main), shortcut)
}

// CloneLayer implements Cloner. The clone starts with empty recordings.
func (t *Tap) CloneLayer() Layer { return NewTap() }

// Clone returns a structurally independent copy of the model: the same
// architecture with parameter values copied, fresh gradient and scratch
// buffers, and an identically ordered parameter list. It is how the
// data-parallel trainer builds its shard replicas, and is also the safe
// way to snapshot a model before destructive weight surgery.
func (m *Model) Clone() *Model {
	return NewModel(m.Arch, CloneLayerOf(m.Root), m.Classes, m.InputShape)
}
