package nn

// Read-only geometry accessors. The layer structs keep their hyper-
// parameters unexported (they are fixed at construction), but the
// quantized inference engine in internal/quant compiles a parallel
// execution plan from the float graph and needs the shapes to do it.

// Geom returns the convolution's geometry: input/output channels,
// kernel extents, stride and padding.
func (c *Conv2D) Geom() (inC, outC, kh, kw, stride, pad int) {
	return c.inC, c.outC, c.kh, c.kw, c.stride, c.pad
}

// Dims returns the linear layer's input and output widths.
func (l *Linear) Dims() (in, out int) { return l.in, l.out }

// Channels returns the normalized channel count.
func (b *BatchNorm2D) Channels() int { return b.channels }

// Eps returns the variance-stabilizing epsilon used at inference.
func (b *BatchNorm2D) Eps() float32 { return b.eps }

// Window returns the pooling window edge and stride.
func (m *MaxPool2D) Window() (k, stride int) { return m.k, m.stride }
