package nn

import (
	"math"

	"rowhammer/internal/tensor"
)

// BatchNorm2D normalizes each channel over the batch and spatial
// dimensions, with learnable per-channel scale (gamma) and shift (beta).
// Running statistics are tracked for inference.
type BatchNorm2D struct {
	Gamma *Param
	Beta  *Param

	// RunningMean and RunningVar are the exponential-moving-average
	// inference statistics. They are buffers, not trainable parameters,
	// so they do not appear in the attacked weight file.
	RunningMean []float32
	RunningVar  []float32

	// Frozen makes training-mode forwards normalize with the running
	// statistics (and keeps them fixed) instead of batch statistics —
	// the deployed-model fine-tuning mode the attack uses.
	Frozen bool

	channels int
	momentum float32
	eps      float32

	// Backward caches.
	lastInput  *tensor.Tensor
	lastXHat   []float32
	lastMean   []float32
	lastIStd   []float32
	lastN      int
	lastHW     int
	lastFrozen bool

	// Grow-only steady-state buffers (training-mode output and the
	// input gradient).
	outBuf    *tensor.Tensor
	gradInBuf *tensor.Tensor
}

var _ Layer = (*BatchNorm2D)(nil)

// NewBatchNorm2D constructs batch norm for the given channel count with
// gamma=1, beta=0, and identity running statistics.
func NewBatchNorm2D(name string, channels int) *BatchNorm2D {
	gamma := tensor.New(channels)
	gamma.Fill(1)
	rv := make([]float32, channels)
	for i := range rv {
		rv[i] = 1
	}
	return &BatchNorm2D{
		Gamma:       NewParam(name+".weight", gamma),
		Beta:        NewParam(name+".bias", tensor.New(channels)),
		RunningMean: make([]float32, channels),
		RunningVar:  rv,
		channels:    channels,
		momentum:    0.1,
		eps:         1e-5,
	}
}

// Forward implements Layer for input (N, C, H, W).
func (b *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	hw := h * w
	var out *tensor.Tensor
	if train {
		b.outBuf = tensor.Ensure(b.outBuf, n, c, h, w)
		out = b.outBuf
	} else {
		out = tensor.New(n, c, h, w)
	}
	xd, od := x.Data(), out.Data()
	gd, bd := b.Gamma.W.Data(), b.Beta.W.Data()

	if !train {
		batchParallel(c, func(lo, hi int) {
			for ch := lo; ch < hi; ch++ {
				istd := float32(1 / math.Sqrt(float64(b.RunningVar[ch])+float64(b.eps)))
				mean := b.RunningMean[ch]
				scale := gd[ch] * istd
				shift := bd[ch] - mean*scale
				for i := 0; i < n; i++ {
					base := (i*c + ch) * hw
					for j := 0; j < hw; j++ {
						od[base+j] = xd[base+j]*scale + shift
					}
				}
			}
		})
		return out
	}

	if b.Frozen {
		// Frozen training mode: normalize with running statistics but
		// cache x̂ so Backward can produce gradients. Running stats are
		// not updated.
		b.lastN, b.lastHW = n, hw
		b.lastFrozen = true
		if cap(b.lastXHat) < len(xd) {
			b.lastXHat = make([]float32, len(xd))
		}
		b.lastXHat = b.lastXHat[:len(xd)]
		if b.lastIStd == nil {
			b.lastIStd = make([]float32, c)
		}
		batchParallel(c, func(lo, hi int) {
			for ch := lo; ch < hi; ch++ {
				istd := float32(1 / math.Sqrt(float64(b.RunningVar[ch])+float64(b.eps)))
				b.lastIStd[ch] = istd
				mean := b.RunningMean[ch]
				g, bt := gd[ch], bd[ch]
				for i := 0; i < n; i++ {
					base := (i*c + ch) * hw
					for j := 0; j < hw; j++ {
						xh := (xd[base+j] - mean) * istd
						b.lastXHat[base+j] = xh
						od[base+j] = g*xh + bt
					}
				}
			}
		})
		return out
	}

	b.lastFrozen = false
	b.lastInput = x
	b.lastN, b.lastHW = n, hw
	if cap(b.lastXHat) < len(xd) {
		b.lastXHat = make([]float32, len(xd))
	}
	b.lastXHat = b.lastXHat[:len(xd)]
	if b.lastMean == nil {
		b.lastMean = make([]float32, c)
	}
	if b.lastIStd == nil {
		b.lastIStd = make([]float32, c)
	}
	count := float32(n * hw)

	batchParallel(c, func(lo, hi int) {
		for ch := lo; ch < hi; ch++ {
			var sum, sqSum float64
			for i := 0; i < n; i++ {
				base := (i*c + ch) * hw
				for j := 0; j < hw; j++ {
					v := float64(xd[base+j])
					sum += v
					sqSum += v * v
				}
			}
			mean := float32(sum / float64(count))
			variance := float32(sqSum/float64(count)) - mean*mean
			if variance < 0 {
				variance = 0
			}
			istd := float32(1 / math.Sqrt(float64(variance)+float64(b.eps)))
			b.lastMean[ch] = mean
			b.lastIStd[ch] = istd
			b.RunningMean[ch] = (1-b.momentum)*b.RunningMean[ch] + b.momentum*mean
			b.RunningVar[ch] = (1-b.momentum)*b.RunningVar[ch] + b.momentum*variance

			g, bt := gd[ch], bd[ch]
			for i := 0; i < n; i++ {
				base := (i*c + ch) * hw
				for j := 0; j < hw; j++ {
					xh := (xd[base+j] - mean) * istd
					b.lastXHat[base+j] = xh
					od[base+j] = g*xh + bt
				}
			}
		}
	})
	return out
}

// Backward implements Layer using the standard batch-norm gradient, or
// the simpler frozen-statistics gradient when the forward pass ran with
// Frozen set.
func (b *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if b.lastFrozen {
		return b.backwardFrozen(grad)
	}
	n, c, hw := b.lastN, b.channels, b.lastHW
	b.gradInBuf = tensor.Ensure(b.gradInBuf, grad.Shape()...)
	gradIn := b.gradInBuf
	gd := grad.Data()
	gid := gradIn.Data()
	gamma := b.Gamma.W.Data()
	gGamma := b.Gamma.G.Data()
	gBeta := b.Beta.G.Data()
	count := float32(n * hw)

	batchParallel(c, func(lo, hi int) {
		for ch := lo; ch < hi; ch++ {
			var sumG, sumGX float64
			for i := 0; i < n; i++ {
				base := (i*c + ch) * hw
				gRow := gd[base : base+hw]
				xRow := b.lastXHat[base : base+hw]
				for j, gf := range gRow {
					g := float64(gf)
					sumG += g
					sumGX += g * float64(xRow[j])
				}
			}
			gBeta[ch] += float32(sumG)
			gGamma[ch] += float32(sumGX)

			coef := gamma[ch] * b.lastIStd[ch]
			meanG := float32(sumG) / count
			meanGX := float32(sumGX) / count
			for i := 0; i < n; i++ {
				base := (i*c + ch) * hw
				gRow := gd[base : base+hw]
				xRow := b.lastXHat[base : base+hw]
				oRow := gid[base : base+hw]
				for j, g := range gRow {
					oRow[j] = coef * (g - meanG - xRow[j]*meanGX)
				}
			}
		}
	})
	return gradIn
}

// backwardFrozen propagates gradients through a frozen-statistics
// normalization: y = γ·(x−μ_run)·istd + β, so dx = γ·istd·dy with no
// batch-coupling terms.
func (b *BatchNorm2D) backwardFrozen(grad *tensor.Tensor) *tensor.Tensor {
	n, c, hw := b.lastN, b.channels, b.lastHW
	b.gradInBuf = tensor.Ensure(b.gradInBuf, grad.Shape()...)
	gradIn := b.gradInBuf
	gd, gid := grad.Data(), gradIn.Data()
	gamma := b.Gamma.W.Data()
	gGamma := b.Gamma.G.Data()
	gBeta := b.Beta.G.Data()
	batchParallel(c, func(lo, hi int) {
		for ch := lo; ch < hi; ch++ {
			coef := gamma[ch] * b.lastIStd[ch]
			var sumG, sumGX float64
			for i := 0; i < n; i++ {
				base := (i*c + ch) * hw
				gRow := gd[base : base+hw]
				xRow := b.lastXHat[base : base+hw]
				oRow := gid[base : base+hw]
				for j, g := range gRow {
					sumG += float64(g)
					sumGX += float64(g) * float64(xRow[j])
					oRow[j] = coef * g
				}
			}
			gBeta[ch] += float32(sumG)
			gGamma[ch] += float32(sumGX)
		}
	})
	return gradIn
}

// Params implements Layer.
func (b *BatchNorm2D) Params() []*Param { return []*Param{b.Gamma, b.Beta} }
