package nn

import (
	"rowhammer/internal/tensor"
)

// im2colCacheBudget bounds the per-layer forward im2col panel cache (in
// bytes). When a training-mode forward's full batch of column panels
// fits the budget, the layer keeps them and the backward pass reuses
// them for the weight-gradient GEMM instead of recomputing im2col; a
// batch that exceeds the budget falls back to recomputation.
var im2colCacheBudget = 16 << 20

// SetIm2ColCacheBudget overrides the per-layer im2col panel cache
// budget in bytes (0 disables caching) and returns the previous value.
func SetIm2ColCacheBudget(bytes int) int {
	prev := im2colCacheBudget
	if bytes < 0 {
		bytes = 0
	}
	im2colCacheBudget = bytes
	return prev
}

// convBwdChunks returns the fixed chunk count for the backward batch
// partition. It depends only on the batch size — never on the worker
// count — so the per-chunk gradient slots and their fixed-order tree
// reduction give bit-identical results at any parallelism level.
func convBwdChunks(n int) int {
	c := n / 2
	if c > 8 {
		c = 8
	}
	if c < 1 {
		c = 1
	}
	return c
}

// Conv2D is a 2-D convolution with square-independent kernel size,
// stride and zero padding. The weight layout is (OutC, InC, KH, KW),
// matching the PyTorch state-dict layout the paper's weight files use.
type Conv2D struct {
	Weight *Param
	Bias   *Param // nil when the layer is bias-free (ResNet convs)

	inC, outC          int
	kh, kw             int
	stride, pad        int
	lastInput          *tensor.Tensor
	lastH, lastW       int
	lastOutH, lastOutW int

	// Steady-state buffers: the output and input-gradient tensors are
	// grow-only per-layer caches (training-mode only for the output, so
	// inference callers may hold results across calls), the weight
	// matrix views are built once, and colCache holds the forward
	// im2col panels for the backward weight-gradient GEMM when the
	// batch fits the budget.
	outBuf    *tensor.Tensor
	gradInBuf *tensor.Tensor
	wMat      *tensor.Tensor
	gWMat     *tensor.Tensor
	colCache  []float32
	colCached bool
	fwd       *convFwdScratch
	bwd       *convBwdScratch
}

// convFwdScratch caches the per-chunk forward tensor headers (im2col
// panel view and output view), rebuilt when the batch geometry changes.
type convFwdScratch struct {
	n, h, w int
	colT    []*tensor.Tensor
	dst     []*tensor.Tensor
}

// convBwdScratch caches the per-chunk backward working set — the slot
// buffers the chunk gradients accumulate into and the tensor headers
// the chunk loop rebinds onto pooled storage each call — so a
// steady-state Backward allocates nothing. It is rebuilt whenever the
// batch geometry changes.
type convBwdScratch struct {
	n, h, w  int
	slotBuf  []float32
	biasSlot []float32
	slots    [][]float32
	colT     []*tensor.Tensor
	gradCol  []*tensor.Tensor
	tmpGW    []*tensor.Tensor
	localGW  []*tensor.Tensor
	g        []*tensor.Tensor
}

// bindMat points a cached header at data, creating it on first use.
// Geometry is fixed for a given scratch, so a later call only rebinds
// the storage.
func bindMat(slot **tensor.Tensor, data []float32, r, c int) *tensor.Tensor {
	if *slot == nil {
		*slot = tensor.FromSlice(data, r, c)
	} else {
		(*slot).Rebind(data)
	}
	return *slot
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D constructs a convolution layer with Kaiming-initialized
// weights. Set withBias to false for convolutions followed by batch
// norm.
func NewConv2D(name string, rng *tensor.RNG, inC, outC, k, stride, pad int, withBias bool) *Conv2D {
	w := tensor.New(outC, inC, k, k)
	rng.KaimingNormal(w, inC*k*k)
	c := &Conv2D{
		Weight: NewParam(name+".weight", w),
		inC:    inC, outC: outC,
		kh: k, kw: k,
		stride: stride, pad: pad,
	}
	if withBias {
		c.Bias = NewParam(name+".bias", tensor.New(outC))
	}
	return c
}

// OutSize returns the spatial output size for an input of h×w.
func (c *Conv2D) OutSize(h, w int) (oh, ow int) {
	return (h+2*c.pad-c.kh)/c.stride + 1, (w+2*c.pad-c.kw)/c.stride + 1
}

// weightViews returns the (OutC, InC·KH·KW) matrix views of the weight
// and its gradient, built once (the parameter storage never moves).
func (c *Conv2D) weightViews() (wMat, gWMat *tensor.Tensor) {
	ckk := c.inC * c.kh * c.kw
	if c.wMat == nil {
		c.wMat = c.Weight.W.Reshape(c.outC, ckk)
		c.gWMat = c.Weight.G.Reshape(c.outC, ckk)
	}
	return c.wMat, c.gWMat
}

// Forward implements Layer for input (N, InC, H, W).
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := c.OutSize(h, w)
	c.lastInput, c.lastH, c.lastW, c.lastOutH, c.lastOutW = x, h, w, oh, ow

	var out *tensor.Tensor
	if train {
		c.outBuf = tensor.Ensure(c.outBuf, n, c.outC, oh, ow)
		out = c.outBuf
	} else {
		out = tensor.New(n, c.outC, oh, ow)
	}
	wMat, _ := c.weightViews()
	imgLen := c.inC * h * w
	outLen := c.outC * oh * ow
	colLen := tensor.ColBufLen(c.inC, h, w, c.kh, c.kw, c.stride, c.pad)

	// Cache the im2col panels for the backward pass when the whole
	// batch fits the budget (training mode only).
	c.colCached = train && colLen > 0 && n*colLen*4 <= im2colCacheBudget
	if c.colCached {
		if cap(c.colCache) < n*colLen {
			c.colCache = make([]float32, n*colLen)
		}
		c.colCache = c.colCache[:n*colLen]
	}

	chunks := convBwdChunks(n)
	fs := c.fwd
	if fs == nil || fs.n != n || fs.h != h || fs.w != w {
		fs = &convFwdScratch{
			n: n, h: h, w: w,
			colT: make([]*tensor.Tensor, chunks),
			dst:  make([]*tensor.Tensor, chunks),
		}
		c.fwd = fs
	}
	tensor.ParallelChunksIndexed(n, chunks, batchWorkers, func(idx, lo, hi int) {
		var col []float32
		if !c.colCached {
			col = tensor.GetF32(colLen)
		} else {
			col = c.colCache[lo*colLen : (lo+1)*colLen]
		}
		colT := bindMat(&fs.colT[idx], col, c.inC*c.kh*c.kw, oh*ow)
		dst := bindMat(&fs.dst[idx], out.Data()[lo*outLen:(lo+1)*outLen], c.outC, oh*ow)
		for i := lo; i < hi; i++ {
			if c.colCached {
				col = c.colCache[i*colLen : (i+1)*colLen]
				colT.Rebind(col)
			}
			img := x.Data()[i*imgLen : (i+1)*imgLen]
			tensor.Im2Col(img, c.inC, h, w, c.kh, c.kw, c.stride, c.pad, col)
			dst.Rebind(out.Data()[i*outLen : (i+1)*outLen])
			tensor.MatMulInto(dst, wMat, colT)
			if c.Bias != nil {
				bd := c.Bias.W.Data()
				od := dst.Data()
				for oc := 0; oc < c.outC; oc++ {
					b := bd[oc]
					row := od[oc*oh*ow : (oc+1)*oh*ow]
					for j := range row {
						row[j] += b
					}
				}
			}
		}
		if !c.colCached {
			tensor.PutF32(col)
		}
	})
	return out
}

// Backward implements Layer. The batch is partitioned into a fixed
// number of chunks (a function of the batch size only); each chunk
// accumulates its weight-gradient contribution into a private slot and
// the slots are tree-reduced in fixed order, so the result is
// bit-identical at any worker count. The im2col panels cached by the
// training forward are reused for the weight-gradient GEMM; everything
// else is pooled or layer-cached, so the steady state allocates
// nothing.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.lastInput
	n, h, w := x.Dim(0), c.lastH, c.lastW
	oh, ow := c.lastOutH, c.lastOutW
	imgLen := c.inC * h * w
	outLen := c.outC * oh * ow
	ckk := c.inC * c.kh * c.kw
	colLen := tensor.ColBufLen(c.inC, h, w, c.kh, c.kw, c.stride, c.pad)

	c.gradInBuf = tensor.Ensure(c.gradInBuf, n, c.inC, h, w)
	gradIn := c.gradInBuf
	wMat, gWMat := c.weightViews()

	chunks := convBwdChunks(n)
	slotLen := c.outC * ckk
	sc := c.bwd
	if sc == nil || sc.n != n || sc.h != h || sc.w != w {
		sc = &convBwdScratch{
			n: n, h: h, w: w,
			slotBuf: make([]float32, chunks*slotLen),
			slots:   make([][]float32, chunks),
			colT:    make([]*tensor.Tensor, chunks),
			gradCol: make([]*tensor.Tensor, chunks),
			tmpGW:   make([]*tensor.Tensor, chunks),
			localGW: make([]*tensor.Tensor, chunks),
			g:       make([]*tensor.Tensor, chunks),
		}
		if c.Bias != nil {
			sc.biasSlot = make([]float32, chunks*c.outC)
		}
		c.bwd = sc
	}
	slotBuf := sc.slotBuf
	for i := range slotBuf {
		slotBuf[i] = 0
	}
	biasSlots := sc.biasSlot
	for i := range biasSlots {
		biasSlots[i] = 0
	}

	tensor.ParallelChunksIndexed(n, chunks, batchWorkers, func(idx, lo, hi int) {
		var col []float32
		if !c.colCached {
			col = tensor.GetF32(colLen)
		} else {
			col = c.colCache[lo*colLen : (lo+1)*colLen]
		}
		colT := bindMat(&sc.colT[idx], col, ckk, oh*ow)
		gradColData := tensor.GetF32(ckk * oh * ow)
		gradCol := bindMat(&sc.gradCol[idx], gradColData, ckk, oh*ow)
		tmpGWData := tensor.GetF32(c.outC * ckk)
		tmpGW := bindMat(&sc.tmpGW[idx], tmpGWData, c.outC, ckk)
		localGW := bindMat(&sc.localGW[idx], slotBuf[idx*slotLen:(idx+1)*slotLen], c.outC, ckk)
		g := bindMat(&sc.g[idx], grad.Data()[lo*outLen:(lo+1)*outLen], c.outC, oh*ow)
		var localGB []float32
		if c.Bias != nil {
			localGB = biasSlots[idx*c.outC : (idx+1)*c.outC]
		}
		first := true
		for i := lo; i < hi; i++ {
			if c.colCached {
				colT.Rebind(c.colCache[i*colLen : (i+1)*colLen])
			} else {
				img := x.Data()[i*imgLen : (i+1)*imgLen]
				tensor.Im2Col(img, c.inC, h, w, c.kh, c.kw, c.stride, c.pad, col)
			}
			g.Rebind(grad.Data()[i*outLen : (i+1)*outLen])

			// dW_slot += g · colᵀ; the first item writes straight into
			// the slot (it was zeroed), later items go via scratch.
			if first {
				tensor.MatMulABTInto(localGW, g, colT)
				first = false
			} else {
				tensor.MatMulABTInto(tmpGW, g, colT)
				localGW.AddScaled(tmpGW, 1)
			}

			// dCol = Wᵀ · g, scattered back to the input image.
			tensor.MatMulATBInto(gradCol, wMat, g)
			dst := gradIn.Data()[i*imgLen : (i+1)*imgLen]
			for j := range dst {
				dst[j] = 0
			}
			tensor.Col2Im(gradCol.Data(), c.inC, h, w, c.kh, c.kw, c.stride, c.pad, dst)

			if c.Bias != nil {
				gd := g.Data()
				for oc := 0; oc < c.outC; oc++ {
					row := gd[oc*oh*ow : (oc+1)*oh*ow]
					var s float32
					for _, v := range row {
						s += v
					}
					localGB[oc] += s
				}
			}
		}
		if !c.colCached {
			tensor.PutF32(col)
		}
		tensor.PutF32(gradColData)
		tensor.PutF32(tmpGWData)
	})

	// Fixed-order tree reduction of the chunk slots into the parameter
	// gradients — deterministic regardless of scheduling.
	slots := sc.slots
	for s := range slots {
		slots[s] = slotBuf[s*slotLen : (s+1)*slotLen]
	}
	tensor.TreeReduceInto(gWMat.Data(), slots)
	if c.Bias != nil {
		for s := range slots {
			slots[s] = biasSlots[s*c.outC : (s+1)*c.outC]
		}
		tensor.TreeReduceInto(c.Bias.G.Data(), slots)
	}
	return gradIn
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param {
	if c.Bias != nil {
		return []*Param{c.Weight, c.Bias}
	}
	return []*Param{c.Bias, c.Weight}[1:]
}
