package nn

import (
	"sync"

	"rowhammer/internal/tensor"
)

// Conv2D is a 2-D convolution with square-independent kernel size,
// stride and zero padding. The weight layout is (OutC, InC, KH, KW),
// matching the PyTorch state-dict layout the paper's weight files use.
type Conv2D struct {
	Weight *Param
	Bias   *Param // nil when the layer is bias-free (ResNet convs)

	inC, outC          int
	kh, kw             int
	stride, pad        int
	lastInput          *tensor.Tensor
	lastH, lastW       int
	lastOutH, lastOutW int
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D constructs a convolution layer with Kaiming-initialized
// weights. Set withBias to false for convolutions followed by batch
// norm.
func NewConv2D(name string, rng *tensor.RNG, inC, outC, k, stride, pad int, withBias bool) *Conv2D {
	w := tensor.New(outC, inC, k, k)
	rng.KaimingNormal(w, inC*k*k)
	c := &Conv2D{
		Weight: NewParam(name+".weight", w),
		inC:    inC, outC: outC,
		kh: k, kw: k,
		stride: stride, pad: pad,
	}
	if withBias {
		c.Bias = NewParam(name+".bias", tensor.New(outC))
	}
	return c
}

// OutSize returns the spatial output size for an input of h×w.
func (c *Conv2D) OutSize(h, w int) (oh, ow int) {
	return (h+2*c.pad-c.kh)/c.stride + 1, (w+2*c.pad-c.kw)/c.stride + 1
}

// Forward implements Layer for input (N, InC, H, W).
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := c.OutSize(h, w)
	c.lastInput, c.lastH, c.lastW, c.lastOutH, c.lastOutW = x, h, w, oh, ow

	out := tensor.New(n, c.outC, oh, ow)
	wMat := c.Weight.W.Reshape(c.outC, c.inC*c.kh*c.kw)
	imgLen := c.inC * h * w
	outLen := c.outC * oh * ow
	colLen := tensor.ColBufLen(c.inC, h, w, c.kh, c.kw, c.stride, c.pad)

	batchParallel(n, func(lo, hi int) {
		col := tensor.GetF32(colLen)
		colT := tensor.FromSlice(col, c.inC*c.kh*c.kw, oh*ow)
		for i := lo; i < hi; i++ {
			img := x.Data()[i*imgLen : (i+1)*imgLen]
			tensor.Im2Col(img, c.inC, h, w, c.kh, c.kw, c.stride, c.pad, col)
			dst := tensor.FromSlice(out.Data()[i*outLen:(i+1)*outLen], c.outC, oh*ow)
			tensor.MatMulInto(dst, wMat, colT)
			if c.Bias != nil {
				bd := c.Bias.W.Data()
				od := dst.Data()
				for oc := 0; oc < c.outC; oc++ {
					b := bd[oc]
					row := od[oc*oh*ow : (oc+1)*oh*ow]
					for j := range row {
						row[j] += b
					}
				}
			}
		}
		tensor.PutF32(col)
	})
	return out
}

// Backward implements Layer. The im2col buffers are recomputed rather
// than cached so a full batch does not hold N column matrices alive.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.lastInput
	n, h, w := x.Dim(0), c.lastH, c.lastW
	oh, ow := c.lastOutH, c.lastOutW
	imgLen := c.inC * h * w
	outLen := c.outC * oh * ow
	ckk := c.inC * c.kh * c.kw
	colLen := tensor.ColBufLen(c.inC, h, w, c.kh, c.kw, c.stride, c.pad)

	gradIn := tensor.New(n, c.inC, h, w)
	wMat := c.Weight.W.Reshape(c.outC, ckk)
	gW := c.Weight.G.Reshape(c.outC, ckk)

	var mu sync.Mutex
	batchParallel(n, func(lo, hi int) {
		// All per-worker scratch is pooled: the column matrix and its
		// gradient are fully overwritten each item, the local
		// weight-gradient accumulator needs a zeroed start.
		col := tensor.GetF32(colLen)
		colT := tensor.FromSlice(col, ckk, oh*ow)
		gradCol := tensor.GetTensor(ckk, oh*ow)
		localGW := tensor.GetTensorZeroed(c.outC, ckk)
		tmpGW := tensor.GetTensor(c.outC, ckk)
		var localGB []float32
		if c.Bias != nil {
			localGB = tensor.GetF32Zeroed(c.outC)
		}
		for i := lo; i < hi; i++ {
			img := x.Data()[i*imgLen : (i+1)*imgLen]
			tensor.Im2Col(img, c.inC, h, w, c.kh, c.kw, c.stride, c.pad, col)
			g := tensor.FromSlice(grad.Data()[i*outLen:(i+1)*outLen], c.outC, oh*ow)

			// dW += g · colᵀ
			tensor.MatMulABTInto(tmpGW, g, colT)
			localGW.AddScaled(tmpGW, 1)

			// dCol = Wᵀ · g, scattered back to the input image.
			tensor.MatMulATBInto(gradCol, wMat, g)
			tensor.Col2Im(gradCol.Data(), c.inC, h, w, c.kh, c.kw, c.stride, c.pad,
				gradIn.Data()[i*imgLen:(i+1)*imgLen])

			if c.Bias != nil {
				gd := g.Data()
				for oc := 0; oc < c.outC; oc++ {
					row := gd[oc*oh*ow : (oc+1)*oh*ow]
					var s float32
					for _, v := range row {
						s += v
					}
					localGB[oc] += s
				}
			}
		}
		mu.Lock()
		gW.AddScaled(localGW, 1)
		if c.Bias != nil {
			bg := c.Bias.G.Data()
			for i, v := range localGB {
				bg[i] += v
			}
		}
		mu.Unlock()
		tensor.PutF32(col)
		tensor.PutTensor(gradCol)
		tensor.PutTensor(localGW)
		tensor.PutTensor(tmpGW)
		tensor.PutF32(localGB)
	})
	return gradIn
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param {
	if c.Bias != nil {
		return []*Param{c.Weight, c.Bias}
	}
	return []*Param{c.Weight}
}
