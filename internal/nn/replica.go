package nn

import "rowhammer/internal/tensor"

// replica is one shard worker of the data-parallel trainer: a
// structural clone of the master model plus the per-shard scratch the
// trainer reuses across steps.
type replica struct {
	model  *Model
	params []*Param
	bns    []*BatchNorm2D

	// grad is the per-shard dLoss/dLogits buffer (grow-only).
	grad *tensor.Tensor
	// lossSum is the shard's raw float64 negative-log-likelihood sum
	// from the last step, combined by the trainer in fixed shard order.
	lossSum float64
}

// newReplica structurally clones the master.
func newReplica(master *Model) *replica {
	m := master.Clone()
	return &replica{
		model:  m,
		params: m.Params(),
		bns:    collectBatchNorms(m.Root),
	}
}

// collectBatchNorms gathers the batch-norm layers in Walk order, which
// is deterministic and identical for structurally equal graphs.
func collectBatchNorms(root Layer) []*BatchNorm2D {
	var bns []*BatchNorm2D
	Walk(root, func(l Layer) {
		if bn, ok := l.(*BatchNorm2D); ok {
			bns = append(bns, bn)
		}
	})
	return bns
}

// syncFrom makes the replica an exact functional copy of the master:
// parameter values, batch-norm running statistics, and the Frozen
// flags. Gradient accumulators are not touched (the trainer zeroes
// them at the start of each step).
func (r *replica) syncFrom(masterParams []*Param, masterBNs []*BatchNorm2D) {
	for i, p := range masterParams {
		copy(r.params[i].W.Data(), p.W.Data())
	}
	for i, mbn := range masterBNs {
		rbn := r.bns[i]
		rbn.Frozen = mbn.Frozen
		copy(rbn.RunningMean, mbn.RunningMean)
		copy(rbn.RunningVar, mbn.RunningVar)
	}
}
