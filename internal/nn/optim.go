package nn

import (
	"math"

	"rowhammer/internal/tensor"
)

// Optimizer updates model parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update from the current gradients. Gradients are
	// not cleared; call Model.ZeroGrad before the next accumulation.
	Step()
}

// SGD is stochastic gradient descent with classical momentum and L2
// weight decay.
type SGD struct {
	params      []*Param
	lr          float32
	momentum    float32
	weightDecay float32
	velocity    []*tensor.Tensor
}

var _ Optimizer = (*SGD)(nil)

// NewSGD builds an SGD optimizer over params.
func NewSGD(params []*Param, lr, momentum, weightDecay float32) *SGD {
	vel := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		vel[i] = tensor.New(p.W.Shape()...)
	}
	return &SGD{params: params, lr: lr, momentum: momentum, weightDecay: weightDecay, velocity: vel}
}

// SetLR changes the learning rate (for schedules).
func (s *SGD) SetLR(lr float32) { s.lr = lr }

// Step implements Optimizer.
func (s *SGD) Step() {
	for i, p := range s.params {
		w, g, v := p.W.Data(), p.G.Data(), s.velocity[i].Data()
		for j := range w {
			grad := g[j] + s.weightDecay*w[j]
			v[j] = s.momentum*v[j] + grad
			w[j] -= s.lr * v[j]
		}
	}
}

// Adam is the Adam optimizer.
type Adam struct {
	params []*Param
	lr     float32
	beta1  float32
	beta2  float32
	eps    float32
	t      int
	m, v   []*tensor.Tensor
}

var _ Optimizer = (*Adam)(nil)

// NewAdam builds an Adam optimizer with the usual defaults
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(params []*Param, lr float32) *Adam {
	m := make([]*tensor.Tensor, len(params))
	v := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		m[i] = tensor.New(p.W.Shape()...)
		v[i] = tensor.New(p.W.Shape()...)
	}
	return &Adam{params: params, lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, m: m, v: v}
}

// Step implements Optimizer.
func (a *Adam) Step() {
	a.t++
	bc1 := 1 - float32(math.Pow(float64(a.beta1), float64(a.t)))
	bc2 := 1 - float32(math.Pow(float64(a.beta2), float64(a.t)))
	for i, p := range a.params {
		w, g := p.W.Data(), p.G.Data()
		m, v := a.m[i].Data(), a.v[i].Data()
		for j := range w {
			m[j] = a.beta1*m[j] + (1-a.beta1)*g[j]
			v[j] = a.beta2*v[j] + (1-a.beta2)*g[j]*g[j]
			mh := m[j] / bc1
			vh := v[j] / bc2
			w[j] -= a.lr * mh / (float32(math.Sqrt(float64(vh))) + a.eps)
		}
	}
}
