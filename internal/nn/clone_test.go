package nn

import (
	"testing"

	"rowhammer/internal/tensor"
)

// cloneTestModel exercises every layer type this package defines:
// conv (with and without bias), batch norm, ReLU, max pool, global
// average pool, flatten-free residual blocks (identity and downsample
// shortcuts), a tap, and the linear head.
func cloneTestModel(seed int64) *Model {
	rng := tensor.NewRNG(seed)
	main := NewSequential(
		NewConv2D("r.c1", rng, 4, 4, 3, 1, 1, false),
		NewBatchNorm2D("r.bn1", 4),
		NewReLU(),
		NewConv2D("r.c2", rng, 4, 4, 3, 1, 1, false),
		NewBatchNorm2D("r.bn2", 4),
	)
	down := NewSequential(
		NewConv2D("d.c1", rng, 4, 8, 3, 2, 1, false),
		NewBatchNorm2D("d.bn1", 8),
		NewReLU(),
		NewConv2D("d.c2", rng, 8, 8, 3, 1, 1, false),
		NewBatchNorm2D("d.bn2", 8),
	)
	short := NewSequential(
		NewConv2D("d.sc", rng, 4, 8, 1, 2, 0, false),
		NewBatchNorm2D("d.sbn", 8),
	)
	net := NewSequential(
		NewConv2D("stem", rng, 2, 4, 3, 1, 1, true),
		NewBatchNorm2D("bn", 4),
		NewReLU(),
		NewMaxPool2D(2, 2),
		NewResidual(main, nil),
		NewResidual(down, short),
		NewTap(),
		NewGlobalAvgPool(),
		NewLinear("fc", rng, 8, 3),
	)
	return NewModel("clone-test", net, 3, [3]int{2, 8, 8})
}

func TestModelCloneMatchesForward(t *testing.T) {
	m := cloneTestModel(31)
	// Give batch-norm running stats non-default values before cloning.
	rng := tensor.NewRNG(32)
	warm := tensor.New(4, 2, 8, 8)
	rng.FillNormal(warm, 0.5, 1.5)
	for i := 0; i < 5; i++ {
		m.Forward(warm, true)
	}
	c := m.Clone()

	pa, pb := m.Params(), c.Params()
	if len(pa) != len(pb) {
		t.Fatalf("clone has %d params, want %d", len(pb), len(pa))
	}
	for i := range pa {
		if pa[i].Name != pb[i].Name {
			t.Fatalf("param %d name %q != %q", i, pb[i].Name, pa[i].Name)
		}
		if pa[i].W == pb[i].W || pa[i].G == pb[i].G {
			t.Fatalf("param %q shares storage with the original", pa[i].Name)
		}
	}

	x := tensor.New(3, 2, 8, 8)
	rng.FillNormal(x, 0, 1)
	outA := m.Forward(x, false)
	outB := c.Forward(x, false)
	for i := range outA.Data() {
		if outA.Data()[i] != outB.Data()[i] {
			t.Fatalf("clone forward differs at %d: %v vs %v", i, outA.Data()[i], outB.Data()[i])
		}
	}
}

func TestModelCloneIsIndependent(t *testing.T) {
	m := cloneTestModel(33)
	c := m.Clone()
	rng := tensor.NewRNG(34)
	x := tensor.New(2, 2, 8, 8)
	rng.FillNormal(x, 0, 1)
	before := c.Forward(x, false).Clone()

	// Mutate the original's weights and run a training step on it; the
	// clone must be unaffected.
	for _, p := range m.Params() {
		p.W.Data()[0] += 10
	}
	m.ZeroGrad()
	out := m.Forward(x, true)
	_, grad := CrossEntropy(out, []int{0, 1}, 1)
	m.Backward(grad)

	after := c.Forward(x, false)
	for i := range before.Data() {
		if before.Data()[i] != after.Data()[i] {
			t.Fatal("mutating the original changed the clone's forward")
		}
	}
	for _, p := range c.Params() {
		for _, g := range p.G.Data() {
			if g != 0 {
				t.Fatal("original backward leaked gradients into the clone")
			}
		}
	}
}

func TestCloneCopiesBatchNormState(t *testing.T) {
	bn := NewBatchNorm2D("bn", 3)
	bn.RunningMean[1] = 0.7
	bn.RunningVar[2] = 4.2
	bn.Frozen = true
	c := bn.CloneLayer().(*BatchNorm2D)
	if !c.Frozen {
		t.Fatal("clone lost the Frozen flag")
	}
	if c.RunningMean[1] != 0.7 || c.RunningVar[2] != 4.2 {
		t.Fatal("clone lost running statistics")
	}
	c.RunningMean[1] = -1
	if bn.RunningMean[1] != 0.7 {
		t.Fatal("clone shares running-stat storage with the original")
	}
}

func TestCloneWeightsToRoundTripsIntoClone(t *testing.T) {
	m := cloneTestModel(35)
	c := m.Clone()
	// Drift the clone, then copy the master's weights back over it.
	for _, p := range c.Params() {
		p.W.Data()[0] = 99
	}
	if err := m.CloneWeightsTo(c); err != nil {
		t.Fatal(err)
	}
	pa, pb := m.Params(), c.Params()
	for i := range pa {
		for j := range pa[i].W.Data() {
			if pa[i].W.Data()[j] != pb[i].W.Data()[j] {
				t.Fatalf("param %q differs after CloneWeightsTo", pa[i].Name)
			}
		}
	}
}
