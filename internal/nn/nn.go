// Package nn implements the minimal neural-network engine the
// backdoor-injection attack needs: layers with explicit forward and
// backward passes, cross-entropy loss, SGD/Adam optimizers, and a model
// container that exposes parameters in their deterministic weight-file
// order (the order that matters for the memory-page constraints of the
// Rowhammer attack).
package nn

import (
	"fmt"

	"rowhammer/internal/tensor"
)

// Param is one trainable tensor together with its gradient accumulator.
type Param struct {
	// Name identifies the parameter in state-dict style, e.g.
	// "layer1.0.conv1.weight".
	Name string
	// W holds the current weight values.
	W *tensor.Tensor
	// G accumulates dLoss/dW; ZeroGrad clears it.
	G *tensor.Tensor
}

// NewParam allocates a parameter and a matching zeroed gradient.
func NewParam(name string, w *tensor.Tensor) *Param {
	return &Param{Name: name, W: w, G: tensor.New(w.Shape()...)}
}

// Layer is a differentiable network stage. Forward consumes the previous
// activation and caches whatever Backward needs; Backward consumes
// dLoss/dOutput, accumulates parameter gradients, and returns
// dLoss/dInput.
type Layer interface {
	// Forward computes the layer output for x. When train is true the
	// layer may update training-time statistics (e.g. batch norm).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward propagates the output gradient, accumulating into the
	// layer's parameter gradients, and returns the input gradient.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters in a fixed order.
	Params() []*Param
}

// Sequential chains layers; the output of each feeds the next.
type Sequential struct {
	layers []Layer
}

var _ Layer = (*Sequential)(nil)

// NewSequential builds a sequential container over the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{layers: layers}
}

// Append adds more layers to the end of the chain.
func (s *Sequential) Append(layers ...Layer) {
	s.layers = append(s.layers, layers...)
}

// Layers exposes the contained layers (read-only use).
func (s *Sequential) Layers() []Layer { return s.layers }

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.layers) - 1; i >= 0; i-- {
		grad = s.layers[i].Backward(grad)
	}
	return grad
}

// Params implements Layer; parameters appear in layer order.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Model wraps a root layer and gives whole-network conveniences: the
// flattened parameter list (in weight-file order), gradient clearing,
// and batched inference.
type Model struct {
	// Root is the network graph.
	Root Layer
	// Classes is the number of output classes.
	Classes int
	// InputShape is (C, H, W) for a single sample.
	InputShape [3]int
	// Arch names the architecture, e.g. "resnet20".
	Arch string

	params []*Param
}

// NewModel wraps root. The parameter list is captured once, fixing the
// weight-file order for the lifetime of the model.
func NewModel(arch string, root Layer, classes int, inputShape [3]int) *Model {
	return &Model{
		Root:       root,
		Classes:    classes,
		InputShape: inputShape,
		Arch:       arch,
		params:     root.Params(),
	}
}

// Params returns every trainable parameter in weight-file order.
func (m *Model) Params() []*Param { return m.params }

// NumParams returns the total scalar parameter count.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.params {
		n += p.W.Len()
	}
	return n
}

// ZeroGrad clears every parameter gradient.
func (m *Model) ZeroGrad() {
	for _, p := range m.params {
		p.G.Zero()
	}
}

// Forward runs the network on a batch (N,C,H,W) and returns logits (N,K).
func (m *Model) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return m.Root.Forward(x, train)
}

// Backward propagates the logits gradient through the network and
// returns the input gradient (N,C,H,W).
func (m *Model) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return m.Root.Backward(grad)
}

// Predict returns the argmax class for every sample in the batch.
func (m *Model) Predict(x *tensor.Tensor) []int {
	logits := m.Forward(x, false)
	n := logits.Dim(0)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = logits.ArgMaxRow(i)
	}
	return out
}

// FlattenParams copies every parameter value into a single vector laid
// out in weight-file order.
func (m *Model) FlattenParams() []float32 {
	out := make([]float32, 0, m.NumParams())
	for _, p := range m.params {
		out = append(out, p.W.Data()...)
	}
	return out
}

// LoadFlatParams overwrites the model's parameters from a flat vector in
// weight-file order; the length must match exactly.
func (m *Model) LoadFlatParams(flat []float32) error {
	if len(flat) != m.NumParams() {
		return fmt.Errorf("nn: flat vector has %d values, model has %d parameters", len(flat), m.NumParams())
	}
	off := 0
	for _, p := range m.params {
		copy(p.W.Data(), flat[off:off+p.W.Len()])
		off += p.W.Len()
	}
	return nil
}

// CloneWeightsTo copies parameter values into dst, which must have an
// identical parameter structure.
func (m *Model) CloneWeightsTo(dst *Model) error {
	if len(m.params) != len(dst.params) {
		return fmt.Errorf("nn: parameter count mismatch %d vs %d", len(m.params), len(dst.params))
	}
	for i, p := range m.params {
		if p.W.Len() != dst.params[i].W.Len() {
			return fmt.Errorf("nn: parameter %q size mismatch", p.Name)
		}
		copy(dst.params[i].W.Data(), p.W.Data())
	}
	return nil
}
