package nn

import "rowhammer/internal/tensor"

// Residual wraps a main path and an optional shortcut path and adds
// their outputs, followed by a ReLU — the standard ResNet block
// epilogue. A nil shortcut means identity.
type Residual struct {
	Main     Layer
	Shortcut Layer // nil for identity

	relu   *ReLU
	sumBuf *tensor.Tensor
}

var _ Layer = (*Residual)(nil)

// NewResidual builds a residual block. shortcut may be nil for the
// identity connection.
func NewResidual(main, shortcut Layer) *Residual {
	return &Residual{Main: main, Shortcut: shortcut, relu: NewReLU()}
}

// Forward implements Layer.
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	main := r.Main.Forward(x, train)
	short := x
	if r.Shortcut != nil {
		short = r.Shortcut.Forward(x, train)
	}
	var sum *tensor.Tensor
	if train {
		r.sumBuf = tensor.Ensure(r.sumBuf, main.Shape()...)
		sum = r.sumBuf
	} else {
		sum = tensor.New(main.Shape()...)
	}
	tensor.AddInto(sum, main, short)
	return r.relu.Forward(sum, train)
}

// Backward implements Layer: the post-ReLU gradient flows through both
// branches and the input gradients add.
func (r *Residual) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := r.relu.Backward(grad)
	gradIn := r.Main.Backward(g)
	if r.Shortcut != nil {
		gs := r.Shortcut.Backward(g)
		gradIn.AddScaled(gs, 1)
	} else {
		gradIn.AddScaled(g, 1)
	}
	return gradIn
}

// Params implements Layer; main-path parameters precede shortcut
// parameters, matching the PyTorch module order.
func (r *Residual) Params() []*Param {
	ps := r.Main.Params()
	if r.Shortcut != nil {
		ps = append(ps, r.Shortcut.Params()...)
	}
	return ps
}
