package defense

import (
	"sync"
	"testing"
	"time"

	"rowhammer/internal/data"
	"rowhammer/internal/metrics"
	"rowhammer/internal/models"
	"rowhammer/internal/nn"
	"rowhammer/internal/pretrain"
	"rowhammer/internal/quant"
	"rowhammer/internal/tensor"
)

var (
	once sync.Once
	res  *pretrain.Result
	rerr error
)

func victimCfg() pretrain.Config {
	return pretrain.Config{
		Model:        models.Config{Arch: "resnet20", Classes: 10, WidthMult: 0.25, Seed: 3},
		Data:         data.SynthCIFAR(0, 21),
		TrainSamples: 600,
		TestSamples:  300,
		Epochs:       3,
		BatchSize:    32,
		Seed:         3,
	}
}

func victim(t *testing.T) *pretrain.Result {
	t.Helper()
	if testing.Short() {
		t.Skip("heavy: trains a victim model; run without -short")
	}
	once.Do(func() { res, rerr = pretrain.Train(victimCfg()) })
	if rerr != nil {
		t.Fatal(rerr)
	}
	return res
}

func cloneModel(t *testing.T) *nn.Model {
	t.Helper()
	m, err := pretrain.CloneModel(victimCfg().Model, victim(t).Model)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAnalyzeBinarizationShrinksPages(t *testing.T) {
	m := cloneModel(t)
	// Assume ~90% of params are binarizable convolutions.
	info := AnalyzeBinarization(m, m.NumParams()*9/10)
	if info.BinarizedPages >= info.FullPrecisionPages {
		t.Fatalf("binarization did not shrink pages: %d vs %d",
			info.BinarizedPages, info.FullPrecisionPages)
	}
	if info.MaxNFlip != info.BinarizedPages {
		t.Fatal("MaxNFlip must equal the binarized page count")
	}
}

func TestCountBinarizableParams(t *testing.T) {
	m, err := models.Build(models.Config{Arch: "bin-resnet32", Classes: 10, WidthMult: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := CountBinarizableParams(m.Root, func(l nn.Layer) (int, bool) {
		if bc, ok := l.(*models.BinConv2D); ok {
			return bc.Params()[0].W.Len(), true
		}
		return 0, false
	})
	if n == 0 {
		t.Fatal("no binarizable params found in bin-resnet32")
	}
	if n >= m.NumParams() {
		t.Fatal("stem/bn/fc must remain full precision")
	}
}

func TestPWCIncreasesClustering(t *testing.T) {
	m := cloneModel(t)
	before := ClusteringScore(m)
	cfg := DefaultPWCConfig()
	cfg.Iterations = 15
	PWCFineTune(m, victim(t).Train.Head(128), cfg)
	after := ClusteringScore(m)
	if after >= before {
		t.Fatalf("PWC did not cluster weights: %.4f → %.4f", before, after)
	}
	// The model must remain usable.
	ta := metrics.TestAccuracy(m, victim(t).Test)
	if ta < 0.6 {
		t.Fatalf("PWC destroyed accuracy: %.3f", ta)
	}
}

func TestDeepDyveMissesPersistentFaults(t *testing.T) {
	r := victim(t)
	main := cloneModel(t)
	// Corrupt the main model to emulate a persistent Rowhammer fault
	// that changes some outputs.
	q := quant.NewQuantizer(main)
	for i := 0; i < q.NumWeights(); i += q.NumWeights() / 8 {
		q.FlipBit(i, 7)
	}
	checker := cloneModel(t) // the (clean) distilled checker
	dd := &DeepDyve{Main: main, Checker: checker}

	trigger := data.NewSquareTrigger(3, 32, 32, 10)
	rep := EvaluateDeepDyve(dd, r.Test.Head(128), trigger, 2)
	if rep.RecoveredRate != 0 {
		t.Fatalf("re-running a persistently corrupted model cannot recover, got %.3f", rep.RecoveredRate)
	}
	// With clean checker vs corrupted main there must be alarms, but
	// alarms alone do not stop the mispredictions.
	if rep.AlarmRate == 0 {
		t.Fatal("checker should disagree with a heavily corrupted model")
	}
}

func TestWeightEncoderDetectsFlip(t *testing.T) {
	codes := make([]int8, 2048)
	for i := range codes {
		codes[i] = int8(i % 127)
	}
	enc := NewWeightEncoder(len(codes), 8, 1)
	enc.Encode(codes)
	if ok, _ := enc.Verify(codes); !ok {
		t.Fatal("clean verify failed")
	}
	codes[77] ^= int8(-128) // MSB flip
	ok, elapsed := enc.Verify(codes)
	if ok {
		t.Fatal("encoder missed a bit flip")
	}
	if elapsed <= 0 {
		t.Fatal("no cost measured")
	}
	if enc.StorageOverheadBytes() <= 0 {
		t.Fatal("no storage overhead reported")
	}
}

func TestEstimateEncodingOverheadScalesQuadratically(t *testing.T) {
	v1, s1 := EstimateEncodingOverhead(1000, 1000, time.Nanosecond)
	v2, s2 := EstimateEncodingOverhead(2000, 2000, time.Nanosecond)
	if v2 != 4*v1 {
		t.Fatalf("verify cost should scale with N·M: %v vs %v", v1, v2)
	}
	if s2 <= s1 {
		t.Fatal("storage ratio should grow with signature length")
	}
}

func TestRADARDetectsMSBFlipAndMissesAdaptive(t *testing.T) {
	codes := make([]int8, 4096)
	for i := range codes {
		codes[i] = int8((i * 31) % 120)
	}
	r := NewRADAR(512, 0x80)
	r.Snapshot(codes)
	if r.Detected(codes) {
		t.Fatal("clean codes flagged")
	}
	// MSB flip → detected.
	attacked := append([]int8(nil), codes...)
	attacked[100] = int8(byte(attacked[100]) ^ 0x80)
	bad, elapsed := r.Check(attacked)
	if len(bad) != 1 || bad[0] != 0 {
		t.Fatalf("bad groups = %v, want [0]", bad)
	}
	if elapsed < 0 {
		t.Fatal("negative elapsed")
	}
	// Adaptive attacker flips only bits 0-6 → undetected.
	adaptive := append([]int8(nil), codes...)
	adaptive[100] = int8(byte(adaptive[100]) ^ 0x40)
	if r.Detected(adaptive) {
		t.Fatal("RADAR with MSB mask must miss a bit-6 flip")
	}
	// Full-mask RADAR catches it, at proportional extra scan cost.
	full := NewRADAR(512, 0xFF)
	full.Snapshot(codes)
	if !full.Detected(adaptive) {
		t.Fatal("full-mask RADAR must detect any flip")
	}
}

func TestSaliencyFocusShiftsWithBackdooredWeights(t *testing.T) {
	r := victim(t)
	clean := cloneModel(t)
	trigger := data.NewSquareTrigger(3, 32, 32, 10)

	// Heatmap sanity: non-negative, right shape.
	heat := SaliencyMap(clean, r.Test.Image(0), 2)
	if heat.Dim(0) != 32 || heat.Dim(1) != 32 {
		t.Fatalf("heatmap shape %v", heat.Shape())
	}
	for _, v := range heat.Data() {
		if v < 0 {
			t.Fatal("saliency must be non-negative")
		}
	}
	ratio := TriggerFocusRatio(heat, trigger)
	if ratio < 0 || ratio > 1 {
		t.Fatalf("focus ratio %v out of range", ratio)
	}

	// A crude "backdoored" model: crank the weights feeding the target
	// class so triggered inputs dominate; focus should move toward the
	// trigger region relative to the clean model is not guaranteed for
	// an arbitrary corruption, so here we verify the report mechanics.
	rep := EvaluateSentiNet(clean, clean, r.Test, trigger, 2, 4)
	if rep.CleanFocus != rep.BackdooredFocus {
		t.Fatal("identical models must report identical focus")
	}
	if rep.MaskArea <= 0 || rep.MaskArea >= 1 {
		t.Fatalf("mask area %v", rep.MaskArea)
	}
}

func TestReconstructorDilutesSingleWeightExcursion(t *testing.T) {
	m := cloneModel(t)
	rec := NewReconstructor(m, 64)
	p := m.Params()[0] // conv1 weight: large enough for a full group
	if p.W.Len() < 64 {
		t.Fatalf("test assumes ≥64 weights in %s", p.Name)
	}
	orig := p.W.Data()[0]
	p.W.Data()[0] = orig + 10 // a bit-flip-sized excursion

	undo := rec.Apply(m)
	afterRecon := p.W.Data()[0]
	if !(afterRecon < orig+10) {
		t.Fatal("reconstruction did not reduce the excursion")
	}
	// Group sum must be restored to the recorded value.
	var s float64
	for _, v := range p.W.Data()[:64] {
		s += float64(v)
	}
	undo()
	if p.W.Data()[0] != orig+10 {
		t.Fatal("undo did not restore weights")
	}
}

func TestReconstructorWrapLossRestoresWeights(t *testing.T) {
	m := cloneModel(t)
	rec := NewReconstructor(m, 64)
	p := m.Params()[0]
	p.W.Data()[3] += 5
	before := append([]float32(nil), p.W.Data()...)
	wrap := rec.WrapLossWith(m)
	got := wrap(func() float32 {
		// Inside the wrapper the excursion is diluted.
		if p.W.Data()[3] >= before[3] {
			t.Error("wrapper did not apply reconstruction")
		}
		return 42
	})
	if got != 42 {
		t.Fatal("wrapper must pass the loss through")
	}
	for i := range before {
		if p.W.Data()[i] != before[i] {
			t.Fatal("wrapper did not restore weights")
		}
	}
}

func TestSaliencyDeterministic(t *testing.T) {
	m := cloneModel(t)
	r := victim(t)
	a := SaliencyMap(m, r.Test.Image(1), 0)
	b := SaliencyMap(m, r.Test.Image(1), 0)
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("saliency not deterministic")
		}
	}
	_ = tensor.New(1) // keep tensor import for helpers above
}

func TestGradCAMTapAndHeatmap(t *testing.T) {
	m := cloneModel(t)
	tap, err := InstallGradCAMTap(m)
	if err != nil {
		t.Fatal(err)
	}
	r := victim(t)
	heat, err := GradCAM(m, tap, r.Test.Image(0), 2)
	if err != nil {
		t.Fatal(err)
	}
	if heat.Dim(0) != 32 || heat.Dim(1) != 32 {
		t.Fatalf("heatmap shape %v", heat.Shape())
	}
	var mass float64
	for _, v := range heat.Data() {
		if v < 0 {
			t.Fatal("Grad-CAM heat must be non-negative (ReLU)")
		}
		mass += float64(v)
	}
	// The tapped model must still classify identically.
	m2 := cloneModel(t)
	p1 := m.Predict(r.Test.Images)
	p2 := m2.Predict(r.Test.Images)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("tap changed model behavior")
		}
	}
	// Bad class index must error.
	if _, err := GradCAM(m, tap, r.Test.Image(0), 99); err == nil {
		t.Fatal("out-of-range class must error")
	}
}

func TestInstallGradCAMTapRequiresGAP(t *testing.T) {
	rng := tensor.NewRNG(1)
	m := nn.NewModel("flat", nn.NewSequential(
		nn.NewFlatten(), nn.NewLinear("fc", rng, 3*32*32, 10),
	), 10, [3]int{3, 32, 32})
	if _, err := InstallGradCAMTap(m); err == nil {
		t.Fatal("model without GlobalAvgPool must be rejected")
	}
}

func TestEvaluateGradCAMIdenticalModels(t *testing.T) {
	r := victim(t)
	a := cloneModel(t)
	b := cloneModel(t)
	trigger := data.NewSquareTrigger(3, 32, 32, 10)
	rep, err := EvaluateGradCAM(a, b, r.Test, trigger, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CleanFocus != rep.BackdooredFocus {
		t.Fatal("identical models must report identical Grad-CAM focus")
	}
}

// TestDeepDyveQuantEngine runs the DeepDyve protocol with both engines
// on the deployment-form int8 path and checks it reaches the same
// verdicts as the fp32 pair on the identical corrupted weights — and
// that the parallel (concurrency-safe) evaluation matches a pinned
// single-worker run exactly.
func TestDeepDyveQuantEngine(t *testing.T) {
	r := victim(t)
	corrupt := func(m *nn.Model) *quant.Quantizer {
		q := quant.NewQuantizer(m)
		for i := 0; i < q.NumWeights(); i += q.NumWeights() / 8 {
			q.FlipBit(i, 7)
		}
		return q
	}
	mainF := cloneModel(t)
	qMain := corrupt(mainF)
	mainQ := quant.NewQModel(qMain)
	checkF := cloneModel(t)
	checkQ := quant.NewQModel(quant.NewQuantizer(checkF))
	if !mainQ.ConcurrentSafe() || !checkQ.ConcurrentSafe() {
		t.Fatal("resnet20 engines must be concurrency-safe")
	}

	trigger := data.NewSquareTrigger(3, 32, 32, 10)
	ds := r.Test.Head(128)
	ddF := &DeepDyve{Main: mainF, Checker: checkF}
	ddQ := &DeepDyve{Main: mainQ, Checker: checkQ}
	t0 := time.Now()
	repF := EvaluateDeepDyve(ddF, ds, trigger, 2)
	dF := time.Since(t0)
	t0 = time.Now()
	repQ := EvaluateDeepDyve(ddQ, ds, trigger, 2)
	dQ := time.Since(t0)
	t.Logf("DeepDyve sweep wall-clock: fp32 %v, int8 %v", dF, dQ)

	prev := tensor.SetMaxWorkers(1)
	repSeq := EvaluateDeepDyve(ddQ, ds, trigger, 2)
	tensor.SetMaxWorkers(prev)
	if repSeq != repQ {
		t.Fatalf("parallel report %+v differs from sequential %+v", repQ, repSeq)
	}

	if repQ.RecoveredRate != 0 {
		t.Fatalf("int8 re-run cannot recover persistent faults, got %.3f", repQ.RecoveredRate)
	}
	if d := repQ.AlarmRate - repF.AlarmRate; d < -0.1 || d > 0.1 {
		t.Fatalf("alarm rate diverges across engines: int8 %.3f vs fp32 %.3f", repQ.AlarmRate, repF.AlarmRate)
	}
	if d := repQ.ASRDespiteDefense - repF.ASRDespiteDefense; d < -0.1 || d > 0.1 {
		t.Fatalf("ASR-despite-defense diverges: int8 %.3f vs fp32 %.3f", repQ.ASRDespiteDefense, repF.ASRDespiteDefense)
	}
}
