// Package defense implements the countermeasures the paper evaluates in
// §VI — prevention (binarization-aware training, piecewise weight
// clustering), detection (DeepDyve, weight encoding, RADAR, a
// SentiNet-style saliency filter) and recovery (weight reconstruction)
// — along with the adaptive attacker variants that bypass them.
package defense

import (
	"rowhammer/internal/nn"
	"rowhammer/internal/quant"
)

// BinarizationInfo summarizes why binarization-aware training blocks
// the attack: a binarized model's weight footprint shrinks by 8×, so
// the number of occupied memory pages — the hard upper bound on N_flip
// under the one-flip-per-page constraint — becomes too small to encode
// a backdoor.
type BinarizationInfo struct {
	// FullPrecisionPages is the page count of the int8 deployment.
	FullPrecisionPages int
	// BinarizedPages is the page count when convolution weights are
	// 1-bit (batch norm and the classifier stay 8-bit).
	BinarizedPages int
	// MaxNFlip is the attack's flip budget against the binarized model.
	MaxNFlip int
}

// AnalyzeBinarization computes the footprint shrinkage for a model
// whose convolution weights binarize. binConvParams is the number of
// scalar weights that become single bits.
func AnalyzeBinarization(m *nn.Model, binConvParams int) BinarizationInfo {
	total := m.NumParams()
	fullPages := (total + quant.PageSize - 1) / quant.PageSize
	// Binarized convs store 1 bit per weight (plus one α scale per
	// filter, negligible); everything else stays one byte.
	binBytes := (total - binConvParams) + (binConvParams+7)/8
	binPages := (binBytes + quant.PageSize - 1) / quant.PageSize
	return BinarizationInfo{
		FullPrecisionPages: fullPages,
		BinarizedPages:     binPages,
		MaxNFlip:           binPages,
	}
}

// CountBinarizableParams sums the weights of every binarization-aware
// convolution in the graph.
func CountBinarizableParams(root nn.Layer, isBinConv func(nn.Layer) (int, bool)) int {
	total := 0
	nn.Walk(root, func(l nn.Layer) {
		if n, ok := isBinConv(l); ok {
			total += n
		}
	})
	return total
}
