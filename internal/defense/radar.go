package defense

import "time"

// RADAR is the checksum-based runtime detector of Li et al.: weights
// are split into fixed groups and a checksum of each group's most
// significant bits is stored at deployment and re-validated at
// inference time. An MSB flip changes its group's checksum and is
// detected; an attacker who constrains Bit Reduction to avoid the
// protected bit positions (Config.ForbiddenBitMask in package core)
// bypasses the scheme entirely (§VI-B).
type RADAR struct {
	// GroupSize is the number of weights per checksum group.
	GroupSize int
	// ProtectedMask selects the bit positions covered by the checksum
	// (0x80 = MSB only, the paper's configuration; 0xFF = every bit).
	ProtectedMask byte

	sums []uint32
}

// NewRADAR builds a detector with the given group size and protected
// bit mask.
func NewRADAR(groupSize int, protectedMask byte) *RADAR {
	if groupSize <= 0 {
		groupSize = 512
	}
	return &RADAR{GroupSize: groupSize, ProtectedMask: protectedMask}
}

// checksum folds the protected bits of a group into a 32-bit value
// (simple rotating XOR — collision-resistant enough for single flips).
func (r *RADAR) checksum(codes []int8) uint32 {
	var sum uint32
	for i, c := range codes {
		v := uint32(byte(c) & r.ProtectedMask)
		rot := uint(i % 24)
		sum ^= v << rot
	}
	return sum
}

// Snapshot stores the reference checksums of the clean weight file.
func (r *RADAR) Snapshot(codes []int8) {
	n := (len(codes) + r.GroupSize - 1) / r.GroupSize
	r.sums = make([]uint32, n)
	for g := 0; g < n; g++ {
		lo := g * r.GroupSize
		hi := lo + r.GroupSize
		if hi > len(codes) {
			hi = len(codes)
		}
		r.sums[g] = r.checksum(codes[lo:hi])
	}
}

// Check validates the current weight file against the snapshot and
// returns the indices of mismatching groups plus the scan cost.
func (r *RADAR) Check(codes []int8) (badGroups []int, elapsed time.Duration) {
	start := time.Now()
	for g := range r.sums {
		lo := g * r.GroupSize
		hi := lo + r.GroupSize
		if hi > len(codes) {
			hi = len(codes)
		}
		if r.checksum(codes[lo:hi]) != r.sums[g] {
			badGroups = append(badGroups, g)
		}
	}
	return badGroups, time.Since(start)
}

// Detected reports whether any group mismatches.
func (r *RADAR) Detected(codes []int8) bool {
	bad, _ := r.Check(codes)
	return len(bad) > 0
}
