package defense

import (
	"rowhammer/internal/data"
	"rowhammer/internal/nn"
	"rowhammer/internal/tensor"
)

// SaliencyMap computes an input-attribution heatmap for one image and a
// class: |∂logit_class/∂x| summed over channels. This is the
// gradient-saliency substitute for the paper's GradCAM visualization
// (Figure 8) — our from-scratch engine exposes input gradients rather
// than intermediate-activation hooks, and the quantity of interest
// (where the model's evidence for the class concentrates) is the same.
// The substitution is recorded in DESIGN.md.
func SaliencyMap(m *nn.Model, image []float32, class int) *tensor.Tensor {
	c, h, w := m.InputShape[0], m.InputShape[1], m.InputShape[2]
	x := tensor.FromSlice(append([]float32(nil), image...), 1, c, h, w)
	// Training-mode forward fills the backward caches; frozen batch
	// norm keeps inference behavior (and running stats) untouched.
	nn.FreezeBatchNorm(m.Root)
	logits := m.Forward(x, true)
	m.ZeroGrad()
	onehot := tensor.New(1, logits.Dim(1))
	onehot.Set(1, 0, class)
	inGrad := m.Backward(onehot)

	heat := tensor.New(h, w)
	hd := heat.Data()
	gd := inGrad.Data()
	for ch := 0; ch < c; ch++ {
		for i := 0; i < h*w; i++ {
			g := gd[ch*h*w+i]
			if g < 0 {
				g = -g
			}
			hd[i] += g
		}
	}
	return heat
}

// TriggerFocusRatio returns the fraction of saliency mass inside the
// trigger mask. A clean model attends to the object; a backdoored model
// shifts its focus onto the trigger (Figure 8's observation), so this
// ratio rises sharply after the attack.
func TriggerFocusRatio(heat *tensor.Tensor, trigger *data.Trigger) float64 {
	h, w := heat.Dim(0), heat.Dim(1)
	var inside, total float64
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := float64(heat.At(y, x))
			total += v
			if trigger.InMask(y, x) {
				inside += v
			}
		}
	}
	if total == 0 {
		return 0
	}
	return inside / total
}

// SentiNetReport compares trigger focus before and after an attack
// (averaged over a sample set), the quantitative form of Figure 8.
type SentiNetReport struct {
	// CleanFocus is the mean trigger-region saliency ratio of the clean
	// model on triggered inputs.
	CleanFocus float64
	// BackdooredFocus is the same ratio for the backdoored model.
	BackdooredFocus float64
	// MaskArea is the trigger mask's share of the image area (the
	// focus ratio of an attribution-blind model).
	MaskArea float64
}

// EvaluateSentiNet measures the focus shift over the first n samples of
// the dataset.
func EvaluateSentiNet(clean, backdoored *nn.Model, ds *data.Dataset, trigger *data.Trigger, target, n int) SentiNetReport {
	if n > ds.Len() {
		n = ds.Len()
	}
	c, h, w := ds.ImageSize()
	rep := SentiNetReport{
		MaskArea: float64(trigger.Size*trigger.Size) / float64(h*w),
	}
	for i := 0; i < n; i++ {
		img := tensor.FromSlice(append([]float32(nil), ds.Image(i)...), 1, c, h, w)
		trigger.Apply(img)
		stamped := img.Data()
		rep.CleanFocus += TriggerFocusRatio(SaliencyMap(clean, stamped, target), trigger)
		rep.BackdooredFocus += TriggerFocusRatio(SaliencyMap(backdoored, stamped, target), trigger)
	}
	rep.CleanFocus /= float64(n)
	rep.BackdooredFocus /= float64(n)
	return rep
}
