package defense

import (
	"time"

	"rowhammer/internal/tensor"
)

// WeightEncoder is the concurrent weight-encoding detector of Liu et
// al.: the deployed weights are projected through a random binary
// matrix into short signatures that are recomputed and compared at run
// time. Verifying all N weights costs O(N²) multiply-accumulates, which
// is why the original proposal protects only the most sensitive layers
// — and why an attack that can target *any* layer (like CFT+BR) either
// escapes the protected region or forces a prohibitive overhead
// (§VI-B).
type WeightEncoder struct {
	// K is the random projection matrix (N × M signs).
	K [][]int8
	// M is the signature length.
	M   int
	sig []int64
}

// NewWeightEncoder builds an encoder for n weights with signature
// length m.
func NewWeightEncoder(n, m int, seed int64) *WeightEncoder {
	rng := tensor.NewRNG(seed)
	k := make([][]int8, n)
	for i := range k {
		row := make([]int8, m)
		for j := range row {
			if rng.Float64() < 0.5 {
				row[j] = 1
			} else {
				row[j] = -1
			}
		}
		k[i] = row
	}
	return &WeightEncoder{K: k, M: m}
}

// Encode computes and stores the reference signature of the weight
// codes.
func (e *WeightEncoder) Encode(codes []int8) {
	e.sig = e.project(codes)
}

func (e *WeightEncoder) project(codes []int8) []int64 {
	sig := make([]int64, e.M)
	for i, c := range codes {
		if i >= len(e.K) {
			break
		}
		row := e.K[i]
		ci := int64(c)
		for j := range row {
			sig[j] += ci * int64(row[j])
		}
	}
	return sig
}

// Verify recomputes the signature and reports whether it matches,
// along with the wall-clock cost of the check.
func (e *WeightEncoder) Verify(codes []int8) (ok bool, elapsed time.Duration) {
	start := time.Now()
	sig := e.project(codes)
	elapsed = time.Since(start)
	for j := range sig {
		if sig[j] != e.sig[j] {
			return false, elapsed
		}
	}
	return true, elapsed
}

// StorageOverheadBytes returns the extra bytes the defense stores: the
// projection matrix (1 bit per entry) plus the signature.
func (e *WeightEncoder) StorageOverheadBytes() int {
	matrixBits := len(e.K) * e.M
	return matrixBits/8 + e.M*8
}

// EstimateEncodingOverhead extrapolates the paper's §VI-B analysis: the
// verification time for n weights given a measured per-weight-per-
// signature cost, and the storage ratio versus the n-byte weight file.
func EstimateEncodingOverhead(n, m int, perMAC time.Duration) (verify time.Duration, storageRatio float64) {
	verify = time.Duration(int64(n) * int64(m) * int64(perMAC))
	matrixBytes := float64(n*m) / 8
	storageRatio = (matrixBytes + float64(m*8)) / float64(n)
	return verify, storageRatio
}
