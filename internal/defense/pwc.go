package defense

import (
	"rowhammer/internal/data"
	"rowhammer/internal/nn"
)

// PWCConfig parameterizes piecewise weight clustering fine-tuning.
type PWCConfig struct {
	// Lambda weighs the clustering penalty against the task loss.
	Lambda float32
	// Iterations and LR drive the fine-tuning SGD.
	Iterations int
	LR         float32
	BatchSize  int
}

// DefaultPWCConfig returns workable PWC settings.
func DefaultPWCConfig() PWCConfig {
	return PWCConfig{Lambda: 0.02, Iterations: 40, LR: 0.01, BatchSize: 32}
}

// PWCFineTune retrains the model with the piecewise weight clustering
// penalty of He et al.: each weight is pulled toward the nearer of the
// two per-tensor cluster centers ±mean|w|. Clustered weight
// distributions leave less slack for single-bit perturbations, which
// strengthens the TA/ASR trade-off the attacker faces (§VI-A).
func PWCFineTune(m *nn.Model, train *data.Dataset, cfg PWCConfig) {
	opt := nn.NewSGD(m.Params(), cfg.LR, 0.9, 0)
	batches := train.Batches(cfg.BatchSize)
	for t := 0; t < cfg.Iterations; t++ {
		b := batches[t%len(batches)]
		m.ZeroGrad()
		out := m.Forward(b.Images, true)
		_, grad := nn.CrossEntropy(out, b.Labels, 1)
		m.Backward(grad)
		addPWCGrad(m, cfg.Lambda)
		opt.Step()
	}
}

// addPWCGrad accumulates the clustering penalty gradient
// λ·2·(w − c(w)) where c(w) is the nearer of ±mean|w| per tensor.
func addPWCGrad(m *nn.Model, lambda float32) {
	for _, p := range m.Params() {
		w := p.W.Data()
		if len(w) == 0 {
			continue
		}
		var sumAbs float64
		for _, v := range w {
			if v < 0 {
				sumAbs -= float64(v)
			} else {
				sumAbs += float64(v)
			}
		}
		center := float32(sumAbs / float64(len(w)))
		g := p.G.Data()
		for i, v := range w {
			c := center
			if v < 0 {
				c = -center
			}
			g[i] += 2 * lambda * (v - c)
		}
	}
}

// ClusteringScore measures how bimodal a model's weights are: the mean
// squared distance of weights to their nearer cluster center,
// normalized by the center magnitude. Lower is more clustered.
func ClusteringScore(m *nn.Model) float64 {
	var total, count float64
	for _, p := range m.Params() {
		w := p.W.Data()
		if len(w) == 0 {
			continue
		}
		var sumAbs float64
		for _, v := range w {
			if v < 0 {
				sumAbs -= float64(v)
			} else {
				sumAbs += float64(v)
			}
		}
		center := sumAbs / float64(len(w))
		if center == 0 {
			continue
		}
		for _, v := range w {
			c := center
			if v < 0 {
				c = -center
			}
			d := (float64(v) - c) / center
			total += d * d
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return total / count
}
