package defense

import "rowhammer/internal/nn"

// Reconstructor is the weight-reconstruction recovery of Li et al.
// (DAC'20): at deployment, per-group weight statistics (sums and
// magnitude bounds) are stored; after a suspected fault, each group's
// deviation from its recorded sum is repaired. A bit flip typically
// drives one weight far outside the group's recorded magnitude range —
// that outlier absorbs the whole correction (the flip is effectively
// undone); deviations with no identifiable outlier are spread evenly
// over the group, diluting their effect. A naive attacker's ASR
// collapses; an attacker *aware* of the defense optimizes its flips
// under the reconstruction transform (core.Config.WrapLoss) so the
// surviving flips stay inside the recorded ranges, and retains a high
// ASR (§VI-C).
type Reconstructor struct {
	// GroupSize is the number of consecutive weights per statistics
	// group (within one tensor).
	GroupSize int

	sums    [][]float32 // per tensor: per group recorded sum
	maxAbss [][]float32 // per tensor: per group recorded max |w|
}

// NewReconstructor snapshots the clean model's per-group statistics.
func NewReconstructor(m *nn.Model, groupSize int) *Reconstructor {
	if groupSize <= 0 {
		groupSize = 64
	}
	r := &Reconstructor{GroupSize: groupSize}
	for _, p := range m.Params() {
		w := p.W.Data()
		n := (len(w) + groupSize - 1) / groupSize
		sums := make([]float32, n)
		maxs := make([]float32, n)
		for g := 0; g < n; g++ {
			lo, hi := g*groupSize, (g+1)*groupSize
			if hi > len(w) {
				hi = len(w)
			}
			var s float64
			var mx float32
			for _, v := range w[lo:hi] {
				s += float64(v)
				a := v
				if a < 0 {
					a = -a
				}
				if a > mx {
					mx = a
				}
			}
			sums[g] = float32(s)
			maxs[g] = mx
		}
		r.sums = append(r.sums, sums)
		r.maxAbss = append(r.maxAbss, maxs)
	}
	return r
}

// Apply reconstructs the model in place and returns an undo closure
// restoring the pre-reconstruction weights (used by the adaptive
// attacker's loss wrapper).
func (r *Reconstructor) Apply(m *nn.Model) (undo func()) {
	type patch struct {
		data  []float32
		saved []float32
	}
	var patches []patch
	for pi, p := range m.Params() {
		w := p.W.Data()
		saved := append([]float32(nil), w...)
		patches = append(patches, patch{data: w, saved: saved})
		sums := r.sums[pi]
		maxs := r.maxAbss[pi]
		for g := range sums {
			lo, hi := g*r.GroupSize, (g+1)*r.GroupSize
			if hi > len(w) {
				hi = len(w)
			}
			var s float64
			for _, v := range w[lo:hi] {
				s += float64(v)
			}
			dev := float32(s) - sums[g]
			if dev == 0 {
				continue
			}
			// Outlier search: the weight furthest beyond the recorded
			// magnitude bound (with 5% slack for quantization noise).
			bound := maxs[g] * 1.05
			outlier, excess := -1, float32(0)
			for i := lo; i < hi; i++ {
				a := w[i]
				if a < 0 {
					a = -a
				}
				if a > bound && a-bound > excess {
					outlier, excess = i, a-bound
				}
			}
			if outlier >= 0 {
				// The fault is localized: pull the outlier back so the
				// group sum matches the recorded value.
				w[outlier] -= dev
				continue
			}
			// No identifiable outlier: dilute evenly.
			adj := dev / float32(hi-lo)
			for i := lo; i < hi; i++ {
				w[i] -= adj
			}
		}
	}
	return func() {
		for _, p := range patches {
			copy(p.data, p.saved)
		}
	}
}

// WrapLossWith returns a core.Config.WrapLoss-compatible closure that
// evaluates losses under reconstruction — the defense-aware attacker's
// hook.
func (r *Reconstructor) WrapLossWith(m *nn.Model) func(eval func() float32) float32 {
	return func(eval func() float32) float32 {
		undo := r.Apply(m)
		defer undo()
		return eval()
	}
}
