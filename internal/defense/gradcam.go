package defense

import (
	"fmt"

	"rowhammer/internal/data"
	"rowhammer/internal/nn"
	"rowhammer/internal/tensor"
)

// GradCAM computes the Grad-CAM heatmap of Selvaraju et al. for one
// image and class: the last convolutional feature map, weighted by the
// spatial mean of its class gradient and rectified, upsampled to the
// input resolution. This is the estimator the paper's Figure 8 /
// SentiNet analysis uses; the lighter gradient-saliency variant is in
// SaliencyMap.
//
// A Tap must be installed in the model first (InstallGradCAMTap); the
// same tapped model can be reused across calls.
func GradCAM(m *nn.Model, tap *nn.Tap, image []float32, class int) (*tensor.Tensor, error) {
	c, h, w := m.InputShape[0], m.InputShape[1], m.InputShape[2]
	x := tensor.FromSlice(append([]float32(nil), image...), 1, c, h, w)
	// Training-mode forward fills the backward caches; frozen batch
	// norm keeps inference behavior (and running stats) untouched.
	nn.FreezeBatchNorm(m.Root)
	logits := m.Forward(x, true)
	if class < 0 || class >= logits.Dim(1) {
		return nil, fmt.Errorf("defense: class %d out of range", class)
	}
	m.ZeroGrad()
	onehot := tensor.New(1, logits.Dim(1))
	onehot.Set(1, 0, class)
	m.Backward(onehot)

	act, grad := tap.Activation(), tap.Gradient()
	if act == nil || grad == nil {
		return nil, fmt.Errorf("defense: tap recorded nothing — is it installed in the graph?")
	}
	channels, fh, fw := act.Dim(1), act.Dim(2), act.Dim(3)

	// α_c: global-average-pooled gradient per channel.
	alphas := make([]float32, channels)
	gd := grad.Data()
	for ch := 0; ch < channels; ch++ {
		var s float64
		base := ch * fh * fw
		for i := 0; i < fh*fw; i++ {
			s += float64(gd[base+i])
		}
		alphas[ch] = float32(s / float64(fh*fw))
	}

	// heat = ReLU(Σ_c α_c·A_c), at feature resolution.
	small := tensor.New(fh, fw)
	sd := small.Data()
	ad := act.Data()
	for ch := 0; ch < channels; ch++ {
		a := alphas[ch]
		if a == 0 {
			continue
		}
		base := ch * fh * fw
		for i := 0; i < fh*fw; i++ {
			sd[i] += a * ad[base+i]
		}
	}
	for i, v := range sd {
		if v < 0 {
			sd[i] = 0
		}
	}

	// Nearest-neighbor upsample to input resolution.
	heat := tensor.New(h, w)
	hd := heat.Data()
	for y := 0; y < h; y++ {
		fy := y * fh / h
		for xx := 0; xx < w; xx++ {
			fx := xx * fw / w
			hd[y*w+xx] = sd[fy*fw+fx]
		}
	}
	return heat, nil
}

// InstallGradCAMTap inserts a Tap in front of the model's global
// average pooling — i.e. on the last convolutional feature map — and
// returns it. The model's root must be a Sequential ending in
// GlobalAvgPool (every ResNet builder in internal/models qualifies).
func InstallGradCAMTap(m *nn.Model) (*nn.Tap, error) {
	seq, ok := m.Root.(*nn.Sequential)
	if !ok {
		return nil, fmt.Errorf("defense: model root is not a Sequential")
	}
	tap := nn.NewTap()
	if !seq.InsertBefore(func(l nn.Layer) bool {
		_, isGAP := l.(*nn.GlobalAvgPool)
		return isGAP
	}, tap) {
		return nil, fmt.Errorf("defense: no GlobalAvgPool found to tap")
	}
	return tap, nil
}

// EvaluateGradCAM is EvaluateSentiNet with the Grad-CAM estimator:
// both models get a tap installed and the trigger-region heat ratio is
// averaged over the first n samples.
func EvaluateGradCAM(clean, backdoored *nn.Model, ds *data.Dataset, trigger *data.Trigger, target, n int) (SentiNetReport, error) {
	cleanTap, err := InstallGradCAMTap(clean)
	if err != nil {
		return SentiNetReport{}, err
	}
	backTap, err := InstallGradCAMTap(backdoored)
	if err != nil {
		return SentiNetReport{}, err
	}
	if n > ds.Len() {
		n = ds.Len()
	}
	c, h, w := ds.ImageSize()
	rep := SentiNetReport{
		MaskArea: float64(trigger.Size*trigger.Size) / float64(h*w),
	}
	for i := 0; i < n; i++ {
		img := tensor.FromSlice(append([]float32(nil), ds.Image(i)...), 1, c, h, w)
		trigger.Apply(img)
		stamped := img.Data()
		ch, err := GradCAM(clean, cleanTap, stamped, target)
		if err != nil {
			return rep, err
		}
		bh, err := GradCAM(backdoored, backTap, stamped, target)
		if err != nil {
			return rep, err
		}
		rep.CleanFocus += TriggerFocusRatio(ch, trigger)
		rep.BackdooredFocus += TriggerFocusRatio(bh, trigger)
	}
	rep.CleanFocus /= float64(n)
	rep.BackdooredFocus /= float64(n)
	return rep, nil
}
