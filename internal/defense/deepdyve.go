package defense

import (
	"rowhammer/internal/data"
	"rowhammer/internal/nn"
	"rowhammer/internal/tensor"
)

// DeepDyve is the dynamic-verification detector of Li et al.: a small
// checker model runs alongside the protected model; when they disagree,
// the inference is repeated and the second result accepted. The scheme
// assumes faults are transient — an assumption Rowhammer corruption
// violates, because the flipped bits persist in the page cache across
// queries, so the repeated inference is served by the same backdoored
// weights (§VI-B).
type DeepDyve struct {
	// Main is the protected (possibly backdoored) model.
	Main *nn.Model
	// Checker is the small verification model.
	Checker *nn.Model
}

// InferResult reports a DeepDyve-protected inference.
type InferResult struct {
	// Pred is the accepted prediction.
	Pred int
	// Alarmed is true when the checker disagreed and a re-run happened.
	Alarmed bool
	// Recovered is true when the re-run changed the prediction (only
	// possible for transient faults).
	Recovered bool
}

// Infer runs the DeepDyve protocol on a batch and returns per-sample
// results.
func (d *DeepDyve) Infer(images *tensor.Tensor) []InferResult {
	mainPreds := d.Main.Predict(images)
	checkPreds := d.Checker.Predict(images)
	out := make([]InferResult, len(mainPreds))
	var rerun []int
	for i := range mainPreds {
		out[i].Pred = mainPreds[i]
		if mainPreds[i] != checkPreds[i] {
			out[i].Alarmed = true
			rerun = append(rerun, i)
		}
	}
	if len(rerun) > 0 {
		// Repeat the inference on the main model. The weights have not
		// changed (persistent corruption), so this reproduces the first
		// answer.
		second := d.Main.Predict(images)
		for _, i := range rerun {
			if second[i] != out[i].Pred {
				out[i].Recovered = true
				out[i].Pred = second[i]
			}
		}
	}
	return out
}

// Evaluate runs the protocol over a dataset with the trigger applied
// and reports how often the backdoor succeeds despite the defense.
type DeepDyveReport struct {
	// AlarmRate is the fraction of triggered samples the checker
	// flagged.
	AlarmRate float64
	// ASRDespiteDefense is the fraction of non-target triggered
	// samples still classified as the target after the protocol.
	ASRDespiteDefense float64
	// RecoveredRate is the fraction of alarms whose re-run changed the
	// outcome (zero for persistent faults).
	RecoveredRate float64
}

// EvaluateDeepDyve measures the defense against a triggered dataset.
func EvaluateDeepDyve(d *DeepDyve, ds *data.Dataset, trigger *data.Trigger, target int) DeepDyveReport {
	var rep DeepDyveReport
	alarms, recovered, hits, total := 0, 0, 0, 0
	for _, b := range ds.Batches(64) {
		trigger.Apply(b.Images)
		results := d.Infer(b.Images)
		for i, r := range results {
			if r.Alarmed {
				alarms++
				if r.Recovered {
					recovered++
				}
			}
			if b.Labels[i] == target {
				continue
			}
			total++
			if r.Pred == target {
				hits++
			}
		}
	}
	n := float64(ds.Len())
	if n > 0 {
		rep.AlarmRate = float64(alarms) / n
	}
	if alarms > 0 {
		rep.RecoveredRate = float64(recovered) / float64(alarms)
	}
	if total > 0 {
		rep.ASRDespiteDefense = float64(hits) / float64(total)
	}
	return rep
}
