package defense

import (
	"sync"

	"rowhammer/internal/data"
	"rowhammer/internal/metrics"
	"rowhammer/internal/tensor"
)

// DeepDyve is the dynamic-verification detector of Li et al.: a small
// checker model runs alongside the protected model; when they disagree,
// the inference is repeated and the second result accepted. The scheme
// assumes faults are transient — an assumption Rowhammer corruption
// violates, because the flipped bits persist in the page cache across
// queries, so the repeated inference is served by the same backdoored
// weights (§VI-B).
type DeepDyve struct {
	// Main is the protected (possibly backdoored) model. Any engine
	// works: the fp32 *nn.Model or the deployment-form int8
	// *quant.QModel (the victim the paper attacks actually serves int8).
	Main metrics.Predictor
	// Checker is the small verification model.
	Checker metrics.Predictor

	// probeOnce caches the concurrency probe: the two interface
	// type-assertions and ConcurrentSafe calls run once per detector, not
	// once per Infer/Evaluate call in the replay hot loop.
	probeOnce  sync.Once
	concurrent bool
}

// concurrentSafe reports whether both engines may be called from
// several goroutines at once. The answer is resolved on first use and
// cached for the detector's lifetime (engines never change safety class
// after construction).
func (d *DeepDyve) concurrentSafe() bool {
	d.probeOnce.Do(func() {
		m, ok := d.Main.(metrics.ConcurrentPredictor)
		if !ok || !m.ConcurrentSafe() {
			return
		}
		c, ok := d.Checker.(metrics.ConcurrentPredictor)
		d.concurrent = ok && c.ConcurrentSafe()
	})
	return d.concurrent
}

// InferResult reports a DeepDyve-protected inference.
type InferResult struct {
	// Pred is the accepted prediction.
	Pred int
	// Alarmed is true when the checker disagreed and a re-run happened.
	Alarmed bool
	// Recovered is true when the re-run changed the prediction (only
	// possible for transient faults).
	Recovered bool
}

// Infer runs the DeepDyve protocol on a batch and returns per-sample
// results.
func (d *DeepDyve) Infer(images *tensor.Tensor) []InferResult {
	mainPreds := d.Main.Predict(images)
	checkPreds := d.Checker.Predict(images)
	out := make([]InferResult, len(mainPreds))
	var rerun []int
	for i := range mainPreds {
		out[i].Pred = mainPreds[i]
		if mainPreds[i] != checkPreds[i] {
			out[i].Alarmed = true
			rerun = append(rerun, i)
		}
	}
	if len(rerun) > 0 {
		// Repeat the inference on the main model. The weights have not
		// changed (persistent corruption), so this reproduces the first
		// answer.
		second := d.Main.Predict(images)
		for _, i := range rerun {
			if second[i] != out[i].Pred {
				out[i].Recovered = true
				out[i].Pred = second[i]
			}
		}
	}
	return out
}

// Evaluate runs the protocol over a dataset with the trigger applied
// and reports how often the backdoor succeeds despite the defense.
type DeepDyveReport struct {
	// AlarmRate is the fraction of triggered samples the checker
	// flagged.
	AlarmRate float64
	// ASRDespiteDefense is the fraction of non-target triggered
	// samples still classified as the target after the protocol.
	ASRDespiteDefense float64
	// RecoveredRate is the fraction of alarms whose re-run changed the
	// outcome (zero for persistent faults).
	RecoveredRate float64
}

// EvaluateDeepDyve measures the defense against a triggered dataset.
// When both engines are concurrency-safe the batches fan out across the
// persistent worker pool; each batch owns its pixel copy and a disjoint
// counter slot.
func EvaluateDeepDyve(d *DeepDyve, ds *data.Dataset, trigger *data.Trigger, target int) DeepDyveReport {
	batches := ds.Batches(64)
	type tallies struct{ alarms, recovered, hits, total int }
	parts := make([]tallies, len(batches))
	workers := 1
	if d.concurrentSafe() {
		workers = tensor.MaxWorkers()
	}
	tensor.ParallelChunks(len(batches), workers, func(lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			b := batches[bi]
			trigger.Apply(b.Images)
			results := d.Infer(b.Images)
			part := &parts[bi]
			for i, r := range results {
				if r.Alarmed {
					part.alarms++
					if r.Recovered {
						part.recovered++
					}
				}
				if b.Labels[i] == target {
					continue
				}
				part.total++
				if r.Pred == target {
					part.hits++
				}
			}
		}
	})
	alarms, recovered, hits, total := 0, 0, 0, 0
	for _, p := range parts {
		alarms += p.alarms
		recovered += p.recovered
		hits += p.hits
		total += p.total
	}
	var rep DeepDyveReport
	n := float64(ds.Len())
	if n > 0 {
		rep.AlarmRate = float64(alarms) / n
	}
	if alarms > 0 {
		rep.RecoveredRate = float64(recovered) / float64(alarms)
	}
	if total > 0 {
		rep.ASRDespiteDefense = float64(hits) / float64(total)
	}
	return rep
}
