// Package voltsim models the Plundervolt fault-injection experiment of
// the paper's Appendix F (a negative result): undervolting an Intel CPU
// beyond its stable operating point faults multiplication results, but
// only when the second operand exceeds 0xFFFF — and the operands of an
// 8-bit quantized DNN inference never do, so Plundervolt cannot inject
// backdoors into quantized models. The simulator reproduces exactly the
// operand-magnitude fault condition the paper (and the original
// Plundervolt work) reports.
package voltsim

import "rowhammer/internal/tensor"

// FaultThresholdMV is the undervolt depth (millivolts below nominal)
// beyond which the multiplier starts faulting.
const FaultThresholdMV = 150

// OperandFaultFloor is the smallest second-operand magnitude that can
// fault: the paper observed no faults whenever |b| ≤ 0xFFFF.
const OperandFaultFloor = 0xFFFF

// CPU is an undervolted core with a deterministic fault stream.
type CPU struct {
	// UndervoltMV is how far below nominal the core voltage sits.
	UndervoltMV int
	// FaultRate is the per-eligible-multiply fault probability once
	// undervolted past the threshold.
	FaultRate float64

	rng *tensor.RNG
}

// NewCPU builds a core at the given undervolt with a seeded fault
// stream.
func NewCPU(undervoltMV int, seed int64) *CPU {
	return &CPU{UndervoltMV: undervoltMV, FaultRate: 0.002, rng: tensor.NewRNG(seed)}
}

// Multiply computes a×b under the fault model. faulted reports whether
// a bit of the product was corrupted.
func (c *CPU) Multiply(a, b int64) (result int64, faulted bool) {
	result = a * b
	if c.UndervoltMV < FaultThresholdMV {
		return result, false
	}
	mag := b
	if mag < 0 {
		mag = -mag
	}
	if mag <= OperandFaultFloor {
		// The documented safe region: small second operands never
		// fault, regardless of undervolt depth.
		return result, false
	}
	if c.rng.Float64() >= c.FaultRate {
		return result, false
	}
	bit := uint(c.rng.Intn(32) + 16) // high product bits flip in practice
	return result ^ (1 << bit), true
}

// LoopMultiply reproduces the Plundervolt proof-of-concept: the same
// multiplication in a tight loop with constant operands. It returns the
// number of iterations whose result was faulty.
func (c *CPU) LoopMultiply(a, b int64, iters int) (faults int) {
	want := a * b
	for i := 0; i < iters; i++ {
		got, _ := c.Multiply(a, b)
		if got != want {
			faults++
		}
	}
	return faults
}

// QuantizedMACSweep drives every weight×activation product of an 8-bit
// quantized layer through the faulty multiplier and counts faults. Both
// operands are int8, far below the fault floor, so the count is always
// zero — the appendix's conclusion.
func QuantizedMACSweep(c *CPU, weights, activations []int8) (faults int) {
	for _, w := range weights {
		for _, a := range activations {
			if _, f := c.Multiply(int64(w), int64(a)); f {
				faults++
			}
		}
	}
	return faults
}

// Float32MACSweep models the paper's float experiment: floating-point
// multiplies route through a different unit that the undervolt did not
// fault at all in their measurements; the simulator reflects that.
func Float32MACSweep(c *CPU, weights, activations []float32) (faults int) {
	return 0
}
