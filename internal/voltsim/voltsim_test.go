package voltsim

import "testing"

func TestNominalVoltageNeverFaults(t *testing.T) {
	c := NewCPU(0, 1)
	big := int64(0x1_0000_0000)
	if faults := c.LoopMultiply(7, big, 5000); faults != 0 {
		t.Fatalf("nominal voltage faulted %d times", faults)
	}
}

func TestDeepUndervoltFaultsLargeOperands(t *testing.T) {
	c := NewCPU(200, 2)
	big := int64(0x10_0000)
	faults := c.LoopMultiply(3, big, 20000)
	if faults == 0 {
		t.Fatal("undervolted PoC loop produced no faults")
	}
}

func TestSmallSecondOperandNeverFaults(t *testing.T) {
	c := NewCPU(300, 3)
	// |b| ≤ 0xFFFF is the documented safe region.
	if faults := c.LoopMultiply(123456789, 0xFFFF, 20000); faults != 0 {
		t.Fatalf("safe-region operand faulted %d times", faults)
	}
	if faults := c.LoopMultiply(5, -0xFFFF, 20000); faults != 0 {
		t.Fatalf("negative safe-region operand faulted %d times", faults)
	}
}

func TestQuantizedInferenceImmune(t *testing.T) {
	c := NewCPU(300, 4)
	weights := make([]int8, 256)
	acts := make([]int8, 256)
	for i := range weights {
		weights[i] = int8(i - 128)
		acts[i] = int8(127 - i)
	}
	if faults := QuantizedMACSweep(c, weights, acts); faults != 0 {
		t.Fatalf("8-bit quantized MACs faulted %d times — appendix F says zero", faults)
	}
	if faults := Float32MACSweep(c, []float32{1e9}, []float32{1e9}); faults != 0 {
		t.Fatal("float multiplies should not fault in the model")
	}
}

func TestFaultFlipsHighProductBits(t *testing.T) {
	c := NewCPU(200, 5)
	big := int64(0x100_0000)
	for i := 0; i < 50000; i++ {
		got, faulted := c.Multiply(9, big)
		if !faulted {
			continue
		}
		diff := got ^ (9 * big)
		if diff == 0 {
			t.Fatal("fault reported but product unchanged")
		}
		if diff&0xFFFF != 0 {
			t.Fatalf("fault flipped a low bit: %x", diff)
		}
		return
	}
	t.Fatal("no fault observed in 50k multiplies")
}
