package campaign

import (
	"fmt"
	"testing"

	"rowhammer/internal/core"
)

// benchFleet builds the 16-campaign/4-SKU sweep the campaign engine is
// measured on: a hot SKU (F1, heavy 4096-page templating buffer) swept
// by 7 attack variants, and three light SKUs (A1, E1, I1, 1024-page
// buffers) with 3 variants each. With shared=true the variants of an
// SKU attack one module identity — the realistic fleet shape where the
// cache collapses 16 templatings to 4; with shared=false every campaign
// gets a unique module seed, isolating pure pipelining.
func benchFleet(b *testing.B, shared bool) []Job {
	b.Helper()
	type sku struct {
		dev      string
		size     int
		bufPages int
		count    int
	}
	skus := []sku{
		{"F1", 64 << 20, 4096, 7},
		{"A1", 16 << 20, 1024, 3},
		{"E1", 16 << 20, 1024, 3},
		{"I1", 16 << 20, 1024, 3},
	}
	var jobs []Job
	for si, s := range skus {
		for v := 0; v < s.count; v++ {
			seed := int64(100 + si)
			if !shared {
				seed = int64(1000 + len(jobs))
			}
			file, reqs := syntheticWorkload(64, int64(10*si+v))
			jobs = append(jobs, Job{
				Name:       fmt.Sprintf("%s-v%d", s.dev, v),
				WeightFile: file,
				Reqs:       reqs,
				Module: ModuleSpec{
					Device:    tableIDevice(b, s.dev),
					SizeBytes: s.size,
					Seed:      seed,
				},
				Online: core.OnlineConfig{
					BufferPages: s.bufPages,
					Sides:       2,
					Intensity:   1,
					MeasureSeed: 7,
				},
			})
		}
	}
	return jobs
}

// BenchmarkFleetSweep measures fleet throughput three ways: the serial
// reference loop (one RunCampaign per job, no cache, no pooling), the
// pipelined engine without template sharing (unique module seeds), and
// the pipelined engine with the cross-campaign cache (shared module
// identities). One op is the full 16-campaign sweep; each op starts
// from a cold cache so the measurement includes every template the
// configuration cannot avoid.
func BenchmarkFleetSweep(b *testing.B) {
	const arenaCap = 256 << 20

	b.Run("Serial", func(b *testing.B) {
		jobs := benchFleet(b, true)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for ji, j := range jobs {
				if r := RunCampaign(ji, j); r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	})
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("Pipelined/workers=%d", workers), func(b *testing.B) {
			jobs := benchFleet(b, false)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if sum := Run(jobs, Config{Workers: workers, MaxArenaBytes: arenaCap}); sum.Failed != 0 {
					b.Fatalf("%d campaigns failed", sum.Failed)
				}
			}
		})
		b.Run(fmt.Sprintf("PipelinedCache/workers=%d", workers), func(b *testing.B) {
			jobs := benchFleet(b, true)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sum := Run(jobs, Config{Workers: workers, MaxArenaBytes: arenaCap})
				if sum.Failed != 0 {
					b.Fatalf("%d campaigns failed", sum.Failed)
				}
				if sum.CacheHits != len(jobs)-4 {
					b.Fatalf("CacheHits = %d, want %d", sum.CacheHits, len(jobs)-4)
				}
			}
		})
	}
}
