package campaign

import (
	"sync"

	"rowhammer/internal/dram"
	"rowhammer/internal/profile"
)

// profileKey is the content address of a flip template: every input
// that determines the profiled inventory, and nothing else. Two
// campaigns with equal keys would compute bit-identical templates, so
// the cache may hand the second one the first one's profile.
type profileKey struct {
	geom        dram.Geometry
	device      dram.DeviceProfile
	seed        int64
	fault       dram.FaultModel
	bufferPages int
	sides       int
	intensity   float64
	measureSeed int64
}

// skuKey identifies a module stock-keeping unit — the (device, size)
// class a fleet sweeps many individual modules of. Seeds and attack
// configs vary within an SKU; the geometry and device physics do not.
type skuKey struct {
	device dram.DeviceProfile
	geom   dram.Geometry
}

// cacheEntry is one in-flight or completed template. ready is closed
// when prof/err are final; until then exactly one campaign (the leader)
// is computing while followers wait without holding a worker slot.
type cacheEntry struct {
	ready chan struct{}
	prof  *profile.Profile
	err   error
}

// SKUPrior aggregates what past campaigns of an SKU observed. Priors
// are strictly advisory — they size admission reservations and feed the
// fleet summary, but never enter planning or hammering, so a campaign's
// result is identical at any cache state.
type SKUPrior struct {
	// Campaigns counts finished campaigns of this SKU.
	Campaigns int
	// Templates counts distinct templates computed (cold misses).
	Templates int
	// TotalFlips sums the template flip inventories.
	TotalFlips int64
	// MaxArenaBytes is the largest module arena a campaign of this SKU
	// materialized — the admission estimate for the next one.
	MaxArenaBytes int64
}

// ProfileCache memoizes flip templates across campaigns, keyed on the
// full module-plus-profiling identity, with single-flight deduplication
// of concurrent misses and advisory per-SKU priors. Safe for concurrent
// use and reusable across Run invocations (a warm fleet).
type ProfileCache struct {
	mu      sync.Mutex
	entries map[profileKey]*cacheEntry
	priors  map[skuKey]*SKUPrior
}

// NewProfileCache returns an empty cache.
func NewProfileCache() *ProfileCache {
	return &ProfileCache{
		entries: make(map[profileKey]*cacheEntry),
		priors:  make(map[skuKey]*SKUPrior),
	}
}

// begin looks up or creates the entry for a key. The second return is
// true for the leader — the caller that must compute the template and
// publish it; everyone else waits on entry.ready.
func (c *ProfileCache) begin(k profileKey) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		return e, false
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.entries[k] = e
	return e, true
}

// publish finalizes a leader's entry. An errored template stays cached:
// the error is a deterministic function of the key, so every campaign
// of that identity fails identically instead of re-templating.
func (c *ProfileCache) publish(e *cacheEntry, prof *profile.Profile, err error) {
	e.prof, e.err = prof, err
	close(e.ready)
}

// Entries reports how many templates (including errored ones) the cache
// holds.
func (c *ProfileCache) Entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// observe folds one finished campaign into its SKU prior.
func (c *ProfileCache) observe(k skuKey, cold bool, flips int, arena int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.priors[k]
	if p == nil {
		p = &SKUPrior{}
		c.priors[k] = p
	}
	p.Campaigns++
	if cold {
		p.Templates++
		p.TotalFlips += int64(flips)
	}
	if arena > p.MaxArenaBytes {
		p.MaxArenaBytes = arena
	}
}

// Prior returns a copy of the SKU's accumulated prior (zero value when
// the SKU has never run).
func (c *ProfileCache) Prior(k skuKey) SKUPrior {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p := c.priors[k]; p != nil {
		return *p
	}
	return SKUPrior{}
}
