package campaign

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"rowhammer/internal/dram"
	"rowhammer/internal/profile"
)

// profileKey is the content address of a flip template: every input
// that determines the profiled inventory, and nothing else. Two
// campaigns with equal keys would compute bit-identical templates, so
// the cache may hand the second one the first one's profile.
type profileKey struct {
	geom        dram.Geometry
	device      dram.DeviceProfile
	seed        int64
	fault       dram.FaultModel
	bufferPages int
	sides       int
	intensity   float64
	measureSeed int64
}

// fingerprint is the key's stable serialized identity: a hash of the
// full field dump. It is what checkpoints persist — the struct itself
// never leaves the process, so the daemon's on-disk cache-key set stays
// valid across binary versions that do not change the key's content.
func (k profileKey) fingerprint() string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%#v", k)))
	return hex.EncodeToString(sum[:16])
}

// skuKey identifies a module stock-keeping unit — the (device, size)
// class a fleet sweeps many individual modules of. Seeds and attack
// configs vary within an SKU; the geometry and device physics do not.
type skuKey struct {
	device dram.DeviceProfile
	geom   dram.Geometry
}

// cacheEntry is one in-flight or completed template. ready is closed
// when prof/err are final; until then exactly one campaign (the leader)
// is computing while followers wait on ready.
type cacheEntry struct {
	ready chan struct{}
	prof  *profile.Profile
	err   error
	// transient marks an aborted entry: err is environmental (module
	// allocation, cancellation) rather than a function of the key. The
	// entry has been removed from the map; woken followers must re-begin
	// and one of them becomes the next leader.
	transient bool
	key       profileKey
	// elem tracks the entry's position in the recency list once it is
	// completed; in-flight entries are never evictable and have no elem.
	elem *list.Element
}

// SKUPrior aggregates what past campaigns of an SKU observed. Priors
// are strictly advisory — they size admission reservations and feed the
// fleet summary, but never enter planning or hammering, so a campaign's
// result is identical at any cache state.
type SKUPrior struct {
	// Campaigns counts finished campaigns of this SKU.
	Campaigns int
	// Templates counts distinct templates computed (cold misses).
	Templates int
	// TotalFlips sums the template flip inventories.
	TotalFlips int64
	// MaxArenaBytes is the largest module arena a campaign of this SKU
	// materialized — the admission estimate for the next one.
	MaxArenaBytes int64
}

// ProfileCache memoizes flip templates across campaigns, keyed on the
// full module-plus-profiling identity, with single-flight deduplication
// of concurrent misses, optional LRU bounding for long-lived daemons,
// and advisory per-SKU priors. Safe for concurrent use and reusable
// across Run invocations (a warm fleet).
//
// Only template-computation outcomes are cached — success or error,
// both deterministic functions of the key. Environmental failures
// (module allocation, cancellation) abort the entry instead, so the
// next campaign of that identity re-attempts rather than inheriting a
// stale transient error. A daemon that lives for days depends on this:
// one ENOMEM blip must not condemn a hardware identity forever.
type ProfileCache struct {
	mu         sync.Mutex
	entries    map[profileKey]*cacheEntry
	recency    *list.List // completed entries, most recent at front
	maxEntries int        // 0 = unbounded
	evicted    int64
	priors     map[skuKey]*SKUPrior
}

// NewProfileCache returns an empty, unbounded cache.
func NewProfileCache() *ProfileCache {
	return NewProfileCacheSize(0)
}

// NewProfileCacheSize returns an empty cache holding at most maxEntries
// completed templates (0 = unbounded). When full, completing a new
// template evicts the least-recently-used completed entry; in-flight
// entries are never evicted. Eviction only trades memory for re-compute
// work: a later campaign of an evicted identity re-templates and, by
// the determinism invariant, reproduces the evicted profile bit for
// bit. The advisory SKU priors are unaffected by eviction.
func NewProfileCacheSize(maxEntries int) *ProfileCache {
	if maxEntries < 0 {
		maxEntries = 0
	}
	return &ProfileCache{
		entries:    make(map[profileKey]*cacheEntry),
		recency:    list.New(),
		maxEntries: maxEntries,
		priors:     make(map[skuKey]*SKUPrior),
	}
}

// begin looks up or creates the entry for a key. The second return is
// true for the leader — the caller that must compute the template and
// finish the entry with publish (template outcome) or abort (transient
// failure); everyone else waits on entry.ready.
func (c *ProfileCache) begin(k profileKey) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		if e.elem != nil {
			c.recency.MoveToFront(e.elem)
		}
		return e, false
	}
	e := &cacheEntry{ready: make(chan struct{}), key: k}
	c.entries[k] = e
	return e, true
}

// wait blocks until the entry is final or ctx is cancelled. It returns
// ctx's error on cancellation — a follower must not block forever on a
// leader that was itself cancelled (the leader's abort wakes everyone,
// but the follower's own deadline applies regardless).
func (c *ProfileCache) wait(ctx context.Context, e *cacheEntry) error {
	select {
	case <-e.ready:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// publish finalizes a leader's entry with the template computation's
// outcome. An errored template stays cached: the error is a
// deterministic function of the key, so every campaign of that identity
// fails identically instead of re-templating. Only template-computation
// errors may be published — pre-template failures go through abort.
func (c *ProfileCache) publish(e *cacheEntry, prof *profile.Profile, err error) {
	e.prof, e.err = prof, err
	c.mu.Lock()
	if _, live := c.entries[e.key]; live {
		e.elem = c.recency.PushFront(e)
		c.evictLocked()
	}
	c.mu.Unlock()
	close(e.ready)
}

// abort finalizes a leader's entry with a transient, environmental
// failure — a module-allocation error or cancellation that says nothing
// about the key itself. The entry is removed from the map so the next
// begin of this identity elects a fresh leader, and waiting followers
// wake with transient set, telling them to re-begin (one of them
// becomes that leader) instead of inheriting the failure.
func (c *ProfileCache) abort(e *cacheEntry, err error) {
	e.err, e.transient = err, true
	c.mu.Lock()
	if cur, ok := c.entries[e.key]; ok && cur == e {
		delete(c.entries, e.key)
	}
	c.mu.Unlock()
	close(e.ready)
}

// evictLocked drops least-recently-used completed entries beyond the
// bound. Caller holds c.mu.
func (c *ProfileCache) evictLocked() {
	if c.maxEntries == 0 {
		return
	}
	for c.recency.Len() > c.maxEntries {
		back := c.recency.Back()
		e := back.Value.(*cacheEntry)
		c.recency.Remove(back)
		e.elem = nil
		if cur, ok := c.entries[e.key]; ok && cur == e {
			delete(c.entries, e.key)
		}
		c.evicted++
	}
}

// Entries reports how many templates (including errored and in-flight
// ones) the cache holds.
func (c *ProfileCache) Entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Evicted reports how many completed templates the LRU bound has
// dropped over the cache's lifetime.
func (c *ProfileCache) Evicted() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evicted
}

// Fingerprints returns the sorted key fingerprints of every entry
// (including in-flight and errored ones) — the serializable cache-key
// set a daemon checkpoints so a resumed fleet reproduces the exact
// cache-hit assignment of its uninterrupted run.
func (c *ProfileCache) Fingerprints() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.entries))
	for k := range c.entries {
		out = append(out, k.fingerprint())
	}
	sort.Strings(out)
	return out
}

// observe folds one finished campaign into its SKU prior.
func (c *ProfileCache) observe(k skuKey, cold bool, flips int, arena int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.priors[k]
	if p == nil {
		p = &SKUPrior{}
		c.priors[k] = p
	}
	p.Campaigns++
	if cold {
		p.Templates++
		p.TotalFlips += int64(flips)
	}
	if arena > p.MaxArenaBytes {
		p.MaxArenaBytes = arena
	}
}

// Prior returns a copy of the SKU's accumulated prior (zero value when
// the SKU has never run).
func (c *ProfileCache) Prior(k skuKey) SKUPrior {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p := c.priors[k]; p != nil {
		return *p
	}
	return SKUPrior{}
}
