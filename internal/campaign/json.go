package campaign

import (
	"encoding/json"
	"errors"

	"rowhammer/internal/core"
)

// resultJSON is Result's wire shape. Result.Err is an error interface —
// json.Marshal would render any non-nil error as "{}" and lose the
// message — so the wire shape carries the message as a string and
// decode rebuilds an opaque error. Round-tripping preserves every
// deterministic field byte for byte; error identity degrades to the
// message, which is itself deterministic for the engine's own failures.
type resultJSON struct {
	Index      int
	Name       string
	SKU        string
	CacheHit   bool
	ArenaBytes int64
	Online     *core.OnlineResult `json:",omitempty"`
	Err        string             `json:",omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (r Result) MarshalJSON() ([]byte, error) {
	w := resultJSON{
		Index:      r.Index,
		Name:       r.Name,
		SKU:        r.SKU,
		CacheHit:   r.CacheHit,
		ArenaBytes: r.ArenaBytes,
		Online:     r.Online,
	}
	if r.Err != nil {
		w.Err = r.Err.Error()
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *Result) UnmarshalJSON(b []byte) error {
	var w resultJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*r = Result{
		Index:      w.Index,
		Name:       w.Name,
		SKU:        w.SKU,
		CacheHit:   w.CacheHit,
		ArenaBytes: w.ArenaBytes,
		Online:     w.Online,
	}
	if w.Err != "" {
		r.Err = errors.New(w.Err)
	}
	return nil
}
