package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"rowhammer/internal/campaign"
)

// testServer starts a daemon on dir with a real HTTP front end.
func testServer(t *testing.T, dir string, workers int) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{Dir: dir, Workers: workers, CacheEntries: 8, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	return s, hs
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, b)
	}
	return b
}

func waitDone(t *testing.T, s *Server, id string) {
	t.Helper()
	done, ok := s.FleetDone(id)
	if !ok {
		t.Fatalf("fleet %s unknown", id)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Minute):
		t.Fatalf("fleet %s never finished", id)
	}
}

func fleetStatus(t *testing.T, s *Server, id string) FleetStatus {
	t.Helper()
	s.mu.Lock()
	f := s.fleets[id]
	s.mu.Unlock()
	if f == nil {
		t.Fatalf("fleet %s unknown", id)
	}
	return f.status()
}

// TestKillResumeDeterminism is the end-to-end checkpoint/resume
// acceptance test: a daemon killed mid-fleet and restarted on the same
// state directory finishes the fleet with the same digest — and the
// same scrubbed result bytes — as an uninterrupted daemon.
func TestKillResumeDeterminism(t *testing.T) {
	spec := DemoFleet(2) // 4 campaigns, 2 template identities

	// Reference: one daemon life, start to finish.
	sA, hsA := testServer(t, t.TempDir(), 2)
	idA, err := sA.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, sA, idA)
	stA := fleetStatus(t, sA, idA)
	bodyA := getBody(t, hsA.URL+"/v1/fleets/"+idA+"/results?scrub=1")
	hsA.Close()
	sA.Close()
	if stA.Failed != 0 || stA.Digest == "" {
		t.Fatalf("reference fleet: failed=%d digest=%q", stA.Failed, stA.Digest)
	}

	// Interrupted: single worker, kill the daemon after the first
	// campaign checkpoints.
	dirB := t.TempDir()
	sB, err := New(Config{Dir: dirB, Workers: 1, CacheEntries: 8, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	idB, err := sB.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Minute)
	for fleetStatus(t, sB, idB).Completed < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first campaign never completed")
		}
		time.Sleep(time.Millisecond)
	}
	sB.Close() // the "kill": cancels the engine, fleet reverts to queued
	interrupted := fleetStatus(t, sB, idB)
	if interrupted.Completed >= interrupted.Campaigns {
		t.Skip("fleet finished before the kill landed; resume path not exercised")
	}
	t.Logf("killed daemon at %d/%d campaigns", interrupted.Completed, interrupted.Campaigns)

	// Second life on the same directory: the fleet must resume, not
	// restart, and converge to the reference digest.
	sB2, hsB2 := testServer(t, dirB, 2)
	defer hsB2.Close()
	defer sB2.Close()
	stResumed := fleetStatus(t, sB2, idB)
	if stResumed.Completed != interrupted.Completed {
		t.Fatalf("resumed daemon loaded %d completed campaigns, checkpoint had %d",
			stResumed.Completed, interrupted.Completed)
	}
	waitDone(t, sB2, idB)
	stB := fleetStatus(t, sB2, idB)
	if stB.Failed != 0 {
		t.Fatalf("resumed fleet failed %d campaigns", stB.Failed)
	}
	if stB.Digest != stA.Digest {
		t.Fatalf("resumed digest %s != uninterrupted digest %s", stB.Digest, stA.Digest)
	}
	if stB.CacheHits != stA.CacheHits {
		t.Fatalf("resumed CacheHits %d != uninterrupted %d", stB.CacheHits, stA.CacheHits)
	}
	bodyB := getBody(t, hsB2.URL+"/v1/fleets/"+idB+"/results?scrub=1")
	if !bytes.Equal(bodyA, bodyB) {
		t.Fatal("scrubbed result bytes differ between interrupted and uninterrupted runs")
	}
}

// TestThirdLifeServesDoneFleet asserts a finished fleet survives yet
// another daemon restart: status, digest and results come back from
// disk with no re-execution.
func TestThirdLifeServesDoneFleet(t *testing.T) {
	dir := t.TempDir()
	s, hs := testServer(t, dir, 2)
	id, err := s.Submit(DemoFleet(1))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, id)
	want := fleetStatus(t, s, id)
	wantBody := getBody(t, hs.URL+"/v1/fleets/"+id+"/results?scrub=1")
	hs.Close()
	s.Close()

	s2, hs2 := testServer(t, dir, 2)
	defer hs2.Close()
	defer s2.Close()
	got := fleetStatus(t, s2, id)
	if got.State != "done" || got.Digest != want.Digest {
		t.Fatalf("reloaded fleet state=%s digest=%s, want done/%s", got.State, got.Digest, want.Digest)
	}
	if !bytes.Equal(wantBody, getBody(t, hs2.URL+"/v1/fleets/"+id+"/results?scrub=1")) {
		t.Fatal("reloaded results differ")
	}
	// A done fleet's stream replays everything and closes.
	lines := bytes.Count(bytes.TrimSpace(getBody(t, hs2.URL+"/v1/fleets/"+id+"/stream")), []byte{'\n'}) + 1
	if lines != got.Campaigns {
		t.Fatalf("stream replayed %d lines, want %d", lines, got.Campaigns)
	}
}

// TestStreamDeliversEveryResultOnce subscribes before the fleet runs
// and asserts the stream yields exactly one line per campaign, with
// replay and live delivery never duplicating or dropping.
func TestStreamDeliversEveryResultOnce(t *testing.T) {
	s, hs := testServer(t, t.TempDir(), 2)
	defer hs.Close()
	defer s.Close()
	id, err := s.Submit(DemoFleet(1))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(hs.URL + "/v1/fleets/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body) // blocks until the fleet closes the stream
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	dec := json.NewDecoder(bytes.NewReader(body))
	for dec.More() {
		var r campaign.Result
		if err := dec.Decode(&r); err != nil {
			t.Fatal(err)
		}
		seen[r.Index]++
	}
	st := fleetStatus(t, s, id)
	if len(seen) != st.Campaigns {
		t.Fatalf("stream covered %d campaigns, want %d", len(seen), st.Campaigns)
	}
	for idx, n := range seen {
		if n != 1 {
			t.Fatalf("campaign %d streamed %d times", idx, n)
		}
	}
}

// TestSKUAggregationAcrossFleets submits two fleets and asserts
// /v1/skus folds both into one per-SKU view — the daemon's
// cross-campaign results store.
func TestSKUAggregationAcrossFleets(t *testing.T) {
	s, hs := testServer(t, t.TempDir(), 2)
	defer hs.Close()
	defer s.Close()
	for i := 0; i < 2; i++ {
		id, err := s.Submit(DemoFleet(1))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, s, id)
	}
	var skus []campaign.SKUStats
	if err := json.Unmarshal(getBody(t, hs.URL+"/v1/skus"), &skus); err != nil {
		t.Fatal(err)
	}
	if len(skus) != 2 {
		t.Fatalf("aggregated %d SKUs, want 2", len(skus))
	}
	for _, sku := range skus {
		if sku.Campaigns != 2 {
			t.Fatalf("SKU %s aggregates %d campaigns across fleets, want 2", sku.SKU, sku.Campaigns)
		}
	}
}

// TestSubmitRejectsBadSpecs exercises validation through the HTTP
// surface: malformed JSON, empty fleets, unknown devices and misaligned
// weight files must all 400 without leaving state behind.
func TestSubmitRejectsBadSpecs(t *testing.T) {
	s, hs := testServer(t, t.TempDir(), 1)
	defer hs.Close()
	defer s.Close()
	bad := []string{
		`{not json`,
		`{}`,
		`{"Jobs":[{"WeightFile":"aGk=","Module":{"Device":"nope"}}]}`,
		`{"Jobs":[{"WeightFile":"aGk=","Online":{"BufferPages":64}}]}`, // 2 bytes: misaligned
	}
	for _, body := range bad {
		resp, err := http.Post(hs.URL+"/v1/fleets", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("spec %q: HTTP %d, want 400", body, resp.StatusCode)
		}
	}
	var fleets []FleetStatus
	if err := json.Unmarshal(getBody(t, hs.URL+"/v1/fleets"), &fleets); err != nil {
		t.Fatal(err)
	}
	if len(fleets) != 0 {
		t.Fatalf("%d fleets exist after rejected submissions, want 0", len(fleets))
	}
	if _, err := New(Config{Dir: ""}); err == nil {
		t.Fatal("New accepted an empty state directory")
	}
}

// TestCloseLeavesNoGoroutines pins daemon teardown: Close on an idle
// and on a busy server must retire the run loop and every engine
// goroutine.
func TestCloseLeavesNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	dir := t.TempDir()
	s, err := New(Config{Dir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(DemoFleet(1)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let the fleet get going
	s.Close()

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Fatalf("%d goroutines outlive Close (baseline %d)", n, baseline)
	}
}
