// Package server is the campaignd service core: a long-running
// HTTP/JSON front end over the fleet campaign engine with a durable
// job queue, streaming per-campaign results, cross-fleet SKU
// aggregation, and checkpoint/resume.
//
// API:
//
//	POST /v1/fleets             submit a FleetSpec; responds 202 with the id
//	GET  /v1/fleets             list fleet statuses
//	GET  /v1/fleets/{id}        one fleet's status (digest + SKUs once done)
//	GET  /v1/fleets/{id}/stream per-campaign Results as JSON lines, replay + live
//	GET  /v1/fleets/{id}/results completed Results as JSON lines in index
//	                            order (?scrub=1 zeroes observational fields)
//	GET  /v1/skus               cross-fleet per-SKU aggregation
//
// Fleets run FIFO, one at a time, on the daemon's bounded worker pool;
// within a fleet the campaign engine pipelines template/plan/online
// stages across campaigns and deduplicates templates through one
// long-lived, LRU-bounded profile cache shared by every fleet. Each
// completed campaign is fsynced to the fleet's results.jsonl before it
// is streamed, so a killed daemon resumes exactly the campaigns that
// never finished and — by the engine's canonical-order determinism
// invariant — produces byte-identical results to an uninterrupted run.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync"

	"rowhammer/internal/campaign"
)

// Config configures the daemon core.
type Config struct {
	// Dir is the durable state root (required). The daemon owns it.
	Dir string
	// Workers bounds concurrently executing campaigns per fleet (≤0 = 1).
	Workers int
	// MaxArenaMB caps estimated in-flight module state per fleet (0 =
	// uncapped).
	MaxArenaMB int
	// CacheEntries bounds the shared profile cache (0 = unbounded). A
	// daemon that lives for days should bound it so memory tracks the
	// working set, not history.
	CacheEntries int
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// Server is the daemon core. Create with New, mount Handler on an HTTP
// server, Close on shutdown.
type Server struct {
	cfg    Config
	cache  *campaign.ProfileCache
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	wake   chan struct{}

	mu     sync.Mutex
	fleets map[string]*fleetState
	order  []string
	nextID int
}

// fleetState is one fleet's in-memory state; the mutable part mirrors
// the checkpoint on disk.
type fleetState struct {
	id       string
	spec     FleetSpec
	jobs     []campaign.Job
	hits     []bool
	seedKeys []string

	mu        sync.Mutex
	state     string // "queued" | "running" | "done"
	results   []*campaign.Result
	completed int
	failed    int
	cacheHits int
	digest    string
	skus      []campaign.SKUStats
	subs      map[chan campaign.Result]struct{}
	done      chan struct{}
}

// New opens (or creates) the state directory, resumes every fleet that
// was submitted but never finished, and starts the run loop.
func New(cfg Config) (*Server, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("campaignd: Config.Dir is required")
	}
	if err := os.MkdirAll(fleetsRoot(cfg.Dir), 0o755); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		cache:  campaign.NewProfileCacheSize(cfg.CacheEntries),
		ctx:    ctx,
		cancel: cancel,
		wake:   make(chan struct{}, 1),
		fleets: make(map[string]*fleetState),
	}
	if err := s.load(); err != nil {
		cancel()
		return nil, err
	}
	s.wg.Add(1)
	go s.runLoop()
	return s, nil
}

// Close stops the run loop. The in-flight fleet (if any) stops at its
// next stage boundary with its completed campaigns checkpointed; the
// next New on the same directory resumes it.
func (s *Server) Close() error {
	s.cancel()
	s.wg.Wait()
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// load replays the checkpoint directory: done fleets are served from
// disk, unfinished ones re-enter the queue with their completed
// campaigns pre-filled.
func (s *Server) load() error {
	ids, err := listFleetIDs(s.cfg.Dir)
	if err != nil {
		return err
	}
	for _, id := range ids {
		var pf persistedFleet
		if err := readJSONFile(fleetSpecPath(s.cfg.Dir, id), &pf); err != nil {
			return fmt.Errorf("campaignd: fleet %s: %w", id, err)
		}
		jobs, err := pf.Spec.Resolve()
		if err != nil {
			return fmt.Errorf("campaignd: fleet %s: %w", id, err)
		}
		f := &fleetState{
			id:       id,
			spec:     pf.Spec,
			jobs:     jobs,
			hits:     campaign.HitAssignment(jobs, pf.SeedKeys),
			seedKeys: pf.SeedKeys,
			state:    "queued",
			results:  make([]*campaign.Result, len(jobs)),
			subs:     make(map[chan campaign.Result]struct{}),
			done:     make(chan struct{}),
		}
		loaded, err := loadResults(s.cfg.Dir, id, len(jobs))
		if err != nil {
			return err
		}
		for idx, r := range loaded {
			r := r
			f.results[idx] = &r
			f.completed++
			if r.Err != nil {
				f.failed++
			}
			if r.CacheHit {
				f.cacheHits++
			}
		}
		var st FleetStatus
		if err := readJSONFile(summaryPath(s.cfg.Dir, id), &st); err == nil {
			f.state = "done"
			f.digest = st.Digest
			f.skus = st.SKUs
			close(f.done)
		} else if !os.IsNotExist(err) {
			return fmt.Errorf("campaignd: fleet %s summary: %w", id, err)
		}
		s.fleets[id] = f
		s.order = append(s.order, id)
		var n int
		if _, err := fmt.Sscanf(id, "f%d", &n); err == nil && n >= s.nextID {
			s.nextID = n + 1
		}
		if f.state == "queued" {
			s.logf("campaignd: resuming fleet %s (%d/%d campaigns done)", id, f.completed, len(jobs))
		}
	}
	return nil
}

// Submit validates and enqueues a fleet, persisting it before
// acknowledging. It is the programmatic form of POST /v1/fleets.
func (s *Server) Submit(spec FleetSpec) (string, error) {
	jobs, err := spec.Resolve()
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	id := fmt.Sprintf("f%06d", s.nextID)
	s.nextID++
	// Snapshot the cache-key set now: the canonical hit assignment is a
	// pure function of (jobs, snapshot), and persisting the snapshot is
	// what lets a resumed fleet reproduce the exact flags its
	// uninterrupted run would have emitted.
	seedKeys := s.cache.Fingerprints()
	f := &fleetState{
		id:       id,
		spec:     spec,
		jobs:     jobs,
		hits:     campaign.HitAssignment(jobs, seedKeys),
		seedKeys: seedKeys,
		state:    "queued",
		results:  make([]*campaign.Result, len(jobs)),
		subs:     make(map[chan campaign.Result]struct{}),
		done:     make(chan struct{}),
	}
	s.mu.Unlock()

	if err := saveFleet(s.cfg.Dir, persistedFleet{ID: id, Spec: spec, SeedKeys: seedKeys}); err != nil {
		return "", fmt.Errorf("campaignd: persisting fleet: %w", err)
	}

	s.mu.Lock()
	s.fleets[id] = f
	s.order = append(s.order, id)
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return id, nil
}

// FleetDone returns a channel closed when the fleet finishes, for
// callers that want to block (the demo mode, tests).
func (s *Server) FleetDone(id string) (<-chan struct{}, bool) {
	s.mu.Lock()
	f := s.fleets[id]
	s.mu.Unlock()
	if f == nil {
		return nil, false
	}
	return f.done, true
}

// runLoop drains the fleet queue FIFO, one fleet at a time.
func (s *Server) runLoop() {
	defer s.wg.Done()
	for {
		f := s.nextQueued()
		if f == nil {
			select {
			case <-s.ctx.Done():
				return
			case <-s.wake:
				continue
			}
		}
		s.runFleet(f)
		if s.ctx.Err() != nil {
			return
		}
	}
}

func (s *Server) nextQueued() *fleetState {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range s.order {
		f := s.fleets[id]
		f.mu.Lock()
		if f.state == "queued" {
			f.state = "running"
			f.mu.Unlock()
			return f
		}
		f.mu.Unlock()
	}
	return nil
}

// runFleet executes a fleet's pending campaigns. Completed campaigns
// (from a previous daemon life) are skipped; the engine receives the
// remainder with their original indices and canonical hit flags.
func (s *Server) runFleet(f *fleetState) {
	var jobsSub []campaign.Job
	var idxSub []int
	var hitsSub []bool
	f.mu.Lock()
	for i := range f.jobs {
		if f.results[i] == nil {
			jobsSub = append(jobsSub, f.jobs[i])
			idxSub = append(idxSub, i)
			hitsSub = append(hitsSub, f.hits[i])
		}
	}
	f.mu.Unlock()

	if len(jobsSub) > 0 {
		log, err := openResultLog(s.cfg.Dir, f.id)
		if err != nil {
			s.logf("campaignd: fleet %s: opening result log: %v", f.id, err)
			f.mu.Lock()
			f.state = "queued"
			f.mu.Unlock()
			return
		}
		workers := f.spec.Workers
		if workers == 0 {
			workers = s.cfg.Workers
		}
		arenaMB := f.spec.MaxArenaMB
		if arenaMB == 0 {
			arenaMB = s.cfg.MaxArenaMB
		}
		campaign.RunContext(s.ctx, jobsSub, campaign.Config{
			Workers:       workers,
			MaxArenaBytes: int64(arenaMB) << 20,
			Cache:         s.cache,
			Indices:       idxSub,
			Hits:          hitsSub,
			OnResult: func(r campaign.Result) {
				// Durability before visibility: the line is fsynced before
				// the result is streamed or counted, so no subscriber ever
				// sees a campaign a resume would re-run.
				if err := log.append(r); err != nil {
					s.logf("campaignd: fleet %s: checkpointing result %d: %v", f.id, r.Index, err)
				}
				f.deliver(r)
			},
		})
		log.Close()
	}

	if s.ctx.Err() != nil {
		// Shutdown mid-fleet: back to the queue; the next daemon life
		// resumes from the checkpoint.
		f.mu.Lock()
		f.state = "queued"
		f.mu.Unlock()
		return
	}
	s.finalize(f)
}

// deliver records one completed campaign and fans it out to stream
// subscribers.
func (f *fleetState) deliver(r campaign.Result) {
	f.mu.Lock()
	defer f.mu.Unlock()
	r2 := r
	f.results[r.Index] = &r2
	f.completed++
	if r.Err != nil {
		f.failed++
	}
	if r.CacheHit {
		f.cacheHits++
	}
	for ch := range f.subs {
		ch <- r // buffered to fleet size; never blocks
	}
}

// finalize computes the canonical digest and SKU aggregation, persists
// the summary, and marks the fleet done.
func (s *Server) finalize(f *fleetState) {
	f.mu.Lock()
	all := make([]campaign.Result, len(f.results))
	for i, r := range f.results {
		all[i] = scrubbedCopy(*r)
	}
	f.mu.Unlock()

	h := sha256.New()
	for i := range all {
		b, err := json.Marshal(all[i])
		if err != nil {
			s.logf("campaignd: fleet %s: digesting result %d: %v", f.id, i, err)
			continue
		}
		h.Write(b)
		h.Write([]byte{'\n'})
	}
	digest := hex.EncodeToString(h.Sum(nil))
	skus := campaign.Summarize(all).SKUs

	f.mu.Lock()
	f.digest = digest
	f.skus = skus
	f.state = "done"
	for ch := range f.subs {
		close(ch)
		delete(f.subs, ch)
	}
	close(f.done)
	st := f.statusLocked()
	f.mu.Unlock()

	if err := writeJSONFile(summaryPath(s.cfg.Dir, f.id), st); err != nil {
		s.logf("campaignd: fleet %s: writing summary: %v", f.id, err)
	}
	s.logf("campaignd: fleet %s done: %d campaigns, %d failed, digest %s",
		f.id, st.Campaigns, st.Failed, st.Digest[:12])
}

// scrubbedCopy returns a deep-enough copy of r with the observational,
// schedule-dependent fields zeroed — the canonical form the digest and
// ?scrub=1 results use. The copy never aliases mutable state of r.
func scrubbedCopy(r campaign.Result) campaign.Result {
	if r.Online != nil {
		o := *r.Online
		if o.Report != nil {
			rep := *o.Report
			o.Report = &rep
		}
		r.Online = &o
	}
	r.Scrub()
	return r
}

func (f *fleetState) statusLocked() FleetStatus {
	return FleetStatus{
		ID:        f.id,
		Name:      f.spec.Name,
		State:     f.state,
		Campaigns: len(f.jobs),
		Completed: f.completed,
		Failed:    f.failed,
		CacheHits: f.cacheHits,
		Digest:    f.digest,
		SKUs:      f.skus,
	}
}

func (f *fleetState) status() FleetStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.statusLocked()
}

// subscribe atomically snapshots the completed results (index order)
// and registers a live channel, so a streaming client sees every result
// exactly once. The returned channel is closed when the fleet finishes;
// it is nil if the fleet is already done.
func (f *fleetState) subscribe() ([]campaign.Result, chan campaign.Result) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var replay []campaign.Result
	for _, r := range f.results {
		if r != nil {
			replay = append(replay, *r)
		}
	}
	if f.state == "done" {
		return replay, nil
	}
	ch := make(chan campaign.Result, len(f.jobs))
	f.subs[ch] = struct{}{}
	return replay, ch
}

func (f *fleetState) unsubscribe(ch chan campaign.Result) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.subs, ch)
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/fleets", s.handleSubmit)
	mux.HandleFunc("GET /v1/fleets", s.handleList)
	mux.HandleFunc("GET /v1/fleets/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/fleets/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/fleets/{id}/results", s.handleResults)
	mux.HandleFunc("GET /v1/skus", s.handleSKUs)
	return mux
}

func (s *Server) fleet(r *http.Request) (*fleetState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.fleets[r.PathValue("id")]
	return f, ok
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec FleetSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		http.Error(w, fmt.Sprintf("decoding fleet spec: %v", err), http.StatusBadRequest)
		return
	}
	id, err := s.Submit(spec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusAccepted, struct {
		ID        string
		Campaigns int
	}{id, len(spec.Jobs)})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	fleets := make([]*fleetState, 0, len(s.order))
	for _, id := range s.order {
		fleets = append(fleets, s.fleets[id])
	}
	s.mu.Unlock()
	out := make([]FleetStatus, len(fleets))
	for i, f := range fleets {
		out[i] = f.status()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	f, ok := s.fleet(r)
	if !ok {
		http.Error(w, "no such fleet", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, f.status())
}

// handleStream replays the fleet's completed results and then follows
// it live, one JSON line per campaign, until the fleet finishes or the
// client goes away.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	f, ok := s.fleet(r)
	if !ok {
		http.Error(w, "no such fleet", http.StatusNotFound)
		return
	}
	replay, live := f.subscribe()
	if live != nil {
		defer f.unsubscribe(live)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for _, res := range replay {
		if enc.Encode(res) != nil {
			return
		}
	}
	if flusher != nil {
		flusher.Flush()
	}
	if live == nil {
		return
	}
	for {
		select {
		case res, ok := <-live:
			if !ok {
				return // fleet done
			}
			if enc.Encode(res) != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		}
	}
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	f, ok := s.fleet(r)
	if !ok {
		http.Error(w, "no such fleet", http.StatusNotFound)
		return
	}
	scrub := r.URL.Query().Get("scrub") == "1"
	f.mu.Lock()
	var out []campaign.Result
	for _, res := range f.results {
		if res == nil {
			continue
		}
		if scrub {
			out = append(out, scrubbedCopy(*res))
		} else {
			out = append(out, *res)
		}
	}
	f.mu.Unlock()
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, res := range out {
		if enc.Encode(res) != nil {
			return
		}
	}
}

// handleSKUs aggregates every completed campaign across every fleet per
// stock-keeping unit — the daemon's cross-campaign results store.
func (s *Server) handleSKUs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	fleets := make([]*fleetState, 0, len(s.order))
	for _, id := range s.order {
		fleets = append(fleets, s.fleets[id])
	}
	s.mu.Unlock()
	var all []campaign.Result
	for _, f := range fleets {
		f.mu.Lock()
		for _, res := range f.results {
			if res != nil {
				all = append(all, *res)
			}
		}
		f.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, campaign.Summarize(all).SKUs)
}
