// Checkpoint layout. Every fleet owns one directory under
// <Dir>/fleets/<id>/:
//
//	fleet.json    — the submitted FleetSpec plus the profile-cache key
//	                fingerprints that were warm at submission (the hit
//	                seed). Written once, before the submission is
//	                acknowledged.
//	results.jsonl — one campaign.Result JSON line per COMPLETED
//	                campaign, appended and fsynced as each finishes.
//	                Campaigns a killed daemon never finished simply have
//	                no line.
//	summary.json  — the final FleetStatus (digest, SKU aggregation).
//	                Its existence marks the fleet done.
//
// Resume is a pure replay: reload the spec (job resolution is pure, so
// fingerprints and the hit assignment reproduce exactly), mark every
// index present in results.jsonl as complete, and hand the engine only
// the remainder with the original indices and hit flags. The engine's
// canonical-order determinism invariant does the rest — the re-run
// campaigns are byte-identical to what the uninterrupted run would have
// produced, so the final digest is too.
package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rowhammer/internal/campaign"
)

// persistedFleet is the fleet.json schema.
type persistedFleet struct {
	ID string
	// Spec is the verbatim submission.
	Spec FleetSpec
	// SeedKeys are the profile-cache fingerprints warm at submission —
	// the seed of the canonical cache-hit assignment.
	SeedKeys []string
}

func fleetsRoot(dir string) string          { return filepath.Join(dir, "fleets") }
func fleetDir(dir, id string) string        { return filepath.Join(fleetsRoot(dir), id) }
func fleetSpecPath(dir, id string) string   { return filepath.Join(fleetDir(dir, id), "fleet.json") }
func resultsPath(dir, id string) string     { return filepath.Join(fleetDir(dir, id), "results.jsonl") }
func summaryPath(dir, id string) string     { return filepath.Join(fleetDir(dir, id), "summary.json") }

// writeJSONFile writes v as JSON via a temp file + rename so a crash
// mid-write never leaves a torn spec or summary behind.
func writeJSONFile(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func readJSONFile(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}

// saveFleet persists a freshly submitted fleet before the submission is
// acknowledged.
func saveFleet(dir string, pf persistedFleet) error {
	if err := os.MkdirAll(fleetDir(dir, pf.ID), 0o755); err != nil {
		return err
	}
	return writeJSONFile(fleetSpecPath(dir, pf.ID), pf)
}

// loadResults replays a fleet's results.jsonl into an index → Result
// map. A torn final line (the daemon died mid-append) ends the replay;
// everything before it is intact because each line was fsynced before
// the campaign counted as complete.
func loadResults(dir, id string, campaigns int) (map[int]campaign.Result, error) {
	f, err := os.Open(resultsPath(dir, id))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	out := make(map[int]campaign.Result)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<30)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r campaign.Result
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			break // torn tail — replay stops here
		}
		if r.Index < 0 || r.Index >= campaigns {
			return nil, fmt.Errorf("campaignd: fleet %s: result index %d out of range", id, r.Index)
		}
		out[r.Index] = r
	}
	return out, sc.Err()
}

// listFleetIDs returns the checkpointed fleet ids in submission order
// (ids are zero-padded monotone counters, so lexicographic order is
// submission order).
func listFleetIDs(dir string) ([]string, error) {
	ents, err := os.ReadDir(fleetsRoot(dir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var ids []string
	for _, e := range ents {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// resultLog is the append-and-fsync handle for one running fleet's
// results.jsonl.
type resultLog struct {
	f *os.File
}

func openResultLog(dir, id string) (*resultLog, error) {
	f, err := os.OpenFile(resultsPath(dir, id), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &resultLog{f: f}, nil
}

// append writes one result line and fsyncs it: a campaign only counts
// as checkpointed once the bytes are durable, so resume never trusts a
// result the disk might not hold.
func (l *resultLog) append(r campaign.Result) error {
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	if _, err := l.f.Write(append(b, '\n')); err != nil {
		return err
	}
	return l.f.Sync()
}

func (l *resultLog) Close() error { return l.f.Close() }
