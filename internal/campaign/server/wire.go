package server

import (
	"fmt"

	"rowhammer/internal/campaign"
	"rowhammer/internal/core"
	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
	"rowhammer/internal/profile"
	"rowhammer/internal/tensor"
)

// FleetSpec is the wire form of one submitted fleet: a named batch of
// campaign jobs plus optional per-fleet engine overrides. It is what
// POST /v1/fleets decodes and what the checkpoint persists, so a spec
// must resolve to the same job list on every load — all resolution is
// pure (name → Table I profile, zero → documented default).
type FleetSpec struct {
	// Name labels the fleet in listings (optional).
	Name string
	// Workers overrides the daemon's per-fleet worker count (0 = daemon
	// default).
	Workers int
	// MaxArenaMB overrides the daemon's in-flight arena cap (0 = daemon
	// default).
	MaxArenaMB int
	// Jobs are the campaigns, one Result each.
	Jobs []JobSpec
}

// JobSpec is the wire form of one campaign.
type JobSpec struct {
	// Name labels the campaign in results (optional).
	Name string
	// WeightFile is the victim's page-aligned weight file (base64 in
	// JSON).
	WeightFile []byte
	// Reqs are the offline phase's per-page flip requirements.
	Reqs []profile.PageRequirement
	// Module is the DRAM identity under attack.
	Module ModuleSpec
	// Online tunes the online engine (zero values pick defaults).
	Online OnlineSpec
}

// ModuleSpec selects the simulated DIMM by name rather than by full
// device profile, so a curl submission stays a one-liner.
type ModuleSpec struct {
	// Device is a Table I chip name ("A1" … "N1"); empty picks the
	// paper's DDR3 module.
	Device string
	// SizeMB is the module capacity (0 = 192).
	SizeMB int
	// Seed keys the weak-cell layout (0 = 7).
	Seed int64
	// FlipFailProb / TRRJitter / FaultSeed configure fault injection
	// (all zero = deterministic module).
	FlipFailProb float64
	TRRJitter    float64
	FaultSeed    int64
}

// OnlineSpec mirrors the serializable knobs of core.OnlineConfig.
type OnlineSpec struct {
	// BufferPages sizes the templating buffer (0 = the engine default
	// for the weight file's size).
	BufferPages int
	// Sides is the hammer pattern width (0 = 2).
	Sides int
	// Intensity is the normalized activation budget (0 = 1).
	Intensity float64
	// MeasureSeed seeds side-channel noise (0 = 7).
	MeasureSeed int64
	// Rounds / Escalation / RetemplatePasses / MaxBufferPages are the
	// robust-engine knobs, passed through verbatim.
	Rounds           int
	Escalation       float64
	RetemplatePasses int
	MaxBufferPages   int
}

// resolveDevice maps a device name to its profile.
func (m ModuleSpec) resolveDevice() (dram.DeviceProfile, error) {
	if m.Device == "" {
		return dram.PaperDDR3(), nil
	}
	p, ok := dram.ProfileByName(m.Device)
	if !ok {
		return dram.DeviceProfile{}, fmt.Errorf("unknown device %q", m.Device)
	}
	return p, nil
}

// Resolve turns the spec into the engine's job list. Resolution is a
// pure function of the spec — the resume path depends on a reloaded
// spec producing the identical jobs (and therefore identical template
// fingerprints) as the original submission.
func (s FleetSpec) Resolve() ([]campaign.Job, error) {
	if len(s.Jobs) == 0 {
		return nil, fmt.Errorf("fleet has no jobs")
	}
	out := make([]campaign.Job, len(s.Jobs))
	for i, js := range s.Jobs {
		dev, err := js.Module.resolveDevice()
		if err != nil {
			return nil, fmt.Errorf("job %d: %w", i, err)
		}
		if len(js.WeightFile) == 0 || len(js.WeightFile)%memsys.PageSize != 0 {
			return nil, fmt.Errorf("job %d: weight file must be a non-empty multiple of %d bytes, got %d",
				i, memsys.PageSize, len(js.WeightFile))
		}
		name := js.Name
		if name == "" {
			name = fmt.Sprintf("%s-%d", dev.Name, i)
		}
		sizeMB := js.Module.SizeMB
		if sizeMB == 0 {
			sizeMB = 192
		}
		seed := js.Module.Seed
		if seed == 0 {
			seed = 7
		}
		var fault dram.FaultModel
		if js.Module.FlipFailProb > 0 || js.Module.TRRJitter > 0 {
			fault = dram.FaultModel{
				FlipFailProb: js.Module.FlipFailProb,
				TRRJitter:    js.Module.TRRJitter,
				Seed:         js.Module.FaultSeed,
			}
			if fault.Seed == 0 {
				fault.Seed = 1
			}
		}
		ocfg := core.DefaultOnlineConfig(len(js.WeightFile) / memsys.PageSize)
		if js.Online.BufferPages != 0 {
			ocfg.BufferPages = js.Online.BufferPages
		}
		if js.Online.Sides != 0 {
			ocfg.Sides = js.Online.Sides
		}
		if js.Online.Intensity != 0 {
			ocfg.Intensity = js.Online.Intensity
		}
		ocfg.MeasureSeed = js.Online.MeasureSeed
		if ocfg.MeasureSeed == 0 {
			ocfg.MeasureSeed = 7
		}
		ocfg.Rounds = js.Online.Rounds
		ocfg.Escalation = js.Online.Escalation
		ocfg.RetemplatePasses = js.Online.RetemplatePasses
		ocfg.MaxBufferPages = js.Online.MaxBufferPages

		out[i] = campaign.Job{
			Name:       name,
			WeightFile: js.WeightFile,
			Reqs:       js.Reqs,
			Module: campaign.ModuleSpec{
				Device:    dev,
				SizeBytes: sizeMB << 20,
				Seed:      seed,
				Fault:     fault,
			},
			Online: ocfg,
		}
		if err := out[i].Validate(); err != nil {
			return nil, fmt.Errorf("job %d: %w", i, err)
		}
	}
	return out, nil
}

// FleetStatus is the wire form of GET /v1/fleets/{id}.
type FleetStatus struct {
	ID   string
	Name string
	// State is "queued", "running" or "done".
	State string
	// Campaigns / Completed / Failed / CacheHits count the fleet's
	// campaigns and how they went so far.
	Campaigns int
	Completed int
	Failed    int
	CacheHits int
	// Digest is the canonical result digest, set once the fleet is done:
	// sha256 over the scrubbed per-campaign results in index order. Two
	// runs of the same fleet — interrupted or not — produce equal
	// digests; that is the checkpoint/resume determinism contract.
	Digest string `json:",omitempty"`
	// SKUs aggregates per stock-keeping unit (set once done).
	SKUs []campaign.SKUStats `json:",omitempty"`
}

// DemoFleet builds a small self-contained two-SKU fleet over synthetic
// weight files — the `campaignd -demo` smoke workload and a template
// for hand-written submissions. campaignsPerSKU ≤ 0 picks 3.
func DemoFleet(campaignsPerSKU int) FleetSpec {
	if campaignsPerSKU <= 0 {
		campaignsPerSKU = 3
	}
	spec := FleetSpec{Name: "demo"}
	skus := []struct {
		device  string
		sizeMB  int
		seed    int64
		online  OnlineSpec
		ffail   float64
		faultSd int64
	}{
		{device: "F1", sizeMB: 16, seed: 77,
			online: OnlineSpec{BufferPages: 1024, Sides: 2, Intensity: 1, MeasureSeed: 7}},
		{device: "K1", sizeMB: 24, seed: 78, ffail: 0.2, faultSd: 5,
			online: OnlineSpec{BufferPages: 2048, Sides: 7, Intensity: 1, MeasureSeed: 7,
				Rounds: 3, Escalation: 2}},
	}
	n := 0
	for _, sku := range skus {
		for c := 0; c < campaignsPerSKU; c++ {
			file, reqs := syntheticWorkload(128, int64(100+n))
			spec.Jobs = append(spec.Jobs, JobSpec{
				Name:       fmt.Sprintf("demo-%s-%d", sku.device, c),
				WeightFile: file,
				Reqs:       reqs,
				Module: ModuleSpec{
					Device: sku.device, SizeMB: sku.sizeMB, Seed: sku.seed,
					FlipFailProb: sku.ffail, FaultSeed: sku.faultSd,
				},
				Online: sku.online,
			})
			n++
		}
	}
	return spec
}

// syntheticWorkload builds a random weight file and one single-flip
// requirement per eighth page, direction chosen so the flip is
// observable against the stored bit.
func syntheticWorkload(filePages int, seed int64) ([]byte, []profile.PageRequirement) {
	rng := tensor.NewRNG(seed)
	file := make([]byte, filePages*memsys.PageSize)
	for i := range file {
		file[i] = byte(rng.Intn(256))
	}
	var reqs []profile.PageRequirement
	for fp := 0; fp < filePages; fp += 8 {
		off := rng.Intn(memsys.PageSize)
		bit := rng.Intn(8)
		dir := dram.ZeroToOne
		if file[fp*memsys.PageSize+off]&(1<<bit) != 0 {
			dir = dram.OneToZero
		}
		reqs = append(reqs, profile.PageRequirement{
			FilePage: fp,
			Flips:    []profile.CellFlip{{Offset: off, Bit: bit, Dir: dir}},
		})
	}
	return file, reqs
}
