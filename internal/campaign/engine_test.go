package campaign

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rowhammer/internal/dram"
)

// TestTransientModuleFailureNotCached pins the cache-poisoning fix: a
// module-allocation failure under a campaign that was elected template
// leader must fail only that campaign. Later campaigns of the same
// identity re-elect a leader and succeed — the transient error is never
// published into the profile cache.
func TestTransientModuleFailureNotCached(t *testing.T) {
	jobs := testFleet(t)
	want := make([]Result, len(jobs))
	for i, j := range jobs {
		want[i] = RunCampaign(i, j)
	}
	scrub(want)

	var calls atomic.Int64
	pool := dram.NewModulePool()
	cache := NewProfileCache()
	sum := Run(jobs, Config{
		Workers: 1, // deterministic: job 0 is the failing leader
		Cache:   cache,
		getModule: func(g dram.Geometry, d dram.DeviceProfile, seed int64) (*dram.Module, error) {
			if calls.Add(1) == 1 {
				return nil, errors.New("injected ENOMEM")
			}
			return pool.Get(g, d, seed)
		},
	})
	if sum.Failed != 1 {
		t.Fatalf("Failed = %d, want exactly the campaign whose leader hit the fault", sum.Failed)
	}
	r0 := sum.Results[0]
	if r0.Err == nil || !strings.Contains(r0.Err.Error(), "injected ENOMEM") {
		t.Fatalf("campaign 0 error = %v, want the injected allocation failure", r0.Err)
	}
	got := append([]Result(nil), sum.Results...)
	scrub(got)
	for i := 1; i < len(got); i++ {
		if got[i].Err != nil {
			t.Fatalf("campaign %d inherited the transient failure: %v", i, got[i].Err)
		}
		got[i].CacheHit = want[i].CacheHit
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("campaign %d differs from serial reference after leader retry", i)
		}
	}

	// The identity the failure hit must be warm now, not poisoned: a
	// second fleet over the same cache succeeds everywhere with zero new
	// templates.
	entries := cache.Entries()
	again := Run(jobs, Config{Workers: 2, Cache: cache})
	if again.Failed != 0 {
		t.Fatalf("warm rerun failed %d campaigns; the transient error was cached", again.Failed)
	}
	if cache.Entries() != entries {
		t.Fatalf("warm rerun templated again: %d entries, had %d", cache.Entries(), entries)
	}
}

// TestCacheAbortElectsNewLeader drives the single-flight protocol
// directly: a follower parked on an aborted entry wakes with transient
// set, re-begins, and becomes the next leader.
func TestCacheAbortElectsNewLeader(t *testing.T) {
	c := NewProfileCache()
	k := testFleet(t)[0].profileKey()

	e1, leader := c.begin(k)
	if !leader {
		t.Fatal("first begin was not leader")
	}
	type outcome struct {
		transient bool
		leader    bool
	}
	got := make(chan outcome, 1)
	began := make(chan struct{})
	go func() {
		e, l := c.begin(k) // e1 still owns the entry: always a follower here
		close(began)
		if l {
			got <- outcome{leader: true}
			return
		}
		if err := c.wait(context.Background(), e); err != nil {
			got <- outcome{}
			return
		}
		if !e.transient {
			got <- outcome{transient: false}
			return
		}
		// Protocol says: re-begin after a transient abort.
		_, l = c.begin(k)
		got <- outcome{transient: true, leader: l}
	}()
	<-began
	c.abort(e1, errors.New("transient"))

	o := <-got
	if !o.transient {
		t.Fatal("follower did not observe the transient abort")
	}
	if !o.leader {
		t.Fatal("follower's re-begin did not elect it leader")
	}
	if c.Entries() != 1 {
		t.Fatalf("cache holds %d entries after re-election, want the fresh leader's 1", c.Entries())
	}
}

// TestCancelledFollowerDoesNotBlock pins the daemon-critical liveness
// property: a follower whose context dies while the leader computes
// must return promptly with the context error, not block on ready.
func TestCancelledFollowerDoesNotBlock(t *testing.T) {
	c := NewProfileCache()
	k := testFleet(t)[0].profileKey()
	if _, leader := c.begin(k); !leader {
		t.Fatal("setup: expected leadership")
	}
	e, leader := c.begin(k)
	if leader {
		t.Fatal("setup: expected followership")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	go func() { done <- c.wait(ctx, e) }()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("wait = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled follower still blocked on the leader")
	}
}

// TestCancellationUnwindsCleanly cancels a running fleet (with a tight
// arena cap so admission waiters are parked too) and asserts: the run
// returns, unfinished campaigns carry the context error and are never
// streamed, and no engine goroutine outlives the call. Run under -race
// this doubles as the concurrency regression test for the teardown
// paths.
func TestCancellationUnwindsCleanly(t *testing.T) {
	jobs := testFleet(t)
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	var streamed []int
	var mu sync.Mutex
	sum := RunContext(ctx, jobs, Config{
		Workers:       4,
		MaxArenaBytes: 4 << 20, // serialize admission: someone is always parked
		OnResult: func(r Result) {
			mu.Lock()
			streamed = append(streamed, r.Index)
			mu.Unlock()
			cancel() // first completion kills the fleet
		},
	})

	unfinished := 0
	streamedSet := map[int]bool{}
	for _, i := range streamed {
		streamedSet[i] = true
	}
	for _, r := range sum.Results {
		if errors.Is(r.Err, context.Canceled) {
			unfinished++
			if streamedSet[r.Index] {
				t.Fatalf("campaign %d was streamed AND marked unfinished", r.Index)
			}
		}
	}
	if unfinished == 0 {
		t.Fatal("cancellation finished every campaign; the test exercised nothing")
	}
	if unfinished != sum.Failed-countNonCancelFailures(sum.Results) {
		t.Fatalf("unfinished = %d not reflected in Failed = %d", unfinished, sum.Failed)
	}

	// Every engine goroutine must be gone: workers, admission waiters,
	// cache followers. Allow the runtime a moment to retire them.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Fatalf("%d goroutines outlive the cancelled run (baseline %d)", n, baseline)
	}
}

func countNonCancelFailures(rs []Result) int {
	n := 0
	for _, r := range rs {
		if r.Err != nil && !errors.Is(r.Err, context.Canceled) {
			n++
		}
	}
	return n
}

// TestBoundedCacheEvictsAndPreservesResults runs a fleet through a
// one-entry cache: the LRU bound must actually evict, and — by the
// determinism invariant — re-templating evicted identities must not
// change a byte of output relative to the unbounded run.
func TestBoundedCacheEvictsAndPreservesResults(t *testing.T) {
	jobs := testFleet(t)
	free := Run(jobs, Config{Workers: 2})
	if free.Failed != 0 {
		t.Fatalf("unbounded run failed %d", free.Failed)
	}

	small := NewProfileCacheSize(1)
	bounded := Run(jobs, Config{Workers: 2, Cache: small})
	if bounded.Failed != 0 {
		t.Fatalf("bounded run failed %d", bounded.Failed)
	}
	if small.Evicted() == 0 {
		t.Fatal("one-entry cache over a two-identity fleet never evicted")
	}
	if n := small.Entries(); n > 1 {
		t.Fatalf("bounded cache holds %d entries, bound is 1", n)
	}

	fr := append([]Result(nil), free.Results...)
	br := append([]Result(nil), bounded.Results...)
	scrub(fr)
	scrub(br)
	if !reflect.DeepEqual(fr, br) {
		t.Fatal("eviction changed campaign results")
	}
}

// TestResultJSONRoundTrip pins the wire format: a full successful
// Result and a failed one survive Marshal → Unmarshal with every
// deterministic field intact and the error degraded to its message.
func TestResultJSONRoundTrip(t *testing.T) {
	jobs := testFleet(t)[:1]
	ok := RunCampaign(0, jobs[0])
	if ok.Err != nil {
		t.Fatal(ok.Err)
	}
	bad := Result{Index: 3, Name: "x", SKU: "F1/16MB", Err: fmt.Errorf("wrapped: %w", errors.New("boom"))}

	for _, r := range []Result{ok, bad} {
		b, err := r.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back Result
		if err := back.UnmarshalJSON(b); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		// The wire form must be a fixed point: marshaling the decoded
		// result reproduces the original bytes.
		b2, err := back.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != string(b2) {
			t.Fatal("second marshal differs from first; wire form is not stable")
		}
		if r.Err != nil {
			if back.Err == nil || back.Err.Error() != r.Err.Error() {
				t.Fatalf("error round-tripped to %v, want message %q", back.Err, r.Err.Error())
			}
			r.Err, back.Err = nil, nil
		}
		if !reflect.DeepEqual(r, back) {
			t.Fatal("result changed across JSON round trip")
		}
	}
}
