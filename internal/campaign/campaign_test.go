package campaign

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"rowhammer/internal/core"
	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
	"rowhammer/internal/profile"
	"rowhammer/internal/tensor"
)

// syntheticWorkload builds a random weight file and one single-flip
// requirement per eighth page, direction chosen so the flip is
// observable against the stored bit.
func syntheticWorkload(filePages int, seed int64) ([]byte, []profile.PageRequirement) {
	rng := tensor.NewRNG(seed)
	file := make([]byte, filePages*memsys.PageSize)
	for i := range file {
		file[i] = byte(rng.Intn(256))
	}
	var reqs []profile.PageRequirement
	for fp := 0; fp < filePages; fp += 8 {
		off := rng.Intn(memsys.PageSize)
		bit := rng.Intn(8)
		dir := dram.ZeroToOne
		if file[fp*memsys.PageSize+off]&(1<<bit) != 0 {
			dir = dram.OneToZero
		}
		reqs = append(reqs, profile.PageRequirement{
			FilePage: fp,
			Flips:    []profile.CellFlip{{Offset: off, Bit: bit, Dir: dir}},
		})
	}
	return file, reqs
}

// tableIDevice returns the named Table I device profile.
func tableIDevice(t testing.TB, name string) dram.DeviceProfile {
	t.Helper()
	for _, d := range dram.TableIProfiles() {
		if d.Name == name {
			return d
		}
	}
	t.Fatalf("no Table I device %q", name)
	return dram.DeviceProfile{}
}

// testFleet builds a small heterogeneous fleet: two SKUs — a flippy
// DDR3 (F1, double-sided) and a flippy DDR4 with TRR (K1, 7-sided,
// fault-injected) — with three campaigns per SKU sharing one module
// identity, so each SKU templates once and hits twice.
func testFleet(t *testing.T) []Job {
	t.Helper()
	ddr3, ddr4 := tableIDevice(t, "F1"), tableIDevice(t, "K1")
	var jobs []Job
	for i := 0; i < 6; i++ {
		spec := ModuleSpec{Device: ddr3, SizeBytes: 16 << 20, Seed: 77}
		online := core.OnlineConfig{BufferPages: 1024, Sides: 2, Intensity: 1, MeasureSeed: 7}
		if i >= 3 {
			spec = ModuleSpec{Device: ddr4, SizeBytes: 24 << 20, Seed: 78,
				Fault: dram.FaultModel{FlipFailProb: 0.2, Seed: 5}}
			online.BufferPages = 2048
			online.Sides = 7
			online.Rounds = 3
			online.Escalation = 2
		}
		file, reqs := syntheticWorkload(128, int64(100+i))
		jobs = append(jobs, Job{
			Name:       fmt.Sprintf("camp-%d", i),
			WeightFile: file,
			Reqs:       reqs,
			Module:     spec,
			Online:     online,
		})
	}
	return jobs
}

// scrub zeroes the observational fields so results can be compared
// across worker counts and cache states.
func scrub(rs []Result) {
	for i := range rs {
		rs[i].ArenaBytes = 0
		if rs[i].Online != nil && rs[i].Online.Report != nil {
			rs[i].Online.Report.Timing = core.StageTiming{}
		}
	}
}

// TestRunMatchesSerialAtAnyWorkerCount asserts the pipelined engine
// reproduces the serial reference byte for byte at 1, 2 and 4 workers.
func TestRunMatchesSerialAtAnyWorkerCount(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	jobs := testFleet(t)

	want := make([]Result, len(jobs))
	for i, j := range jobs {
		want[i] = RunCampaign(i, j)
		if want[i].Err != nil {
			t.Fatalf("serial campaign %d: %v", i, want[i].Err)
		}
		if want[i].Online.NMatch == 0 {
			t.Fatalf("serial campaign %d matched nothing; identity check would be vacuous", i)
		}
	}
	// The serial reference computes every template itself.
	wantHit := []bool{false, true, true, false, true, true}
	scrub(want)

	for _, workers := range []int{1, 2, 4} {
		sum := Run(jobs, Config{Workers: workers})
		if sum.Failed != 0 {
			t.Fatalf("workers=%d: %d campaigns failed", workers, sum.Failed)
		}
		got := append([]Result(nil), sum.Results...)
		for i := range got {
			if got[i].CacheHit != wantHit[i] {
				t.Fatalf("workers=%d: campaign %d CacheHit = %v, want %v", workers, i, got[i].CacheHit, wantHit[i])
			}
			got[i].CacheHit = false
			if !bytes.Equal(got[i].Online.CorruptedFile, want[i].Online.CorruptedFile) {
				t.Fatalf("workers=%d: campaign %d corrupted file differs from serial reference", workers, i)
			}
		}
		scrub(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: results differ from serial reference", workers)
		}
		if sum.CacheHits != 4 {
			t.Fatalf("workers=%d: CacheHits = %d, want 4", workers, sum.CacheHits)
		}
	}
}

// TestWarmCacheIdentity asserts a fully warm cache — every template
// served without a single sweep — yields byte-identical campaigns, the
// cache-hit plan-identity invariant.
func TestWarmCacheIdentity(t *testing.T) {
	jobs := testFleet(t)
	cache := NewProfileCache()

	cold := Run(jobs, Config{Workers: 2, Cache: cache})
	if cold.Failed != 0 {
		t.Fatalf("cold fleet: %d failed", cold.Failed)
	}
	entries := cache.Entries()
	if entries != 2 {
		t.Fatalf("cold fleet computed %d templates, want 2", entries)
	}

	warm := Run(jobs, Config{Workers: 2, Cache: cache})
	if warm.Failed != 0 {
		t.Fatalf("warm fleet: %d failed", warm.Failed)
	}
	if cache.Entries() != entries {
		t.Fatal("warm fleet re-templated despite a full cache")
	}
	if warm.CacheHits != len(jobs) {
		t.Fatalf("warm fleet CacheHits = %d, want %d", warm.CacheHits, len(jobs))
	}
	cr := append([]Result(nil), cold.Results...)
	wr := append([]Result(nil), warm.Results...)
	scrub(cr)
	scrub(wr)
	for i := range cr {
		cr[i].CacheHit = false
		wr[i].CacheHit = false
	}
	if !reflect.DeepEqual(cr, wr) {
		t.Fatal("warm-cache results differ from cold-cache results")
	}
}

// TestNoFaultCampaignMatchesPlainExecuteOnline pins the engine's
// canonical execution to the pre-existing single-module path: without a
// fault model, the two-stage (template, rewind, attack) flow corrupts
// the file exactly as core.ExecuteOnline does in one pass.
func TestNoFaultCampaignMatchesPlainExecuteOnline(t *testing.T) {
	file, reqs := syntheticWorkload(32, 9)
	job := Job{
		Name:       "pin",
		WeightFile: file,
		Reqs:       reqs,
		Module:     ModuleSpec{Device: dram.PaperDDR3(), SizeBytes: 16 << 20, Seed: 41},
		Online:     core.OnlineConfig{BufferPages: 512, Sides: 2, Intensity: 1, MeasureSeed: 3},
	}
	got := RunCampaign(0, job)
	if got.Err != nil {
		t.Fatal(got.Err)
	}

	mod, err := dram.NewModule(job.Module.geometry(), job.Module.Device, job.Module.Seed)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.ExecuteOnline(memsys.NewSystem(mod), file, reqs, job.Online)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Online.CorruptedFile, want.CorruptedFile) {
		t.Fatal("campaign corrupted file differs from plain ExecuteOnline")
	}
	if !reflect.DeepEqual(got.Online.Plan, want.Plan) {
		t.Fatal("campaign plan differs from plain ExecuteOnline")
	}
}

// TestAdmissionCapBoundsAndPreservesResults asserts a tight arena cap
// serializes admission without changing a single byte of output.
func TestAdmissionCapBoundsAndPreservesResults(t *testing.T) {
	jobs := testFleet(t)
	free := Run(jobs, Config{Workers: 4})
	const cap = 4 << 20
	capped := Run(jobs, Config{Workers: 4, MaxArenaBytes: cap})
	if capped.Failed != 0 {
		t.Fatalf("capped fleet: %d failed", capped.Failed)
	}
	if capped.PeakReservedBytes > cap {
		t.Fatalf("peak reservation %d exceeds cap %d", capped.PeakReservedBytes, cap)
	}
	fr := append([]Result(nil), free.Results...)
	cr := append([]Result(nil), capped.Results...)
	scrub(fr)
	scrub(cr)
	if !reflect.DeepEqual(fr, cr) {
		t.Fatal("admission cap changed campaign results")
	}
}

// TestRunStreamsEveryResult asserts OnResult fires once per campaign
// and failures stay contained to their campaign.
func TestRunStreamsEveryResult(t *testing.T) {
	jobs := testFleet(t)[:2]
	jobs = append(jobs, Job{Name: "bad", Module: ModuleSpec{Device: dram.PaperDDR3(), SizeBytes: 16 << 20}})

	seen := make(map[int]bool)
	sum := Run(jobs, Config{Workers: 2, OnResult: func(r Result) { seen[r.Index] = true }})
	if len(seen) != len(jobs) {
		t.Fatalf("OnResult fired for %d campaigns, want %d", len(seen), len(jobs))
	}
	if sum.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", sum.Failed)
	}
	bad := sum.Results[2]
	if bad.Err == nil || !strings.Contains(bad.Err.Error(), "BufferPages") {
		t.Fatalf("invalid job error = %v, want BufferPages validation", bad.Err)
	}
	for _, r := range sum.Results[:2] {
		if r.Err != nil {
			t.Fatalf("healthy campaign %d failed: %v", r.Index, r.Err)
		}
	}
}

// waitWaiters spins until the semaphore has n queued waiters.
func waitWaiters(t *testing.T, s *byteSem, n int) {
	t.Helper()
	for i := 0; i < 1e7; i++ {
		s.mu.Lock()
		q := len(s.waiters)
		s.mu.Unlock()
		if q == n {
			return
		}
		runtime.Gosched()
	}
	t.Fatalf("semaphore never reached %d waiters", n)
}

// TestByteSemFIFO exercises the admission semaphore directly: clamping,
// strict FIFO (a small request must not jump a blocked large one), and
// peak accounting.
func TestByteSemFIFO(t *testing.T) {
	ctx := context.Background()
	s := newByteSem(100)
	if got, err := s.acquire(ctx, 250); err != nil || got != 100 {
		t.Fatalf("oversized acquire granted %d (err %v), want clamp to 100", got, err)
	}
	done := make(chan int, 2)
	mustAcquire := func(n int64) {
		got, err := s.acquire(ctx, n)
		if err != nil {
			t.Errorf("acquire(%d): %v", n, err)
		}
		done <- int(got)
	}
	go mustAcquire(60)
	waitWaiters(t, s, 1)
	go mustAcquire(1)
	waitWaiters(t, s, 2)

	// Free 59 bytes: the queued 60 still does not fit, and the 1 behind
	// it must not jump the line.
	s.release(59)
	waitWaiters(t, s, 2)
	select {
	case n := <-done:
		t.Fatalf("waiter for %d admitted out of order", n)
	default:
	}

	s.release(41)
	if a, b := <-done, <-done; a+b != 61 {
		t.Fatalf("granted %d and %d, want 60 and 1", a, b)
	}
	if s.peakReserved() != 100 {
		t.Fatalf("peak = %d, want 100", s.peakReserved())
	}
}
