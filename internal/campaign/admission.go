package campaign

import (
	"context"
	"sync"
)

// byteSem is the admission controller: a FIFO weighted semaphore over
// estimated in-flight module-arena bytes. It bounds how much DRAM
// simulation state the fleet keeps resident at once, independently of
// the worker count — the knob that keeps a 4-worker sweep of multi-GB
// modules from quadrupling peak RSS.
type byteSem struct {
	mu       sync.Mutex
	capacity int64 // 0 = unbounded
	used     int64
	peak     int64
	waiters  []*byteWaiter
}

type byteWaiter struct {
	n  int64
	ch chan struct{}
}

func newByteSem(capacity int64) *byteSem {
	if capacity < 0 {
		capacity = 0
	}
	return &byteSem{capacity: capacity}
}

// acquire blocks until n bytes fit under the cap or ctx is cancelled,
// and returns the amount actually reserved — n clamped to the cap, so a
// single oversized campaign still admits (alone) instead of
// deadlocking. Waiters are served strictly first-come-first-served; a
// small request never jumps a large one, so admission order is
// starvation-free. On cancellation the waiter is unlinked from the
// queue (or, if the grant raced the cancel, its reservation is returned)
// and acquire reports ctx's error with nothing held — a cancelled fleet
// leaves no queued waiter goroutines behind.
func (s *byteSem) acquire(ctx context.Context, n int64) (int64, error) {
	if n < 0 {
		n = 0
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	s.mu.Lock()
	if s.capacity > 0 && n > s.capacity {
		n = s.capacity
	}
	if len(s.waiters) == 0 && (s.capacity == 0 || s.used+n <= s.capacity) {
		s.grant(n)
		s.mu.Unlock()
		return n, nil
	}
	w := &byteWaiter{n: n, ch: make(chan struct{})}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()
	select {
	case <-w.ch:
		return n, nil
	case <-ctx.Done():
		s.mu.Lock()
		for i, q := range s.waiters {
			if q == w {
				s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
				// Removing a waiter — the head in particular — may let
				// the queue behind it fit.
				s.admitLocked()
				s.mu.Unlock()
				return 0, ctx.Err()
			}
		}
		s.mu.Unlock()
		// The grant raced the cancellation: the reservation is ours and
		// must be returned before reporting failure.
		<-w.ch
		s.release(n)
		return 0, ctx.Err()
	}
}

// grant books a reservation; callers hold s.mu.
func (s *byteSem) grant(n int64) {
	s.used += n
	if s.used > s.peak {
		s.peak = s.used
	}
}

// admitLocked admits queued waiters in order while they fit; callers
// hold s.mu.
func (s *byteSem) admitLocked() {
	for len(s.waiters) > 0 {
		w := s.waiters[0]
		if s.capacity > 0 && s.used+w.n > s.capacity {
			break
		}
		s.grant(w.n)
		s.waiters = s.waiters[1:]
		close(w.ch)
	}
}

// release returns a reservation and admits queued waiters in order
// while they fit.
func (s *byteSem) release(n int64) {
	s.mu.Lock()
	s.used -= n
	s.admitLocked()
	s.mu.Unlock()
}

// peakReserved reports the high-water reservation mark.
func (s *byteSem) peakReserved() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peak
}
