// Package campaign is the fleet-scale attack orchestrator: it runs many
// (victim, module, attack-config) campaigns concurrently on a bounded
// worker pool, pipelining each campaign's offline/template/plan/online
// stages so the online phase of one overlaps the templating of the
// next, deduplicating template work through a content-addressed profile
// cache, and recycling module arenas and OS-simulation bookkeeping so
// peak memory tracks concurrency instead of fleet size.
//
// The engine's canonical execution of one campaign is two-staged:
// template a pristine module of the campaign's identity, then rewind
// the module to that same pristine identity and run the online attack
// with the template injected (core.OnlineConfig.Profile). Because the
// online stage always starts from a pristine module and a finished
// template — whether the template was just computed or pulled from the
// cache — results are byte-identical at any worker count and any cache
// state. That invariant is what makes the cache sound, and the tests
// assert it directly.
package campaign

import (
	"fmt"
	"sort"
	"sync"

	"rowhammer/internal/core"
	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
	"rowhammer/internal/profile"
)

// ModuleSpec pins a campaign's DRAM identity: which device it is, how
// big, which weak-cell layout, and which fault model the environment
// imposes. Campaigns with equal specs attack physically identical
// modules.
type ModuleSpec struct {
	// Device is the Table I device profile.
	Device dram.DeviceProfile
	// SizeBytes is the module capacity (rounded up to the 16-bank
	// geometry NewModuleForSize uses).
	SizeBytes int
	// Seed keys the weak-cell layout.
	Seed int64
	// Fault is the fault model installed for both stages (zero value =
	// fully deterministic module).
	Fault dram.FaultModel
}

// geometry resolves the spec to the standard 16-bank layout.
func (s ModuleSpec) geometry() dram.Geometry {
	return dram.GeometryForSize(s.SizeBytes, 16)
}

// SKU names the spec's stock-keeping unit (device + capacity class).
func (s ModuleSpec) SKU() string {
	return fmt.Sprintf("%s/%dMB", s.Device.Name, s.SizeBytes>>20)
}

// Job is one campaign: a weight file to corrupt, the bit flips it
// needs, the module to attack, and the online configuration.
type Job struct {
	// Name labels the campaign in results and streaming output.
	Name string
	// WeightFile is the victim's page-aligned weight file.
	WeightFile []byte
	// Reqs are the offline phase's per-page flip requirements.
	Reqs []profile.PageRequirement
	// Module is the DRAM identity under attack.
	Module ModuleSpec
	// Online configures the online engine. Profile must be nil — the
	// engine owns template injection.
	Online core.OnlineConfig
}

// profileKey derives the job's template identity.
func (j Job) profileKey() profileKey {
	return profileKey{
		geom:        j.Module.geometry(),
		device:      j.Module.Device,
		seed:        j.Module.Seed,
		fault:       j.Module.Fault,
		bufferPages: j.Online.BufferPages,
		sides:       j.Online.Sides,
		intensity:   j.Online.Intensity,
		measureSeed: j.Online.MeasureSeed,
	}
}

func (j Job) skuKey() skuKey {
	return skuKey{device: j.Module.Device, geom: j.Module.geometry()}
}

// Result is one campaign's outcome.
type Result struct {
	// Index is the job's position in the submitted slice; Results in a
	// Summary are ordered by it regardless of completion order.
	Index int
	// Name echoes Job.Name.
	Name string
	// SKU echoes the module's stock-keeping unit.
	SKU string
	// CacheHit reports whether the campaign's template was served from
	// the cache. It is derived from the canonical job order (the first
	// job of each template identity is the cold one), not from
	// scheduling, so it is deterministic at any worker count.
	CacheHit bool
	// ArenaBytes is the module arena high-water mark this campaign
	// observed. Observational only: pooled modules keep their slabs, so
	// the value depends on scheduling.
	ArenaBytes int64
	// Online is the attack outcome (nil when Err is set).
	Online *core.OnlineResult
	// Err is the campaign's failure, if any. One campaign failing does
	// not stop the fleet.
	Err error
}

// SKUStats aggregates the fleet's outcomes per module SKU.
type SKUStats struct {
	SKU       string
	Campaigns int
	CacheHits int
	Failed    int
	// NMatch/NRequired sum the per-campaign flip tallies.
	NMatch    int
	NRequired int
	// MaxArenaBytes is observational (see Result.ArenaBytes).
	MaxArenaBytes int64
}

// Summary is the fleet outcome.
type Summary struct {
	// Results holds every campaign in canonical (submission) order.
	Results []Result
	// Failed counts campaigns with Err set.
	Failed int
	// CacheHits counts campaigns served a cached template.
	CacheHits int
	// PeakReservedBytes is the admission controller's high-water mark.
	// Observational: it depends on scheduling.
	PeakReservedBytes int64
	// SKUs aggregates per stock-keeping unit, sorted by SKU name.
	SKUs []SKUStats
}

// Config controls the fleet engine.
type Config struct {
	// Workers bounds concurrently executing campaign stages (≤0 = 1).
	Workers int
	// MaxArenaBytes caps estimated in-flight module state; 0 removes
	// the cap. Campaigns over the cap admit alone, clamped.
	MaxArenaBytes int64
	// Cache, when non-nil, is shared across Run invocations (a warm
	// fleet); nil gives the run a private cache.
	Cache *ProfileCache
	// OnResult, when non-nil, streams each campaign's Result as it
	// finishes (completion order, not submission order). Calls are
	// serialized.
	OnResult func(Result)
}

// engine is the per-Run state.
type engine struct {
	cache *ProfileCache
	pool  *dram.ModulePool
	rec   *memsys.Recycler
	adm   *byteSem
	slots chan struct{}
}

// templateJob profiles a pristine module of the job's identity and
// returns the primed, shareable template. The module is left dirty;
// callers rewind or recycle it.
func templateJob(job Job, mod *dram.Module, rec *memsys.Recycler) (*profile.Profile, error) {
	sys := systemFor(mod, rec)
	sys.InjectFaults(job.Module.Fault)
	attacker := sys.NewProcess()
	base, err := attacker.Mmap(job.Online.BufferPages)
	if err != nil {
		return nil, fmt.Errorf("campaign: attacker buffer: %w", err)
	}
	prof, err := profile.ProfileBuffer(sys, attacker, base, job.Online.BufferPages, profile.Config{
		Sides:       job.Online.Sides,
		Intensity:   job.Online.Intensity,
		MeasureSeed: job.Online.MeasureSeed,
	})
	if rec != nil {
		sys.Recycle(rec)
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: templating: %w", err)
	}
	// Primed before sharing: planning against the template is then a
	// pure read and any number of campaigns may plan concurrently.
	prof.PrimeIndex()
	return prof, nil
}

// onlineJob runs the online attack on a pristine module with the
// template injected.
func onlineJob(job Job, mod *dram.Module, prof *profile.Profile, rec *memsys.Recycler) (*core.OnlineResult, error) {
	sys := systemFor(mod, rec)
	sys.InjectFaults(job.Module.Fault)
	cfg := job.Online
	cfg.Profile = prof
	res, err := core.ExecuteOnline(sys, job.WeightFile, job.Reqs, cfg)
	if rec != nil {
		sys.Recycle(rec)
	}
	return res, err
}

func systemFor(mod *dram.Module, rec *memsys.Recycler) *memsys.System {
	if rec != nil {
		return rec.NewSystem(mod)
	}
	return memsys.NewSystem(mod)
}

// validate rejects jobs the engine cannot execute canonically.
func (j Job) validate() error {
	if j.Online.Profile != nil {
		return fmt.Errorf("campaign: job %q pre-sets Online.Profile; the engine owns template injection", j.Name)
	}
	if j.Online.BufferPages <= 0 {
		return fmt.Errorf("campaign: job %q has no templating buffer (BufferPages = %d)", j.Name, j.Online.BufferPages)
	}
	if j.Module.SizeBytes <= 0 {
		return fmt.Errorf("campaign: job %q has no module size", j.Name)
	}
	return nil
}

// RunCampaign executes one campaign serially with no pooling or
// caching — the canonical reference execution and the baseline the
// fleet benchmark compares against. Run produces byte-identical
// per-campaign results.
func RunCampaign(job Job) Result {
	r := Result{Name: job.Name, SKU: job.Module.SKU()}
	if err := job.validate(); err != nil {
		r.Err = err
		return r
	}
	mod, err := dram.NewModule(job.Module.geometry(), job.Module.Device, job.Module.Seed)
	if err != nil {
		r.Err = fmt.Errorf("campaign: module: %w", err)
		return r
	}
	prof, err := templateJob(job, mod, nil)
	if err != nil {
		r.Err = err
		return r
	}
	// Rewind to the exact identity the template described; the online
	// stage starts from a pristine module in both engines.
	mod.Reset(job.Module.Device, job.Module.Seed)
	r.Online, r.Err = onlineJob(job, mod, prof, nil)
	r.ArenaBytes = int64(mod.ArenaBytes())
	return r
}

// Run executes the fleet: every job, pipelined across cfg.Workers
// concurrent stage slots, with template deduplication through the
// profile cache, pooled module arenas, and admission control over
// estimated in-flight bytes. Per-campaign results are byte-identical to
// RunCampaign at any worker count and any cache state; only the
// observational fields (ArenaBytes, PeakReservedBytes, stage timings)
// depend on scheduling.
func Run(jobs []Job, cfg Config) *Summary {
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	cache := cfg.Cache
	if cache == nil {
		cache = NewProfileCache()
	}
	e := &engine{
		cache: cache,
		pool:  dram.NewModulePool(),
		rec:   memsys.NewRecycler(),
		adm:   newByteSem(cfg.MaxArenaBytes),
		slots: make(chan struct{}, workers),
	}

	// CacheHit is assigned from canonical order — the first job of each
	// template identity (counting identities already in a shared cache)
	// is the cold one — so the flag does not wobble with scheduling.
	hit := make([]bool, len(jobs))
	cache.mu.Lock()
	seen := make(map[profileKey]bool, len(jobs))
	for k := range cache.entries {
		seen[k] = true
	}
	cache.mu.Unlock()
	for i, j := range jobs {
		if j.validate() != nil {
			continue // never templates, so it neither hits nor seeds a key
		}
		k := j.profileKey()
		hit[i] = seen[k]
		seen[k] = true
	}

	results := make([]Result, len(jobs))
	var emitMu sync.Mutex
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := e.runJob(i, jobs[i], hit[i])
			results[i] = r
			if cfg.OnResult != nil {
				emitMu.Lock()
				cfg.OnResult(r)
				emitMu.Unlock()
			}
		}(i)
	}
	wg.Wait()

	return summarize(results, e.adm.peakReserved())
}

// runJob drives one campaign through the pipeline.
func (e *engine) runJob(idx int, job Job, hit bool) Result {
	r := Result{Index: idx, Name: job.Name, SKU: job.Module.SKU(), CacheHit: hit}
	if err := job.validate(); err != nil {
		r.Err = err
		return r
	}
	spec := job.Module

	// Admission first: the reservation covers the campaign end to end,
	// so the byte cap bounds resident state no matter how many worker
	// slots exist.
	est := e.arenaEstimate(job)
	granted := e.adm.acquire(est)
	defer e.adm.release(granted)

	entry, leader := e.cache.begin(job.profileKey())
	var prof *profile.Profile
	var mod *dram.Module
	if leader {
		e.slots <- struct{}{}
		var err error
		mod, err = e.pool.Get(spec.geometry(), spec.Device, spec.Seed)
		if err == nil {
			prof, err = templateJob(job, mod, e.rec)
		}
		e.cache.publish(entry, prof, err)
		if err != nil {
			<-e.slots
			e.pool.Put(mod)
			r.Err = err
			return r
		}
	} else {
		// Followers wait without a slot: a stalled template must not
		// starve unrelated campaigns of workers.
		<-entry.ready
		if entry.err != nil {
			r.Err = entry.err
			return r
		}
		prof = entry.prof
		e.slots <- struct{}{}
	}
	defer func() { <-e.slots }()

	if mod != nil {
		mod.Reset(spec.Device, spec.Seed)
	} else {
		var err error
		mod, err = e.pool.Get(spec.geometry(), spec.Device, spec.Seed)
		if err != nil {
			r.Err = fmt.Errorf("campaign: module: %w", err)
			return r
		}
	}
	r.Online, r.Err = onlineJob(job, mod, prof, e.rec)
	r.ArenaBytes = int64(mod.ArenaBytes())
	e.pool.Put(mod)
	e.cache.observe(job.skuKey(), leader, prof.TotalFlips(), r.ArenaBytes)
	return r
}

// arenaEstimate guesses a campaign's resident-state footprint for
// admission. Sparse modules materialize only pages the attack actually
// dirties — roughly the flippy fraction of the templating buffer plus
// the whole weight file — so the estimate is a fraction of the buffer
// plus the file plus fixed slack for bookkeeping. The SKU prior's
// observed high-water mark, when larger, replaces the guess: strictly
// advisory, it only shapes admission order.
func (e *engine) arenaEstimate(job Job) int64 {
	est := int64(job.Online.BufferPages)*memsys.PageSize/8 +
		int64(len(job.WeightFile)) + 1<<20
	if p := e.cache.Prior(job.skuKey()); p.MaxArenaBytes > est {
		est = p.MaxArenaBytes
	}
	return est
}

// summarize assembles the canonical-order summary.
func summarize(results []Result, peak int64) *Summary {
	s := &Summary{Results: results, PeakReservedBytes: peak}
	bySKU := make(map[string]*SKUStats)
	var names []string
	for i := range results {
		r := &results[i]
		st := bySKU[r.SKU]
		if st == nil {
			st = &SKUStats{SKU: r.SKU}
			bySKU[r.SKU] = st
			names = append(names, r.SKU)
		}
		st.Campaigns++
		if r.CacheHit {
			st.CacheHits++
			s.CacheHits++
		}
		if r.Err != nil {
			st.Failed++
			s.Failed++
			continue
		}
		st.NMatch += r.Online.NMatch
		st.NRequired += r.Online.NRequired
		if r.ArenaBytes > st.MaxArenaBytes {
			st.MaxArenaBytes = r.ArenaBytes
		}
	}
	sort.Strings(names)
	for _, n := range names {
		s.SKUs = append(s.SKUs, *bySKU[n])
	}
	return s
}
