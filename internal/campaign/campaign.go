// Package campaign is the fleet-scale attack orchestrator: it runs many
// (victim, module, attack-config) campaigns concurrently on a bounded
// worker pool, pipelining each campaign's offline/template/plan/online
// stages so the online phase of one overlaps the templating of the
// next, deduplicating template work through a content-addressed profile
// cache, and recycling module arenas and OS-simulation bookkeeping so
// peak memory tracks concurrency instead of fleet size.
//
// The engine's canonical execution of one campaign is two-staged:
// template a pristine module of the campaign's identity, then rewind
// the module to that same pristine identity and run the online attack
// with the template injected (core.OnlineConfig.Profile). Because the
// online stage always starts from a pristine module and a finished
// template — whether the template was just computed or pulled from the
// cache — results are byte-identical at any worker count and any cache
// state. That invariant is what makes the cache sound, what lets a
// bounded cache evict and re-compute freely, and what lets a daemon
// checkpoint a half-finished fleet and resume it to byte-identical
// results; the tests assert it directly.
package campaign

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"rowhammer/internal/core"
	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
	"rowhammer/internal/profile"
)

// ModuleSpec pins a campaign's DRAM identity: which device it is, how
// big, which weak-cell layout, and which fault model the environment
// imposes. Campaigns with equal specs attack physically identical
// modules.
type ModuleSpec struct {
	// Device is the Table I device profile.
	Device dram.DeviceProfile
	// SizeBytes is the module capacity (rounded up to the 16-bank
	// geometry NewModuleForSize uses).
	SizeBytes int
	// Seed keys the weak-cell layout.
	Seed int64
	// Fault is the fault model installed for both stages (zero value =
	// fully deterministic module).
	Fault dram.FaultModel
}

// geometry resolves the spec to the standard 16-bank layout.
func (s ModuleSpec) geometry() dram.Geometry {
	return dram.GeometryForSize(s.SizeBytes, 16)
}

// SKU names the spec's stock-keeping unit (device + capacity class).
func (s ModuleSpec) SKU() string {
	return fmt.Sprintf("%s/%dMB", s.Device.Name, s.SizeBytes>>20)
}

// Job is one campaign: a weight file to corrupt, the bit flips it
// needs, the module to attack, and the online configuration.
type Job struct {
	// Name labels the campaign in results and streaming output.
	Name string
	// WeightFile is the victim's page-aligned weight file.
	WeightFile []byte
	// Reqs are the offline phase's per-page flip requirements.
	Reqs []profile.PageRequirement
	// Module is the DRAM identity under attack.
	Module ModuleSpec
	// Online configures the online engine. Profile must be nil — the
	// engine owns template injection.
	Online core.OnlineConfig
}

// profileKey derives the job's template identity.
func (j Job) profileKey() profileKey {
	return profileKey{
		geom:        j.Module.geometry(),
		device:      j.Module.Device,
		seed:        j.Module.Seed,
		fault:       j.Module.Fault,
		bufferPages: j.Online.BufferPages,
		sides:       j.Online.Sides,
		intensity:   j.Online.Intensity,
		measureSeed: j.Online.MeasureSeed,
	}
}

// Fingerprint is the job's template-identity fingerprint — the stable
// serialized form of the profile-cache key. Jobs with equal
// fingerprints share one flip template. Checkpoints persist fingerprint
// sets so a resumed fleet reproduces its original cache-hit assignment.
func (j Job) Fingerprint() string { return j.profileKey().fingerprint() }

func (j Job) skuKey() skuKey {
	return skuKey{device: j.Module.Device, geom: j.Module.geometry()}
}

// Result is one campaign's outcome.
type Result struct {
	// Index is the job's position in the submitted slice; Results in a
	// Summary are ordered by it regardless of completion order.
	Index int
	// Name echoes Job.Name.
	Name string
	// SKU echoes the module's stock-keeping unit.
	SKU string
	// CacheHit reports whether the campaign's template identity was
	// already warm when the fleet started. It is derived from the
	// canonical job order (the first job of each template identity is
	// the cold one), not from scheduling or eviction, so it is
	// deterministic at any worker count and any cache bound.
	CacheHit bool
	// ArenaBytes is the module arena high-water mark this campaign
	// observed. Observational only: pooled modules keep their slabs, so
	// the value depends on scheduling.
	ArenaBytes int64
	// Online is the attack outcome (nil when Err is set).
	Online *core.OnlineResult
	// Err is the campaign's failure, if any. One campaign failing does
	// not stop the fleet.
	Err error
}

// Scrub zeroes the observational, schedule-dependent fields (arena
// high-water mark, stage wall-clock) so results can be byte-compared
// across worker counts, cache states and resume boundaries. Everything
// left is covered by the determinism invariant.
func (r *Result) Scrub() {
	r.ArenaBytes = 0
	if r.Online != nil && r.Online.Report != nil {
		r.Online.Report.Timing = core.StageTiming{}
	}
}

// SKUStats aggregates the fleet's outcomes per module SKU.
type SKUStats struct {
	SKU       string
	Campaigns int
	CacheHits int
	Failed    int
	// NMatch/NRequired sum the per-campaign flip tallies.
	NMatch    int
	NRequired int
	// MaxArenaBytes is observational (see Result.ArenaBytes).
	MaxArenaBytes int64
}

// Summary is the fleet outcome.
type Summary struct {
	// Results holds every campaign in canonical (submission) order.
	Results []Result
	// Failed counts campaigns with Err set (including campaigns a
	// cancelled run never finished).
	Failed int
	// CacheHits counts campaigns served a cached template.
	CacheHits int
	// PeakReservedBytes is the admission controller's high-water mark.
	// Observational: it depends on scheduling.
	PeakReservedBytes int64
	// SKUs aggregates per stock-keeping unit, sorted by SKU name.
	SKUs []SKUStats
}

// Config controls the fleet engine.
type Config struct {
	// Workers bounds concurrently executing campaigns (≤0 = 1). The
	// dispatcher runs exactly this many goroutines over the job list, so
	// a 10k-job fleet parks zero goroutines beyond the worker count.
	Workers int
	// MaxArenaBytes caps estimated in-flight module state; 0 removes
	// the cap. Campaigns over the cap admit alone, clamped.
	MaxArenaBytes int64
	// Cache, when non-nil, is shared across Run invocations (a warm
	// fleet); nil gives the run a private cache.
	Cache *ProfileCache
	// OnResult, when non-nil, streams each campaign's Result as it
	// finishes (completion order, not submission order). Calls are
	// serialized. Campaigns a cancelled run never finished are NOT
	// streamed — checkpointing daemons rely on that to record only
	// completed work.
	OnResult func(Result)
	// Indices, when non-nil, maps each position in jobs to its canonical
	// index in the originally submitted fleet (len must equal len(jobs)).
	// This is the resume path: a daemon re-running the pending subset of
	// a checkpointed fleet keeps the original Result.Index values.
	Indices []int
	// Hits, when non-nil, overrides the canonical cache-hit assignment
	// (len must equal len(jobs)). Resume pairs it with Indices so a
	// resumed fleet reproduces the hit flags its uninterrupted run would
	// have emitted, regardless of the live cache's current contents.
	Hits []bool

	// getModule, when non-nil, replaces the module pool's allocator —
	// a test seam for injecting transient allocation failures.
	getModule func(g dram.Geometry, d dram.DeviceProfile, seed int64) (*dram.Module, error)
}

// engine is the per-Run state.
type engine struct {
	cache *ProfileCache
	pool  *dram.ModulePool
	rec   *memsys.Recycler
	adm   *byteSem
	get   func(g dram.Geometry, d dram.DeviceProfile, seed int64) (*dram.Module, error)
}

// templateJob profiles a pristine module of the job's identity and
// returns the primed, shareable template. The module is left dirty;
// callers rewind or recycle it.
func templateJob(job Job, mod *dram.Module, rec *memsys.Recycler) (*profile.Profile, error) {
	sys := systemFor(mod, rec)
	sys.InjectFaults(job.Module.Fault)
	attacker := sys.NewProcess()
	base, err := attacker.Mmap(job.Online.BufferPages)
	if err != nil {
		return nil, fmt.Errorf("campaign: attacker buffer: %w", err)
	}
	prof, err := profile.ProfileBuffer(sys, attacker, base, job.Online.BufferPages, profile.Config{
		Sides:       job.Online.Sides,
		Intensity:   job.Online.Intensity,
		MeasureSeed: job.Online.MeasureSeed,
	})
	if rec != nil {
		sys.Recycle(rec)
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: templating: %w", err)
	}
	// Primed before sharing: planning against the template is then a
	// pure read and any number of campaigns may plan concurrently.
	prof.PrimeIndex()
	return prof, nil
}

// onlineJob runs the online attack on a pristine module with the
// template injected.
func onlineJob(job Job, mod *dram.Module, prof *profile.Profile, rec *memsys.Recycler) (*core.OnlineResult, error) {
	sys := systemFor(mod, rec)
	sys.InjectFaults(job.Module.Fault)
	cfg := job.Online
	cfg.Profile = prof
	res, err := core.ExecuteOnline(sys, job.WeightFile, job.Reqs, cfg)
	if rec != nil {
		sys.Recycle(rec)
	}
	return res, err
}

func systemFor(mod *dram.Module, rec *memsys.Recycler) *memsys.System {
	if rec != nil {
		return rec.NewSystem(mod)
	}
	return memsys.NewSystem(mod)
}

// Validate rejects jobs the engine cannot execute canonically.
func (j Job) Validate() error {
	if j.Online.Profile != nil {
		return fmt.Errorf("campaign: job %q pre-sets Online.Profile; the engine owns template injection", j.Name)
	}
	if j.Online.BufferPages <= 0 {
		return fmt.Errorf("campaign: job %q has no templating buffer (BufferPages = %d)", j.Name, j.Online.BufferPages)
	}
	if j.Module.SizeBytes <= 0 {
		return fmt.Errorf("campaign: job %q has no module size", j.Name)
	}
	return nil
}

// RunCampaign executes one campaign serially with no pooling or
// caching — the canonical reference execution and the baseline the
// fleet benchmark compares against. index becomes Result.Index, so the
// serial and fleet paths emit identical metadata for the same job list.
// Run produces byte-identical per-campaign results.
func RunCampaign(index int, job Job) Result {
	r := Result{Index: index, Name: job.Name, SKU: job.Module.SKU()}
	if err := job.Validate(); err != nil {
		r.Err = err
		return r
	}
	mod, err := dram.NewModule(job.Module.geometry(), job.Module.Device, job.Module.Seed)
	if err != nil {
		r.Err = fmt.Errorf("campaign: module: %w", err)
		return r
	}
	prof, err := templateJob(job, mod, nil)
	if err != nil {
		r.Err = err
		return r
	}
	// Rewind to the exact identity the template described; the online
	// stage starts from a pristine module in both engines.
	mod.Reset(job.Module.Device, job.Module.Seed)
	r.Online, r.Err = onlineJob(job, mod, prof, nil)
	r.ArenaBytes = int64(mod.ArenaBytes())
	return r
}

// HitAssignment computes the canonical cache-hit flags for a job list:
// walking jobs in submission order, a job hits iff its template
// fingerprint was already seen — in the seed set (identities warm in a
// shared cache when the fleet starts) or on an earlier valid job.
// Invalid jobs never template, so they neither hit nor seed a key. The
// assignment is a pure function of (jobs, seed), which is what lets a
// daemon checkpoint the seed fingerprints at submission and reproduce
// the exact flags when resuming.
func HitAssignment(jobs []Job, seed []string) []bool {
	seen := make(map[string]bool, len(seed)+len(jobs))
	for _, fp := range seed {
		seen[fp] = true
	}
	hits := make([]bool, len(jobs))
	for i, j := range jobs {
		if j.Validate() != nil {
			continue
		}
		fp := j.Fingerprint()
		hits[i] = seen[fp]
		seen[fp] = true
	}
	return hits
}

// Run executes the fleet with no cancellation; see RunContext.
func Run(jobs []Job, cfg Config) *Summary {
	return RunContext(context.Background(), jobs, cfg)
}

// RunContext executes the fleet: every job, dispatched over cfg.Workers
// worker goroutines with template/plan/online stages pipelined across
// campaigns, template deduplication through the profile cache, pooled
// module arenas, and admission control over estimated in-flight bytes.
// Per-campaign results are byte-identical to RunCampaign at any worker
// count and any cache state; only the observational fields (ArenaBytes,
// PeakReservedBytes, stage timings) depend on scheduling.
//
// Cancelling ctx stops the run at the next stage boundary: campaigns
// already past their last cancellation point complete and are streamed;
// everything else — queued jobs, admission waiters, cache followers —
// unwinds promptly, leaving no goroutines behind. Unfinished campaigns
// appear in the Summary with Err set to ctx's error and are not passed
// to OnResult.
func RunContext(ctx context.Context, jobs []Job, cfg Config) *Summary {
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) && len(jobs) > 0 {
		workers = len(jobs)
	}
	cache := cfg.Cache
	if cache == nil {
		cache = NewProfileCache()
	}
	e := &engine{
		cache: cache,
		pool:  dram.NewModulePool(),
		rec:   memsys.NewRecycler(),
		adm:   newByteSem(cfg.MaxArenaBytes),
	}
	e.get = cfg.getModule
	if e.get == nil {
		e.get = e.pool.Get
	}
	if cfg.Indices != nil && len(cfg.Indices) != len(jobs) {
		panic("campaign: len(Config.Indices) != len(jobs)")
	}
	if cfg.Hits != nil && len(cfg.Hits) != len(jobs) {
		panic("campaign: len(Config.Hits) != len(jobs)")
	}

	// CacheHit is assigned from canonical order — the first job of each
	// template identity (counting identities already in a shared cache)
	// is the cold one — so the flag does not wobble with scheduling or
	// eviction. Resume passes the assignment in explicitly.
	hits := cfg.Hits
	if hits == nil {
		hits = HitAssignment(jobs, cache.Fingerprints())
	}
	index := func(i int) int {
		if cfg.Indices != nil {
			return cfg.Indices[i]
		}
		return i
	}

	// Bounded dispatcher: exactly `workers` goroutines pull job
	// positions off a channel, so fleet size bounds nothing but the
	// result slice — a 10k-job fleet runs on a handful of goroutines
	// instead of parking one per job.
	results := make([]Result, len(jobs))
	finished := make([]bool, len(jobs))
	jobCh := make(chan int)
	var emitMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobCh {
				r, done := e.runJob(ctx, index(i), jobs[i], hits[i])
				results[i] = r
				finished[i] = done
				if done && cfg.OnResult != nil {
					emitMu.Lock()
					cfg.OnResult(r)
					emitMu.Unlock()
				}
			}
		}()
	}
feed:
	for i := range jobs {
		select {
		case jobCh <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobCh)
	wg.Wait()

	// Jobs the cancelled run never started or never finished carry the
	// cancellation error so the summary is explicit about missing work.
	for i := range jobs {
		if !finished[i] {
			results[i] = Result{
				Index: index(i), Name: jobs[i].Name, SKU: jobs[i].Module.SKU(),
				CacheHit: hits[i], Err: ctx.Err(),
			}
		}
	}

	return summarize(results, e.adm.peakReserved())
}

// runJob drives one campaign through the pipeline. The boolean reports
// completion: false means ctx cancelled the campaign mid-flight and the
// Result carries the cancellation error rather than an attack outcome.
func (e *engine) runJob(ctx context.Context, idx int, job Job, hit bool) (Result, bool) {
	r := Result{Index: idx, Name: job.Name, SKU: job.Module.SKU(), CacheHit: hit}
	if err := job.Validate(); err != nil {
		r.Err = err
		return r, true
	}
	spec := job.Module

	// Admission first: the reservation covers the campaign end to end,
	// so the byte cap bounds resident state no matter how many worker
	// slots exist.
	granted, err := e.adm.acquire(ctx, e.arenaEstimate(job))
	if err != nil {
		r.Err = err
		return r, false
	}
	defer e.adm.release(granted)

	var prof *profile.Profile
	var mod *dram.Module
	for {
		entry, leader := e.cache.begin(job.profileKey())
		if leader {
			if err := ctx.Err(); err != nil {
				// A cancelled leader must not leave followers parked on an
				// entry nobody will finish: abort removes it and wakes them.
				e.cache.abort(entry, err)
				r.Err = err
				return r, false
			}
			mod, err = e.get(spec.geometry(), spec.Device, spec.Seed)
			if err != nil {
				// Pre-template failure: environmental, not a function of the
				// template key. Caching it would poison every future campaign
				// of this identity (fatal for a long-lived daemon), so the
				// entry is removed and followers re-attempt.
				e.cache.abort(entry, err)
				r.Err = fmt.Errorf("campaign: module: %w", err)
				return r, true
			}
			prof, err = templateJob(job, mod, e.rec)
			// The template computation's outcome — profile or error — is a
			// deterministic function of the key: cache it either way.
			e.cache.publish(entry, prof, err)
			if err != nil {
				e.pool.Put(mod)
				r.Err = err
				return r, true
			}
			break
		}
		if err := e.cache.wait(ctx, entry); err != nil {
			r.Err = err
			return r, false
		}
		if entry.transient {
			// The leader aborted without deciding the key (allocation
			// failure or cancellation). Re-begin: this campaign may become
			// the new leader and re-attempt the template.
			if err := ctx.Err(); err != nil {
				r.Err = err
				return r, false
			}
			continue
		}
		if entry.err != nil {
			r.Err = entry.err
			return r, true
		}
		prof = entry.prof
		break
	}

	if mod != nil {
		mod.Reset(spec.Device, spec.Seed)
	} else {
		mod, err = e.get(spec.geometry(), spec.Device, spec.Seed)
		if err != nil {
			r.Err = fmt.Errorf("campaign: module: %w", err)
			return r, true
		}
	}
	r.Online, r.Err = onlineJob(job, mod, prof, e.rec)
	r.ArenaBytes = int64(mod.ArenaBytes())
	e.pool.Put(mod)
	e.cache.observe(job.skuKey(), !hit, prof.TotalFlips(), r.ArenaBytes)
	return r, true
}

// arenaEstimate guesses a campaign's resident-state footprint for
// admission. Sparse modules materialize only pages the attack actually
// dirties — roughly the flippy fraction of the templating buffer plus
// the whole weight file — so the estimate is a fraction of the buffer
// plus the file plus fixed slack for bookkeeping. The SKU prior's
// observed high-water mark, when larger, replaces the guess: strictly
// advisory, it only shapes admission order.
func (e *engine) arenaEstimate(job Job) int64 {
	est := int64(job.Online.BufferPages)*memsys.PageSize/8 +
		int64(len(job.WeightFile)) + 1<<20
	if p := e.cache.Prior(job.skuKey()); p.MaxArenaBytes > est {
		est = p.MaxArenaBytes
	}
	return est
}

// Summarize assembles the canonical-order summary from per-campaign
// results (ordered by Result.Index as stored). Exposed so a resuming
// daemon can fold checkpointed and freshly computed results into the
// same aggregate shape Run produces.
func Summarize(results []Result) *Summary {
	return summarize(results, 0)
}

// summarize assembles the canonical-order summary.
func summarize(results []Result, peak int64) *Summary {
	s := &Summary{Results: results, PeakReservedBytes: peak}
	bySKU := make(map[string]*SKUStats)
	var names []string
	for i := range results {
		r := &results[i]
		st := bySKU[r.SKU]
		if st == nil {
			st = &SKUStats{SKU: r.SKU}
			bySKU[r.SKU] = st
			names = append(names, r.SKU)
		}
		st.Campaigns++
		if r.CacheHit {
			st.CacheHits++
			s.CacheHits++
		}
		// The arena high-water mark is observational but real for failed
		// campaigns too (an online-stage failure still materialized its
		// module); excluding them would under-report peak memory.
		if r.ArenaBytes > st.MaxArenaBytes {
			st.MaxArenaBytes = r.ArenaBytes
		}
		if r.Err != nil {
			st.Failed++
			s.Failed++
			continue
		}
		st.NMatch += r.Online.NMatch
		st.NRequired += r.Online.NRequired
	}
	sort.Strings(names)
	for _, n := range names {
		s.SKUs = append(s.SKUs, *bySKU[n])
	}
	return s
}
