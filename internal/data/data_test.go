package data

import (
	"testing"

	"rowhammer/internal/tensor"
)

func TestSynthesizeDeterministic(t *testing.T) {
	cfg := SynthCIFAR(40, 7)
	a := Synthesize(cfg, 1)
	b := Synthesize(cfg, 1)
	for i := range a.Images.Data() {
		if a.Images.Data()[i] != b.Images.Data()[i] {
			t.Fatal("same seeds must give same data")
		}
	}
	c := Synthesize(cfg, 2)
	same := true
	for i := range a.Images.Data() {
		if a.Images.Data()[i] != c.Images.Data()[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different sample seeds gave identical data")
	}
}

func TestSynthesizeBalancedLabels(t *testing.T) {
	ds := Synthesize(SynthCIFAR(50, 3), 1)
	counts := make([]int, 10)
	for _, l := range ds.Labels {
		counts[l]++
	}
	for cl, n := range counts {
		if n != 5 {
			t.Fatalf("class %d has %d samples, want 5", cl, n)
		}
	}
}

func TestSynthesizePixelRange(t *testing.T) {
	ds := Synthesize(SynthCIFAR(20, 5), 9)
	for _, v := range ds.Images.Data() {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v outside [0,1]", v)
		}
	}
}

func TestSubsetAndHead(t *testing.T) {
	ds := Synthesize(SynthCIFAR(30, 1), 1)
	sub := ds.Subset([]int{5, 10})
	if sub.Len() != 2 {
		t.Fatalf("subset len %d", sub.Len())
	}
	if sub.Labels[0] != ds.Labels[5] || sub.Labels[1] != ds.Labels[10] {
		t.Fatal("subset labels wrong")
	}
	img5 := ds.Image(5)
	for i, v := range sub.Image(0) {
		if v != img5[i] {
			t.Fatal("subset pixels wrong")
		}
	}
	// Subset copies: mutating the subset must not affect the original.
	sub.Image(0)[0] = -1
	if ds.Image(5)[0] == -1 {
		t.Fatal("Subset must copy pixels")
	}
	h := ds.Head(7)
	if h.Len() != 7 || h.Labels[3] != ds.Labels[3] {
		t.Fatal("Head wrong")
	}
	if ds.Head(100).Len() != 30 {
		t.Fatal("Head should clamp to dataset size")
	}
}

func TestBatches(t *testing.T) {
	ds := Synthesize(SynthCIFAR(25, 2), 4)
	bs := ds.Batches(10)
	if len(bs) != 3 {
		t.Fatalf("got %d batches, want 3", len(bs))
	}
	if bs[2].Images.Dim(0) != 5 || len(bs[2].Labels) != 5 {
		t.Fatalf("tail batch size %d", bs[2].Images.Dim(0))
	}
	// Batches must be copies.
	bs[0].Images.Data()[0] = -5
	if ds.Images.Data()[0] == -5 {
		t.Fatal("Batches must copy pixels")
	}
}

func TestShuffledPreservesPairs(t *testing.T) {
	ds := Synthesize(SynthCIFAR(20, 8), 3)
	sh := ds.Shuffled(tensor.NewRNG(1))
	if sh.Len() != ds.Len() {
		t.Fatal("length changed")
	}
	// Each shuffled sample must exist in the original with its label.
	c, h, w := ds.ImageSize()
	n := c * h * w
	for i := 0; i < sh.Len(); i++ {
		found := false
		for j := 0; j < ds.Len(); j++ {
			if sh.Labels[i] != ds.Labels[j] {
				continue
			}
			match := true
			for k := 0; k < n; k += 97 {
				if sh.Image(i)[k] != ds.Image(j)[k] {
					match = false
					break
				}
			}
			if match {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("shuffled sample %d not found in original", i)
		}
	}
}

func TestTriggerApplyOnlyTouchesMask(t *testing.T) {
	tr := NewSquareTrigger(3, 32, 32, 10)
	tr.Pattern.Fill(0.5)
	img := tensor.New(2, 3, 32, 32)
	img.Fill(0.9)
	tr.Apply(img)
	for i := 0; i < 2; i++ {
		for ch := 0; ch < 3; ch++ {
			for y := 0; y < 32; y++ {
				for x := 0; x < 32; x++ {
					v := img.At(i, ch, y, x)
					if tr.InMask(y, x) {
						if v != 0.5 {
							t.Fatalf("mask pixel (%d,%d) = %v, want 0.5", y, x, v)
						}
					} else if v != 0.9 {
						t.Fatalf("outside pixel (%d,%d) = %v, want 0.9", y, x, v)
					}
				}
			}
		}
	}
}

func TestTriggerApplyClamps(t *testing.T) {
	tr := NewSquareTrigger(1, 8, 8, 2)
	tr.Pattern.Fill(3)
	img := tensor.New(1, 1, 8, 8)
	tr.Apply(img)
	if got := img.At(0, 0, 7, 7); got != 1 {
		t.Fatalf("clamped pixel = %v, want 1", got)
	}
}

func TestTriggerFGSMRespectsMaskAndRange(t *testing.T) {
	tr := NewSquareTrigger(1, 8, 8, 3)
	tr.Pattern.Fill(0.5)
	grad := tensor.New(1, 8, 8)
	grad.Fill(1)
	tr.UpdateFGSM(grad, 0.1)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			v := tr.Pattern.At(0, y, x)
			if tr.InMask(y, x) {
				if v != 0.6 {
					t.Fatalf("mask pattern (%d,%d) = %v, want 0.6", y, x, v)
				}
			} else if v != 0.5 {
				t.Fatalf("unmasked pattern mutated at (%d,%d)", y, x)
			}
		}
	}
	// Repeated steps must clamp at 1.
	for i := 0; i < 10; i++ {
		tr.UpdateFGSM(grad, 0.1)
	}
	if got := tr.Pattern.At(0, 7, 7); got != 1 {
		t.Fatalf("pattern should clamp at 1, got %v", got)
	}
}

func TestMaskedGradSum(t *testing.T) {
	tr := NewSquareTrigger(2, 4, 4, 2)
	g := tensor.New(3, 2, 4, 4)
	g.Fill(1)
	sum := tr.MaskedGradSum(g)
	if sum.At(0, 0, 0) != 3 {
		t.Fatalf("grad sum = %v, want 3 (batch size)", sum.At(0, 0, 0))
	}
}

func TestTriggerClone(t *testing.T) {
	tr := NewSquareTrigger(1, 8, 8, 2)
	tr.Pattern.Fill(0.3)
	cl := tr.Clone()
	cl.Pattern.Fill(0.7)
	if tr.Pattern.At(0, 7, 7) != 0.3 {
		t.Fatal("Clone shares pattern storage")
	}
}

func TestBatchesRejectsBadSize(t *testing.T) {
	ds := Synthesize(SynthCIFAR(10, 1), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ds.Batches(0)
}
