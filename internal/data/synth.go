package data

import (
	"math"

	"rowhammer/internal/tensor"
)

// SynthConfig parameterizes the synthetic task generator.
type SynthConfig struct {
	// Classes is the number of classes (10 for the CIFAR-10 stand-in,
	// 100 for the ImageNet stand-in).
	Classes int
	// Samples is the total number of images to draw.
	Samples int
	// H, W are the spatial dimensions (channels are fixed at 3).
	H, W int
	// Noise is the per-pixel Gaussian noise standard deviation; it
	// controls task difficulty.
	Noise float64
	// Seed makes the task deterministic. The same seed always yields the
	// same class prototypes, so a train set and a test set drawn with
	// different sample seeds share one underlying task.
	Seed int64
}

// taskPrototypes builds one smooth random prototype image per class:
// a base color plus a handful of Gaussian bumps per channel.
func taskPrototypes(cfg SynthConfig) []*tensor.Tensor {
	rng := tensor.NewRNG(cfg.Seed)
	protos := make([]*tensor.Tensor, cfg.Classes)
	for cl := 0; cl < cfg.Classes; cl++ {
		p := tensor.New(3, cfg.H, cfg.W)
		d := p.Data()
		for ch := 0; ch < 3; ch++ {
			base := float32(0.25 + 0.5*rng.Float64())
			for y := 0; y < cfg.H; y++ {
				for x := 0; x < cfg.W; x++ {
					d[(ch*cfg.H+y)*cfg.W+x] = base
				}
			}
			bumps := 3 + rng.Intn(3)
			for b := 0; b < bumps; b++ {
				cx := rng.Float64() * float64(cfg.W)
				cy := rng.Float64() * float64(cfg.H)
				amp := (rng.Float64()*2 - 1) * 0.6
				sigma := 2 + rng.Float64()*6
				for y := 0; y < cfg.H; y++ {
					for x := 0; x < cfg.W; x++ {
						dx := (float64(x) - cx) / sigma
						dy := (float64(y) - cy) / sigma
						d[(ch*cfg.H+y)*cfg.W+x] += float32(amp * math.Exp(-(dx*dx+dy*dy)/2))
					}
				}
			}
		}
		p.Clamp(0, 1)
		protos[cl] = p
	}
	return protos
}

// Synthesize draws a dataset from the task defined by cfg.Seed. The
// sampleSeed decorrelates the drawn samples, so train and test splits
// use the same cfg (same task) with different sampleSeeds.
func Synthesize(cfg SynthConfig, sampleSeed int64) *Dataset {
	protos := taskPrototypes(cfg)
	rng := tensor.NewRNG(sampleSeed)
	imgs := tensor.New(cfg.Samples, 3, cfg.H, cfg.W)
	labels := make([]int, cfg.Samples)
	pix := 3 * cfg.H * cfg.W
	for i := 0; i < cfg.Samples; i++ {
		cl := i % cfg.Classes // balanced classes
		labels[i] = cl
		dst := imgs.Data()[i*pix : (i+1)*pix]
		src := protos[cl].Data()
		gain := float32(0.85 + 0.3*rng.Float64()) // brightness jitter
		for j := range dst {
			v := src[j]*gain + float32(rng.NormFloat64()*cfg.Noise)
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			dst[j] = v
		}
	}
	return &Dataset{Images: imgs, Labels: labels, Classes: cfg.Classes}
}

// SynthCIFAR returns the default CIFAR-10 stand-in configuration.
func SynthCIFAR(samples int, seed int64) SynthConfig {
	return SynthConfig{Classes: 10, Samples: samples, H: 32, W: 32, Noise: 0.12, Seed: seed}
}

// SynthImageNet returns the default ImageNet stand-in configuration
// (100 classes at 32×32; the paper's 1000-class 224×224 task is out of
// reach for a CPU-only reproduction, see DESIGN.md).
func SynthImageNet(samples int, seed int64) SynthConfig {
	return SynthConfig{Classes: 100, Samples: samples, H: 32, W: 32, Noise: 0.10, Seed: seed}
}
