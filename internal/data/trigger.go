package data

import "rowhammer/internal/tensor"

// Trigger is the backdoor input perturbation Δx: a pattern confined to a
// rectangular mask (the paper initializes a black square at the bottom
// right). Apply stamps the pattern onto images; the attack's FGSM step
// mutates Pattern in place (subject to the mask).
type Trigger struct {
	// Pattern is (C, H, W); only entries inside the mask are used.
	Pattern *tensor.Tensor
	// X0, Y0 are the top-left corner of the mask; Size is the square
	// mask's edge length.
	X0, Y0, Size int
}

// NewSquareTrigger builds the paper's initial trigger: a size×size
// square at the bottom-right corner, initialized to black (pattern value
// 0 replaces the pixels under the mask).
func NewSquareTrigger(c, h, w, size int) *Trigger {
	return &Trigger{
		Pattern: tensor.New(c, h, w),
		X0:      w - size,
		Y0:      h - size,
		Size:    size,
	}
}

// InMask reports whether pixel (y, x) lies inside the trigger mask.
func (t *Trigger) InMask(y, x int) bool {
	return y >= t.Y0 && y < t.Y0+t.Size && x >= t.X0 && x < t.X0+t.Size
}

// Apply overwrites the masked region of every image in the batch with
// the trigger pattern, clamping to [0, 1]. Images is (N, C, H, W) and is
// modified in place.
func (t *Trigger) Apply(images *tensor.Tensor) {
	n, c, h, w := images.Dim(0), images.Dim(1), images.Dim(2), images.Dim(3)
	d := images.Data()
	pd := t.Pattern.Data()
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			for y := t.Y0; y < t.Y0+t.Size && y < h; y++ {
				for x := t.X0; x < t.X0+t.Size && x < w; x++ {
					idx := ((i*c+ch)*h+y)*w + x
					v := pd[(ch*h+y)*w+x]
					if v < 0 {
						v = 0
					} else if v > 1 {
						v = 1
					}
					d[idx] = v
				}
			}
		}
	}
}

// UpdateFGSM performs one Fast Gradient Sign Method step on the trigger
// pattern (Eq. 4): Δx ← Δx + ε·sgn(∇Δx F), restricted to the mask and
// clamped to valid pixel range.
func (t *Trigger) UpdateFGSM(grad *tensor.Tensor, eps float32) {
	c, h, w := t.Pattern.Dim(0), t.Pattern.Dim(1), t.Pattern.Dim(2)
	pd, gd := t.Pattern.Data(), grad.Data()
	for ch := 0; ch < c; ch++ {
		for y := t.Y0; y < t.Y0+t.Size && y < h; y++ {
			for x := t.X0; x < t.X0+t.Size && x < w; x++ {
				i := (ch*h+y)*w + x
				g := gd[i]
				switch {
				case g > 0:
					pd[i] += eps
				case g < 0:
					pd[i] -= eps
				}
				if pd[i] < 0 {
					pd[i] = 0
				} else if pd[i] > 1 {
					pd[i] = 1
				}
			}
		}
	}
}

// MaskedGradSum reduces a batch input gradient (N, C, H, W) to a single
// (C, H, W) gradient over the trigger pattern by summing across the
// batch (pixels under the mask are shared by every sample).
func (t *Trigger) MaskedGradSum(batchGrad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := batchGrad.Dim(0), batchGrad.Dim(1), batchGrad.Dim(2), batchGrad.Dim(3)
	out := tensor.New(c, h, w)
	bd, od := batchGrad.Data(), out.Data()
	for i := 0; i < n; i++ {
		base := i * c * h * w
		for j := range od {
			od[j] += bd[base+j]
		}
	}
	return out
}

// Clone returns a deep copy of the trigger.
func (t *Trigger) Clone() *Trigger {
	return &Trigger{Pattern: t.Pattern.Clone(), X0: t.X0, Y0: t.Y0, Size: t.Size}
}
