// Package data provides the seeded synthetic image-classification tasks
// that stand in for CIFAR-10 and ImageNet (which are unavailable in this
// offline reproduction), plus batching helpers and the backdoor-trigger
// abstraction shared by the attack and defense code.
//
// Each class is defined by a smooth random prototype image; samples are
// noisy draws around their class prototype. The tasks are easy enough
// for the from-scratch models to reach high clean accuracy in seconds of
// CPU training, which is the property the backdoor experiments need
// (stealth is measured as preserved test accuracy).
package data

import (
	"fmt"

	"rowhammer/internal/tensor"
)

// Dataset is a labeled image set. Images are (N, C, H, W) in [0, 1].
type Dataset struct {
	Images  *tensor.Tensor
	Labels  []int
	Classes int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Labels) }

// ImageSize returns (C, H, W).
func (d *Dataset) ImageSize() (c, h, w int) {
	return d.Images.Dim(1), d.Images.Dim(2), d.Images.Dim(3)
}

// Image returns the flat pixel slice of sample i (a view, not a copy).
func (d *Dataset) Image(i int) []float32 {
	c, h, w := d.ImageSize()
	n := c * h * w
	return d.Images.Data()[i*n : (i+1)*n]
}

// Subset returns a dataset holding copies of the given sample indices.
func (d *Dataset) Subset(idx []int) *Dataset {
	c, h, w := d.ImageSize()
	n := c * h * w
	out := tensor.New(len(idx), c, h, w)
	labels := make([]int, len(idx))
	for j, i := range idx {
		copy(out.Data()[j*n:(j+1)*n], d.Image(i))
		labels[j] = d.Labels[i]
	}
	return &Dataset{Images: out, Labels: labels, Classes: d.Classes}
}

// Head returns the first n samples as a subset.
func (d *Dataset) Head(n int) *Dataset {
	if n > d.Len() {
		n = d.Len()
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return d.Subset(idx)
}

// Batch is one minibatch view.
type Batch struct {
	Images *tensor.Tensor
	Labels []int
}

// Batches splits the dataset into minibatches of at most size samples,
// in order. The batches copy pixel data so callers may mutate them
// (e.g. to stamp triggers) without corrupting the dataset.
func (d *Dataset) Batches(size int) []Batch {
	if size <= 0 {
		panic(fmt.Sprintf("data: batch size must be positive, got %d", size))
	}
	c, h, w := d.ImageSize()
	n := c * h * w
	var out []Batch
	for lo := 0; lo < d.Len(); lo += size {
		hi := lo + size
		if hi > d.Len() {
			hi = d.Len()
		}
		img := tensor.New(hi-lo, c, h, w)
		copy(img.Data(), d.Images.Data()[lo*n:hi*n])
		out = append(out, Batch{
			Images: img,
			Labels: append([]int(nil), d.Labels[lo:hi]...),
		})
	}
	return out
}

// Shuffled returns a copy of the dataset with samples permuted by rng.
func (d *Dataset) Shuffled(rng *tensor.RNG) *Dataset {
	return d.Subset(rng.Perm(d.Len()))
}
