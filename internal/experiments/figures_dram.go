package experiments

import (
	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
	"rowhammer/internal/profile"
	"rowhammer/internal/sidechan"
)

// Figure2Report quantifies the bit-flip sparsity of a profiled buffer
// (Figure 2): total flips, vulnerable-cell fraction, and the flips of
// the flippiest page.
type Figure2Report struct {
	BufferBytes      int
	TotalFlips       int
	VulnerableRatio  float64
	MaxFlipsInPage   int
	FlipsPerPageHist map[int]int
}

// Figure2 profiles a DDR3 buffer and reports sparsity statistics.
func Figure2(bufPages int, seed int64) (*Figure2Report, error) {
	mod, err := dram.NewModuleForSize(bufPages*memsys.PageSize*2, dram.PaperDDR3(), seed)
	if err != nil {
		return nil, err
	}
	sys := memsys.NewSystem(mod)
	proc := sys.NewProcess()
	base, err := proc.Mmap(bufPages)
	if err != nil {
		return nil, err
	}
	prof, err := profile.ProfileBuffer(sys, proc, base, bufPages, profile.Config{
		Sides: 2, Intensity: 1, MeasureSeed: seed,
	})
	if err != nil {
		return nil, err
	}
	rep := &Figure2Report{
		BufferBytes:      bufPages * memsys.PageSize,
		TotalFlips:       prof.TotalFlips(),
		FlipsPerPageHist: prof.FlipsPerPageHistogram(),
	}
	bits := prof.VictimPageCount() * memsys.PageSize * 8
	if bits > 0 {
		rep.VulnerableRatio = float64(rep.TotalFlips) / float64(bits)
	}
	for n := range rep.FlipsPerPageHist {
		if n > rep.MaxFlipsInPage {
			rep.MaxFlipsInPage = n
		}
	}
	return rep, nil
}

// Figure4Point records one (release order, file page) pair of the
// massaging experiment.
type Figure4Point struct {
	FilePage int
	Frame    int
}

// Figure4 reproduces the released-pages-vs-weight-file mapping: the
// attacker releases an identity assignment in Listing 1 order and the
// victim's file pages land on those frames in reverse release order.
func Figure4(filePages int, seed int64) ([]Figure4Point, error) {
	mod, err := dram.NewModuleForSize((filePages*4+512)*memsys.PageSize, dram.PaperDDR3(), seed)
	if err != nil {
		return nil, err
	}
	sys := memsys.NewSystem(mod)
	sys.WriteFile("w.bin", make([]byte, filePages*memsys.PageSize))
	attacker := sys.NewProcess()
	bufBase, err := attacker.Mmap(filePages * 2)
	if err != nil {
		return nil, err
	}
	assignment := make([]int, filePages)
	for i := range assignment {
		assignment[i] = 2 * i // arbitrary spread over the buffer
	}
	if err := memsys.MassageFileMapping(attacker, bufBase, assignment); err != nil {
		return nil, err
	}
	victim := sys.NewProcess()
	base, err := victim.MmapFile("w.bin")
	if err != nil {
		return nil, err
	}
	out := make([]Figure4Point, filePages)
	for i := 0; i < filePages; i++ {
		f, err := victim.FrameOf(base + i*memsys.PageSize)
		if err != nil {
			return nil, err
		}
		out[i] = Figure4Point{FilePage: i, Frame: f}
	}
	return out, nil
}

// Figure5Point is one n-sided measurement: pattern width versus the
// average flips per victim page on a DDR4 buffer.
type Figure5Point struct {
	Sides            int
	AvgFlipsPerPage  float64
	TotalFlips       int
	VictimPagesCount int
}

// Figure5 sweeps the aggressor-row count of the n-sided pattern on the
// paper's DDR4 device (TRR blocks ≤2 sides; beyond that the escape
// fraction — and with it the flip yield — grows with the side count).
func Figure5(bufPages int, maxSides int, seed int64) ([]Figure5Point, error) {
	var out []Figure5Point
	for sides := 1; sides <= maxSides; sides += 2 {
		mod, err := dram.NewModuleForSize(bufPages*memsys.PageSize*2, dram.PaperDDR4(), seed)
		if err != nil {
			return nil, err
		}
		sys := memsys.NewSystem(mod)
		proc := sys.NewProcess()
		base, err := proc.Mmap(bufPages)
		if err != nil {
			return nil, err
		}
		point := Figure5Point{Sides: sides}
		if sides >= 2 {
			prof, err := profile.ProfileBuffer(sys, proc, base, bufPages, profile.Config{
				Sides: sides, Intensity: 1, MeasureSeed: seed,
			})
			if err != nil {
				return nil, err
			}
			point.AvgFlipsPerPage = prof.AvgFlipsPerPage()
			point.TotalFlips = prof.TotalFlips()
			point.VictimPagesCount = prof.VictimPageCount()
		}
		out = append(out, point)
	}
	return out, nil
}

// Figure6Report compares the per-page flip distribution of the 15- and
// 7-sided patterns (Figure 6): profiling with 15 sides finds more flips
// per page; attacking with 7 keeps the extra flips per target page low.
type Figure6Report struct {
	Avg15          float64
	Avg7           float64
	Hist15         map[int]int
	Hist7          map[int]int
	ExtraPerPage7  float64
	ExtraPerPage15 float64
}

// Figure6 profiles the same DDR4 device with both pattern widths.
func Figure6(bufPages int, seed int64) (*Figure6Report, error) {
	run := func(sides int) (*profile.Profile, error) {
		mod, err := dram.NewModuleForSize(bufPages*memsys.PageSize*2, dram.PaperDDR4(), seed)
		if err != nil {
			return nil, err
		}
		sys := memsys.NewSystem(mod)
		proc := sys.NewProcess()
		base, err := proc.Mmap(bufPages)
		if err != nil {
			return nil, err
		}
		return profile.ProfileBuffer(sys, proc, base, bufPages, profile.Config{
			Sides: sides, Intensity: 1, MeasureSeed: seed,
		})
	}
	p15, err := run(15)
	if err != nil {
		return nil, err
	}
	p7, err := run(7)
	if err != nil {
		return nil, err
	}
	return &Figure6Report{
		Avg15:          p15.AvgFlipsPerPage(),
		Avg7:           p7.AvgFlipsPerPage(),
		Hist15:         p15.FlipsPerPageHistogram(),
		Hist7:          p7.FlipsPerPageHistogram(),
		ExtraPerPage15: p15.AvgFlipsPerPage() - 1,
		ExtraPerPage7:  p7.AvgFlipsPerPage() - 1,
	}, nil
}

// Figure9Series is one Eq. 2 curve: probability of finding a target
// page versus profiled page count, for a given number of required bit
// offsets.
type Figure9Series struct {
	KPlusL     int
	PageCounts []int
	Prob       []float64
}

// Figure9 evaluates Eq. 2 for k+l ∈ {1, 2, 3} on the DDR4 chip K1, as
// in the appendix.
func Figure9() []Figure9Series {
	k1, _ := dram.ProfileByName("K1")
	pageCounts := []int{1, 10, 100, 500, 1000, 2200, 5000, 10000, 32768}
	var out []Figure9Series
	for kl := 1; kl <= 3; kl++ {
		out = append(out, Figure9Series{
			KPlusL:     kl,
			PageCounts: pageCounts,
			Prob:       profile.ProbSeries(k1.FlipsPerPage, kl, profile.PageBits, pageCounts),
		})
	}
	return out
}

// Figure10Series is one per-chip Eq. 2 curve for a single bit offset.
type Figure10Series struct {
	Device     string
	PageCounts []int
	Prob       []float64
}

// Figure10 evaluates Eq. 2 with k+l=1 for every Table I chip.
func Figure10() []Figure10Series {
	pageCounts := []int{1, 100, 1000, 10000, 32768, 100000, 1000000}
	var out []Figure10Series
	for _, p := range dram.TableIProfiles() {
		out = append(out, Figure10Series{
			Device:     p.Name,
			PageCounts: pageCounts,
			Prob:       profile.ProbSeries(p.FlipsPerPage, 1, profile.PageBits, pageCounts),
		})
	}
	return out
}

// Figure11Report holds a SPOILER sweep: the timing series and the
// detected contiguous runs.
type Figure11Report struct {
	Timings []float64
	Runs    []sidechan.Run
}

// Figure11 performs the SPOILER contiguity sweep over a fresh buffer.
func Figure11(pages int, seed int64) (*Figure11Report, error) {
	mod, err := dram.NewModuleForSize(pages*memsys.PageSize*2, dram.PaperDDR3(), seed)
	if err != nil {
		return nil, err
	}
	sys := memsys.NewSystem(mod)
	proc := sys.NewProcess()
	base, err := proc.Mmap(pages)
	if err != nil {
		return nil, err
	}
	meas := sidechan.NewMeasurer(sys, seed)
	timings, err := meas.SpoilerSweep(proc, base, pages)
	if err != nil {
		return nil, err
	}
	return &Figure11Report{
		Timings: timings,
		Runs:    sidechan.DetectContiguousRuns(timings, sidechan.SpoilerAlias),
	}, nil
}

// Figure12Report is the row-conflict access-time distribution.
type Figure12Report struct {
	Timings      []float64
	ConflictFrac float64
	MeanConflict float64
	MeanFast     float64
}

// Figure12 measures access-time pairs over contiguous chunks; about one
// per bank count lands in the same bank and shows the ~400-cycle
// conflict latency.
func Figure12(samples int, seed int64) (*Figure12Report, error) {
	mod, err := dram.NewModuleForSize((samples*2+64)*memsys.PageSize, dram.PaperDDR3(), seed)
	if err != nil {
		return nil, err
	}
	sys := memsys.NewSystem(mod)
	proc := sys.NewProcess()
	base, err := proc.Mmap(samples*2 + 32)
	if err != nil {
		return nil, err
	}
	meas := sidechan.NewMeasurer(sys, seed)
	rep := &Figure12Report{}
	var conflictSum, fastSum float64
	var conflicts, fast int
	for i := 1; i <= samples; i++ {
		t, err := meas.RowConflictCycles(proc, base, base+i*2*memsys.PageSize)
		if err != nil {
			return nil, err
		}
		rep.Timings = append(rep.Timings, t)
		if t > (sidechan.BaseCycles+sidechan.ConflictCycles)/2 {
			conflicts++
			conflictSum += t
		} else {
			fast++
			fastSum += t
		}
	}
	if conflicts > 0 {
		rep.MeanConflict = conflictSum / float64(conflicts)
	}
	if fast > 0 {
		rep.MeanFast = fastSum / float64(fast)
	}
	rep.ConflictFrac = float64(conflicts) / float64(samples)
	return rep, nil
}
