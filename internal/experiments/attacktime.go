package experiments

import "time"

// AttackTimeModel captures the §VII timing comparison: hammering one
// row takes ~800 ms with the 15-sided profiling pattern and ~400 ms
// with the 7-sided online pattern (prior double-sided work: ~190-200
// ms), and the total online time scales with N_flip.
type AttackTimeModel struct {
	// PerRow maps pattern width to the time one hammer run takes.
	PerRow map[int]time.Duration
}

// PaperAttackTime returns the measured per-row hammer times of §VII.
func PaperAttackTime() AttackTimeModel {
	return AttackTimeModel{PerRow: map[int]time.Duration{
		2:  200 * time.Millisecond, // double-sided (prior work, DDR3)
		7:  400 * time.Millisecond, // the paper's online pattern
		15: 800 * time.Millisecond, // the paper's profiling pattern
	}}
}

// OnlineTime estimates the total online attack time for nflip target
// rows hammered with the given pattern width.
func (m AttackTimeModel) OnlineTime(nflip, sides int) time.Duration {
	per, ok := m.PerRow[sides]
	if !ok {
		// Interpolate linearly on the pattern width (per-aggressor
		// activation budget is constant, so time scales with sides).
		per = time.Duration(sides) * 800 * time.Millisecond / 15
	}
	return time.Duration(nflip) * per
}

// ProfilingTime estimates templating a buffer of the given page count:
// the paper profiles 128 MB in 94 minutes with rows hammered
// sequentially.
func (m AttackTimeModel) ProfilingTime(bufPages, sides int) time.Duration {
	rows := bufPages / 2
	per := m.PerRow[sides]
	if per == 0 {
		per = 400 * time.Millisecond
	}
	// Double-sided profiling hammers every interior row once; n-sided
	// windows cover (sides−1) victims per window of 2·sides−1 rows.
	if sides > 2 {
		rows = rows * (sides - 1) / (2*sides - 1)
	}
	return time.Duration(rows) * per
}
