package experiments

import (
	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
	"rowhammer/internal/profile"
)

// Table1Row is one device of Table I with the simulator's measured
// flips-per-page alongside the paper's reported value.
type Table1Row struct {
	// Device is the anonymized brand/model tag.
	Device string
	// Type is the DRAM generation.
	Type string
	// PaperFlipsPerPage is the value from Table I.
	PaperFlipsPerPage float64
	// MeasuredFlipsPerPage is what profiling the simulated device
	// found.
	MeasuredFlipsPerPage float64
	// Sides is the profiling pattern width used.
	Sides int
}

// Table1 profiles a buffer on every Table I device and reports measured
// flips per page. DDR3 devices are profiled double-sided (all weak
// cells fire); DDR4 devices with the 15-sided pattern the paper used
// (which fires only cells below the TRR-escape disturbance, so measured
// values sit under the calibration target — the same gap between "cells
// that exist" and "cells a given pattern can reach" the paper
// discusses).
func Table1(bufPages int, seed int64) ([]Table1Row, error) {
	var rows []Table1Row
	for _, p := range dram.TableIProfiles() {
		sides := 2
		pages := bufPages
		if p.Type == dram.DDR4 {
			sides = 15
			// A 15-sided window spans 29 same-bank row chunks; with 16
			// banks the buffer needs ≥ 29·16·2 pages to profile at all.
			if pages < 1024 {
				pages = 1024
			}
		}
		measured, err := profileDevice(p, pages, sides, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Device:               p.Name,
			Type:                 p.Type.String(),
			PaperFlipsPerPage:    p.FlipsPerPage,
			MeasuredFlipsPerPage: measured,
			Sides:                sides,
		})
	}
	return rows, nil
}

// profileDevice templates a fresh buffer on a simulated module built
// from the given device profile and returns the average flips per
// victim page.
func profileDevice(p dram.DeviceProfile, bufPages, sides int, seed int64) (float64, error) {
	mod, err := dram.NewModuleForSize(bufPages*memsys.PageSize*2, p, seed)
	if err != nil {
		return 0, err
	}
	sys := memsys.NewSystem(mod)
	proc := sys.NewProcess()
	base, err := proc.Mmap(bufPages)
	if err != nil {
		return 0, err
	}
	prof, err := profile.ProfileBuffer(sys, proc, base, bufPages, profile.Config{
		Sides:       sides,
		Intensity:   1,
		MeasureSeed: seed,
	})
	if err != nil {
		return 0, err
	}
	return prof.AvgFlipsPerPage(), nil
}
