package experiments

import (
	"sort"

	"rowhammer/internal/baselines"
	"rowhammer/internal/core"
	"rowhammer/internal/metrics"
	"rowhammer/internal/pretrain"
	"rowhammer/internal/quant"
)

// Table3Row reports CFT+BR against a VGG architecture (Table III).
type Table3Row struct {
	Arch    string
	BaseAcc float64
	TA      float64
	ASR     float64
	NFlip   int
}

// Table3 runs CFT+BR on the VGG architectures.
func Table3(s Scale, archs []string) ([]Table3Row, error) {
	if len(archs) == 0 {
		archs = []string{"vgg11", "vgg16"}
	}
	var rows []Table3Row
	for _, arch := range archs {
		res, mcfg, err := victim(arch, s)
		if err != nil {
			return nil, err
		}
		model, err := pretrain.CloneModel(mcfg, res.Model)
		if err != nil {
			return nil, err
		}
		q := quant.NewQuantizer(model)
		cfg := attackConfig(s, defaultNFlip(q.NumPages()), true)
		out, err := core.RunOffline(model, res.Test.Head(s.AttackImages), cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{
			Arch:    arch,
			BaseAcc: res.Accuracy,
			TA:      metrics.TestAccuracy(model, res.Test),
			ASR:     metrics.AttackSuccessRate(model, res.Test, out.Trigger, s.TargetClass),
			NFlip:   out.NFlip,
		})
	}
	return rows, nil
}

// Table4Row is one restoration level of the Table IV / Appendix D
// experiment: BadNet's backdoor evaporates as its least important
// modifications are restored.
type Table4Row struct {
	// ModificationPercent is the share of modified parameters kept.
	ModificationPercent int
	TA                  float64
	ASR                 float64
}

// Table4 fine-tunes BadNet without constraints and then restores
// growing fractions of the modified parameters (smallest |change|
// first), re-measuring TA and ASR at each level.
func Table4(s Scale, arch string) ([]Table4Row, error) {
	if arch == "" {
		arch = "resnet20"
	}
	res, mcfg, err := victim(arch, s)
	if err != nil {
		return nil, err
	}
	model, err := pretrain.CloneModel(mcfg, res.Model)
	if err != nil {
		return nil, err
	}
	cfg := baselines.DefaultConfig(s.TargetClass)
	cfg.Iterations = s.BaselineIterations
	cfg.LR = s.BaselineLR / 5
	out, err := baselines.BadNet(model, res.Test.Head(s.AttackImages), cfg)
	if err != nil {
		return nil, err
	}

	// Rank modified weights by |code change| ascending (the proxy for
	// "lowest gradient value": the optimizer moved them least).
	type modw struct {
		idx   int
		delta int
	}
	var mods []modw
	for i := range out.OrigCodes {
		if out.OrigCodes[i] != out.BackdooredCodes[i] {
			d := int(out.BackdooredCodes[i]) - int(out.OrigCodes[i])
			if d < 0 {
				d = -d
			}
			mods = append(mods, modw{idx: i, delta: d})
		}
	}
	sort.Slice(mods, func(a, b int) bool { return mods[a].delta < mods[b].delta })

	levels := []int{100, 99, 90, 80, 70, 50}
	var rows []Table4Row
	q := out.Quantizer
	for _, keep := range levels {
		// Restore the smallest (100−keep)% of modifications.
		codes := append([]int8(nil), out.BackdooredCodes...)
		restore := len(mods) * (100 - keep) / 100
		for i := 0; i < restore; i++ {
			codes[mods[i].idx] = out.OrigCodes[mods[i].idx]
		}
		q.LoadCodes(codes)
		rows = append(rows, Table4Row{
			ModificationPercent: keep,
			TA:                  metrics.TestAccuracy(model, res.Test),
			ASR:                 metrics.AttackSuccessRate(model, res.Test, out.Trigger, s.TargetClass),
		})
	}
	return rows, nil
}
