package experiments

import (
	"math"
	"testing"
	"time"
)

func TestTable1ShapesAndOrdering(t *testing.T) {
	rows, err := Table1(256, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("Table I has %d rows, want 20", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		if r.MeasuredFlipsPerPage < 0 {
			t.Fatalf("%s: negative measurement", r.Device)
		}
		byName[r.Device] = r
	}
	// Relative ordering of hot vs cold chips must be preserved.
	if !(byName["K1"].MeasuredFlipsPerPage > byName["M1"].MeasuredFlipsPerPage) {
		t.Fatal("K1 (100.68) must out-flip M1 (2.04)")
	}
	if !(byName["F1"].MeasuredFlipsPerPage > byName["B1"].MeasuredFlipsPerPage) {
		t.Fatal("F1 (28.77) must out-flip B1 (1.05)")
	}
	// DDR3 double-sided profiling finds all weak cells: measured close
	// to the Table I value for a hot chip.
	a1 := byName["A1"]
	if math.Abs(a1.MeasuredFlipsPerPage-a1.PaperFlipsPerPage)/a1.PaperFlipsPerPage > 0.4 {
		t.Fatalf("A1 measured %.2f vs paper %.2f", a1.MeasuredFlipsPerPage, a1.PaperFlipsPerPage)
	}
}

func TestFigure2Sparsity(t *testing.T) {
	rep, err := Figure2(512, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalFlips == 0 {
		t.Fatal("no flips found")
	}
	// The paper's 0.036% vulnerable-cell figure.
	if rep.VulnerableRatio < 0.0001 || rep.VulnerableRatio > 0.001 {
		t.Fatalf("vulnerable ratio %.5f%% outside the expected band", 100*rep.VulnerableRatio)
	}
	if rep.MaxFlipsInPage < 5 {
		t.Fatalf("max flips per page %d suspiciously small", rep.MaxFlipsInPage)
	}
}

func TestFigure4ReverseOrderMapping(t *testing.T) {
	points, err := Figure4(32, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 32 {
		t.Fatalf("%d points", len(points))
	}
	// The attacker released frames for file pages N−1…0 (reverse), so
	// the FILO cache hands them back in file order: frames must follow
	// the assignment exactly, i.e. strictly increasing with file page
	// here (identity×2 assignment over a fresh contiguous buffer).
	for i := 1; i < len(points); i++ {
		if points[i].Frame <= points[i-1].Frame {
			t.Fatalf("frames not in planned order at %d: %+v", i, points[i-1:i+1])
		}
	}
}

func TestFigure5TRRShape(t *testing.T) {
	points, err := Figure5(2048, 15, 3)
	if err != nil {
		t.Fatal(err)
	}
	bySides := map[int]Figure5Point{}
	for _, p := range points {
		bySides[p.Sides] = p
	}
	if bySides[1].AvgFlipsPerPage != 0 {
		t.Fatal("single-sided must be TRR-mitigated")
	}
	if bySides[7].AvgFlipsPerPage <= 0 {
		t.Fatal("7-sided must flip on DDR4")
	}
	if !(bySides[15].AvgFlipsPerPage > bySides[7].AvgFlipsPerPage) {
		t.Fatalf("15-sided (%.2f) must out-flip 7-sided (%.2f)",
			bySides[15].AvgFlipsPerPage, bySides[7].AvgFlipsPerPage)
	}
}

func TestFigure6AggressorComparison(t *testing.T) {
	rep, err := Figure6(2048, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !(rep.Avg15 > rep.Avg7) {
		t.Fatalf("15-sided avg %.2f must exceed 7-sided %.2f", rep.Avg15, rep.Avg7)
	}
	if rep.Avg7 <= 0 {
		t.Fatal("7-sided found nothing")
	}
}

func TestFigure9Probabilities(t *testing.T) {
	series := Figure9()
	if len(series) != 3 {
		t.Fatalf("%d series", len(series))
	}
	// k+l=1 on K1: 2200 pages give ≥99.99% (the appendix's claim).
	s1 := series[0]
	for i, n := range s1.PageCounts {
		// The appendix quotes 99.99%; Eq. 2 with K1's Table I value
		// gives 99.88% — same order, see EXPERIMENTS.md.
		if n == 2200 && s1.Prob[i] < 0.99 {
			t.Fatalf("p(2200 pages, 1 offset) = %v, want ≥0.99", s1.Prob[i])
		}
	}
	// More offsets → lower probability at equal page count.
	last := len(s1.PageCounts) - 1
	if !(series[0].Prob[last] >= series[1].Prob[last] && series[1].Prob[last] >= series[2].Prob[last]) {
		t.Fatal("probability must fall with required offsets")
	}
}

func TestFigure10AllChipsConverge(t *testing.T) {
	series := Figure10()
	if len(series) != 20 {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		p := s.Prob[len(s.Prob)-1] // at 1M pages
		if p < 0.9 {
			t.Fatalf("%s: p at 1M pages = %v, want ≥0.9 (appendix: →1 for even the least flippy chips)", s.Device, p)
		}
	}
}

func TestFigure11SpoilerPeaks(t *testing.T) {
	rep, err := Figure11(1024, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) == 0 {
		t.Fatal("no contiguous run detected")
	}
	peaks := 0
	for _, c := range rep.Timings {
		if c > 425 {
			peaks++
		}
	}
	if peaks < 3 {
		t.Fatalf("%d peaks in 1024 pages, want ≥3 (every 256)", peaks)
	}
}

func TestFigure12ConflictFraction(t *testing.T) {
	rep, err := Figure12(400, 8)
	if err != nil {
		t.Fatal(err)
	}
	// About 1/16 of chunk pairs share a bank.
	if rep.ConflictFrac < 0.02 || rep.ConflictFrac > 0.15 {
		t.Fatalf("conflict fraction %.3f, want ≈1/16", rep.ConflictFrac)
	}
	if !(rep.MeanConflict > rep.MeanFast+50) {
		t.Fatalf("conflict latency %.0f not separated from fast %.0f", rep.MeanConflict, rep.MeanFast)
	}
}

func TestPlundervoltNegativeResult(t *testing.T) {
	rep := Plundervolt(11)
	if rep.PoCLoopFaults == 0 {
		t.Fatal("PoC loop must fault under deep undervolt")
	}
	if rep.QuantizedMACFaults != 0 {
		t.Fatalf("quantized MACs faulted %d times — appendix F says zero", rep.QuantizedMACFaults)
	}
	if rep.SafeOperandFaults != 0 {
		t.Fatal("safe-region operand faulted")
	}
}

func TestTable2ResNet20(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: full method comparison")
	}
	s := QuickScale()
	rows, err := Table2(s, []string{"resnet20"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	byMethod := map[string]Table2Row{}
	for _, r := range rows {
		t.Log(r.String())
		byMethod[r.Method] = r
	}
	cftbr := byMethod[MethodCFTBR]
	// The paper's headline shape: CFT+BR keeps ~full r_match and its
	// online ASR tracks its offline ASR; every baseline collapses.
	if cftbr.RMatch < 95 {
		t.Fatalf("CFT+BR r_match %.2f%%, want ≈100%%", cftbr.RMatch)
	}
	if cftbr.Online.ASR < cftbr.Offline.ASR-0.15 {
		t.Fatalf("CFT+BR online ASR %.3f much below offline %.3f", cftbr.Online.ASR, cftbr.Offline.ASR)
	}
	if cftbr.Online.ASR < 0.5 {
		t.Fatalf("CFT+BR online ASR %.3f too low", cftbr.Online.ASR)
	}
	for _, m := range []string{MethodBadNet, MethodFT, MethodTBT} {
		r := byMethod[m]
		if r.Offline.ASR < 0.4 {
			t.Fatalf("%s offline ASR %.3f — baseline should work offline", m, r.Offline.ASR)
		}
		if r.RMatch > 20 {
			t.Fatalf("%s r_match %.2f%% — baselines must collapse", m, r.RMatch)
		}
		if r.Online.ASR > cftbr.Online.ASR {
			t.Fatalf("%s online ASR %.3f should not beat CFT+BR %.3f", m, r.Online.ASR, cftbr.Online.ASR)
		}
	}
	// BadNet needs orders of magnitude more flips than CFT+BR offline.
	if byMethod[MethodBadNet].Offline.NFlip < 100*cftbr.Offline.NFlip {
		t.Fatal("BadNet should need vastly more flips than CFT+BR")
	}
}

func TestFigure7LossSpikes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: full attack run")
	}
	s := QuickScale()
	rep, err := Figure7(s, "resnet20")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Loss) != s.AttackIterations {
		t.Fatalf("loss history %d entries", len(rep.Loss))
	}
	if len(rep.BitReduceIters) == 0 {
		t.Fatal("no bit-reduction checkpoints recorded")
	}
	// The loss must fall overall despite the spikes.
	if rep.Loss[len(rep.Loss)-1] >= rep.Loss[0] {
		t.Fatalf("loss did not decrease: %v → %v", rep.Loss[0], rep.Loss[len(rep.Loss)-1])
	}
}

func TestFigure13FlipSparsity(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: two attack runs")
	}
	s := QuickScale()
	rep, err := Figure13(s, "resnet20")
	if err != nil {
		t.Fatal(err)
	}
	if rep.CFTBRSpread != 1 {
		t.Fatalf("CFT+BR spread %.2f, want 1.0 (one flip per page)", rep.CFTBRSpread)
	}
	if !(rep.TBTMaxHits > 1) {
		t.Fatalf("TBT max hits per page %d, want clustered >1", rep.TBTMaxHits)
	}
	if len(rep.TBTPages) > 2 {
		t.Fatalf("TBT touched %d pages, expected last-layer clustering", len(rep.TBTPages))
	}
}

func TestDefenseRADARAndReconstruction(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: four attack runs")
	}
	s := QuickScale()
	radar, err := DefenseRADAR(s, "resnet20")
	if err != nil {
		t.Fatal(err)
	}
	if !radar.StandardDetected {
		t.Fatal("RADAR must detect the standard (MSB-flipping) attack")
	}
	if radar.AdaptiveDetected {
		t.Fatal("RADAR must miss the MSB-avoiding adaptive attack")
	}
	// Avoiding the MSB leaves only ±64-step flips, so some ASR loss
	// is inherent; the paper claims only the detection bypass.
	if radar.AdaptiveASR < 0.15 {
		t.Fatalf("adaptive attack ASR %.3f collapsed", radar.AdaptiveASR)
	}

	rec, err := DefenseReconstruction(s, "resnet20")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("reconstruction: unaware ASR %.3f → %.3f after recon; adaptive %.3f",
		rec.UnawareASR, rec.AfterReconASR, rec.AdaptiveASR)
	if !(rec.AfterReconASR < rec.UnawareASR) {
		t.Fatal("reconstruction should reduce the unaware attacker's ASR")
	}
	if !(rec.AdaptiveASR > rec.AfterReconASR) {
		t.Fatal("the defense-aware attacker should beat reconstruction")
	}
}

func TestDefenseDeepDyveAndPWC(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: attack + second training run")
	}
	s := QuickScale()
	dd, err := DefenseDeepDyve(s, "resnet20")
	if err != nil {
		t.Fatal(err)
	}
	if dd.RecoveredRate != 0 {
		t.Fatal("persistent faults cannot be recovered by re-querying")
	}
	if dd.OfflineASR > 0.3 && dd.ASRDespiteDefense < dd.OfflineASR/2 {
		t.Fatalf("DeepDyve should not stop the backdoor: %.3f vs %.3f", dd.ASRDespiteDefense, dd.OfflineASR)
	}

	pwc, err := DefensePWC(s, "resnet20")
	if err != nil {
		t.Fatal(err)
	}
	if !(pwc.ClusterAfter < pwc.ClusterBefore) {
		t.Fatal("PWC fine-tuning should cluster weights")
	}
}

func TestAttackTimeModel(t *testing.T) {
	m := PaperAttackTime()
	// §VII: ~400 ms per row 7-sided, so 10 flips ≈ 4 s online.
	if got := m.OnlineTime(10, 7); got != 4*time.Second {
		t.Fatalf("online time = %v, want 4s", got)
	}
	// Profiling 128 MB (32768 pages) double-sided ≈ 200 ms × ~16k rows
	// ≈ 55 min (the paper measures 94 min including scans).
	prof := m.ProfilingTime(32768, 2)
	if prof < 30*time.Minute || prof > 120*time.Minute {
		t.Fatalf("profiling time = %v, want the paper's order (~94 min)", prof)
	}
	// Unknown width interpolates linearly.
	if got := m.OnlineTime(1, 30); got != 1600*time.Millisecond {
		t.Fatalf("interpolated per-row = %v", got)
	}
}
