package experiments

import (
	"fmt"

	"rowhammer/internal/baselines"
	"rowhammer/internal/core"
	"rowhammer/internal/data"
	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
	"rowhammer/internal/metrics"
	"rowhammer/internal/models"
	"rowhammer/internal/pretrain"
	"rowhammer/internal/profile"
	"rowhammer/internal/quant"
)

// Method names for the Table II comparison.
const (
	MethodBadNet = "BadNet"
	MethodFT     = "FT"
	MethodTBT    = "TBT"
	MethodCFT    = "CFT"
	MethodCFTBR  = "CFT+BR"
)

// AllMethods lists the Table II methods in paper order.
func AllMethods() []string {
	return []string{MethodBadNet, MethodFT, MethodTBT, MethodCFT, MethodCFTBR}
}

// Table2Row is one (architecture, method) entry of Table II.
type Table2Row struct {
	Arch     string
	Method   string
	BaseAcc  float64
	Bits     int // total weight bits of the deployed model
	Pages    int // weight-file pages
	Classes  int
	Offline  PhaseMetrics
	Online   PhaseMetrics
	RMatch   float64
	Accident int
}

// PhaseMetrics carries the per-phase numbers the table reports.
type PhaseMetrics struct {
	NFlip int
	TA    float64
	ASR   float64
}

// String renders the row in the paper's column order.
func (r Table2Row) String() string {
	return fmt.Sprintf("%-9s %-7s | off: Nflip=%-7d TA=%5.1f%% ASR=%5.1f%% | on: Nflip=%-6d TA=%5.1f%% ASR=%5.1f%% r_match=%6.2f%%",
		r.Arch, r.Method,
		r.Offline.NFlip, 100*r.Offline.TA, 100*r.Offline.ASR,
		r.Online.NFlip, 100*r.Online.TA, 100*r.Online.ASR, r.RMatch)
}

// offlineResult is the method-agnostic view of an offline attack.
type offlineResult struct {
	quantizer *quant.Quantizer
	orig      []int8
	codes     []int8
	trigger   *data.Trigger
	nflip     int
}

// runMethod executes one offline attack against a fresh clone of the
// victim.
func runMethod(method string, res *pretrain.Result, mcfg models.Config, s Scale) (*offlineResult, error) {
	model, err := pretrain.CloneModel(mcfg, res.Model)
	if err != nil {
		return nil, err
	}
	attackSet := res.Test.Head(s.AttackImages)

	switch method {
	case MethodBadNet, MethodFT:
		cfg := baselines.DefaultConfig(s.TargetClass)
		cfg.Iterations = s.BaselineIterations
		cfg.LR = s.BaselineLR
		var out *baselines.Result
		if method == MethodBadNet {
			cfg.LR = s.BaselineLR / 5 // full-network tuning needs a gentler step
			out, err = baselines.BadNet(model, attackSet, cfg)
		} else {
			out, err = baselines.FT(model, attackSet, cfg)
		}
		if err != nil {
			return nil, err
		}
		return &offlineResult{out.Quantizer, out.OrigCodes, out.BackdooredCodes, out.Trigger, out.NFlip}, nil
	case MethodTBT:
		cfg := baselines.DefaultTBTConfig(s.TargetClass)
		cfg.Iterations = s.BaselineIterations
		cfg.LR = s.BaselineLR
		out, err := baselines.TBT(model, attackSet, cfg)
		if err != nil {
			return nil, err
		}
		return &offlineResult{out.Quantizer, out.OrigCodes, out.BackdooredCodes, out.Trigger, out.NFlip}, nil
	case MethodCFT, MethodCFTBR:
		q := quant.NewQuantizer(model)
		nflip := defaultNFlip(q.NumPages())
		cfg := attackConfig(s, nflip, method == MethodCFTBR)
		out, err := core.RunOffline(model, attackSet, cfg)
		if err != nil {
			return nil, err
		}
		return &offlineResult{out.Quantizer, out.OrigCodes, out.BackdooredCodes, out.Trigger, out.NFlip}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown method %q", method)
	}
}

// defaultNFlip picks the flip budget for the constrained methods: the
// paper uses 10 of 69 pages on ResNet-20; scale to 1/7 of the page
// count with a floor of 5 (tiny width-scaled models need a handful of
// flips to express a backdoor at all).
func defaultNFlip(pages int) int {
	n := pages / 7
	if n < 5 {
		n = 5
	}
	if n > pages {
		n = pages
	}
	return n
}

// Table2 runs the full comparison for the given architectures.
func Table2(s Scale, archs []string) ([]Table2Row, error) {
	var rows []Table2Row
	for _, arch := range archs {
		res, mcfg, err := victim(arch, s)
		if err != nil {
			return nil, err
		}
		for _, method := range AllMethods() {
			row, err := table2Cell(arch, method, res, mcfg, s)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s/%s: %w", arch, method, err)
			}
			rows = append(rows, *row)
		}
	}
	return rows, nil
}

// table2Cell runs one (arch, method) offline+online experiment.
func table2Cell(arch, method string, res *pretrain.Result, mcfg models.Config, s Scale) (*Table2Row, error) {
	off, err := runMethod(method, res, mcfg, s)
	if err != nil {
		return nil, err
	}
	// Offline metrics: evaluate the model carrying the backdoored codes.
	offModel := off.quantizer.Model()
	row := &Table2Row{
		Arch:    arch,
		Method:  method,
		BaseAcc: res.Accuracy,
		Bits:    off.quantizer.NumWeights() * 8,
		Pages:   off.quantizer.NumPages(),
		Classes: res.Test.Classes,
		Offline: PhaseMetrics{
			NFlip: off.nflip,
			TA:    metrics.TestAccuracy(offModel, res.Test),
			ASR:   metrics.AttackSuccessRate(offModel, res.Test, off.trigger, s.TargetClass),
		},
	}

	// Online phase. CFT+BR requirements already satisfy one flip per
	// page; everything else gets the paper's one-best-flip-per-page
	// concession.
	var reqs []profile.PageRequirement
	if method == MethodCFTBR {
		reqs = core.RequirementsFromCodes(off.orig, off.codes)
	} else {
		reqs = core.ReduceRequirementsToOnePerPage(off.orig, off.codes)
	}

	mod, err := dram.NewModuleForSize(s.ModuleMB<<20, dram.PaperDDR3(), s.Seed+int64(len(arch))+int64(len(method)))
	if err != nil {
		return nil, err
	}
	sys := memsys.NewSystem(mod)

	cleanModel, err := pretrain.CloneModel(mcfg, res.Model)
	if err != nil {
		return nil, err
	}
	qClean := quant.NewQuantizer(cleanModel)
	cleanFile := qClean.WeightFileBytes()

	ocfg := core.DefaultOnlineConfig(len(cleanFile) / memsys.PageSize)
	ocfg.MeasureSeed = s.Seed
	onres, err := core.ExecuteOnline(sys, cleanFile, reqs, ocfg)
	if err != nil {
		return nil, err
	}

	// For r_match reporting the denominator is the *offline* N_flip
	// (how much of the intended perturbation is physically realizable).
	deltaPerPage := 0.0
	if pages := disturbedPages(cleanFile, onres.CorruptedFile); pages > 0 {
		deltaPerPage = float64(onres.AccidentalFlips) / float64(pages)
	}
	row.RMatch = metrics.RMatch(onres.NMatch, off.nflip, deltaPerPage)
	row.Accident = onres.AccidentalFlips

	// Load the corrupted file into a fresh victim and measure online
	// behavior.
	victimModel, err := pretrain.CloneModel(mcfg, res.Model)
	if err != nil {
		return nil, err
	}
	qv := quant.NewQuantizer(victimModel)
	qv.LoadWeightFileBytes(onres.CorruptedFile)
	row.Online = PhaseMetrics{
		NFlip: onres.NFlipOnline,
		TA:    metrics.TestAccuracy(victimModel, res.Test),
		ASR:   metrics.AttackSuccessRate(victimModel, res.Test, off.trigger, s.TargetClass),
	}
	return row, nil
}

// disturbedPages counts pages that differ between the two files.
func disturbedPages(a, b []byte) int {
	pages := map[int]bool{}
	for i := range a {
		if a[i] != b[i] {
			pages[i/memsys.PageSize] = true
		}
	}
	return len(pages)
}
