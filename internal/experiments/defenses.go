package experiments

import (
	"time"

	"rowhammer/internal/core"
	"rowhammer/internal/defense"
	"rowhammer/internal/metrics"
	"rowhammer/internal/models"
	"rowhammer/internal/nn"
	"rowhammer/internal/pretrain"
	"rowhammer/internal/quant"
	"rowhammer/internal/voltsim"
)

// BinarizationReport is the §VI-A binarization-aware-training result:
// the flip budget collapses with the page count and the attack fails.
type BinarizationReport struct {
	Info        defense.BinarizationInfo
	BaseAcc     float64 // binarized model's clean accuracy
	FullAcc     float64 // full-precision model's clean accuracy
	AttackTA    float64
	AttackASR   float64
	NFlipBudget int
}

// DefenseBinarization attacks a binarization-aware ResNet-32 with the
// shrunken flip budget.
func DefenseBinarization(s Scale) (*BinarizationReport, error) {
	// Train the binarized victim.
	binRes, binCfg, err := victimArch("bin-resnet32", s)
	if err != nil {
		return nil, err
	}
	fullRes, _, err := victim("resnet32", s)
	if err != nil {
		return nil, err
	}
	model, err := pretrain.CloneModel(binCfg, binRes.Model)
	if err != nil {
		return nil, err
	}
	binParams := defense.CountBinarizableParams(model.Root, func(l nn.Layer) (int, bool) {
		if bc, ok := l.(*models.BinConv2D); ok {
			return bc.Params()[0].W.Len(), true
		}
		return 0, false
	})
	info := defense.AnalyzeBinarization(model, binParams)

	// The attacker's budget on a binarized deployment is the binarized
	// page count.
	q := quant.NewQuantizer(model)
	budget := info.MaxNFlip
	if budget > q.NumPages() {
		budget = q.NumPages()
	}
	if budget < 1 {
		budget = 1
	}
	cfg := attackConfig(s, budget, true)
	out, err := core.RunOffline(model, binRes.Test.Head(s.AttackImages), cfg)
	if err != nil {
		return nil, err
	}
	return &BinarizationReport{
		Info:        info,
		BaseAcc:     binRes.Accuracy,
		FullAcc:     fullRes.Accuracy,
		AttackTA:    metrics.TestAccuracy(model, binRes.Test),
		AttackASR:   metrics.AttackSuccessRate(model, binRes.Test, out.Trigger, s.TargetClass),
		NFlipBudget: budget,
	}, nil
}

// PWCReport is the §VI-A piecewise-weight-clustering result.
type PWCReport struct {
	ClusterBefore float64
	ClusterAfter  float64
	CleanTA       float64
	AttackTA      float64
	AttackASR     float64
}

// DefensePWC fine-tunes the victim with the PWC penalty and re-runs the
// attack against the clustered model.
func DefensePWC(s Scale, arch string) (*PWCReport, error) {
	if arch == "" {
		arch = "resnet32"
	}
	res, mcfg, err := victim(arch, s)
	if err != nil {
		return nil, err
	}
	model, err := pretrain.CloneModel(mcfg, res.Model)
	if err != nil {
		return nil, err
	}
	rep := &PWCReport{ClusterBefore: defense.ClusteringScore(model)}
	pwcCfg := defense.DefaultPWCConfig()
	pwcCfg.Iterations = s.Epochs * 10
	defense.PWCFineTune(model, res.Train, pwcCfg)
	rep.ClusterAfter = defense.ClusteringScore(model)
	rep.CleanTA = metrics.TestAccuracy(model, res.Test)

	q := quant.NewQuantizer(model)
	cfg := attackConfig(s, defaultNFlip(q.NumPages()), true)
	out, err := core.RunOffline(model, res.Test.Head(s.AttackImages), cfg)
	if err != nil {
		return nil, err
	}
	rep.AttackTA = metrics.TestAccuracy(model, res.Test)
	rep.AttackASR = metrics.AttackSuccessRate(model, res.Test, out.Trigger, s.TargetClass)
	return rep, nil
}

// DeepDyveExperimentReport is the §VI-B DeepDyve result.
type DeepDyveExperimentReport struct {
	defense.DeepDyveReport
	OfflineASR float64
}

// DefenseDeepDyve backdoors the main model and runs the checker
// protocol: persistent flips survive the re-query.
func DefenseDeepDyve(s Scale, arch string) (*DeepDyveExperimentReport, error) {
	if arch == "" {
		arch = "resnet20"
	}
	res, mcfg, err := victim(arch, s)
	if err != nil {
		return nil, err
	}
	backdoored, err := pretrain.CloneModel(mcfg, res.Model)
	if err != nil {
		return nil, err
	}
	q := quant.NewQuantizer(backdoored)
	cfg := attackConfig(s, defaultNFlip(q.NumPages()), true)
	out, err := core.RunOffline(backdoored, res.Test.Head(s.AttackImages), cfg)
	if err != nil {
		return nil, err
	}
	// Checker: a smaller clean model trained on the same task.
	checkerScale := s
	checkerScale.Seed++
	checkerRes, _, err := victim(arch, checkerScale)
	if err != nil {
		return nil, err
	}
	dd := &defense.DeepDyve{Main: backdoored, Checker: checkerRes.Model}
	rep := &DeepDyveExperimentReport{
		DeepDyveReport: defense.EvaluateDeepDyve(dd, res.Test, out.Trigger, s.TargetClass),
		OfflineASR:     metrics.AttackSuccessRate(backdoored, res.Test, out.Trigger, s.TargetClass),
	}
	return rep, nil
}

// EncodingReport is the §VI-B weight-encoding overhead analysis.
type EncodingReport struct {
	Detected           bool
	MeasuredVerify     time.Duration
	MeasuredWeights    int
	ExtrapolatedVerify time.Duration // for a ResNet-34 sized model
	StorageRatio       float64
}

// DefenseEncoding measures the detector on a real corrupted weight file
// and extrapolates the paper's ResNet-34 overhead estimate.
func DefenseEncoding(s Scale, arch string) (*EncodingReport, error) {
	if arch == "" {
		arch = "resnet20"
	}
	res, mcfg, err := victim(arch, s)
	if err != nil {
		return nil, err
	}
	model, err := pretrain.CloneModel(mcfg, res.Model)
	if err != nil {
		return nil, err
	}
	q := quant.NewQuantizer(model)
	codes := q.Codes()

	// Signature length scales with weight count in the original scheme;
	// use m = n/64 to keep the measurement tractable.
	m := len(codes) / 64
	if m < 8 {
		m = 8
	}
	enc := defense.NewWeightEncoder(len(codes), m, s.Seed)
	enc.Encode(codes)

	cfg := attackConfig(s, defaultNFlip(q.NumPages()), true)
	out, err := core.RunOffline(model, res.Test.Head(s.AttackImages), cfg)
	if err != nil {
		return nil, err
	}
	ok, elapsed := enc.Verify(out.BackdooredCodes)

	// Extrapolate to the ResNet-34 scale the paper uses (21.8M params).
	perMAC := time.Duration(int64(elapsed) / int64(len(codes)*m))
	if perMAC <= 0 {
		perMAC = time.Nanosecond
	}
	const resnet34Params = 21_779_648
	exVerify, storage := defense.EstimateEncodingOverhead(resnet34Params, resnet34Params/64, perMAC)
	return &EncodingReport{
		Detected:           !ok,
		MeasuredVerify:     elapsed,
		MeasuredWeights:    len(codes),
		ExtrapolatedVerify: exVerify,
		StorageRatio:       storage,
	}, nil
}

// RADARReport is the §VI-B RADAR result: the standard attack is
// detected, the MSB-avoiding adaptive attack is not.
type RADARReport struct {
	StandardDetected bool
	AdaptiveDetected bool
	AdaptiveASR      float64
	AdaptiveTA       float64
	ScanTime         time.Duration
}

// DefenseRADAR runs both attacker variants against an MSB-checksum
// RADAR.
func DefenseRADAR(s Scale, arch string) (*RADARReport, error) {
	if arch == "" {
		arch = "resnet20"
	}
	res, mcfg, err := victim(arch, s)
	if err != nil {
		return nil, err
	}

	run := func(forbidden byte) (*core.Result, *quant.Quantizer, error) {
		model, err := pretrain.CloneModel(mcfg, res.Model)
		if err != nil {
			return nil, nil, err
		}
		q := quant.NewQuantizer(model)
		cfg := attackConfig(s, defaultNFlip(q.NumPages()), true)
		cfg.ForbiddenBitMask = forbidden
		out, err := core.RunOffline(model, res.Test.Head(s.AttackImages), cfg)
		return out, q, err
	}

	standard, _, err := run(0)
	if err != nil {
		return nil, err
	}
	adaptive, qa, err := run(0x80)
	if err != nil {
		return nil, err
	}

	r := defense.NewRADAR(512, 0x80)
	r.Snapshot(standard.OrigCodes)
	stdBad, scan := r.Check(standard.BackdooredCodes)
	adBad, _ := r.Check(adaptive.BackdooredCodes)

	adModel := qa.Model()
	return &RADARReport{
		StandardDetected: len(stdBad) > 0,
		AdaptiveDetected: len(adBad) > 0,
		AdaptiveASR:      metrics.AttackSuccessRate(adModel, res.Test, adaptive.Trigger, s.TargetClass),
		AdaptiveTA:       metrics.TestAccuracy(adModel, res.Test),
		ScanTime:         scan,
	}, nil
}

// ReconstructionReport is the §VI-C weight-reconstruction result.
type ReconstructionReport struct {
	// Unaware attacker: offline metrics, then after reconstruction.
	UnawareASR      float64
	UnawareTA       float64
	AfterReconASR   float64
	AfterReconTA    float64
	AdaptiveASR     float64 // defense-aware attacker, after reconstruction
	AdaptiveTA      float64
	NFlipUnaware    int
	NFlipAdaptive   int
	ReconGroupWords int
}

// DefenseReconstruction runs the two scenarios of §VI-C: an attacker
// unaware of the weight-reconstruction recovery, and one optimizing its
// flips under the recovery transform.
func DefenseReconstruction(s Scale, arch string) (*ReconstructionReport, error) {
	if arch == "" {
		arch = "resnet32"
	}
	res, mcfg, err := victim(arch, s)
	if err != nil {
		return nil, err
	}
	rep := &ReconstructionReport{ReconGroupWords: 64}

	// Scenario 1: unaware attacker.
	m1, err := pretrain.CloneModel(mcfg, res.Model)
	if err != nil {
		return nil, err
	}
	rec1 := defense.NewReconstructor(m1, rep.ReconGroupWords)
	q1 := quant.NewQuantizer(m1)
	cfg := attackConfig(s, defaultNFlip(q1.NumPages()), true)
	out1, err := core.RunOffline(m1, res.Test.Head(s.AttackImages), cfg)
	if err != nil {
		return nil, err
	}
	rep.NFlipUnaware = out1.NFlip
	rep.UnawareTA = metrics.TestAccuracy(m1, res.Test)
	rep.UnawareASR = metrics.AttackSuccessRate(m1, res.Test, out1.Trigger, s.TargetClass)
	undo := rec1.Apply(m1)
	rep.AfterReconTA = metrics.TestAccuracy(m1, res.Test)
	rep.AfterReconASR = metrics.AttackSuccessRate(m1, res.Test, out1.Trigger, s.TargetClass)
	undo()

	// Scenario 2: defense-aware attacker optimizes under reconstruction.
	m2, err := pretrain.CloneModel(mcfg, res.Model)
	if err != nil {
		return nil, err
	}
	rec2 := defense.NewReconstructor(m2, rep.ReconGroupWords)
	q2 := quant.NewQuantizer(m2)
	cfg2 := attackConfig(s, defaultNFlip(q2.NumPages()), true)
	cfg2.WrapLoss = rec2.WrapLossWith(m2)
	out2, err := core.RunOffline(m2, res.Test.Head(s.AttackImages), cfg2)
	if err != nil {
		return nil, err
	}
	rep.NFlipAdaptive = out2.NFlip
	undo2 := rec2.Apply(m2)
	rep.AdaptiveTA = metrics.TestAccuracy(m2, res.Test)
	rep.AdaptiveASR = metrics.AttackSuccessRate(m2, res.Test, out2.Trigger, s.TargetClass)
	undo2()
	return rep, nil
}

// PlundervoltReport is the Appendix F negative result.
type PlundervoltReport struct {
	PoCLoopFaults      int
	QuantizedMACFaults int
	SafeOperandFaults  int
}

// Plundervolt reproduces the appendix: the PoC loop faults, quantized
// inference never does.
func Plundervolt(seed int64) *PlundervoltReport {
	cpu := voltsim.NewCPU(250, seed)
	rep := &PlundervoltReport{
		PoCLoopFaults:     cpu.LoopMultiply(3, 0x20_0000, 50_000),
		SafeOperandFaults: cpu.LoopMultiply(3, 0xFFFF, 50_000),
	}
	weights := make([]int8, 512)
	acts := make([]int8, 512)
	for i := range weights {
		weights[i] = int8(i%255 - 127)
		acts[i] = int8(127 - i%255)
	}
	rep.QuantizedMACFaults = voltsim.QuantizedMACSweep(cpu, weights, acts)
	return rep
}

// victimArch is like victim but keeps the architecture free-form (the
// binarized models live under their own registry names).
func victimArch(arch string, s Scale) (*pretrain.Result, models.Config, error) {
	return victim(arch, s)
}
