// Package experiments contains one driver per table and figure of the
// paper's evaluation (§V, §VI, Appendix). Drivers return structured
// rows/series; cmd/experiments and the top-level benchmarks format and
// regenerate them. EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"

	"rowhammer/internal/core"
	"rowhammer/internal/data"
	"rowhammer/internal/models"
	"rowhammer/internal/pretrain"
)

// Scale trades fidelity against CPU time. QuickScale runs in seconds to
// minutes on a laptop; PaperScale approaches the paper's settings
// (width 1.0 models, 128-image attack sets) and takes hours.
type Scale struct {
	// WidthMult scales model channel counts.
	WidthMult float64
	// TrainSamples/TestSamples/Epochs size the clean pretraining.
	TrainSamples int
	TestSamples  int
	Epochs       int
	// AttackImages is the attacker's test-subset size (128 in the
	// paper's CIFAR experiments).
	AttackImages int
	// AttackIterations, BitReduceEvery, Eta, Epsilon drive Algorithm 1.
	AttackIterations int
	BitReduceEvery   int
	Eta              float32
	Epsilon          float32
	// BaselineIterations and BaselineLR drive BadNet/FT/TBT.
	BaselineIterations int
	BaselineLR         float32
	// ModuleMB sizes the simulated DRAM for online phases.
	ModuleMB int
	// TargetClass is the backdoor target.
	TargetClass int
	// Seed fixes every random stream.
	Seed int64
}

// QuickScale returns the CI-friendly configuration used by the test
// suite and default benchmarks.
func QuickScale() Scale {
	return Scale{
		WidthMult:          0.25,
		TrainSamples:       600,
		TestSamples:        300,
		Epochs:             3,
		AttackImages:       32,
		AttackIterations:   100,
		BitReduceEvery:     50,
		Eta:                2,
		Epsilon:            0.02,
		BaselineIterations: 60,
		BaselineLR:         0.05,
		ModuleMB:           192,
		TargetClass:        2,
		Seed:               3,
	}
}

// PaperScale approaches the paper's experimental settings. Expect hours
// of CPU time per table.
func PaperScale() Scale {
	s := QuickScale()
	s.WidthMult = 1.0
	s.TrainSamples = 4000
	s.TestSamples = 1000
	s.Epochs = 6
	s.AttackImages = 128
	s.AttackIterations = 300
	s.BitReduceEvery = 100
	s.ModuleMB = 256
	return s
}

// victim trains (or fetches the cached) clean model for an architecture
// on the matching synthetic task.
func victim(arch string, s Scale) (*pretrain.Result, models.Config, error) {
	// The synthetic task is fixed (seed 21) so different Scale seeds
	// compare models, not datasets.
	const taskSeed = 21
	classes := 10
	dcfg := data.SynthCIFAR(0, taskSeed)
	if arch == "resnet34" || arch == "resnet50" {
		// The paper evaluates these on ImageNet; we use the 100-class
		// synthetic stand-in (see DESIGN.md).
		classes = 100
		dcfg = data.SynthImageNet(0, taskSeed)
	}
	mcfg := models.Config{Arch: arch, Classes: classes, WidthMult: s.WidthMult, Seed: s.Seed}
	res, err := pretrain.TrainCached(pretrain.Config{
		Model:        mcfg,
		Data:         dcfg,
		TrainSamples: s.TrainSamples,
		TestSamples:  s.TestSamples,
		Epochs:       s.Epochs,
		BatchSize:    32,
		Seed:         s.Seed,
	})
	if err != nil {
		return nil, mcfg, fmt.Errorf("experiments: train %s: %w", arch, err)
	}
	return res, mcfg, nil
}

// attackConfig maps a Scale onto the Algorithm 1 configuration.
func attackConfig(s Scale, nflip int, bitReduce bool) core.Config {
	cfg := core.DefaultConfig(nflip, s.TargetClass)
	cfg.Iterations = s.AttackIterations
	cfg.BitReduceEvery = s.BitReduceEvery
	cfg.Eta = s.Eta
	cfg.Epsilon = s.Epsilon
	cfg.BitReduce = bitReduce
	return cfg
}
