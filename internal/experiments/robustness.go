package experiments

import (
	"rowhammer/internal/core"
	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
	"rowhammer/internal/profile"
	"rowhammer/internal/tensor"
)

// RobustnessRow is one (flip-failure rate, round budget) cell of the
// retry-engine sweep: how much of the required corruption the online
// engine realizes on a module whose weak cells fire unreliably.
type RobustnessRow struct {
	// FlipFailProb is the injected per-pass flip failure probability.
	FlipFailProb float64
	// Rounds is the verify/re-hammer round budget (1 = single shot).
	Rounds int
	// RoundsUsed is how many rounds the engine actually needed.
	RoundsUsed int
	// NMatch / NRequired count required flips fired vs wanted.
	NMatch    int
	NRequired int
	// Retemplates counts adaptive re-templating passes taken.
	Retemplates int
	// RMatch is the resulting DRAM match rate (percent).
	RMatch float64
}

// robustnessWorkload builds a page-aligned synthetic weight file and
// single-flip page requirements (the CFT+BR shape: one flip per page,
// spread across distinct pages), deterministic in seed.
func robustnessWorkload(filePages int, seed int64) ([]byte, []profile.PageRequirement) {
	rng := tensor.NewRNG(seed)
	file := make([]byte, filePages*memsys.PageSize)
	for i := range file {
		file[i] = byte(rng.Intn(256))
	}
	var reqs []profile.PageRequirement
	for fp := 0; fp < filePages; fp += 8 {
		off := rng.Intn(memsys.PageSize)
		bit := rng.Intn(8)
		dir := dram.ZeroToOne
		if file[fp*memsys.PageSize+off]&(1<<bit) != 0 {
			dir = dram.OneToZero
		}
		reqs = append(reqs, profile.PageRequirement{
			FilePage: fp,
			Flips:    []profile.CellFlip{{Offset: off, Bit: bit, Dir: dir}},
		})
	}
	return file, reqs
}

// Robustness sweeps the robust online engine across flip-failure rates
// and round budgets on the paper-scale templating buffer. Budgets > 1
// also enable budget-doubling escalation and two adaptive re-templating
// passes (the RobustOnlineConfig recipe); budget 1 is the plain
// single-shot engine, so each row pair reads as "what the retry
// machinery buys at this failure rate".
func Robustness(s Scale, failRates []float64, budgets []int) ([]RobustnessRow, error) {
	if failRates == nil {
		failRates = []float64{0, 0.3, 0.5, 0.7}
	}
	if budgets == nil {
		budgets = []int{1, 5}
	}
	const filePages = 256
	file, reqs := robustnessWorkload(filePages, s.Seed)

	var rows []RobustnessRow
	for _, fail := range failRates {
		for _, rounds := range budgets {
			mod, err := dram.NewModuleForSize(s.ModuleMB<<20, dram.PaperDDR3(), 77)
			if err != nil {
				return nil, err
			}
			sys := memsys.NewSystem(mod)
			if fail > 0 {
				sys.InjectFaults(dram.FaultModel{FlipFailProb: fail, Seed: 9})
			}
			cfg := core.DefaultOnlineConfig(filePages)
			cfg.MeasureSeed = s.Seed
			if rounds > 1 {
				cfg.Rounds = rounds
				cfg.Escalation = 2
				cfg.RetemplatePasses = 2
			}
			res, err := core.ExecuteOnline(sys, file, reqs, cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, RobustnessRow{
				FlipFailProb: fail,
				Rounds:       rounds,
				RoundsUsed:   res.Report.RoundsExecuted(),
				NMatch:       res.NMatch,
				NRequired:    res.NRequired,
				Retemplates:  len(res.Report.Retemplates),
				RMatch:       res.RMatch,
			})
		}
	}
	return rows, nil
}
