package experiments

import (
	"rowhammer/internal/core"
	"rowhammer/internal/defense"
	"rowhammer/internal/metrics"
	"rowhammer/internal/pretrain"
	"rowhammer/internal/quant"
)

// Figure7Report is the CFT+BR training-loss curve with the iterations
// at which Bit Reduction fired (where the paper's Figure 7 shows
// spikes).
type Figure7Report struct {
	Loss           []float32
	BitReduceIters []int
	// SpikeRatio is the mean ratio of the loss right after a Bit
	// Reduction to the loss right before it (>1 means visible spikes).
	SpikeRatio float64
}

// Figure7 runs CFT+BR and extracts the loss trajectory.
func Figure7(s Scale, arch string) (*Figure7Report, error) {
	if arch == "" {
		arch = "resnet20"
	}
	res, mcfg, err := victim(arch, s)
	if err != nil {
		return nil, err
	}
	model, err := pretrain.CloneModel(mcfg, res.Model)
	if err != nil {
		return nil, err
	}
	q := quant.NewQuantizer(model)
	cfg := attackConfig(s, defaultNFlip(q.NumPages()), true)
	out, err := core.RunOffline(model, res.Test.Head(s.AttackImages), cfg)
	if err != nil {
		return nil, err
	}
	rep := &Figure7Report{Loss: out.LossHistory}
	var ratios []float64
	for t := cfg.BitReduceEvery; t < len(out.LossHistory); t += cfg.BitReduceEvery {
		rep.BitReduceIters = append(rep.BitReduceIters, t)
		before := float64(out.LossHistory[t-1])
		after := float64(out.LossHistory[t])
		if before > 0 {
			ratios = append(ratios, after/before)
		}
	}
	for _, r := range ratios {
		rep.SpikeRatio += r
	}
	if len(ratios) > 0 {
		rep.SpikeRatio /= float64(len(ratios))
	}
	return rep, nil
}

// Figure8Report quantifies the saliency focus shift of Figure 8.
type Figure8Report struct {
	defense.SentiNetReport
	// OfflineASR confirms the backdoor is active in the compared model.
	OfflineASR float64
}

// Figure8 compares the clean and backdoored models' attention on
// triggered inputs.
func Figure8(s Scale, arch string, samples int) (*Figure8Report, error) {
	if arch == "" {
		arch = "resnet20"
	}
	res, mcfg, err := victim(arch, s)
	if err != nil {
		return nil, err
	}
	clean, err := pretrain.CloneModel(mcfg, res.Model)
	if err != nil {
		return nil, err
	}
	backdoored, err := pretrain.CloneModel(mcfg, res.Model)
	if err != nil {
		return nil, err
	}
	q := quant.NewQuantizer(backdoored)
	cfg := attackConfig(s, defaultNFlip(q.NumPages()), true)
	out, err := core.RunOffline(backdoored, res.Test.Head(s.AttackImages), cfg)
	if err != nil {
		return nil, err
	}
	// ASR is measured before tap installation mutates the graphs.
	offASR := metrics.AttackSuccessRate(backdoored, res.Test, out.Trigger, s.TargetClass)
	cam, err := defense.EvaluateGradCAM(clean, backdoored, res.Test, out.Trigger, s.TargetClass, samples)
	if err != nil {
		return nil, err
	}
	return &Figure8Report{SentiNetReport: cam, OfflineASR: offASR}, nil
}

// Figure13Report contrasts where CFT+BR and TBT place their bit flips
// in the weight file (Figure 13): CFT+BR spreads across pages, TBT
// clusters in the last layer's page.
type Figure13Report struct {
	TotalPages   int
	CFTBRPages   []int
	TBTPages     []int
	CFTBRSpread  float64 // distinct pages / flips (1.0 = perfectly spread)
	TBTSpread    float64
	CFTBRMaxHits int // most flips in any single page
	TBTMaxHits   int
}

// Figure13 runs both attacks on the same victim and maps their flip
// locations.
func Figure13(s Scale, arch string) (*Figure13Report, error) {
	if arch == "" {
		arch = "resnet20"
	}
	res, mcfg, err := victim(arch, s)
	if err != nil {
		return nil, err
	}

	cftbr, err := runMethod(MethodCFTBR, res, mcfg, s)
	if err != nil {
		return nil, err
	}
	tbt, err := runMethod(MethodTBT, res, mcfg, s)
	if err != nil {
		return nil, err
	}

	pagesOf := func(orig, codes []int8) (pages []int, spread float64, maxHits int) {
		hits := map[int]int{}
		flips := 0
		for _, d := range quant.DiffBitsOf(orig, codes) {
			hits[quant.PageOf(d.Weight)]++
			flips++
		}
		for p, c := range hits {
			pages = append(pages, p)
			if c > maxHits {
				maxHits = c
			}
		}
		if flips > 0 {
			spread = float64(len(hits)) / float64(flips)
		}
		return pages, spread, maxHits
	}

	rep := &Figure13Report{TotalPages: cftbr.quantizer.NumPages()}
	rep.CFTBRPages, rep.CFTBRSpread, rep.CFTBRMaxHits = pagesOf(cftbr.orig, cftbr.codes)
	rep.TBTPages, rep.TBTSpread, rep.TBTMaxHits = pagesOf(tbt.orig, tbt.codes)
	return rep, nil
}
