package pretrain

import (
	"testing"

	"rowhammer/internal/data"
	"rowhammer/internal/metrics"
	"rowhammer/internal/models"
)

func smallCfg() Config {
	return Config{
		Model:        models.Config{Arch: "resnet20", Classes: 10, WidthMult: 0.25, Seed: 1},
		Data:         data.SynthCIFAR(0, 7),
		TrainSamples: 600,
		TestSamples:  200,
		Epochs:       3,
		BatchSize:    32,
		Seed:         1,
	}
}

func TestTrainReachesHighAccuracy(t *testing.T) {
	if testing.Short() {
		// The TrainCached-based tests below still exercise one full
		// training run in short mode; this one would add a second.
		t.Skip("heavy: duplicate uncached training run; run without -short")
	}
	r, err := Train(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.Accuracy < 0.85 {
		t.Fatalf("clean accuracy %.3f, want ≥0.85 on the synthetic task", r.Accuracy)
	}
	if len(r.LossHistory) != 3 {
		t.Fatalf("loss history %v", r.LossHistory)
	}
	if r.LossHistory[len(r.LossHistory)-1] >= r.LossHistory[0] {
		t.Fatal("training loss did not decrease")
	}
}

func TestTrainCachedReturnsSameInstance(t *testing.T) {
	a, err := TrainCached(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainCached(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache must return the same result instance")
	}
}

func TestCloneModelPreservesBehavior(t *testing.T) {
	cfg := smallCfg()
	r, err := TrainCached(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clone, err := CloneModel(cfg.Model, r.Model)
	if err != nil {
		t.Fatal(err)
	}
	accOrig := metrics.TestAccuracy(r.Model, r.Test)
	accClone := metrics.TestAccuracy(clone, r.Test)
	if accOrig != accClone {
		t.Fatalf("clone accuracy %.4f != original %.4f", accClone, accOrig)
	}
	// Mutating the clone must not affect the original.
	clone.Params()[0].W.Data()[0] += 100
	if r.Model.Params()[0].W.Data()[0] == clone.Params()[0].W.Data()[0] {
		t.Fatal("clone shares weight storage")
	}
}

func TestTrainInvalidModel(t *testing.T) {
	cfg := smallCfg()
	cfg.Model.Arch = "nope"
	if _, err := Train(cfg); err == nil {
		t.Fatal("expected error")
	}
}

func TestMetricsASROnCleanModelIsLow(t *testing.T) {
	r, err := TrainCached(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	tr := data.NewSquareTrigger(3, 32, 32, 10)
	asr := metrics.AttackSuccessRate(r.Model, r.Test, tr, 2)
	if asr > 0.35 {
		t.Fatalf("clean model ASR %.3f suspiciously high", asr)
	}
	cm := metrics.ConfusionMatrix(r.Model, r.Test, nil)
	if len(cm) != 10 {
		t.Fatal("confusion matrix shape wrong")
	}
	total := 0
	for _, row := range cm {
		for _, v := range row {
			total += v
		}
	}
	if total != r.Test.Len() {
		t.Fatalf("confusion matrix covers %d samples, want %d", total, r.Test.Len())
	}
}
