// Package pretrain trains the clean victim models on the synthetic
// tasks. The paper downloads pre-trained CIFAR-10/ImageNet weights; this
// offline reproduction trains from scratch (seconds of CPU time on the
// synthetic tasks), and caches trained models per configuration so
// experiment drivers can share one clean model.
package pretrain

import (
	"fmt"
	"sync"

	"rowhammer/internal/data"
	"rowhammer/internal/metrics"
	"rowhammer/internal/models"
	"rowhammer/internal/nn"
	"rowhammer/internal/tensor"
)

// Config selects a training run. Identical configs produce identical
// models.
type Config struct {
	// Model selects the architecture.
	Model models.Config
	// Data selects the synthetic task.
	Data data.SynthConfig
	// TrainSamples and TestSamples size the splits.
	TrainSamples int
	TestSamples  int
	// Epochs, BatchSize, LR, Momentum, WeightDecay are the optimizer
	// settings.
	Epochs      int
	BatchSize   int
	LR          float32
	Momentum    float32
	WeightDecay float32
	// Seed drives sampling and shuffling.
	Seed int64
	// Shards fixes the data-parallel trainer's shard count (0 selects
	// nn.DefaultTrainShards, a single shard — the monolithic gradient).
	// The shard count, not the worker count, fixes the floating-point
	// summation geometry, so identical configs still produce identical
	// models on any machine.
	Shards int
}

// Defaults fills unset fields with workable values.
func (c Config) Defaults() Config {
	if c.TrainSamples == 0 {
		c.TrainSamples = 2000
	}
	if c.TestSamples == 0 {
		c.TestSamples = 500
	}
	if c.Epochs == 0 {
		c.Epochs = 3
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Data.H == 0 || c.Data.W == 0 || c.Data.Classes == 0 {
		c.Data = data.SynthCIFAR(0, c.Seed)
	}
	return c
}

// Result bundles a trained model with its data splits and accuracy.
type Result struct {
	Model    *nn.Model
	Train    *data.Dataset
	Test     *data.Dataset
	Accuracy float64
	// LossHistory records the epoch-mean training loss.
	LossHistory []float32
}

// Train builds the model and datasets and runs SGD to convergence on
// the synthetic task.
func Train(cfg Config) (*Result, error) {
	cfg = cfg.Defaults()
	m, err := models.Build(cfg.Model)
	if err != nil {
		return nil, fmt.Errorf("pretrain: %w", err)
	}
	dcfg := cfg.Data
	dcfg.Samples = cfg.TrainSamples
	train := data.Synthesize(dcfg, cfg.Seed+1000)
	dcfg.Samples = cfg.TestSamples
	test := data.Synthesize(dcfg, cfg.Seed+2000)

	opt := nn.NewSGD(m.Params(), cfg.LR, cfg.Momentum, cfg.WeightDecay)
	rng := tensor.NewRNG(cfg.Seed)
	// Victim training runs on the data-parallel engine. With Shards > 1
	// each batch is sharded across model replicas (ghost batch norm over
	// the shards) and the gradients tree-reduce into the master before
	// the step; the single-shard default reproduces the monolithic
	// gradient exactly.
	trainer := nn.NewTrainer(m, cfg.Shards)
	var history []float32
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Simple step decay keeps late epochs stable.
		if epoch == cfg.Epochs-1 && cfg.Epochs > 1 {
			opt.SetLR(cfg.LR / 10)
		}
		shuffled := train.Shuffled(rng)
		var epochLoss float64
		batches := shuffled.Batches(cfg.BatchSize)
		for _, b := range batches {
			m.ZeroGrad()
			loss, _ := trainer.ForwardBackward(b.Images, b.Labels, 1)
			opt.Step()
			epochLoss += float64(loss)
		}
		history = append(history, float32(epochLoss/float64(len(batches))))
	}
	return &Result{
		Model:       m,
		Train:       train,
		Test:        test,
		Accuracy:    metrics.TestAccuracy(m, test),
		LossHistory: history,
	}, nil
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*Result{}
)

// TrainCached returns a shared Result for the config, training at most
// once per unique configuration. Callers must not mutate the returned
// model; clone it first (see CloneModel).
func TrainCached(cfg Config) (*Result, error) {
	cfg = cfg.Defaults()
	key := fmt.Sprintf("%+v", cfg)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if r, ok := cache[key]; ok {
		return r, nil
	}
	r, err := Train(cfg)
	if err != nil {
		return nil, err
	}
	cache[key] = r
	return r, nil
}

// CloneModel builds a fresh instance of the same architecture and copies
// the trained weights and batch-norm running statistics into it.
func CloneModel(cfg models.Config, src *nn.Model) (*nn.Model, error) {
	dst, err := models.Build(cfg)
	if err != nil {
		return nil, err
	}
	if err := src.CloneWeightsTo(dst); err != nil {
		return nil, err
	}
	copyRunningStats(src.Root, dst.Root)
	return dst, nil
}

// copyRunningStats mirrors batch-norm running statistics between two
// structurally identical graphs.
func copyRunningStats(src, dst nn.Layer) {
	var srcBNs, dstBNs []*nn.BatchNorm2D
	nn.Walk(src, func(l nn.Layer) {
		if bn, ok := l.(*nn.BatchNorm2D); ok {
			srcBNs = append(srcBNs, bn)
		}
	})
	nn.Walk(dst, func(l nn.Layer) {
		if bn, ok := l.(*nn.BatchNorm2D); ok {
			dstBNs = append(dstBNs, bn)
		}
	})
	for i := range srcBNs {
		if i >= len(dstBNs) {
			break
		}
		copy(dstBNs[i].RunningMean, srcBNs[i].RunningMean)
		copy(dstBNs[i].RunningVar, srcBNs[i].RunningVar)
	}
}
