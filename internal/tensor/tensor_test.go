package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	if x.NDim() != 3 || x.Dim(1) != 3 {
		t.Fatalf("bad dims: %v", x.Shape())
	}
}

func TestNewRejectsBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero dimension")
		}
	}()
	New(2, 0)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4)
	x.Set(7.5, 2, 1)
	if got := x.At(2, 1); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	if got := x.Data()[2*4+1]; got != 7.5 {
		t.Fatalf("row-major layout broken: %v", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	x.At(2, 0)
}

func TestFromSliceValidatesLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	y := x.Clone()
	y.Data()[0] = 99
	if x.Data()[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Data()[5] = -1
	if x.Data()[5] != -1 {
		t.Fatal("Reshape must share storage")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 4)
	b := FromSlice([]float32{10, 20, 30, 40}, 4)
	dst := New(4)
	AddInto(dst, a, b)
	want := []float32{11, 22, 33, 44}
	for i, w := range want {
		if dst.Data()[i] != w {
			t.Fatalf("AddInto[%d] = %v, want %v", i, dst.Data()[i], w)
		}
	}
	SubInto(dst, b, a)
	if dst.Data()[3] != 36 {
		t.Fatalf("SubInto = %v", dst.Data())
	}
	MulInto(dst, a, a)
	if dst.Data()[2] != 9 {
		t.Fatalf("MulInto = %v", dst.Data())
	}
}

func TestScaleAddScaledClamp(t *testing.T) {
	a := FromSlice([]float32{1, -2, 3}, 3)
	a.Scale(2)
	if a.Data()[1] != -4 {
		t.Fatalf("Scale: %v", a.Data())
	}
	b := FromSlice([]float32{1, 1, 1}, 3)
	a.AddScaled(b, 0.5)
	if a.Data()[0] != 2.5 {
		t.Fatalf("AddScaled: %v", a.Data())
	}
	a.Clamp(-3, 3)
	if a.Data()[1] != -3 || a.Data()[2] != 3 {
		t.Fatalf("Clamp: %v", a.Data())
	}
}

func TestSign(t *testing.T) {
	a := FromSlice([]float32{-5, 0, 7}, 3)
	dst := New(3)
	Sign(dst, a)
	if dst.Data()[0] != -1 || dst.Data()[1] != 0 || dst.Data()[2] != 1 {
		t.Fatalf("Sign: %v", dst.Data())
	}
}

func TestSumDotNorm(t *testing.T) {
	a := FromSlice([]float32{3, 4}, 2)
	if a.Sum() != 7 {
		t.Fatalf("Sum = %v", a.Sum())
	}
	if got := Dot(a, a); got != 25 {
		t.Fatalf("Dot = %v", got)
	}
	if math.Abs(float64(a.Norm2())-5) > 1e-6 {
		t.Fatalf("Norm2 = %v", a.Norm2())
	}
	if a.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", a.MaxAbs())
	}
}

func TestArgMaxRow(t *testing.T) {
	a := FromSlice([]float32{1, 9, 2, 7, 0, 3}, 2, 3)
	if a.ArgMaxRow(0) != 1 || a.ArgMaxRow(1) != 0 {
		t.Fatal("ArgMaxRow wrong")
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data()[i], w)
		}
	}
}

func TestMatMulRejectsMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

// matMulNaive is the reference implementation used to cross-check the
// parallel kernels.
func matMulNaive(a, b *Tensor) *Tensor {
	m, k := a.Shape()[0], a.Shape()[1]
	n := b.Shape()[1]
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.Data()[i*k+p] * b.Data()[p*n+j]
			}
			c.Data()[i*n+j] = s
		}
	}
	return c
}

func transpose(a *Tensor) *Tensor {
	m, n := a.Shape()[0], a.Shape()[1]
	tr := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			tr.Data()[j*m+i] = a.Data()[i*n+j]
		}
	}
	return tr
}

func TestMatMulVariantsAgree(t *testing.T) {
	rng := NewRNG(7)
	for trial := 0; trial < 10; trial++ {
		m, k, n := 1+rng.Intn(20), 1+rng.Intn(20), 1+rng.Intn(20)
		a := New(m, k)
		b := New(k, n)
		rng.FillNormal(a, 0, 1)
		rng.FillNormal(b, 0, 1)
		want := matMulNaive(a, b)

		got := MatMul(a, b)
		assertClose(t, got, want, "MatMul")

		got2 := New(m, n)
		MatMulATBInto(got2, transpose(a), b)
		assertClose(t, got2, want, "MatMulATB")

		got3 := New(m, n)
		MatMulABTInto(got3, a, transpose(b))
		assertClose(t, got3, want, "MatMulABT")
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := NewRNG(3)
	a := New(130, 40)
	b := New(40, 30)
	rng.FillNormal(a, 0, 1)
	rng.FillNormal(b, 0, 1)
	prev := SetMaxWorkers(1)
	serial := MatMul(a, b)
	SetMaxWorkers(8)
	par := MatMul(a, b)
	SetMaxWorkers(prev)
	assertClose(t, par, serial, "parallel vs serial")
}

func assertClose(t *testing.T, got, want *Tensor, label string) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %v != %v", label, got.Shape(), want.Shape())
	}
	for i := range got.Data() {
		d := float64(got.Data()[i] - want.Data()[i])
		if math.Abs(d) > 1e-3 {
			t.Fatalf("%s: elem %d differs: %v vs %v", label, i, got.Data()[i], want.Data()[i])
		}
	}
}

// convNaive computes a direct convolution as the im2col cross-check.
func convNaive(img []float32, c, h, w int, weight []float32, m, kh, kw, stride, pad int) ([]float32, int, int) {
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	out := make([]float32, m*oh*ow)
	for oc := 0; oc < m; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s float32
				for ic := 0; ic < c; ic++ {
					for ky := 0; ky < kh; ky++ {
						iy := oy*stride + ky - pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*stride + kx - pad
							if ix < 0 || ix >= w {
								continue
							}
							s += img[ic*h*w+iy*w+ix] * weight[((oc*c+ic)*kh+ky)*kw+kx]
						}
					}
				}
				out[oc*oh*ow+oy*ow+ox] = s
			}
		}
	}
	return out, oh, ow
}

func TestIm2ColMatchesDirectConv(t *testing.T) {
	rng := NewRNG(11)
	cases := []struct{ c, h, w, m, kh, kw, stride, pad int }{
		{1, 5, 5, 2, 3, 3, 1, 1},
		{3, 8, 8, 4, 3, 3, 2, 1},
		{2, 7, 9, 3, 1, 1, 1, 0},
		{2, 6, 6, 2, 3, 3, 2, 0},
	}
	for _, cs := range cases {
		img := New(cs.c * cs.h * cs.w)
		rng.FillNormal(img, 0, 1)
		weight := New(cs.m, cs.c*cs.kh*cs.kw)
		rng.FillNormal(weight, 0, 1)

		col := make([]float32, ColBufLen(cs.c, cs.h, cs.w, cs.kh, cs.kw, cs.stride, cs.pad))
		oh, ow := Im2Col(img.Data(), cs.c, cs.h, cs.w, cs.kh, cs.kw, cs.stride, cs.pad, col)
		colT := FromSlice(col, cs.c*cs.kh*cs.kw, oh*ow)
		got := MatMul(weight, colT)

		wantData, woh, wow := convNaive(img.Data(), cs.c, cs.h, cs.w, weight.Data(), cs.m, cs.kh, cs.kw, cs.stride, cs.pad)
		if oh != woh || ow != wow {
			t.Fatalf("output dims %dx%d != %dx%d", oh, ow, woh, wow)
		}
		want := FromSlice(wantData, cs.m, oh*ow)
		assertClose(t, got, want, "im2col conv")
	}
}

func TestCol2ImIsIm2ColAdjoint(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> must hold for the gradient to be
	// correct.
	rng := NewRNG(5)
	c, h, w, kh, kw, stride, pad := 2, 6, 6, 3, 3, 1, 1
	x := New(c * h * w)
	rng.FillNormal(x, 0, 1)
	colLen := ColBufLen(c, h, w, kh, kw, stride, pad)
	y := New(colLen)
	rng.FillNormal(y, 0, 1)

	colX := make([]float32, colLen)
	Im2Col(x.Data(), c, h, w, kh, kw, stride, pad, colX)
	lhs := Dot(FromSlice(colX, colLen), y)

	back := make([]float32, c*h*w)
	Col2Im(y.Data(), c, h, w, kh, kw, stride, pad, back)
	rhs := Dot(x, FromSlice(back, c*h*w))

	if math.Abs(float64(lhs-rhs)) > 1e-2 {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	ta, tb := New(16), New(16)
	a.FillNormal(ta, 0, 1)
	b.FillNormal(tb, 0, 1)
	for i := range ta.Data() {
		if ta.Data()[i] != tb.Data()[i] {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestKaimingNormalScale(t *testing.T) {
	rng := NewRNG(1)
	w := New(10000)
	rng.KaimingNormal(w, 50)
	var s float64
	for _, v := range w.Data() {
		s += float64(v) * float64(v)
	}
	variance := s / float64(w.Len())
	want := 2.0 / 50.0
	if math.Abs(variance-want)/want > 0.15 {
		t.Fatalf("Kaiming variance %v, want ~%v", variance, want)
	}
}

// Property: matmul distributes over addition, (A+B)C = AC + BC.
func TestMatMulDistributesOverAddition(t *testing.T) {
	rng := NewRNG(9)
	f := func(seed int64) bool {
		r := NewRNG(seed)
		m, k, n := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a, b, c := New(m, k), New(m, k), New(k, n)
		rng.FillNormal(a, 0, 1)
		rng.FillNormal(b, 0, 1)
		rng.FillNormal(c, 0, 1)
		sum := New(m, k)
		AddInto(sum, a, b)
		lhs := MatMul(sum, c)
		rhs := MatMul(a, c)
		rhs.AddScaled(MatMul(b, c), 1)
		for i := range lhs.Data() {
			if math.Abs(float64(lhs.Data()[i]-rhs.Data()[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
