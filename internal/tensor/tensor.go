// Package tensor provides the dense float32 tensor type and the numeric
// kernels (parallel matrix multiply, im2col, elementwise operations,
// reductions) that the neural-network engine is built on.
//
// Tensors are row-major and dense. The package is deliberately small: it
// implements exactly the operations the backdoor-injection training loop
// (forward pass, weight gradients, input gradients) requires, with
// goroutine-parallel inner kernels so CPU-only training stays practical.
package tensor

import (
	"fmt"
	"strings"
)

// Tensor is a dense, row-major float32 array with an explicit shape.
// The zero value is not usable; construct tensors with New or FromSlice.
type Tensor struct {
	data  []float32
	shape []int
}

// New allocates a zero-filled tensor with the given shape. Every
// dimension must be positive.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{data: make([]float32, n), shape: append([]int(nil), shape...)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must equal the shape's element count.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elems)", len(data), shape, n))
	}
	return &Tensor{data: data, shape: append([]int(nil), shape...)}
}

// Data returns the underlying storage. Mutating it mutates the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// NDim returns the number of dimensions.
func (t *Tensor) NDim() int { return len(t.shape) }

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 {
	return t.data[t.offset(idx)]
}

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d != tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view of the same storage with a new shape. The new
// shape must have the same element count.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.shape, shape))
	}
	return &Tensor{data: t.data, shape: append([]int(nil), shape...)}
}

// Rebind repoints the tensor at data, keeping its shape. The length
// must match the shape's element count. It exists so hot loops can
// walk a tensor header across consecutive storage slices (one image of
// a batch at a time) without allocating a header per step.
func (t *Tensor) Rebind(data []float32) {
	if len(data) != len(t.data) {
		panic(fmt.Sprintf("tensor: Rebind length %d does not match shape %v", len(data), t.shape))
	}
	t.data = data
}

// Ensure returns a tensor of the given shape, reusing t's storage and
// header when possible: same total size just restamps the shape, a
// smaller request reslices, and only growth allocates. The contents are
// unspecified after a size change. It is the grow-only buffer idiom the
// layer forward/backward caches use — pass the previous buffer (nil on
// first use) and store the result.
func Ensure(t *Tensor, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	if t == nil || cap(t.data) < n {
		return New(shape...)
	}
	t.data = t.data[:n]
	if len(t.shape) == len(shape) {
		copy(t.shape, shape)
	} else {
		t.shape = append(t.shape[:0], shape...)
	}
	return t
}

// Zero sets every element to zero.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// String renders a compact description for debugging.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.data) <= 8 {
		fmt.Fprintf(&b, "%v", t.data)
	}
	return b.String()
}
