package tensor

// Blocked int8 GEMM engine: C (int32) = A (int8) · B (int8).
//
// This is the deployment-form twin of the float engine in gemm.go: the
// quantized forward pass multiplies weight codes against quantized
// activation columns and accumulates exactly in int32, so the result is
// bit-identical across the assembly and portable kernels — only the
// single fp32 rescale at the layer boundary is inexact.
//
// Both operands are widened to int16 during packing so the AVX2 kernel
// can use VPMADDWD (signed int16 pair dot-product into int32 lanes)
// without the int16 saturation hazard of the u8×s8 VPMADDUBSW path.
// The k dimension is therefore processed in PAIRS: an A panel stores,
// per k-pair, MR row-pairs of int16; a B panel stores NR column-pairs.
// Odd k is zero-padded inside the final pair.
//
// Accumulation bound: |a|,|b| ≤ 127, so each int32 accumulator grows by
// at most 2·127² per pair step; k may reach ~66,000 before overflow —
// far beyond any layer in this repo (the caller is responsible past
// that).
//
// The packed-A layout is exposed (PackAI8/PackAI8Len) so the quantized
// model can pack each weight tensor once and reuse the panels across
// thousands of evaluate-after-flip forwards, repacking only the tensor
// a SetCode/FlipBit touched.

const (
	gemmI8KC = 512  // k-slab depth, even so k-pairs never straddle slabs
	gemmI8NC = 1024 // column-block width of one packed B slab

	gemmI8MaxMR = 4
	gemmI8MaxNR = 16

	// gemmI8MinFlops gates the blocked path, like gemmMinFlops.
	gemmI8MinFlops = 1 << 13
)

// Micro-kernel configuration: portable defaults, upgraded by init() in
// gemm_i8_amd64.go when the CPU has AVX2.
var (
	gemmI8MR     = 2
	gemmI8NR     = 4
	gemmI8Kernel = gemmI8Kernel2x4
)

// PackAI8Len returns the int16 buffer length PackAI8 requires for an
// m×k matrix.
func PackAI8Len(m, k int) int {
	mr := gemmI8MR
	kp := (k + 1) / 2
	panels := (m + mr - 1) / mr
	return panels * kp * mr * 2
}

// PackAI8 packs A (m×k int8, row-major) into MR-row panels of int16
// k-pairs for GemmI8PackedA: panel ir covers rows ir·MR…, and within a
// panel k-pair p2 stores MR consecutive (even, odd) element pairs.
// Rows past m and the odd-k tail are zero-filled so the micro-kernel
// needs no bounds handling.
func PackAI8(dst []int16, a []int8, m, k int) {
	mr := gemmI8MR
	kp := (k + 1) / 2
	idx := 0
	for ir := 0; ir < m; ir += mr {
		rows := min(mr, m-ir)
		for p2 := 0; p2 < kp; p2++ {
			p := 2 * p2
			for r := 0; r < mr; r++ {
				if r < rows {
					row := a[(ir+r)*k : (ir+r+1)*k]
					dst[idx] = int16(row[p])
					if p+1 < k {
						dst[idx+1] = int16(row[p+1])
					} else {
						dst[idx+1] = 0
					}
				} else {
					dst[idx] = 0
					dst[idx+1] = 0
				}
				idx += 2
			}
		}
	}
}

// packBPanelFast, when non-nil (amd64 with AVX2), packs full 16-column
// panels of whole k-pairs in assembly; everything else goes through the
// portable loop below.
var packBPanelFast func(dst *int16, b *int8, ldb, npairs int)

// packBI8Panels packs the kc×nc block of B (row stride ldb) starting at
// row p0, column j0 into NR-column panels of int16 k-pairs: panel jr
// holds columns j0+NR·jr…, and k-pair p2 stores NR consecutive (even,
// odd) pairs. Columns past nc and the odd tail of the final slab are
// zero-filled.
func packBI8Panels(dst []int16, b []int8, ldb, p0, kc, j0, nc int) {
	nr := gemmI8NR
	kp := (kc + 1) / 2
	idx := 0
	for jr := 0; jr < nc; jr += nr {
		cols := min(nr, nc-jr)
		if cols == 16 && nr == 16 && packBPanelFast != nil {
			if full := kc / 2; full > 0 {
				packBPanelFast(&dst[idx], &b[p0*ldb+j0+jr], ldb, full)
				idx += full * 2 * nr
			}
			if kc&1 == 1 {
				// Odd tail: even row present, odd slot zero-filled.
				row0 := b[(p0+kc-1)*ldb+j0+jr:][:nr]
				d := dst[idx : idx+2*nr]
				for cI, v := range row0 {
					d[2*cI] = int16(v)
					d[2*cI+1] = 0
				}
				idx += 2 * nr
			}
			continue
		}
		for p2 := 0; p2 < kp; p2++ {
			p := p0 + 2*p2
			row0 := b[p*ldb+j0+jr:]
			var row1 []int8
			if 2*p2+1 < kc {
				row1 = b[(p+1)*ldb+j0+jr:]
			}
			if cols == nr && row1 != nil {
				// Full panel: branch-free interleave with hoisted bounds.
				r0 := row0[:nr]
				r1 := row1[:nr]
				d := dst[idx : idx+2*nr]
				for cI, v := range r0 {
					d[2*cI] = int16(v)
					d[2*cI+1] = int16(r1[cI])
				}
				idx += 2 * nr
				continue
			}
			for cI := 0; cI < nr; cI++ {
				if cI < cols {
					dst[idx] = int16(row0[cI])
					if row1 != nil {
						dst[idx+1] = int16(row1[cI])
					} else {
						dst[idx+1] = 0
					}
				} else {
					dst[idx] = 0
					dst[idx+1] = 0
				}
				idx += 2
			}
		}
	}
}

// GemmI8 computes c (int32, m×n row-major, fully overwritten) = A·B for
// A (m×k int8) and B (k×n int8), both row-major. Small problems take
// the naive path; larger ones pack A into pooled panels and run the
// blocked engine.
func GemmI8(c []int32, a []int8, m, k int, b []int8, n int) {
	if m*n*k < gemmI8MinFlops {
		gemmI8Naive(c, a, m, k, b, n)
		return
	}
	pa := GetI16(PackAI8Len(m, k))
	PackAI8(pa, a, m, k)
	GemmI8PackedA(c, pa, m, k, b, n)
	PutI16(pa)
}

// GemmI8PackedA computes c (int32, m×n row-major, fully overwritten) =
// A·B where A was packed by PackAI8 (under the current kernel
// configuration) and B is k×n int8 row-major. Column blocks are
// distributed over the persistent worker pool; each worker owns a
// disjoint slab of C, so no synchronization is needed beyond the
// chunk barrier.
func GemmI8PackedA(c []int32, pa []int16, m, k int, b []int8, n int) {
	c = c[:m*n]
	for i := range c {
		c[i] = 0
	}
	nr := gemmI8NR
	kp := (k + 1) / 2
	nBlocks := (n + gemmI8NC - 1) / gemmI8NC
	kcMax := min(gemmI8KC, k)
	ncMax := min(gemmI8NC, n)
	pbLen := ((ncMax + nr - 1) / nr) * nr * ((kcMax + 1) / 2) * 2
	ParallelChunks(nBlocks, maxWorkers, func(blo, bhi int) {
		pb := GetI16(pbLen)
		tile := GetI32(gemmI8MaxMR * gemmI8MaxNR)
		for blk := blo; blk < bhi; blk++ {
			jc := blk * gemmI8NC
			nc := min(gemmI8NC, n-jc)
			for pc := 0; pc < k; pc += gemmI8KC {
				kc := min(gemmI8KC, k-pc)
				packBI8Panels(pb, b, n, pc, kc, jc, nc)
				gemmI8Block(c, n, m, jc, nc, pc, kc, kp, pa, pb, tile)
			}
		}
		PutI32(tile)
		PutI16(pb)
	})
}

// gemmI8Block multiplies every packed A panel against one packed B slab
// (k-pairs [pc/2, pc/2+kc2), columns [jc, jc+nc)), accumulating into C.
// kp is the total k-pair count of the packed A (the panel stride).
// Remainder tiles run through the caller's scratch tile, like the
// float engine.
func gemmI8Block(c []int32, ldc, m, jc, nc, pc, kc, kp int, pa, pb []int16, tile []int32) {
	mr, nr := gemmI8MR, gemmI8NR
	kern := gemmI8Kernel
	kc2 := (kc + 1) / 2
	for jr := 0; jr < nc; jr += nr {
		bp := pb[(jr/nr)*nr*2*kc2:]
		cols := min(nr, nc-jr)
		for ir := 0; ir < m; ir += mr {
			ap := pa[((ir/mr)*kp+pc/2)*mr*2:]
			rows := min(mr, m-ir)
			cOff := ir*ldc + jc + jr
			if rows == mr && cols == nr {
				kern(kc2, ap, bp, c[cOff:], ldc)
			} else {
				t := tile[:mr*nr]
				for i := range t {
					t[i] = 0
				}
				kern(kc2, ap, bp, t, nr)
				for r := 0; r < rows; r++ {
					cr := c[cOff+r*ldc:]
					tr := t[r*nr:]
					for cI := 0; cI < cols; cI++ {
						cr[cI] += tr[cI]
					}
				}
			}
		}
	}
}

// gemmI8Kernel2x4 accumulates a full 2×4 int32 tile over int16-pair
// panels: per k-pair, the A panel supplies 2 row-pairs and the B panel
// 4 column-pairs. The products are widened to int32 before the
// multiply, so the accumulation is exact.
func gemmI8Kernel2x4(kc2 int, ap, bp []int16, c []int32, ldc int) {
	var c00, c01, c02, c03 int32
	var c10, c11, c12, c13 int32
	ap = ap[: 4*kc2 : 4*kc2]
	bp = bp[: 8*kc2 : 8*kc2]
	ai := 0
	for p := 0; p <= len(bp)-8; p += 8 {
		a00, a01 := int32(ap[ai]), int32(ap[ai+1])
		a10, a11 := int32(ap[ai+2]), int32(ap[ai+3])
		b00, b01 := int32(bp[p]), int32(bp[p+1])
		b10, b11 := int32(bp[p+2]), int32(bp[p+3])
		b20, b21 := int32(bp[p+4]), int32(bp[p+5])
		b30, b31 := int32(bp[p+6]), int32(bp[p+7])
		c00 += a00*b00 + a01*b01
		c01 += a00*b10 + a01*b11
		c02 += a00*b20 + a01*b21
		c03 += a00*b30 + a01*b31
		c10 += a10*b00 + a11*b01
		c11 += a10*b10 + a11*b11
		c12 += a10*b20 + a11*b21
		c13 += a10*b30 + a11*b31
		ai += 4
	}
	c0 := c[0:4]
	c0[0] += c00
	c0[1] += c01
	c0[2] += c02
	c0[3] += c03
	c1 := c[ldc : ldc+4]
	c1[0] += c10
	c1[1] += c11
	c1[2] += c12
	c1[3] += c13
}

// gemmI8Naive is the reference triple loop (also the small-shape path).
func gemmI8Naive(c []int32, a []int8, m, k int, b []int8, n int) {
	for i := 0; i < m; i++ {
		ci := c[i*n : (i+1)*n]
		for j := range ci {
			ci[j] = 0
		}
		ai := a[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := int32(ai[p])
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j := range ci {
				ci[j] += av * int32(bp[j])
			}
		}
	}
}
