package tensor

import "fmt"

// MatMul computes C = A·B for A (m×k) and B (k×n), returning a new m×n
// tensor.
func MatMul(a, b *Tensor) *Tensor {
	m, k := mat2(a)
	k2, n := mat2(b)
	if k != k2 {
		panic(fmt.Sprintf("tensor: matmul inner dims %d != %d", k, k2))
	}
	c := New(m, n)
	MatMulInto(c, a, b)
	return c
}

// MatMulInto computes dst = A·B, where dst is a preallocated m×n tensor.
// Large products run on the blocked GEMM engine (gemm.go); small ones
// fall back to the naive kernel, whose lack of packing overhead wins at
// tiny sizes.
func MatMulInto(dst, a, b *Tensor) {
	m, k := mat2(a)
	k2, n := mat2(b)
	dm, dn := mat2(dst)
	if k != k2 || dm != m || dn != n {
		panic("tensor: matmul shape mismatch")
	}
	if m*n*k < gemmMinFlops {
		matMulNaiveInto(dst, a, b)
		return
	}
	gemm(m, n, k, a.data, k, 1, b.data, n, 1, dst.data)
}

// MatMulATBInto computes dst = Aᵀ·B for A (k×m) and B (k×n); dst is m×n.
// Used for weight-gradient accumulation.
func MatMulATBInto(dst, a, b *Tensor) {
	k, m := mat2(a)
	k2, n := mat2(b)
	dm, dn := mat2(dst)
	if k != k2 || dm != m || dn != n {
		panic("tensor: matmulATB shape mismatch")
	}
	if m*n*k < gemmMinFlops {
		matMulNaiveATBInto(dst, a, b)
		return
	}
	gemm(m, n, k, a.data, 1, m, b.data, n, 1, dst.data)
}

// MatMulABTInto computes dst = A·Bᵀ for A (m×k) and B (n×k); dst is m×n.
// Used for input-gradient propagation.
func MatMulABTInto(dst, a, b *Tensor) {
	m, k := mat2(a)
	n, k2 := mat2(b)
	dm, dn := mat2(dst)
	if k != k2 || dm != m || dn != n {
		panic("tensor: matmulABT shape mismatch")
	}
	if m*n*k < gemmMinFlops {
		matMulNaiveABTInto(dst, a, b)
		return
	}
	gemm(m, n, k, a.data, k, 1, b.data, 1, k, dst.data)
}

// The naive kernels below are the pre-blocking reference
// implementations. They remain the dispatch target for small shapes,
// the golden reference for the GEMM correctness tests (gemm_test.go),
// and the baseline for the before/after benchmarks
// (gemm_bench_test.go).

// matMulNaiveInto is the row-at-a-time axpy kernel: dst = A·B.
func matMulNaiveInto(dst, a, b *Tensor) {
	m, k := mat2(a)
	_, n := mat2(b)
	ad, bd, cd := a.data, b.data, dst.data
	parallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := cd[i*n : (i+1)*n]
			for x := range ci {
				ci[x] = 0
			}
			ai := ad[i*k : (i+1)*k]
			for p := 0; p < k; p++ {
				av := ai[p]
				if av == 0 {
					continue
				}
				bp := bd[p*n : (p+1)*n]
				for j := range ci {
					ci[j] += av * bp[j]
				}
			}
		}
	})
}

// matMulNaiveATBInto is the reference dst = Aᵀ·B kernel.
func matMulNaiveATBInto(dst, a, b *Tensor) {
	k, m := mat2(a)
	_, n := mat2(b)
	ad, bd, cd := a.data, b.data, dst.data
	parallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := cd[i*n : (i+1)*n]
			for x := range ci {
				ci[x] = 0
			}
			for p := 0; p < k; p++ {
				av := ad[p*m+i]
				if av == 0 {
					continue
				}
				bp := bd[p*n : (p+1)*n]
				for j := range ci {
					ci[j] += av * bp[j]
				}
			}
		}
	})
}

// matMulNaiveABTInto is the reference dst = A·Bᵀ kernel.
func matMulNaiveABTInto(dst, a, b *Tensor) {
	m, k := mat2(a)
	n, _ := mat2(b)
	ad, bd, cd := a.data, b.data, dst.data
	parallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := ad[i*k : (i+1)*k]
			ci := cd[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := bd[j*k : (j+1)*k]
				var s float32
				for p := range ai {
					s += ai[p] * bj[p]
				}
				ci[j] = s
			}
		}
	})
}

func mat2(t *Tensor) (rows, cols int) {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: expected 2-D tensor, got shape %v", t.shape))
	}
	return t.shape[0], t.shape[1]
}
