// AVX2/FMA dot-product kernel for the no-pack small-m GEMM path
// (gemm.go / gemm_amd64.go). Computes four dot products of one A row
// against four B rows in a single pass, two FMA chains per output so
// the loop is load-port bound rather than latency bound.

#include "textflag.h"

// func dotKernel1x4Asm(k16 int, a, b0, b1, b2, b3, dst *float32)
//
//	dst[j] = Σ_{p<k16} a[p]·bj[p]   j < 4, k16 a multiple of 16
TEXT ·dotKernel1x4Asm(SB), NOSPLIT, $0-56
	MOVQ k16+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ b0+16(FP), R8
	MOVQ b1+24(FP), R9
	MOVQ b2+32(FP), R10
	MOVQ b3+40(FP), R11
	MOVQ dst+48(FP), DI

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7

	SHRQ $4, CX             // iterations of 16 floats
	JZ   reduce

loop:
	VMOVUPS (SI), Y8
	VMOVUPS 32(SI), Y9

	VMOVUPS     (R8), Y10
	VFMADD231PS Y8, Y10, Y0
	VMOVUPS     32(R8), Y11
	VFMADD231PS Y9, Y11, Y4

	VMOVUPS     (R9), Y12
	VFMADD231PS Y8, Y12, Y1
	VMOVUPS     32(R9), Y13
	VFMADD231PS Y9, Y13, Y5

	VMOVUPS     (R10), Y10
	VFMADD231PS Y8, Y10, Y2
	VMOVUPS     32(R10), Y11
	VFMADD231PS Y9, Y11, Y6

	VMOVUPS     (R11), Y12
	VFMADD231PS Y8, Y12, Y3
	VMOVUPS     32(R11), Y13
	VFMADD231PS Y9, Y13, Y7

	ADDQ $64, SI
	ADDQ $64, R8
	ADDQ $64, R9
	ADDQ $64, R10
	ADDQ $64, R11
	DECQ CX
	JNZ  loop

reduce:
	VADDPS Y4, Y0, Y0
	VADDPS Y5, Y1, Y1
	VADDPS Y6, Y2, Y2
	VADDPS Y7, Y3, Y3

	VEXTRACTF128 $1, Y0, X8
	VADDPS       X8, X0, X0
	VHADDPS      X0, X0, X0
	VHADDPS      X0, X0, X0
	VMOVSS       X0, (DI)

	VEXTRACTF128 $1, Y1, X8
	VADDPS       X8, X1, X1
	VHADDPS      X1, X1, X1
	VHADDPS      X1, X1, X1
	VMOVSS       X1, 4(DI)

	VEXTRACTF128 $1, Y2, X8
	VADDPS       X8, X2, X2
	VHADDPS      X2, X2, X2
	VHADDPS      X2, X2, X2
	VMOVSS       X2, 8(DI)

	VEXTRACTF128 $1, Y3, X8
	VADDPS       X8, X3, X3
	VHADDPS      X3, X3, X3
	VHADDPS      X3, X3, X3
	VMOVSS       X3, 12(DI)

	VZEROUPPER
	RET

// func saxpyKernelAsm(n32 int, alpha float32, x, y *float32)
//
//	y[j] += alpha·x[j]   j < n32, n32 a multiple of 32
TEXT ·saxpyKernelAsm(SB), NOSPLIT, $0-32
	MOVQ         n32+0(FP), CX
	VBROADCASTSS alpha+8(FP), Y0
	MOVQ         x+16(FP), SI
	MOVQ         y+24(FP), DI

	SHRQ $5, CX // iterations of 32 floats
	JZ   sdone

sloop:
	VMOVUPS     (SI), Y1
	VMOVUPS     32(SI), Y2
	VMOVUPS     64(SI), Y3
	VMOVUPS     96(SI), Y4
	VFMADD213PS (DI), Y0, Y1
	VFMADD213PS 32(DI), Y0, Y2
	VFMADD213PS 64(DI), Y0, Y3
	VFMADD213PS 96(DI), Y0, Y4
	VMOVUPS     Y1, (DI)
	VMOVUPS     Y2, 32(DI)
	VMOVUPS     Y3, 64(DI)
	VMOVUPS     Y4, 96(DI)

	ADDQ $128, SI
	ADDQ $128, DI
	DECQ CX
	JNZ  sloop

sdone:
	VZEROUPPER
	RET
