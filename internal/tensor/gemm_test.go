package tensor

import (
	"fmt"
	"math"
	"testing"
)

// The blocked GEMM must match the retained naive kernels on every
// shape, in particular at the tiling remainder edges: dimensions of
// 1, a prime, tile−1, tile, tile+1 and a couple of tiles plus change,
// for each of the micro-tile (MR/NR), row-block (MC), k-slab (KC) and
// column-slab (NC) boundaries.

// gemmEdgeDims lists the dimension sizes exercised per axis.
func gemmEdgeDims() []int {
	dims := []int{1, 3, gemmMR - 1, gemmMR, gemmMR + 1, 2*gemmMR + 5}
	for _, tile := range []int{gemmMC, gemmKC} {
		dims = append(dims, tile-1, tile, tile+1)
	}
	return dims
}

func relTol(got, want, tol float32) bool {
	d := math.Abs(float64(got - want))
	scale := math.Max(1, math.Abs(float64(want)))
	return d <= float64(tol)*scale
}

func assertGemmClose(t *testing.T, label string, got, want *Tensor) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %v != %v", label, got.Shape(), want.Shape())
	}
	for i := range got.Data() {
		if !relTol(got.Data()[i], want.Data()[i], 1e-4) {
			t.Fatalf("%s: elem %d: blocked %v vs naive %v", label, i, got.Data()[i], want.Data()[i])
		}
	}
}

// checkAllOps runs the three blocked entry points against their naive
// references for one (m, k, n). Tensors are filled with values whose
// exact magnitude varies per element so index bugs can't cancel out.
func checkAllOps(t *testing.T, rng *RNG, m, k, n int) {
	t.Helper()
	label := fmt.Sprintf("m=%d k=%d n=%d", m, k, n)

	a := New(m, k)
	b := New(k, n)
	rng.FillNormal(a, 0, 1)
	rng.FillNormal(b, 0, 1)

	want := New(m, n)
	matMulNaiveInto(want, a, b)
	got := New(m, n)
	gemm(m, n, k, a.data, k, 1, b.data, n, 1, got.data)
	assertGemmClose(t, "AB "+label, got, want)

	// Aᵀ·B with A stored k×m.
	at := New(k, m)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			at.data[p*m+i] = a.data[i*k+p]
		}
	}
	matMulNaiveATBInto(want, at, b)
	gemm(m, n, k, at.data, 1, m, b.data, n, 1, got.data)
	assertGemmClose(t, "ATB "+label, got, want)

	// A·Bᵀ with B stored n×k.
	bt := New(n, k)
	for p := 0; p < k; p++ {
		for j := 0; j < n; j++ {
			bt.data[j*k+p] = b.data[p*n+j]
		}
	}
	matMulNaiveABTInto(want, a, bt)
	gemm(m, n, k, a.data, k, 1, bt.data, 1, k, got.data)
	assertGemmClose(t, "ABT "+label, got, want)
}

func TestGemmMatchesNaiveAtTileEdges(t *testing.T) {
	rng := NewRNG(42)
	dims := gemmEdgeDims()
	for _, m := range dims {
		for _, k := range dims {
			for _, n := range dims {
				// The largest triples are covered by the fuzz and NC
				// tests; skip the very biggest here to keep -short fast.
				if m*k*n > gemmKC*gemmKC*8 {
					continue
				}
				checkAllOps(t, rng, m, k, n)
			}
		}
	}
}

// TestGemmMatchesNaiveAcrossNC crosses the column-slab boundary, which
// the edge-dim sweep above (capped for runtime) does not reach.
func TestGemmMatchesNaiveAcrossNC(t *testing.T) {
	rng := NewRNG(43)
	for _, n := range []int{gemmNC - 1, gemmNC, gemmNC + 1, gemmNC + gemmNR + 3} {
		checkAllOps(t, rng, 9, 33, n)
	}
	// And a k deep enough for two KC slabs against a multi-panel n.
	checkAllOps(t, rng, gemmMR+2, 2*gemmKC+5, 3*gemmNR+1)
}

func TestGemmMatchesNaiveFuzz(t *testing.T) {
	rng := NewRNG(1234)
	trials := 40
	if testing.Short() {
		trials = 12
	}
	for i := 0; i < trials; i++ {
		m := 1 + rng.Intn(150)
		k := 1 + rng.Intn(300)
		n := 1 + rng.Intn(150)
		checkAllOps(t, rng, m, k, n)
	}
}

// TestGemmThroughPublicAPI checks that the dispatching entry points
// (including the small-shape naive fallback) agree with the naive
// reference on both sides of the gemmMinFlops threshold.
func TestGemmThroughPublicAPI(t *testing.T) {
	rng := NewRNG(7)
	for _, dims := range [][3]int{{4, 4, 4}, {8, 16, 8}, {32, 64, 48}, {70, 130, 90}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := New(m, k)
		b := New(k, n)
		rng.FillNormal(a, 0, 1)
		rng.FillNormal(b, 0, 1)
		want := New(m, n)
		matMulNaiveInto(want, a, b)
		got := New(m, n)
		MatMulInto(got, a, b)
		assertGemmClose(t, fmt.Sprintf("public m=%d k=%d n=%d", m, k, n), got, want)
	}
}

// TestGemmParallelMatchesSerial drives the blocked engine through the
// worker pool and compares against the single-worker result.
func TestGemmParallelMatchesSerial(t *testing.T) {
	rng := NewRNG(99)
	m, k, n := 3*gemmMC+7, gemmKC+9, 2*gemmNR*8+3
	a := New(m, k)
	b := New(k, n)
	rng.FillNormal(a, 0, 1)
	rng.FillNormal(b, 0, 1)

	prev := SetMaxWorkers(1)
	serial := MatMul(a, b)
	SetMaxWorkers(8)
	par := MatMul(a, b)
	SetMaxWorkers(prev)
	assertGemmClose(t, "pool parallel", par, serial)
}

// TestGemmPortableKernelMatchesNaive forces the pure-Go 2×4 fallback
// micro-kernel (regardless of what init() selected for this CPU) so the
// portable path keeps its coverage on machines where the assembly
// kernel is active.
func TestGemmPortableKernelMatchesNaive(t *testing.T) {
	mr, nr, mc, kern := gemmMR, gemmNR, gemmMC, gemmKernel
	defer func() { gemmMR, gemmNR, gemmMC, gemmKernel = mr, nr, mc, kern }()
	gemmMR, gemmNR, gemmMC, gemmKernel = 2, 4, 64, gemmKernel2x4

	rng := NewRNG(77)
	for _, dims := range [][3]int{{1, 1, 1}, {2, 8, 4}, {5, 17, 9}, {65, 257, 33}, {64, 256, 64}} {
		checkAllOps(t, rng, dims[0], dims[1], dims[2])
	}
}

func TestBufferPoolRecycles(t *testing.T) {
	s := GetF32(1000)
	if len(s) != 1000 || cap(s) != 1024 {
		t.Fatalf("GetF32(1000): len %d cap %d", len(s), cap(s))
	}
	for i := range s {
		s[i] = 7
	}
	PutF32(s)
	s2 := GetF32(900)
	if cap(s2) != 1024 {
		t.Fatalf("recycled cap %d, want 1024", cap(s2))
	}
	z := GetF32Zeroed(512)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetF32Zeroed: elem %d = %v", i, v)
		}
	}
	// Foreign slices (non-power-of-two cap) must be silently dropped.
	PutF32(make([]float32, 1000))
	// Tiny and nil requests.
	if GetF32(0) != nil {
		t.Fatal("GetF32(0) must be nil")
	}
	PutF32(nil)

	tt := GetTensorZeroed(3, 5)
	if tt.Dim(0) != 3 || tt.Dim(1) != 5 {
		t.Fatalf("pooled tensor shape %v", tt.Shape())
	}
	for _, v := range tt.Data() {
		if v != 0 {
			t.Fatal("GetTensorZeroed returned dirty storage")
		}
	}
	PutTensor(tt)
	PutTensor(nil)
}
