package tensor

// Im2Col lowers a single image (C×H×W, stored as a flat slice) into a
// column matrix of shape (C*KH*KW) × (OH*OW), so that convolution
// becomes a matrix multiply against a (M × C*KH*KW) weight matrix.
// Out-of-bounds taps (zero padding) contribute zeros.
func Im2Col(img []float32, c, h, w, kh, kw, stride, pad int, dst []float32) (oh, ow int) {
	oh = (h+2*pad-kh)/stride + 1
	ow = (w+2*pad-kw)/stride + 1
	cols := oh * ow
	idx := 0
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							dst[idx] = 0
							idx++
						}
						continue
					}
					rowBase := base + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride + kx - pad
						if ix < 0 || ix >= w {
							dst[idx] = 0
						} else {
							dst[idx] = img[rowBase+ix]
						}
						idx++
					}
				}
			}
		}
	}
	_ = cols
	return oh, ow
}

// Col2Im scatters a column-matrix gradient (C*KH*KW) × (OH*OW) back into
// an image gradient (C×H×W), accumulating overlapping taps. dst must be
// zeroed by the caller if accumulation from a clean slate is desired.
func Col2Im(col []float32, c, h, w, kh, kw, stride, pad int, dst []float32) {
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	idx := 0
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						idx += ow
						continue
					}
					rowBase := base + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride + kx - pad
						if ix >= 0 && ix < w {
							dst[rowBase+ix] += col[idx]
						}
						idx++
					}
				}
			}
		}
	}
}

// ColBufLen returns the buffer length Im2Col requires for the given
// convolution geometry.
func ColBufLen(c, h, w, kh, kw, stride, pad int) int {
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	return c * kh * kw * oh * ow
}
