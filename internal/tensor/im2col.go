package tensor

// Im2Col lowers a single image (C×H×W, stored as a flat slice) into a
// column matrix of shape (C*KH*KW) × (OH*OW), so that convolution
// becomes a matrix multiply against a (M × C*KH*KW) weight matrix.
// Out-of-bounds taps (zero padding) contribute zeros.
func Im2Col(img []float32, c, h, w, kh, kw, stride, pad int, dst []float32) (oh, ow int) {
	oh = (h+2*pad-kh)/stride + 1
	ow = (w+2*pad-kw)/stride + 1
	if stride == 1 {
		im2colS1(img, c, h, w, kh, kw, pad, dst, oh, ow)
		return oh, ow
	}
	idx := 0
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							dst[idx] = 0
							idx++
						}
						continue
					}
					rowBase := base + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride + kx - pad
						if ix < 0 || ix >= w {
							dst[idx] = 0
						} else {
							dst[idx] = img[rowBase+ix]
						}
						idx++
					}
				}
			}
		}
	}
	return oh, ow
}

// im2colS1 is the stride-1 fast path: for a fixed (ky,kx) tap the valid
// source pixels of an output row form one contiguous span, so the body
// is a memmove plus explicit zeroing of the clipped edges instead of a
// per-element bounds check.
func im2colS1(img []float32, c, h, w, kh, kw, pad int, dst []float32, oh, ow int) {
	idx := 0
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				shift := kx - pad
				zlo := -shift // ox below this reads ix < 0
				if zlo < 0 {
					zlo = 0
				}
				zhi := w - shift // ox at or past this reads ix ≥ w
				if zhi > ow {
					zhi = ow
				}
				if zhi < zlo {
					zhi = zlo
				}
				for oy := 0; oy < oh; oy++ {
					iy := oy + ky - pad
					row := dst[idx : idx+ow]
					idx += ow
					if iy < 0 || iy >= h {
						for i := range row {
							row[i] = 0
						}
						continue
					}
					rowBase := base + iy*w
					for i := 0; i < zlo; i++ {
						row[i] = 0
					}
					copy(row[zlo:zhi], img[rowBase+zlo+shift:rowBase+zhi+shift])
					for i := zhi; i < ow; i++ {
						row[i] = 0
					}
				}
			}
		}
	}
}

// Col2Im scatters a column-matrix gradient (C*KH*KW) × (OH*OW) back into
// an image gradient (C×H×W), accumulating overlapping taps. dst must be
// zeroed by the caller if accumulation from a clean slate is desired.
func Col2Im(col []float32, c, h, w, kh, kw, stride, pad int, dst []float32) {
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	if stride == 1 {
		col2imS1(col, c, h, w, kh, kw, pad, dst, oh, ow)
		return
	}
	idx := 0
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						idx += ow
						continue
					}
					rowBase := base + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride + kx - pad
						if ix >= 0 && ix < w {
							dst[rowBase+ix] += col[idx]
						}
						idx++
					}
				}
			}
		}
	}
}

// col2imS1 is the stride-1 fast path: the valid taps of an output row
// accumulate into one contiguous destination span, so the scatter
// becomes a straight-line span add. The (ky,kx,oy,ox) accumulation
// order matches the general path exactly, so the result is
// bit-identical.
func col2imS1(col []float32, c, h, w, kh, kw, pad int, dst []float32, oh, ow int) {
	idx := 0
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				shift := kx - pad
				zlo := -shift
				if zlo < 0 {
					zlo = 0
				}
				zhi := w - shift
				if zhi > ow {
					zhi = ow
				}
				if zhi < zlo {
					zhi = zlo
				}
				for oy := 0; oy < oh; oy++ {
					iy := oy + ky - pad
					if iy < 0 || iy >= h {
						idx += ow
						continue
					}
					rowBase := base + iy*w
					d := dst[rowBase+zlo+shift : rowBase+zhi+shift]
					s := col[idx+zlo : idx+zhi]
					for i := range d {
						d[i] += s[i]
					}
					idx += ow
				}
			}
		}
	}
}

// ColBufLen returns the buffer length Im2Col requires for the given
// convolution geometry.
func ColBufLen(c, h, w, kh, kw, stride, pad int) int {
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	return c * kh * kw * oh * ow
}
