package tensor

import (
	"math/rand"
	"testing"
)

func randI8(rng *rand.Rand, n int) []int8 {
	s := make([]int8, n)
	for i := range s {
		s[i] = int8(rng.Intn(255) - 127)
	}
	return s
}

func checkGemmI8(t *testing.T, m, k, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(m*1000003 + k*1009 + n)))
	a := randI8(rng, m*k)
	b := randI8(rng, k*n)
	want := make([]int32, m*n)
	gemmI8Naive(want, a, m, k, b, n)

	got := make([]int32, m*n)
	pa := make([]int16, PackAI8Len(m, k))
	PackAI8(pa, a, m, k)
	GemmI8PackedA(got, pa, m, k, b, n)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("m=%d k=%d n=%d: c[%d] = %d, want %d", m, k, n, i, got[i], want[i])
		}
	}

	// Convenience wrapper (may dispatch to the naive path on small
	// shapes — either way the result must be exact).
	got2 := make([]int32, m*n)
	GemmI8(got2, a, m, k, b, n)
	for i := range want {
		if got2[i] != want[i] {
			t.Fatalf("GemmI8 m=%d k=%d n=%d: c[%d] = %d, want %d", m, k, n, i, got2[i], want[i])
		}
	}
}

// TestGemmI8MatchesNaive sweeps tile-edge and slab-edge shapes: every
// MR/NR remainder, odd k (pair padding), and sizes crossing the KC/NC
// blocking boundaries. int32 accumulation is exact, so the comparison
// is equality.
func TestGemmI8MatchesNaive(t *testing.T) {
	sizes := []struct{ m, k, n int }{
		{1, 1, 1},
		{2, 3, 4},
		{3, 7, 5},
		{4, 16, 16},
		{5, 17, 17},
		{6, 31, 33},
		{7, 64, 48},
		{8, 129, 40},    // odd k crossing nothing
		{16, 512, 64},   // exactly one KC slab
		{16, 513, 64},   // odd k crossing the KC boundary
		{16, 700, 100},  // two KC slabs, ragged edges
		{3, 9, 1030},    // crosses the NC boundary with a tiny m
		{33, 600, 1100}, // multi-slab, multi-block, all remainders
	}
	for _, s := range sizes {
		checkGemmI8(t, s.m, s.k, s.n)
	}
}

// TestGemmI8PortableKernel forces the pure-Go 2×4 kernel so both kernel
// paths are exercised regardless of host CPU.
func TestGemmI8PortableKernel(t *testing.T) {
	mr, nr, kern := gemmI8MR, gemmI8NR, gemmI8Kernel
	gemmI8MR, gemmI8NR, gemmI8Kernel = 2, 4, gemmI8Kernel2x4
	defer func() { gemmI8MR, gemmI8NR, gemmI8Kernel = mr, nr, kern }()
	checkGemmI8(t, 33, 600, 1100)
	checkGemmI8(t, 5, 17, 9)
}

// TestGemmI8SingleWorker covers the SetMaxWorkers(1) inline path the
// single-thread benchmarks rely on.
func TestGemmI8SingleWorker(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	checkGemmI8(t, 16, 700, 1100)
}

func TestIm2ColI8MatchesFloat(t *testing.T) {
	c, h, w := 3, 7, 6
	kh, kw, stride, pad := 3, 3, 2, 1
	rng := rand.New(rand.NewSource(11))
	img8 := randI8(rng, c*h*w)
	imgF := make([]float32, len(img8))
	for i, v := range img8 {
		imgF[i] = float32(v)
	}
	want := make([]float32, ColBufLen(c, h, w, kh, kw, stride, pad))
	oh, ow := Im2Col(imgF, c, h, w, kh, kw, stride, pad, want)

	// Two samples share one wide destination; both columns must match
	// the single-image float reference.
	cols := oh * ow
	dst := make([]int8, c*kh*kw*2*cols)
	for i := range dst {
		dst[i] = 99 // poison
	}
	Im2ColI8(img8, h*w, c, h, w, kh, kw, stride, pad, dst, 2*cols, 0)
	Im2ColI8(img8, h*w, c, h, w, kh, kw, stride, pad, dst, 2*cols, cols)
	for r := 0; r < c*kh*kw; r++ {
		for j := 0; j < cols; j++ {
			ref := want[r*cols+j]
			for s := 0; s < 2; s++ {
				got := float32(dst[r*2*cols+s*cols+j])
				if got != ref {
					t.Fatalf("row %d col %d sample %d: got %v, want %v", r, j, s, got, ref)
				}
			}
		}
	}
}

func BenchmarkGemmI8(b *testing.B) {
	m, k, n := 128, 576, 1024
	rng := rand.New(rand.NewSource(5))
	a := randI8(rng, m*k)
	bm := randI8(rng, k*n)
	c := make([]int32, m*n)
	pa := make([]int16, PackAI8Len(m, k))
	PackAI8(pa, a, m, k)
	b.ReportAllocs()
	b.SetBytes(int64(2 * m * n * k))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmI8PackedA(c, pa, m, k, bm, n)
	}
}
