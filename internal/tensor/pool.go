package tensor

import (
	"math/bits"
	"sync"
)

// Buffer pool: size-classed free lists for the float32 scratch slices
// the kernels and layers churn through on every forward/backward pass
// (im2col column buffers, GEMM pack panels, gradient scratch). Training
// loops call these paths thousands of times with identical shapes, so
// recycling the buffers removes nearly all steady-state allocation from
// the hot path.
//
// Classes are powers of two; a Get rounds the request up to the next
// class so a returned buffer can always satisfy a later request of the
// same class. The free lists are bounded per class to cap retained
// memory.

const (
	poolMinBits     = 6  // smallest pooled capacity: 64 floats (256 B)
	poolMaxBits     = 24 // largest pooled capacity: 16M floats (64 MiB)
	poolMaxPerClass = 32
)

type poolClass struct {
	mu   sync.Mutex
	free [][]float32
}

var poolClasses [poolMaxBits + 1]poolClass

func poolClassFor(n int) int {
	c := bits.Len(uint(n - 1)) // ceil(log2(n)) for n ≥ 2
	if c < poolMinBits {
		c = poolMinBits
	}
	return c
}

// GetF32 returns a float32 scratch slice of length n, recycled from the
// pool when possible. The contents are unspecified (possibly stale) —
// callers that need zeros must use GetF32Zeroed. Requests beyond the
// largest size class are allocated fresh and are not pooled.
func GetF32(n int) []float32 {
	if n <= 0 {
		return nil
	}
	c := poolClassFor(n)
	if c > poolMaxBits {
		return make([]float32, n)
	}
	p := &poolClasses[c]
	p.mu.Lock()
	if last := len(p.free) - 1; last >= 0 {
		s := p.free[last]
		p.free[last] = nil
		p.free = p.free[:last]
		p.mu.Unlock()
		return s[:n]
	}
	p.mu.Unlock()
	return make([]float32, n, 1<<c)
}

// GetF32Zeroed returns a zero-filled scratch slice of length n from the
// pool.
func GetF32Zeroed(n int) []float32 {
	s := GetF32(n)
	for i := range s {
		s[i] = 0
	}
	return s
}

// PutF32 returns a scratch slice obtained from GetF32 to the pool. The
// caller must not use the slice afterwards. Slices whose capacity is
// not an exact size class (i.e. not allocated by GetF32) are dropped,
// so PutF32 is safe to call on any slice.
func PutF32(s []float32) {
	c := cap(s)
	if c < 1<<poolMinBits || c&(c-1) != 0 {
		return
	}
	cls := bits.Len(uint(c)) - 1
	if cls > poolMaxBits {
		return
	}
	p := &poolClasses[cls]
	p.mu.Lock()
	if len(p.free) < poolMaxPerClass {
		p.free = append(p.free, s[:0])
	}
	p.mu.Unlock()
}

// GetTensor returns a pooled tensor of the given shape with unspecified
// contents; GetTensorZeroed returns one filled with zeros. Release with
// PutTensor.
func GetTensor(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic("tensor: non-positive dimension in pooled shape")
		}
		n *= d
	}
	return &Tensor{data: GetF32(n), shape: append([]int(nil), shape...)}
}

// GetTensorZeroed is GetTensor with the storage cleared.
func GetTensorZeroed(shape ...int) *Tensor {
	t := GetTensor(shape...)
	t.Zero()
	return t
}

// PutTensor recycles a tensor obtained from GetTensor. The tensor (and
// any views of its storage) must not be used afterwards.
func PutTensor(t *Tensor) {
	if t == nil {
		return
	}
	PutF32(t.data)
	t.data = nil
}
