package tensor

// Runtime selection of the AVX2 byte kernels. This init runs before
// gemm_amd64.go's (file order), so it probes CPUID itself instead of
// reading gemmHasAVX2.

//go:noescape
func indexMismatchAsm(p *byte, n int, v byte) int

//go:noescape
func fillBytesAsm(p *byte, n int, v byte)

func init() {
	if !cpuSupportsAVX2FMA() {
		return
	}
	bytesHasAVX2 = true
	indexMismatchImpl = indexMismatchAVX2
	fillBytesImpl = fillBytesAVX2
}

func indexMismatchAVX2(b []byte, v byte) int {
	return indexMismatchAsm(&b[0], len(b), v)
}

func fillBytesAVX2(b []byte, v byte) {
	fillBytesAsm(&b[0], len(b), v)
}
