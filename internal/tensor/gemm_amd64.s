// AVX2/FMA micro-kernel and CPU feature probes for the blocked GEMM
// engine (gemm.go). Selected at runtime by gemm_amd64.go when CPUID
// reports AVX2+FMA with OS-enabled YMM state.

#include "textflag.h"

// func cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL subleaf+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func gemmKernel6x16Asm(kc int, ap, bp, c *float32, ldc int)
//
// Accumulates a 6×16 tile over packed panels:
//
//	c[r*ldc + j] += Σ_p ap[p*6 + r] · bp[p*16 + j]   r < 6, j < 16
//
// Twelve YMM accumulators (Y0–Y11: two 8-float halves per row) stay
// live across the whole k loop; each step issues two B loads, six A
// broadcasts and twelve FMAs. The caller guarantees the full tile is
// addressable (edge tiles go through a scratch buffer in Go).
TEXT ·gemmKernel6x16Asm(SB), NOSPLIT, $0-40
	MOVQ kc+0(FP), CX
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), DI
	MOVQ c+24(FP), DX
	MOVQ ldc+32(FP), R8
	SHLQ $2, R8             // row stride in bytes

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	VXORPS Y10, Y10, Y10
	VXORPS Y11, Y11, Y11

	TESTQ CX, CX
	JZ    writeback

kloop:
	VMOVUPS (DI), Y12       // B columns 0–7
	VMOVUPS 32(DI), Y13     // B columns 8–15

	VBROADCASTSS (SI), Y14
	VFMADD231PS  Y12, Y14, Y0
	VFMADD231PS  Y13, Y14, Y1
	VBROADCASTSS 4(SI), Y15
	VFMADD231PS  Y12, Y15, Y2
	VFMADD231PS  Y13, Y15, Y3
	VBROADCASTSS 8(SI), Y14
	VFMADD231PS  Y12, Y14, Y4
	VFMADD231PS  Y13, Y14, Y5
	VBROADCASTSS 12(SI), Y15
	VFMADD231PS  Y12, Y15, Y6
	VFMADD231PS  Y13, Y15, Y7
	VBROADCASTSS 16(SI), Y14
	VFMADD231PS  Y12, Y14, Y8
	VFMADD231PS  Y13, Y14, Y9
	VBROADCASTSS 20(SI), Y15
	VFMADD231PS  Y12, Y15, Y10
	VFMADD231PS  Y13, Y15, Y11

	ADDQ $24, SI            // 6 floats of A
	ADDQ $64, DI            // 16 floats of B
	DECQ CX
	JNZ  kloop

writeback:
	VMOVUPS (DX), Y12
	VADDPS  Y0, Y12, Y12
	VMOVUPS Y12, (DX)
	VMOVUPS 32(DX), Y13
	VADDPS  Y1, Y13, Y13
	VMOVUPS Y13, 32(DX)
	ADDQ    R8, DX

	VMOVUPS (DX), Y12
	VADDPS  Y2, Y12, Y12
	VMOVUPS Y12, (DX)
	VMOVUPS 32(DX), Y13
	VADDPS  Y3, Y13, Y13
	VMOVUPS Y13, 32(DX)
	ADDQ    R8, DX

	VMOVUPS (DX), Y12
	VADDPS  Y4, Y12, Y12
	VMOVUPS Y12, (DX)
	VMOVUPS 32(DX), Y13
	VADDPS  Y5, Y13, Y13
	VMOVUPS Y13, 32(DX)
	ADDQ    R8, DX

	VMOVUPS (DX), Y12
	VADDPS  Y6, Y12, Y12
	VMOVUPS Y12, (DX)
	VMOVUPS 32(DX), Y13
	VADDPS  Y7, Y13, Y13
	VMOVUPS Y13, 32(DX)
	ADDQ    R8, DX

	VMOVUPS (DX), Y12
	VADDPS  Y8, Y12, Y12
	VMOVUPS Y12, (DX)
	VMOVUPS 32(DX), Y13
	VADDPS  Y9, Y13, Y13
	VMOVUPS Y13, 32(DX)
	ADDQ    R8, DX

	VMOVUPS (DX), Y12
	VADDPS  Y10, Y12, Y12
	VMOVUPS Y12, (DX)
	VMOVUPS 32(DX), Y13
	VADDPS  Y11, Y13, Y13
	VMOVUPS Y13, 32(DX)

	VZEROUPPER
	RET
