package tensor

import (
	"runtime"
	"sync"
)

// maxWorkers bounds the parallelism of the numeric kernels. It is a
// variable (not a constant) so tests can force single-threaded execution.
var maxWorkers = runtime.GOMAXPROCS(0)

// SetMaxWorkers overrides the kernel parallelism. Values below one are
// clamped to one. It returns the previous setting so callers can restore
// it.
func SetMaxWorkers(n int) int {
	prev := maxWorkers
	if n < 1 {
		n = 1
	}
	maxWorkers = n
	return prev
}

// MaxWorkers returns the current kernel parallelism bound, clamped to
// GOMAXPROCS: fanning work out to more workers than there are
// schedulable CPUs buys nothing and costs queueing and context-switch
// overhead (on a 1-vCPU box a 4-worker fan-out measurably regressed the
// trainer). Callers outside the package (the quantized engine, metric
// evaluation, the templating engine) use this to size their own
// ParallelChunks fan-out consistently with the kernels. Result
// determinism never depends on the clamp: deterministic reductions key
// their geometry on chunk counts, and the templating engine's
// experiments commute.
func MaxWorkers() int {
	if g := runtime.GOMAXPROCS(0); maxWorkers > g {
		return g
	}
	return maxWorkers
}

// The numeric kernels share one process-wide pool of persistent worker
// goroutines instead of spawning goroutines per call. The pool starts
// lazily on the first parallel invocation; on a single-CPU machine (or
// under SetMaxWorkers(1)) it is never started and every kernel runs
// inline on the caller's goroutine with zero scheduling overhead.
var (
	workersOnce sync.Once
	workCh      chan func()
)

func ensureWorkers() {
	workersOnce.Do(func() {
		n := runtime.NumCPU()
		if n > 64 {
			n = 64
		}
		workCh = make(chan func(), 4*n)
		for i := 0; i < n; i++ {
			go func() {
				for task := range workCh {
					task()
				}
			}()
		}
	})
}

// doneChPool recycles the per-call completion channels of the helping
// wait, so parallel invocations allocate nothing in steady state.
var doneChPool = sync.Pool{New: func() any { return make(chan struct{}, 256) }}

// helpUntilDone blocks until `submitted` completion signals have
// arrived on doneCh, executing other queued pool tasks while it waits.
// This cooperative draining is what makes nested parallel regions
// (a data-parallel trainer shard invoking parallel GEMM kernels)
// deadlock-free even when every pool worker is itself blocked in a
// nested wait: any waiter with queued work available will pick it up.
func helpUntilDone(doneCh chan struct{}, submitted int) {
	for completed := 0; completed < submitted; {
		select {
		case task := <-workCh:
			task()
		case <-doneCh:
			completed++
		}
	}
}

// ParallelChunks partitions [0, n) into up to `workers` contiguous
// chunks and runs fn(lo, hi) once per chunk on the persistent worker
// pool. The calling goroutine executes the first chunk itself and then
// waits for the rest, executing other queued pool tasks while it waits
// (see helpUntilDone). When the pool queue is full, excess chunks run
// inline on the caller, so ParallelChunks degrades gracefully to serial
// execution and never deadlocks, even in nested parallel regions.
func ParallelChunks(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	ensureWorkers()
	chunk := (n + workers - 1) / workers
	doneCh := doneChPool.Get().(chan struct{})
	submitted := 0
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		lo := lo
		task := func() { fn(lo, hi); doneCh <- struct{}{} }
		select {
		case workCh <- task:
			submitted++
		default:
			fn(lo, hi)
		}
	}
	fn(0, chunk)
	helpUntilDone(doneCh, submitted)
	doneChPool.Put(doneCh)
}

// ParallelChunksIndexed partitions [0, n) into exactly `chunks`
// near-equal contiguous ranges and runs fn(idx, lo, hi) once per range
// on up to `workers` pool workers. Unlike ParallelChunks, the chunk
// geometry depends only on n and chunks — never on the worker count —
// so a caller that writes per-chunk results into slot idx and reduces
// the slots in fixed index order gets bit-identical floating-point
// results at any parallelism level. This is the primitive behind the
// deterministic gradient reductions in internal/nn.
func ParallelChunksIndexed(n, chunks, workers int, fn func(idx, lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunks > n {
		chunks = n
	}
	if chunks <= 1 {
		fn(0, 0, n)
		return
	}
	if workers > chunks {
		workers = chunks
	}
	runRange := func(clo, chi int) {
		for idx := clo; idx < chi; idx++ {
			lo := idx * n / chunks
			hi := (idx + 1) * n / chunks
			fn(idx, lo, hi)
		}
	}
	if workers <= 1 {
		runRange(0, chunks)
		return
	}
	ensureWorkers()
	per := (chunks + workers - 1) / workers
	doneCh := doneChPool.Get().(chan struct{})
	submitted := 0
	for clo := per; clo < chunks; clo += per {
		chi := clo + per
		if chi > chunks {
			chi = chunks
		}
		clo, chi := clo, chi
		task := func() { runRange(clo, chi); doneCh <- struct{}{} }
		select {
		case workCh <- task:
			submitted++
		default:
			runRange(clo, chi)
		}
	}
	runRange(0, per)
	helpUntilDone(doneCh, submitted)
	doneChPool.Put(doneCh)
}

// TreeReduceInto adds the `slots` equal-length gradient slices into dst
// (dst[i] += Σ_s slot_s[i]) using a fixed pairwise binary tree over the
// slot index, so the floating-point summation order is a function of
// the slot count alone — never of scheduling or worker count. The slot
// contents are destroyed (intermediate partial sums are written back
// into the lower slot of each pair).
func TreeReduceInto(dst []float32, slots [][]float32) {
	ns := len(slots)
	if ns == 0 {
		return
	}
	for stride := 1; stride < ns; stride *= 2 {
		for s := 0; s+stride < ns; s += 2 * stride {
			a, b := slots[s], slots[s+stride]
			for i := range a {
				a[i] += b[i]
			}
		}
	}
	root := slots[0]
	for i := range dst {
		dst[i] += root[i]
	}
}

// parallelFor runs fn(lo, hi) over disjoint chunks of [0, n) on up to
// maxWorkers pool workers and waits for completion. Small ranges run
// inline to avoid synchronization overhead.
func parallelFor(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if maxWorkers <= 1 || n < 64 {
		fn(0, n)
		return
	}
	ParallelChunks(n, maxWorkers, fn)
}
