package tensor

import (
	"runtime"
	"sync"
)

// maxWorkers bounds the parallelism of the numeric kernels. It is a
// variable (not a constant) so tests can force single-threaded execution.
var maxWorkers = runtime.NumCPU()

// SetMaxWorkers overrides the kernel parallelism. Values below one are
// clamped to one. It returns the previous setting so callers can restore
// it.
func SetMaxWorkers(n int) int {
	prev := maxWorkers
	if n < 1 {
		n = 1
	}
	maxWorkers = n
	return prev
}

// parallelFor runs fn(lo, hi) over disjoint chunks of [0, n) on up to
// maxWorkers goroutines and waits for completion. Small ranges run
// inline to avoid goroutine overhead.
func parallelFor(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := maxWorkers
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 64 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
