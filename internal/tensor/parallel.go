package tensor

import (
	"runtime"
	"sync"
)

// maxWorkers bounds the parallelism of the numeric kernels. It is a
// variable (not a constant) so tests can force single-threaded execution.
var maxWorkers = runtime.NumCPU()

// SetMaxWorkers overrides the kernel parallelism. Values below one are
// clamped to one. It returns the previous setting so callers can restore
// it.
func SetMaxWorkers(n int) int {
	prev := maxWorkers
	if n < 1 {
		n = 1
	}
	maxWorkers = n
	return prev
}

// MaxWorkers returns the current kernel parallelism bound, so callers
// outside the package (the quantized engine, metric evaluation) can
// size their own ParallelChunks fan-out consistently with the kernels.
func MaxWorkers() int { return maxWorkers }

// The numeric kernels share one process-wide pool of persistent worker
// goroutines instead of spawning goroutines per call. The pool starts
// lazily on the first parallel invocation; on a single-CPU machine (or
// under SetMaxWorkers(1)) it is never started and every kernel runs
// inline on the caller's goroutine with zero scheduling overhead.
var (
	workersOnce sync.Once
	workCh      chan func()
)

func ensureWorkers() {
	workersOnce.Do(func() {
		n := runtime.NumCPU()
		if n > 64 {
			n = 64
		}
		workCh = make(chan func(), 4*n)
		for i := 0; i < n; i++ {
			go func() {
				for task := range workCh {
					task()
				}
			}()
		}
	})
}

// ParallelChunks partitions [0, n) into up to `workers` contiguous
// chunks and runs fn(lo, hi) once per chunk on the persistent worker
// pool. The calling goroutine executes the first chunk itself and then
// waits for the rest. When the pool is saturated — including the nested
// case of a parallel kernel invoked from inside another parallel region
// — excess chunks run inline on the caller, so ParallelChunks can never
// deadlock and degrades gracefully to serial execution.
func ParallelChunks(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	ensureWorkers()
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		task := func() { defer wg.Done(); fn(lo, hi) }
		wg.Add(1)
		select {
		case workCh <- task:
		default:
			task()
		}
	}
	fn(0, chunk)
	wg.Wait()
}

// parallelFor runs fn(lo, hi) over disjoint chunks of [0, n) on up to
// maxWorkers pool workers and waits for completion. Small ranges run
// inline to avoid synchronization overhead.
func parallelFor(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if maxWorkers <= 1 || n < 64 {
		fn(0, n)
		return
	}
	ParallelChunks(n, maxWorkers, fn)
}
