package tensor

import (
	"bytes"
	"testing"
)

// naiveIndexMismatch is the scalar reference both kernels must match.
func naiveIndexMismatch(b []byte, v byte) int {
	for i := range b {
		if b[i] != v {
			return i
		}
	}
	return -1
}

// mismatchCases builds buffers exercising lane boundaries: clean,
// mismatch at every alignment class, mismatch in the scalar tail.
func mismatchCases() []struct {
	buf []byte
	v   byte
} {
	rng := NewRNG(3)
	var cases []struct {
		buf []byte
		v   byte
	}
	for _, n := range []int{0, 1, 7, 8, 31, 32, 33, 63, 64, 100, 4096} {
		for _, v := range []byte{0x00, 0xFF, 0x5A} {
			clean := make([]byte, n)
			FillBytes(clean, v)
			cases = append(cases, struct {
				buf []byte
				v   byte
			}{clean, v})
			for _, at := range []int{0, n / 3, n - 1} {
				if at < 0 || at >= n {
					continue
				}
				dirty := make([]byte, n)
				for i := range dirty {
					dirty[i] = v
				}
				dirty[at] = v ^ byte(1<<uint(rng.Intn(8)))
				cases = append(cases, struct {
					buf []byte
					v   byte
				}{dirty, v})
			}
		}
	}
	return cases
}

// TestIndexMismatchMatchesNaive checks the selected kernel — and, when
// AVX2 was selected, the portable twin explicitly — against the scalar
// reference, so the vectorized and portable paths stay bit-identical.
func TestIndexMismatchMatchesNaive(t *testing.T) {
	for _, c := range mismatchCases() {
		want := naiveIndexMismatch(c.buf, c.v)
		if got := IndexMismatchByte(c.buf, c.v); got != want {
			t.Fatalf("IndexMismatchByte(len=%d, v=%#x) = %d, want %d", len(c.buf), c.v, got, want)
		}
		if got := indexMismatchGo(c.buf, c.v); got != want {
			t.Fatalf("indexMismatchGo(len=%d, v=%#x) = %d, want %d", len(c.buf), c.v, got, want)
		}
		if bytesHasAVX2 {
			if len(c.buf) == 0 {
				continue
			}
			if got := indexMismatchAVX2(c.buf, c.v); got != want {
				t.Fatalf("indexMismatchAVX2(len=%d, v=%#x) = %d, want %d", len(c.buf), c.v, got, want)
			}
		}
	}
}

// TestFillBytesAllSizes checks fills across lane boundaries on both
// implementations, including that bytes beyond the slice stay intact.
func TestFillBytesAllSizes(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 31, 32, 33, 63, 64, 100, 4096} {
		for _, v := range []byte{0x00, 0xFF, 0xA5} {
			want := make([]byte, n)
			for i := range want {
				want[i] = v
			}
			backing := make([]byte, n+8)
			for i := range backing {
				backing[i] = 0x11
			}
			FillBytes(backing[:n], v)
			if !bytes.Equal(backing[:n], want) {
				t.Fatalf("FillBytes(len=%d, v=%#x) wrote wrong bytes", n, v)
			}
			for _, tail := range backing[n:] {
				if tail != 0x11 {
					t.Fatalf("FillBytes(len=%d) overwrote past the slice", n)
				}
			}
			got := make([]byte, n)
			fillBytesGo(got, v)
			if !bytes.Equal(got, want) {
				t.Fatalf("fillBytesGo(len=%d, v=%#x) wrote wrong bytes", n, v)
			}
		}
	}
}

// BenchmarkIndexMismatch scans one clean 4 KB page per op — the
// dominant case of the templating readback loop.
func BenchmarkIndexMismatch(b *testing.B) {
	page := make([]byte, 4096)
	FillBytes(page, 0xFF)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		if IndexMismatchByte(page, 0xFF) != -1 {
			b.Fatal("unexpected mismatch")
		}
	}
}

// BenchmarkIndexMismatchGo is the portable twin for the speedup ratio.
func BenchmarkIndexMismatchGo(b *testing.B) {
	page := make([]byte, 4096)
	FillBytes(page, 0xFF)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		if indexMismatchGo(page, 0xFF) != -1 {
			b.Fatal("unexpected mismatch")
		}
	}
}

// BenchmarkFillBytes fills one 4 KB page per op.
func BenchmarkFillBytes(b *testing.B) {
	page := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		FillBytes(page, byte(i))
	}
}
